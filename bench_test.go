// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark runs a scaled-down version of
// the corresponding reproduction and reports the headline quantities via
// b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's result set in one pass. cmd/hpca03 runs the same
// experiments at full scale with per-benchmark detail.
package selthrottle_test

import (
	"testing"
	"time"

	"selthrottle/internal/cache"
	"selthrottle/internal/power"
	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

// benchOpts returns a reduced-scale options set: large enough for stable
// ratios, small enough to keep the full suite to minutes.
func benchOpts() sim.Options {
	return sim.Options{Instructions: 60000, Warmup: 15000}
}

// report pushes a figure row's average metrics into the benchmark output.
func report(b *testing.B, prefix string, c sim.Comparison) {
	b.ReportMetric(c.Speedup, prefix+"_speedup")
	b.ReportMetric(c.PowerSaving, prefix+"_power_sav_%")
	b.ReportMetric(c.EnergySaving, prefix+"_energy_sav_%")
	b.ReportMetric(c.EDImprovement, prefix+"_ED_improv_%")
}

// BenchmarkTable1PowerBreakdown regenerates Table 1: the baseline power
// breakdown and the fraction of overall power wasted by mis-speculated
// instructions (paper: 27.9 % overall, 56.4 W total).
func BenchmarkTable1PowerBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t1 := sim.RunTable1(benchOpts())
		b.ReportMetric(t1.TotalWatts, "total_W")
		b.ReportMetric(100*t1.WastedTotal, "wasted_%")
		b.ReportMetric(100*t1.Shares[power.UnitClock], "clock_share_%")
		b.ReportMetric(100*t1.Shares[power.UnitWindow], "window_share_%")
	}
}

// BenchmarkTable2Benchmarks regenerates Table 2: per-benchmark gshare
// misprediction rates (paper: 6.8-19.7 %).
func BenchmarkTable2Benchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sim.RunTable2(benchOpts())
		var avg float64
		for _, r := range rows {
			avg += 100 * r.MeasuredMiss / float64(len(rows))
		}
		b.ReportMetric(avg, "avg_miss_%")
		for _, r := range rows {
			if r.Profile.Name == "go" {
				b.ReportMetric(100*r.MeasuredMiss, "go_miss_%")
			}
		}
	}
}

// BenchmarkFig1Oracles regenerates Figure 1: the oracle fetch/decode/select
// limit study (paper: oracle fetch saves ~21 % power / 24 % energy).
func BenchmarkFig1Oracles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sim.RunFigure("fig1", sim.OracleExperiments(), benchOpts())
		for _, id := range []string{"oracle-fetch", "oracle-decode", "oracle-select"} {
			row, _ := fr.Row(id)
			report(b, id, row.Average)
		}
	}
}

// BenchmarkFig3FetchThrottling regenerates Figure 3: fetch throttling
// experiments A1-A7 (paper: A5 best trade at 11.7 % energy, 8.6 % E-D).
func BenchmarkFig3FetchThrottling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sim.RunFigure("fig3", sim.FetchExperiments(), benchOpts())
		for _, id := range []string{"A1", "A5", "A6", "A7"} {
			row, _ := fr.Row(id)
			report(b, id, row.Average)
		}
	}
}

// BenchmarkFig4DecodeThrottling regenerates Figure 4: decode throttling
// experiments B1-B9 (paper: aggressive decode stalls hurt E-D; B7 = 11.9 %
// energy).
func BenchmarkFig4DecodeThrottling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sim.RunFigure("fig4", sim.DecodeExperiments(), benchOpts())
		for _, id := range []string{"B1", "B3", "B7", "B9"} {
			row, _ := fr.Row(id)
			report(b, id, row.Average)
		}
	}
}

// BenchmarkFig5SelectionThrottling regenerates Figure 5: the novel
// selection-throttling heuristic (paper: C2 best overall, 13.5 % energy,
// +~2 pp over C1 from no-select).
func BenchmarkFig5SelectionThrottling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sim.RunFigure("fig5", sim.SelectionExperiments(), benchOpts())
		for _, id := range []string{"C1", "C2", "C6", "C7"} {
			row, _ := fr.Row(id)
			report(b, id, row.Average)
		}
	}
}

// BenchmarkFig6PipelineDepth regenerates Figure 6: C2's savings across
// pipeline depths (paper: energy savings 11 % at 6 stages to 17.2 % at 28).
func BenchmarkFig6PipelineDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := sim.DepthSweep(benchOpts(), []int{6, 14, 28})
		for _, p := range points {
			switch p.X {
			case 6:
				b.ReportMetric(p.Average.EnergySaving, "d6_energy_sav_%")
			case 14:
				b.ReportMetric(p.Average.EnergySaving, "d14_energy_sav_%")
			case 28:
				b.ReportMetric(p.Average.EnergySaving, "d28_energy_sav_%")
			}
		}
	}
}

// BenchmarkFig7TableSize regenerates Figure 7: C2's savings across
// predictor+estimator budgets (paper: power savings 20.3 % at 8 KB falling
// to 16.5 % at 64 KB; energy/E-D roughly flat).
func BenchmarkFig7TableSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := sim.SizeSweep(benchOpts(), []int{8, 64})
		for _, p := range points {
			switch p.X {
			case 8:
				b.ReportMetric(p.Average.PowerSaving, "kb8_power_sav_%")
			case 64:
				b.ReportMetric(p.Average.PowerSaving, "kb64_power_sav_%")
			}
		}
	}
}

// BenchmarkConfidenceQuality regenerates the §4.3 estimator quality numbers
// (paper: BPRU SPEC 60 % / PVN 45 %; JRS SPEC 90 % / PVN 24 %).
func BenchmarkConfidenceQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		crs := sim.RunConfidence(benchOpts())
		for _, cr := range crs {
			b.ReportMetric(100*cr.SPEC, string(cr.Estimator)+"_SPEC_%")
			b.ReportMetric(100*cr.PVN, string(cr.Estimator)+"_PVN_%")
		}
	}
}

// BenchmarkAblationEstimatorCross regenerates the estimator/mechanism
// cross ablation: how much of Selective Throttling's edge over Pipeline
// Gating comes from the graded policy vs the estimator pairing.
func BenchmarkAblationEstimatorCross(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := sim.RunFigure("cross", sim.EstimatorCrossExperiments(), benchOpts())
		for _, id := range []string{"C2-bpru", "C2-jrs", "PG-jrs", "PG-bpru"} {
			row, _ := fr.Row(id)
			b.ReportMetric(row.Average.EnergySaving, id+"_energy_sav_%")
		}
	}
}

// BenchmarkSingleRun measures one scaled-down sim.Run end to end — the unit
// of work every figure and sweep above is built from — and reports allocs/op
// so the hot path's allocation behaviour lands in the benchmark trajectory.
// Result caching is disabled: this benchmark gauges the simulator itself,
// not the memo table in front of it.
func BenchmarkSingleRun(b *testing.B) {
	profile, _ := prog.ProfileByName("go")
	cfg := sim.Default()
	cfg.Instructions = 32000
	cfg.Warmup = 8000
	prev := sim.SetResultCaching(false)
	defer sim.SetResultCaching(prev)
	sim.Run(cfg, profile) // warm the program cache and runner pool
	sim.Run(cfg, profile) // settle pool and wakeup-list high-water marks
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(cfg, profile)
	}
}

// BenchmarkIssueStage isolates the issue stage on an enlarged instruction
// window (256 entries — double Table 3), where wakeup/select dominates the
// cycle loop. The sub-benchmarks run the same configuration through the
// event-driven issue stage and through the legacy full-window scan it
// replaced, so the optimization is individually measurable (the two are
// bit-identical in results; the identity tests enforce it).
func BenchmarkIssueStage(b *testing.B) {
	prev := sim.SetResultCaching(false)
	defer sim.SetResultCaching(prev)
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"event", false}, {"scan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			profile, _ := prog.ProfileByName("gcc")
			cfg := sim.Default()
			cfg.Pipe.WindowSize = 256
			cfg.Pipe.LSQSize = 128
			cfg.Pipe.LegacyScanIssue = mode.legacy
			cfg.Instructions = 24000
			cfg.Warmup = 6000
			sim.Run(cfg, profile)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Run(cfg, profile)
			}
		})
	}
}

// BenchmarkFrontEnd isolates the in-order front end on a front-end-bound
// shape (28-stage pipe: 12-deep fetch and decode pipes, so refill traffic
// after every squash dominates), comparing the fused delay line (batched
// fetch groups over one ring + cursor) against the legacy two-ring
// reference it replaced. The two are bit-identical in results; the identity
// tests enforce it.
func BenchmarkFrontEnd(b *testing.B) {
	prev := sim.SetResultCaching(false)
	defer sim.SetResultCaching(prev)
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"fused", false}, {"legacy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			profile, _ := prog.ProfileByName("go")
			cfg := sim.Default()
			cfg.Pipe.SetDepth(28)
			cfg.Pipe.LegacyFrontEnd = mode.legacy
			cfg.Instructions = 24000
			cfg.Warmup = 6000
			sim.Run(cfg, profile)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Run(cfg, profile)
			}
		})
	}
}

// BenchmarkSquashHeavy isolates the power-attribution machinery on the shape
// where it dominates: the highest-misprediction profile on the deepest pipe
// (28 stages) with a doubled instruction window (256 entries, as in
// BenchmarkIssueStage), so every flush squashes the largest possible
// population of in-flight work and moves its accumulated events to the
// wasted pool. The sub-benchmarks run the same configuration through the
// epoch ledgers (whole squashed epochs fold in O(epochs x units)) and
// through the legacy per-instruction event tables they replaced (one table
// walk per squashed instruction). The two are bit-identical in results; the
// identity tests enforce it.
func BenchmarkSquashHeavy(b *testing.B) {
	prev := sim.SetResultCaching(false)
	defer sim.SetResultCaching(prev)
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"epoch", false}, {"legacy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			profile, _ := prog.ProfileByName("go")
			cfg := sim.Default()
			cfg.Pipe.SetDepth(28)
			cfg.Pipe.WindowSize = 256
			cfg.Pipe.LSQSize = 128
			cfg.Pipe.LegacyEventLedger = mode.legacy
			cfg.Instructions = 24000
			cfg.Warmup = 6000
			sim.Run(cfg, profile)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Run(cfg, profile)
			}
		})
	}
}

// BenchmarkWalkerNext isolates the workload walker — the single hottest
// function of the cycle loop — on the highest-misprediction profile,
// comparing the fast path (integer outcome thresholds, flat blockMeta
// tables) against the retained legacy reference (float thresholds, block
// chasing, memRef map). The two are bit-identical in output; the identity
// tests enforce it.
func BenchmarkWalkerNext(b *testing.B) {
	profile, _ := prog.ProfileByName("go")
	program := prog.Generate(profile)
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"fast", false}, {"legacy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			w := prog.NewWalker(program)
			w.SetLegacy(mode.legacy)
			var d prog.DynInst
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Next(&d)
				if d.BrID != prog.NoBranch {
					w.Steer(d.Taken)
					w.Release(&d)
				}
			}
		})
	}
}

// BenchmarkTLBAccess isolates the fully associative TLB: a mixed stream over
// a working set about twice the TLB's 128-entry reach, so hits exercise the
// O(1) recency splice and misses exercise victim eviction. allocs/op guards
// the hash-index path against per-access allocation.
func BenchmarkTLBAccess(b *testing.B) {
	t := cache.NewTLB(128)
	// Deterministic mixed stream: mostly a hot 64-page set, with excursions
	// over a 4096-page span that force misses and evictions.
	addrs := make([]uint64, 8192)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range addrs {
		state = state*6364136223846793005 + 1442695040888963407
		page := state >> 58 // 0..63: hot set
		if i%7 == 0 {
			page = state >> 52 // 0..4095: cold sweep
		}
		addrs[i] = page << 12
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Access(addrs[i&8191])
	}
}

// BenchmarkDepthSweep measures the Figure 6 grid (12 depths x C2+baseline x
// all profiles) cold and then repeated, demonstrating the result cache: the
// warm pass re-serves every grid point from the memo table, so the repeat
// costs a vanishing fraction of the cold sweep (cache_win_%).
func BenchmarkDepthSweep(b *testing.B) {
	opts := sim.Options{Instructions: 20000, Warmup: 5000}
	var depths []int
	for d := 6; d <= 28; d += 2 {
		depths = append(depths, d)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.ClearResultCache()
		t0 := time.Now()
		cold := sim.DepthSweep(opts, depths)
		coldT := time.Since(t0)
		t1 := time.Now()
		warm := sim.DepthSweep(opts, depths)
		warmT := time.Since(t1)
		if len(cold) != len(warm) || cold[0].Average != warm[0].Average {
			b.Fatal("cached sweep diverged from cold sweep")
		}
		b.ReportMetric(float64(coldT.Milliseconds()), "cold_ms")
		b.ReportMetric(float64(warmT.Milliseconds()), "warm_ms")
		b.ReportMetric(100*(1-warmT.Seconds()/coldT.Seconds()), "cache_win_%")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (instructions
// simulated per wall-clock second), the engineering budget every experiment
// above spends. Result caching is disabled so every iteration simulates.
func BenchmarkSimulatorThroughput(b *testing.B) {
	profile, _ := prog.ProfileByName("gzip")
	cfg := sim.Default()
	cfg.Instructions = 50000
	cfg.Warmup = 5000
	prev := sim.SetResultCaching(false)
	defer sim.SetResultCaching(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(cfg, profile)
	}
	insts := float64(cfg.Instructions+cfg.Warmup) * float64(b.N)
	b.ReportMetric(insts/b.Elapsed().Seconds(), "sim_instrs/s")
}
