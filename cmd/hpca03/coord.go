package main

// Coordinator mode (-workers N): shard the selected experiment grid across
// N stworker processes over the shared store, supervise them (reclaim the
// leases of crashed or frozen workers, respawn within budget), then produce
// the report by running the normal dispatch in-process over the now-warm
// store. The final output is byte-identical to a single-process run by
// construction: every point is either served from the store (published by a
// worker) or recomputed here (a partition the workers lost), and points are
// pure. The coordinator is the survivor of last resort — losing all N
// workers degrades to exactly the single-process behavior.

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"selthrottle/internal/faultinject"
	"selthrottle/internal/grid"
	"selthrottle/internal/sim"
)

// workerFaults decodes the -worker-fault flag: semicolon-separated
// part:spec entries ("1:kill-after=2;2:freeze-beats"); spec commas are the
// fault spec's own separators.
func workerFaults(arg string, parts int) (map[int]string, error) {
	m := make(map[int]string)
	if arg == "" {
		return m, nil
	}
	for _, entry := range strings.Split(arg, ";") {
		idx, spec, ok := strings.Cut(strings.TrimSpace(entry), ":")
		var part int
		if _, err := fmt.Sscanf(idx, "%d", &part); !ok || err != nil || part < 0 || part >= parts {
			return nil, fmt.Errorf("bad -worker-fault entry %q (want part:spec, part < %d)", entry, parts)
		}
		if _, err := faultinject.ParseProcFaults(spec); err != nil {
			return nil, fmt.Errorf("bad -worker-fault entry %q: %v", entry, err)
		}
		m[part] = spec
	}
	return m, nil
}

// workerArgs renders the stworker flag list a partition needs to enumerate
// the coordinator's exact grid.
func workerArgs(storeDir string, part, of int, exp, id string, opts sim.Options, bench string, ttl time.Duration, fault string) []string {
	args := []string{
		"-store", storeDir,
		"-part", fmt.Sprint(part),
		"-of", fmt.Sprint(of),
		"-exp", exp,
		"-id", id,
		"-n", fmt.Sprint(opts.Instructions),
		"-warmup", fmt.Sprint(opts.Warmup),
		"-depth", fmt.Sprint(opts.Depth),
		"-kb", fmt.Sprint((opts.PredBytes + opts.ConfBytes) / 1024),
		"-ttl", ttl.String(),
	}
	if bench != "" {
		args = append(args, "-bench", bench)
	}
	if opts.LegacyFrontEnd {
		args = append(args, "-legacyfrontend")
	}
	if opts.LegacyEventLedger {
		args = append(args, "-legacyledger")
	}
	if fault != "" {
		args = append(args, "-fault", fault)
	}
	return args
}

// defaultWorkerBin locates stworker next to the running hpca03 binary.
func defaultWorkerBin() string {
	self, err := os.Executable()
	if err != nil {
		return "stworker"
	}
	return filepath.Join(filepath.Dir(self), "stworker")
}

// runWorkers shards the grid across n stworker processes and supervises
// them to completion. It returns an error only for setup failures (bad
// flags, unreachable worker binary); lost partitions are logged and left
// for the in-process dispatch to compute — degradation, not failure.
func runWorkers(ctx context.Context, n int, workerBin, storeDir, exp, id, bench string, opts sim.Options, ttl time.Duration, respawns int, faultArg string) error {
	points, err := sim.EnumerateGrid(exp, id, opts)
	if err != nil {
		return err
	}
	faults, err := workerFaults(faultArg, n)
	if err != nil {
		return err
	}
	if len(points) == 0 {
		return nil // nothing to shard (e.g. -exp table3)
	}
	leases, err := grid.NewManager(storeDir, nil, ttl)
	if err != nil {
		return err
	}
	gridID := grid.ID(points)
	fmt.Fprintf(os.Stderr, "hpca03: sharding %d points across %d workers (grid %s)\n", len(points), n, gridID)
	outcomes := grid.Coordinate(ctx, grid.CoordinatorOptions{
		Parts:    n,
		GridID:   gridID,
		Leases:   leases,
		Respawns: respawns,
		Spawn: func(part, attempt int) *exec.Cmd {
			// Injected faults arm only the first incarnation: a respawn
			// models recovery from a one-shot crash, resuming the partition
			// from the warm store instead of crash-looping.
			fault := ""
			if attempt == 0 {
				fault = faults[part]
			}
			cmd := exec.Command(workerBin, workerArgs(storeDir, part, n, exp, id, opts, bench, ttl, fault)...)
			cmd.Stderr = os.Stderr
			return cmd
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hpca03: "+format+"\n", args...)
		},
	})
	for _, out := range outcomes {
		switch out.State {
		case grid.PartLost:
			fmt.Fprintf(os.Stderr, "hpca03: partition %d lost after %d respawn(s) (%v); computing in-process\n",
				out.Part, out.Respawns, out.Err)
		case grid.PartFailed:
			fmt.Fprintf(os.Stderr, "hpca03: partition %d completed with point failures\n", out.Part)
		default:
			if out.Respawns > 0 {
				fmt.Fprintf(os.Stderr, "hpca03: partition %d recovered after %d respawn(s)\n", out.Part, out.Respawns)
			}
		}
	}
	return nil
}
