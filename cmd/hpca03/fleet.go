package main

// Fleet mode (-fleet host1,host2): dispatch the selected experiment grid to
// remote stserve workers over HTTP first, then fall through to the normal
// in-process dispatch — which now runs over the warm store and the injected
// result cache, serving fleet-published points without recomputing. The
// final output is byte-identical to a single-process run by construction:
// results cross the wire as the store codec's exact bytes, and any point
// the fleet could not serve (unreachable workers, opened breakers, steal
// races) is computed locally by the coordinator itself.

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"selthrottle/internal/fleet"
	"selthrottle/internal/grid"
	"selthrottle/internal/sim"
)

// runFleet drains the grid through the remote workers. Setup failures (bad
// flags, unreachable store) are errors; unreachable or failing workers are
// not — the coordinator degrades to local compute and the in-process
// dispatch remains the floor. Interruption is left to the caller's ctx
// handling, mirroring runWorkers.
func runFleet(ctx context.Context, targets, storeDir, exp, id, bench string, opts sim.Options, ttl, pointTimeout, hedgeAfter, breakerOpen time.Duration) error {
	points, err := sim.EnumerateGrid(exp, id, opts)
	if err != nil {
		return err
	}
	if len(points) == 0 {
		return nil // nothing to dispatch (e.g. -exp table3)
	}
	var workers []string
	for _, t := range strings.Split(targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			workers = append(workers, t)
		}
	}
	leases, err := grid.NewManager(storeDir, nil, ttl)
	if err != nil {
		return err
	}
	spec := fleet.GridSpec{
		Exp:               exp,
		ID:                id,
		N:                 opts.Instructions,
		Warmup:            opts.Warmup,
		Depth:             opts.Depth,
		KB:                (opts.PredBytes + opts.ConfBytes) / 1024,
		Bench:             bench,
		LegacyFrontEnd:    opts.LegacyFrontEnd,
		LegacyEventLedger: opts.LegacyEventLedger,
	}
	fmt.Fprintf(os.Stderr, "hpca03: dispatching %d points to %d fleet worker(s) (grid %s)\n",
		len(points), len(workers), grid.ID(points))
	rep, err := fleet.Run(ctx, fleet.Options{
		Workers:        workers,
		Spec:           spec,
		Points:         points,
		PointTimeout:   pointTimeout,
		HedgeAfter:     hedgeAfter,
		BreakerOpenFor: breakerOpen,
		Leases:         leases,
		Owner:          fmt.Sprintf("hpca03-pid%d", os.Getpid()),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hpca03: "+format+"\n", args...)
		},
	})
	fmt.Fprintf(os.Stderr, "hpca03: fleet: %d stored, %d remote, %d local, %d failed (%d hedged, %d hedge wins, %d stolen, %d retries, %d probes)\n",
		rep.Stored, rep.Remote, rep.Local, rep.Failed, rep.Hedges, rep.HedgeWins, rep.Steals, rep.RetriesUsed, rep.Probes)
	for _, w := range rep.PerWorker {
		if w.Failures > 0 || w.BreakerOpens > 0 {
			fmt.Fprintf(os.Stderr, "hpca03: fleet worker %s: %d point(s), %d failure(s), breaker opened %dx, closed %dx\n",
				w.Name, w.Points, w.Failures, w.BreakerOpens, w.BreakerCloses)
		}
	}
	if err != nil && !rep.Interrupted {
		return err
	}
	return nil
}
