// Command hpca03 reproduces the tables and figures of "Power-Aware Control
// Speculation through Selective Throttling" (Aragón, González, González;
// HPCA-9 2003) on the synthetic substrate of this repository.
//
// Usage:
//
//	hpca03 -exp <experiment> [-n instructions] [-warmup instructions]
//	       [-depth stages] [-kb totalKB] [-bench name]
//	       [-legacyfrontend] [-legacyledger]
//	       [-store dir] [-workers n] [-fleet host1,host2]
//	       [-cpuprofile file] [-memprofile file]
//
// Experiments:
//
//	table1   power breakdown + fraction wasted by mis-speculated instructions
//	table2   benchmark characteristics (gshare miss rates vs paper)
//	table3   simulated processor configuration
//	fig1     oracle fetch / decode / select limit study
//	ablation estimator/mechanism cross, gating-threshold sweep, per-class split
//	fig3     fetch throttling (A1-A7)
//	fig4     decode throttling (B1-B9)
//	fig5     selection throttling (C1-C7)
//	fig6     pipeline-depth sensitivity (6-28 stages, experiment C2)
//	fig7     predictor+estimator size sensitivity (8-64 KB, experiment C2)
//	conf     confidence estimator quality (SPEC / PVN)
//	all      everything above, in paper order
//	run      a single experiment id (-id C2) against the baseline
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

func main() {
	// All work happens in run so deferred cleanup — profile flushing above
	// all — executes on every path, including the error exits. A bare
	// os.Exit in the middle of main skips deferred StopCPUProfile/Close and
	// truncates the profile files, which is exactly the failure mode this
	// structure removes.
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment to reproduce (table1|table2|table3|fig1|fig3|fig4|fig5|fig6|fig7|conf|ablation|all|run)")
	id := flag.String("id", "C2", "experiment id for -exp run (e.g. A5, B7, C2, oracle-fetch)")
	n := flag.Uint64("n", prog.DefaultInstructions, "measured instructions per benchmark")
	warmup := flag.Uint64("warmup", 0, "warmup instructions per benchmark (default n/4)")
	depth := flag.Int("depth", 14, "pipeline depth in stages (fetch to commit)")
	kb := flag.Int("kb", 16, "total predictor+estimator budget in KB (split half/half)")
	bench := flag.String("bench", "", "restrict to a comma-separated list of benchmarks")
	verbose := flag.Bool("v", false, "print the process-wide result-cache reuse summary at exit")
	legacyFront := flag.Bool("legacyfrontend", false, "simulate on the two-ring reference front end (diagnostics; output is byte-identical)")
	legacyLedger := flag.Bool("legacyledger", false, "simulate on the per-instruction power-attribution reference instead of the epoch ledgers (diagnostics; output is byte-identical)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	storeDir := flag.String("store", "", "persistent result store directory (crash-safe disk cache tier; empty = memory only)")
	cacheEntries := flag.Int("cache-entries", sim.DefaultCacheEntries, "in-memory result cache entry cap (0 = unbounded)")
	quarWarn := flag.Int("quarantine-warn", 0, "warn once when the store holds more than this many quarantined files (0 = off)")
	workers := flag.Int("workers", 0, "shard the grid across this many stworker processes over -store (0 = in-process)")
	workerBin := flag.String("worker-bin", "", "stworker binary path (default: next to this binary)")
	leaseTTL := flag.Duration("lease-ttl", 0, "worker lease expiry horizon (default 3s)")
	respawns := flag.Int("respawn", 2, "respawn budget per crashed/frozen worker partition")
	workerFault := flag.String("worker-fault", "", "per-partition fault specs, e.g. '1:kill-after=2;2:freeze-beats' (test use)")
	fleetHosts := flag.String("fleet", "", "comma-separated stserve workers to dispatch the grid to over HTTP (requires -store)")
	pointTimeout := flag.Duration("point-timeout", 0, "fleet per-request deadline (0 = derived from point cost)")
	hedgeAfter := flag.Duration("hedge-after", 0, "fleet straggler threshold before hedging a request (0 = derived; negative disables)")
	breakerOpen := flag.Duration("breaker-open", 0, "fleet circuit-breaker open interval before a readiness probe (0 = default)")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpca03: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "hpca03: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hpca03: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hpca03: -memprofile: %v\n", err)
			}
		}()
	}
	if *verbose {
		// Every experiment below shares one process-wide result cache, so
		// overlapping grids (shared baselines, repeated experiment points
		// across figures and sweeps) simulate once; -exp all exercises this
		// heavily.
		defer sim.WriteCacheSummary(os.Stderr)
	}

	sim.SetResultCacheLimit(*cacheEntries)
	if *storeDir != "" {
		// A disk tier that fails to open degrades to compute-through, never
		// blocks the reproduction: warn and continue on the memory tier.
		held, err := sim.UseDiskStore(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpca03: -store %s unavailable, continuing without a disk tier: %v\n", *storeDir, err)
		} else {
			fmt.Fprintf(os.Stderr, "hpca03: result store %s: %d entries\n", *storeDir, held)
		}
		if st := sim.DiskStore(); st != nil && *quarWarn > 0 {
			st.SetQuarantineWarn(*quarWarn, func(files int) {
				fmt.Fprintf(os.Stderr, "hpca03: store quarantine holds %d files (threshold %d); inspect %s\n",
					files, *quarWarn, *storeDir)
			})
		}
	}

	// SIGINT/SIGTERM cancels the grid cooperatively: in-flight points stop at
	// their next cancellation check, completed points stay reported, and the
	// process exits with the partial-grid code instead of dying mid-write.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()

	opts := sim.Options{
		Instructions:      *n,
		Warmup:            *warmup,
		Depth:             *depth,
		PredBytes:         *kb * 1024 / 2,
		ConfBytes:         *kb * 1024 / 2,
		LegacyFrontEnd:    *legacyFront,
		LegacyEventLedger: *legacyLedger,
	}
	if *bench != "" {
		var ps []prog.Profile
		for _, name := range strings.Split(*bench, ",") {
			p, ok := prog.ProfileByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "hpca03: unknown benchmark %q\n", name)
				return 2
			}
			ps = append(ps, p)
		}
		opts.Profiles = ps
	}

	// Coordinator mode: shard the grid across worker processes first, then
	// fall through to the normal dispatch — which now runs over the warm
	// store, serving worker-published points from disk and computing any a
	// lost partition left behind. Same code path, same bytes out.
	if *workers > 0 {
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "hpca03: -workers requires -store")
			return 2
		}
		bin := *workerBin
		if bin == "" {
			bin = defaultWorkerBin()
		}
		if err := runWorkers(ctx, *workers, bin, *storeDir, *exp, *id, *bench, opts, *leaseTTL, *respawns, *workerFault); err != nil {
			fmt.Fprintf(os.Stderr, "hpca03: -workers: %v\n", err)
			return 2
		}
	}

	// Fleet mode: same fall-through shape as -workers, but the compute runs
	// on remote stserve instances over HTTP — deadlines, retries, hedging,
	// circuit breakers, and a local-compute floor when the network loses.
	if *fleetHosts != "" {
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "hpca03: -fleet requires -store")
			return 2
		}
		if err := runFleet(ctx, *fleetHosts, *storeDir, *exp, *id, *bench, opts, *leaseTTL, *pointTimeout, *hedgeAfter, *breakerOpen); err != nil {
			fmt.Fprintf(os.Stderr, "hpca03: -fleet: %v\n", err)
			return 2
		}
	}

	// Guard converts a fail-fast *pipe.RunError panic (a table or reference
	// run hitting a terminal simulator failure) into a diagnostic snapshot
	// on stderr and a nonzero exit, instead of a raw panic trace killing the
	// process mid-report; supervised figure grids isolate failures per point
	// and report them via runFigure below.
	code := sim.Guard(os.Stderr, "hpca03", func() int { return dispatch(ctx, *exp, *id, opts) })
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "hpca03: interrupted; completed points reported above")
		if code == 0 {
			code = 1
		}
	}
	return code
}

// dispatch runs the selected experiment(s), returning the process exit code:
// 0 on full success, 1 when any supervised grid point failed, 2 on usage
// errors.
func dispatch(ctx context.Context, exp, id string, opts sim.Options) int {
	failed := 0
	switch exp {
	case "table1":
		failed += runTable1(ctx, opts)
	case "table2":
		failed += runTable2(ctx, opts)
	case "table3":
		sim.WriteTable3(os.Stdout, sim.Default())
	case "fig1":
		failed += runFigure(ctx, "Figure 1: oracle fetch/decode/select", sim.OracleExperiments(), opts)
	case "fig3":
		failed += runFigure(ctx, "Figure 3: fetch throttling", sim.FetchExperiments(), opts)
	case "fig4":
		failed += runFigure(ctx, "Figure 4: decode throttling", sim.DecodeExperiments(), opts)
	case "fig5":
		failed += runFigure(ctx, "Figure 5: selection throttling", sim.SelectionExperiments(), opts)
	case "fig6":
		points := sim.DepthSweepE(ctx, opts, nil)
		failed += reportSweepFailures(points)
		sim.WriteSweep(os.Stdout, "Figure 6: pipeline depth (experiment C2)", "stages", points)
	case "fig7":
		points := sim.SizeSweepE(ctx, opts, nil)
		failed += reportSweepFailures(points)
		sim.WriteSweep(os.Stdout, "Figure 7: predictor+estimator size (experiment C2)", "KB", points)
	case "conf":
		failed += runConfidence(ctx, opts)
	case "ablation":
		failed += runFigure(ctx, "Ablation: estimator x mechanism cross", sim.EstimatorCrossExperiments(), opts)
		fmt.Println()
		failed += runFigure(ctx, "Ablation: Pipeline Gating threshold sweep", sim.GateThresholdExperiments(), opts)
		fmt.Println()
		failed += runFigure(ctx, "Ablation: C2 per-class contributions", sim.EscalationAblationExperiments(), opts)
	case "run":
		e, ok := sim.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "hpca03: unknown experiment id %q\n", id)
			return 2
		}
		failed += runFigure(ctx, "Experiment "+e.ID+": "+e.Label, []sim.Experiment{e}, opts)
	case "all":
		sim.WriteTable3(os.Stdout, sim.Default())
		fmt.Println()
		failed += runTable2(ctx, opts)
		fmt.Println()
		failed += runTable1(ctx, opts)
		fmt.Println()
		failed += runConfidence(ctx, opts)
		fmt.Println()
		failed += runFigure(ctx, "Figure 1: oracle fetch/decode/select", sim.OracleExperiments(), opts)
		fmt.Println()
		failed += runFigure(ctx, "Figure 3: fetch throttling", sim.FetchExperiments(), opts)
		fmt.Println()
		failed += runFigure(ctx, "Figure 4: decode throttling", sim.DecodeExperiments(), opts)
		fmt.Println()
		failed += runFigure(ctx, "Figure 5: selection throttling", sim.SelectionExperiments(), opts)
		fmt.Println()
		points := sim.DepthSweepE(ctx, opts, nil)
		failed += reportSweepFailures(points)
		sim.WriteSweep(os.Stdout, "Figure 6: pipeline depth (experiment C2)", "stages", points)
		fmt.Println()
		points = sim.SizeSweepE(ctx, opts, nil)
		failed += reportSweepFailures(points)
		sim.WriteSweep(os.Stdout, "Figure 7: predictor+estimator size (experiment C2)", "KB", points)
	default:
		fmt.Fprintf(os.Stderr, "hpca03: unknown experiment %q\n", exp)
		return 2
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "hpca03: %d grid point(s) failed; healthy points reported above\n", failed)
		return 1
	}
	return 0
}

// runTable1 reproduces Table 1 under ctx; the table is all-or-nothing, so a
// failed point (or cancellation) prints its diagnostic and counts as one
// failure without printing a partial table.
func runTable1(ctx context.Context, opts sim.Options) int {
	t1, err := sim.RunTable1E(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAILED table1: %v\n", err)
		return 1
	}
	sim.WriteTable1(os.Stdout, t1)
	return 0
}

// runTable2 reproduces Table 2 under ctx, all-or-nothing like runTable1.
func runTable2(ctx context.Context, opts sim.Options) int {
	rows, err := sim.RunTable2E(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAILED table2: %v\n", err)
		return 1
	}
	sim.WriteTable2(os.Stdout, rows)
	return 0
}

// runConfidence measures the estimator operating points under ctx,
// all-or-nothing like the tables.
func runConfidence(ctx context.Context, opts sim.Options) int {
	crs, err := sim.RunConfidenceE(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAILED confidence: %v\n", err)
		return 1
	}
	sim.WriteConfidence(os.Stdout, crs)
	return 0
}

// runFigure runs one supervised figure grid under ctx, prints the healthy
// results to stdout and any per-point failure diagnostics to stderr, and
// returns the number of failed points.
func runFigure(ctx context.Context, name string, exps []sim.Experiment, opts sim.Options) int {
	fr := sim.RunFigureE(ctx, name, exps, opts)
	sim.WriteFigure(os.Stdout, fr)
	fr.WriteFailures(os.Stderr)
	return len(fr.Failures)
}

// reportSweepFailures prints any per-point failures a sweep isolated and
// returns their count.
func reportSweepFailures(points []sim.SweepPoint) int {
	failed := 0
	for _, pt := range points {
		for _, f := range pt.Failures {
			fmt.Fprintf(os.Stderr, "FAILED %s\n", f)
			failed++
		}
	}
	return failed
}
