// Command stcalib is the calibration inspector for the reproduction: it
// measures, per benchmark profile, the quantities the synthetic substrate is
// calibrated against — gshare misprediction rate (Table 2), confidence
// estimator operating points (§4.3), per-unit utilization and the power
// breakdown (Table 1) — and prints them next to the paper's targets.
//
// Usage:
//
//	stcalib [-n instructions] [-warmup instructions]
//
// The utilization column feeds internal/power's baselineUtil constants:
// after a simulator change, run stcalib and paste the new values.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"

	"selthrottle/internal/power"
	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

func main() {
	// All work happens in run behind sim.Guard: a terminal simulation
	// failure exits nonzero with the machine's diagnostic snapshot instead
	// of a raw panic trace, and deferred cleanup still runs.
	os.Exit(run())
}

func run() int {
	n := flag.Uint64("n", prog.DefaultInstructions, "measured instructions per benchmark")
	warmup := flag.Uint64("warmup", 0, "warmup instructions (default n/4)")
	tune := flag.Bool("tune", false, "solve for per-profile noise scales hitting Table 2 miss rates")
	verbose := flag.Bool("v", false, "print the process-wide result-cache reuse summary at exit")
	flag.Parse()

	if *verbose {
		// The calibration passes below overlap heavily (Table 2, Table 1,
		// and the BPRU confidence pass all run the baseline grid); the
		// shared result cache simulates each point once.
		defer sim.WriteCacheSummary(os.Stderr)
	}
	if *warmup == 0 {
		*warmup = *n / 4
	}
	// SIGINT/SIGTERM cancels the calibration passes cooperatively; the
	// sections printed so far stay complete.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	return sim.Guard(os.Stderr, "stcalib", func() int {
		return calibrate(ctx, *n, *warmup, *tune)
	})
}

func calibrate(ctx context.Context, n, warmup uint64, tune bool) int {
	if tune {
		return tuneNoiseScales(ctx, n, warmup)
	}

	opts := sim.Options{Instructions: n, Warmup: warmup}

	fmt.Println("== per-benchmark calibration (baseline config)")
	rows, err := sim.RunTable2E(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stcalib: table 2 pass failed: %v\n", err)
		return 1
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "bench\tmiss% meas\tmiss% paper\tbranch frac\tIPC\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.3f\t%.2f\n",
			r.Profile.Name, 100*r.MeasuredMiss, r.Profile.PaperMissPct,
			r.BranchFraction, r.IPC)
	}
	tw.Flush()

	fmt.Println()
	crs, err := sim.RunConfidenceE(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stcalib: confidence pass failed: %v\n", err)
		return 1
	}
	sim.WriteConfidence(os.Stdout, crs)

	fmt.Println()
	t1, err := sim.RunTable1E(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stcalib: table 1 pass failed: %v\n", err)
		return 1
	}
	sim.WriteTable1(os.Stdout, t1)

	fmt.Println("\n== measured baseline utilization (paste into internal/power baselineUtil)")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for u := power.Unit(0); u < power.NumUnits; u++ {
		fmt.Fprintf(tw, "Unit%s:\t%.3f\n", titled(u.String()), t1.Utilization[u])
	}
	tw.Flush()

	// Wrong-path traffic summary: the paper reports up to 80 % of fetched
	// instructions can be wrong-path on these benchmarks.
	fmt.Println("\n== wrong-path fetch traffic")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "bench\twrong/fetched%\tfetch/commit\twpDecoded\twpDispatched\twpIssued\tperMispredict\n")
	for _, r := range t1.Results {
		mp := float64(r.Stats.Mispredicts)
		if mp == 0 {
			mp = 1
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\n", r.Benchmark,
			100*float64(r.Stats.WrongPathFetched)/float64(r.Stats.Fetched),
			float64(r.Stats.Fetched)/float64(r.Stats.Committed),
			float64(r.Stats.WrongPathDecoded)/float64(r.Stats.WrongPathFetched+1),
			float64(r.Stats.WrongPathDispatched)/float64(r.Stats.WrongPathFetched+1),
			float64(r.Stats.WrongPathIssued)/float64(r.Stats.WrongPathFetched+1),
			float64(r.Stats.WrongPathFetched)/mp)
	}
	tw.Flush()
	return 0
}

// titled maps a unit name to its Go constant suffix (icache -> ICache, ...).
func titled(name string) string {
	switch name {
	case "icache":
		return "ICache"
	case "bpred":
		return "BPred"
	case "regfile":
		return "Regfile"
	case "rename":
		return "Rename"
	case "window":
		return "Window"
	case "lsq":
		return "LSQ"
	case "alu":
		return "ALU"
	case "dcache":
		return "DCache"
	case "dcache2":
		return "DCache2"
	case "resultbus":
		return "ResultBus"
	case "clock":
		return "Clock"
	}
	return name
}
