package main

import (
	"context"
	"fmt"
	"math"
	"sync"

	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

// tuneNoiseScales solves, per profile, for the NoiseScaleOverride that lands
// the measured gshare misprediction rate on the paper's Table 2 value, by
// bisection on the (monotone) noise-scale/miss-rate relationship. It prints
// the resulting scales as Go literals to paste into internal/prog/profile.go.
// Canceling ctx (Ctrl-C) stops the search and suppresses the paste block —
// a partial grid search would print wrong constants.
func tuneNoiseScales(ctx context.Context, n, warmup uint64) int {
	profiles := prog.Profiles()
	type result struct {
		name  string
		scale float64
		miss  float64
	}
	results := make([]result, len(profiles))
	var wg sync.WaitGroup
	var sup sim.Supervisor
	for i, p := range profiles {
		wg.Add(1)
		go func(i int, p prog.Profile) {
			defer wg.Done()
			// Grid search: the miss-rate response to the gate frequency
			// is monotone only on average (hot-loop phases shift), so a
			// best-seen grid beats bisection here.
			target := p.PaperMissPct / 100
			best, bestMiss, bestErr := 0.5, 0.0, math.Inf(1)
			for f := 0.05; f <= 1.0001; f += 0.05 {
				p.HardFreqOverride = f
				cfg := sim.Default()
				cfg.Instructions = n
				cfg.Warmup = warmup
				r, st := sup.RunPointE(ctx, cfg, p)
				if !st.OK() {
					return // canceled or failed: this profile reports nothing
				}
				if err := math.Abs(r.MissRate - target); err < bestErr {
					best, bestMiss, bestErr = f, r.MissRate, err
				}
			}
			results[i] = result{p.Name, best, bestMiss}
		}(i, p)
	}
	wg.Wait()
	if ctx.Err() != nil {
		fmt.Println("== tuning interrupted; no constants to paste")
		return 1
	}
	fmt.Println("== tuned gate frequencies (paste HardFreqOverride into profiles)")
	for i, r := range results {
		fmt.Printf("%-10s HardFreqOverride: %.3f,   // measured miss %.1f%% target %.1f%%\n",
			r.name, r.scale, 100*r.miss, profiles[i].PaperMissPct)
	}
	return 0
}
