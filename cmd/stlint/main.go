// Command stlint is the simulator's static-analysis gate: a multichecker
// over internal/lint's analyzer suite (barepanic, fsseam, determinism,
// hotalloc, legacypair), speaking the `go vet -vettool` protocol.
//
// Usage:
//
//	go build -o /tmp/stlint ./cmd/stlint
//	go vet -vettool=/tmp/stlint ./...
//
// See internal/lint's package documentation for what each analyzer
// enforces and the annotation vocabulary (`// invariant:`, `// fail-fast:`,
// `//st:hotpath`, `//st:wallclock`, `//st:unordered`, `//st:alloc-ok`,
// `//st:rawfs`).
package main

import "selthrottle/internal/lint"

func main() {
	lint.Main(lint.All()...)
}
