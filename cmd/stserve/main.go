// Command stserve exposes the selective-throttling reproduction as a
// resilient HTTP/JSON sweep service: single simulation points, whole figure
// grids, and NDJSON-streamed sensitivity sweeps, backed by the tiered result
// cache (bounded memory LRU over the crash-safe persistent store) and PR 6's
// run supervision. Overload sheds with 429 + Retry-After instead of queueing
// without bound; SIGTERM/SIGINT drains in-flight requests before exiting.
//
// Usage:
//
//	stserve -addr :8080 -store /var/cache/selthrottle -n 2000000
//
// Endpoints: /healthz (liveness), /readyz (readiness; 503 while draining),
// /statsz, /v1/point, /v1/figure, /v1/sweep (NDJSON), /v1/compute (fleet
// point dispatch). See README.md for the API.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"selthrottle/internal/fleet"
	"selthrottle/internal/grid"
	"selthrottle/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		n       = flag.Uint64("n", 200_000, "default instructions per run")
		warmup  = flag.Uint64("warmup", 0, "default warmup instructions (0 = n/4)")
		maxN    = flag.Uint64("max-n", 50_000_000, "per-request instruction ceiling")
		queue   = flag.Int("queue", 4, "admitted requests in flight before shedding with 429")
		timeout = flag.Duration("timeout", 5*time.Minute, "per-request deadline (0 = none)")
		drain   = flag.Duration("drain", 30*time.Second, "in-flight drain budget on SIGTERM/SIGINT")
		retries = flag.Int("retries", 1, "per-point retry budget for transient failures")
		storeD  = flag.String("store", "", "persistent result store directory (empty = memory tier only)")
		entries = flag.Int("cache-entries", sim.DefaultCacheEntries, "in-memory result cache entry cap (0 = unbounded)")
		qWarn   = flag.Int("quarantine-warn", 0, "warn once when the store holds more than this many quarantined files (0 = off)")
		ttl     = flag.Duration("lease-ttl", grid.DefaultTTL, "point-lease expiry horizon for /v1/compute (must match the fleet's)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "stserve: unexpected arguments %q\n", flag.Args())
		return 2
	}

	sim.SetResultCacheLimit(*entries)
	if *storeD != "" {
		held, err := sim.UseDiskStore(*storeD)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stserve: open result store: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "stserve: result store %s: %d entries\n", *storeD, held)
		// Quarantine growth is the store absorbing corruption instead of
		// failing; a climbing count means something is feeding it (bad disk,
		// torn writers). /statsz reports the count continuously; this logs
		// once when it crosses the threshold.
		if st := sim.DiskStore(); st != nil && *qWarn > 0 {
			st.SetQuarantineWarn(*qWarn, func(files int) {
				fmt.Fprintf(os.Stderr, "stserve: store quarantine holds %d files (threshold %d); inspect %s\n",
					files, *qWarn, *storeD)
			})
		}
	}

	opts := sim.Options{Instructions: *n, Warmup: *warmup}
	sup := sim.Supervisor{Timeout: *timeout, Retries: *retries}
	s := newServer(opts, sup, *queue, *timeout, *maxN)

	// /v1/compute: fleet point dispatch. With a store, each computed point
	// is guarded by a point lease (work stealing and hedge fencing run
	// through it); without one, the endpoint still serves points leaseless
	// and results travel in the response body only.
	var leases *grid.Manager
	if *storeD != "" {
		var err error
		if leases, err = grid.NewManager(*storeD, nil, *ttl); err != nil {
			fmt.Fprintf(os.Stderr, "stserve: lease manager: %v\n", err)
			return 1
		}
	}
	s.compute = &fleet.ComputeServer{
		Sup:    sup,
		Leases: leases,
		Owner:  fmt.Sprintf("stserve-pid%d", os.Getpid()),
		MaxN:   *maxN,
		Ready:  func() bool { return !s.draining.Load() },
		Admit:  s.acquire,
		Logf:   func(format string, args ...any) { fmt.Fprintf(os.Stderr, "stserve: "+format+"\n", args...) },
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until the first SIGTERM/SIGINT, then drain: stop accepting,
	// finish in-flight requests within the drain budget, and exit 0 clean
	// or 1 if the budget expired with requests still running.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "stserve: listening on %s (queue %d, timeout %v)\n", *addr, *queue, *timeout)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "stserve: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()          // second signal kills immediately via default disposition
	s.SetDraining() // /readyz goes 503 before the listener starts refusing
	fmt.Fprintf(os.Stderr, "stserve: draining (up to %v)\n", *drain)

	dctx := context.Background()
	if *drain > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(dctx, *drain)
		defer cancel()
	}
	if err := srv.Shutdown(dctx); err != nil {
		srv.Close()
		fmt.Fprintf(os.Stderr, "stserve: drain expired with requests in flight: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "stserve: drained, exiting")
	return 0
}
