package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"selthrottle/internal/fleet"
	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

// server is the sweep service: experiment grids over HTTP/JSON on top of
// the supervised, tiered-cache simulation drivers. Its resilience posture
// mirrors the paper's throttling philosophy applied to itself — bound the
// work in flight, shed the excess early (429 + Retry-After) instead of
// queueing into collapse, bound every admitted request with a deadline that
// cancels the simulation cooperatively, and degrade partial failures to
// per-point reports instead of failed responses.
type server struct {
	opts    sim.Options    // request defaults (instructions, warmup, depth, sizes)
	sup     sim.Supervisor // per-point policy for admitted requests
	timeout time.Duration  // per-request deadline
	maxN    uint64         // per-request instruction-budget ceiling
	queue   chan struct{}  // admission semaphore; full = shed
	start   time.Time

	// draining flips at the first SIGTERM/SIGINT, before Shutdown begins:
	// /readyz goes 503 so proxies and fleet coordinators stop routing new
	// work here while in-flight requests finish. /healthz stays green — a
	// draining process is alive, just leaving.
	draining atomic.Bool

	// compute, when non-nil, serves /v1/compute (fleet point dispatch).
	compute *fleet.ComputeServer

	served  atomic.Uint64 // requests that ran to a response (incl. partial grids)
	shed    atomic.Uint64 // requests rejected 429 at admission
	failed  atomic.Uint64 // admitted requests whose every point failed
	retried atomic.Uint64 // extra attempts consumed by supervisor retries

	// runPoint and runFigure are the simulation seams, swappable in tests
	// (a wedged or slow "simulator" without real fault plumbing).
	runPoint  func(ctx context.Context, cfg sim.Config, p prog.Profile) (sim.Result, sim.PointStatus)
	runFigure func(ctx context.Context, name string, exps []sim.Experiment, opts sim.Options) *sim.FigureResult
}

// newServer builds a server with the given request defaults, admission
// queue capacity, and per-request deadline.
func newServer(opts sim.Options, sup sim.Supervisor, queueCap int, timeout time.Duration, maxN uint64) *server {
	if queueCap < 1 {
		queueCap = 1
	}
	s := &server{
		opts:    opts,
		sup:     sup,
		timeout: timeout,
		maxN:    maxN,
		queue:   make(chan struct{}, queueCap),
		start:   time.Now(),
	}
	s.runPoint = func(ctx context.Context, cfg sim.Config, p prog.Profile) (sim.Result, sim.PointStatus) {
		sup := s.sup
		return sup.RunPointE(ctx, cfg, p)
	}
	s.runFigure = func(ctx context.Context, name string, exps []sim.Experiment, opts sim.Options) *sim.FigureResult {
		return sim.RunFigureE(ctx, name, exps, opts)
	}
	return s
}

// routes builds the service's handler tree.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /v1/point", s.handlePoint)
	mux.HandleFunc("GET /v1/figure", s.handleFigure)
	mux.HandleFunc("GET /v1/sweep", s.handleSweep)
	if s.compute != nil {
		mux.Handle("GET /v1/compute", s.compute)
		mux.Handle("POST /v1/compute", s.compute)
	}
	return mux
}

// acquire admits one request into the bounded work queue, or sheds it with
// 429 + Retry-After. Shedding at admission — rather than queueing without
// bound — keeps /healthz green and latency sane under overload: the Runner
// pool saturates at GOMAXPROCS simulations, so work beyond the queue cap
// could only wait, and a waiting client is better served by an honest 429.
func (s *server) acquire(w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.queue <- struct{}{}:
		return func() { <-s.queue }, true
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "saturated: simulation queue full, retry later", http.StatusTooManyRequests)
		return nil, false
	}
}

// requestContext bounds one admitted request: the client's context (so a
// disconnect cancels the simulation) plus the service deadline.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness only: overload sheds at admission, so a saturated server is
	// still a healthy server, and a draining one is still alive. Readiness
	// is /readyz's question.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 503 while draining, so proxies and
// fleet coordinators stop routing new work to a worker that is leaving,
// instead of discovering the drain by watching their requests fail.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// SetDraining flips the readiness gate (idempotent, one-way).
func (s *server) SetDraining() { s.draining.Store(true) }

// statszResponse is the service's observability snapshot.
type statszResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      struct {
		Served uint64 `json:"served"`
		Shed   uint64 `json:"shed"`
		Failed uint64 `json:"failed"`
	} `json:"requests"`
	Queue struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
	RetriedAttempts uint64             `json:"retried_attempts"`
	Cache           sim.CacheTierStats `json:"cache"`
}

func (s *server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	var resp statszResponse
	resp.UptimeSeconds = time.Since(s.start).Seconds()
	resp.Requests.Served = s.served.Load()
	resp.Requests.Shed = s.shed.Load()
	resp.Requests.Failed = s.failed.Load()
	resp.Queue.Depth = len(s.queue)
	resp.Queue.Capacity = cap(s.queue)
	resp.RetriedAttempts = s.retried.Load()
	resp.Cache = sim.ResultCacheTierStats()
	writeJSON(w, http.StatusOK, resp)
}

// optionsFrom resolves request parameters onto the service defaults:
// n, warmup (instructions), depth (stages), kb (total predictor+estimator
// budget), bench (comma-separated profile names).
func (s *server) optionsFrom(q url.Values) (sim.Options, error) {
	opts := s.opts
	if v := q.Get("n"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			return opts, fmt.Errorf("bad n %q", v)
		}
		opts.Instructions = n
		opts.Warmup = 0 // re-derive from n unless given explicitly
	}
	if opts.Instructions > s.maxN {
		return opts, fmt.Errorf("n %d exceeds the per-request ceiling %d", opts.Instructions, s.maxN)
	}
	if v := q.Get("warmup"); v != "" {
		wu, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("bad warmup %q", v)
		}
		opts.Warmup = wu
	}
	if v := q.Get("depth"); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil || d < 6 || d > 64 {
			return opts, fmt.Errorf("bad depth %q (want 6..64)", v)
		}
		opts.Depth = d
	}
	if v := q.Get("kb"); v != "" {
		kb, err := strconv.Atoi(v)
		if err != nil || kb < 1 || kb > 1024 {
			return opts, fmt.Errorf("bad kb %q (want 1..1024)", v)
		}
		opts.PredBytes = kb * 1024 / 2
		opts.ConfBytes = kb * 1024 / 2
	}
	if v := q.Get("bench"); v != "" {
		var ps []prog.Profile
		for _, name := range strings.Split(v, ",") {
			p, ok := prog.ProfileByName(strings.TrimSpace(name))
			if !ok {
				return opts, fmt.Errorf("unknown benchmark %q", name)
			}
			ps = append(ps, p)
		}
		opts.Profiles = ps
	}
	return opts, nil
}

// comparisonJSON is one experiment-vs-baseline metric bundle.
type comparisonJSON struct {
	Benchmark     string  `json:"benchmark"`
	Speedup       float64 `json:"speedup"`
	PowerSaving   float64 `json:"power_saving_pct"`
	EnergySaving  float64 `json:"energy_saving_pct"`
	EDImprovement float64 `json:"ed_improvement_pct"`
}

func toComparisonJSON(c sim.Comparison) comparisonJSON {
	return comparisonJSON{
		Benchmark:     c.Benchmark,
		Speedup:       c.Speedup,
		PowerSaving:   c.PowerSaving,
		EnergySaving:  c.EnergySaving,
		EDImprovement: c.EDImprovement,
	}
}

// resultJSON is one run's headline numbers.
type resultJSON struct {
	Benchmark string  `json:"benchmark"`
	IPC       float64 `json:"ipc"`
	MissRate  float64 `json:"miss_rate"`
	Seconds   float64 `json:"seconds"`
	Energy    float64 `json:"energy_j"`
	EDelay    float64 `json:"energy_delay_js"`
	AvgPower  float64 `json:"avg_power_w"`
}

func toResultJSON(r sim.Result) resultJSON {
	return resultJSON{
		Benchmark: r.Benchmark,
		IPC:       r.IPC,
		MissRate:  r.MissRate,
		Seconds:   r.Seconds,
		Energy:    r.Energy,
		EDelay:    r.EDelay,
		AvgPower:  r.AvgPower,
	}
}

// pointResponse is /v1/point's body.
type pointResponse struct {
	Experiment string          `json:"experiment"`
	Attempts   int             `json:"attempts"`
	Result     resultJSON      `json:"result"`
	Comparison *comparisonJSON `json:"comparison,omitempty"`
}

// handlePoint serves one (configuration, benchmark) simulation point:
// bench (required), id (experiment, default baseline), compare=1 to also
// run the baseline and report the paper's four metrics against it.
func (s *server) handlePoint(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	bench := q.Get("bench")
	if bench == "" {
		http.Error(w, "missing bench parameter", http.StatusBadRequest)
		return
	}
	profile, ok := prog.ProfileByName(bench)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown benchmark %q", bench), http.StatusBadRequest)
		return
	}
	opts, err := s.optionsFrom(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id := q.Get("id")
	if id == "" {
		id = "baseline"
	}
	cfg := opts.BaseConfig()
	if id != "baseline" {
		e, ok := sim.ExperimentByID(id)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown experiment id %q", id), http.StatusBadRequest)
			return
		}
		cfg = e.Apply(cfg)
	}

	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r)
	defer cancel()

	res, st := s.runPoint(ctx, cfg, profile)
	s.noteAttempts(st)
	if !st.OK() {
		s.failPoint(w, st.Err)
		return
	}
	resp := pointResponse{Experiment: id, Attempts: st.Attempts, Result: toResultJSON(res)}
	if q.Get("compare") == "1" && id != "baseline" {
		base, bst := s.runPoint(ctx, opts.BaseConfig(), profile)
		s.noteAttempts(bst)
		if !bst.OK() {
			s.failPoint(w, bst.Err)
			return
		}
		cmp := toComparisonJSON(sim.Compare(base, res))
		resp.Comparison = &cmp
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// figures maps /v1/figure names onto the paper's experiment series.
func figures(name string) ([]sim.Experiment, string, bool) {
	switch name {
	case "fig1":
		return sim.OracleExperiments(), "Figure 1: oracle fetch/decode/select", true
	case "fig3":
		return sim.FetchExperiments(), "Figure 3: fetch throttling", true
	case "fig4":
		return sim.DecodeExperiments(), "Figure 4: decode throttling", true
	case "fig5":
		return sim.SelectionExperiments(), "Figure 5: selection throttling", true
	}
	return nil, "", false
}

// figureResponse is /v1/figure's body.
type figureResponse struct {
	Name      string       `json:"name"`
	Baselines []resultJSON `json:"baselines"`
	Rows      []figureRow  `json:"rows"`
	Failures  []string     `json:"failures,omitempty"`
}

type figureRow struct {
	ID       string           `json:"id"`
	Label    string           `json:"label"`
	PerBench []comparisonJSON `json:"per_bench"`
	Average  comparisonJSON   `json:"average"`
}

func toFigureResponse(fr *sim.FigureResult) figureResponse {
	resp := figureResponse{Name: fr.Name}
	for _, b := range fr.Baselines {
		resp.Baselines = append(resp.Baselines, toResultJSON(b))
	}
	for _, row := range fr.Rows {
		jr := figureRow{ID: row.Experiment.ID, Label: row.Experiment.Label, Average: toComparisonJSON(row.Average)}
		for _, c := range row.PerBench {
			jr.PerBench = append(jr.PerBench, toComparisonJSON(c))
		}
		resp.Rows = append(resp.Rows, jr)
	}
	for _, f := range fr.Failures {
		resp.Failures = append(resp.Failures, f.String())
	}
	return resp
}

// handleFigure serves one whole figure grid: fig=fig1|fig3|fig4|fig5 plus
// the shared option parameters. Failed grid points degrade to entries in
// failures (their cells read zero and are excluded from averages), matching
// the CLI's supervised semantics.
func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	exps, title, ok := figures(q.Get("fig"))
	if !ok {
		http.Error(w, fmt.Sprintf("unknown figure %q (want fig1|fig3|fig4|fig5)", q.Get("fig")), http.StatusBadRequest)
		return
	}
	opts, err := s.optionsFrom(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	opts.Supervise = s.sup

	release, okAdmit := s.acquire(w)
	if !okAdmit {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r)
	defer cancel()

	fr := s.runFigure(ctx, title, exps, opts)
	s.noteFigure(fr)
	if len(fr.Failures) == len(fr.Statuses) && len(fr.Failures) > 0 {
		// Nothing succeeded — report the first failure as the request's.
		s.failed.Add(1)
		s.failPoint(w, fr.Failures[0].Err)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, toFigureResponse(fr))
}

// sweepPointJSON is one NDJSON line of /v1/sweep.
type sweepPointJSON struct {
	X        int            `json:"x"`
	Average  comparisonJSON `json:"average"`
	Failures []string       `json:"failures,omitempty"`
}

// handleSweep streams a sensitivity sweep point-by-point as NDJSON:
// kind=depth (Figure 6, stages 6..28) or kind=size (Figure 7, 8..64 KB).
// Each line is a complete, self-contained point — a slow grid shows
// incremental progress, a partial failure surfaces in that point's failures
// list, and a canceled request simply ends the stream at a line boundary —
// instead of one monolithic response that fails or blocks as a whole.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	kind := q.Get("kind")
	if kind != "depth" && kind != "size" {
		http.Error(w, fmt.Sprintf("unknown sweep kind %q (want depth|size)", kind), http.StatusBadRequest)
		return
	}
	opts, err := s.optionsFrom(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	opts.Supervise = s.sup

	release, okAdmit := s.acquire(w)
	if !okAdmit {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	emit := func(x int, fr *sim.FigureResult) bool {
		s.noteFigure(fr)
		pt := sweepPointJSON{X: x, Average: toComparisonJSON(fr.Rows[0].Average)}
		for _, f := range fr.Failures {
			pt.Failures = append(pt.Failures, f.String())
		}
		if err := enc.Encode(pt); err != nil {
			return false // client went away; stop simulating for it
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	best := []sim.Experiment{sim.BestExperiment()}
	switch kind {
	case "depth":
		for d := 6; d <= 28 && ctx.Err() == nil; d += 2 {
			o := opts
			o.Depth = d
			if !emit(d, s.runFigure(ctx, fmt.Sprintf("depth-%d", d), best, o)) {
				return
			}
		}
	case "size":
		for _, kb := range []int{8, 16, 32, 64} {
			if ctx.Err() != nil {
				break
			}
			o := opts
			o.PredBytes = kb * 1024 / 2
			o.ConfBytes = kb * 1024 / 2
			if !emit(kb, s.runFigure(ctx, fmt.Sprintf("size-%dKB", kb), best, o)) {
				return
			}
		}
	}
	s.served.Add(1)
}

// noteAttempts accumulates supervisor retry effort for /statsz.
func (s *server) noteAttempts(st sim.PointStatus) {
	if st.Attempts > 1 {
		s.retried.Add(uint64(st.Attempts - 1))
	}
}

// noteFigure accumulates a grid's retry effort for /statsz.
func (s *server) noteFigure(fr *sim.FigureResult) {
	for _, st := range fr.Statuses {
		s.noteAttempts(st)
	}
}

// failPoint maps a failed point's error onto an HTTP status: deadline →
// 504 (the request's own budget expired), cancellation → 503 (the server
// is going away or the client did), anything else (RunError and kin) → 500
// with the diagnostic line.
func (s *server) failPoint(w http.ResponseWriter, err error) {
	s.failed.Add(1)
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = http.StatusServiceUnavailable
	}
	http.Error(w, fmt.Sprintf("simulation failed: %v", err), code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
