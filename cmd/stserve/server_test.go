package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

func testServer(queueCap int, timeout time.Duration) *server {
	opts := sim.Options{Instructions: 6000, Warmup: 1500}
	return newServer(opts, sim.Supervisor{}, queueCap, timeout, 1_000_000)
}

// stubPoint installs a runPoint stub returning a fixed Result.
func stubPoint(s *server, ipc float64) {
	s.runPoint = func(_ context.Context, _ sim.Config, p prog.Profile) (sim.Result, sim.PointStatus) {
		return sim.Result{Benchmark: p.Name, IPC: ipc, Seconds: 0.5}, sim.PointStatus{Attempts: 1}
	}
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

func TestHealthz(t *testing.T) {
	s := testServer(1, 0)
	rec := get(t, s.routes(), "/healthz")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

func TestPointHappyPathAndParams(t *testing.T) {
	s := testServer(2, 0)
	stubPoint(s, 1.75)
	h := s.routes()

	rec := get(t, h, "/v1/point?bench=gzip&id=C2")
	if rec.Code != 200 {
		t.Fatalf("point: %d %s", rec.Code, rec.Body.String())
	}
	var resp pointResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Experiment != "C2" || resp.Result.IPC != 1.75 || resp.Result.Benchmark != "gzip" {
		t.Fatalf("point body: %+v", resp)
	}

	for _, bad := range []string{
		"/v1/point",                       // missing bench
		"/v1/point?bench=nope",            // unknown benchmark
		"/v1/point?bench=gzip&id=zzz",     // unknown experiment
		"/v1/point?bench=gzip&n=0",        // bad n
		"/v1/point?bench=gzip&n=99999999", // over the per-request ceiling (maxN 1e6)
		"/v1/point?bench=gzip&depth=99",   // depth out of range
		"/v1/point?bench=gzip&kb=9999",    // kb out of range
	} {
		if rec := get(t, h, bad); rec.Code != 400 {
			t.Fatalf("%s: %d, want 400", bad, rec.Code)
		}
	}
}

func TestPointCompareRunsBaseline(t *testing.T) {
	s := testServer(2, 0)
	calls := 0
	s.runPoint = func(_ context.Context, cfg sim.Config, p prog.Profile) (sim.Result, sim.PointStatus) {
		calls++
		ipc := 1.0
		if cfg.Policy.Name != "" && calls == 1 {
			ipc = 1.2 // the experiment request comes first
		}
		return sim.Result{Benchmark: p.Name, IPC: ipc, Seconds: 1 / ipc, Energy: 1, EDelay: 1, AvgPower: 1}, sim.PointStatus{Attempts: 1}
	}
	rec := get(t, s.routes(), "/v1/point?bench=gzip&id=C2&compare=1")
	if rec.Code != 200 {
		t.Fatalf("compare: %d %s", rec.Code, rec.Body.String())
	}
	var resp pointResponse
	json.NewDecoder(rec.Body).Decode(&resp)
	if calls != 2 || resp.Comparison == nil {
		t.Fatalf("compare ran %d points, comparison %v", calls, resp.Comparison)
	}
}

// TestShedWith429: with the single queue slot held, the next request is
// rejected immediately with 429 + Retry-After and counted as shed.
func TestShedWith429(t *testing.T) {
	s := testServer(1, 0)
	admitted := make(chan struct{})
	release := make(chan struct{})
	s.runPoint = func(_ context.Context, _ sim.Config, p prog.Profile) (sim.Result, sim.PointStatus) {
		close(admitted)
		<-release
		return sim.Result{Benchmark: p.Name}, sim.PointStatus{Attempts: 1}
	}
	h := s.routes()
	done := make(chan *httptest.ResponseRecorder)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/point?bench=gzip", nil))
		done <- rec
	}()
	<-admitted

	rec := get(t, h, "/v1/point?bench=gzip")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated request: %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(release)
	if first := <-done; first.Code != 200 {
		t.Fatalf("admitted request: %d", first.Code)
	}
	if s.shed.Load() != 1 || s.served.Load() != 1 {
		t.Fatalf("counters: shed %d served %d", s.shed.Load(), s.served.Load())
	}
	// The slot is free again: no lingering saturation.
	stubPoint(s, 1)
	if rec := get(t, h, "/v1/point?bench=gzip"); rec.Code != 200 {
		t.Fatalf("after release: %d", rec.Code)
	}
}

// TestDeadlineMapsTo504: a point that only completes when its context
// expires surfaces as 504, not 500 and not a hang.
func TestDeadlineMapsTo504(t *testing.T) {
	s := testServer(1, 20*time.Millisecond)
	s.runPoint = func(ctx context.Context, _ sim.Config, _ prog.Profile) (sim.Result, sim.PointStatus) {
		<-ctx.Done()
		return sim.Result{}, sim.PointStatus{Err: ctx.Err(), Attempts: 1}
	}
	rec := get(t, s.routes(), "/v1/point?bench=gzip")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline: %d %s, want 504", rec.Code, rec.Body.String())
	}
	if s.failed.Load() != 1 {
		t.Fatalf("failed counter = %d", s.failed.Load())
	}
}

func TestCanceledMapsTo503(t *testing.T) {
	s := testServer(1, 0)
	s.runPoint = func(_ context.Context, _ sim.Config, _ prog.Profile) (sim.Result, sim.PointStatus) {
		return sim.Result{}, sim.PointStatus{Err: context.Canceled, Attempts: 1}
	}
	if rec := get(t, s.routes(), "/v1/point?bench=gzip"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("canceled: %d, want 503", rec.Code)
	}
}

// TestSweepStreamsNDJSON: the depth sweep streams one self-contained JSON
// line per x value, and a point's grid failures ride along on its line
// instead of failing the response.
func TestSweepStreamsNDJSON(t *testing.T) {
	s := testServer(1, 0)
	s.runFigure = func(_ context.Context, name string, exps []sim.Experiment, opts sim.Options) *sim.FigureResult {
		fr := &sim.FigureResult{
			Name: name,
			Rows: []sim.ExperimentRow{{Average: sim.Comparison{Speedup: float64(opts.Depth)}}},
		}
		if opts.Depth == 10 {
			fr.Statuses = make([]sim.PointStatus, 1)
			fr.Failures = []sim.PointFailure{{Figure: name, Experiment: "C2", Benchmark: "gzip", Attempts: 1}}
		}
		return fr
	}
	rec := get(t, s.routes(), "/v1/sweep?kind=depth")
	if rec.Code != 200 {
		t.Fatalf("sweep: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var lines []sweepPointJSON
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var pt sweepPointJSON
		if err := json.Unmarshal(sc.Bytes(), &pt); err != nil {
			t.Fatalf("non-JSON sweep line %q: %v", sc.Text(), err)
		}
		lines = append(lines, pt)
	}
	if len(lines) != 12 { // depths 6..28 step 2
		t.Fatalf("%d sweep lines, want 12", len(lines))
	}
	for i, pt := range lines {
		wantX := 6 + 2*i
		if pt.X != wantX || pt.Average.Speedup != float64(wantX) {
			t.Fatalf("line %d: %+v", i, pt)
		}
		if (pt.X == 10) != (len(pt.Failures) == 1) {
			t.Fatalf("line %d failures: %v", i, pt.Failures)
		}
	}
	if rec := get(t, s.routes(), "/v1/sweep?kind=nope"); rec.Code != 400 {
		t.Fatalf("bad sweep kind: %d", rec.Code)
	}
}

// TestFigureEndpointDegradesPartially: a grid with some failed points still
// returns 200 with the failures listed; a grid where everything failed maps
// to the failure's status code.
func TestFigureEndpointDegradesPartially(t *testing.T) {
	s := testServer(1, 0)
	s.runFigure = func(_ context.Context, name string, exps []sim.Experiment, _ sim.Options) *sim.FigureResult {
		return &sim.FigureResult{
			Name:      name,
			Baselines: []sim.Result{{Benchmark: "gzip", IPC: 1}},
			Rows:      []sim.ExperimentRow{{Experiment: exps[0], PerBench: []sim.Comparison{{Benchmark: "gzip"}}}},
			Statuses:  make([]sim.PointStatus, 4),
			Failures:  []sim.PointFailure{{Figure: name, Experiment: "A1", Benchmark: "gzip", Attempts: 2}},
		}
	}
	rec := get(t, s.routes(), "/v1/figure?fig=fig3")
	if rec.Code != 200 {
		t.Fatalf("degraded figure: %d", rec.Code)
	}
	var resp figureResponse
	json.NewDecoder(rec.Body).Decode(&resp)
	if len(resp.Failures) != 1 || !strings.Contains(resp.Failures[0], "A1") {
		t.Fatalf("failures: %v", resp.Failures)
	}

	s.runFigure = func(_ context.Context, name string, _ []sim.Experiment, _ sim.Options) *sim.FigureResult {
		st := []sim.PointStatus{{Err: context.DeadlineExceeded, Attempts: 1}}
		return &sim.FigureResult{Name: name, Statuses: st,
			Failures: []sim.PointFailure{{Figure: name, Err: context.DeadlineExceeded, Attempts: 1}}}
	}
	if rec := get(t, s.routes(), "/v1/figure?fig=fig3"); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("all-failed figure: %d, want 504", rec.Code)
	}
	if rec := get(t, s.routes(), "/v1/figure?fig=bogus"); rec.Code != 400 {
		t.Fatal("unknown figure accepted")
	}
}

func TestStatszShape(t *testing.T) {
	s := testServer(3, 0)
	stubPoint(s, 1)
	h := s.routes()
	get(t, h, "/v1/point?bench=gzip")
	rec := get(t, h, "/statsz")
	if rec.Code != 200 {
		t.Fatalf("statsz: %d", rec.Code)
	}
	var resp statszResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Requests.Served != 1 || resp.Queue.Capacity != 3 || resp.Queue.Depth != 0 {
		t.Fatalf("statsz body: %+v", resp)
	}
}

// TestPointEndToEnd runs one real (small) simulation through the full
// handler stack — no stubs — to pin the wiring between HTTP parameters,
// BaseConfig, the supervisor, and the shared cache.
func TestPointEndToEnd(t *testing.T) {
	s := testServer(1, 30*time.Second)
	rec := get(t, s.routes(), "/v1/point?bench=gzip&n=6000&warmup=1500")
	if rec.Code != 200 {
		t.Fatalf("end-to-end point: %d %s", rec.Code, rec.Body.String())
	}
	var resp pointResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result.IPC <= 0 || resp.Result.Benchmark != "gzip" {
		t.Fatalf("end-to-end result: %+v", resp.Result)
	}
}

// TestReadyzDrainSplit pins the liveness/readiness split: before draining
// both probes are 200; after SetDraining, /readyz refuses with 503 +
// Retry-After (stop routing here) while /healthz stays 200 (still alive,
// just leaving) — the distinction fleet breaker probes and process
// supervisors each depend on.
func TestReadyzDrainSplit(t *testing.T) {
	s := testServer(1, 0)
	h := s.routes()

	if rec := get(t, h, "/readyz"); rec.Code != 200 {
		t.Fatalf("fresh readyz: %d, want 200", rec.Code)
	}
	s.SetDraining()
	s.SetDraining() // idempotent
	rec := get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("draining readyz carries no Retry-After")
	}
	if rec := get(t, h, "/healthz"); rec.Code != 200 {
		t.Fatalf("draining healthz: %d, want 200 (alive, just leaving)", rec.Code)
	}
}
