// Command sttrace prints interval statistics of one simulated run: per-window
// IPC, misprediction rate, wrong-path traffic, and throttle engagement. It is
// the phase-behaviour lens the aggregate tables of cmd/hpca03 average away —
// useful when investigating why a policy helps one benchmark and hurts
// another.
//
// Usage:
//
//	sttrace [-bench name] [-id C2|baseline] [-n instructions] [-interval cycles]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"

	"selthrottle/internal/bpred"
	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/pipe"
	"selthrottle/internal/power"
	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

func main() {
	// All work happens in run behind sim.Guard: a terminal simulation
	// failure (deadlock, invariant panic) exits nonzero with the machine's
	// diagnostic snapshot instead of a raw panic trace, and deferred
	// cleanup still runs.
	os.Exit(run())
}

func run() int {
	bench := flag.String("bench", "go", "benchmark profile")
	id := flag.String("id", "C2", "experiment id, or 'baseline'")
	n := flag.Uint64("n", 200000, "instructions to simulate")
	interval := flag.Int64("interval", 10000, "reporting interval in cycles")
	verbose := flag.Bool("v", false, "print the process-wide result-cache reuse summary at exit")
	flag.Parse()
	if *verbose {
		defer sim.WriteCacheSummary(os.Stderr)
	}
	// SIGINT/SIGTERM ends the trace at the next interval boundary: the
	// intervals printed so far stay flushed, the exit code reports the
	// truncation.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	return sim.Guard(os.Stderr, "sttrace", func() int {
		return trace(ctx, *bench, *id, *n, *interval)
	})
}

func trace(ctx context.Context, bench, id string, n uint64, interval int64) int {
	profile, ok := prog.ProfileByName(bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "sttrace: unknown benchmark %q\n", bench)
		return 2
	}
	cfg := sim.Default()
	if id != "baseline" {
		e, ok := sim.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "sttrace: unknown experiment %q\n", id)
			return 2
		}
		cfg = e.Apply(cfg)
	}

	program := prog.Generate(profile)
	walker := prog.NewWalker(program)
	pred := bpred.NewGshare(cfg.PredBytes)
	var est conf.Estimator = conf.NewBPRU(cfg.ConfBytes)
	if cfg.Estimator == sim.EstJRS {
		est = conf.NewJRS(cfg.ConfBytes, cfg.JRSThreshold)
	}
	ctrl := core.NewController(cfg.Policy)
	meter := &power.Meter{}
	pl := pipe.New(cfg.Pipe, walker, pred, est, ctrl, meter)

	fmt.Printf("%s on %s (%d instructions, %d-cycle intervals)\n\n",
		id, bench, n, interval)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cycles\tIPC\tmiss%\twrong-path/fetch%\tfetch-gated%\tnoselect-stalls")

	// The trace loop drives Step directly, below pipe.RunE's deadlock
	// detector, so it carries its own interval-level no-commit bailout: a
	// wedged machine would otherwise trace forever.
	stuckLimit := uint64(cfg.Pipe.StuckCycles)
	if stuckLimit == 0 {
		stuckLimit = pipe.DefaultStuckCycles
	}
	var stuckSince uint64 // cycles since the last observed commit

	prev := pl.Stats
	for pl.Stats.Committed < n {
		// The loop drives Step directly (no RunE watchdog), so cancellation
		// is checked here, once per interval — cheap, and an interval is the
		// trace's natural truncation boundary anyway.
		if ctx.Err() != nil {
			tw.Flush()
			fmt.Fprintf(os.Stderr, "sttrace: interrupted at cycle %d (%d/%d instructions); intervals above are complete\n",
				pl.Cycle(), pl.Stats.Committed, n)
			return 1
		}
		target := pl.Cycle() + interval
		for pl.Cycle() < target && pl.Stats.Committed < n {
			pl.Step()
		}
		s := pl.Stats
		if s.Committed == prev.Committed {
			if stuckSince += s.Cycles - prev.Cycles; stuckSince > stuckLimit {
				tw.Flush()
				fmt.Fprintf(os.Stderr, "sttrace: no commit in %d cycles at cycle %d (committed=%d/%d policy=%q): machine deadlocked\n",
					stuckSince, pl.Cycle(), s.Committed, n, cfg.Policy.Name)
				return 1
			}
		} else {
			stuckSince = 0
		}
		dCyc := s.Cycles - prev.Cycles
		dCom := s.Committed - prev.Committed
		dBr := s.CondBranches - prev.CondBranches
		dMp := s.Mispredicts - prev.Mispredicts
		dF := s.Fetched - prev.Fetched
		dWp := s.WrongPathFetched - prev.WrongPathFetched
		dGate := s.FetchGatedCycles - prev.FetchGatedCycles
		dNs := s.NoSelectStalls - prev.NoSelectStalls
		if dCyc == 0 {
			break
		}
		miss := 0.0
		if dBr > 0 {
			miss = 100 * float64(dMp) / float64(dBr)
		}
		wp := 0.0
		if dF > 0 {
			wp = 100 * float64(dWp) / float64(dF)
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%.1f\t%.1f\t%.1f\t%d\n",
			s.Cycles, float64(dCom)/float64(dCyc), miss, wp,
			100*float64(dGate)/float64(dCyc), dNs)
		prev = s
	}
	tw.Flush()

	// The trace loop drives Step directly (never pipe.Run), so the batched
	// activity tally must be flushed before the meter is read.
	pl.FlushTally()
	report := meter.Analyze(power.DefaultParams())
	fmt.Printf("\ntotals: IPC %.2f, miss %.1f%%, avg power %.1f W, wasted energy %.1f%%\n",
		pl.Stats.IPC(), 100*pl.Stats.MissRate(), report.AvgPower,
		100*report.WastedEnergy/report.TotalEnergy)

	// The interval trace above is inherently uncacheable (it reads stats
	// mid-run), but the reference comparison goes through sim.Run and so
	// shares the process-wide result cache with every other driver: tracing
	// several experiments in one process simulates each endpoint once.
	if id != "baseline" {
		runCfg := cfg
		runCfg.Instructions = n * 3 / 4
		runCfg.Warmup = n / 4
		baseCfg := runCfg
		baseCfg.Policy = core.Baseline()
		baseCfg.Estimator = sim.EstBPRU
		baseCfg.Pipe.Oracle = core.OracleNone
		// Supervised, ctx-aware runs: Ctrl-C during the comparison cancels
		// it cooperatively instead of finishing two full simulations first.
		var sup sim.Supervisor
		base, bst := sup.RunPointE(ctx, baseCfg, profile)
		if !bst.OK() {
			fmt.Fprintf(os.Stderr, "sttrace: baseline comparison run failed: %v\n", bst.Err)
			return 1
		}
		res, rst := sup.RunPointE(ctx, runCfg, profile)
		if !rst.OK() {
			fmt.Fprintf(os.Stderr, "sttrace: %s comparison run failed: %v\n", id, rst.Err)
			return 1
		}
		cmp := sim.Compare(base, res)
		fmt.Printf("vs baseline: speedup %.3f, power %.1f%%, energy %.1f%%, E-D %.1f%%\n",
			cmp.Speedup, cmp.PowerSaving, cmp.EnergySaving, cmp.EDImprovement)
	}
	return 0
}
