// Command stworker runs one partition of an hpca03 experiment grid against
// a shared result store. It is the worker half of the multi-worker sweep:
// the coordinator (hpca03 -workers N) spawns N of these, each enumerates
// the identical grid from its flags, claims its partition's lease, computes
// its points through the store's disk tier, and exits. Workers produce no
// figures — their entire output is content-addressed Results in the store —
// so a worker killed mid-partition wastes only the single in-flight point.
//
// Usage:
//
//	stworker -store dir -part i -of n [-exp experiment] [-id expID]
//	         [-n instructions] [-warmup instructions] [-depth stages]
//	         [-kb totalKB] [-bench list] [-legacyfrontend] [-legacyledger]
//	         [-ttl duration] [-timeout duration] [-retries k]
//	         [-fault spec] [-steal] [-v]
//
// Exit codes:
//
//	0  partition complete, every point published
//	1  partition complete, some points terminally failed
//	2  usage error
//	3  interrupted (signal) before finishing
//	4  the partition lease is held by a live worker
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"selthrottle/internal/faultinject"
	"selthrottle/internal/grid"
	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
	"selthrottle/internal/store"
)

func main() {
	os.Exit(run())
}

func run() int {
	storeDir := flag.String("store", "", "shared result store directory (required)")
	part := flag.Int("part", 0, "partition index (0-based)")
	of := flag.Int("of", 1, "partition count")
	exp := flag.String("exp", "all", "experiment grid to partition (same values as hpca03 -exp)")
	id := flag.String("id", "C2", "experiment id for -exp run")
	n := flag.Uint64("n", prog.DefaultInstructions, "measured instructions per benchmark")
	warmup := flag.Uint64("warmup", 0, "warmup instructions per benchmark (default n/4)")
	depth := flag.Int("depth", 14, "pipeline depth in stages")
	kb := flag.Int("kb", 16, "total predictor+estimator budget in KB")
	bench := flag.String("bench", "", "restrict to a comma-separated list of benchmarks")
	legacyFront := flag.Bool("legacyfrontend", false, "simulate on the two-ring reference front end")
	legacyLedger := flag.Bool("legacyledger", false, "simulate on the per-instruction power-attribution reference")
	ttl := flag.Duration("ttl", grid.DefaultTTL, "lease expiry horizon (must match the coordinator's)")
	timeout := flag.Duration("timeout", 0, "per-point deadline (0 = none)")
	retries := flag.Int("retries", 0, "per-point retry budget for transient failures")
	fault := flag.String("fault", "", "process fault spec, e.g. kill-after=3,freeze-beats,lease-enospc (test use)")
	steal := flag.Bool("steal", false, "after finishing this partition, steal unleased/expired points from the rest of the grid")
	verbose := flag.Bool("v", false, "log per-point progress and lease events to stderr")
	flag.Parse()

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "stworker: -store is required")
		return grid.ExitUsage
	}
	if *of < 1 || *part < 0 || *part >= *of {
		fmt.Fprintf(os.Stderr, "stworker: bad partition %d of %d\n", *part, *of)
		return grid.ExitUsage
	}
	faults, err := faultinject.ParseProcFaults(*fault)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stworker: %v\n", err)
		return grid.ExitUsage
	}

	opts := sim.Options{
		Instructions:      *n,
		Warmup:            *warmup,
		Depth:             *depth,
		PredBytes:         *kb * 1024 / 2,
		ConfBytes:         *kb * 1024 / 2,
		LegacyFrontEnd:    *legacyFront,
		LegacyEventLedger: *legacyLedger,
		Supervise:         sim.Supervisor{Timeout: *timeout, Retries: *retries},
	}
	if *bench != "" {
		var ps []prog.Profile
		for _, name := range strings.Split(*bench, ",") {
			p, ok := prog.ProfileByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "stworker: unknown benchmark %q\n", name)
				return grid.ExitUsage
			}
			ps = append(ps, p)
		}
		opts.Profiles = ps
	}

	points, err := sim.EnumerateGrid(*exp, *id, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stworker: %v\n", err)
		return grid.ExitUsage
	}

	// The store and the lease directory share one FS so an injected fault
	// reaches both; lease-enospc targets only lease creation.
	var fsys store.FS = store.OSFS{}
	if faults.LeaseENOSPC {
		fsys = faultinject.NewDiskFS(fsys, faultinject.DiskFault{
			Kind:  faultinject.DiskENOSPC,
			Op:    faultinject.OpCreate,
			Match: grid.LeaseDirName + string(os.PathSeparator),
		})
	}
	st, err := store.Open(*storeDir, fsys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stworker: store %s: %v\n", *storeDir, err)
		return grid.ExitUsage
	}
	sim.AttachDiskStore(st)
	leases, err := grid.NewManager(*storeDir, fsys, *ttl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stworker: %v\n", err)
		return grid.ExitUsage
	}

	// SIGTERM/SIGINT cancels cooperatively: the in-flight point stops at its
	// next cancellation check, everything already published stays published,
	// and a later run (or the coordinator's reassignment) resumes from the
	// warm store.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()

	logf := func(format string, args ...any) {
		if *verbose {
			fmt.Fprintf(os.Stderr, "stworker: "+format+"\n", args...)
		}
	}
	wopts := grid.WorkerOptions{
		Points:      points,
		Part:        *part,
		Of:          *of,
		Owner:       fmt.Sprintf("stworker-pid%d", os.Getpid()),
		Leases:      leases,
		Supervise:   opts.Supervise,
		Steal:       *steal,
		FreezeBeats: faults.FreezeBeats,
		Logf:        logf,
	}
	if faults.KillAfterPoints > 0 || faults.FreezeAfterPoints > 0 {
		wopts.AfterPoint = func(done int) {
			if faults.KillAfterPoints > 0 && done >= faults.KillAfterPoints {
				faultinject.KillSelf()
			}
			if faults.FreezeAfterPoints > 0 && done >= faults.FreezeAfterPoints {
				select {} // wedged: no beats (frozen from start), no progress, no exit
			}
		}
	}

	rep, err := grid.RunWorker(ctx, wopts)
	logf("p%d/%d: owned %d, computed %d, failed %d, stolen %d", *part, *of, rep.Owned, rep.Computed, rep.Failed, rep.Stolen)
	switch {
	case errors.Is(err, grid.ErrHeld):
		fmt.Fprintf(os.Stderr, "stworker: %v\n", err)
		return grid.ExitLeaseHeld
	case errors.Is(err, grid.ErrInterrupted):
		fmt.Fprintf(os.Stderr, "stworker: %v\n", err)
		return grid.ExitInterrupted
	case err != nil:
		fmt.Fprintf(os.Stderr, "stworker: %v\n", err)
		return grid.ExitInterrupted
	case rep.Failed > 0:
		fmt.Fprintf(os.Stderr, "stworker: p%d: %d point(s) terminally failed\n", *part, rep.Failed)
		return grid.ExitPointFailures
	}
	return grid.ExitOK
}
