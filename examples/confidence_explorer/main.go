// Confidence explorer: the SPEC/PVN trade-off that drives every throttling
// decision in the paper. Sweeps the BPRU counter-update steps and the JRS
// MDC threshold, showing how each estimator trades coverage of
// mispredictions (SPEC) against precision of its low-confidence label (PVN)
// — and how many branches it flags at all.
//
// Run with:
//
//	go run ./examples/confidence_explorer [-bench name] [-n instructions]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"selthrottle/internal/bpred"
	"selthrottle/internal/conf"
	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

// measure trains predictor+estimator on the benchmark's architectural branch
// stream and returns the estimator's quality metrics.
func measure(profile prog.Profile, est conf.Estimator, n int) conf.Quality {
	program := prog.Generate(profile)
	w := prog.NewWalker(program)
	g := bpred.NewGshare(8 << 10)
	var q conf.Quality
	var d prog.DynInst
	for i := 0; i < n; i++ {
		w.Next(&d)
		if d.BrID == prog.NoBranch {
			continue
		}
		pred, ctr, cookie := g.Predict(d.PC)
		class := est.Estimate(d.PC, ctr)
		correct := pred == d.Taken
		q.Record(class, correct)
		est.Train(d.PC, correct)
		g.Update(d.PC, cookie, d.Taken)
		if !correct {
			g.OnMispredict(cookie, d.Taken)
		}
		w.Steer(d.Taken)
	}
	return q
}

func main() {
	bench := flag.String("bench", "twolf", "benchmark profile")
	n := flag.Int("n", 400000, "instructions to stream")
	verbose := flag.Bool("v", false, "print the process-wide result-cache reuse summary at exit")
	flag.Parse()
	if *verbose {
		defer sim.WriteCacheSummary(os.Stderr)
	}

	profile, ok := prog.ProfileByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	fmt.Printf("estimator quality on %s (paper targets: BPRU SPEC 60%%/PVN 45%%, JRS SPEC 90%%/PVN 24%%)\n\n", *bench)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "estimator\tconfig\tSPEC%\tPVN%\tlow-labeled%")
	for _, steps := range [][2]int{{1, 1}, {2, 1}, {3, 1}, {4, 2}} {
		b := conf.NewBPRU(8 << 10)
		b.SetSteps(steps[0], steps[1])
		q := measure(profile, b, *n)
		fmt.Fprintf(tw, "BPRU\t+%d/-%d\t%.1f\t%.1f\t%.1f\n",
			steps[0], steps[1], 100*q.SPEC(), 100*q.PVN(), 100*q.LowFrac())
	}
	for _, mdc := range []int{4, 8, 12, 15} {
		j := conf.NewJRS(8<<10, mdc)
		q := measure(profile, j, *n)
		fmt.Fprintf(tw, "JRS\tMDC=%d\t%.1f\t%.1f\t%.1f\n",
			mdc, 100*q.SPEC(), 100*q.PVN(), 100*q.LowFrac())
	}
	tw.Flush()

	// Cross-check the trace-level sweep above against the full in-pipeline
	// measurement at the paper's operating points. This goes through the
	// sim harness and therefore the process-wide result cache: re-running
	// the explorer's variations in one process re-simulates nothing.
	crs := sim.RunConfidence(sim.Options{
		Instructions: uint64(*n) / 4,
		Profiles:     []prog.Profile{profile},
	})
	fmt.Println("\nin-pipeline (wrong-path speculation included), paper configs:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, cr := range crs {
		fmt.Fprintf(tw, "%s\tSPEC %.1f%%\tPVN %.1f%%\tlow-labeled %.1f%%\n",
			cr.Estimator, 100*cr.SPEC, 100*cr.PVN, 100*cr.LowFrac)
	}
	tw.Flush()

	fmt.Println("\nHigher SPEC means more mispredictions are caught by throttling;")
	fmt.Println("higher PVN means fewer correct predictions are punished. Pipeline")
	fmt.Println("Gating wants high SPEC (it gates rarely but hard); Selective")
	fmt.Println("Throttling monetizes high PVN by reserving the harshest heuristic")
	fmt.Println("for the branches most certain to be wrong.")
}
