// Deep pipelines: the motivation of the paper's Figure 6. As pipelines grow
// from 6 to 28 stages (the early-2000s trend this paper rode), branches take
// longer to resolve, more mis-speculated instructions enter the machine, and
// the energy recovered by Selective Throttling grows.
//
// Run with:
//
//	go run ./examples/deep_pipelines [-bench name] [-n instructions]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

func main() {
	bench := flag.String("bench", "twolf", "benchmark profile")
	n := flag.Uint64("n", 120000, "measured instructions")
	verbose := flag.Bool("v", false, "print the process-wide result-cache reuse summary at exit")
	flag.Parse()
	if *verbose {
		defer sim.WriteCacheSummary(os.Stderr)
	}

	profile, ok := prog.ProfileByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	c2 := sim.BestExperiment()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stages\tbase IPC\twrong-path/fetched%\tspeedup\tpower sav%\tenergy sav%")
	for _, depth := range []int{6, 10, 14, 20, 28} {
		cfg := sim.Default()
		cfg.Pipe.SetDepth(depth)
		cfg.Instructions = *n
		cfg.Warmup = *n / 4
		base := sim.Run(cfg, profile)
		thr := sim.Run(c2.Apply(cfg), profile)
		c := sim.Compare(base, thr)
		fmt.Fprintf(tw, "%d\t%.2f\t%.1f\t%.3f\t%.1f\t%.1f\n",
			depth, base.IPC,
			100*float64(base.Stats.WrongPathFetched)/float64(base.Stats.Fetched),
			c.Speedup, c.PowerSaving, c.EnergySaving)
	}
	tw.Flush()
	fmt.Println("\nDeeper pipelines leave more wrong-path instructions in flight per")
	fmt.Println("misprediction, so the energy Selective Throttling can recover grows")
	fmt.Println("with depth — the paper's Figure 6 trend.")
}
