// The paper's central comparison: all-or-nothing Pipeline Gating (Manne et
// al., with a JRS confidence estimator) against graded Selective Throttling
// (experiment C2, with the BPRU estimator), head to head across all eight
// benchmark profiles.
//
// Run with:
//
//	go run ./examples/gating_vs_throttling [-n instructions]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"selthrottle/internal/sim"
)

func main() {
	n := flag.Uint64("n", 120000, "measured instructions per benchmark")
	verbose := flag.Bool("v", false, "print the process-wide result-cache reuse summary at exit")
	flag.Parse()
	if *verbose {
		defer sim.WriteCacheSummary(os.Stderr)
	}

	opts := sim.Options{Instructions: *n}
	c2 := sim.BestExperiment()
	pg, _ := sim.ExperimentByID("C7") // Pipeline Gating (JRS, threshold 2)

	fmt.Printf("running baseline + 2 experiments x 8 benchmarks (%d instr each)...\n\n", *n)
	fr := sim.RunFigure("gating vs throttling", []sim.Experiment{c2, pg}, opts)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tmiss%\tST speedup\tST energy%\tPG speedup\tPG energy%")
	st, _ := fr.Row("C2")
	gate, _ := fr.Row("C7")
	for i, b := range fr.Baselines {
		fmt.Fprintf(tw, "%s\t%.1f\t%.3f\t%.1f\t%.3f\t%.1f\n",
			b.Benchmark, 100*b.MissRate,
			st.PerBench[i].Speedup, st.PerBench[i].EnergySaving,
			gate.PerBench[i].Speedup, gate.PerBench[i].EnergySaving)
	}
	fmt.Fprintf(tw, "AVG\t\t%.3f\t%.1f\t%.3f\t%.1f\n",
		st.Average.Speedup, st.Average.EnergySaving,
		gate.Average.Speedup, gate.Average.EnergySaving)
	tw.Flush()

	fmt.Println("\nThe paper's claim: graded throttling (ST) achieves comparable or better")
	fmt.Println("energy savings than all-or-nothing gating (PG) at a better power/performance")
	fmt.Println("balance, because aggressive action is reserved for branches that are very")
	fmt.Println("likely mispredicted (VLC) while weaker suspicions get gentler treatment.")
}
