// Quickstart: simulate one benchmark under the paper's baseline processor
// and under the recommended Selective Throttling configuration (experiment
// C2: stall fetch on very-low-confidence branches, quarter fetch bandwidth
// and set no-select on low-confidence branches), then print the paper's four
// headline metrics.
//
// Run with:
//
//	go run ./examples/quickstart [-v] [benchmark]
package main

import (
	"flag"
	"fmt"
	"os"

	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

func main() {
	verbose := flag.Bool("v", false, "print the process-wide result-cache reuse summary at exit")
	flag.Parse()
	if *verbose {
		defer sim.WriteCacheSummary(os.Stderr)
	}
	bench := "go" // the paper's showcase benchmark (19.7 % misprediction)
	if flag.NArg() > 0 {
		bench = flag.Arg(0)
	}
	profile, ok := prog.ProfileByName(bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; try one of:", bench)
		for _, p := range prog.Profiles() {
			fmt.Fprintf(os.Stderr, " %s", p.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	// The paper's baseline: Table 3 processor, 14 stages, 8 KB gshare,
	// 8 KB BPRU confidence estimator, no throttling.
	cfg := sim.Default()
	fmt.Printf("simulating %s (%d instructions after %d warmup)...\n",
		bench, cfg.Instructions, cfg.Warmup)
	base := sim.Run(cfg, profile)

	// The same machine under Selective Throttling C2.
	c2 := sim.BestExperiment()
	throttled := sim.Run(c2.Apply(cfg), profile)

	fmt.Printf("\nbaseline:  IPC %.2f  miss %.1f%%  power %.1f W  energy %.2e J\n",
		base.IPC, 100*base.MissRate, base.AvgPower, base.Energy)
	fmt.Printf("C2:        IPC %.2f  miss %.1f%%  power %.1f W  energy %.2e J\n",
		throttled.IPC, 100*throttled.MissRate, throttled.AvgPower, throttled.Energy)

	c := sim.Compare(base, throttled)
	fmt.Printf("\nSelective Throttling (%s) vs baseline:\n", c2.Label)
	fmt.Printf("  speedup:           %.3fx\n", c.Speedup)
	fmt.Printf("  power savings:     %.1f%%\n", c.PowerSaving)
	fmt.Printf("  energy savings:    %.1f%%\n", c.EnergySaving)
	fmt.Printf("  E-D improvement:   %.1f%%\n", c.EDImprovement)
}
