module selthrottle

go 1.24
