// Package bpred implements the branch-prediction substrate of the
// reproduction: two-bit saturating counters, a gshare direction predictor
// with speculative global history and misprediction fixup (the paper's
// baseline: an 8 KB gshare whose history register is speculatively updated),
// a bimodal predictor, a set-associative branch target buffer, and a return
// address stack.
package bpred

// Counter2 is a two-bit saturating counter. 0-1 predict not-taken,
// 2-3 predict taken; 1 and 2 are the "weak" states (the paper's BPRU
// fallback labels weak predictions low-confidence).
type Counter2 uint8

// Taken reports the counter's prediction.
func (c Counter2) Taken() bool { return c >= 2 }

// Weak reports whether the counter is in a weak state (1 or 2).
func (c Counter2) Weak() bool { return c == 1 || c == 2 }

// Update trains the counter toward the outcome.
func (c Counter2) Update(taken bool) Counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// DirPredictor is a conditional-branch direction predictor.
//
// Predict returns the predicted direction for pc and an opaque state cookie
// that must be handed back to Update/OnMispredict for that same dynamic
// branch: gshare uses it to rewind its speculative history on a flush.
type DirPredictor interface {
	// Predict returns the predicted direction and the counter state the
	// prediction was read from (for confidence fallback), plus a cookie.
	Predict(pc uint64) (taken bool, ctr Counter2, cookie uint64)
	// Update trains the predictor with the actual outcome (called at
	// branch resolution on the correct path).
	Update(pc uint64, cookie uint64, taken bool)
	// OnMispredict repairs speculative state after the branch with the
	// given cookie resolved mispredicted and younger work was squashed.
	OnMispredict(cookie uint64, taken bool)
	// SizeBytes reports the storage the predictor models.
	SizeBytes() int
}

// Gshare is McFarling's gshare: a table of two-bit counters indexed by
// PC xor global-history. History is updated speculatively at predict time
// and repaired on misprediction, as in the paper's baseline.
type Gshare struct {
	table    []Counter2
	histBits uint
	ghr      uint64 // speculative global history
}

// NewGshare builds a gshare predictor of the given total size. Size is
// expressed in bytes of counter storage, four two-bit counters per byte:
// an 8 KB gshare holds 32 K counters and uses 15 history bits, matching the
// paper's configuration.
func NewGshare(sizeBytes int) *Gshare {
	entries := sizeBytes * 4
	if entries < 16 {
		entries = 16
	}
	// Round down to a power of two.
	bits := uint(0)
	for 1<<(bits+1) <= entries {
		bits++
	}
	g := &Gshare{table: make([]Counter2, 1<<bits), histBits: bits}
	// Initialize to weakly taken, SimpleScalar-style.
	for i := range g.table {
		g.table[i] = 2
	}
	return g
}

// index folds pc and history into a table index.
func (g *Gshare) index(pc uint64, ghr uint64) int {
	mask := uint64(1)<<g.histBits - 1
	return int(((pc >> 3) ^ ghr) & mask)
}

// Predict implements DirPredictor. The cookie packs the pre-prediction GHR
// so a flush can restore it ((histBits <= 63 always holds here).
func (g *Gshare) Predict(pc uint64) (bool, Counter2, uint64) {
	cookie := g.ghr
	ctr := g.table[g.index(pc, g.ghr)]
	taken := ctr.Taken()
	// Speculative history update with the predicted direction.
	g.ghr = g.ghr<<1 | b2u(taken)
	return taken, ctr, cookie
}

// Update implements DirPredictor: train the counter that produced the
// prediction (indexed with the history at prediction time).
func (g *Gshare) Update(pc uint64, cookie uint64, taken bool) {
	i := g.index(pc, cookie)
	g.table[i] = g.table[i].Update(taken)
}

// OnMispredict implements DirPredictor: restore the GHR to its value before
// the mispredicted branch and push the actual outcome.
func (g *Gshare) OnMispredict(cookie uint64, taken bool) {
	g.ghr = cookie<<1 | b2u(taken)
}

// SizeBytes implements DirPredictor.
func (g *Gshare) SizeBytes() int { return len(g.table) / 4 }

// Reset restores the predictor to its as-new state (weakly taken counters,
// empty history) without reallocating the table, so run contexts can be
// reused across runs with bit-identical behaviour.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 2
	}
	g.ghr = 0
}

// GHR exposes the speculative history (for tests).
func (g *Gshare) GHR() uint64 { return g.ghr }

// Bimodal is a PC-indexed table of two-bit counters, provided as a simpler
// baseline predictor and for estimator experiments.
type Bimodal struct {
	table []Counter2
}

// NewBimodal builds a bimodal predictor with the given byte budget.
func NewBimodal(sizeBytes int) *Bimodal {
	entries := sizeBytes * 4
	if entries < 16 {
		entries = 16
	}
	bits := uint(0)
	for 1<<(bits+1) <= entries {
		bits++
	}
	b := &Bimodal{table: make([]Counter2, 1<<bits)}
	for i := range b.table {
		b.table[i] = 2
	}
	return b
}

// Predict implements DirPredictor.
func (b *Bimodal) Predict(pc uint64) (bool, Counter2, uint64) {
	ctr := b.table[b.index(pc)]
	return ctr.Taken(), ctr, 0
}

func (b *Bimodal) index(pc uint64) int {
	return int((pc >> 3) & uint64(len(b.table)-1))
}

// Update implements DirPredictor.
func (b *Bimodal) Update(pc uint64, _ uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].Update(taken)
}

// OnMispredict implements DirPredictor (bimodal keeps no speculative state).
func (b *Bimodal) OnMispredict(uint64, bool) {}

// SizeBytes implements DirPredictor.
func (b *Bimodal) SizeBytes() int { return len(b.table) / 4 }

// Reset restores the predictor to its as-new state without reallocation.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
