package bpred

import (
	"testing"
	"testing/quick"
)

func TestCounter2Saturation(t *testing.T) {
	c := Counter2(0)
	for i := 0; i < 10; i++ {
		c = c.Update(false)
	}
	if c != 0 {
		t.Fatalf("counter under-saturated to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.Update(true)
	}
	if c != 3 {
		t.Fatalf("counter over-saturated to %d", c)
	}
}

func TestCounter2Bounds(t *testing.T) {
	err := quick.Check(func(start uint8, outcomes []bool) bool {
		c := Counter2(start % 4)
		for _, o := range outcomes {
			c = c.Update(o)
			if c > 3 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCounter2WeakStates(t *testing.T) {
	if Counter2(0).Weak() || Counter2(3).Weak() {
		t.Error("strong states classified weak")
	}
	if !Counter2(1).Weak() || !Counter2(2).Weak() {
		t.Error("weak states classified strong")
	}
	if Counter2(1).Taken() || !Counter2(2).Taken() {
		t.Error("taken threshold wrong")
	}
}

func TestGshareLearnsBiasedBranch(t *testing.T) {
	g := NewGshare(8 << 10)
	pc := uint64(0x400100)
	correct := 0
	for i := 0; i < 2000; i++ {
		taken, _, cookie := g.Predict(pc)
		actual := true // always taken
		if taken == actual {
			correct++
		} else {
			g.OnMispredict(cookie, actual)
		}
		g.Update(pc, cookie, actual)
	}
	if correct < 1900 {
		t.Fatalf("gshare failed to learn an always-taken branch: %d/2000", correct)
	}
}

func TestGshareLearnsAlternatingPattern(t *testing.T) {
	// A strict T/N/T/N pattern is a pure function of one history bit.
	g := NewGshare(8 << 10)
	pc := uint64(0x400200)
	correct := 0
	n := 4000
	for i := 0; i < n; i++ {
		actual := i%2 == 0
		taken, _, cookie := g.Predict(pc)
		if taken == actual {
			correct++
		} else {
			g.OnMispredict(cookie, actual)
		}
		g.Update(pc, cookie, actual)
	}
	if correct < n*9/10 {
		t.Fatalf("gshare failed to learn alternation: %d/%d", correct, n)
	}
}

func TestGshareGHRSpeculativeAndRepair(t *testing.T) {
	g := NewGshare(1 << 10)
	before := g.GHR()
	taken, _, cookie := g.Predict(0x400300)
	if cookie != before {
		t.Fatal("cookie must capture the pre-prediction GHR")
	}
	wantSpec := before<<1 | b2u(taken)
	if g.GHR() != wantSpec {
		t.Fatal("GHR not speculatively updated with the prediction")
	}
	g.OnMispredict(cookie, !taken)
	want := before<<1 | b2u(!taken)
	if g.GHR() != want {
		t.Fatal("GHR not repaired with the actual outcome")
	}
}

func TestGshareSizing(t *testing.T) {
	for _, kb := range []int{1, 2, 4, 8, 16, 32, 64} {
		g := NewGshare(kb << 10)
		if g.SizeBytes() != kb<<10 {
			t.Errorf("%d KB gshare reports %d bytes", kb, g.SizeBytes())
		}
	}
}

func TestBimodalLearns(t *testing.T) {
	b := NewBimodal(4 << 10)
	pc := uint64(0x400400)
	for i := 0; i < 10; i++ {
		_, _, cookie := b.Predict(pc)
		b.Update(pc, cookie, false)
	}
	taken, ctr, _ := b.Predict(pc)
	if taken {
		t.Fatal("bimodal did not learn not-taken")
	}
	if ctr.Taken() {
		t.Fatal("counter state inconsistent with prediction")
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(1024, 2)
	if b.Entries() != 1024 {
		t.Fatalf("entries = %d", b.Entries())
	}
	b.Insert(0x1000, 0x2000)
	if target, hit := b.Lookup(0x1000); !hit || target != 0x2000 {
		t.Fatalf("lookup = %#x, %v", target, hit)
	}
	if _, hit := b.Lookup(0x1008); hit {
		t.Fatal("phantom hit")
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	b := NewBTB(4, 2) // 2 sets x 2 ways
	// Three PCs mapping to the same set: the LRU one is evicted.
	setStride := uint64(2 * 8) // sets*InstBytes alignment: pc>>3 & (sets-1)
	pcA := uint64(0x1000)
	pcB := pcA + setStride
	pcC := pcB + setStride
	b.Insert(pcA, 1)
	b.Insert(pcB, 2)
	b.Lookup(pcA) // make A most recently used
	b.Insert(pcC, 3)
	if _, hit := b.Lookup(pcA); !hit {
		t.Fatal("MRU entry evicted")
	}
	if _, hit := b.Lookup(pcB); hit {
		t.Fatal("LRU entry survived")
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	r.Push(10)
	r.Push(20)
	if v, ok := r.Pop(); !ok || v != 20 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 10 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty stack succeeded")
	}
}

func TestRASCheckpointRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	cp := r.Checkpoint()
	r.Push(2)
	r.Push(3)
	r.Restore(cp)
	if v, ok := r.Pop(); !ok || v != 1 {
		t.Fatalf("after restore pop = %d, %v", v, ok)
	}
}

func TestRASWrapsAtDepth(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites the oldest
	if v, _ := r.Pop(); v != 3 {
		t.Fatalf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Fatalf("pop = %d, want 2", v)
	}
}
