package bpred

// BTB is a set-associative branch target buffer with true-LRU replacement.
// The paper's configuration is 1024 entries, 2-way (Table 3). The simulator
// uses it for target availability at fetch and counts its accesses for the
// power model's "bpred" unit.
type BTB struct {
	sets   int
	ways   int
	tags   []uint64 // sets*ways; 0 = invalid
	target []uint64
	lru    []uint8 // per-entry age; lower = more recent
}

// NewBTB builds a BTB with the given geometry. Entries must be a power of
// two multiple of ways.
func NewBTB(entries, ways int) *BTB {
	if entries < ways {
		entries = ways
	}
	sets := entries / ways
	// Round sets down to a power of two.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	n := sets * ways
	return &BTB{
		sets:   sets,
		ways:   ways,
		tags:   make([]uint64, n),
		target: make([]uint64, n),
		lru:    make([]uint8, n),
	}
}

func (b *BTB) set(pc uint64) int {
	return int((pc>>3)&uint64(b.sets-1)) * b.ways
}

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	base := b.set(pc)
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == pc {
			b.touch(base, w)
			return b.target[base+w], true
		}
	}
	return 0, false
}

// Insert records (pc -> target), replacing the LRU way on conflict.
func (b *BTB) Insert(pc, target uint64) {
	base := b.set(pc)
	victim := 0
	var worst uint8
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == pc || b.tags[base+w] == 0 {
			victim = w
			break
		}
		if b.lru[base+w] >= worst {
			worst = b.lru[base+w]
			victim = w
		}
	}
	b.tags[base+victim] = pc
	b.target[base+victim] = target
	b.touch(base, victim)
}

// touch marks way w of the set at base most-recently used.
func (b *BTB) touch(base, w int) {
	for i := 0; i < b.ways; i++ {
		if b.lru[base+i] < 255 {
			b.lru[base+i]++
		}
	}
	b.lru[base+w] = 0
}

// Entries reports the BTB capacity.
func (b *BTB) Entries() int { return b.sets * b.ways }

// Reset invalidates every entry without reallocating the tables.
func (b *BTB) Reset() {
	clear(b.tags)
	clear(b.target)
	clear(b.lru)
}

// RAS is a return-address stack with a simple top-of-stack checkpoint used
// on branch misprediction recovery. The synthetic workload's returns are
// steered by the walker (perfect target knowledge), so the RAS here exists
// for power accounting and structural fidelity rather than mispredictions.
type RAS struct {
	stack []uint64
	top   int
}

// NewRAS builds a return-address stack with depth entries.
func NewRAS(depth int) *RAS {
	if depth < 1 {
		depth = 1
	}
	return &RAS{stack: make([]uint64, depth)}
}

// Push records a return address (call).
func (r *RAS) Push(addr uint64) {
	r.stack[r.top%len(r.stack)] = addr
	r.top++
}

// Pop predicts a return target; ok is false when empty.
func (r *RAS) Pop() (uint64, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top%len(r.stack)], true
}

// Checkpoint captures the stack pointer for later restore.
func (r *RAS) Checkpoint() int { return r.top }

// Restore rewinds the stack pointer to a checkpoint.
func (r *RAS) Restore(cp int) { r.top = cp }

// Reset empties the stack for reuse by the next run.
func (r *RAS) Reset() { r.top = 0 }
