// Package cache implements the memory-hierarchy substrate: a generic
// set-associative cache with true-LRU replacement, and the two-level
// hierarchy of the paper's Table 3 (64 KB 2-way L1 I and D caches with
// 32-byte lines, a 512 KB 4-way unified L2 with 6-cycle hit and 18-cycle
// miss latency, and a 128-entry fully associative TLB).
//
// The caches are access-timing models: Access returns the latency of a
// reference and updates tag/LRU state. Wrong-path references go through the
// same state (so wrong-path fetch genuinely pollutes the I-cache, one of the
// effects behind the paper's oracle-fetch speedup).
package cache

import "fmt"

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint
	tags      []uint64 // sets*ways; 0 means invalid
	age       []uint32 // LRU ages, lower = newer

	// Stats.
	Accesses uint64
	Misses   uint64
}

// New builds a cache. size and lineBytes are in bytes; size must be at least
// ways lines. Geometry is rounded down to powers of two.
func New(name string, size, lineBytes, ways int) *Cache {
	if lineBytes < 8 {
		lineBytes = 8
	}
	shift := uint(0)
	for 1<<(shift+1) <= lineBytes {
		shift++
	}
	lines := size / (1 << shift)
	if lines < ways {
		lines = ways
	}
	sets := lines / ways
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	return &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		tags:      make([]uint64, sets*ways),
		age:       make([]uint32, sets*ways),
	}
}

// line converts an address to a line-granular tag (never zero for real
// addresses because our address space starts above 0).
func (c *Cache) line(addr uint64) uint64 { return addr >> c.lineShift }

func (c *Cache) set(addr uint64) int {
	return int(c.line(addr)&uint64(c.sets-1)) * c.ways
}

// Probe reports whether addr would hit, without touching LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	base := c.set(addr)
	tag := c.line(addr)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Access references addr, updating tags, LRU, and statistics. It reports
// whether the reference hit; on a miss the line is filled (victim = LRU).
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	base := c.set(addr)
	tag := c.line(addr)
	victim, worstAge := base, uint32(0)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.touch(base, w)
			return true
		}
		if c.tags[base+w] == 0 {
			// Prefer an invalid way; encode as an infinitely old entry.
			if worstAge != ^uint32(0) {
				victim, worstAge = base+w, ^uint32(0)
			}
			continue
		}
		if c.age[base+w] >= worstAge && worstAge != ^uint32(0) {
			victim, worstAge = base+w, c.age[base+w]
		}
	}
	c.Misses++
	c.tags[victim] = tag
	c.touch(base, victim-base)
	return false
}

// touch marks way w of set base most recently used.
func (c *Cache) touch(base, w int) {
	for i := 0; i < c.ways; i++ {
		if c.age[base+i] < ^uint32(0) {
			c.age[base+i]++
		}
	}
	c.age[base+w] = 0
}

// MissRate returns misses/accesses (0 when untouched).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// String describes the geometry, for reports.
func (c *Cache) String() string {
	return fmt.Sprintf("%s: %d sets x %d ways x %d B/line",
		c.name, c.sets, c.ways, 1<<c.lineShift)
}

// LineBytes reports the line size.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Reset invalidates every line and clears statistics without reallocating,
// restoring the cache to its as-new cold state.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.age)
	c.Accesses, c.Misses = 0, 0
}

// Config holds the hierarchy parameters (Table 3 defaults via Default).
type Config struct {
	L1ISize, L1IWays, L1ILine int
	L1DSize, L1DWays, L1DLine int
	L2Size, L2Ways, L2Line    int

	L1HitLat  int // L1 hit latency, cycles
	L2HitLat  int // L2 hit latency (L1 miss, L2 hit)
	L2MissLat int // memory latency (L2 miss)

	// Bus occupancy per access: an L1 miss holds the L2 bus, an L2 miss
	// holds the memory bus; later misses queue behind earlier ones. This
	// is how mis-speculated memory traffic slows down correct-path misses
	// (the resource-waste effect behind the paper's oracle-fetch speedup).
	L2BusyCycles  int
	MemBusyCycles int

	TLBEntries int
}

// Default returns the paper's Table 3 memory configuration.
func Default() Config {
	return Config{
		L1ISize: 64 << 10, L1IWays: 2, L1ILine: 32,
		L1DSize: 64 << 10, L1DWays: 2, L1DLine: 32,
		L2Size: 512 << 10, L2Ways: 4, L2Line: 32,
		L1HitLat: 1, L2HitLat: 6, L2MissLat: 18,
		L2BusyCycles: 2, MemBusyCycles: 6,
		TLBEntries: 128,
	}
}

// Hierarchy is the two-level cache system with a shared L2 and a TLB.
// Misses contend for the L2 and memory buses: each miss occupies its bus for
// a configured number of cycles and later misses queue behind it.
type Hierarchy struct {
	cfg Config
	L1I *Cache
	L1D *Cache
	L2  *Cache
	TLB *TLB

	l2BusFree  int64 // first cycle the L2 bus is free
	memBusFree int64 // first cycle the memory bus is free
}

// NewHierarchy builds the hierarchy for cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		L1I: New("l1i", cfg.L1ISize, cfg.L1ILine, cfg.L1IWays),
		L1D: New("l1d", cfg.L1DSize, cfg.L1DLine, cfg.L1DWays),
		L2:  New("l2", cfg.L2Size, cfg.L2Line, cfg.L2Ways),
		TLB: NewTLB(cfg.TLBEntries),
	}
}

// Reset restores the whole hierarchy to its as-new cold state (empty caches
// and TLB, free buses) without reallocating any table.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.TLB.Reset()
	h.l2BusFree, h.memBusFree = 0, 0
}

// InstFetch performs an instruction fetch at pc at the given cycle and
// returns its latency in cycles, plus whether the L2 was accessed (for power
// accounting).
func (h *Hierarchy) InstFetch(pc uint64, now int64) (lat int, l2 bool) {
	h.TLB.Access(pc)
	// Next-line instruction prefetch, as in every real front end: a fetch
	// at pc pulls the following line toward the L1I in the background.
	// Without it, sequential refill misses dominate I-cache behaviour and
	// wrong-path fetch turns into an artificially effective hot-loop
	// prefetcher.
	next := pc + uint64(h.L1I.LineBytes())
	if h.L1I.Access(pc) {
		h.prefetchI(next)
		return h.cfg.L1HitLat, false
	}
	h.prefetchI(next)
	if h.L2.Access(pc) {
		return h.cfg.L2HitLat + h.busQueue(&h.l2BusFree, now, h.cfg.L2BusyCycles), true
	}
	lat = h.cfg.L2MissLat + h.busQueue(&h.l2BusFree, now, h.cfg.L2BusyCycles)
	return lat + h.busQueue(&h.memBusFree, now, h.cfg.MemBusyCycles), true
}

// prefetchI fills the line holding pc into the L1I (and L2) without timing
// cost and without touching demand-miss statistics.
func (h *Hierarchy) prefetchI(pc uint64) {
	if h.L1I.Probe(pc) {
		return
	}
	h.L1I.Access(pc)
	h.L1I.Accesses-- // prefetches are not demand accesses
	h.L1I.Misses--
	if !h.L2.Probe(pc) {
		h.L2.Access(pc)
		h.L2.Accesses--
		h.L2.Misses--
	}
}

// DataAccess performs a load/store at addr at the given cycle and returns
// its latency plus whether the L2 was accessed.
func (h *Hierarchy) DataAccess(addr uint64, now int64) (lat int, l2 bool) {
	h.TLB.Access(addr)
	if h.L1D.Access(addr) {
		return h.cfg.L1HitLat, false
	}
	if h.L2.Access(addr) {
		return h.cfg.L2HitLat + h.busQueue(&h.l2BusFree, now, h.cfg.L2BusyCycles), true
	}
	lat = h.cfg.L2MissLat + h.busQueue(&h.l2BusFree, now, h.cfg.L2BusyCycles)
	return lat + h.busQueue(&h.memBusFree, now, h.cfg.MemBusyCycles), true
}

// busQueue reserves one occupancy slot on a bus and returns the queueing
// delay the requester observes.
func (h *Hierarchy) busQueue(busFree *int64, now int64, busy int) int {
	start := now
	if *busFree > start {
		start = *busFree
	}
	*busFree = start + int64(busy)
	return int(start - now)
}

// TLB is a fully associative translation buffer with LRU replacement over
// 4 KB pages (Table 3: 128 entries). Its timing effect is folded into cache
// latencies; it exists for structural fidelity and statistics.
type TLB struct {
	pages []uint64
	age   []uint32
	// Stats.
	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with n entries.
func NewTLB(n int) *TLB {
	if n < 1 {
		n = 1
	}
	return &TLB{pages: make([]uint64, n), age: make([]uint32, n)}
}

// Access translates addr (4 KB pages), returning whether it hit.
func (t *TLB) Access(addr uint64) bool {
	t.Accesses++
	page := addr>>12 | 1<<63 // bias so valid entries are never zero
	victim, worst := 0, uint32(0)
	for i := range t.pages {
		if t.pages[i] == page {
			t.touch(i)
			return true
		}
		if t.pages[i] == 0 {
			victim, worst = i, ^uint32(0)
			continue
		}
		if t.age[i] >= worst && worst != ^uint32(0) {
			victim, worst = i, t.age[i]
		}
	}
	t.Misses++
	t.pages[victim] = page
	t.touch(victim)
	return false
}

// Reset invalidates every entry and clears statistics without reallocating.
func (t *TLB) Reset() {
	clear(t.pages)
	clear(t.age)
	t.Accesses, t.Misses = 0, 0
}

func (t *TLB) touch(i int) {
	for j := range t.age {
		if t.age[j] < ^uint32(0) {
			t.age[j]++
		}
	}
	t.age[i] = 0
}
