// Package cache implements the memory-hierarchy substrate: a generic
// set-associative cache with true-LRU replacement, and the two-level
// hierarchy of the paper's Table 3 (64 KB 2-way L1 I and D caches with
// 32-byte lines, a 512 KB 4-way unified L2 with 6-cycle hit and 18-cycle
// miss latency, and a 128-entry fully associative TLB).
//
// The caches are access-timing models: Access returns the latency of a
// reference and updates tag/LRU state. Wrong-path references go through the
// same state (so wrong-path fetch genuinely pollutes the I-cache, one of the
// effects behind the paper's oracle-fetch speedup).
//
// # Replacement bookkeeping
//
// True LRU is kept in O(1) per reference rather than by ageing every entry
// on every access:
//
//   - Set-associative caches stamp the touched way with a per-cache
//     monotonic counter; the LRU victim is the valid way with the smallest
//     stamp. Stamps are unique (the counter never repeats), so the minimum
//     is exactly the way an age walk would have aged the furthest, and the
//     victim choice is bit-identical to the historical O(ways) age-rewrite
//     scheme: first invalid way if any, else the least-recently-touched way.
//   - The fully associative TLB keeps a page → slot hash index plus an
//     intrusive doubly-linked recency list threaded through the slots (MRU
//     at the head, LRU at the tail), so a hit is one map probe and a list
//     splice instead of a 128-entry tag scan and a 128-entry age rewrite.
//     While invalid slots remain, misses fill them from the highest index
//     downward — the exact order the historical last-invalid-wins age walk
//     produced — and once full the victim is the list tail, the entry a
//     walk would have found with the maximal age.
//
// The only behavioural difference from the age-walk scheme is that 32-bit
// ages saturated after 2^32 set references; the counter and list schemes
// never saturate. No simulation here approaches that horizon.
package cache

import (
	"fmt"
	"math/bits"
)

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint
	tags      []uint64 // sets*ways; 0 means invalid
	stamp     []uint64 // per-way last-touch timestamp; victim = min over set
	clock     uint64   // monotonic touch counter (unique stamps)

	// Stats.
	Accesses uint64
	Misses   uint64
}

// New builds a cache. size and lineBytes are in bytes; size must be at least
// ways lines. Geometry is rounded down to powers of two.
func New(name string, size, lineBytes, ways int) *Cache {
	if lineBytes < 8 {
		lineBytes = 8
	}
	shift := uint(0)
	for 1<<(shift+1) <= lineBytes {
		shift++
	}
	lines := size / (1 << shift)
	if lines < ways {
		lines = ways
	}
	sets := lines / ways
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	return &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		tags:      make([]uint64, sets*ways),
		stamp:     make([]uint64, sets*ways),
	}
}

// line converts an address to a line-granular tag (never zero for real
// addresses because our address space starts above 0).
func (c *Cache) line(addr uint64) uint64 { return addr >> c.lineShift }

func (c *Cache) set(addr uint64) int {
	return int(c.line(addr)&uint64(c.sets-1)) * c.ways
}

// Probe reports whether addr would hit, without touching LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	base := c.set(addr)
	tag := c.line(addr)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Access references addr, updating tags, LRU, and statistics. It reports
// whether the reference hit; on a miss the line is filled (victim = first
// invalid way, else true LRU).
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	base := c.set(addr)
	tag := c.line(addr)
	victim, oldest := -1, ^uint64(0)
	invalid := -1
	for w := 0; w < c.ways; w++ {
		switch t := c.tags[base+w]; {
		case t == tag:
			c.touch(base + w)
			return true
		case t == 0:
			if invalid < 0 {
				invalid = base + w
			}
		case c.stamp[base+w] < oldest:
			victim, oldest = base+w, c.stamp[base+w]
		}
	}
	c.Misses++
	if invalid >= 0 {
		victim = invalid
	}
	c.tags[victim] = tag
	c.touch(victim)
	return false
}

// touch marks entry i most recently used. Stamps are unique, so min-stamp
// victim selection is total-order LRU with no tie to break.
func (c *Cache) touch(i int) {
	c.clock++
	c.stamp[i] = c.clock
}

// MissRate returns misses/accesses (0 when untouched).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// String describes the geometry, for reports.
func (c *Cache) String() string {
	return fmt.Sprintf("%s: %d sets x %d ways x %d B/line",
		c.name, c.sets, c.ways, 1<<c.lineShift)
}

// LineBytes reports the line size.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Reset invalidates every line and clears statistics without reallocating,
// restoring the cache to its as-new cold state.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.stamp)
	c.clock = 0
	c.Accesses, c.Misses = 0, 0
}

// Config holds the hierarchy parameters (Table 3 defaults via Default).
type Config struct {
	L1ISize, L1IWays, L1ILine int
	L1DSize, L1DWays, L1DLine int
	L2Size, L2Ways, L2Line    int

	L1HitLat  int // L1 hit latency, cycles
	L2HitLat  int // L2 hit latency (L1 miss, L2 hit)
	L2MissLat int // memory latency (L2 miss)

	// Bus occupancy per access: an L1 miss holds the L2 bus, an L2 miss
	// holds the memory bus; later misses queue behind earlier ones. This
	// is how mis-speculated memory traffic slows down correct-path misses
	// (the resource-waste effect behind the paper's oracle-fetch speedup).
	L2BusyCycles  int
	MemBusyCycles int

	TLBEntries int
}

// Default returns the paper's Table 3 memory configuration.
func Default() Config {
	return Config{
		L1ISize: 64 << 10, L1IWays: 2, L1ILine: 32,
		L1DSize: 64 << 10, L1DWays: 2, L1DLine: 32,
		L2Size: 512 << 10, L2Ways: 4, L2Line: 32,
		L1HitLat: 1, L2HitLat: 6, L2MissLat: 18,
		L2BusyCycles: 2, MemBusyCycles: 6,
		TLBEntries: 128,
	}
}

// Hierarchy is the two-level cache system with a shared L2 and a TLB.
// Misses contend for the L2 and memory buses: each miss occupies its bus for
// a configured number of cycles and later misses queue behind it.
type Hierarchy struct {
	cfg Config
	L1I *Cache
	L1D *Cache
	L2  *Cache
	TLB *TLB

	l2BusFree  int64 // first cycle the L2 bus is free
	memBusFree int64 // first cycle the memory bus is free
}

// NewHierarchy builds the hierarchy for cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		L1I: New("l1i", cfg.L1ISize, cfg.L1ILine, cfg.L1IWays),
		L1D: New("l1d", cfg.L1DSize, cfg.L1DLine, cfg.L1DWays),
		L2:  New("l2", cfg.L2Size, cfg.L2Line, cfg.L2Ways),
		TLB: NewTLB(cfg.TLBEntries),
	}
}

// Reset restores the whole hierarchy to its as-new cold state (empty caches
// and TLB, free buses) without reallocating any table.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.TLB.Reset()
	h.l2BusFree, h.memBusFree = 0, 0
}

// InstFetch performs an instruction fetch at pc at the given cycle and
// returns its latency in cycles, plus whether the L2 was accessed (for power
// accounting).
func (h *Hierarchy) InstFetch(pc uint64, now int64) (lat int, l2 bool) {
	h.TLB.Access(pc)
	// Next-line instruction prefetch, as in every real front end: a fetch
	// at pc pulls the following line toward the L1I in the background.
	// Without it, sequential refill misses dominate I-cache behaviour and
	// wrong-path fetch turns into an artificially effective hot-loop
	// prefetcher.
	next := pc + uint64(h.L1I.LineBytes())
	if h.L1I.Access(pc) {
		h.prefetchI(next)
		return h.cfg.L1HitLat, false
	}
	h.prefetchI(next)
	if h.L2.Access(pc) {
		return h.cfg.L2HitLat + h.busQueue(&h.l2BusFree, now, h.cfg.L2BusyCycles), true
	}
	lat = h.cfg.L2MissLat + h.busQueue(&h.l2BusFree, now, h.cfg.L2BusyCycles)
	return lat + h.busQueue(&h.memBusFree, now, h.cfg.MemBusyCycles), true
}

// prefetchI fills the line holding pc into the L1I (and L2) without timing
// cost and without touching demand-miss statistics.
func (h *Hierarchy) prefetchI(pc uint64) {
	if h.L1I.Probe(pc) {
		return
	}
	h.L1I.Access(pc)
	h.L1I.Accesses-- // prefetches are not demand accesses
	h.L1I.Misses--
	if !h.L2.Probe(pc) {
		h.L2.Access(pc)
		h.L2.Accesses--
		h.L2.Misses--
	}
}

// DataAccess performs a load/store at addr at the given cycle and returns
// its latency plus whether the L2 was accessed.
func (h *Hierarchy) DataAccess(addr uint64, now int64) (lat int, l2 bool) {
	h.TLB.Access(addr)
	if h.L1D.Access(addr) {
		return h.cfg.L1HitLat, false
	}
	if h.L2.Access(addr) {
		return h.cfg.L2HitLat + h.busQueue(&h.l2BusFree, now, h.cfg.L2BusyCycles), true
	}
	lat = h.cfg.L2MissLat + h.busQueue(&h.l2BusFree, now, h.cfg.L2BusyCycles)
	return lat + h.busQueue(&h.memBusFree, now, h.cfg.MemBusyCycles), true
}

// busQueue reserves one occupancy slot on a bus and returns the queueing
// delay the requester observes.
func (h *Hierarchy) busQueue(busFree *int64, now int64, busy int) int {
	start := now
	if *busFree > start {
		start = *busFree
	}
	*busFree = start + int64(busy)
	return int(start - now)
}

// TLB is a fully associative translation buffer with true-LRU replacement
// over 4 KB pages (Table 3: 128 entries). Its timing effect is folded into
// cache latencies; it exists for structural fidelity and statistics.
//
// Lookup is a hash probe (page → slot) and recency is an intrusive
// doubly-linked list over the slots, so every access is O(1) instead of the
// O(entries) tag scan + age rewrite of a naive fully associative model.
// Victim choice is bit-identical to the age walk: invalid slots fill from
// the highest index downward, then the list tail (true LRU) is evicted.
type TLB struct {
	pages  []uint64 // slot -> page tag; 0 means invalid
	next   []int32  // recency list: towards LRU
	prev   []int32  // recency list: towards MRU
	head   int32    // most recently used slot, -1 when empty
	tail   int32    // least recently used slot, -1 when empty
	filled int      // slots holding a valid page; invalid slots are [0, n-filled)

	// Open-addressed page → slot index (linear probing, backward-shift
	// deletion, power-of-two table at ≤25% load). A probe is one
	// multiplicative hash and usually a single array read, replacing the
	// Go-map lookup that dominated the translation fast path.
	keys   []uint64 // biased page tags; 0 = empty
	vals   []int32  // slot for the corresponding key
	hshift uint     // 64 - log2(len(keys))

	// Stats.
	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with n entries.
func NewTLB(n int) *TLB {
	if n < 1 {
		n = 1
	}
	tab := 4
	for tab < 4*n {
		tab <<= 1
	}
	t := &TLB{
		pages:  make([]uint64, n),
		next:   make([]int32, n),
		prev:   make([]int32, n),
		keys:   make([]uint64, tab),
		vals:   make([]int32, tab),
		hshift: 64 - uint(bits.Len(uint(tab-1))),
	}
	t.head, t.tail = -1, -1
	return t
}

// home returns the preferred probe-table bucket for a page tag.
func (t *TLB) home(page uint64) uint32 {
	return uint32((page * 0x9E3779B97F4A7C15) >> t.hshift)
}

// idxFind returns the TLB slot holding page, if indexed.
func (t *TLB) idxFind(page uint64) (int32, bool) {
	mask := uint32(len(t.keys) - 1)
	for i := t.home(page); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case page:
			return t.vals[i], true
		case 0:
			return 0, false
		}
	}
}

// idxInsert records page → slot. The page must not already be indexed.
func (t *TLB) idxInsert(page uint64, slot int32) {
	mask := uint32(len(t.keys) - 1)
	i := t.home(page)
	for t.keys[i] != 0 {
		i = (i + 1) & mask
	}
	t.keys[i], t.vals[i] = page, slot
}

// idxRemove unindexes page, compacting the probe chain by backward-shift
// deletion (no tombstones): each following entry moves into the hole when
// doing so does not skip past its home bucket.
func (t *TLB) idxRemove(page uint64) {
	mask := uint32(len(t.keys) - 1)
	i := t.home(page)
	for t.keys[i] != page {
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		k := t.keys[j]
		if k == 0 {
			break
		}
		// k (home h) may fill the hole at i only when i lies within its
		// probe path, i.e. the cyclic distance h→j covers i.
		if h := t.home(k); (j-h)&mask >= (j-i)&mask {
			t.keys[i], t.vals[i] = k, t.vals[j]
			i = j
		}
	}
	t.keys[i] = 0
}

// Access translates addr (4 KB pages), returning whether it hit.
func (t *TLB) Access(addr uint64) bool {
	t.Accesses++
	page := addr>>12 | 1<<63 // bias so valid entries are never zero
	if i, ok := t.idxFind(page); ok {
		t.moveToFront(i)
		return true
	}
	t.Misses++
	var slot int32
	if t.filled < len(t.pages) {
		// Fill invalid slots from the top down, matching the historical
		// last-invalid-wins victim scan.
		slot = int32(len(t.pages) - 1 - t.filled)
		t.filled++
	} else {
		slot = t.tail
		t.unlink(slot)
		t.idxRemove(t.pages[slot])
	}
	t.pages[slot] = page
	t.idxInsert(page, slot)
	t.pushFront(slot)
	return false
}

// Reset invalidates every entry and clears statistics without reallocating.
func (t *TLB) Reset() {
	clear(t.pages)
	clear(t.keys)
	t.head, t.tail = -1, -1
	t.filled = 0
	t.Accesses, t.Misses = 0, 0
}

// moveToFront splices slot i to the head of the recency list.
func (t *TLB) moveToFront(i int32) {
	if t.head == i {
		return
	}
	t.unlink(i)
	t.pushFront(i)
}

// unlink removes slot i from the recency list (i must be linked).
func (t *TLB) unlink(i int32) {
	if t.prev[i] >= 0 {
		t.next[t.prev[i]] = t.next[i]
	} else {
		t.head = t.next[i]
	}
	if t.next[i] >= 0 {
		t.prev[t.next[i]] = t.prev[i]
	} else {
		t.tail = t.prev[i]
	}
}

// pushFront links slot i at the head of the recency list.
func (t *TLB) pushFront(i int32) {
	t.prev[i] = -1
	t.next[i] = t.head
	if t.head >= 0 {
		t.prev[t.head] = i
	}
	t.head = i
	if t.tail < 0 {
		t.tail = i
	}
}
