package cache

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := New("t", 1<<10, 32, 2)
	addr := uint64(0x10000)
	if c.Access(addr) {
		t.Fatal("cold access hit")
	}
	if !c.Access(addr) {
		t.Fatal("warm access missed")
	}
	if !c.Access(addr + 31) {
		t.Fatal("same-line access missed")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Fatalf("stats: %d accesses, %d misses", c.Accesses, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache: three conflicting lines evict the least recently used.
	c := New("t", 64, 32, 2) // 1 set x 2 ways
	a, b, d := uint64(0x1000), uint64(0x2000), uint64(0x3000)
	c.Access(a)
	c.Access(b)
	c.Access(a) // A most recent
	c.Access(d) // evicts B
	if !c.Probe(a) {
		t.Fatal("MRU line evicted")
	}
	if c.Probe(b) {
		t.Fatal("LRU line survived")
	}
	if !c.Probe(d) {
		t.Fatal("filled line missing")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := New("t", 1<<10, 32, 2)
	c.Probe(0x4000)
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("Probe touched statistics")
	}
	if c.Probe(0x4000) {
		t.Fatal("Probe filled the line")
	}
}

func TestCacheCapacityBehaviour(t *testing.T) {
	// Working set smaller than capacity: steady-state hit rate ~1.
	c := New("t", 4<<10, 32, 2)
	for round := 0; round < 4; round++ {
		for a := uint64(0); a < 2<<10; a += 32 {
			c.Access(0x10000 + a)
		}
	}
	if rate := c.MissRate(); rate > 0.3 {
		t.Fatalf("resident working set misses %.2f", rate)
	}
	// Working set much larger than capacity: high miss rate.
	c2 := New("t", 1<<10, 32, 2)
	for round := 0; round < 2; round++ {
		for a := uint64(0); a < 64<<10; a += 32 {
			c2.Access(0x10000 + a)
		}
	}
	if rate := c2.MissRate(); rate < 0.9 {
		t.Fatalf("thrashing working set misses only %.2f", rate)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := Default()
	h := NewHierarchy(cfg)
	addr := uint64(0x5000_0000)
	lat, l2 := h.DataAccess(addr, 0)
	if !l2 {
		t.Fatal("cold miss did not reach L2")
	}
	if lat < cfg.L2MissLat {
		t.Fatalf("cold miss latency %d < memory latency %d", lat, cfg.L2MissLat)
	}
	lat, l2 = h.DataAccess(addr, 100)
	if l2 || lat != cfg.L1HitLat {
		t.Fatalf("warm access: lat=%d l2=%v", lat, l2)
	}
}

func TestHierarchyBusContention(t *testing.T) {
	cfg := Default()
	h := NewHierarchy(cfg)
	// Two same-cycle misses to different lines: the second queues.
	lat1, _ := h.DataAccess(0x5000_0000, 0)
	lat2, _ := h.DataAccess(0x6000_0000, 0)
	if lat2 <= lat1 {
		t.Fatalf("no bus queueing: lat1=%d lat2=%d", lat1, lat2)
	}
	// After the bus drains, latency returns to the base value.
	lat3, _ := h.DataAccess(0x7000_0000, 10000)
	if lat3 != lat1 {
		t.Fatalf("drained-bus latency %d != base %d", lat3, lat1)
	}
}

func TestInstFetchPrefetchesNextLine(t *testing.T) {
	cfg := Default()
	h := NewHierarchy(cfg)
	pc := uint64(0x40_0000)
	h.InstFetch(pc, 0)
	// The next line must now be resident without a demand access.
	if !h.L1I.Probe(pc + uint64(cfg.L1ILine)) {
		t.Fatal("next line not prefetched")
	}
	// Prefetches must not count as demand misses.
	if h.L1I.Misses != 1 {
		t.Fatalf("prefetch polluted stats: %d misses", h.L1I.Misses)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Access(0x1000) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(0x1800) {
		t.Fatal("same-page access missed")
	}
	// Fill beyond capacity: LRU page evicted.
	for i := uint64(1); i <= 4; i++ {
		tlb.Access(i * 0x10000)
	}
	if tlb.Access(0x1000) {
		t.Fatal("evicted page still hit")
	}
}

func TestCacheInvariantNoFalseHits(t *testing.T) {
	// Property: an address never accessed in a fresh cache never hits.
	err := quick.Check(func(addrs []uint32) bool {
		c := New("t", 1<<10, 32, 2)
		seenLines := map[uint64]bool{}
		for _, a32 := range addrs {
			addr := uint64(a32) + 0x1000
			hit := c.Access(addr)
			line := addr >> 5
			if hit && !seenLines[line] {
				return false // hit on a never-filled line
			}
			seenLines[line] = true
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeometryRounding(t *testing.T) {
	c := New("t", 1000, 32, 2) // size not a power of two
	if c.String() == "" {
		t.Fatal("empty geometry description")
	}
	if c.LineBytes() != 32 {
		t.Fatalf("line bytes = %d", c.LineBytes())
	}
	// Must still behave as a cache.
	c.Access(0x1000)
	if !c.Access(0x1000) {
		t.Fatal("rounded cache broken")
	}
}

func TestDefaultConfigMatchesTable3(t *testing.T) {
	cfg := Default()
	if cfg.L1ISize != 64<<10 || cfg.L1IWays != 2 || cfg.L1ILine != 32 {
		t.Error("L1I config deviates from Table 3")
	}
	if cfg.L1DSize != 64<<10 || cfg.L1DWays != 2 {
		t.Error("L1D config deviates from Table 3")
	}
	if cfg.L2Size != 512<<10 || cfg.L2Ways != 4 {
		t.Error("L2 config deviates from Table 3")
	}
	if cfg.L2HitLat != 6 || cfg.L2MissLat != 18 {
		t.Error("L2 latencies deviate from Table 3")
	}
	if cfg.TLBEntries != 128 {
		t.Error("TLB config deviates from Table 3")
	}
}
