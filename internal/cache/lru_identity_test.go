package cache

import "testing"

// This file regression-tests the O(1) LRU structures against the historical
// O(n) age-walk implementations they replaced: the set-associative cache's
// per-access age rewrite and the TLB's full-table scan. The references below
// are verbatim ports of the replaced code; randomized access streams must
// produce identical hit/miss sequences (and therefore identical victim
// choices — a divergent eviction surfaces as a later hit/miss divergence,
// and the final-state probes catch the rest).

// refCache is the historical age-walk set-associative cache.
type refCache struct {
	sets, ways int
	lineShift  uint
	tags       []uint64
	age        []uint32
	Accesses   uint64
	Misses     uint64
}

func newRefCache(model *Cache) *refCache {
	return &refCache{
		sets: model.sets, ways: model.ways, lineShift: model.lineShift,
		tags: make([]uint64, model.sets*model.ways),
		age:  make([]uint32, model.sets*model.ways),
	}
}

func (c *refCache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> c.lineShift
	base := int(line&uint64(c.sets-1)) * c.ways
	victim, worstAge := base, uint32(0)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.touch(base, w)
			return true
		}
		if c.tags[base+w] == 0 {
			if worstAge != ^uint32(0) {
				victim, worstAge = base+w, ^uint32(0)
			}
			continue
		}
		if c.age[base+w] >= worstAge && worstAge != ^uint32(0) {
			victim, worstAge = base+w, c.age[base+w]
		}
	}
	c.Misses++
	c.tags[victim] = line
	c.touch(base, victim-base)
	return false
}

func (c *refCache) touch(base, w int) {
	for i := 0; i < c.ways; i++ {
		if c.age[base+i] < ^uint32(0) {
			c.age[base+i]++
		}
	}
	c.age[base+w] = 0
}

// refTLB is the historical age-walk fully associative TLB.
type refTLB struct {
	pages    []uint64
	age      []uint32
	Accesses uint64
	Misses   uint64
}

func newRefTLB(n int) *refTLB {
	return &refTLB{pages: make([]uint64, n), age: make([]uint32, n)}
}

func (t *refTLB) Access(addr uint64) bool {
	t.Accesses++
	page := addr>>12 | 1<<63
	victim, worst := 0, uint32(0)
	for i := range t.pages {
		if t.pages[i] == page {
			t.touch(i)
			return true
		}
		if t.pages[i] == 0 {
			victim, worst = i, ^uint32(0)
			continue
		}
		if t.age[i] >= worst && worst != ^uint32(0) {
			victim, worst = i, t.age[i]
		}
	}
	t.Misses++
	t.pages[victim] = page
	t.touch(victim)
	return false
}

func (t *refTLB) touch(i int) {
	for j := range t.age {
		if t.age[j] < ^uint32(0) {
			t.age[j]++
		}
	}
	t.age[i] = 0
}

// splitmix is a tiny deterministic generator for the randomized streams.
func splitmix(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// stream produces n addresses mixing a hot region (frequent re-touches, so
// LRU order churns), a warm region, and cold sweeps (eviction pressure).
func stream(seed uint64, n int, hotSpan, coldSpan uint64) []uint64 {
	out := make([]uint64, n)
	state := seed
	for i := range out {
		r := splitmix(&state)
		switch {
		case r%10 < 6:
			out[i] = 0x10000 + r%hotSpan&^7
		case r%10 < 8:
			out[i] = 0x400000 + r%(4*hotSpan)&^7
		default:
			out[i] = 0x4000000 + r%coldSpan&^7
		}
	}
	return out
}

func TestCacheVictimChoiceMatchesAgeWalk(t *testing.T) {
	for _, geom := range []struct {
		name             string
		size, line, ways int
	}{
		{"l1-like", 8 << 10, 32, 2},
		{"l2-like", 32 << 10, 32, 4},
		{"tiny-8way", 1 << 10, 32, 8},
		{"one-set", 256, 32, 8},
	} {
		t.Run(geom.name, func(t *testing.T) {
			c := New("t", geom.size, geom.line, geom.ways)
			ref := newRefCache(c)
			for i, addr := range stream(uint64(geom.size)*31, 200000, 16<<10, 1<<20) {
				if got, want := c.Access(addr), ref.Access(addr); got != want {
					t.Fatalf("access %d (addr %#x): timestamp-LRU %v, age-walk %v", i, addr, got, want)
				}
			}
			if c.Accesses != ref.Accesses || c.Misses != ref.Misses {
				t.Fatalf("stats diverged: %d/%d vs %d/%d", c.Accesses, c.Misses, ref.Accesses, ref.Misses)
			}
			for i, tag := range ref.tags {
				if c.tags[i] != tag {
					t.Fatalf("final tag state diverged at way %d", i)
				}
			}
		})
	}
}

func TestTLBVictimChoiceMatchesAgeWalk(t *testing.T) {
	for _, entries := range []int{4, 32, 128} {
		tl := NewTLB(entries)
		ref := newRefTLB(entries)
		// Page-granular stream: hot pages churn the recency order, cold
		// pages force evictions through the full table.
		state := uint64(entries) * 0xABCD
		for i := 0; i < 300000; i++ {
			r := splitmix(&state)
			var addr uint64
			if r%5 < 3 {
				addr = (r % uint64(entries)) << 12 // within-reach hot pages
			} else {
				addr = (r % uint64(8*entries)) << 12 // beyond-reach sweep
			}
			if got, want := tl.Access(addr), ref.Access(addr); got != want {
				t.Fatalf("entries=%d access %d (page %#x): list-LRU %v, age-walk %v", entries, i, addr>>12, got, want)
			}
		}
		if tl.Accesses != ref.Accesses || tl.Misses != ref.Misses {
			t.Fatalf("entries=%d stats diverged: %d/%d vs %d/%d",
				entries, tl.Accesses, tl.Misses, ref.Accesses, ref.Misses)
		}
		// Final resident sets must be identical (slot-for-slot: the fill
		// order and victim choices are reproduced exactly).
		for i := range tl.pages {
			if tl.pages[i] != ref.pages[i] {
				t.Fatalf("entries=%d final page state diverged at slot %d", entries, i)
			}
		}
	}
}

func TestTLBResetRestoresColdState(t *testing.T) {
	tl := NewTLB(8)
	var first []bool
	for i := 0; i < 64; i++ {
		first = append(first, tl.Access(uint64(i%12)<<12))
	}
	tl.Reset()
	if tl.Accesses != 0 || tl.Misses != 0 {
		t.Fatal("reset kept statistics")
	}
	for i := 0; i < 64; i++ {
		if got := tl.Access(uint64(i%12) << 12); got != first[i] {
			t.Fatalf("replay after reset diverged at access %d", i)
		}
	}
}
