package conf

import "selthrottle/internal/bpred"

// BPRU is the paper's confidence estimator, adapted from the Branch
// Prediction Reversal Unit (Aragón et al., HiPC 2001): a tagged table whose
// entries hold a 3-bit up/down saturating counter tracking how often the
// branch's predictions have recently been wrong.
//
// Categorization follows §4.3 exactly: counter values 0-1 ⇒ VHC, 2-3 ⇒ HC,
// 4-5 ⇒ LC, 6-7 ⇒ VLC. On a table miss the paper's modified fallback is
// used: the underlying branch predictor's two-bit counter supplies the
// estimate, with weak states (weakly taken / weakly not-taken) labeled LC
// and strong states HC. That modification deliberately trades PVN for SPEC
// (more branches labeled low ⇒ more heuristics initiated); the paper's
// operating point is SPEC ≈ 60 %, PVN ≈ 45 % versus JRS's 90 %/24 %.
//
// The original BPRU derives its counter updates from value-prediction-based
// outcome recomputation. That signal is not reproducible without the
// authors' value predictor and real data values, so this implementation
// trains the same 3-bit counters directly on prediction correctness with
// asymmetric steps (IncWrong on a misprediction, DecRight on a correct
// prediction). The step asymmetry is the calibration knob that positions the
// estimator at the paper's reported SPEC/PVN point; calibration tests assert
// the bands. The table structure, tag behaviour, categorization thresholds,
// and fallback rule are as published.
type BPRU struct {
	tags   []uint32
	ctrs   []uint8
	ways   int
	sets   int
	incr   uint8
	decr   uint8
	ctrMax uint8
}

var _ Estimator = (*BPRU)(nil)

// BPRU tuning defaults (see type comment). They are variables rather than
// constants so calibration tooling can explore the step space; production
// code never mutates them.
var (
	bpruIncWrong = 2
	bpruDecRight = 1
)

const bpruCtrMax = 7

// SetDefaultSteps overrides the default counter steps for newly built BPRU
// estimators (calibration tooling only).
func SetDefaultSteps(incWrong, decRight int) {
	bpruIncWrong = incWrong
	bpruDecRight = decRight
}

// NewBPRU builds a BPRU-style estimator with the given byte budget. Each
// entry models a tag plus a 3-bit counter in two bytes; the table is 4-way
// set-associative (tag conflicts evict, giving realistic cold/conflict
// misses that exercise the fallback path).
func NewBPRU(sizeBytes int) *BPRU {
	entries := sizeBytes / 2
	if entries < 16 {
		entries = 16
	}
	ways := 4
	sets := entries / ways
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	n := sets * ways
	return &BPRU{
		tags:   make([]uint32, n),
		ctrs:   make([]uint8, n),
		ways:   ways,
		sets:   sets,
		incr:   uint8(bpruIncWrong),
		decr:   uint8(bpruDecRight),
		ctrMax: bpruCtrMax,
	}
}

// SetSteps overrides the counter update steps (used by the confidence
// exploration example and calibration tooling).
func (b *BPRU) SetSteps(incWrong, decRight int) {
	b.incr = uint8(incWrong)
	b.decr = uint8(decRight)
}

func (b *BPRU) set(pc uint64) int {
	return int((pc>>3)&uint64(b.sets-1)) * b.ways
}

func tagOf(pc uint64) uint32 {
	t := uint32(pc>>3) | 1 // never zero: zero means invalid
	return t
}

// lookup returns the entry index for pc, or -1 on a miss.
func (b *BPRU) lookup(pc uint64) int {
	base := b.set(pc)
	tag := tagOf(pc)
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == tag {
			return base + w
		}
	}
	return -1
}

// Estimate implements Estimator: 3-bit counter thresholds on a hit, the
// predictor's weak/strong fallback on a miss (§4.3).
//
// Band note: the paper maps counter values 0-1/2-3/4-5/6-7 to
// VHC/HC/LC/VLC under its value-prediction-driven updates. Our substituted
// miss-driven updates pile stationary mass at the saturation value, which
// would invert the paper's LC >> VLC frequency ordering (VLC must be the
// rare, near-certain-misprediction tier for graded throttling to work).
// The VLC band is therefore the saturated counter only; LC covers 4-6.
func (b *BPRU) Estimate(pc uint64, predCtr bpred.Counter2) Class {
	if i := b.lookup(pc); i >= 0 {
		switch c := b.ctrs[i]; {
		case c <= 1:
			return VHC
		case c <= 3:
			return HC
		case c < bpruCtrMax:
			return LC
		default:
			return VLC
		}
	}
	if predCtr.Weak() {
		return LC
	}
	return HC
}

// Train implements Estimator: allocate on miss, then saturating up/down
// update (up on misprediction — toward low confidence).
func (b *BPRU) Train(pc uint64, correct bool) {
	i := b.lookup(pc)
	if i < 0 {
		i = b.allocate(pc, correct)
	}
	if correct {
		if b.ctrs[i] > b.decr {
			b.ctrs[i] -= b.decr
		} else {
			b.ctrs[i] = 0
		}
	} else {
		if b.ctrs[i]+b.incr < b.ctrMax {
			b.ctrs[i] += b.incr
		} else {
			b.ctrs[i] = b.ctrMax
		}
	}
}

// allocate claims a way for pc. Victim selection prefers invalid ways, then
// the way with the lowest counter (the most-confident entry is the cheapest
// to lose). New entries start mid-range (HC/LC boundary) biased by the
// outcome that triggered allocation.
func (b *BPRU) allocate(pc uint64, correct bool) int {
	base := b.set(pc)
	victim := base
	lowest := uint8(255)
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == 0 {
			victim = base + w
			break
		}
		if b.ctrs[base+w] < lowest {
			lowest = b.ctrs[base+w]
			victim = base + w
		}
	}
	b.tags[victim] = tagOf(pc)
	if correct {
		b.ctrs[victim] = 2
	} else {
		b.ctrs[victim] = 5
	}
	return victim
}

// SizeBytes implements Estimator.
func (b *BPRU) SizeBytes() int { return b.sets * b.ways * 2 }

// Reset implements Estimator: invalidate every entry without reallocating.
func (b *BPRU) Reset() {
	clear(b.tags)
	clear(b.ctrs)
}

// Static is a fixed-class estimator, useful in tests and ablations (for
// example, "treat every branch as VLC" reproduces non-selective gating).
type Static struct{ Class Class }

var _ Estimator = Static{}

// Estimate implements Estimator.
func (s Static) Estimate(uint64, bpred.Counter2) Class { return s.Class }

// Train implements Estimator.
func (s Static) Train(uint64, bool) {}

// SizeBytes implements Estimator.
func (s Static) SizeBytes() int { return 0 }

// Reset implements Estimator (a fixed-class estimator holds no state).
func (s Static) Reset() {}
