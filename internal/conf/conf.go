// Package conf implements branch-prediction confidence estimation and the
// four-way confidence categorization at the heart of Selective Throttling.
//
// Two estimators are provided, matching the paper's Section 4.3:
//
//   - JRS: Jacobsen/Rotenberg/Smith resetting counters ("ones counters") with
//     a miss-distance-counter (MDC) threshold. Used by the Pipeline Gating
//     baseline with an 8 KB table and MDC threshold 12 (SPEC ≈ 90 %,
//     PVN ≈ 24 % on the paper's benchmarks).
//
//   - BPRU-style: the estimator the paper adapts from the Branch Prediction
//     Reversal Unit — a *tagged* table of 3-bit up/down saturating counters.
//     Counter values map to the four classes (0-1 VHC, 2-3 HC, 4-5 LC,
//     6-7 VLC); on a table miss the underlying predictor's two-bit counter
//     provides the fallback estimate (weak states ⇒ LC, strong ⇒ HC),
//     which is the paper's modification to raise SPEC at some PVN cost
//     (target operating point SPEC ≈ 60 %, PVN ≈ 45 %).
//
// Both estimators are instrumented: Quality (SPEC/PVN) is computed over the
// classic two-way split where {LC, VLC} counts as "low confidence".
package conf

import "selthrottle/internal/bpred"

// Class is a branch-prediction confidence class, ordered from most to least
// confident. The ordering is significant: throttling policies map classes to
// monotonically more aggressive heuristics.
type Class uint8

// Confidence classes (paper §4.2).
const (
	VHC Class = iota // very-high confidence
	HC               // high confidence
	LC               // low confidence
	VLC              // very-low confidence
	NumClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case VHC:
		return "VHC"
	case HC:
		return "HC"
	case LC:
		return "LC"
	case VLC:
		return "VLC"
	default:
		return "?"
	}
}

// Low reports whether the class is low-confidence in the classic two-way
// sense used for SPEC/PVN and Pipeline Gating.
func (c Class) Low() bool { return c == LC || c == VLC }

// Estimator assigns a confidence class to each branch prediction and is
// trained with resolved outcomes.
type Estimator interface {
	// Estimate returns the confidence class of the prediction for pc.
	// predCtr is the two-bit counter state the direction prediction came
	// from (fallback source for tagged estimators).
	Estimate(pc uint64, predCtr bpred.Counter2) Class
	// Train updates the estimator with the resolution of a branch:
	// correct is true when the direction prediction was right.
	Train(pc uint64, correct bool)
	// SizeBytes reports the modeled storage.
	SizeBytes() int
	// Reset restores the estimator to its as-new state without
	// reallocation, so run contexts can be reused across runs.
	Reset()
}

// Quality accumulates the standard confidence metrics (Grunwald et al.):
//
//	SPEC = fraction of mispredictions labeled low confidence,
//	PVN  = fraction of low-confidence labels that are mispredictions.
type Quality struct {
	Mispred       uint64 // total mispredictions observed
	MispredLow    uint64 // mispredictions labeled LC/VLC
	LowLabeled    uint64 // predictions labeled LC/VLC
	Total         uint64 // all predictions observed
	PerClassTotal [NumClasses]uint64
	PerClassWrong [NumClasses]uint64
}

// Record adds one resolved prediction with its label.
func (q *Quality) Record(class Class, correct bool) {
	q.Total++
	q.PerClassTotal[class]++
	if class.Low() {
		q.LowLabeled++
	}
	if !correct {
		q.Mispred++
		q.PerClassWrong[class]++
		if class.Low() {
			q.MispredLow++
		}
	}
}

// SPEC returns the SPEC metric in [0,1].
func (q *Quality) SPEC() float64 {
	if q.Mispred == 0 {
		return 0
	}
	return float64(q.MispredLow) / float64(q.Mispred)
}

// PVN returns the PVN metric in [0,1].
func (q *Quality) PVN() float64 {
	if q.LowLabeled == 0 {
		return 0
	}
	return float64(q.MispredLow) / float64(q.LowLabeled)
}

// LowFrac returns the fraction of predictions labeled low confidence.
func (q *Quality) LowFrac() float64 {
	if q.Total == 0 {
		return 0
	}
	return float64(q.LowLabeled) / float64(q.Total)
}
