package conf

import (
	"testing"
	"testing/quick"

	"selthrottle/internal/bpred"
)

func TestClassOrderingAndLow(t *testing.T) {
	if !(VHC < HC && HC < LC && LC < VLC) {
		t.Fatal("class ordering broken")
	}
	if VHC.Low() || HC.Low() || !LC.Low() || !VLC.Low() {
		t.Fatal("Low() misclassifies")
	}
}

func TestQualityMetrics(t *testing.T) {
	var q Quality
	// 10 predictions: 4 labeled low (3 of them wrong), 6 high (1 wrong).
	for i := 0; i < 3; i++ {
		q.Record(LC, false)
	}
	q.Record(VLC, true)
	for i := 0; i < 5; i++ {
		q.Record(HC, true)
	}
	q.Record(VHC, false)

	if q.Total != 10 || q.Mispred != 4 || q.LowLabeled != 4 {
		t.Fatalf("counts: %+v", q)
	}
	if got := q.SPEC(); got != 0.75 {
		t.Fatalf("SPEC = %v, want 0.75", got)
	}
	if got := q.PVN(); got != 0.75 {
		t.Fatalf("PVN = %v, want 0.75", got)
	}
	if got := q.LowFrac(); got != 0.4 {
		t.Fatalf("LowFrac = %v, want 0.4", got)
	}
}

func TestQualityEmptySafe(t *testing.T) {
	var q Quality
	if q.SPEC() != 0 || q.PVN() != 0 || q.LowFrac() != 0 {
		t.Fatal("empty quality not zero")
	}
}

func TestJRSResetBehaviour(t *testing.T) {
	j := NewJRS(8<<10, 12)
	pc := uint64(0x400100)
	// Fresh entry: counter 0 => VLC.
	if c := j.Estimate(pc, 0); c != VLC {
		t.Fatalf("fresh JRS entry classified %v", c)
	}
	// After 12 correct predictions, high confidence.
	for i := 0; i < 12; i++ {
		j.Train(pc, true)
	}
	if c := j.Estimate(pc, 0); c.Low() {
		t.Fatalf("after 12 correct, classified %v", c)
	}
	// Saturate: VHC.
	for i := 0; i < 10; i++ {
		j.Train(pc, true)
	}
	if c := j.Estimate(pc, 0); c != VHC {
		t.Fatalf("saturated JRS classified %v", c)
	}
	// A single misprediction resets to VLC.
	j.Train(pc, false)
	if c := j.Estimate(pc, 0); c != VLC {
		t.Fatalf("after reset, classified %v", c)
	}
}

func TestJRSTwoWayBoundaryMatchesThreshold(t *testing.T) {
	j := NewJRS(8<<10, 12)
	pc := uint64(0x400200)
	for i := 0; i < 11; i++ {
		j.Train(pc, true)
	}
	if c := j.Estimate(pc, 0); !c.Low() {
		t.Fatal("counter 11 (< MDC 12) must be low confidence")
	}
	j.Train(pc, true)
	if c := j.Estimate(pc, 0); c.Low() {
		t.Fatal("counter 12 (== MDC) must be high confidence")
	}
}

func TestBPRUBandsAndDynamics(t *testing.T) {
	b := NewBPRU(8 << 10)
	pc := uint64(0x400300)
	// Allocate via a misprediction: lands in the LC band.
	b.Train(pc, false)
	if c := b.Estimate(pc, 0); !c.Low() {
		t.Fatalf("after allocation on a miss, classified %v", c)
	}
	// Sustained mispredictions saturate into VLC.
	for i := 0; i < 10; i++ {
		b.Train(pc, false)
	}
	if c := b.Estimate(pc, 0); c != VLC {
		t.Fatalf("saturated BPRU classified %v", c)
	}
	// Sustained correct predictions decay to VHC.
	for i := 0; i < 20; i++ {
		b.Train(pc, true)
	}
	if c := b.Estimate(pc, 0); c != VHC {
		t.Fatalf("decayed BPRU classified %v", c)
	}
}

func TestBPRUFallbackUsesPredictorCounter(t *testing.T) {
	b := NewBPRU(8 << 10)
	pc := uint64(0x99999000) // never trained: table miss
	if c := b.Estimate(pc, bpred.Counter2(1)); c != LC {
		t.Fatalf("weak counter fallback = %v, want LC", c)
	}
	if c := b.Estimate(pc, bpred.Counter2(3)); c != HC {
		t.Fatalf("strong counter fallback = %v, want HC", c)
	}
}

func TestBPRUTagIsolation(t *testing.T) {
	b := NewBPRU(8 << 10)
	pcA := uint64(0x400400)
	pcB := uint64(0x400408)
	for i := 0; i < 10; i++ {
		b.Train(pcA, false)
	}
	// pcB unseen: must fall back, not read pcA's entry.
	if c := b.Estimate(pcB, bpred.Counter2(3)); c == VLC {
		t.Fatal("tag mismatch leaked another branch's counter")
	}
}

func TestBPRUCounterBounds(t *testing.T) {
	b := NewBPRU(1 << 10)
	err := quick.Check(func(pcSeed uint16, outcomes []bool) bool {
		pc := uint64(pcSeed)<<3 + 0x400000
		for _, o := range outcomes {
			b.Train(pc, o)
		}
		c := b.Estimate(pc, 0)
		return c <= VLC
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStaticEstimator(t *testing.T) {
	s := Static{Class: VLC}
	if s.Estimate(0x1234, 0) != VLC {
		t.Fatal("static estimator changed class")
	}
	s.Train(0x1234, false) // must be a no-op
	if s.Estimate(0x1234, 0) != VLC {
		t.Fatal("static estimator trained")
	}
	if s.SizeBytes() != 0 {
		t.Fatal("static estimator claims storage")
	}
}

func TestSizeBytesApproximatesBudget(t *testing.T) {
	for _, kb := range []int{4, 8, 16, 32} {
		j := NewJRS(kb<<10, 12)
		if j.SizeBytes() != kb<<10 {
			t.Errorf("JRS %d KB reports %d bytes", kb, j.SizeBytes())
		}
		b := NewBPRU(kb << 10)
		if b.SizeBytes() > kb<<10 || b.SizeBytes() < kb<<10/2 {
			t.Errorf("BPRU %d KB reports %d bytes", kb, b.SizeBytes())
		}
	}
}

func TestClassStrings(t *testing.T) {
	names := map[Class]string{VHC: "VHC", HC: "HC", LC: "LC", VLC: "VLC"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%v.String() = %q", c, c.String())
		}
	}
}
