package conf

import "selthrottle/internal/bpred"

// JRS is the Jacobsen/Rotenberg/Smith confidence estimator: a table of
// n-bit resetting counters, incremented (saturating) on a correct prediction
// and reset to zero on a misprediction. A prediction is high-confidence when
// its counter has reached the miss-distance-counter (MDC) threshold.
//
// The paper's Pipeline Gating baseline uses an 8 KB JRS table with 4-bit
// counters and MDC threshold 12 (its best configuration from Manne et al.).
//
// JRS natively yields a two-way high/low split; the four-way categorization
// required by Selective Throttling divides each side by counter distance
// from the threshold, preserving the two-way boundary (Class.Low is
// unchanged with respect to the original scheme).
type JRS struct {
	table      []uint8
	counterMax uint8
	threshold  uint8
}

var _ Estimator = (*JRS)(nil)

// NewJRS builds a JRS estimator. sizeBytes is the table budget with two
// 4-bit counters per byte (8 KB ⇒ 16 K counters); threshold is the MDC
// threshold (12 in the paper).
func NewJRS(sizeBytes int, threshold int) *JRS {
	entries := sizeBytes * 2
	if entries < 16 {
		entries = 16
	}
	p := 1
	for p*2 <= entries {
		p *= 2
	}
	return &JRS{
		table:      make([]uint8, p),
		counterMax: 15,
		threshold:  uint8(threshold),
	}
}

func (j *JRS) index(pc uint64) int {
	return int((pc >> 3) & uint64(len(j.table)-1))
}

// Estimate implements Estimator. The two-way split is counter >= threshold
// ⇒ high confidence; the four-way refinement splits on counter distance:
//
//	counter == max                  ⇒ VHC
//	threshold <= counter < max      ⇒ HC
//	threshold/2 <= counter < thresh ⇒ LC
//	counter < threshold/2           ⇒ VLC
func (j *JRS) Estimate(pc uint64, _ bpred.Counter2) Class {
	c := j.table[j.index(pc)]
	switch {
	case c >= j.counterMax:
		return VHC
	case c >= j.threshold:
		return HC
	case c >= j.threshold/2:
		return LC
	default:
		return VLC
	}
}

// Train implements Estimator.
func (j *JRS) Train(pc uint64, correct bool) {
	i := j.index(pc)
	if correct {
		if j.table[i] < j.counterMax {
			j.table[i]++
		}
	} else {
		j.table[i] = 0
	}
}

// SizeBytes implements Estimator.
func (j *JRS) SizeBytes() int { return len(j.table) / 2 }

// Reset implements Estimator: zero every counter without reallocating.
func (j *JRS) Reset() { clear(j.table) }
