// Package core implements the paper's primary contribution: Selective
// Throttling — confidence-driven, graded throttling of the fetch, decode,
// and selection stages of an out-of-order processor — plus the Pipeline
// Gating baseline (Manne et al.) and the oracle speculation-control modes
// used in the paper's limit study (Section 3).
//
// The package is pure control logic: the pipeline (internal/pipe) notifies
// the Controller when conditional branches are predicted, resolved, and
// squashed, and queries it each cycle for the effective fetch/decode rate
// and for no-select blocking decisions. This separation lets every policy
// rule be unit-tested without a pipeline.
package core

import (
	"fmt"

	"selthrottle/internal/conf"
)

// Rate is a front-end bandwidth level. The paper's heuristics alternate
// full-activity cycles with stalled cycles: half keeps 1 cycle in 2 active,
// quarter 1 in 4, stall none (Section 4.1).
type Rate uint8

// Bandwidth levels, ordered from least to most restrictive. The ordering is
// load-bearing: the controller escalates to the maximum of the active set.
const (
	RateFull Rate = iota
	RateHalf
	RateQuarter
	RateStall
)

// String implements fmt.Stringer using the paper's notation.
func (r Rate) String() string {
	switch r {
	case RateFull:
		return "1/1"
	case RateHalf:
		return "1/2"
	case RateQuarter:
		return "1/4"
	case RateStall:
		return "0"
	default:
		return fmt.Sprintf("rate(%d)", uint8(r))
	}
}

// ActiveAt reports whether a stage throttled at r performs work during the
// given cycle. Full activity cycles alternate with stalled cycles: half is
// active on even phases, quarter one phase in four.
func (r Rate) ActiveAt(cycle uint64) bool {
	switch r {
	case RateFull:
		return true
	case RateHalf:
		return cycle%2 == 0
	case RateQuarter:
		return cycle%4 == 0
	default:
		return false
	}
}

// DutyCycle returns the fraction of cycles the stage stays active.
func (r Rate) DutyCycle() float64 {
	switch r {
	case RateFull:
		return 1
	case RateHalf:
		return 0.5
	case RateQuarter:
		return 0.25
	default:
		return 0
	}
}

// maxRate returns the more restrictive of two rates.
func maxRate(a, b Rate) Rate {
	if b > a {
		return b
	}
	return a
}

// Spec is the heuristic bundle triggered by one confidence class: fetch and
// decode bandwidth levels plus the novel selection-throttling bit.
type Spec struct {
	Fetch    Rate
	Decode   Rate
	NoSelect bool
}

// IsNop reports whether the spec imposes no restriction at all (such specs
// never register triggers).
func (s Spec) IsNop() bool {
	return s.Fetch == RateFull && s.Decode == RateFull && !s.NoSelect
}

// String renders the spec in the paper's experiment notation.
func (s Spec) String() string {
	out := fmt.Sprintf("fetch %s, decode %s", s.Fetch, s.Decode)
	if s.NoSelect {
		out += ", noselect"
	}
	return out
}

// Policy maps each confidence class to its heuristic. The zero Policy
// throttles nothing (the baseline).
type Policy struct {
	Name    string
	ByClass [conf.NumClasses]Spec

	// Gating switches the controller to Pipeline Gating semantics: the
	// ByClass specs are ignored and fetch is fully stalled while the
	// number of unresolved low-confidence (LC/VLC) branches reaches
	// GateThreshold (2 in the paper's baseline configuration).
	Gating        bool
	GateThreshold int
}

// Baseline returns the no-throttling policy.
func Baseline() Policy { return Policy{Name: "baseline"} }

// PipelineGating returns Manne et al.'s scheme with the given gating
// threshold (the paper uses 2, with a JRS estimator).
func PipelineGating(threshold int) Policy {
	return Policy{Name: "pipeline-gating", Gating: true, GateThreshold: threshold}
}

// Selective builds a Selective Throttling policy from the LC and VLC specs
// (the paper's experiments leave VHC/HC unthrottled).
func Selective(name string, lc, vlc Spec) Policy {
	p := Policy{Name: name}
	p.ByClass[conf.LC] = lc
	p.ByClass[conf.VLC] = vlc
	return p
}

// trigger is one unresolved conditional branch that initiated a heuristic.
type trigger struct {
	seq     uint64
	spec    Spec
	lowConf bool
}

// Controller tracks the set of in-flight trigger branches and answers the
// pipeline's per-cycle throttling questions. It implements the paper's
// escalation rule by construction: the effective rate is the most
// restrictive across active triggers, so a later VLC branch tightens an
// active LC heuristic but a later weak trigger never relaxes a strong one.
type Controller struct {
	policy Policy

	// triggers is ordered by seq (branches are predicted in fetch order;
	// squash removes a suffix, resolution removes arbitrary elements).
	triggers []trigger

	// noSelect holds the seqs of unresolved NoSelect triggers, ascending.
	noSelect []uint64

	lowCount int // unresolved low-confidence branches (Pipeline Gating)

	// decodeRestrictive counts unresolved triggers whose spec restricts
	// decode bandwidth. It lets the pipeline skip the per-instruction
	// DecodeRateFor scan entirely when no trigger could make it return
	// anything but RateFull — the overwhelmingly common case (the baseline
	// and every fetch-only policy never restrict decode).
	decodeRestrictive int

	// Stats.
	Triggered   uint64 // heuristic initiations
	GatedCycles uint64 // cycles with fetch not fully active
}

// NewController builds a controller for a policy.
func NewController(p Policy) *Controller {
	return &Controller{policy: p}
}

// Policy returns the active policy.
func (c *Controller) Policy() Policy { return c.policy }

// Reset rebinds the controller to a policy and clears every trigger and
// statistic, reusing the trigger storage. A reset controller behaves exactly
// like a freshly constructed one.
func (c *Controller) Reset(p Policy) {
	c.policy = p
	c.triggers = c.triggers[:0]
	c.noSelect = c.noSelect[:0]
	c.lowCount = 0
	c.decodeRestrictive = 0
	c.Triggered = 0
	c.GatedCycles = 0
}

// OnBranchPredicted registers a conditional branch prediction with its
// confidence class and returns the spec it triggered (zero Spec when none).
// seq values must be strictly increasing across calls, matching fetch order.
func (c *Controller) OnBranchPredicted(seq uint64, class conf.Class) Spec {
	if c.policy.Gating {
		if class.Low() {
			c.lowCount++
			c.triggers = append(c.triggers, trigger{seq: seq, lowConf: true})
			c.Triggered++
		}
		return Spec{}
	}
	spec := c.policy.ByClass[class]
	if spec.IsNop() {
		return Spec{}
	}
	c.triggers = append(c.triggers, trigger{seq: seq, spec: spec})
	if spec.NoSelect {
		c.noSelect = append(c.noSelect, seq)
	}
	if spec.Decode != RateFull {
		c.decodeRestrictive++
	}
	c.Triggered++
	return spec
}

// OnBranchResolved removes the trigger for seq, if any (branches resolve out
// of order).
func (c *Controller) OnBranchResolved(seq uint64) {
	for i := range c.triggers {
		if c.triggers[i].seq == seq {
			if c.triggers[i].lowConf {
				c.lowCount--
			}
			if c.triggers[i].spec.Decode != RateFull {
				c.decodeRestrictive--
			}
			c.triggers = append(c.triggers[:i], c.triggers[i+1:]...)
			break
		}
	}
	c.removeNoSelect(seq)
}

// OnSquash removes every trigger younger than seq (their branches were
// squashed and will never resolve).
func (c *Controller) OnSquash(seq uint64) {
	keep := c.triggers[:0]
	for _, t := range c.triggers {
		if t.seq <= seq {
			keep = append(keep, t)
			continue
		}
		if t.lowConf {
			c.lowCount--
		}
		if t.spec.Decode != RateFull {
			c.decodeRestrictive--
		}
	}
	c.triggers = keep
	ns := c.noSelect[:0]
	for _, s := range c.noSelect {
		if s <= seq {
			ns = append(ns, s)
		}
	}
	c.noSelect = ns
}

func (c *Controller) removeNoSelect(seq uint64) {
	for i, s := range c.noSelect {
		if s == seq {
			c.noSelect = append(c.noSelect[:i], c.noSelect[i+1:]...)
			return
		}
	}
}

// FetchRate returns the current effective fetch bandwidth level.
func (c *Controller) FetchRate() Rate {
	if c.policy.Gating {
		if c.lowCount >= c.policy.GateThreshold && c.policy.GateThreshold > 0 {
			return RateStall
		}
		return RateFull
	}
	r := RateFull
	for _, t := range c.triggers {
		r = maxRate(r, t.spec.Fetch)
	}
	return r
}

// DecodeRate returns the current effective decode bandwidth level across
// all active triggers (used for reporting; the pipeline uses DecodeRateFor).
func (c *Controller) DecodeRate() Rate {
	if c.policy.Gating {
		return RateFull
	}
	r := RateFull
	for _, t := range c.triggers {
		r = maxRate(r, t.spec.Decode)
	}
	return r
}

// DecodeThrottled reports whether any unresolved trigger restricts decode
// bandwidth; when false, DecodeRateFor is RateFull for every instruction.
// The check is a plain counter read, so the pipeline's decode stage can gate
// its per-instruction DecodeRateFor scans on it.
func (c *Controller) DecodeThrottled() bool { return c.decodeRestrictive > 0 }

// HasNoSelect reports whether any NoSelect trigger is unresolved; when
// false, BarrierFor finds nothing for any instruction.
func (c *Controller) HasNoSelect() bool { return len(c.noSelect) > 0 }

// DecodeRateFor returns the decode bandwidth level that applies to the
// instruction with the given seq: only triggers *older* than the
// instruction restrict it. The trigger branch itself (and anything fetched
// before it) must keep flowing through decode, or a full decode stall would
// park the branch in the front end forever and deadlock the machine — the
// hardware analogue is that gating logic sits after the trigger branch's
// own pipeline slot.
func (c *Controller) DecodeRateFor(seq uint64) Rate {
	if c.policy.Gating {
		return RateFull
	}
	r := RateFull
	for _, t := range c.triggers {
		if t.seq < seq {
			r = maxRate(r, t.spec.Decode)
		}
	}
	return r
}

// BarrierFor returns the seq of the youngest active NoSelect trigger older
// than the instruction with the given seq; the instruction records it at
// dispatch and stays unselectable while any NoSelect trigger at or below the
// barrier is unresolved. ok is false when no older trigger is active (the
// instruction is not control-dependent on any unresolved NoSelect branch).
func (c *Controller) BarrierFor(seq uint64) (barrier uint64, ok bool) {
	// noSelect is ascending; scan from the young end (it is short).
	for i := len(c.noSelect) - 1; i >= 0; i-- {
		if c.noSelect[i] < seq {
			return c.noSelect[i], true
		}
	}
	return 0, false
}

// Blocked reports whether an instruction dispatched under barrier is still
// barred from selection: true while the oldest unresolved NoSelect trigger
// is at or below the barrier.
func (c *Controller) Blocked(barrier uint64) bool {
	return len(c.noSelect) > 0 && c.noSelect[0] <= barrier
}

// ActiveTriggers reports how many trigger branches are unresolved (tests).
func (c *Controller) ActiveTriggers() int { return len(c.triggers) }

// NoteGatedCycle lets the pipeline record a cycle in which fetch ran below
// full bandwidth, for the engagement statistics in reports.
func (c *Controller) NoteGatedCycle() { c.GatedCycles++ }

// Oracle selects one of the limit-study modes of Section 3. The oracle
// knows, at fetch time, whether a prediction is wrong; each mode suppresses
// exactly one stage's processing of wrong-path instructions while still
// paying the normal branch-resolution latency.
type Oracle uint8

// Oracle modes.
const (
	OracleNone   Oracle = iota
	OracleFetch         // never fetch the mis-speculated path (stall instead)
	OracleDecode        // fetch normally, never decode wrong-path instructions
	OracleSelect        // fetch+decode normally, never select wrong-path instructions
)

// String implements fmt.Stringer.
func (o Oracle) String() string {
	switch o {
	case OracleNone:
		return "none"
	case OracleFetch:
		return "oracle-fetch"
	case OracleDecode:
		return "oracle-decode"
	case OracleSelect:
		return "oracle-select"
	default:
		return fmt.Sprintf("oracle(%d)", uint8(o))
	}
}
