package core

import (
	"testing"
	"testing/quick"

	"selthrottle/internal/conf"
)

func TestRateDutyCycles(t *testing.T) {
	// The measured duty cycle over a window must equal the nominal one —
	// the paper's bandwidth reduction alternates full and stalled cycles.
	for _, r := range []Rate{RateFull, RateHalf, RateQuarter, RateStall} {
		active := 0
		n := 1000
		for c := 0; c < n; c++ {
			if r.ActiveAt(uint64(c)) {
				active++
			}
		}
		got := float64(active) / float64(n)
		if got != r.DutyCycle() {
			t.Errorf("%v duty cycle %v, want %v", r, got, r.DutyCycle())
		}
	}
}

func TestRateOrdering(t *testing.T) {
	if !(RateFull < RateHalf && RateHalf < RateQuarter && RateQuarter < RateStall) {
		t.Fatal("rate restrictiveness ordering broken")
	}
	if maxRate(RateHalf, RateStall) != RateStall || maxRate(RateStall, RateHalf) != RateStall {
		t.Fatal("maxRate wrong")
	}
}

func TestSpecIsNop(t *testing.T) {
	if !(Spec{}).IsNop() {
		t.Fatal("zero spec should be nop")
	}
	if (Spec{Fetch: RateHalf}).IsNop() || (Spec{NoSelect: true}).IsNop() {
		t.Fatal("non-trivial specs classified nop")
	}
}

func TestControllerBaselineNeverThrottles(t *testing.T) {
	c := NewController(Baseline())
	for seq := uint64(1); seq < 100; seq++ {
		c.OnBranchPredicted(seq, conf.VLC)
	}
	if c.FetchRate() != RateFull || c.DecodeRate() != RateFull {
		t.Fatal("baseline policy throttled")
	}
	if c.ActiveTriggers() != 0 {
		t.Fatal("baseline policy registered triggers")
	}
}

func TestControllerClassMapping(t *testing.T) {
	p := Selective("t", Spec{Fetch: RateQuarter}, Spec{Fetch: RateStall})
	c := NewController(p)
	c.OnBranchPredicted(1, conf.HC)
	if c.FetchRate() != RateFull {
		t.Fatal("HC triggered a heuristic")
	}
	c.OnBranchPredicted(2, conf.LC)
	if c.FetchRate() != RateQuarter {
		t.Fatal("LC did not trigger fetch/4")
	}
	c.OnBranchResolved(2)
	if c.FetchRate() != RateFull {
		t.Fatal("resolution did not release the throttle")
	}
}

func TestEscalationRule(t *testing.T) {
	// A later VLC tightens an active LC heuristic; resolving the VLC
	// while the LC is still unresolved falls back to the LC level —
	// never below the most restrictive *active* trigger.
	p := Selective("t", Spec{Fetch: RateQuarter}, Spec{Fetch: RateStall})
	c := NewController(p)
	c.OnBranchPredicted(10, conf.LC)
	if c.FetchRate() != RateQuarter {
		t.Fatal("LC trigger missing")
	}
	c.OnBranchPredicted(11, conf.VLC)
	if c.FetchRate() != RateStall {
		t.Fatal("VLC did not escalate")
	}
	// A later, weaker trigger must not relax the stall.
	c.OnBranchPredicted(12, conf.LC)
	if c.FetchRate() != RateStall {
		t.Fatal("weaker trigger relaxed the throttle")
	}
	c.OnBranchResolved(11)
	if c.FetchRate() != RateQuarter {
		t.Fatal("after VLC resolution the LC level should remain")
	}
}

func TestSquashRemovesYoungTriggers(t *testing.T) {
	p := Selective("t", Spec{Fetch: RateQuarter}, Spec{Fetch: RateStall})
	c := NewController(p)
	c.OnBranchPredicted(10, conf.LC)
	c.OnBranchPredicted(20, conf.VLC)
	c.OnBranchPredicted(30, conf.VLC)
	c.OnSquash(15) // branches 20 and 30 were wrong-path
	if c.FetchRate() != RateQuarter {
		t.Fatalf("after squash rate = %v, want 1/4", c.FetchRate())
	}
	if c.ActiveTriggers() != 1 {
		t.Fatalf("triggers = %d, want 1", c.ActiveTriggers())
	}
}

func TestDecodeRateIndependent(t *testing.T) {
	p := Selective("t", Spec{Fetch: RateHalf, Decode: RateQuarter}, Spec{Fetch: RateStall})
	c := NewController(p)
	c.OnBranchPredicted(1, conf.LC)
	if c.FetchRate() != RateHalf || c.DecodeRate() != RateQuarter {
		t.Fatal("fetch/decode rates not independent")
	}
}

func TestNoSelectBarrierSemantics(t *testing.T) {
	p := Selective("t", Spec{Fetch: RateQuarter, NoSelect: true}, Spec{Fetch: RateStall})
	c := NewController(p)

	// No triggers: nothing blocked.
	if _, ok := c.BarrierFor(100); ok {
		t.Fatal("barrier without triggers")
	}

	c.OnBranchPredicted(50, conf.LC) // no-select trigger at seq 50

	// An instruction OLDER than the trigger is not control-dependent.
	if _, ok := c.BarrierFor(40); ok {
		t.Fatal("older instruction got a barrier")
	}
	// A younger instruction is blocked while the trigger is unresolved.
	barrier, ok := c.BarrierFor(60)
	if !ok || barrier != 50 {
		t.Fatalf("barrier = %d, %v", barrier, ok)
	}
	if !c.Blocked(barrier) {
		t.Fatal("dependent instruction not blocked")
	}
	c.OnBranchResolved(50)
	if c.Blocked(barrier) {
		t.Fatal("resolution did not unblock")
	}
}

func TestNoSelectMultipleTriggers(t *testing.T) {
	p := Selective("t", Spec{NoSelect: true}, Spec{NoSelect: true})
	c := NewController(p)
	c.OnBranchPredicted(10, conf.LC)
	c.OnBranchPredicted(20, conf.VLC)

	// An instruction after both is blocked until both resolve (its barrier
	// is the youngest older trigger).
	barrier, _ := c.BarrierFor(25)
	if barrier != 20 {
		t.Fatalf("barrier = %d, want 20", barrier)
	}
	c.OnBranchResolved(20)
	if !c.Blocked(barrier) {
		t.Fatal("still-unresolved older trigger must keep blocking")
	}
	c.OnBranchResolved(10)
	if c.Blocked(barrier) {
		t.Fatal("all triggers resolved but still blocked")
	}
}

func TestPipelineGatingThreshold(t *testing.T) {
	c := NewController(PipelineGating(2))
	c.OnBranchPredicted(1, conf.LC)
	if c.FetchRate() != RateFull {
		t.Fatal("gated below threshold")
	}
	c.OnBranchPredicted(2, conf.VLC)
	if c.FetchRate() != RateStall {
		t.Fatal("did not gate at threshold")
	}
	c.OnBranchPredicted(3, conf.HC) // high confidence: not counted
	c.OnBranchResolved(1)
	if c.FetchRate() != RateFull {
		t.Fatal("did not release below threshold")
	}
	// Gating never touches decode.
	c.OnBranchPredicted(4, conf.LC)
	c.OnBranchPredicted(5, conf.LC)
	if c.DecodeRate() != RateFull {
		t.Fatal("pipeline gating throttled decode")
	}
}

func TestPipelineGatingSquash(t *testing.T) {
	c := NewController(PipelineGating(2))
	c.OnBranchPredicted(1, conf.LC)
	c.OnBranchPredicted(2, conf.LC)
	if c.FetchRate() != RateStall {
		t.Fatal("not gated")
	}
	c.OnSquash(1)
	if c.FetchRate() != RateFull {
		t.Fatal("squash did not release the gate")
	}
}

func TestControllerPropertyRateNeverBelowActiveMax(t *testing.T) {
	// Property: with an arbitrary interleaving of predictions and
	// resolutions, the effective rate equals the max over active triggers.
	p := Selective("t",
		Spec{Fetch: RateQuarter, Decode: RateHalf, NoSelect: true},
		Spec{Fetch: RateStall})
	err := quick.Check(func(ops []uint8) bool {
		c := NewController(p)
		type tr struct {
			seq  uint64
			spec Spec
		}
		var active []tr
		seq := uint64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				seq++
				cl := conf.LC
				if op%2 == 0 {
					cl = conf.VLC
				}
				s := c.OnBranchPredicted(seq, cl)
				if !s.IsNop() {
					active = append(active, tr{seq, s})
				}
			case 1:
				if len(active) > 0 {
					i := int(op) % len(active)
					c.OnBranchResolved(active[i].seq)
					active = append(active[:i], active[i+1:]...)
				}
			case 2:
				if len(active) > 0 {
					cut := active[int(op)%len(active)].seq
					c.OnSquash(cut)
					keep := active[:0]
					for _, a := range active {
						if a.seq <= cut {
							keep = append(keep, a)
						}
					}
					active = keep
				}
			}
			want := RateFull
			for _, a := range active {
				want = maxRate(want, a.spec.Fetch)
			}
			if c.FetchRate() != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOracleStrings(t *testing.T) {
	for _, o := range []Oracle{OracleNone, OracleFetch, OracleDecode, OracleSelect} {
		if o.String() == "" {
			t.Errorf("oracle %d has empty name", o)
		}
	}
}

func TestPolicyConstructors(t *testing.T) {
	if !Baseline().ByClass[conf.VLC].IsNop() {
		t.Fatal("baseline has a VLC action")
	}
	pg := PipelineGating(2)
	if !pg.Gating || pg.GateThreshold != 2 {
		t.Fatal("pipeline gating constructor wrong")
	}
	s := Selective("x", Spec{Fetch: RateHalf}, Spec{Fetch: RateStall})
	if s.ByClass[conf.LC].Fetch != RateHalf || s.ByClass[conf.VLC].Fetch != RateStall {
		t.Fatal("selective constructor wrong")
	}
	if !s.ByClass[conf.HC].IsNop() || !s.ByClass[conf.VHC].IsNop() {
		t.Fatal("selective constructor throttles high confidence")
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Fetch: RateQuarter, Decode: RateStall, NoSelect: true}
	if s.String() == "" {
		t.Fatal("empty spec string")
	}
	if RateHalf.String() != "1/2" || RateStall.String() != "0" {
		t.Fatal("rate strings deviate from paper notation")
	}
}
