package faultinject

// ChaosProxy is an in-process TCP proxy that forwards connections to one
// backend and injects wire-level faults per accepted connection. Unlike the
// NetFaults RoundTripper, which fabricates failures above the client's
// socket layer, the proxy breaks real connections — the HTTP client sees
// genuine RSTs, genuine half-written responses, genuine silence — so the
// whole stack (connection pool, body reader, deadline plumbing) is
// exercised, not a mock of it.
//
// Fault selection reuses the NetFault vocabulary: faults are tried in
// order against an accepted-connection counter (Match is ignored at this
// plane; one proxy fronts one backend), with the same After/Once
// semantics and the same mutex-guarded counters. SetFaults swaps the
// schedule mid-run, which is how a test blackholes a previously healthy
// worker halfway through a sweep.

import (
	"io"
	"net"
	"sync"
	"time"
)

// ChaosProxy forwards 127.0.0.1 TCP connections to Backend, injecting at
// most one fault per accepted connection.
type ChaosProxy struct {
	backend string
	ln      net.Listener

	mu     sync.Mutex
	faults []NetFault
	seen   []int
	fired  []bool

	closed  chan struct{}
	wg      sync.WaitGroup
	connsMu sync.Mutex
	conns   map[net.Conn]struct{}
}

// NewChaosProxy listens on 127.0.0.1:0 and forwards to backend
// ("host:port"). Callers must Close it.
func NewChaosProxy(backend string, faults ...NetFault) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{
		backend: backend,
		ln:      ln,
		faults:  faults,
		seen:    make([]int, len(faults)),
		fired:   make([]bool, len(faults)),
		closed:  make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr is the proxy's listen address ("127.0.0.1:port").
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// SetFaults replaces the fault schedule and resets its counters. Existing
// connections keep the fault they already drew; new connections draw from
// the new schedule.
func (p *ChaosProxy) SetFaults(faults ...NetFault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = faults
	p.seen = make([]int, len(faults))
	p.fired = make([]bool, len(faults))
}

// Close stops accepting, tears down every live connection, and waits for
// the forwarding goroutines to drain.
func (p *ChaosProxy) Close() error {
	select {
	case <-p.closed:
		return nil
	default:
	}
	close(p.closed)
	err := p.ln.Close()
	p.connsMu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.connsMu.Unlock()
	p.wg.Wait()
	return err
}

// draw picks the fault (if any) for the next accepted connection.
func (p *ChaosProxy) draw() *NetFault {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.faults {
		f := &p.faults[i]
		if p.fired[i] {
			continue
		}
		c := p.seen[i]
		p.seen[i]++
		if c < f.After {
			continue
		}
		if f.Once {
			p.fired[i] = true
		}
		cp := *f
		return &cp
	}
	return nil
}

func (p *ChaosProxy) serve() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.track(conn)
		p.wg.Add(1)
		go p.handle(conn)
	}
}

func (p *ChaosProxy) track(c net.Conn) {
	p.connsMu.Lock()
	p.conns[c] = struct{}{}
	p.connsMu.Unlock()
}

func (p *ChaosProxy) untrack(c net.Conn) {
	p.connsMu.Lock()
	delete(p.conns, c)
	p.connsMu.Unlock()
}

// handle forwards one client connection, applying at most one drawn fault.
func (p *ChaosProxy) handle(client net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client)
	defer client.Close()

	f := p.draw()
	if f != nil {
		switch f.Kind {
		case NetConnReset:
			// SO_LINGER 0 turns Close into RST instead of FIN: the client
			// observes ECONNRESET, not a clean EOF.
			if tc, ok := client.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			return
		case NetBlackhole:
			// Swallow the request and never answer; hold the connection
			// open until the proxy closes or the client gives up.
			go io.Copy(io.Discard, client)
			<-p.closed
			return
		case NetDelay:
			t := time.NewTimer(f.Delay)
			select {
			case <-p.closed:
				t.Stop()
				return
			case <-t.C:
			}
			f = nil // after the delay, forward cleanly
		}
	}

	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	p.track(backend)
	defer p.untrack(backend)
	defer backend.Close()

	// Upstream: client -> backend, always unmodified.
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(backend, client)
		// Half-close so the backend sees EOF on its read side while its
		// response can still flow back.
		if tc, ok := backend.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()

	// Downstream: backend -> client, where response faults apply.
	switch {
	case f != nil && f.Kind == NetTruncate:
		io.CopyN(client, backend, int64(f.TruncAt))
		if tc, ok := client.(*net.TCPConn); ok {
			tc.SetLinger(0) // cut, don't finish
		}
		// Close both sides now: the client must observe the cut immediately
		// (a stalled read is the blackhole fault, not this one), and the
		// upstream copy must unblock so handle can return.
		client.Close()
		backend.Close()
	case f != nil && f.Kind == NetTrickle:
		p.trickle(client, backend, f)
	default:
		io.Copy(client, backend)
	}
	<-done
}

// trickle forwards the response rate bytes per interval — slow-loris.
func (p *ChaosProxy) trickle(client, backend net.Conn, f *NetFault) {
	rate := f.Rate
	if rate <= 0 {
		rate = 1
	}
	buf := make([]byte, rate)
	t := time.NewTicker(maxDuration(f.Delay, time.Millisecond))
	defer t.Stop()
	for {
		n, err := backend.Read(buf)
		if n > 0 {
			if _, werr := client.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
		select {
		case <-p.closed:
			return
		case <-t.C:
		}
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
