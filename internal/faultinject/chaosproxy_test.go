package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"syscall"
	"testing"
	"time"
)

// proxyFixture stands a real HTTP backend behind a ChaosProxy. Keep-alives
// are disabled on the client so "connection" and "request" coincide, making
// the proxy's accepted-connection counter line up with request order.
func proxyFixture(t *testing.T, body string, faults ...NetFault) (*ChaosProxy, *http.Client) {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(backend.Close)
	u, _ := url.Parse(backend.URL)
	p, err := NewChaosProxy(u.Host, faults...)
	if err != nil {
		t.Fatalf("NewChaosProxy: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	return p, client
}

func TestChaosProxyForwardsClean(t *testing.T) {
	p, client := proxyFixture(t, "hello through the proxy")
	for i := 0; i < 3; i++ {
		resp, err := client.Get("http://" + p.Addr() + "/")
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(got) != "hello through the proxy" {
			t.Fatalf("get %d: body %q, err %v", i, got, err)
		}
	}
}

// TestChaosProxyConnReset: the faulted connection dies with a genuine RST
// (ECONNRESET or an immediate EOF, depending on how far the client got);
// the next connection is healthy again.
func TestChaosProxyConnReset(t *testing.T) {
	p, client := proxyFixture(t, "ok", NetFault{Kind: NetConnReset, Once: true})
	_, err := client.Get("http://" + p.Addr() + "/")
	if err == nil {
		t.Fatal("reset connection produced a clean response")
	}
	if !errors.Is(err, syscall.ECONNRESET) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("reset surfaced as %v, want RST/EOF class", err)
	}
	resp, err := client.Get("http://" + p.Addr() + "/")
	if err != nil {
		t.Fatalf("post-fault connection: %v", err)
	}
	resp.Body.Close()
}

// TestChaosProxyTruncate: the response is cut mid-body at the wire level, so
// the client's body read fails instead of returning short data silently.
func TestChaosProxyTruncate(t *testing.T) {
	body := strings.Repeat("x", 4096)
	// Cut inside the response body: past the status line + headers (~120
	// bytes here) but far before the 4096-byte payload ends.
	p, client := proxyFixture(t, body, NetFault{Kind: NetTruncate, TruncAt: 200, Once: true})
	resp, err := client.Get("http://" + p.Addr() + "/")
	if err == nil {
		got, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(got) == len(body) {
			t.Fatal("truncated response arrived whole")
		}
	}
	// Healthy again on the next connection.
	resp, err = client.Get("http://" + p.Addr() + "/")
	if err != nil {
		t.Fatalf("post-fault connection: %v", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(got) != len(body) {
		t.Fatalf("post-fault body: %d bytes, err %v", len(got), err)
	}
}

// TestChaosProxyBlackhole: the connection accepts and then never answers;
// only the client's own deadline gets it back.
func TestChaosProxyBlackhole(t *testing.T) {
	p, client := proxyFixture(t, "ok", NetFault{Kind: NetBlackhole, Once: true})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+p.Addr()+"/", nil)
	if _, err := client.Do(req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackholed request: err = %v, want DeadlineExceeded", err)
	}
	resp, err := client.Get("http://" + p.Addr() + "/")
	if err != nil {
		t.Fatalf("post-fault connection: %v", err)
	}
	resp.Body.Close()
}

// TestChaosProxyDelayThenClean: a delayed connection still completes.
func TestChaosProxyDelayThenClean(t *testing.T) {
	p, client := proxyFixture(t, "slow but whole", NetFault{Kind: NetDelay, Delay: 10 * time.Millisecond, Once: true})
	resp, err := client.Get("http://" + p.Addr() + "/")
	if err != nil {
		t.Fatalf("delayed request: %v", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(got) != "slow but whole" {
		t.Fatalf("delayed body: %q, %v", got, err)
	}
}

// TestChaosProxyTrickle: the slow-loris shape — bytes arrive, slowly, and
// the response eventually completes. 64 bytes per 1ms tick drains a small
// response quickly while still exercising the chunked path.
func TestChaosProxyTrickle(t *testing.T) {
	body := strings.Repeat("y", 512)
	p, client := proxyFixture(t, body, NetFault{Kind: NetTrickle, Delay: time.Millisecond, Rate: 64, Once: true})
	resp, err := client.Get("http://" + p.Addr() + "/")
	if err != nil {
		t.Fatalf("trickled request: %v", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(got) != len(body) {
		t.Fatalf("trickled body: %d bytes, err %v", len(got), err)
	}
}

// TestChaosProxySetFaults: swapping the schedule mid-run affects new
// connections — how a test blackholes a previously healthy worker.
func TestChaosProxySetFaults(t *testing.T) {
	p, client := proxyFixture(t, "ok")
	resp, err := client.Get("http://" + p.Addr() + "/")
	if err != nil {
		t.Fatalf("healthy phase: %v", err)
	}
	resp.Body.Close()

	p.SetFaults(NetFault{Kind: NetBlackhole})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+p.Addr()+"/", nil)
	if _, err := client.Do(req); err == nil {
		t.Fatal("blackholed phase answered")
	}

	p.SetFaults()
	resp, err = client.Get("http://" + p.Addr() + "/")
	if err != nil {
		t.Fatalf("recovered phase: %v", err)
	}
	resp.Body.Close()
}
