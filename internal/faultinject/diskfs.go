package faultinject

// Disk-fault injection: a store.FS middlebox that subjects the result
// store to the disk's real failure modes — torn writes cut at a chosen
// byte, read errors, a full disk, slow I/O — with the same determinism
// discipline as the pipeline fault plans: a fault fires on the Nth matching
// operation, optionally once, so every corruption-recovery test reproduces
// bit for bit from its seed.

import (
	"fmt"
	"strings"
	"sync"
	"syscall"
	"time"

	"selthrottle/internal/store"
)

// DiskOp classifies the FS operation a disk fault targets.
type DiskOp uint8

// Disk operations.
const (
	OpRead DiskOp = iota + 1
	OpWrite
	OpCreate // exclusive creates (lease claims)
	OpRename
	OpSyncDir
)

// String names the operation for fault messages.
func (o DiskOp) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCreate:
		return "create"
	case OpRename:
		return "rename"
	case OpSyncDir:
		return "syncdir"
	}
	return "unknown"
}

// DiskFaultKind is the shape of one injected disk fault.
type DiskFaultKind uint8

// Disk fault kinds.
const (
	// DiskTornWrite truncates a WriteFile at byte TornAt — the first
	// TornAt bytes reach the inner FS, the rest are lost — and reports an
	// error, modeling a write interrupted by a crash or I/O failure. With
	// the store's temp-file protocol the torn bytes land in an unpublished
	// temp file; tests that want a *published* torn entry tear the Rename's
	// source by pointing the fault at OpWrite and skipping the error
	// (SilentTorn), which leaves a valid-looking but short temp file that
	// the rename then publishes.
	DiskTornWrite DiskFaultKind = iota + 1
	// DiskReadError fails a ReadFile outright.
	DiskReadError
	// DiskENOSPC fails a WriteFile (or Rename/SyncDir) with ENOSPC,
	// modeling a full disk.
	DiskENOSPC
	// DiskSlow sleeps Delay before performing the operation, modeling a
	// degraded device; the operation itself succeeds.
	DiskSlow
)

// String names the kind for fault messages.
func (k DiskFaultKind) String() string {
	switch k {
	case DiskTornWrite:
		return "torn-write"
	case DiskReadError:
		return "read-error"
	case DiskENOSPC:
		return "enospc"
	case DiskSlow:
		return "slow"
	}
	return "unknown"
}

// DiskFault is one injected disk failure: Kind fired on the After'th
// subsequent Op whose path contains Match.
type DiskFault struct {
	Kind  DiskFaultKind
	Op    DiskOp // operation the fault applies to
	Match string // path substring filter; "" matches every path

	// After is the number of matching operations allowed through before
	// the fault arms: 0 fires on the first match, 1 on the second, and so
	// on. Deterministic victim selection for randomized suites comes from
	// seeding this with xrand.
	After int

	// TornAt is a DiskTornWrite's cut point in bytes.
	TornAt int

	// SilentTorn makes a DiskTornWrite report success after writing the
	// truncated prefix — the crash-consistency shape where the process
	// dies before it can observe the failure. The store will go on to
	// publish the torn bytes, which is exactly what the recovery scan and
	// CRC must catch.
	SilentTorn bool

	// Delay is a DiskSlow fault's added latency.
	Delay time.Duration

	// Once disarms the fault after its first firing; otherwise it fires on
	// every matching operation past After.
	Once bool
}

// InjectedDisk is the error payload of an injected disk fault (torn write,
// read error; ENOSPC faults return syscall.ENOSPC wrapped in it so
// errors.Is(err, syscall.ENOSPC) holds).
type InjectedDisk struct {
	Kind DiskFaultKind
	Op   DiskOp
	Path string
	Err  error // underlying errno for ENOSPC, nil otherwise
}

// Error describes the injected failure.
func (e *InjectedDisk) Error() string {
	return fmt.Sprintf("faultinject: injected %s on %s %s", e.Kind, e.Op, e.Path)
}

// Unwrap exposes the underlying errno (ENOSPC) to errors.Is.
func (e *InjectedDisk) Unwrap() error { return e.Err }

// DiskFS wraps an inner store.FS with a deterministic disk-fault schedule.
// It is safe for concurrent use (the store may Put from many grid workers);
// the per-fault match counters are mutex-guarded, so "the Nth matching op"
// is well defined even under concurrency — tests that depend on exact
// victim identity serialize their I/O.
type DiskFS struct {
	inner store.FS

	mu     sync.Mutex
	faults []DiskFault
	seen   []int  // matching-op count per fault
	fired  []bool // Once latches
}

// NewDiskFS wraps inner (nil selects the real filesystem) with the given
// fault schedule.
func NewDiskFS(inner store.FS, faults ...DiskFault) *DiskFS {
	if inner == nil {
		inner = store.OSFS{}
	}
	return &DiskFS{
		inner:  inner,
		faults: faults,
		seen:   make([]int, len(faults)),
		fired:  make([]bool, len(faults)),
	}
}

// Reset re-arms every fault and zeroes the match counters.
func (d *DiskFS) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	clear(d.seen)
	clear(d.fired)
}

// hit finds the first armed fault matching (op, path), advancing match
// counters and latching Once faults. It returns nil when no fault fires.
func (d *DiskFS) hit(op DiskOp, path string) *DiskFault {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.faults {
		f := &d.faults[i]
		if f.Op != op || d.fired[i] || !strings.Contains(path, f.Match) {
			continue
		}
		n := d.seen[i]
		d.seen[i]++
		if n < f.After {
			continue
		}
		if f.Once {
			d.fired[i] = true
		}
		return f
	}
	return nil
}

// MkdirAll implements store.FS (never faulted: directory creation is part
// of Open's must-succeed surface).
func (d *DiskFS) MkdirAll(path string) error { return d.inner.MkdirAll(path) }

// ReadDir implements store.FS (never faulted; per-entry faults come from
// ReadFile).
func (d *DiskFS) ReadDir(path string) ([]string, error) { return d.inner.ReadDir(path) }

// ReadFile implements store.FS.
func (d *DiskFS) ReadFile(path string) ([]byte, error) {
	if f := d.hit(OpRead, path); f != nil {
		switch f.Kind {
		case DiskReadError:
			return nil, &InjectedDisk{Kind: f.Kind, Op: OpRead, Path: path}
		case DiskSlow:
			time.Sleep(f.Delay)
		}
	}
	return d.inner.ReadFile(path)
}

// WriteFile implements store.FS.
func (d *DiskFS) WriteFile(path string, data []byte) error {
	if f := d.hit(OpWrite, path); f != nil {
		switch f.Kind {
		case DiskTornWrite:
			cut := f.TornAt
			if cut > len(data) {
				cut = len(data)
			}
			// The prefix reaches the device; the tail is lost.
			werr := d.inner.WriteFile(path, data[:cut])
			if f.SilentTorn {
				return werr
			}
			return &InjectedDisk{Kind: f.Kind, Op: OpWrite, Path: path}
		case DiskENOSPC:
			return &InjectedDisk{Kind: f.Kind, Op: OpWrite, Path: path, Err: syscall.ENOSPC}
		case DiskSlow:
			time.Sleep(f.Delay)
		}
	}
	return d.inner.WriteFile(path, data)
}

// CreateExclusive implements store.FS. ENOSPC models a full disk at lease
// claim; a torn create lands the truncated prefix exclusively (the claim
// "wins" but its content is damaged — exactly the shape a lease reader must
// treat as invalid rather than crash on).
func (d *DiskFS) CreateExclusive(path string, data []byte) error {
	if f := d.hit(OpCreate, path); f != nil {
		switch f.Kind {
		case DiskENOSPC:
			return &InjectedDisk{Kind: f.Kind, Op: OpCreate, Path: path, Err: syscall.ENOSPC}
		case DiskTornWrite:
			cut := f.TornAt
			if cut > len(data) {
				cut = len(data)
			}
			werr := d.inner.CreateExclusive(path, data[:cut])
			if f.SilentTorn {
				return werr
			}
			return &InjectedDisk{Kind: f.Kind, Op: OpCreate, Path: path}
		case DiskSlow:
			time.Sleep(f.Delay)
		}
	}
	return d.inner.CreateExclusive(path, data)
}

// Rename implements store.FS.
func (d *DiskFS) Rename(oldpath, newpath string) error {
	if f := d.hit(OpRename, newpath); f != nil {
		switch f.Kind {
		case DiskENOSPC:
			return &InjectedDisk{Kind: f.Kind, Op: OpRename, Path: newpath, Err: syscall.ENOSPC}
		case DiskSlow:
			time.Sleep(f.Delay)
		}
	}
	return d.inner.Rename(oldpath, newpath)
}

// Remove implements store.FS (never faulted: removal is the store's
// cleanup path, and a failed cleanup is already tolerated).
func (d *DiskFS) Remove(path string) error { return d.inner.Remove(path) }

// SyncDir implements store.FS.
func (d *DiskFS) SyncDir(path string) error {
	if f := d.hit(OpSyncDir, path); f != nil {
		switch f.Kind {
		case DiskENOSPC:
			return &InjectedDisk{Kind: f.Kind, Op: OpSyncDir, Path: path, Err: syscall.ENOSPC}
		case DiskSlow:
			time.Sleep(f.Delay)
		}
	}
	return d.inner.SyncDir(path)
}
