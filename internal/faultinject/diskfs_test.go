package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"selthrottle/internal/store"
)

func entryOf(ipc float64) store.Entry {
	var e store.Entry
	e.Stats.Cycles = 1000
	e.Stats.Committed = 800
	e.IPC = ipc
	return e
}

func keyOf(b byte) store.Key {
	var k store.Key
	k[0] = b
	k[31] = b ^ 0x5a
	return k
}

// TestTornWritePutFailsClean: a torn WriteFile fails the Put, publishes
// nothing, and leaves a store that still opens clean — the interrupted
// write's temp remnant is swept by the next Open.
func TestTornWritePutFailsClean(t *testing.T) {
	dir := t.TempDir()
	dfs := NewDiskFS(nil, DiskFault{Kind: DiskTornWrite, Op: OpWrite, Match: store.TmpPrefix, TornAt: 7, Once: true})
	st, err := store.Open(dir, dfs)
	if err != nil {
		t.Fatal(err)
	}
	e := entryOf(1.5)
	var injected *InjectedDisk
	if err := st.Put(keyOf(1), &e); !errors.As(err, &injected) {
		t.Fatalf("torn put: err = %v, want InjectedDisk", err)
	}
	if _, ok, _ := st.Get(keyOf(1)); ok {
		t.Fatal("torn put published an entry")
	}
	if st.Stats().WriteErrors != 1 {
		t.Fatalf("write errors = %d, want 1", st.Stats().WriteErrors)
	}
	// Healthy after the fault: the next Put succeeds and a reopen sees only it.
	if err := st.Put(keyOf(1), &e); err != nil {
		t.Fatalf("put after torn write: %v", err)
	}
	st2, err := store.Open(dir, nil)
	if err != nil || st2.Len() != 1 || st2.Stats().QuarantinedAtOpen != 0 {
		t.Fatalf("reopen after torn write: err=%v len=%d quarantined=%d", err, st2.Len(), st2.Stats().QuarantinedAtOpen)
	}
}

// TestSilentTornWriteCaughtByCRC is the crash-consistency shape: the process
// "dies" after a partial write the store never sees fail (SilentTorn), so a
// truncated entry gets published. The CRC framing must catch it — at Get
// time in this process, and at the recovery scan on the next open.
func TestSilentTornWriteCaughtByCRC(t *testing.T) {
	for _, tornAt := range []int{0, 1, 16, 100} {
		dir := t.TempDir()
		dfs := NewDiskFS(nil, DiskFault{Kind: DiskTornWrite, Op: OpWrite, TornAt: tornAt, SilentTorn: true, Once: true})
		st, err := store.Open(dir, dfs)
		if err != nil {
			t.Fatal(err)
		}
		e := entryOf(2.0)
		if err := st.Put(keyOf(2), &e); err != nil {
			t.Fatalf("tornAt %d: silent torn put reported failure: %v", tornAt, err)
		}
		if _, ok, err := st.Get(keyOf(2)); ok || err != nil {
			t.Fatalf("tornAt %d: torn entry served (ok=%v err=%v)", tornAt, ok, err)
		}
		if st.Stats().Quarantined != 1 {
			t.Fatalf("tornAt %d: quarantined = %d, want 1", tornAt, st.Stats().Quarantined)
		}
		st2, err := store.Open(dir, nil)
		if err != nil || st2.Len() != 0 {
			t.Fatalf("tornAt %d: reopen err=%v len=%d, want clean empty", tornAt, err, st2.Len())
		}
	}
}

// TestENOSPCSurfacesAsENOSPC: a full disk fails the Put with an error
// errors.Is-identifiable as syscall.ENOSPC, and the store stays usable.
func TestENOSPCSurfacesAsENOSPC(t *testing.T) {
	dir := t.TempDir()
	dfs := NewDiskFS(nil, DiskFault{Kind: DiskENOSPC, Op: OpWrite, Once: true})
	st, err := store.Open(dir, dfs)
	if err != nil {
		t.Fatal(err)
	}
	e := entryOf(3.0)
	if err := st.Put(keyOf(3), &e); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("full-disk put: err = %v, want ENOSPC", err)
	}
	if err := st.Put(keyOf(3), &e); err != nil {
		t.Fatalf("put after space freed: %v", err)
	}
	if got, ok, _ := st.Get(keyOf(3)); !ok || got != e {
		t.Fatal("entry lost after ENOSPC recovery")
	}
}

// TestReadErrorSurfacesToCaller: an injected read error on an indexed entry
// is returned (the cache degrades to compute-through); the entry itself is
// not quarantined — the bytes may be fine, only this read failed.
func TestReadErrorSurfacesToCaller(t *testing.T) {
	dir := t.TempDir()
	dfs := NewDiskFS(nil, DiskFault{Kind: DiskReadError, Op: OpRead, Match: store.EntrySuffix, Once: true})
	st, err := store.Open(dir, dfs)
	if err != nil {
		t.Fatal(err)
	}
	e := entryOf(4.0)
	if err := st.Put(keyOf(4), &e); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(keyOf(4)); ok || err == nil {
		t.Fatalf("faulted read: ok=%v err=%v, want error", ok, err)
	}
	if st.Stats().ReadErrors != 1 {
		t.Fatalf("read errors = %d, want 1", st.Stats().ReadErrors)
	}
	if got, ok, err := st.Get(keyOf(4)); !ok || err != nil || got != e {
		t.Fatal("entry not served once the read error cleared")
	}
}

// TestSyncDirFailureDegrades: a failed directory sync after a landed rename
// counts as a write error and reports it, but the entry (fully written and
// fsync'd) still serves in this process.
func TestSyncDirFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	dfs := NewDiskFS(nil, DiskFault{Kind: DiskENOSPC, Op: OpSyncDir, Match: filepath.Base(dir), Once: true})
	st, err := store.Open(dir, dfs)
	if err != nil {
		t.Fatal(err)
	}
	e := entryOf(5.0)
	if err := st.Put(keyOf(5), &e); err == nil {
		t.Fatal("failed directory sync reported success")
	}
	if got, ok, _ := st.Get(keyOf(5)); !ok || got != e {
		t.Fatal("entry visible after rename must serve despite sync failure")
	}
}

// TestAfterOnceAndReset: the After'th matching op fires, Once latches, and
// Reset re-arms — the determinism contract randomized suites rely on.
func TestAfterOnceAndReset(t *testing.T) {
	dir := t.TempDir()
	dfs := NewDiskFS(nil, DiskFault{Kind: DiskReadError, Op: OpRead, After: 1, Once: true})
	st, err := store.Open(dir, dfs)
	if err != nil {
		t.Fatal(err)
	}
	e := entryOf(6.0)
	if err := st.Put(keyOf(6), &e); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(keyOf(6)); !ok || err != nil {
		t.Fatal("first read should pass (After=1)")
	}
	if _, _, err := st.Get(keyOf(6)); err == nil {
		t.Fatal("second read should fault")
	}
	if _, ok, err := st.Get(keyOf(6)); !ok || err != nil {
		t.Fatal("third read should pass (Once latched)")
	}
	dfs.Reset()
	if _, ok, err := st.Get(keyOf(6)); !ok || err != nil {
		t.Fatal("after Reset the first matching read should pass again")
	}
	if _, _, err := st.Get(keyOf(6)); err == nil {
		t.Fatal("after Reset the second matching read should fault again")
	}
}

// TestSlowIOSucceeds: a slow fault only delays; data still flows.
func TestSlowIOSucceeds(t *testing.T) {
	dir := t.TempDir()
	dfs := NewDiskFS(nil, DiskFault{Kind: DiskSlow, Op: OpWrite, Delay: time.Millisecond})
	st, err := store.Open(dir, dfs)
	if err != nil {
		t.Fatal(err)
	}
	e := entryOf(7.0)
	start := time.Now()
	if err := st.Put(keyOf(7), &e); err != nil {
		t.Fatalf("slow put failed: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("slow fault did not delay")
	}
	if got, ok, _ := st.Get(keyOf(7)); !ok || got != e {
		t.Fatal("slow write lost data")
	}
}

// TestMatchFilters: a fault scoped by path substring leaves other paths
// untouched.
func TestMatchFilters(t *testing.T) {
	dir := t.TempDir()
	k1, k2 := keyOf(8), keyOf(9)
	dfs := NewDiskFS(nil, DiskFault{Kind: DiskReadError, Op: OpRead, Match: k1.String()[:8]})
	st, err := store.Open(dir, dfs)
	if err != nil {
		t.Fatal(err)
	}
	e := entryOf(8.0)
	if err := st.Put(k1, &e); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(k2, &e); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(k1); err == nil {
		t.Fatal("matched path did not fault")
	}
	if _, ok, err := st.Get(k2); !ok || err != nil {
		t.Fatal("unmatched path faulted")
	}
}

// TestTornBytesReachDevice pins DiskTornWrite's contract: exactly the first
// TornAt bytes land.
func TestTornBytesReachDevice(t *testing.T) {
	dir := t.TempDir()
	dfs := NewDiskFS(nil, DiskFault{Kind: DiskTornWrite, Op: OpWrite, TornAt: 3, SilentTorn: true})
	path := filepath.Join(dir, "f")
	if err := dfs.WriteFile(path, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hel" {
		t.Fatalf("device holds %q, want %q", data, "hel")
	}
	if !strings.Contains((&InjectedDisk{Kind: DiskTornWrite, Op: OpWrite, Path: path}).Error(), "torn-write") {
		t.Fatal("InjectedDisk message missing kind")
	}
}
