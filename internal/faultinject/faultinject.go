// Package faultinject is the deterministic fault-injection harness behind
// pipe.Config's test hook: seedable plans that force a pipeline to deadlock
// at a chosen cycle, panic in a chosen stage, or run artificially slowly —
// the three failure shapes the run supervisor (internal/sim) must isolate,
// retry, time out, and degrade around. The stress suite uses it to prove
// those properties against real failures instead of mocks.
//
// Determinism is the point: a Plan's behaviour is a pure function of its
// Fault list and the pipeline's cycle counter, so an injected failure
// reproduces bit for bit, and the healthy points of a partially-faulted grid
// are provably identical to a clean run. Scatter derives a random-looking
// but fully seeded plan assignment for grid-level stress tests.
//
// A *Plan is a valid pipe.FaultHook (pointer type, so pipe.Config stays
// comparable with a hook installed) but records per-plan state (fired
// counters for one-shot faults); give each concurrently-running pipeline its
// own Plan.
package faultinject

import (
	"fmt"
	"time"

	"selthrottle/internal/pipe"
	"selthrottle/internal/xrand"
)

// Kind is the shape of one injected fault.
type Kind uint8

// Fault kinds.
const (
	// KindPanic panics inside the chosen stage with an *Injected payload
	// (the supervisor sees a pipe.RunError with Kind ErrPanic and the
	// Injected as its cause).
	KindPanic Kind = iota + 1
	// KindDeadlock wedges fetch from the chosen cycle on, driving the
	// machine into RunE's no-commit deadlock detector. The wedge is
	// re-applied every cycle (a misprediction flush would otherwise clear
	// the fetch gate), so the machine starves deterministically.
	KindDeadlock
	// KindSlow sleeps Delay in the chosen stage every cycle of [Cycle,
	// Cycle+Span), turning a microsecond-scale point into one slow enough
	// for deadline tests to cancel mid-run.
	KindSlow
)

// String names the kind for fault messages.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDeadlock:
		return "deadlock"
	case KindSlow:
		return "slow"
	}
	return "unknown"
}

// Fault is one injected failure: Kind fired in Stage once the pipeline
// reaches Cycle.
type Fault struct {
	Kind  Kind
	Stage pipe.FaultStage // stage the fault fires in (KindPanic, KindSlow)
	Cycle int64           // first cycle at or after which the fault is live

	// Span bounds a KindSlow fault's duration in cycles (0 = forever).
	Span int64

	// Delay is the per-cycle sleep of a KindSlow fault.
	Delay time.Duration

	// Once makes a KindPanic fault transient: it fires on the first
	// qualifying stage visit only, and the resulting Injected error reports
	// Retryable() == true — a supervisor retry of the same point succeeds.
	// The pipeline's cycle counter restarts on Reset, so the retried run
	// revisits Cycle; the fired latch, not the clock, is what makes the
	// fault single-shot.
	Once bool
}

// Injected is the panic payload of a KindPanic fault. It travels up as the
// Cause of the ErrPanic pipe.RunError the supervised run returns, and its
// Retryable method is what classifies the failure for the retry policy:
// transient (Once) faults are worth re-running, persistent ones are not.
type Injected struct {
	Stage     pipe.FaultStage
	Cycle     int64
	Transient bool
}

// Error describes the injected failure.
func (e *Injected) Error() string {
	kind := "persistent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("faultinject: %s injected panic in %s at cycle %d", kind, e.Stage, e.Cycle)
}

// Retryable classifies the failure for supervisor retry policy (see
// pipe.RunError.Retryable).
func (e *Injected) Retryable() bool { return e.Transient }

// Plan is a deterministic fault schedule implementing pipe.FaultHook.
// Install it via pipe.Config.Fault; the pipeline invokes OnStage at the top
// of every cycle and every stage. Plans carry per-fault fired latches, so
// one Plan supervises one pipeline at a time (give each grid point its own).
type Plan struct {
	faults []Fault
	fired  []bool
}

// NewPlan builds a plan from the given faults.
func NewPlan(faults ...Fault) *Plan {
	return &Plan{faults: faults, fired: make([]bool, len(faults))}
}

// Reset re-arms every one-shot fault (for reusing a plan across sequential
// runs; concurrent runs need separate plans).
func (p *Plan) Reset() {
	clear(p.fired)
}

// Faults returns the plan's schedule (for failure reports in tests).
func (p *Plan) Faults() []Fault { return p.faults }

// OnStage implements pipe.FaultHook: it fires every fault whose stage and
// cycle window match, in plan order.
func (p *Plan) OnStage(stage pipe.FaultStage, cycle int64) pipe.FaultAction {
	action := pipe.FaultNone
	for i := range p.faults {
		f := &p.faults[i]
		if cycle < f.Cycle {
			continue
		}
		switch f.Kind {
		case KindDeadlock:
			// Re-issue the wedge on every cycle boundary so a flush cannot
			// un-wedge fetch.
			if stage == pipe.StageStep {
				action = pipe.FaultWedgeFetch
			}
		case KindPanic:
			if stage != f.Stage || p.fired[i] {
				continue
			}
			// Only transient faults latch: a persistent fault re-fires on
			// every qualifying visit (and so on every retried run), which is
			// what makes it terminal to a supervisor.
			if f.Once {
				p.fired[i] = true
			}
			panic(&Injected{Stage: stage, Cycle: cycle, Transient: f.Once})
		case KindSlow:
			if stage != f.Stage || (f.Span > 0 && cycle >= f.Cycle+f.Span) {
				continue
			}
			time.Sleep(f.Delay)
		}
	}
	return action
}

// Scatter deterministically assigns faults to k of n grid points. It returns
// a length-n slice in which exactly k entries (chosen by the seeded
// generator) carry a fresh single-fault Plan cycling through the deadlock
// and panic shapes, and the rest are nil. Grid stress tests use it to build
// the "K of N points fail" scenario reproducibly from one seed.
func Scatter(seed uint64, n, k int, cycle int64) []*Plan {
	if k > n {
		k = n
	}
	plans := make([]*Plan, n)
	rng := xrand.New(seed)
	// Seeded partial Fisher-Yates over the point indices picks the k victims.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + int(rng.Uint64()%uint64(n-i))
		idx[i], idx[j] = idx[j], idx[i]
	}
	shapes := []Fault{
		{Kind: KindDeadlock, Cycle: cycle},
		{Kind: KindPanic, Stage: pipe.StageIssue, Cycle: cycle},
		{Kind: KindPanic, Stage: pipe.StageCommit, Cycle: cycle},
		{Kind: KindPanic, Stage: pipe.StageFetch, Cycle: cycle},
	}
	for i := 0; i < k; i++ {
		plans[idx[i]] = NewPlan(shapes[i%len(shapes)])
	}
	return plans
}
