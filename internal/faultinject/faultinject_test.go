package faultinject

import (
	"testing"

	"selthrottle/internal/pipe"
)

func TestPlanDeadlockWedgesAtStepOnly(t *testing.T) {
	p := NewPlan(Fault{Kind: KindDeadlock, Cycle: 100})
	if got := p.OnStage(pipe.StageStep, 99); got != pipe.FaultNone {
		t.Fatalf("wedged before Cycle: %v", got)
	}
	if got := p.OnStage(pipe.StageStep, 100); got != pipe.FaultWedgeFetch {
		t.Fatalf("no wedge at Cycle: %v", got)
	}
	// Re-applied every subsequent cycle (a flush would otherwise clear it).
	if got := p.OnStage(pipe.StageStep, 5000); got != pipe.FaultWedgeFetch {
		t.Fatalf("wedge not re-applied: %v", got)
	}
	if got := p.OnStage(pipe.StageFetch, 5000); got != pipe.FaultNone {
		t.Fatalf("wedge leaked into a stage hook: %v", got)
	}
}

func TestPlanPanicFiresOnceAndClassifies(t *testing.T) {
	for _, once := range []bool{false, true} {
		p := NewPlan(Fault{Kind: KindPanic, Stage: pipe.StageIssue, Cycle: 50, Once: once})
		p.OnStage(pipe.StageIssue, 49)  // before the window: no fire
		p.OnStage(pipe.StageCommit, 60) // wrong stage: no fire
		fired := func() (inj *Injected) {
			defer func() {
				if r := recover(); r != nil {
					inj = r.(*Injected)
				}
			}()
			p.OnStage(pipe.StageIssue, 60)
			return nil
		}()
		if fired == nil {
			t.Fatalf("once=%v: fault did not fire", once)
		}
		if fired.Stage != pipe.StageIssue || fired.Cycle != 60 {
			t.Fatalf("once=%v: payload %+v", once, fired)
		}
		if fired.Retryable() != once {
			t.Fatalf("once=%v: Retryable() == %v", once, fired.Retryable())
		}
		// A transient (Once) fault latches until Reset re-arms it; a
		// persistent fault re-fires on every qualifying visit.
		refire := func(cycle int64) (ok bool) {
			defer func() { ok = recover() != nil }()
			p.OnStage(pipe.StageIssue, cycle)
			return false
		}
		if got := refire(70); got == once {
			t.Fatalf("once=%v: refire after first shot = %v", once, got)
		}
		p.Reset()
		if !refire(80) {
			t.Fatalf("once=%v: Reset did not re-arm the fault", once)
		}
	}
}

func TestScatterDeterministicAndCounted(t *testing.T) {
	const n, k = 32, 4
	a := Scatter(0xFA01, n, k, 1000)
	b := Scatter(0xFA01, n, k, 1000)
	if len(a) != n || len(b) != n {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	got := 0
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			t.Fatalf("same seed diverged at point %d", i)
		}
		if a[i] == nil {
			continue
		}
		got++
		fa, fb := a[i].Faults(), b[i].Faults()
		if len(fa) != 1 || len(fb) != 1 || fa[0] != fb[0] {
			t.Fatalf("same seed picked different faults at point %d: %+v vs %+v", i, fa, fb)
		}
	}
	if got != k {
		t.Fatalf("%d faulted points, want %d", got, k)
	}
	// A different seed picks a different victim set (overwhelmingly likely;
	// both assignments are fixed by their seeds, so this cannot flake).
	c := Scatter(0xFA02, n, k, 1000)
	same := true
	for i := range a {
		if (a[i] == nil) != (c[i] == nil) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds chose identical victim sets")
	}
}

func TestScatterClampsK(t *testing.T) {
	plans := Scatter(1, 3, 10, 500)
	for i, p := range plans {
		if p == nil {
			t.Fatalf("point %d unfaulted with k > n", i)
		}
	}
}
