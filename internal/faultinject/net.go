package faultinject

// Network-fault injection: the third fault plane, beside the disk plane
// (DiskFS over the store.FS seam) and the process plane (ProcFaults). Two
// injection points cover the two layers a networked fleet can fail at:
//
//   - NetFaults, an http.RoundTripper middlebox, injects failures into the
//     coordinator's client stack above the socket — connection resets,
//     response-body truncation, fixed delays, blackholes that hold a request
//     until its context expires. It shares the Match/After/Once vocabulary
//     of the other planes, so "the 3rd request to worker B is reset" is one
//     declarative rule, deterministic given the request order the test
//     drives.
//
//   - ChaosProxy (chaosproxy.go), an in-process TCP proxy, injects the same
//     failure shapes below HTTP — RST on the wire, truncation mid-response,
//     slow-loris trickle — so the real net/http client, with its connection
//     pooling and retry-visible errno surface, is what gets exercised.
//
// Determinism discipline matches the other planes: a fault fires on the
// After'th matching event, optionally Once; randomized suites derive their
// schedules from ScatterNet, a pure function of its seed, pinned by test.

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"

	"selthrottle/internal/xrand"
)

// NetFaultKind is the shape of one injected network fault.
type NetFaultKind uint8

// Network fault kinds.
const (
	// NetConnReset fails the request (or connection) as if the peer sent
	// RST: the error satisfies errors.Is(err, syscall.ECONNRESET).
	NetConnReset NetFaultKind = iota + 1
	// NetTruncate delivers only the first TruncAt bytes of the response
	// body, then fails the read with io.ErrUnexpectedEOF — a connection cut
	// mid-response.
	NetTruncate
	// NetDelay holds the request for Delay before forwarding it; the
	// request itself succeeds. Models congestion and slow peers; the
	// injected latency is what forces hedged requests.
	NetDelay
	// NetBlackhole never forwards and never answers: the request blocks
	// until its context expires (RoundTripper plane) or the connection is
	// torn down (proxy plane). Models a network partition — no RST, no FIN,
	// just silence; only the caller's deadline gets it back.
	NetBlackhole
	// NetTrickle (proxy plane only) forwards the response at Rate bytes per
	// Delay interval — the slow-loris shape that defeats naive "the
	// connection is alive" liveness and forces byte-progress deadlines.
	NetTrickle
)

// String names the kind for fault messages.
func (k NetFaultKind) String() string {
	switch k {
	case NetConnReset:
		return "conn-reset"
	case NetTruncate:
		return "truncate"
	case NetDelay:
		return "delay"
	case NetBlackhole:
		return "blackhole"
	case NetTrickle:
		return "trickle"
	}
	return "unknown"
}

// NetFault is one injected network failure: Kind fired on the After'th
// subsequent matching event (requests whose URL contains Match on the
// RoundTripper plane; accepted connections on the proxy plane, where Match
// is ignored).
type NetFault struct {
	Kind  NetFaultKind
	Match string // URL substring filter; "" matches every request

	// After is the number of matching events allowed through before the
	// fault arms: 0 fires on the first match, 1 on the second, and so on.
	After int

	// TruncAt is a NetTruncate's cut point in response-body bytes.
	TruncAt int

	// Delay is a NetDelay's added latency, a NetTrickle's per-chunk
	// interval.
	Delay time.Duration

	// Rate is a NetTrickle's bytes-per-interval (<= 0 selects 1).
	Rate int

	// Once disarms the fault after its first firing; otherwise it fires on
	// every matching event past After.
	Once bool
}

// InjectedNet is the error payload of an injected network fault. Resets
// unwrap to syscall.ECONNRESET and truncations to io.ErrUnexpectedEOF, so
// callers classify them exactly as they would the real failures.
type InjectedNet struct {
	Kind NetFaultKind
	URL  string
	Err  error
}

// Error describes the injected failure.
func (e *InjectedNet) Error() string {
	return fmt.Sprintf("faultinject: injected net %s on %s", e.Kind, e.URL)
}

// Unwrap exposes the modeled errno/EOF to errors.Is.
func (e *InjectedNet) Unwrap() error { return e.Err }

// Timeout marks blackholes as timeouts for net.Error-aware callers.
func (e *InjectedNet) Timeout() bool { return e.Kind == NetBlackhole }

// NetFaults wraps an inner http.RoundTripper with a deterministic
// network-fault schedule. Safe for concurrent use; the per-fault match
// counters are mutex-guarded, so "the Nth matching request" is well defined
// even under concurrency — tests that depend on exact victim identity
// serialize their requests.
type NetFaults struct {
	inner http.RoundTripper

	mu     sync.Mutex
	faults []NetFault
	seen   []int  // matching-request count per fault
	fired  []bool // Once latches
}

// NewNetFaults wraps inner (nil selects http.DefaultTransport) with the
// given fault schedule.
func NewNetFaults(inner http.RoundTripper, faults ...NetFault) *NetFaults {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &NetFaults{
		inner:  inner,
		faults: faults,
		seen:   make([]int, len(faults)),
		fired:  make([]bool, len(faults)),
	}
}

// Reset re-arms every fault and zeroes the match counters.
func (n *NetFaults) Reset() {
	n.mu.Lock()
	defer n.mu.Unlock()
	clear(n.seen)
	clear(n.fired)
}

// hit finds the first armed fault matching url, advancing match counters
// and latching Once faults. It returns nil when no fault fires.
func (n *NetFaults) hit(url string) *NetFault {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := range n.faults {
		f := &n.faults[i]
		if n.fired[i] || !strings.Contains(url, f.Match) {
			continue
		}
		c := n.seen[i]
		n.seen[i]++
		if c < f.After {
			continue
		}
		if f.Once {
			n.fired[i] = true
		}
		return f
	}
	return nil
}

// RoundTrip implements http.RoundTripper: consult the schedule, then either
// fail, delay, truncate, or forward the request unchanged.
func (n *NetFaults) RoundTrip(req *http.Request) (*http.Response, error) {
	url := req.URL.String()
	f := n.hit(url)
	if f == nil {
		return n.inner.RoundTrip(req)
	}
	switch f.Kind {
	case NetConnReset:
		return nil, &InjectedNet{Kind: f.Kind, URL: url, Err: syscall.ECONNRESET}
	case NetBlackhole:
		// Silence: nothing comes back until the caller's own deadline does.
		<-req.Context().Done()
		return nil, &InjectedNet{Kind: f.Kind, URL: url, Err: req.Context().Err()}
	case NetDelay, NetTrickle:
		t := time.NewTimer(f.Delay)
		select {
		case <-req.Context().Done():
			t.Stop()
			return nil, &InjectedNet{Kind: NetDelay, URL: url, Err: req.Context().Err()}
		case <-t.C:
		}
		return n.inner.RoundTrip(req)
	case NetTruncate:
		resp, err := n.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &truncatedBody{inner: resp.Body, remaining: f.TruncAt, url: url}
		resp.ContentLength = -1
		return resp, nil
	}
	return n.inner.RoundTrip(req)
}

// truncatedBody delivers a bounded prefix of the response, then fails the
// read the way a cut connection does.
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int
	url       string
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, &InjectedNet{Kind: NetTruncate, URL: b.url, Err: io.ErrUnexpectedEOF}
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if err == io.EOF {
		return n, err // genuine end before the cut: pass through
	}
	if b.remaining <= 0 && err == nil {
		err = &InjectedNet{Kind: NetTruncate, URL: b.url, Err: io.ErrUnexpectedEOF}
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

// ScatterNet derives a deterministic fault schedule from one seed: k faults
// drawn from kinds, assigned to distinct event indices in [0, n), each Once.
// Delays are drawn from the same stream in [minDelay, 2*minDelay). The
// schedule is a pure function of its arguments — the same seed reproduces
// the same faults at the same positions, which the determinism test pins.
func ScatterNet(seed uint64, n, k int, minDelay time.Duration, kinds ...NetFaultKind) []NetFault {
	if len(kinds) == 0 {
		kinds = []NetFaultKind{NetConnReset, NetTruncate, NetDelay}
	}
	if k > n {
		k = n
	}
	rng := xrand.New(xrand.Hash2(seed, 0x6e657466 /* "netf" */))
	// Reservoir-free victim pick: shuffle [0,n) prefix deterministically.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	faults := make([]NetFault, 0, k)
	for i := 0; i < k; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		f := NetFault{Kind: kind, After: idx[i], Once: true}
		switch kind {
		case NetTruncate:
			f.TruncAt = 1 + rng.Intn(256)
		case NetDelay, NetTrickle:
			d := uint64(minDelay)
			if d == 0 {
				d = uint64(time.Millisecond)
			}
			f.Delay = time.Duration(d + rng.Uint64()%d)
			f.Rate = 1
		}
		faults = append(faults, f)
	}
	return faults
}
