package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"
)

// stubRT is a canned inner transport: every request succeeds with body.
type stubRT struct {
	body  string
	calls int
}

func (s *stubRT) RoundTrip(*http.Request) (*http.Response, error) {
	s.calls++
	return &http.Response{
		StatusCode:    200,
		Body:          io.NopCloser(strings.NewReader(s.body)),
		ContentLength: int64(len(s.body)),
		Header:        make(http.Header),
	}, nil
}

func netReq(t *testing.T, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestNetFaultsMatchAfterOnce(t *testing.T) {
	inner := &stubRT{body: "ok"}
	nf := NewNetFaults(inner, NetFault{
		Kind: NetConnReset, Match: "/v1/compute", After: 1, Once: true,
	})

	// Non-matching URLs never trip the fault or advance its counter.
	for i := 0; i < 3; i++ {
		if _, err := nf.RoundTrip(netReq(t, "http://w0/healthz")); err != nil {
			t.Fatalf("healthz %d: %v", i, err)
		}
	}
	// First match passes (After: 1), second fires, third passes (Once).
	if _, err := nf.RoundTrip(netReq(t, "http://w0/v1/compute?index=0")); err != nil {
		t.Fatalf("first match: %v", err)
	}
	if _, err := nf.RoundTrip(netReq(t, "http://w0/v1/compute?index=1")); err == nil {
		t.Fatal("second match: fault did not fire")
	}
	if _, err := nf.RoundTrip(netReq(t, "http://w0/v1/compute?index=2")); err != nil {
		t.Fatalf("after Once firing: %v", err)
	}

	// Reset re-arms the schedule identically.
	nf.Reset()
	if _, err := nf.RoundTrip(netReq(t, "http://w0/v1/compute?index=0")); err != nil {
		t.Fatalf("after Reset, first match: %v", err)
	}
	if _, err := nf.RoundTrip(netReq(t, "http://w0/v1/compute?index=1")); err == nil {
		t.Fatal("after Reset, second match: fault did not fire")
	}
}

// TestNetFaultsConnReset: the injected error classifies exactly like a real
// RST — errors.Is(err, syscall.ECONNRESET) — and carries the fault identity.
func TestNetFaultsConnReset(t *testing.T) {
	nf := NewNetFaults(&stubRT{body: "ok"}, NetFault{Kind: NetConnReset})
	_, err := nf.RoundTrip(netReq(t, "http://w0/v1/compute"))
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("err = %v, want ECONNRESET", err)
	}
	var inj *InjectedNet
	if !errors.As(err, &inj) || inj.Kind != NetConnReset {
		t.Fatalf("err = %#v, want *InjectedNet{NetConnReset}", err)
	}
	if inj.Timeout() {
		t.Fatal("a reset must not classify as a timeout")
	}
}

// TestNetFaultsBlackholeHonorsContext: a blackholed request blocks in
// silence until the caller's own deadline expires, then surfaces a
// timeout-classified error.
func TestNetFaultsBlackholeHonorsContext(t *testing.T) {
	nf := NewNetFaults(&stubRT{body: "ok"}, NetFault{Kind: NetBlackhole})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req := netReq(t, "http://w0/v1/compute").WithContext(ctx)
	_, err := nf.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	var inj *InjectedNet
	if !errors.As(err, &inj) || !inj.Timeout() {
		t.Fatalf("blackhole must classify as a timeout; got %#v", err)
	}
}

// TestNetFaultsTruncate: the body delivers exactly TruncAt bytes, then the
// read fails like a cut connection (io.ErrUnexpectedEOF), never a clean EOF.
func TestNetFaultsTruncate(t *testing.T) {
	const payload = "0123456789abcdef"
	nf := NewNetFaults(&stubRT{body: payload}, NetFault{Kind: NetTruncate, TruncAt: 5})
	resp, err := nf.RoundTrip(netReq(t, "http://w0/v1/compute"))
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want ErrUnexpectedEOF", err)
	}
	if string(got) != payload[:5] {
		t.Fatalf("delivered %q, want %q", got, payload[:5])
	}
}

// TestNetFaultsTruncatePastEnd: a cut point beyond the body length changes
// nothing — the genuine EOF passes through and the payload is intact.
func TestNetFaultsTruncatePastEnd(t *testing.T) {
	const payload = "short"
	nf := NewNetFaults(&stubRT{body: payload}, NetFault{Kind: NetTruncate, TruncAt: 100})
	resp, err := nf.RoundTrip(netReq(t, "http://w0/v1/compute"))
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil || string(got) != payload {
		t.Fatalf("read = %q, %v; want full %q, nil", got, err, payload)
	}
}

// TestNetFaultsDelayForwards: a delayed request still succeeds; only its
// latency changes. The delay must also respect cancellation.
func TestNetFaultsDelayForwards(t *testing.T) {
	inner := &stubRT{body: "ok"}
	nf := NewNetFaults(inner, NetFault{Kind: NetDelay, Delay: 5 * time.Millisecond})
	if _, err := nf.RoundTrip(netReq(t, "http://w0/v1/compute")); err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1", inner.calls)
	}

	nf = NewNetFaults(inner, NetFault{Kind: NetDelay, Delay: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := nf.RoundTrip(netReq(t, "http://w0/v1/compute").WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled delay: err = %v, want Canceled", err)
	}
}

// scheduleString renders a fault schedule for golden comparison.
func scheduleString(faults []NetFault) string {
	var b strings.Builder
	for _, f := range faults {
		fmt.Fprintf(&b, "%s@%d t=%d d=%v r=%d once=%v\n", f.Kind, f.After, f.TruncAt, f.Delay, f.Rate, f.Once)
	}
	return b.String()
}

// TestScatterNetDeterministic pins the derivation: the schedule is a pure
// function of the seed — identical across calls, pinned byte-for-byte for
// one seed, different for a different seed.
func TestScatterNetDeterministic(t *testing.T) {
	a := ScatterNet(42, 20, 4, 2*time.Millisecond)
	b := ScatterNet(42, 20, 4, 2*time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", scheduleString(a), scheduleString(b))
	}
	c := ScatterNet(43, 20, 4, 2*time.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}

	// The golden schedule for seed 42. If this changes, every suite that
	// pins a ScatterNet seed re-rolls its faults — bump deliberately.
	const golden = "delay@10 t=0 d=2.359365ms r=1 once=true\n" +
		"truncate@14 t=186 d=0s r=0 once=true\n" +
		"truncate@18 t=111 d=0s r=0 once=true\n" +
		"delay@8 t=0 d=2.48679ms r=1 once=true\n"
	if got := scheduleString(a); got != golden {
		t.Fatalf("seed-42 schedule changed:\n%s\nwant:\n%s", got, golden)
	}
}

// TestScatterNetInvariants: structural guarantees hold for any seed — k
// distinct victims inside [0, n), kind-appropriate parameters, all Once.
func TestScatterNetInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		faults := ScatterNet(seed, 30, 8, time.Millisecond)
		if len(faults) != 8 {
			t.Fatalf("seed %d: %d faults, want 8", seed, len(faults))
		}
		seen := make(map[int]bool)
		for _, f := range faults {
			if !f.Once {
				t.Fatalf("seed %d: fault not Once: %+v", seed, f)
			}
			if f.After < 0 || f.After >= 30 || seen[f.After] {
				t.Fatalf("seed %d: bad/duplicate victim index %d", seed, f.After)
			}
			seen[f.After] = true
			switch f.Kind {
			case NetTruncate:
				if f.TruncAt < 1 || f.TruncAt > 256 {
					t.Fatalf("seed %d: TruncAt %d out of range", seed, f.TruncAt)
				}
			case NetDelay, NetTrickle:
				if f.Delay < time.Millisecond || f.Delay >= 2*time.Millisecond {
					t.Fatalf("seed %d: Delay %v out of [1ms, 2ms)", seed, f.Delay)
				}
			}
		}
	}
}
