package faultinject

// Process-level faults: deterministic ways for a worker PROCESS to die or
// degrade, complementing the point-level Plan (panics, deadlocks) and the
// disk-level DiskFS (torn writes, ENOSPC). These are what the multi-worker
// crash tests are made of — a worker that SIGKILLs itself after k computed
// points is an abrupt crash indistinguishable from an OOM kill, and a worker
// whose heartbeats freeze while it keeps computing is the classic
// half-dead process a lease TTL exists to catch.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// ProcFaults is a deterministic process-level fault specification, parsed
// from the comma-separated form workers accept on the command line.
type ProcFaults struct {
	// KillAfterPoints, when > 0, SIGKILLs the process after that many grid
	// points have been computed — an abrupt crash with no cleanup, no lease
	// release, no deferred handlers.
	KillAfterPoints int
	// FreezeBeats stops heartbeat renewal while the worker keeps computing:
	// the half-dead state an observer must classify as expired.
	FreezeBeats bool
	// FreezeAfterPoints, when > 0, wedges the process completely after that
	// many points — heartbeats frozen from the start AND computation
	// blocked forever — the classic hung worker only a lease TTL plus an
	// external kill can clear. Implies FreezeBeats.
	FreezeAfterPoints int
	// LeaseENOSPC injects ENOSPC into lease-file creation (OpCreate under
	// the leases directory), forcing the leaseless degradation path.
	LeaseENOSPC bool
}

// Zero reports whether no process fault is armed.
func (p ProcFaults) Zero() bool {
	return p.KillAfterPoints == 0 && !p.FreezeBeats && p.FreezeAfterPoints == 0 && !p.LeaseENOSPC
}

// String renders the spec in the form ParseProcFaults accepts.
func (p ProcFaults) String() string {
	var parts []string
	if p.KillAfterPoints > 0 {
		parts = append(parts, fmt.Sprintf("kill-after=%d", p.KillAfterPoints))
	}
	if p.FreezeBeats {
		parts = append(parts, "freeze-beats")
	}
	if p.FreezeAfterPoints > 0 {
		parts = append(parts, fmt.Sprintf("freeze-after=%d", p.FreezeAfterPoints))
	}
	if p.LeaseENOSPC {
		parts = append(parts, "lease-enospc")
	}
	return strings.Join(parts, ",")
}

// ParseProcFaults decodes a spec like "kill-after=3,freeze-beats" or
// "lease-enospc". The empty string is the zero (no-fault) spec.
func ParseProcFaults(spec string) (ProcFaults, error) {
	var p ProcFaults
	if spec == "" {
		return p, nil
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "freeze-beats":
			p.FreezeBeats = true
		case tok == "lease-enospc":
			p.LeaseENOSPC = true
		case strings.HasPrefix(tok, "kill-after="):
			n, err := strconv.Atoi(strings.TrimPrefix(tok, "kill-after="))
			if err != nil || n <= 0 {
				return p, fmt.Errorf("faultinject: bad kill-after count in %q", tok)
			}
			p.KillAfterPoints = n
		case strings.HasPrefix(tok, "freeze-after="):
			n, err := strconv.Atoi(strings.TrimPrefix(tok, "freeze-after="))
			if err != nil || n <= 0 {
				return p, fmt.Errorf("faultinject: bad freeze-after count in %q", tok)
			}
			p.FreezeAfterPoints = n
			p.FreezeBeats = true
		default:
			return p, fmt.Errorf("faultinject: unknown process fault %q", tok)
		}
	}
	return p, nil
}

// KillSelf terminates the process with SIGKILL: no deferred functions, no
// exit handlers, no flushing — the most faithful stand-in for a crash the
// process can arrange for itself. It does not return; the os.Exit fallback
// exists only for platforms where the signal cannot be delivered.
func KillSelf() {
	// invariant: SIGKILL cannot be caught or ignored, so delivery ends the
	// process before this function returns.
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	os.Exit(137)
}
