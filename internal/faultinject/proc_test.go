package faultinject

import "testing"

func TestParseProcFaults(t *testing.T) {
	cases := []struct {
		spec string
		want ProcFaults
	}{
		{"", ProcFaults{}},
		{"kill-after=3", ProcFaults{KillAfterPoints: 3}},
		{"freeze-beats", ProcFaults{FreezeBeats: true}},
		{"freeze-after=2", ProcFaults{FreezeAfterPoints: 2, FreezeBeats: true}},
		{"lease-enospc", ProcFaults{LeaseENOSPC: true}},
		{"kill-after=5,lease-enospc", ProcFaults{KillAfterPoints: 5, LeaseENOSPC: true}},
		{" kill-after=1 , freeze-beats ", ProcFaults{KillAfterPoints: 1, FreezeBeats: true}},
	}
	for _, c := range cases {
		got, err := ParseProcFaults(c.spec)
		if err != nil {
			t.Errorf("ParseProcFaults(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseProcFaults(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// String round-trips back to an equivalent spec.
		rt, err := ParseProcFaults(got.String())
		if err != nil || rt != got {
			t.Errorf("round-trip %q -> %q -> %+v (err %v)", c.spec, got.String(), rt, err)
		}
	}
	for _, bad := range []string{"kill-after=0", "kill-after=x", "freeze-after=-1", "nonsense", "kill-after"} {
		if _, err := ParseProcFaults(bad); err == nil {
			t.Errorf("ParseProcFaults(%q) accepted", bad)
		}
	}
	if !(ProcFaults{}).Zero() || (ProcFaults{FreezeBeats: true}).Zero() {
		t.Error("Zero misclassifies")
	}
}
