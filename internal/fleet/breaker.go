// Package fleet dispatches grid points to remote stserve workers over HTTP
// and makes the dispatch self-healing. The substrate is the same one the
// process-level sharding (internal/grid) stands on: points are pure
// functions of (Config, Profile), the shared store is content-addressed and
// last-rename-wins, and every process enumerates the identical grid — so
// the network may reorder, duplicate, or lose work freely without touching
// correctness, and this package only has to fight for liveness and tail
// latency. Its weapons are the standard distributed-systems set, each
// deterministic under test: per-request deadlines, bounded exponential
// backoff with seeded jitter, hedged requests for stragglers, per-worker
// circuit breakers, point-granularity leases with work stealing, and local
// in-process compute as the degradation floor — a fleet run must complete
// even with every worker unreachable.
package fleet

import (
	"sync"
	"time"

	"selthrottle/internal/grid"
)

// BreakerState is a circuit breaker's position.
type BreakerState uint8

// Breaker states.
const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota + 1
	// BreakerOpen: the worker is presumed down; no requests until the
	// open interval elapses.
	BreakerOpen
	// BreakerHalfOpen: the open interval elapsed and one probe is in
	// flight; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker defaults.
const (
	// DefaultBreakerThreshold is the consecutive-failure count that opens
	// a breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerOpenFor is how long an open breaker rejects before
	// allowing a probe.
	DefaultBreakerOpenFor = 500 * time.Millisecond
)

// Breaker is a per-worker circuit breaker: closed → (threshold consecutive
// failures) → open → (interval elapses) → half-open probe → closed on
// success, open again on failure. It exists to stop the coordinator from
// burning its retry budget and its deadline slack on a worker that is
// plainly down — the dispatch analogue of the paper's selective throttling:
// slow the one misbehaving unit, keep the rest at full speed.
//
// Time is the injected monotonic Clock (grid.Clock), never the wall clock,
// so tests warp breaker timing without sleeping and the determinism
// analyzer holds for this package.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int           // consecutive failures while closed
	threshold int           // failures that open the breaker
	openFor   time.Duration // rejection interval before a probe is allowed
	openedAt  time.Duration // clock reading at the last open
	now       grid.Clock

	opens  int // closed/half-open → open transitions
	closes int // half-open → closed transitions
}

// NewBreaker builds a closed breaker (threshold <= 0 and openFor <= 0
// select the defaults; nil clock selects the runtime monotonic clock).
func NewBreaker(threshold int, openFor time.Duration, clock grid.Clock) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if openFor <= 0 {
		openFor = DefaultBreakerOpenFor
	}
	if clock == nil {
		clock = grid.MonotonicClock()
	}
	return &Breaker{state: BreakerClosed, threshold: threshold, openFor: openFor, now: clock}
}

// State reports the breaker's current position (open flips to half-open
// lazily, at the Allow that first observes the interval elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow asks whether a request may be sent. ok=false rejects outright.
// ok=true, probe=false is normal closed-state traffic. ok=true, probe=true
// grants the half-open trial: exactly one caller receives it per open
// interval, and MUST report its outcome via Record(ok, true) — the breaker
// stays half-open (rejecting everyone else) until it does.
func (b *Breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now()-b.openedAt >= b.openFor {
			b.state = BreakerHalfOpen
			return true, true
		}
		return false, false
	case BreakerHalfOpen:
		return false, false // one probe at a time
	}
	return false, false
}

// Record reports a request outcome. Probe outcomes resolve the half-open
// trial: success closes, failure re-opens (restarting the interval).
// Normal outcomes count consecutive failures toward the threshold; any
// success resets the count.
func (b *Breaker) Record(success, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		if b.state != BreakerHalfOpen {
			return // stale probe result after a concurrent transition
		}
		if success {
			b.state = BreakerClosed
			b.failures = 0
			b.closes++
		} else {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
		return
	}
	if success {
		b.failures = 0
		return
	}
	if b.state != BreakerClosed {
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.opens++
	}
}

// Counters reports lifetime open and close transitions — the observability
// the chaos acceptance test pins its open→half-open→closed cycle on.
func (b *Breaker) Counters() (opens, closes int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.closes
}
