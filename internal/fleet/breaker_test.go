package fleet

import (
	"sync/atomic"
	"testing"
	"time"
)

// warpClock is an injectable monotonic source warped explicitly — breaker
// timing is never tested by sleeping.
type warpClock struct{ now atomic.Int64 }

func (c *warpClock) clock() func() time.Duration {
	return func() time.Duration { return time.Duration(c.now.Load()) }
}
func (c *warpClock) advance(d time.Duration) { c.now.Add(int64(d)) }

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := &warpClock{}
	b := NewBreaker(3, time.Second, clk.clock())

	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Record(false, false)
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", st)
	}
	// A success resets the consecutive count.
	b.Record(true, false)
	b.Record(false, false)
	b.Record(false, false)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after reset + 2 failures = %v, want closed", st)
	}
	b.Record(false, false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", st)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted a request")
	}
	if opens, closes := b.Counters(); opens != 1 || closes != 0 {
		t.Fatalf("counters = %d/%d, want 1/0", opens, closes)
	}
}

// TestBreakerProbeCycle drives the full open → half-open → closed cycle:
// the open interval elapses, exactly one probe is granted, a failed probe
// re-opens (restarting the interval), a successful one closes.
func TestBreakerProbeCycle(t *testing.T) {
	clk := &warpClock{}
	b := NewBreaker(1, time.Second, clk.clock())
	b.Record(false, false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}

	// Before the interval: rejected. After: exactly one probe grant.
	clk.advance(999 * time.Millisecond)
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker admitted before the open interval elapsed")
	}
	clk.advance(time.Millisecond)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow after interval = %v, %v; want probe grant", ok, probe)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second concurrent probe granted")
	}

	// Failed probe → open again, interval restarted from now.
	b.Record(false, true)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	clk.advance(time.Second - 1)
	if ok, _ := b.Allow(); ok {
		t.Fatal("interval did not restart after the failed probe")
	}
	clk.advance(1)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("no probe grant after the restarted interval")
	}

	// Successful probe → closed; traffic flows and failures start from 0.
	b.Record(true, true)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", st)
	}
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatalf("closed breaker Allow = %v, %v", ok, probe)
	}
	if opens, closes := b.Counters(); opens != 1 || closes != 1 {
		t.Fatalf("counters = %d/%d, want 1/1", opens, closes)
	}
}

// TestBreakerIgnoresStaleAndNonClosedOutcomes: outcomes that race a state
// transition must not corrupt the machine — a probe result landing after
// the breaker moved on is dropped, and normal failures only count while
// closed.
func TestBreakerIgnoresStaleAndNonClosedOutcomes(t *testing.T) {
	clk := &warpClock{}
	b := NewBreaker(1, time.Second, clk.clock())

	// Probe result while closed: dropped.
	b.Record(false, true)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("stale probe failure changed state to %v", st)
	}

	// Normal failure while open: dropped (the breaker is already open; the
	// in-flight stragglers' failures must not extend or double-count).
	b.Record(false, false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
	b.Record(false, false)
	clk.advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("open interval shifted by a dropped failure")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0, nil)
	if b.threshold != DefaultBreakerThreshold || b.openFor != DefaultBreakerOpenFor {
		t.Fatalf("defaults = %d, %v", b.threshold, b.openFor)
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("new breaker state = %v", st)
	}
}
