package fleet

// The chaos acceptance test: real hpca03 and stserve binaries, a real
// shared store, and an in-process TCP chaos proxy in front of every worker.
// One worker is blackholed outright (its points must hedge elsewhere), one
// resets every connection until it is healed mid-run (its breaker must
// complete a full open → half-open → closed cycle and dispatch must resume),
// and the healthy one absorbs a truncated response plus seeded delays. The
// invariant under all of it is the repository's headline one: stdout is
// byte-identical to a clean single-process run, and the exit code is 0.

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"selthrottle/internal/faultinject"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binaries builds hpca03 and stserve once per test process.
func binaries(t *testing.T) (hpca03, stserve string) {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "fleet-chaos-bin")
		if buildErr != nil {
			return
		}
		for _, pkg := range []string{"hpca03", "stserve"} {
			out, err := exec.Command("go", "build", "-o",
				filepath.Join(buildDir, pkg), "selthrottle/cmd/"+pkg).CombinedOutput()
			if err != nil {
				buildErr = fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building binaries: %v", buildErr)
	}
	return filepath.Join(buildDir, "hpca03"), filepath.Join(buildDir, "stserve")
}

// freePort reserves an ephemeral 127.0.0.1 port and releases it for the
// subprocess to bind.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startWorker launches one stserve on addr over the shared store and waits
// for liveness. Cleanup SIGTERMs it and requires a clean drain (exit 0).
func startWorker(t *testing.T, stserve, addr, storeDir string) {
	t.Helper()
	cmd := exec.Command(stserve,
		"-addr", addr, "-store", storeDir, "-lease-ttl", "500ms")
	var logs bytes.Buffer
	cmd.Stdout, cmd.Stderr = &logs, &logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("start stserve: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("stserve %s did not drain cleanly: %v\n%s", addr, err, logs.String())
			}
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			t.Errorf("stserve %s did not exit within the drain window\n%s", addr, logs.String())
		}
	})

	hc := &http.Client{Timeout: 250 * time.Millisecond}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := hc.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("stserve %s never became live\n%s", addr, logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// chaosProxy fronts backend with the given fault schedule.
func chaosProxy(t *testing.T, backend string, faults ...faultinject.NetFault) *faultinject.ChaosProxy {
	t.Helper()
	p, err := faultinject.NewChaosProxy(backend, faults...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// runHpca runs the hpca03 binary capturing stdout and stderr separately.
func runHpca(t *testing.T, bin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if err != nil {
		xerr, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %s: %v", bin, err)
		}
		code = xerr.ExitCode()
	}
	return out.String(), errb.String(), code
}

// chaosArgs is the shared grid selection: fig3 (64 points) at an
// instruction budget small enough to be quick but large enough that the
// sweep outlives the mid-run heal of worker B.
func chaosArgs(storeDir string) []string {
	return []string{"-exp", "fig3", "-n", "20000", "-warmup", "5000", "-store", storeDir}
}

// TestFleetChaosByteIdentical is the acceptance gauntlet described above.
func TestFleetChaosByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	hpca03, stserve := binaries(t)

	refOut, _, code := runHpca(t, hpca03, chaosArgs(t.TempDir())...)
	if code != 0 {
		t.Fatalf("single-process reference run exited %d", code)
	}
	if !strings.Contains(refOut, "Figure 3") {
		t.Fatalf("reference run produced no figure:\n%s", refOut)
	}

	storeDir := t.TempDir()
	addrA, addrB, addrC := freePort(t), freePort(t), freePort(t)
	startWorker(t, stserve, addrA, storeDir)
	startWorker(t, stserve, addrB, storeDir)
	startWorker(t, stserve, addrC, storeDir)

	// Worker A: a network partition — every connection is silence. Its
	// breaker opens and stays open; its points hedge to the others.
	proxyA := chaosProxy(t, addrA, faultinject.NetFault{Kind: faultinject.NetBlackhole})
	// Worker B: RST on every connection until healed below. Guaranteed
	// consecutive failures (no connection can succeed), so its breaker
	// opens; after the heal, a readiness probe closes it and dispatch
	// resumes — the full cycle.
	proxyB := chaosProxy(t, addrB, faultinject.NetFault{Kind: faultinject.NetConnReset})
	// Worker C: one truncated response plus seeded scattered delays — the
	// retry and hedge paths on an otherwise healthy worker.
	faultsC := append([]faultinject.NetFault{{Kind: faultinject.NetTruncate, TruncAt: 64, Once: true}},
		faultinject.ScatterNet(42, 6, 2, 150*time.Millisecond, faultinject.NetDelay)...)
	proxyC := chaosProxy(t, addrC, faultsC...)

	heal := time.AfterFunc(250*time.Millisecond, func() { proxyB.SetFaults() })
	defer heal.Stop()

	args := append(chaosArgs(storeDir),
		"-fleet", proxyA.Addr()+","+proxyB.Addr()+","+proxyC.Addr(),
		"-lease-ttl", "500ms",
		"-point-timeout", "1s",
		"-hedge-after", "100ms",
		"-breaker-open", "150ms",
	)
	gotOut, gotErr, code := runHpca(t, hpca03, args...)
	if code != 0 {
		t.Fatalf("fleet chaos run exited %d\nstderr:\n%s", code, gotErr)
	}
	if gotOut != refOut {
		t.Fatalf("fleet output diverges from single-process run\n--- single-process ---\n%s\n--- fleet ---\n%s\nstderr:\n%s", refOut, gotOut, gotErr)
	}
	if !strings.Contains(gotErr, "hedging to") {
		t.Fatalf("no hedge was launched; stderr:\n%s", gotErr)
	}
	// Worker B's summary line must show a completed breaker cycle.
	cycle := regexp.MustCompile(regexp.QuoteMeta(proxyB.Addr()) + `: \d+ point\(s\), \d+ failure\(s\), breaker opened ([1-9]\d*)x, closed ([1-9]\d*)x`)
	if !cycle.MatchString(gotErr) {
		t.Fatalf("worker B never completed a breaker open/close cycle; stderr:\n%s", gotErr)
	}
}

// TestFleetUnreachableDegradesLocal: with every fleet target refusing
// connections, the run must still complete — locally — with byte-identical
// output and exit 0.
func TestFleetUnreachableDegradesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	hpca03, _ := binaries(t)

	refOut, _, code := runHpca(t, hpca03, chaosArgs(t.TempDir())...)
	if code != 0 {
		t.Fatalf("single-process reference run exited %d", code)
	}

	args := append(chaosArgs(t.TempDir()),
		"-fleet", "127.0.0.1:1,127.0.0.1:2",
		"-point-timeout", "1s",
		"-hedge-after", "-1ms",
	)
	gotOut, gotErr, code := runHpca(t, hpca03, args...)
	if code != 0 {
		t.Fatalf("unreachable-fleet run exited %d\nstderr:\n%s", code, gotErr)
	}
	if gotOut != refOut {
		t.Fatalf("degraded output diverges from single-process run\nstderr:\n%s", gotErr)
	}
	if !strings.Contains(gotErr, "computing") || !strings.Contains(gotErr, "locally") {
		t.Fatalf("no local-compute degradation reported; stderr:\n%s", gotErr)
	}
}
