package fleet

// The coordinator's HTTP client layer: one robust call per grid point. All
// policy (retries, hedging, breakers) lives in the coordinator; this file
// owns the mechanics of a single attempt — build the request, bound it
// with the per-point deadline, classify the outcome. Classification is the
// load-bearing part: a 409 (lease conflict) means "someone else is
// computing this point" and is progress, not failure; a 429 (shed) is the
// worker's own admission control working and must not trip its breaker;
// transport errors, timeouts, 5xx, and 503 (draining) are evidence the
// worker should stop receiving traffic.

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"selthrottle/internal/sim"
)

// CallError is one failed /v1/compute attempt, classified for retry,
// breaker, and conflict policy. Status 0 means the request never got an
// HTTP response (transport error, deadline).
type CallError struct {
	Worker string
	Status int
	Err    error
}

// Error describes the failed attempt.
func (e *CallError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("fleet: %s: HTTP %d: %v", e.Worker, e.Status, e.Err)
	}
	return fmt.Sprintf("fleet: %s: %v", e.Worker, e.Err)
}

// Unwrap exposes the cause.
func (e *CallError) Unwrap() error { return e.Err }

// Conflict reports a 409: the point's lease is held — another worker (or a
// hedge twin) is computing it. The right response is patience or a steal,
// never a breaker trip.
func (e *CallError) Conflict() bool { return e.Status == http.StatusConflict }

// Terminal reports a failure no retry can fix: the request itself is wrong
// (4xx other than conflict/shed) or the simulation failed deterministically
// (500). Grid mismatch (412) is the canonical terminal case — version skew
// retried forever would spin, not converge.
func (e *CallError) Terminal() bool {
	switch e.Status {
	case http.StatusConflict, http.StatusTooManyRequests:
		return false
	case http.StatusInternalServerError:
		return true
	}
	return e.Status >= 400 && e.Status < 500
}

// BreakerFault reports whether this failure is evidence against the
// worker: transport errors, deadlines, 5xx, and draining (503) count; a
// shed (429) or a lease conflict (409) is the system working as designed.
func (e *CallError) BreakerFault() bool {
	if e.Status == 0 {
		return true // transport error or timeout: never reached a handler
	}
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusConflict:
		return false
	}
	return e.Status >= 500
}

// maxErrorBody bounds how much of an error response is read for the
// diagnostic.
const maxErrorBody = 4 << 10

// computeCall issues one /v1/compute attempt against base for point index
// of the spec'd grid, bounded by timeout. On 200 the wire bytes are
// decoded through the store codec (CRC-checked — a truncated or corrupted
// body fails exactly like a corrupt store entry). Every failure returns a
// *CallError.
func computeCall(ctx context.Context, hc *http.Client, base, workerName string, spec GridSpec, gridID string, index int, steal bool, timeout time.Duration) (sim.Result, ComputeResponse, error) {
	q := spec.Query()
	q.Set("grid", gridID)
	q.Set("index", strconv.Itoa(index))
	if steal {
		q.Set("steal", "1")
	}
	u := base + "/v1/compute?" + q.Encode()

	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return sim.Result{}, ComputeResponse{}, &CallError{Worker: workerName, Err: err}
	}
	resp, err := hc.Do(req)
	if err != nil {
		return sim.Result{}, ComputeResponse{}, &CallError{Worker: workerName, Err: err}
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		return sim.Result{}, ComputeResponse{}, &CallError{
			Worker: workerName,
			Status: resp.StatusCode,
			Err:    fmt.Errorf("%s", firstLine(body)),
		}
	}
	var cr ComputeResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		// A cut connection surfaces here (unexpected EOF mid-body): a
		// transport failure, retryable, breaker-visible.
		return sim.Result{}, ComputeResponse{}, &CallError{Worker: workerName, Err: fmt.Errorf("decode response: %w", err)}
	}
	raw, err := base64.StdEncoding.DecodeString(cr.ResultB64)
	if err != nil {
		return sim.Result{}, ComputeResponse{}, &CallError{Worker: workerName, Err: fmt.Errorf("decode result: %w", err)}
	}
	res, err := sim.DecodeResultEntry(raw)
	if err != nil {
		return sim.Result{}, ComputeResponse{}, &CallError{Worker: workerName, Err: fmt.Errorf("decode result: %w", err)}
	}
	return res, cr, nil
}

// probeCall issues the half-open breaker probe: a cheap readiness check.
// /readyz distinguishes a draining worker (alive but leaving) from a ready
// one; both liveness-only and compute traffic would get that wrong.
func probeCall(ctx context.Context, hc *http.Client, base, workerName string, timeout time.Duration) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return &CallError{Worker: workerName, Err: err}
	}
	resp, err := hc.Do(req)
	if err != nil {
		return &CallError{Worker: workerName, Err: err}
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorBody))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &CallError{Worker: workerName, Status: resp.StatusCode, Err: errors.New("not ready")}
	}
	return nil
}

// firstLine trims an error body to its first line for diagnostics.
func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			b = b[:i]
			break
		}
	}
	return string(b)
}

// normalizeBase canonicalizes a worker target: "host:port" gains the
// http:// scheme, trailing slashes are dropped.
func normalizeBase(target string) (string, error) {
	if target == "" {
		return "", errors.New("fleet: empty worker address")
	}
	s := target
	// "host:port" parses as scheme "host", opaque "port" — presence of
	// "://" is the reliable schemeless test, not url.Parse.
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil || u.Host == "" {
		return "", fmt.Errorf("fleet: bad worker address %q", target)
	}
	u.Path, u.RawQuery, u.Fragment = "", "", ""
	return u.String(), nil
}
