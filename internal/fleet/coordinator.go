package fleet

// The coordinator: drain one grid through a fleet of remote workers, and
// finish no matter what the network does. Dispatch is pull-shaped — a
// shared index queue, per-worker concurrency slots, least-loaded picking —
// so fast workers naturally take more points. Robustness is layered per
// point: a per-request deadline bounds every attempt; retryable failures
// back off exponentially with per-point seeded jitter (the Supervisor's
// discipline, reused); a straggling request is hedged onto a second worker
// with steal=1, so the first response wins and the loser's point lease is
// fenced off; per-worker circuit breakers stop routing to workers that
// keep failing, re-probing them via /readyz after a cooling interval; and
// points that exhaust every remote option are computed locally, in
// process, under the same point leases — an unreachable fleet degrades to
// exactly the single-process run. Interruption is cooperative end to end:
// canceling Run's context cancels every in-flight HTTP request and local
// compute, and Run returns only after every held lease is released, so an
// interrupted fleet leaves no expired-lease debris behind.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"selthrottle/internal/grid"
	"selthrottle/internal/sim"
	"selthrottle/internal/store"
	"selthrottle/internal/xrand"
)

// Coordinator defaults.
const (
	// DefaultPointTimeout bounds one remote compute attempt.
	DefaultPointTimeout = 60 * time.Second
	// DefaultRetries is the per-point remote attempt budget past the first.
	DefaultRetries = 3
	// DefaultBackoff seeds the exponential retry backoff.
	DefaultBackoff = 50 * time.Millisecond
	// DefaultPerWorker is the in-flight request cap per worker.
	DefaultPerWorker = 2
	// stealAfterAttempts is the conflict-escalation threshold: a point
	// still 409ing after this many attempts is presumed held by a dead or
	// wedged worker, and the next claim steals (fencing the holder off).
	stealAfterAttempts = 2
)

// Options configures a fleet run.
type Options struct {
	// Workers are the target stserve instances ("host:port" or full URLs).
	// An empty list runs everything locally.
	Workers []string

	// Spec names the grid; every worker re-derives the identical point
	// list from it. Points, when non-nil, is the pre-enumerated list
	// (must equal the Spec enumeration; hpca03 passes it to avoid
	// enumerating twice).
	Spec   GridSpec
	Points []sim.GridPoint

	// Transport, when non-nil, replaces http.DefaultTransport — the seam
	// faultinject.NetFaults plugs into.
	Transport http.RoundTripper

	// PointTimeout bounds each remote attempt; 0 selects a deadline
	// derived from the point cost estimate: simulated instructions at a
	// conservative floor rate, clamped to [5s, DefaultPointTimeout].
	PointTimeout time.Duration

	// HedgeAfter is the straggler threshold: a remote attempt still
	// unanswered after this long gets a hedge twin on another worker
	// (steal=1: the twin fences the straggler's lease). 0 derives
	// PointTimeout/4; negative disables hedging.
	HedgeAfter time.Duration

	// Retries bounds remote attempts per point past the first (<0 = 0;
	// 0 selects DefaultRetries... set -1 to disable).
	Retries int

	// Backoff seeds the per-point exponential retry backoff (0 selects
	// DefaultBackoff), jittered into [b/2, b] by a per-point stream from
	// JitterSeed, capped at sim.MaxBackoff.
	Backoff    time.Duration
	JitterSeed uint64

	// Breaker policy (zero values select the Default* constants).
	BreakerThreshold int
	BreakerOpenFor   time.Duration

	// PerWorker caps concurrent in-flight requests per worker (0 selects
	// DefaultPerWorker).
	PerWorker int

	// Clock is the monotonic source for breakers (nil selects the runtime
	// monotonic clock). Tests inject warped clocks.
	Clock grid.Clock

	// Leases, when non-nil, guards local fallback computes with point
	// leases on the shared store (remote claims are the workers' own).
	Leases *grid.Manager

	// Store, when non-nil, is consulted for already-published points
	// (skip before dispatch, convergence check after conflicts); nil
	// falls back to the process cache's attached disk tier.
	Store *store.Store

	// Sup is the local-fallback per-point policy.
	Sup sim.Supervisor

	// Owner labels this coordinator's lease claims.
	Owner string

	// Logf, when non-nil, receives dispatch events.
	Logf func(format string, args ...any)
}

// WorkerStats is one worker's slice of a fleet Report.
type WorkerStats struct {
	Name          string
	Points        int // points this worker answered
	Failures      int // attempts charged against it
	BreakerOpens  int
	BreakerCloses int
}

// Report summarizes a fleet run.
type Report struct {
	GridID      string
	Points      int // grid points total
	Stored      int // already published before dispatch; skipped
	Remote      int // served by workers (includes conflict-converged points)
	Local       int // computed in-process (fallback)
	Failed      int // terminal simulation failures (remote and local agree)
	Hedges      int // hedge twins launched
	HedgeWins   int // hedges that beat the primary
	Steals      int // claims escalated to steal
	RetriesUsed int // extra remote attempts consumed
	Probes      int // half-open breaker probes issued
	PerWorker   []WorkerStats
	Interrupted bool
}

// worker is the coordinator's per-target state.
type worker struct {
	name     string // display name (the configured target)
	base     string // normalized URL base
	breaker  *Breaker
	inflight atomic.Int64
	points   atomic.Int64
	failures atomic.Int64
}

// coordinator is one Run's live state.
type coordinator struct {
	opts    Options
	hc      *http.Client
	workers []*worker
	gridID  string
	points  []sim.GridPoint

	pointTimeout time.Duration
	hedgeAfter   time.Duration
	retries      int
	backoff      time.Duration

	st *store.Store

	mu    sync.Mutex // guards worker picking
	local []int      // indices that fell back to local compute

	remote    atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	steals    atomic.Int64
	retried   atomic.Int64
	probes    atomic.Int64
	failed    atomic.Int64
}

func (c *coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// derivePointTimeout estimates a per-attempt deadline from the point cost:
// simulated instructions at a conservative 100k instructions/second floor
// (two orders under the simulator's real rate, so slow CI machines and
// -race builds fit), clamped to [5s, DefaultPointTimeout]. The estimate
// only bounds patience, never results.
func derivePointTimeout(n, warmup uint64) time.Duration {
	total := n + warmup
	if warmup == 0 {
		total = n + n/4
	}
	d := time.Duration(total/100_000+1) * time.Second
	if d < 5*time.Second {
		d = 5 * time.Second
	}
	if d > DefaultPointTimeout {
		d = DefaultPointTimeout
	}
	return d
}

// Run drains the grid through the fleet. The returned Report is valid even
// on error; the error is non-nil only for spec/setup failures or
// cancellation (Interrupted is also set). Terminally failed points are a
// Report concern, mirroring the process-worker contract.
func Run(ctx context.Context, opts Options) (Report, error) {
	var rep Report
	points := opts.Points
	if points == nil {
		simOpts, err := opts.Spec.SimOptions()
		if err != nil {
			return rep, err
		}
		points, err = sim.EnumerateGrid(opts.Spec.Exp, opts.Spec.ID, simOpts)
		if err != nil {
			return rep, err
		}
	}
	c := &coordinator{
		opts:         opts,
		points:       points,
		gridID:       grid.ID(points),
		pointTimeout: opts.PointTimeout,
		hedgeAfter:   opts.HedgeAfter,
		retries:      opts.Retries,
		backoff:      opts.Backoff,
		st:           opts.Store,
	}
	rep.GridID = c.gridID
	rep.Points = len(points)
	if c.pointTimeout <= 0 {
		c.pointTimeout = derivePointTimeout(opts.Spec.N, opts.Spec.Warmup)
	}
	if c.hedgeAfter == 0 {
		c.hedgeAfter = c.pointTimeout / 4
	}
	if c.retries == 0 {
		c.retries = DefaultRetries
	} else if c.retries < 0 {
		c.retries = 0
	}
	if c.backoff <= 0 {
		c.backoff = DefaultBackoff
	}
	if c.st == nil {
		c.st = sim.DiskStore()
	}
	clock := opts.Clock
	if clock == nil {
		clock = grid.MonotonicClock()
	}
	transport := opts.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	c.hc = &http.Client{Transport: transport}
	for _, target := range opts.Workers {
		base, err := normalizeBase(target)
		if err != nil {
			return rep, err
		}
		c.workers = append(c.workers, &worker{
			name:    target,
			base:    base,
			breaker: NewBreaker(opts.BreakerThreshold, opts.BreakerOpenFor, clock),
		})
	}

	// Skip points the shared store already holds; queue the rest.
	var todo []int
	for i := range points {
		if c.st != nil && c.st.Has(points[i].Key()) {
			rep.Stored++
			continue
		}
		todo = append(todo, i)
	}

	perWorker := opts.PerWorker
	if perWorker <= 0 {
		perWorker = DefaultPerWorker
	}
	if len(c.workers) > 0 && len(todo) > 0 {
		slots := len(c.workers) * perWorker
		if slots > len(todo) {
			slots = len(todo)
		}
		queue := make(chan int)
		var wg sync.WaitGroup
		for s := 0; s < slots; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range queue {
					c.dispatchPoint(ctx, idx, perWorker)
				}
			}()
		}
		for _, idx := range todo {
			if ctx.Err() != nil {
				c.mu.Lock()
				c.local = append(c.local, idx)
				c.mu.Unlock()
				continue
			}
			queue <- idx
		}
		close(queue)
		// The barrier that makes interruption clean: every in-flight
		// request has been canceled via ctx, and no goroutine survives
		// Run, so every remote worker has seen its connection close and
		// every local lease defer has run.
		wg.Wait()
	} else {
		c.local = todo
	}

	// Degradation floor: whatever the fleet could not serve is computed
	// here, in process, under the same point leases.
	if len(c.local) > 0 && ctx.Err() == nil {
		c.logf("fleet: computing %d point(s) locally", len(c.local))
	}
	localDone := 0
	for _, idx := range c.local {
		if ctx.Err() != nil {
			break
		}
		if c.computeLocal(ctx, idx) {
			localDone++
		}
	}
	rep.Local = localDone

	rep.Remote = int(c.remote.Load())
	rep.Hedges = int(c.hedges.Load())
	rep.HedgeWins = int(c.hedgeWins.Load())
	rep.Steals = int(c.steals.Load())
	rep.RetriesUsed = int(c.retried.Load())
	rep.Probes = int(c.probes.Load())
	rep.Failed = int(c.failed.Load())
	for _, w := range c.workers {
		opens, closes := w.breaker.Counters()
		rep.PerWorker = append(rep.PerWorker, WorkerStats{
			Name:          w.name,
			Points:        int(w.points.Load()),
			Failures:      int(w.failures.Load()),
			BreakerOpens:  opens,
			BreakerCloses: closes,
		})
	}
	if ctx.Err() != nil {
		rep.Interrupted = true
		return rep, fmt.Errorf("fleet: interrupted: %w", ctx.Err())
	}
	return rep, nil
}

// pick selects the least-loaded worker whose breaker admits traffic,
// skipping exclude (hedges must land elsewhere) and workers at their
// in-flight cap. A worker whose breaker grants a half-open probe is
// returned with probe=true; the caller must resolve the probe before real
// traffic flows there. busy distinguishes "every healthy worker is at its
// cap" (transient — in-flight requests are deadline-bounded, so waiting
// resolves it) from "no healthy workers at all" (fall back locally).
func (c *coordinator) pick(exclude *worker, cap int) (wk *worker, probe, busy bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *worker
	for _, w := range c.workers {
		if w == exclude {
			continue
		}
		if int(w.inflight.Load()) >= cap {
			busy = true
			continue
		}
		ok, pr := w.breaker.Allow()
		if !ok {
			continue
		}
		if pr {
			// Probe grants are exclusive: take it immediately (returning
			// it to "available" would need an un-Allow).
			return w, true, false
		}
		if best == nil || w.inflight.Load() < best.inflight.Load() {
			best = w
		}
	}
	return best, false, busy && best == nil
}

// dispatchPoint drives one point to completion remotely, or parks it for
// local fallback. It owns the point's whole retry/hedge lifecycle.
func (c *coordinator) dispatchPoint(ctx context.Context, idx, perWorker int) {
	pt := c.points[idx]
	key := pt.Key()
	seed := c.opts.JitterSeed
	if seed == 0 {
		seed = 0x666c656574 // "fleet"
	}
	rng := xrand.New(xrand.Hash2(seed, uint64(idx)))
	backoff := c.backoff
	conflicts := 0

	for attempt := 0; attempt <= c.retries; attempt++ {
		if ctx.Err() != nil {
			c.park(idx)
			return
		}
		if attempt > 0 {
			c.retried.Add(1)
		}
		wk, probe, busy := c.pick(nil, perWorker)
		if wk == nil {
			if busy {
				// Healthy workers exist but are saturated (hedges over-
				// subscribe slots transiently); their in-flight requests
				// are deadline-bounded, so wait instead of giving up.
				if c.waitBackoff(ctx, &backoff, rng) {
					attempt--
					continue
				}
			}
			// No healthy worker at all: this point has no remote future.
			c.park(idx)
			return
		}
		if probe {
			c.probes.Add(1)
			err := probeCall(ctx, c.hc, wk.base, wk.name, c.pointTimeout/4)
			wk.breaker.Record(err == nil, true)
			if err != nil {
				c.logf("fleet: %s: probe failed: %v", wk.name, err)
			} else {
				c.logf("fleet: %s: probe ok, breaker closed", wk.name)
			}
			attempt-- // probes spend time, not the point's retry budget
			continue
		}

		steal := conflicts >= stealAfterAttempts
		if steal {
			c.steals.Add(1)
		}
		res, usedWk, err := c.attemptWithHedge(ctx, wk, idx, steal, perWorker)
		if err == nil {
			sim.InjectResult(pt.Cfg, pt.Profile, res)
			usedWk.points.Add(1)
			c.remote.Add(1)
			return
		}
		var ce *CallError
		if errors.As(err, &ce) {
			switch {
			case ce.Conflict():
				conflicts++
				// Someone else is computing the point. Give them a backoff
				// interval, then check whether their result landed.
				if c.waitBackoff(ctx, &backoff, rng) && c.st != nil && c.st.Has(key) {
					c.remote.Add(1)
					return
				}
				continue
			case ce.Terminal():
				if ce.Status == http.StatusInternalServerError {
					// The simulation itself failed — deterministic, so
					// local compute would fail identically. Count and stop.
					c.logf("fleet: point %d terminally failed remotely: %v", idx, err)
					c.failed.Add(1)
					return
				}
				// Bad request / grid mismatch: a coordinator-side problem
				// remote retries cannot fix; local compute still can.
				c.logf("fleet: point %d rejected (%v), falling back locally", idx, err)
				c.park(idx)
				return
			}
		}
		c.logf("fleet: point %d attempt %d on %s failed: %v", idx, attempt+1, wk.name, err)
		if !c.waitBackoff(ctx, &backoff, rng) {
			c.park(idx)
			return
		}
	}
	c.park(idx)
}

// attemptWithHedge issues one attempt on wk, hedging onto a second worker
// if the first is still unanswered after the straggler threshold. The
// hedge goes out with steal=1: if it lands first, its lease claim fences
// the straggler off (the straggler's heartbeat sees ErrLost and cancels).
// First outcome wins; the loser's request context is canceled and its
// outcome discarded (a cancellation the coordinator caused is not evidence
// against the worker).
func (c *coordinator) attemptWithHedge(ctx context.Context, wk *worker, idx int, steal bool, perWorker int) (sim.Result, *worker, error) {
	type outcome struct {
		res   sim.Result
		err   error
		wk    *worker
		hedge bool
	}
	results := make(chan outcome, 2)
	launch := func(runCtx context.Context, w *worker, stealFlag, isHedge bool) {
		w.inflight.Add(1)
		res, _, err := computeCall(runCtx, c.hc, w.base, w.name, c.opts.Spec, c.gridID, idx, stealFlag, c.pointTimeout)
		w.inflight.Add(-1)
		if runCtx.Err() == nil || err == nil {
			// Only outcomes the coordinator did not itself cancel count
			// toward breaker state.
			var ce *CallError
			fault := err != nil && (!errors.As(err, &ce) || ce.BreakerFault())
			w.breaker.Record(!fault, false)
			if fault {
				w.failures.Add(1)
			}
		}
		results <- outcome{res: res, err: err, wk: w, hedge: isHedge}
	}

	primCtx, primCancel := context.WithCancel(ctx)
	defer primCancel()
	go launch(primCtx, wk, steal, false)

	var hedgeCancel context.CancelFunc
	launched := 1
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if c.hedgeAfter > 0 {
		hedgeTimer = time.NewTimer(c.hedgeAfter)
		hedgeC = hedgeTimer.C
		defer hedgeTimer.Stop()
	}

	var firstErr error
	for seen := 0; seen < launched; {
		select {
		case <-hedgeC:
			hedgeC = nil
			hw, probe, _ := c.pick(wk, perWorker)
			if hw == nil || probe {
				if probe {
					// Don't burn the probe grant on a hedge; resolve it
					// cheaply so the next pick can use the worker.
					c.probes.Add(1)
					go func(w *worker) {
						err := probeCall(ctx, c.hc, w.base, w.name, c.pointTimeout/4)
						w.breaker.Record(err == nil, true)
					}(hw)
				}
				continue
			}
			c.hedges.Add(1)
			c.logf("fleet: point %d straggling on %s, hedging to %s", idx, wk.name, hw.name)
			var hctx context.Context
			hctx, hedgeCancel = context.WithCancel(ctx)
			defer hedgeCancel()
			launched++
			go launch(hctx, hw, true, true)
		case out := <-results:
			seen++
			if out.err == nil {
				if out.hedge {
					c.hedgeWins.Add(1)
				}
				// Cancel the twin; its lease is already fenced (hedge won)
				// or its result is a harmless duplicate (primary won).
				primCancel()
				if hedgeCancel != nil {
					hedgeCancel()
				}
				// Drain the loser so its goroutine can exit before Run's
				// barrier (the channel is buffered, but a clean drain keeps
				// inflight counters honest at Wait time).
				for ; seen < launched; seen++ {
					<-results
				}
				return out.res, out.wk, nil
			}
			if firstErr == nil {
				firstErr = out.err
			} else {
				// Prefer the more actionable classification: a conflict
				// beats a transport error (it proves a live holder).
				var ce *CallError
				if errors.As(out.err, &ce) && ce.Conflict() {
					firstErr = out.err
				}
			}
		case <-ctx.Done():
			primCancel()
			if hedgeCancel != nil {
				hedgeCancel()
			}
			for ; seen < launched; seen++ {
				<-results
			}
			return sim.Result{}, wk, &CallError{Worker: wk.name, Err: ctx.Err()}
		}
	}
	return sim.Result{}, wk, firstErr
}

// waitBackoff sleeps one jittered backoff interval (doubling the base,
// saturating at sim.MaxBackoff) unless ctx ends first.
func (c *coordinator) waitBackoff(ctx context.Context, backoff *time.Duration, rng *xrand.Rand) bool {
	d := *backoff
	if d > 1 {
		half := uint64(d / 2)
		d = time.Duration(half + rng.Uint64()%(half+1))
	}
	if *backoff >= sim.MaxBackoff/2 {
		*backoff = sim.MaxBackoff
	} else {
		*backoff *= 2
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// park queues a point for local fallback.
func (c *coordinator) park(idx int) {
	c.mu.Lock()
	c.local = append(c.local, idx)
	c.mu.Unlock()
}

// computeLocal is the degradation floor: compute one point in process,
// under a point lease when a manager is configured. The claim steals —
// whatever remote worker held this point is unreachable or wedged, and the
// fencing token guarantees it cannot publish over us half-alive... or
// rather it can, and that is fine: publication is last-rename-wins over
// bit-identical bytes. Reports whether the point produced a valid Result.
func (c *coordinator) computeLocal(ctx context.Context, idx int) bool {
	pt := c.points[idx]
	key := pt.Key()
	if c.st != nil && c.st.Has(key) {
		return true // landed while we were dispatching elsewhere
	}
	var lease *grid.Lease
	if c.opts.Leases != nil {
		l, err := c.opts.Leases.ClaimPoint(c.gridID, key, c.opts.Owner, true)
		if err == nil {
			lease = l
			defer lease.Release()
		} else {
			c.logf("fleet: local point %d: lease degraded, computing unprotected: %v", idx, err)
		}
	}
	sup := c.opts.Sup
	_, st := sup.RunPointE(ctx, pt.Cfg, pt.Profile)
	if ctx.Err() != nil && !st.OK() {
		return false // cancellation surfacing as a point error
	}
	if !st.OK() {
		c.logf("fleet: local point %d failed after %d attempt(s): %v", idx, st.Attempts, st.Err)
		c.failed.Add(1)
		return false
	}
	return true
}
