package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"selthrottle/internal/faultinject"
	"selthrottle/internal/grid"
)

// fleetWorker mounts a ComputeServer plus /readyz on a real HTTP listener —
// one simulated stserve instance.
func fleetWorker(t *testing.T, cs *ComputeServer) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/v1/compute", cs)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		w.Write([]byte("ready\n"))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestFleetRunNoWorkersDegradesLocal: the degradation floor — an empty
// worker list (and an unreachable one) still completes the whole grid, in
// process.
func TestFleetRunNoWorkersDegradesLocal(t *testing.T) {
	st, dir := attachTestStore(t)
	leases, err := grid.NewManager(dir, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(6110)
	pts := specPoints(t, spec)

	rep, err := Run(context.Background(), Options{
		Spec: spec, Points: pts, Leases: leases, Owner: "coord-test",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Local != len(pts) || rep.Remote != 0 || rep.Failed != 0 {
		t.Fatalf("report = %+v, want all %d points local", rep, len(pts))
	}
	for _, pt := range pts {
		if k := pt.Key(); !st.Has(k) {
			t.Fatalf("point %x not published", k[:6])
		}
	}
}

// TestFleetRunAllWorkersUnreachable: every dispatch fails at the transport;
// the coordinator parks the grid and computes it locally — completion, not
// failure.
func TestFleetRunAllWorkersUnreachable(t *testing.T) {
	st, dir := attachTestStore(t)
	leases, err := grid.NewManager(dir, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(6120)
	pts := specPoints(t, spec)

	rep, err := Run(context.Background(), Options{
		// Reserved port 1: connection refused immediately.
		Workers:          []string{"127.0.0.1:1"},
		Spec:             spec,
		Points:           pts,
		Retries:          -1,
		HedgeAfter:       -1,
		Backoff:          time.Millisecond,
		BreakerThreshold: 1,
		Leases:           leases,
		Owner:            "coord-test",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Local != len(pts) || rep.Remote != 0 {
		t.Fatalf("report = %+v, want all %d points local", rep, len(pts))
	}
	if len(rep.PerWorker) != 1 || rep.PerWorker[0].Failures == 0 {
		t.Fatalf("per-worker stats = %+v, want recorded failures", rep.PerWorker)
	}
	for _, pt := range pts {
		if k := pt.Key(); !st.Has(k) {
			t.Fatalf("point %x not published", k[:6])
		}
	}
}

// TestFleetRunRemote: the happy path — a healthy worker serves every point,
// results land in the shared store AND the coordinator's process cache.
func TestFleetRunRemote(t *testing.T) {
	st, dir := attachTestStore(t)
	leases, err := grid.NewManager(dir, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(6130)
	pts := specPoints(t, spec)
	cs := &ComputeServer{Leases: leases, Owner: "w0"}
	srv := fleetWorker(t, cs)

	rep, err := Run(context.Background(), Options{
		Workers: []string{srv.URL},
		Spec:    spec, Points: pts,
		Leases: leases, Owner: "coord-test",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Remote != len(pts) || rep.Local != 0 || rep.Failed != 0 {
		t.Fatalf("report = %+v, want all %d points remote", rep, len(pts))
	}
	if cs.Stats().Served != uint64(len(pts)) {
		t.Fatalf("worker served %d, want %d", cs.Stats().Served, len(pts))
	}
	for _, pt := range pts {
		if k := pt.Key(); !st.Has(k) {
			t.Fatalf("point %x not in the shared store", k[:6])
		}
	}
	// Second run over the warm store dispatches nothing.
	rep2, err := Run(context.Background(), Options{
		Workers: []string{srv.URL}, Spec: spec, Points: pts, Leases: leases, Owner: "coord-test",
	})
	if err != nil || rep2.Stored != len(pts) || rep2.Remote != 0 || rep2.Local != 0 {
		t.Fatalf("warm rerun = %+v, %v; want all stored", rep2, err)
	}
}

// TestFleetRunHedgesStraggler: worker A's responses are delayed far past
// the hedge threshold; the hedge twin on worker B wins while A straggles.
func TestFleetRunHedgesStraggler(t *testing.T) {
	st, dir := attachTestStore(t)
	leases, err := grid.NewManager(dir, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(6140)
	pts := specPoints(t, spec)
	slow := fleetWorker(t, &ComputeServer{Leases: leases, Owner: "w-slow"})
	fast := fleetWorker(t, &ComputeServer{Leases: leases, Owner: "w-fast"})

	slowHost, _ := url.Parse(slow.URL)
	// Every compute request to the slow worker hangs ~2s before forwarding;
	// probes to /readyz stay fast so its breaker never interferes.
	nf := faultinject.NewNetFaults(nil, faultinject.NetFault{
		Kind:  faultinject.NetDelay,
		Match: slowHost.Host + "/v1/compute",
		Delay: 2 * time.Second,
	})

	rep, err := Run(context.Background(), Options{
		Workers:    []string{slow.URL, fast.URL},
		Spec:       spec,
		Points:     pts,
		Transport:  nf,
		HedgeAfter: 30 * time.Millisecond,
		// A cap far above the point count: the fast worker always has a free
		// slot for a hedge, so every slow-worker primary is hedgeable.
		PerWorker: 64,
		Leases:    leases,
		Owner:     "coord-test",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Remote+rep.Local != len(pts) || rep.Failed != 0 {
		t.Fatalf("report = %+v, want %d points served", rep, len(pts))
	}
	if rep.Hedges == 0 || rep.HedgeWins == 0 {
		t.Fatalf("report = %+v, want at least one hedge and one hedge win", rep)
	}
	for _, pt := range pts {
		if k := pt.Key(); !st.Has(k) {
			t.Fatalf("point %x not published", k[:6])
		}
	}
}

// TestFleetRunBreakerCycle: consecutive transport failures open the one
// worker's breaker; once the open interval elapses, a /readyz probe closes
// it and dispatch resumes remotely — open → half-open → closed, observed
// through the report counters.
func TestFleetRunBreakerCycle(t *testing.T) {
	_, dir := attachTestStore(t)
	leases, err := grid.NewManager(dir, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(6150)
	pts := specPoints(t, spec)
	srv := fleetWorker(t, &ComputeServer{Leases: leases, Owner: "w0"})

	// The first two connections reset (two one-shot faults); everything
	// after — including the breaker probe — succeeds.
	nf := faultinject.NewNetFaults(nil,
		faultinject.NetFault{Kind: faultinject.NetConnReset, Match: "/v1/compute", After: 0, Once: true},
		faultinject.NetFault{Kind: faultinject.NetConnReset, Match: "/v1/compute", After: 0, Once: true},
	)

	rep, err := Run(context.Background(), Options{
		Workers:          []string{srv.URL},
		Spec:             spec,
		Points:           pts,
		Transport:        nf,
		Retries:          6,
		Backoff:          60 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerOpenFor:   20 * time.Millisecond,
		HedgeAfter:       -1,
		Leases:           leases,
		Owner:            "coord-test",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Remote+rep.Local != len(pts) || rep.Failed != 0 {
		t.Fatalf("report = %+v, want %d points served", rep, len(pts))
	}
	ws := rep.PerWorker[0]
	if ws.BreakerOpens == 0 || ws.BreakerCloses == 0 {
		t.Fatalf("worker stats = %+v, want an open → close cycle", ws)
	}
	if rep.Probes == 0 {
		t.Fatalf("report = %+v, want at least one half-open probe", rep)
	}
	if rep.Remote == 0 {
		t.Fatalf("report = %+v, want remote dispatch to resume after the probe", rep)
	}
}

// TestFleetRunInterrupted: canceling the context mid-dispatch cancels the
// blackholed in-flight requests and Run returns promptly with Interrupted —
// the signal-forwarding contract.
func TestFleetRunInterrupted(t *testing.T) {
	_, dir := attachTestStore(t)
	leases, err := grid.NewManager(dir, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(6160)
	pts := specPoints(t, spec)
	srv := fleetWorker(t, &ComputeServer{Leases: leases, Owner: "w0"})

	// Every compute request disappears into a blackhole: only cancellation
	// can end them.
	nf := faultinject.NewNetFaults(nil, faultinject.NetFault{Kind: faultinject.NetBlackhole, Match: "/v1/compute"})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var rep Report
	go func() {
		defer close(done)
		rep, err = Run(ctx, Options{
			Workers:      []string{srv.URL},
			Spec:         spec,
			Points:       pts,
			Transport:    nf,
			PointTimeout: time.Hour, // only cancellation may end the requests
			HedgeAfter:   -1,
			Leases:       leases,
			Owner:        "coord-test",
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation: in-flight requests were not canceled")
	}
	if !rep.Interrupted {
		t.Fatalf("report = %+v, want Interrupted", rep)
	}
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
