package fleet

// The worker side of networked dispatch: /v1/compute, one grid point per
// request. The endpoint is deliberately tiny and stateless across requests
// — the request names the grid (by enumeration parameters plus the
// expected grid ID) and the point (by index), the worker recomputes the
// enumeration (memoized) and verifies the ID, claims the point's lease
// through the shared store, computes through the tiered cache (publishing
// to the store as always), and returns the Result as the store codec's
// exact bytes. Any worker can therefore serve any point of any grid with
// no session state, which is what makes work stealing trivial: "steal=1"
// is just a claim that fences the current holder instead of yielding.

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"selthrottle/internal/grid"
	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

// GridSpec names an experiment grid by its enumeration parameters — the
// complete input to sim.EnumerateGrid, so every worker and the coordinator
// derive the identical point list from one spec. It is a plain comparable
// value, usable as a memoization key.
type GridSpec struct {
	Exp    string // experiment selector (hpca03 -exp)
	ID     string // experiment id for Exp="run"
	N      uint64 // measured instructions
	Warmup uint64 // warmup instructions (0 = derive from N)
	Depth  int    // pipeline depth in stages
	KB     int    // total predictor+estimator budget in KB
	Bench  string // comma-separated benchmark subset ("" = all)

	LegacyFrontEnd    bool
	LegacyEventLedger bool
}

// SimOptions expands the spec into simulation options, validating ranges.
func (g GridSpec) SimOptions() (sim.Options, error) {
	if g.N == 0 {
		return sim.Options{}, fmt.Errorf("fleet: grid spec: n must be positive")
	}
	if g.Depth < 6 || g.Depth > 64 {
		return sim.Options{}, fmt.Errorf("fleet: grid spec: bad depth %d (want 6..64)", g.Depth)
	}
	if g.KB < 1 || g.KB > 1024 {
		return sim.Options{}, fmt.Errorf("fleet: grid spec: bad kb %d (want 1..1024)", g.KB)
	}
	opts := sim.Options{
		Instructions:      g.N,
		Warmup:            g.Warmup,
		Depth:             g.Depth,
		PredBytes:         g.KB * 1024 / 2,
		ConfBytes:         g.KB * 1024 / 2,
		LegacyFrontEnd:    g.LegacyFrontEnd,
		LegacyEventLedger: g.LegacyEventLedger,
	}
	if g.Bench != "" {
		var ps []prog.Profile
		for _, name := range strings.Split(g.Bench, ",") {
			p, ok := prog.ProfileByName(strings.TrimSpace(name))
			if !ok {
				return sim.Options{}, fmt.Errorf("fleet: grid spec: unknown benchmark %q", name)
			}
			ps = append(ps, p)
		}
		opts.Profiles = ps
	}
	return opts, nil
}

// Query renders the spec as /v1/compute request parameters.
func (g GridSpec) Query() url.Values {
	q := url.Values{}
	q.Set("exp", g.Exp)
	if g.ID != "" {
		q.Set("id", g.ID)
	}
	q.Set("n", strconv.FormatUint(g.N, 10))
	if g.Warmup != 0 {
		q.Set("warmup", strconv.FormatUint(g.Warmup, 10))
	}
	q.Set("depth", strconv.Itoa(g.Depth))
	q.Set("kb", strconv.Itoa(g.KB))
	if g.Bench != "" {
		q.Set("bench", g.Bench)
	}
	if g.LegacyFrontEnd {
		q.Set("legacyfrontend", "1")
	}
	if g.LegacyEventLedger {
		q.Set("legacyledger", "1")
	}
	return q
}

// gridSpecFrom parses a spec out of request parameters.
func gridSpecFrom(q url.Values) (GridSpec, error) {
	g := GridSpec{
		Exp:               q.Get("exp"),
		ID:                q.Get("id"),
		Bench:             q.Get("bench"),
		LegacyFrontEnd:    q.Get("legacyfrontend") == "1",
		LegacyEventLedger: q.Get("legacyledger") == "1",
	}
	if g.Exp == "" {
		return g, fmt.Errorf("missing exp parameter")
	}
	var err error
	if g.N, err = strconv.ParseUint(q.Get("n"), 10, 64); err != nil {
		return g, fmt.Errorf("bad n %q", q.Get("n"))
	}
	if v := q.Get("warmup"); v != "" {
		if g.Warmup, err = strconv.ParseUint(v, 10, 64); err != nil {
			return g, fmt.Errorf("bad warmup %q", v)
		}
	}
	if g.Depth, err = strconv.Atoi(q.Get("depth")); err != nil {
		return g, fmt.Errorf("bad depth %q", q.Get("depth"))
	}
	if g.KB, err = strconv.Atoi(q.Get("kb")); err != nil {
		return g, fmt.Errorf("bad kb %q", q.Get("kb"))
	}
	return g, nil
}

// ComputeResponse is /v1/compute's success body. The Result itself crosses
// as base64 of the store codec's exact binary framing (see sim.
// EncodeResultEntry): bit-identical floats, CRC-checked, never JSON
// decimals.
type ComputeResponse struct {
	Key       string `json:"key"`      // point content address (hex)
	Index     int    `json:"index"`    // echo of the requested index
	Attempts  int    `json:"attempts"` // supervisor attempts consumed
	Stolen    bool   `json:"stolen"`   // the claim fenced off a prior holder
	Worker    string `json:"worker"`   // serving worker's owner label
	ResultB64 string `json:"result_b64"`
}

// ComputeServer serves /v1/compute. Mounted by stserve next to its other
// endpoints; tests mount it on a bare mux. The zero value is unusable —
// populate the policy fields before serving.
type ComputeServer struct {
	// Sup is the per-point run policy (deadline, retries).
	Sup sim.Supervisor
	// Leases, when non-nil, guards each computed point with a point lease
	// on the shared store; nil computes leaseless (duplicates stay
	// harmless, stealing degrades to "everyone computes").
	Leases *grid.Manager
	// Owner labels this worker's lease claims and responses.
	Owner string
	// MaxN bounds the per-request instruction budget (0 = unbounded).
	MaxN uint64
	// Ready gates admission: when it reports false (stserve draining), new
	// compute requests are refused 503 so coordinators route elsewhere.
	Ready func() bool
	// Admit, when non-nil, is the host server's admission control (stserve
	// plugs its bounded queue in); it either admits (release, true) or
	// writes its own rejection and reports false.
	Admit func(w http.ResponseWriter) (release func(), ok bool)
	// Logf, when non-nil, receives per-point serving events.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	grids map[GridSpec]*gridMemo

	served    atomic.Uint64 // points computed (or cache-served) to a 200
	conflicts atomic.Uint64 // claims refused 409 (lease held elsewhere)
	steals    atomic.Uint64 // claims that fenced off a prior holder
}

// gridMemo is one memoized enumeration (grids are re-requested per point,
// re-enumerating thousands of times would dominate serving cost).
type gridMemo struct {
	once   sync.Once
	points []sim.GridPoint
	id     string
	err    error
}

// ServerStats is the endpoint's observability counters.
type ServerStats struct {
	Served    uint64 `json:"served"`
	Conflicts uint64 `json:"conflicts"`
	Steals    uint64 `json:"steals"`
}

// Stats snapshots the serving counters.
func (s *ComputeServer) Stats() ServerStats {
	return ServerStats{Served: s.served.Load(), Conflicts: s.conflicts.Load(), Steals: s.steals.Load()}
}

func (s *ComputeServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// grid returns the memoized enumeration for spec.
func (s *ComputeServer) grid(spec GridSpec) ([]sim.GridPoint, string, error) {
	s.mu.Lock()
	if s.grids == nil {
		s.grids = make(map[GridSpec]*gridMemo)
	}
	m := s.grids[spec]
	if m == nil {
		m = &gridMemo{}
		s.grids[spec] = m
	}
	s.mu.Unlock()
	m.once.Do(func() {
		opts, err := spec.SimOptions()
		if err != nil {
			m.err = err
			return
		}
		pts, err := sim.EnumerateGrid(spec.Exp, spec.ID, opts)
		if err != nil {
			m.err = err
			return
		}
		m.points, m.id = pts, grid.ID(pts)
	})
	return m.points, m.id, m.err
}

// ServeHTTP handles one compute request (GET or POST, parameters in the
// query string either way).
func (s *ComputeServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.Ready != nil && !s.Ready() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining: not accepting new points", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	spec, err := gridSpecFrom(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.MaxN > 0 && spec.N > s.MaxN {
		http.Error(w, fmt.Sprintf("n %d exceeds the per-request ceiling %d", spec.N, s.MaxN), http.StatusBadRequest)
		return
	}
	points, gridID, err := s.grid(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if want := q.Get("grid"); want != "" && want != gridID {
		// The coordinator and this worker disagree about what the grid IS —
		// version skew or flag mismatch. Computing would be wrong twice
		// over: wasted work here, silent nonsense there.
		http.Error(w, fmt.Sprintf("grid mismatch: have %s, want %s", gridID, want), http.StatusPreconditionFailed)
		return
	}
	index, err := strconv.Atoi(q.Get("index"))
	if err != nil || index < 0 || index >= len(points) {
		http.Error(w, fmt.Sprintf("bad index %q (grid has %d points)", q.Get("index"), len(points)), http.StatusBadRequest)
		return
	}
	steal := q.Get("steal") == "1"

	if s.Admit != nil {
		release, ok := s.Admit(w)
		if !ok {
			return
		}
		defer release()
	}

	pt := points[index]
	key := pt.Key()
	resp := ComputeResponse{Key: key.String(), Index: index, Worker: s.Owner}

	// Fast path: a point already published needs no lease — the compute
	// below will be served from the store through the cache tiers.
	published := sim.DiskStore() != nil && sim.DiskStore().Has(key)

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	var lease *grid.Lease
	if s.Leases != nil && !published {
		l, err := s.Leases.ClaimPoint(gridID, key, s.Owner, steal)
		switch {
		case err == nil:
			lease = l
			resp.Stolen = steal
			if steal {
				// A steal is provisional until a Beat confirms the fencing
				// token survived; racing stealers converge to one winner.
				if berr := l.Beat(); berr != nil {
					s.conflicts.Add(1)
					w.Header().Set("Retry-After", "1")
					http.Error(w, fmt.Sprintf("lost steal race: %v", berr), http.StatusConflict)
					return
				}
				s.steals.Add(1)
			}
			defer lease.Release()
		case errors.Is(err, grid.ErrHeld):
			s.conflicts.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("point lease held: %v", err), http.StatusConflict)
			return
		default:
			// Lease I/O degraded (ENOSPC and kin): compute unprotected, as
			// the partition workers do — the lease only prevents duplicate
			// work, and duplicates are harmless.
			s.logf("compute %s: lease degraded, running unprotected: %v", resp.Key[:12], err)
		}
	}

	// Heartbeat while computing; a lost lease (someone stole the point —
	// e.g. a hedge fencing us off as the straggler) cancels the compute.
	heartbeatDone := make(chan struct{})
	if lease != nil {
		go func() {
			defer close(heartbeatDone)
			t := time.NewTicker(s.Leases.BeatInterval())
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				if err := lease.Beat(); err != nil {
					if errors.Is(err, grid.ErrLost) {
						s.logf("compute %s: lease lost, canceling", resp.Key[:12])
						cancel()
						return
					}
					s.logf("compute %s: heartbeat error (will retry): %v", resp.Key[:12], err)
				}
			}
		}()
	} else {
		close(heartbeatDone)
	}

	sup := s.Sup
	res, st := sup.RunPointE(ctx, pt.Cfg, pt.Profile)
	cancel()
	<-heartbeatDone

	if !st.OK() {
		s.failCompute(w, st.Err)
		return
	}
	resp.Attempts = st.Attempts
	resp.ResultB64 = base64.StdEncoding.EncodeToString(sim.EncodeResultEntry(&res))
	s.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(resp)
}

// failCompute maps a failed point onto HTTP: deadline → 504, cancellation
// (drain, client gone, fenced off) → 503, terminal simulation failure →
// 500 with the diagnostic.
func (s *ComputeServer) failCompute(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = http.StatusServiceUnavailable
	}
	http.Error(w, fmt.Sprintf("compute failed: %v", err), code)
}
