package fleet

import (
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"selthrottle/internal/grid"
	"selthrottle/internal/sim"
	"selthrottle/internal/store"
)

// testSpec builds a tiny one-benchmark grid. Varying n keeps each test's
// points distinct, so the process-wide result cache never carries state
// from one test into another's assertions.
func testSpec(n uint64) GridSpec {
	return GridSpec{Exp: "run", ID: "C2", N: n, Warmup: n / 4, Depth: 14, KB: 16, Bench: "gzip"}
}

// attachTestStore attaches a fresh disk store for the test and restores the
// previous one afterwards. Returns the store and its directory (which the
// lease manager shares).
func attachTestStore(t *testing.T) (*store.Store, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir, nil)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	prev := sim.AttachDiskStore(st)
	t.Cleanup(func() { sim.AttachDiskStore(prev) })
	return st, dir
}

func specPoints(t *testing.T, spec GridSpec) []sim.GridPoint {
	t.Helper()
	opts, err := spec.SimOptions()
	if err != nil {
		t.Fatalf("SimOptions: %v", err)
	}
	pts, err := sim.EnumerateGrid(spec.Exp, spec.ID, opts)
	if err != nil {
		t.Fatalf("EnumerateGrid: %v", err)
	}
	if len(pts) == 0 {
		t.Fatal("empty test grid")
	}
	return pts
}

func computeURL(spec GridSpec, gridID string, index int, steal bool) string {
	q := spec.Query()
	if gridID != "" {
		q.Set("grid", gridID)
	}
	q.Set("index", strconv.Itoa(index))
	if steal {
		q.Set("steal", "1")
	}
	return "/v1/compute?" + q.Encode()
}

func serveCompute(t *testing.T, cs *ComputeServer, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	cs.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

// TestComputeServerHappyPath: a valid request computes the point, publishes
// it to the shared store, and returns the Result as exact codec bytes.
func TestComputeServerHappyPath(t *testing.T) {
	st, dir := attachTestStore(t)
	leases, err := grid.NewManager(dir, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(6010)
	pts := specPoints(t, spec)
	cs := &ComputeServer{Leases: leases, Owner: "w-test"}

	rec := serveCompute(t, cs, computeURL(spec, grid.ID(pts), 0, false))
	if rec.Code != 200 {
		t.Fatalf("compute: %d %s", rec.Code, rec.Body.String())
	}
	var resp ComputeResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Key != pts[0].Key().String() || resp.Worker != "w-test" || resp.Stolen {
		t.Fatalf("response = %+v", resp)
	}
	raw, err := base64.StdEncoding.DecodeString(resp.ResultB64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.DecodeResultEntry(raw)
	if err != nil {
		t.Fatalf("wire bytes do not round-trip the store codec: %v", err)
	}
	if res.IPC <= 0 {
		t.Fatalf("decoded result has no IPC: %+v", res)
	}
	if !st.Has(pts[0].Key()) {
		t.Fatal("computed point was not published to the shared store")
	}
	if s := cs.Stats(); s.Served != 1 || s.Conflicts != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestComputeServerRejections: malformed or mismatched requests map to the
// right status codes — 400 for bad parameters, 412 for grid disagreement,
// 503 while not ready.
func TestComputeServerRejections(t *testing.T) {
	attachTestStore(t)
	spec := testSpec(6020)
	pts := specPoints(t, spec)
	gridID := grid.ID(pts)
	cs := &ComputeServer{Owner: "w-test", MaxN: 1_000_000}

	for _, tc := range []struct {
		name string
		url  string
		want int
	}{
		{"missing exp", "/v1/compute?index=0", 400},
		{"bad n", "/v1/compute?exp=run&id=C2&n=zap&depth=14&kb=16&index=0", 400},
		{"depth out of range", "/v1/compute?exp=run&id=C2&n=6020&depth=99&kb=16&index=0", 400},
		{"unknown experiment id", "/v1/compute?exp=run&id=zzz&n=6020&depth=14&kb=16&index=0", 400},
		{"over instruction ceiling", "/v1/compute?exp=run&id=C2&n=99999999&depth=14&kb=16&index=0", 400},
		{"index out of bounds", computeURL(spec, gridID, len(pts), false), 400},
		{"negative index", computeURL(spec, gridID, -1, false), 400},
		{"grid mismatch", computeURL(spec, "feedfeedfeed", 0, false), 412},
	} {
		if rec := serveCompute(t, cs, tc.url); rec.Code != tc.want {
			t.Fatalf("%s: %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}

	cs.Ready = func() bool { return false }
	rec := serveCompute(t, cs, computeURL(spec, gridID, 0, false))
	if rec.Code != 503 || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("draining: %d, want 503 + Retry-After", rec.Code)
	}
}

// TestComputeServerLeaseConflictAndSteal: a held point lease yields 409 +
// Retry-After; steal=1 fences the holder off (its next Beat fails ErrLost)
// and serves the point.
func TestComputeServerLeaseConflictAndSteal(t *testing.T) {
	_, dir := attachTestStore(t)
	leases, err := grid.NewManager(dir, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(6030)
	pts := specPoints(t, spec)
	gridID := grid.ID(pts)
	cs := &ComputeServer{Leases: leases, Owner: "w-test"}

	held, err := leases.ClaimPoint(gridID, pts[0].Key(), "straggler", false)
	if err != nil {
		t.Fatalf("ClaimPoint: %v", err)
	}

	rec := serveCompute(t, cs, computeURL(spec, gridID, 0, false))
	if rec.Code != 409 || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("held lease: %d, want 409 + Retry-After", rec.Code)
	}
	if s := cs.Stats(); s.Conflicts != 1 {
		t.Fatalf("stats = %+v, want 1 conflict", s)
	}

	rec = serveCompute(t, cs, computeURL(spec, gridID, 0, true))
	if rec.Code != 200 {
		t.Fatalf("steal: %d %s", rec.Code, rec.Body.String())
	}
	var resp ComputeResponse
	json.NewDecoder(rec.Body).Decode(&resp)
	if !resp.Stolen {
		t.Fatalf("response = %+v, want Stolen", resp)
	}
	if err := held.Beat(); err == nil {
		t.Fatal("fenced-off holder's Beat still succeeds")
	}
	if s := cs.Stats(); s.Steals != 1 {
		t.Fatalf("stats = %+v, want 1 steal", s)
	}
}

// TestComputeServerFastPathSkipsLease: a published point is served without
// touching its lease — even a held lease does not block a store hit.
func TestComputeServerFastPathSkipsLease(t *testing.T) {
	_, dir := attachTestStore(t)
	leases, err := grid.NewManager(dir, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(6040)
	pts := specPoints(t, spec)
	gridID := grid.ID(pts)
	cs := &ComputeServer{Leases: leases, Owner: "w-test"}

	// Publish the point, then hold its lease as a third party.
	if rec := serveCompute(t, cs, computeURL(spec, gridID, 0, false)); rec.Code != 200 {
		t.Fatalf("publish: %d", rec.Code)
	}
	if _, err := leases.ClaimPoint(gridID, pts[0].Key(), "other", false); err != nil {
		t.Fatalf("ClaimPoint: %v", err)
	}
	if rec := serveCompute(t, cs, computeURL(spec, gridID, 0, false)); rec.Code != 200 {
		t.Fatalf("published point behind a held lease: %d, want 200", rec.Code)
	}
}

// TestComputeServerAdmission: the host's admission hook runs and its
// rejection short-circuits the compute.
func TestComputeServerAdmission(t *testing.T) {
	attachTestStore(t)
	spec := testSpec(6050)
	pts := specPoints(t, spec)
	admitted, released := 0, 0
	cs := &ComputeServer{
		Owner: "w-test",
		Admit: func(w http.ResponseWriter) (func(), bool) {
			admitted++
			if admitted > 1 {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "shed", http.StatusTooManyRequests)
				return nil, false
			}
			return func() { released++ }, true
		},
	}
	if rec := serveCompute(t, cs, computeURL(spec, grid.ID(pts), 0, false)); rec.Code != 200 {
		t.Fatalf("admitted request: %d", rec.Code)
	}
	if rec := serveCompute(t, cs, computeURL(spec, grid.ID(pts), 0, false)); rec.Code != 429 {
		t.Fatalf("shed request: %d, want 429", rec.Code)
	}
	if released != 1 {
		t.Fatalf("release ran %d times, want 1", released)
	}
}

// TestGridSpecLegacyFlagsRoundTrip: the identity flags survive the wire —
// a spec carrying LegacyFrontEnd/LegacyEventLedger encodes them into the
// query, parses back identically, and forwards them into sim.Options, so a
// fleet-served legacy-mode run exercises the same reference paths as a
// local one.
func TestGridSpecLegacyFlagsRoundTrip(t *testing.T) {
	spec := testSpec(6300)
	spec.LegacyFrontEnd = true
	spec.LegacyEventLedger = true

	back, err := gridSpecFrom(spec.Query())
	if err != nil {
		t.Fatalf("gridSpecFrom: %v", err)
	}
	if back != spec {
		t.Fatalf("spec did not round-trip: got %+v, want %+v", back, spec)
	}
	opts, err := spec.SimOptions()
	if err != nil {
		t.Fatalf("SimOptions: %v", err)
	}
	if !opts.LegacyFrontEnd || !opts.LegacyEventLedger {
		t.Fatalf("legacy flags not forwarded into sim.Options: %+v", opts)
	}

	// And a plain spec must leave both off.
	plain, err := testSpec(6300).SimOptions()
	if err != nil {
		t.Fatalf("SimOptions: %v", err)
	}
	if plain.LegacyFrontEnd || plain.LegacyEventLedger {
		t.Fatalf("legacy flags set on a plain spec: %+v", plain)
	}
}

func TestNormalizeBase(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"localhost:8080", "http://localhost:8080"},
		{"http://w0:9999", "http://w0:9999"},
		{"http://w0:9999/some/path?q=1", "http://w0:9999"},
		{"https://w0", "https://w0"},
	} {
		got, err := normalizeBase(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("normalizeBase(%q) = %q, %v; want %q", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "http://"} {
		if _, err := normalizeBase(bad); err == nil {
			t.Fatalf("normalizeBase(%q) succeeded", bad)
		}
	}
}
