package fleet

// NDJSON sweep-stream consumption. stserve's /v1/sweep streams one JSON
// object per line; over a faulty network the coordinator can receive a
// truncated final line (connection cut mid-object), interleaved garbage
// (a proxy error page spliced into the stream), or a clean mid-stream EOF.
// None of those may panic, and all of them must surface as one typed error
// carrying everything already decoded — a partially received sweep is
// partial progress, not garbage.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// SweepComparison is one averaged metric bundle of a sweep point (the JSON
// shape stserve emits).
type SweepComparison struct {
	Benchmark     string  `json:"benchmark"`
	Speedup       float64 `json:"speedup"`
	PowerSaving   float64 `json:"power_saving_pct"`
	EnergySaving  float64 `json:"energy_saving_pct"`
	EDImprovement float64 `json:"ed_improvement_pct"`
}

// SweepPoint is one NDJSON line of a /v1/sweep response.
type SweepPoint struct {
	X        int             `json:"x"`
	Average  SweepComparison `json:"average"`
	Failures []string        `json:"failures,omitempty"`
}

// StreamError is the typed failure of an NDJSON stream consumer: where the
// stream went bad (1-based line number), the offending bytes (bounded for
// display), and the underlying cause — a JSON syntax error for garbage, an
// io error for a cut transport, io.ErrUnexpectedEOF for a line the
// connection died in the middle of.
type StreamError struct {
	Line int    // 1-based index of the bad line
	Data string // offending bytes, truncated for display
	Err  error
}

// Error locates and describes the stream failure.
func (e *StreamError) Error() string {
	if e.Data == "" {
		return fmt.Sprintf("fleet: sweep stream line %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("fleet: sweep stream line %d (%q): %v", e.Line, e.Data, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *StreamError) Unwrap() error { return e.Err }

// streamErrData bounds the offending-bytes excerpt in a StreamError.
const streamErrData = 64

func newStreamError(line int, data []byte, err error) *StreamError {
	d := data
	if len(d) > streamErrData {
		d = d[:streamErrData]
	}
	return &StreamError{Line: line, Data: string(d), Err: err}
}

// maxStreamLine bounds one NDJSON line. A line past this is not a sweep
// point, it is garbage or an attack; bounding it keeps a hostile or
// corrupted stream from ballooning memory.
const maxStreamLine = 1 << 20

// DecodeSweepStream consumes an NDJSON sweep stream, returning every point
// decoded before the stream ended or went bad. A clean end (EOF at a line
// boundary, trailing newline optional) returns a nil error. Anything else —
// a line that is not valid JSON, a final line cut mid-object, a transport
// read error, an oversized line — returns the decoded prefix plus a
// *StreamError; it never panics, whatever bytes arrive (the fuzz test's
// charter). Blank lines are tolerated and skipped.
func DecodeSweepStream(r io.Reader) ([]SweepPoint, error) {
	br := bufio.NewReader(r)
	var points []SweepPoint
	line := 0
	for {
		data, err := br.ReadBytes('\n')
		complete := err == nil
		data = bytes.TrimSuffix(data, []byte("\n"))
		data = bytes.TrimSuffix(data, []byte("\r"))
		if len(bytes.TrimSpace(data)) > 0 {
			line++
			if len(data) > maxStreamLine {
				return points, newStreamError(line, data, fmt.Errorf("line exceeds %d bytes", maxStreamLine))
			}
			var pt SweepPoint
			if jerr := json.Unmarshal(data, &pt); jerr != nil {
				// An undecodable final fragment at EOF is a cut, not garbage.
				if !complete && err == io.EOF {
					return points, newStreamError(line, data, io.ErrUnexpectedEOF)
				}
				return points, newStreamError(line, data, jerr)
			}
			points = append(points, pt)
		}
		if err != nil {
			if err == io.EOF {
				return points, nil
			}
			return points, newStreamError(line+1, nil, err)
		}
	}
}
