package fleet

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// brokenReader delivers its payload, then fails with a transport error.
type brokenReader struct {
	data string
	err  error
	off  int
}

func (r *brokenReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

const sweepLine = `{"x":14,"average":{"benchmark":"average","speedup":1.02,"power_saving_pct":20.1,"energy_saving_pct":18.7,"ed_improvement_pct":17.2}}`

func TestDecodeSweepStreamClean(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   string
		want int
	}{
		{"empty", "", 0},
		{"blank lines only", "\n\n  \n", 0},
		{"one line with newline", sweepLine + "\n", 1},
		{"one line without trailing newline", sweepLine, 1},
		{"crlf line endings", sweepLine + "\r\n" + sweepLine + "\r\n", 2},
		{"blank lines interleaved", sweepLine + "\n\n" + sweepLine + "\n", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pts, err := DecodeSweepStream(strings.NewReader(tc.in))
			if err != nil {
				t.Fatalf("err = %v", err)
			}
			if len(pts) != tc.want {
				t.Fatalf("decoded %d points, want %d", len(pts), tc.want)
			}
			if tc.want > 0 && (pts[0].X != 14 || pts[0].Average.Speedup != 1.02) {
				t.Fatalf("point = %+v", pts[0])
			}
		})
	}
}

// TestDecodeSweepStreamTruncatedFinalLine: a connection cut mid-object is a
// typed unexpected-EOF error carrying the decoded prefix, never a panic and
// never a silent short result.
func TestDecodeSweepStreamTruncatedFinalLine(t *testing.T) {
	in := sweepLine + "\n" + sweepLine[:47]
	pts, err := DecodeSweepStream(strings.NewReader(in))
	if len(pts) != 1 {
		t.Fatalf("decoded %d points before the cut, want 1", len(pts))
	}
	var se *StreamError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StreamError", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF cause", err)
	}
	if se.Line != 2 || se.Data == "" {
		t.Fatalf("StreamError = %+v, want line 2 with excerpt", se)
	}
}

// TestDecodeSweepStreamGarbage: non-JSON bytes (a proxy's HTML error page,
// say) are a typed error locating the bad line, with prior points kept.
func TestDecodeSweepStreamGarbage(t *testing.T) {
	in := sweepLine + "\n<html>502 Bad Gateway</html>\n" + sweepLine + "\n"
	pts, err := DecodeSweepStream(strings.NewReader(in))
	if len(pts) != 1 {
		t.Fatalf("decoded %d points before the garbage, want 1", len(pts))
	}
	var se *StreamError
	if !errors.As(err, &se) || se.Line != 2 {
		t.Fatalf("err = %v, want *StreamError at line 2", err)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatal("complete garbage line misclassified as a cut")
	}
	if !strings.Contains(se.Data, "<html>") {
		t.Fatalf("excerpt %q does not show the offending bytes", se.Data)
	}
}

// TestDecodeSweepStreamReaderError: a transport failure mid-stream surfaces
// as a typed error wrapping the transport's own error.
func TestDecodeSweepStreamReaderError(t *testing.T) {
	cause := errors.New("read tcp: connection reset by peer")
	pts, err := DecodeSweepStream(&brokenReader{data: sweepLine + "\n", err: cause})
	if len(pts) != 1 {
		t.Fatalf("decoded %d points before the failure, want 1", len(pts))
	}
	var se *StreamError
	if !errors.As(err, &se) || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want *StreamError wrapping the transport error", err)
	}
}

// TestDecodeSweepStreamExcerptBounded: the offending-bytes excerpt in the
// error is bounded however large the bad line is.
func TestDecodeSweepStreamExcerptBounded(t *testing.T) {
	_, err := DecodeSweepStream(strings.NewReader(strings.Repeat("garbage ", 100) + "\n"))
	var se *StreamError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StreamError", err)
	}
	if len(se.Data) > streamErrData {
		t.Fatalf("excerpt is %d bytes, bound is %d", len(se.Data), streamErrData)
	}
}

// FuzzDecodeSweepStream is the no-panic charter: whatever bytes arrive —
// truncations, garbage, interleavings, binary noise — the consumer returns
// (points, error) and if the error is non-nil it is a *StreamError.
func FuzzDecodeSweepStream(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(sweepLine + "\n"))
	f.Add([]byte(sweepLine + "\n" + sweepLine[:30]))
	f.Add([]byte("<html>502</html>\n"))
	f.Add([]byte("{\"x\":1,\n\"y\":2}\n"))
	f.Add([]byte("\x00\xff\xfe binary noise\n" + sweepLine))
	f.Add([]byte("\n\r\n  \n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := DecodeSweepStream(strings.NewReader(string(data)))
		if err != nil {
			var se *StreamError
			if !errors.As(err, &se) {
				t.Fatalf("error is not a *StreamError: %v", err)
			}
			if se.Line < 1 {
				t.Fatalf("StreamError line %d < 1", se.Line)
			}
		}
		_ = pts
	})
}
