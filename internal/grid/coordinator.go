package grid

// The coordinator: spawn one worker process per partition, watch each
// through two independent channels — the process itself (wait status) and
// its lease file (heartbeat liveness) — and recover from both failure
// shapes. A dead process (crash, SIGKILL, OOM) is detected by wait and its
// lease removed outright, since process death is strictly stronger evidence
// than lease expiry. A frozen process (alive but not beating) is detected by
// lease expiry and killed before its lease is reclaimed, so the partition
// never has two live computers. Respawns are bounded and jitter-backed like
// the supervisor's point retries; a partition that exhausts them is reported
// lost, and the caller (hpca03) computes it in-process — the coordinator
// itself is the survivor of last resort.

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"time"

	"selthrottle/internal/sim"
	"selthrottle/internal/xrand"
)

// PartitionState classifies a partition's final outcome.
type PartitionState uint8

// Partition outcomes.
const (
	// PartDone: the worker completed its points (exit 0).
	PartDone PartitionState = iota + 1
	// PartFailed: the worker completed but some points terminally failed
	// (exit 1). Deterministic — never respawned.
	PartFailed
	// PartLost: the partition's workers kept dying; respawn budget
	// exhausted. The caller must compute these points itself.
	PartLost
)

// String names the state.
func (s PartitionState) String() string {
	switch s {
	case PartDone:
		return "done"
	case PartFailed:
		return "failed"
	case PartLost:
		return "lost"
	}
	return "unknown"
}

// PartitionOutcome reports one partition's supervision history.
type PartitionOutcome struct {
	Part     int
	State    PartitionState
	Respawns int   // worker processes restarted after crash/freeze
	Err      error // last crash/freeze diagnosis (informational)
}

// Worker exit codes (the stworker contract the coordinator interprets).
const (
	// ExitOK: partition complete, every point published.
	ExitOK = 0
	// ExitPointFailures: partition complete, some points terminally failed
	// (deterministic; respawning cannot help).
	ExitPointFailures = 1
	// ExitUsage: bad flags.
	ExitUsage = 2
	// ExitInterrupted: canceled by signal before finishing.
	ExitInterrupted = 3
	// ExitLeaseHeld: a live holder owns the partition lease.
	ExitLeaseHeld = 4
)

// CoordinatorOptions configures Coordinate.
type CoordinatorOptions struct {
	// Parts is the partition count (workers 0..Parts-1).
	Parts int
	// GridID identifies the grid (lease naming).
	GridID string
	// Leases manages the shared lease directory. Required.
	Leases *Manager
	// Spawn builds the (unstarted) worker command for a partition attempt
	// (attempt 0 is the first launch; respawns count up). Callers injecting
	// faults arm them on attempt 0 only, so a respawn models recovery from
	// a one-shot crash rather than a deterministic crash loop.
	Spawn func(part, attempt int) *exec.Cmd
	// Respawns bounds restarts per partition (crash/freeze only; exit 1 is
	// terminal). Default 2.
	Respawns int
	// JitterSeed seeds respawn backoff jitter (0 selects a fixed default).
	JitterSeed uint64
	// Logf, when non-nil, receives supervision events.
	Logf func(format string, args ...any)
}

func (o *CoordinatorOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Coordinate runs and supervises Parts workers to completion, reclaiming
// and respawning crashed or frozen ones. It returns one outcome per
// partition; it does not itself error on lost partitions — degradation
// policy belongs to the caller.
func Coordinate(ctx context.Context, opts CoordinatorOptions) []PartitionOutcome {
	if opts.Respawns == 0 {
		opts.Respawns = 2
	}
	outcomes := make([]PartitionOutcome, opts.Parts)
	done := make(chan int)
	for part := 0; part < opts.Parts; part++ {
		go func(part int) {
			defer func() { done <- part }()
			outcomes[part] = opts.supervisePartition(ctx, part)
		}(part)
	}
	for range outcomes {
		<-done
	}
	return outcomes
}

// supervisePartition drives one partition through spawn/monitor/reclaim
// cycles until it completes or exhausts its respawn budget.
func (opts *CoordinatorOptions) supervisePartition(ctx context.Context, part int) PartitionOutcome {
	out := PartitionOutcome{Part: part}
	lease := LeaseName(opts.GridID, part, opts.Parts)
	rng := xrand.New(xrand.Hash2(opts.JitterSeed|1, uint64(part)))
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			out.State, out.Err = PartLost, ctx.Err()
			return out
		}
		code, err := opts.runWorkerOnce(ctx, part, attempt, lease)
		switch {
		case err == nil && code == ExitOK:
			out.State = PartDone
			return out
		case err == nil && code == ExitPointFailures:
			// Deterministic point failures: the worker finished its
			// partition and the failures are recorded in the store of
			// statuses the merge will degrade on. Respawning reruns the
			// same deterministic failure — don't.
			out.State = PartFailed
			return out
		default:
			if err == nil {
				err = fmt.Errorf("grid: worker p%d exited %d", part, code)
			}
			out.Err = err
			opts.logf("coordinator: p%d attempt %d: %v", part, attempt+1, err)
		}
		if attempt >= opts.Respawns {
			out.State = PartLost
			return out
		}
		out.Respawns++
		// Jittered backoff in [b/2, b], the supervisor's retry discipline.
		d := backoff/2 + time.Duration(rng.Uint64()%uint64(backoff/2+1))
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			out.State, out.Err = PartLost, ctx.Err()
			return out
		case <-t.C:
		}
		// Saturating doubling (sim.MaxBackoff): respawn budgets are small
		// today, but unchecked doubling overflows time.Duration at high
		// attempt counts and a negative timer fires immediately.
		if backoff >= sim.MaxBackoff/2 {
			backoff = sim.MaxBackoff
		} else {
			backoff *= 2
		}
	}
}

// errWorkerFrozen diagnoses a worker whose lease expired while its process
// stayed alive.
var errWorkerFrozen = errors.New("grid: worker frozen (lease expired while process alive)")

// runWorkerOnce spawns one worker for the partition and monitors it to
// termination: process exit on one side, lease liveness on the other. A
// frozen worker is SIGKILLed. On abnormal death the partition lease is
// removed — safe exactly because the process has been waited on (death is
// proven, not inferred), so no live holder can remain.
func (opts *CoordinatorOptions) runWorkerOnce(ctx context.Context, part, attempt int, lease string) (exitCode int, err error) {
	cmd := opts.Spawn(part, attempt)
	if err := cmd.Start(); err != nil {
		return -1, fmt.Errorf("grid: spawn p%d: %w", part, err)
	}
	waitc := make(chan error, 1)
	go func() { waitc <- cmd.Wait() }()

	obs := opts.Leases.Observe(lease)
	poll := opts.Leases.BeatInterval()
	t := time.NewTicker(poll)
	defer t.Stop()
	var frozen bool
	var werr error
loop:
	for {
		select {
		case werr = <-waitc:
			break loop
		case <-ctx.Done():
			cmd.Process.Kill()
			<-waitc
			return -1, ctx.Err()
		case <-t.C:
			if st, oerr := obs.Check(); oerr == nil && st == StateExpired {
				// The process is alive (wait hasn't returned) but its lease
				// stopped moving: frozen. Kill it, then reclaim below with
				// death proven by wait.
				frozen = true
				opts.logf("coordinator: p%d lease expired with process alive; killing", part)
				cmd.Process.Kill()
				werr = <-waitc
				break loop
			}
		}
	}

	if werr == nil {
		return ExitOK, nil
	}
	var xerr *exec.ExitError
	if errors.As(werr, &xerr) {
		code := xerr.ExitCode()
		if code == ExitPointFailures {
			return code, nil
		}
		// Crash (signal death reports -1), freeze, usage error, or a lease
		// dispute: the process is dead — waited on — so removing its lease
		// cannot orphan a live holder.
		if rerr := opts.Leases.Remove(lease); rerr != nil {
			opts.logf("coordinator: p%d lease reclaim: %v", part, rerr)
		}
		if frozen {
			return code, fmt.Errorf("%w: p%d", errWorkerFrozen, part)
		}
		return code, fmt.Errorf("grid: worker p%d died: %w", part, werr)
	}
	return -1, fmt.Errorf("grid: worker p%d wait: %w", part, werr)
}
