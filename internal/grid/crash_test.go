package grid

// Real-subprocess crash-recovery tests: build the actual hpca03 and
// stworker binaries, shard a figure across 3 workers over a shared store,
// kill one mid-grid (self-SIGKILL via the injected process fault), and
// require the coordinator to recover AND the final report to be
// byte-identical to a clean single-process run. This is the tentpole
// invariant of the multi-worker subsystem proven end-to-end, not simulated:
// real processes, real signals, real leases on a real filesystem.

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binaries builds hpca03 and stworker once per test process.
func binaries(t *testing.T) (hpca03, stworker string) {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "grid-crash-bin")
		if buildErr != nil {
			return
		}
		for _, pkg := range []string{"hpca03", "stworker"} {
			out, err := exec.Command("go", "build", "-o",
				filepath.Join(buildDir, pkg), "selthrottle/cmd/"+pkg).CombinedOutput()
			if err != nil {
				buildErr = fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building binaries: %v", buildErr)
	}
	return filepath.Join(buildDir, "hpca03"), filepath.Join(buildDir, "stworker")
}

// fastArgs is the shared fast grid selection: fig3 (64 points) at a small
// instruction budget.
func fastArgs(storeDir string) []string {
	return []string{"-exp", "fig3", "-n", "8000", "-warmup", "2000", "-store", storeDir}
}

// runBin runs a binary capturing stdout and stderr separately.
func runBin(t *testing.T, bin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code = 0
	if err != nil {
		xerr, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %s: %v", bin, err)
		}
		code = xerr.ExitCode()
	}
	return out.String(), errb.String(), code
}

// TestWorkerCrashRecoveryByteIdentical is the headline invariant: 3 workers
// shard the grid, worker 1 SIGKILLs itself after 2 points, the coordinator
// detects the death, reclaims the lease, respawns, and the final merged
// report is byte-identical to a clean single-process run.
func TestWorkerCrashRecoveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	hpca03, stworker := binaries(t)

	refOut, _, code := runBin(t, hpca03, fastArgs(t.TempDir())...)
	if code != 0 {
		t.Fatalf("single-process reference run exited %d", code)
	}
	if !strings.Contains(refOut, "Figure 3") {
		t.Fatalf("reference run produced no figure:\n%s", refOut)
	}

	args := append(fastArgs(t.TempDir()),
		"-workers", "3",
		"-worker-bin", stworker,
		"-worker-fault", "1:kill-after=2",
		"-lease-ttl", "500ms",
	)
	gotOut, gotErr, code := runBin(t, hpca03, args...)
	if code != 0 {
		t.Fatalf("multi-worker crash run exited %d\nstderr:\n%s", code, gotErr)
	}
	if !strings.Contains(gotErr, "signal: killed") {
		t.Fatalf("worker 1 was never killed; stderr:\n%s", gotErr)
	}
	if gotOut != refOut {
		t.Fatalf("multi-worker output diverges from single-process run\n--- single-process ---\n%s\n--- multi-worker ---\n%s", refOut, gotOut)
	}
}

// TestWorkerFrozenHeartbeatRecovery: a worker whose heartbeats freeze while
// it keeps computing must be detected by lease expiry, killed by the
// coordinator, and replaced — with the final report still byte-identical.
func TestWorkerFrozenHeartbeatRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	hpca03, stworker := binaries(t)

	refOut, _, code := runBin(t, hpca03, fastArgs(t.TempDir())...)
	if code != 0 {
		t.Fatalf("single-process reference run exited %d", code)
	}

	args := append(fastArgs(t.TempDir()),
		"-workers", "3",
		"-worker-bin", stworker,
		"-worker-fault", "2:freeze-after=2",
		"-lease-ttl", "500ms",
	)
	gotOut, gotErr, code := runBin(t, hpca03, args...)
	if code != 0 {
		t.Fatalf("frozen-worker run exited %d\nstderr:\n%s", code, gotErr)
	}
	if !strings.Contains(gotErr, "lease expired with process alive") {
		t.Fatalf("frozen worker never detected; stderr:\n%s", gotErr)
	}
	if gotOut != refOut {
		t.Fatalf("frozen-worker output diverges from single-process run\n--- single-process ---\n%s\n--- multi-worker ---\n%s", refOut, gotOut)
	}
}

// TestMultiWorkerCleanRun: no faults — 3 workers complete their partitions
// and the merged output matches the single-process run (the boring path
// must work too, and the workers must actually be used: the coordinator
// logs the sharding).
func TestMultiWorkerCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	hpca03, stworker := binaries(t)

	refOut, _, code := runBin(t, hpca03, fastArgs(t.TempDir())...)
	if code != 0 {
		t.Fatalf("single-process reference run exited %d", code)
	}
	args := append(fastArgs(t.TempDir()),
		"-workers", "3", "-worker-bin", stworker, "-lease-ttl", "500ms")
	gotOut, gotErr, code := runBin(t, hpca03, args...)
	if code != 0 {
		t.Fatalf("clean multi-worker run exited %d\nstderr:\n%s", code, gotErr)
	}
	if !strings.Contains(gotErr, "sharding") {
		t.Fatalf("coordinator never sharded; stderr:\n%s", gotErr)
	}
	if gotOut != refOut {
		t.Fatalf("clean multi-worker output diverges from single-process run")
	}
}

// TestWorkerResumesFromWarmStore: a worker re-run over the SAME store after
// an interrupted sweep skips published points (disk hits) — resumability is
// what makes crash recovery cheap. Proven via the stworker exit path: a
// full clean worker run over a cold store, then the same run again; both
// exit 0, and the store is unchanged after the second (nothing recomputed
// differently).
func TestWorkerResumesFromWarmStore(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	_, stworker := binaries(t)
	storeDir := t.TempDir()
	args := []string{"-store", storeDir, "-part", "0", "-of", "3",
		"-exp", "fig3", "-n", "8000", "-warmup", "2000"}
	if _, stderr, code := runBin(t, stworker, args...); code != 0 {
		t.Fatalf("cold worker run exited %d\nstderr:\n%s", code, stderr)
	}
	before := storeSnapshot(t, storeDir)
	if _, stderr, code := runBin(t, stworker, args...); code != 0 {
		t.Fatalf("warm worker run exited %d\nstderr:\n%s", code, stderr)
	}
	after := storeSnapshot(t, storeDir)
	if len(before) == 0 {
		t.Fatal("cold run published nothing")
	}
	if len(before) != len(after) {
		t.Fatalf("warm re-run changed the store: %d entries before, %d after", len(before), len(after))
	}
	for name, sum := range before {
		if after[name] != sum {
			t.Fatalf("warm re-run rewrote %s", name)
		}
	}
}

// storeSnapshot maps every .res entry to its content for identity checks.
func storeSnapshot(t *testing.T, dir string) map[string]string {
	t.Helper()
	snap := make(map[string]string)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".res") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		snap[filepath.Base(path)] = string(data)
		return nil
	})
	if err != nil {
		t.Fatalf("walk store: %v", err)
	}
	return snap
}
