package grid

// Lease files: crash-detectable ownership of grid partitions over the
// shared store directory. A lease is a tiny file under <store>/leases/
// holding (owner, fencing token, heartbeat counter). Claiming is an atomic
// O_EXCL create — the kernel picks exactly one winner among racing
// processes — and renewal rewrites the file via the store's temp+rename
// protocol, bumping the counter. All I/O goes through the store.FS seam, so
// faultinject.DiskFS can subject the lease protocol to ENOSPC, torn writes,
// and read errors like any other store traffic.
//
// Expiry is decided entirely on the reader's monotonic clock: an observer
// records the local monotonic time at which it last saw the lease file's
// bytes CHANGE, and declares the lease expired when TTL elapses with no
// change. The lease file deliberately contains no timestamps — two
// processes' wall clocks never meet in a comparison, so clock skew, NTP
// steps, and suspend/resume warps cannot revive a dead worker or kill a
// live one. (The holder's own renewal cadence uses its own monotonic
// clock; the TTL must comfortably exceed the beat interval, which
// NewManager enforces by construction: beats run at TTL/4.)
//
// The fencing token is what keeps "at most one live holder" honest across
// takeovers: a stealer installs a fresh token, and every subsequent renewal
// by the old holder re-reads the file, sees a token it does not own, and
// returns ErrLost — the holder's signal to stop immediately. Between the
// steal and the old holder's next beat there is a bounded overlap window
// (inherent to leases without shared memory); it is harmless here because
// simulation points are pure and publication is last-rename-wins, but the
// ownership check still bounds it to one beat interval.

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"selthrottle/internal/store"
	"selthrottle/internal/xrand"
)

// Lease protocol constants.
const (
	// LeaseDirName is the subdirectory of the store root holding leases.
	LeaseDirName = "leases"
	// LeaseSuffix is the lease file extension.
	LeaseSuffix = ".lease"
	// DefaultTTL is the default expiry horizon: a lease whose file does not
	// change for this long (on the observer's monotonic clock) is dead.
	DefaultTTL = 3 * time.Second
)

// Lease errors.
var (
	// ErrHeld reports a claim attempt on a lease another holder won.
	ErrHeld = errors.New("grid: lease held")
	// ErrLost reports a renewal that found the lease stolen or destroyed:
	// the holder must stop treating the partition as its own.
	ErrLost = errors.New("grid: lease lost")
)

// Clock is a monotonic time source: readings are durations from an
// arbitrary fixed origin, comparable only to other readings from the same
// Clock. Tests inject warped clocks; production uses the runtime's
// monotonic reading.
type Clock func() time.Duration

// monotonicClock returns a Clock backed by the runtime monotonic clock
// (time.Since carries the monotonic reading, immune to wall-clock steps).
// The reading is reader-local and never written to disk or output: lease
// expiry is each observer's own judgement, so this is the grid package's
// one sanctioned clock read.
//
//st:wallclock — reader-local monotonic lease expiry; never reaches output
func monotonicClock() Clock {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// Manager owns the lease directory of one store and the expiry policy
// (TTL, clock) its observers apply. Safe for concurrent use.
type Manager struct {
	fs  store.FS
	dir string
	ttl time.Duration

	mu  sync.Mutex
	now Clock

	seq atomic.Uint64 // temp-file uniquifier
}

// NewManager opens (creating if necessary) the lease directory under
// storeDir on fsys (nil selects the real filesystem) with the given TTL
// (<= 0 selects DefaultTTL).
func NewManager(storeDir string, fsys store.FS, ttl time.Duration) (*Manager, error) {
	if fsys == nil {
		fsys = store.OSFS{}
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	m := &Manager{fs: fsys, dir: filepath.Join(storeDir, LeaseDirName), ttl: ttl, now: monotonicClock()}
	if err := fsys.MkdirAll(m.dir); err != nil {
		return nil, fmt.Errorf("grid: lease dir %s: %w", m.dir, err)
	}
	return m, nil
}

// TTL returns the manager's expiry horizon.
func (m *Manager) TTL() time.Duration { return m.ttl }

// BeatInterval returns the renewal cadence heartbeat loops should use: a
// quarter of the TTL, so a live holder beats several times per horizon.
func (m *Manager) BeatInterval() time.Duration { return m.ttl / 4 }

// SetClock installs a replacement monotonic source (tests warp it to force
// expiry without waiting). It must be called before observers are created.
func (m *Manager) SetClock(c Clock) {
	m.mu.Lock()
	m.now = c
	m.mu.Unlock()
}

func (m *Manager) clock() Clock {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// path returns the lease file location for name.
func (m *Manager) path(name string) string {
	return filepath.Join(m.dir, name+LeaseSuffix)
}

// leaseInfo is the decoded content of a lease file.
type leaseInfo struct {
	Owner string
	Token uint64
	Beat  uint64
}

// encodeLease renders the v1 lease format: a short line-oriented text file,
// trivially inspectable with cat during an incident.
func encodeLease(li leaseInfo) []byte {
	return []byte(fmt.Sprintf("stlease v1\nowner %s\ntoken %016x\nbeat %d\n", li.Owner, li.Token, li.Beat))
}

// parseLease decodes a lease file. Any deviation — torn write, foreign
// junk, future version — is an error the caller treats as an invalid
// (reclaimable-after-TTL) lease, never a crash.
func parseLease(data []byte) (leaseInfo, error) {
	var li leaseInfo
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 4 || lines[0] != "stlease v1" {
		return li, fmt.Errorf("grid: bad lease format")
	}
	for _, ln := range lines[1:] {
		field, val, ok := strings.Cut(ln, " ")
		if !ok {
			return li, fmt.Errorf("grid: bad lease line %q", ln)
		}
		switch field {
		case "owner":
			li.Owner = val
		case "token":
			t, err := strconv.ParseUint(val, 16, 64)
			if err != nil {
				return li, fmt.Errorf("grid: bad lease token %q", val)
			}
			li.Token = t
		case "beat":
			b, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return li, fmt.Errorf("grid: bad lease beat %q", val)
			}
			li.Beat = b
		default:
			return li, fmt.Errorf("grid: unknown lease field %q", field)
		}
	}
	if li.Owner == "" {
		return li, fmt.Errorf("grid: lease missing owner")
	}
	return li, nil
}

// TokenFallbackSeed is the documented seed of the fencing-token fallback
// stream: when crypto/rand is unavailable, tokens are drawn from a
// process-local splitmix64 stream seeded xrand.Hash2(TokenFallbackSeed,
// pid). Mixing the PID keeps two degraded processes from colliding, while
// the fixed seed makes a process's token sequence reproducible under test
// (seed the stream yourself via fallbackTokens to pin it exactly).
// (Simulation determinism is untouched either way — tokens never influence
// results, only who may keep computing them.)
const TokenFallbackSeed = 0x73746c6561736531 // "stlease1"

// tokenFallback is the lazily seeded degraded entropy stream; guarded by a
// mutex because several heartbeat goroutines may hit the fallback at once.
var tokenFallback struct {
	sync.Mutex
	rng *xrand.Rand
}

// fallbackTokens reseeds the fallback stream (tests pin it) and returns the
// generator for inspection.
func fallbackTokens(seed uint64) *xrand.Rand {
	tokenFallback.Lock()
	defer tokenFallback.Unlock()
	tokenFallback.rng = xrand.New(seed)
	return tokenFallback.rng
}

// newToken draws a fencing token. Uniqueness across processes is what
// matters; crypto/rand provides it without coordination, and the degraded
// fallback is the documented deterministic stream above.
func newToken() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		tokenFallback.Lock()
		defer tokenFallback.Unlock()
		if tokenFallback.rng == nil {
			tokenFallback.rng = xrand.New(xrand.Hash2(TokenFallbackSeed, uint64(os.Getpid())))
		}
		return tokenFallback.rng.Uint64()
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Lease is a held claim: the handle the holder renews, checks, and
// releases. Not safe for concurrent use by multiple goroutines without
// external ordering (the worker's single heartbeat loop is that ordering).
type Lease struct {
	m     *Manager
	name  string
	owner string
	token uint64
	beat  uint64
	lost  atomic.Bool
}

// Name returns the lease's name.
func (l *Lease) Name() string { return l.name }

// Token returns the lease's fencing token.
func (l *Lease) Token() uint64 { return l.token }

// Lost reports whether a renewal discovered the lease stolen.
func (l *Lease) Lost() bool { return l.lost.Load() }

// Acquire claims name with an atomic exclusive create. If the lease file
// already exists — live or stale — Acquire fails with ErrHeld wrapped over
// fs.ErrExist; callers that may be recovering from their own crash use
// Takeover to wait out the TTL and steal. Other I/O errors (ENOSPC and
// kin) are returned as-is for the caller's degradation policy.
func (m *Manager) Acquire(name, owner string) (*Lease, error) {
	l := &Lease{m: m, name: name, owner: owner, token: newToken(), beat: 1}
	data := encodeLease(leaseInfo{Owner: owner, Token: l.token, Beat: l.beat})
	if err := m.fs.CreateExclusive(m.path(name), data); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("%w: %s: %w", ErrHeld, name, err)
		}
		return nil, fmt.Errorf("grid: acquire %s: %w", name, err)
	}
	return l, nil
}

// Beat renews the lease: it verifies the file still carries the holder's
// token, rewrites it with the counter bumped (temp + atomic rename), and
// verifies again after the rename — closing the window where a concurrent
// steal's rename and the holder's rename race. A verification failure
// (either side) marks the lease lost and returns ErrLost: the holder must
// stop. I/O errors leave ownership undecided and are returned for retry at
// the next beat; the file's previous content remains valid, so a transient
// write failure costs liveness slack, not correctness.
func (l *Lease) Beat() error {
	if l.lost.Load() {
		return ErrLost
	}
	m := l.m
	cur, err := m.fs.ReadFile(m.path(l.name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			l.lost.Store(true)
			return fmt.Errorf("%w: %s: lease file removed", ErrLost, l.name)
		}
		return fmt.Errorf("grid: beat %s: %w", l.name, err)
	}
	li, perr := parseLease(cur)
	if perr != nil || li.Token != l.token {
		l.lost.Store(true)
		return fmt.Errorf("%w: %s: token changed", ErrLost, l.name)
	}
	next := leaseInfo{Owner: l.owner, Token: l.token, Beat: l.beat + 1}
	if err := l.m.writeLease(l.name, next); err != nil {
		return fmt.Errorf("grid: beat %s: %w", l.name, err)
	}
	// Post-rename verification: if a stealer's rename landed after ours, the
	// file no longer carries our token and the steal won.
	after, err := m.fs.ReadFile(m.path(l.name))
	if err == nil {
		if li2, perr := parseLease(after); perr == nil && li2.Token != l.token {
			l.lost.Store(true)
			return fmt.Errorf("%w: %s: stolen during renewal", ErrLost, l.name)
		}
	}
	l.beat = next.Beat
	return nil
}

// Release removes the lease file if this holder still owns it. Safe to call
// after losing the lease (no-op).
func (l *Lease) Release() {
	if l.lost.Load() {
		return
	}
	m := l.m
	if cur, err := m.fs.ReadFile(m.path(l.name)); err == nil {
		if li, perr := parseLease(cur); perr == nil && li.Token == l.token {
			m.fs.Remove(m.path(l.name))
		}
	}
	l.lost.Store(true)
}

// writeLease publishes lease content via the temp + atomic-rename protocol.
// The temp name carries the PID for the same reason the store's does: a
// stealer and a renewing holder are different processes writing one lease,
// and colliding temp paths would let one consume the other's temp file.
func (m *Manager) writeLease(name string, li leaseInfo) error {
	tmp := filepath.Join(m.dir, fmt.Sprintf(".tmp-%s.%d.%d", name, os.Getpid(), m.seq.Add(1)))
	if err := m.fs.WriteFile(tmp, encodeLease(li)); err != nil {
		m.fs.Remove(tmp)
		return err
	}
	if err := m.fs.Rename(tmp, m.path(name)); err != nil {
		m.fs.Remove(tmp)
		return err
	}
	return nil
}

// Remove deletes a lease file outright. Only for callers that have
// established the holder's death by means stronger than observation — a
// coordinator that has waited on the worker process itself.
func (m *Manager) Remove(name string) error {
	err := m.fs.Remove(m.path(name))
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// LeaseState classifies an observation.
type LeaseState uint8

// Lease observation states.
const (
	// StateLive: the lease file changed within TTL on the observer's clock
	// (or was observed too recently to judge).
	StateLive LeaseState = iota + 1
	// StateExpired: no change for at least TTL — the holder is dead or
	// frozen; the lease is reclaimable.
	StateExpired
	// StateMissing: no lease file exists.
	StateMissing
)

// String names the state.
func (s LeaseState) String() string {
	switch s {
	case StateLive:
		return "live"
	case StateExpired:
		return "expired"
	case StateMissing:
		return "missing"
	}
	return "unknown"
}

// Observer tracks one lease's liveness using only bytes-changed events and
// the observer's own monotonic clock. An unparsable (torn, foreign) lease
// file is just bytes that never change: it expires after TTL like any
// other dead lease, instead of crashing or being trusted.
type Observer struct {
	m          *Manager
	name       string
	lastRaw    []byte
	lastChange time.Duration
	seen       bool
	changes    int // observed byte-change events (first sighting included)
}

// Changes counts the byte-change events observed so far (the first sighting
// counts as one). A count that advances between Checks is proof of a live
// writer.
func (o *Observer) Changes() int { return o.changes }

// Observe starts watching name. The first Check starts the TTL clock.
func (m *Manager) Observe(name string) *Observer {
	return &Observer{m: m, name: name}
}

// Check reads the lease and classifies it. Read errors report StateLive
// with the error (an unreadable disk must not look like a dead worker).
func (o *Observer) Check() (LeaseState, error) {
	now := o.m.clock()
	data, err := o.m.fs.ReadFile(o.m.path(o.name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			o.seen = false
			return StateMissing, nil
		}
		return StateLive, fmt.Errorf("grid: observe %s: %w", o.name, err)
	}
	if !o.seen || !bytes.Equal(data, o.lastRaw) {
		o.lastRaw = append(o.lastRaw[:0], data...)
		o.lastChange = now()
		o.seen = true
		o.changes++
		return StateLive, nil
	}
	if now()-o.lastChange >= o.m.ttl {
		return StateExpired, nil
	}
	return StateLive, nil
}

// Steal takes over a lease the caller has established is reclaimable
// (expired by observation, or missing): O_EXCL create when missing, atomic
// rename-over with a fresh fencing token when present, then a read-back
// that rejects steals that have visibly already lost (ErrHeld). The
// read-back is a fast filter, not an arbiter — two racing stealers'
// rename/read pairs can interleave so both transiently believe they won.
// The fencing protocol is the arbiter: the lease file holds exactly one
// token (last rename wins), so every holder's next Beat converges the race
// to exactly one survivor, all others getting ErrLost within one beat
// interval. Callers therefore treat a successful Steal as provisional until
// the first Beat — which the worker's heartbeat loop does by construction.
func (m *Manager) Steal(name, owner string) (*Lease, error) {
	l, err := m.Acquire(name, owner)
	if err == nil {
		return l, nil
	}
	if !errors.Is(err, ErrHeld) {
		return nil, err
	}
	l = &Lease{m: m, name: name, owner: owner, token: newToken(), beat: 1}
	if err := m.writeLease(name, leaseInfo{Owner: owner, Token: l.token, Beat: l.beat}); err != nil {
		return nil, fmt.Errorf("grid: steal %s: %w", name, err)
	}
	after, err := m.fs.ReadFile(m.path(name))
	if err != nil {
		return nil, fmt.Errorf("grid: steal %s: verify: %w", name, err)
	}
	if li, perr := parseLease(after); perr != nil || li.Token != l.token {
		return nil, fmt.Errorf("%w: %s: lost steal race", ErrHeld, name)
	}
	return l, nil
}

// Takeover claims name, waiting out a stale holder: Acquire first; on
// ErrHeld, observe the lease on the local monotonic clock and steal once it
// expires. It gives up with ErrHeld as soon as the lease proves live (the
// file changes), and with ctx's error on cancellation. This is the restart
// path: a worker re-run over its own crash remnant must not be locked out
// forever by a file no one will ever renew.
func (m *Manager) Takeover(ctx interface{ Done() <-chan struct{} }, name, owner string) (*Lease, error) {
	l, err := m.Acquire(name, owner)
	if err == nil || !errors.Is(err, ErrHeld) {
		return l, err
	}
	obs := m.Observe(name)
	poll := m.ttl / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	baseline := -1 // Changes() after the first sighting; an advance past it is a renewal
	for {
		st, err := obs.Check()
		if err == nil {
			switch st {
			case StateExpired, StateMissing:
				return m.Steal(name, owner)
			case StateLive:
				if baseline < 0 {
					baseline = obs.Changes()
				} else if obs.Changes() > baseline && obs.parsable() {
					return nil, fmt.Errorf("%w: %s: live holder", ErrHeld, name)
				}
			}
		}
		t := time.NewTimer(poll)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("grid: takeover %s: canceled", name)
		case <-t.C:
		}
	}
}

// parsable reports whether the last observed bytes decode as a lease — a
// change to unparsable junk is damage, not a renewal, and must not convince
// a takeover that a live holder exists.
func (o *Observer) parsable() bool {
	if !o.seen {
		return false
	}
	_, err := parseLease(o.lastRaw)
	return err == nil
}
