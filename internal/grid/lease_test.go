package grid

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selthrottle/internal/faultinject"
	"selthrottle/internal/store"
)

// fakeClock is an injectable monotonic source tests warp at will.
type fakeClock struct{ now atomic.Int64 }

func (c *fakeClock) Clock() Clock            { return func() time.Duration { return time.Duration(c.now.Load()) } }
func (c *fakeClock) Advance(d time.Duration) { c.now.Add(int64(d)) }

// newTestManager builds a manager over a temp store dir with an injected
// clock, so expiry is driven by explicit warps, never by sleeping.
func newTestManager(t *testing.T, fsys store.FS, ttl time.Duration) (*Manager, *fakeClock) {
	t.Helper()
	m, err := NewManager(t.TempDir(), fsys, ttl)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	clk := &fakeClock{}
	m.SetClock(clk.Clock())
	return m, clk
}

func TestLeaseAcquireHeldRelease(t *testing.T) {
	m, _ := newTestManager(t, nil, time.Second)
	l, err := m.Acquire("g-p0-of1", "w0")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if _, err := m.Acquire("g-p0-of1", "w1"); !errors.Is(err, ErrHeld) {
		t.Fatalf("second Acquire = %v, want ErrHeld", err)
	}
	l.Release()
	if _, err := m.Acquire("g-p0-of1", "w1"); err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
}

// TestLeaseExpiryIsMonotonicLocal is the clock-hazard test: expiry must be
// decided purely by "bytes unchanged for TTL on the observer's own
// monotonic clock". The lease file carries no timestamps, so warping the
// observer's clock is the ONLY way to expire a lease without waiting —
// proving no cross-process wall-clock comparison exists to get wrong.
func TestLeaseExpiryIsMonotonicLocal(t *testing.T) {
	const ttl = 10 * time.Second // far beyond test runtime: only warps can expire it
	m, clk := newTestManager(t, nil, ttl)
	l, err := m.Acquire("g-p0-of2", "w0")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	obs := m.Observe("g-p0-of2")
	if st, err := obs.Check(); err != nil || st != StateLive {
		t.Fatalf("first Check = %v, %v; want live", st, err)
	}
	// Just under TTL with no beats: still live.
	clk.Advance(ttl - time.Millisecond)
	if st, _ := obs.Check(); st != StateLive {
		t.Fatalf("Check before TTL = %v, want live", st)
	}
	// A beat resets the horizon even with the clock warped to the brink.
	if err := l.Beat(); err != nil {
		t.Fatalf("Beat: %v", err)
	}
	if st, _ := obs.Check(); st != StateLive {
		t.Fatalf("Check after beat = %v, want live", st)
	}
	clk.Advance(ttl - time.Millisecond)
	if st, _ := obs.Check(); st != StateLive {
		t.Fatalf("Check %v after beat = %v, want live", ttl-time.Millisecond, st)
	}
	// TTL with no change: expired.
	clk.Advance(2 * time.Millisecond)
	if st, _ := obs.Check(); st != StateExpired {
		t.Fatalf("Check past TTL = %v, want expired", st)
	}
}

// TestLeaseStealFencing: after a steal, the old holder's next Beat returns
// ErrLost — the at-most-one-live-holder guarantee.
func TestLeaseStealFencing(t *testing.T) {
	m, clk := newTestManager(t, nil, time.Second)
	old, err := m.Acquire("g-p1-of3", "w-old")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	obs := m.Observe("g-p1-of3")
	obs.Check()
	clk.Advance(2 * time.Second)
	if st, _ := obs.Check(); st != StateExpired {
		t.Fatalf("lease not expired after warp")
	}
	thief, err := m.Steal("g-p1-of3", "w-new")
	if err != nil {
		t.Fatalf("Steal: %v", err)
	}
	if err := old.Beat(); !errors.Is(err, ErrLost) {
		t.Fatalf("old holder Beat = %v, want ErrLost", err)
	}
	if !old.Lost() {
		t.Fatal("old holder not marked lost")
	}
	if err := thief.Beat(); err != nil {
		t.Fatalf("thief Beat: %v", err)
	}
	// Once lost, the old holder's Release must not destroy the thief's lease.
	old.Release()
	if err := thief.Beat(); err != nil {
		t.Fatalf("thief Beat after old Release: %v", err)
	}
}

// TestLeaseStealRace is the no-two-live-holders stress check: racing
// stealers over one expired lease may transiently all believe they won (the
// read-back filter is not an arbiter), but the fencing protocol must
// converge every such race to exactly one survivor within one beat round —
// every other holder's Beat returns ErrLost. Run under -race this also
// exercises the protocol's concurrency.
func TestLeaseStealRace(t *testing.T) {
	m, clk := newTestManager(t, nil, time.Second)
	if _, err := m.Acquire("g-p0-of4", "w-dead"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	clk.Advance(5 * time.Second)
	const thieves = 8
	var wg sync.WaitGroup
	leases := make([]*Lease, thieves)
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := m.Steal("g-p0-of4", "thief")
			if err == nil {
				leases[i] = l
			} else if !errors.Is(err, ErrHeld) {
				t.Errorf("Steal: %v", err)
			}
		}(i)
	}
	wg.Wait()
	won := 0
	for _, l := range leases {
		if l != nil {
			won++
		}
	}
	if won < 1 {
		t.Fatal("no stealer won")
	}
	// Convergence: beat every provisional winner twice (a survivor's first
	// beat can itself be overtaken by a later provisional winner's first
	// beat; a second round settles on the last writer). Exactly one lease
	// must remain live.
	for round := 0; round < 2; round++ {
		for _, l := range leases {
			if l != nil && !l.Lost() {
				if err := l.Beat(); err != nil && !errors.Is(err, ErrLost) {
					t.Fatalf("Beat: %v", err)
				}
			}
		}
	}
	live := 0
	for _, l := range leases {
		if l != nil && !l.Lost() {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("%d live holders after convergence, want exactly 1 (of %d provisional winners)", live, won)
	}
}

// TestTakeover: a takeover waits out a dead holder and steals, but backs
// off with ErrHeld the moment the lease proves live.
func TestTakeover(t *testing.T) {
	t.Run("dead holder", func(t *testing.T) {
		m, clk := newTestManager(t, nil, 50*time.Millisecond)
		if _, err := m.Acquire("g-p2-of3", "w-dead"); err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		// Warp in the background so Takeover's polling observer sees expiry.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
					clk.Advance(20 * time.Millisecond)
				}
			}
		}()
		l, err := m.Takeover(context.Background(), "g-p2-of3", "w-new")
		if err != nil {
			t.Fatalf("Takeover over dead holder: %v", err)
		}
		if err := l.Beat(); err != nil {
			t.Fatalf("Beat after takeover: %v", err)
		}
	})
	t.Run("live holder", func(t *testing.T) {
		m, _ := newTestManager(t, nil, 50*time.Millisecond)
		holder, err := m.Acquire("g-p0-of3", "w-live")
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // a live holder beating on schedule
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(m.BeatInterval()):
					holder.Beat()
				}
			}
		}()
		_, err = m.Takeover(context.Background(), "g-p0-of3", "w-intruder")
		close(stop)
		wg.Wait()
		if !errors.Is(err, ErrHeld) {
			t.Fatalf("Takeover against live holder = %v, want ErrHeld", err)
		}
	})
	t.Run("canceled", func(t *testing.T) {
		m, _ := newTestManager(t, nil, 10*time.Second)
		if _, err := m.Acquire("g-p1-of2", "w0"); err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		if _, err := m.Takeover(ctx, "g-p1-of2", "w1"); err == nil {
			t.Fatal("Takeover returned nil on canceled context")
		}
	})
}

// TestLeaseENOSPC: injected ENOSPC on lease creation surfaces as a plain
// I/O error (not ErrHeld) — the signal the worker uses to degrade to
// leaseless operation instead of dying.
func TestLeaseENOSPC(t *testing.T) {
	fsys := faultinject.NewDiskFS(store.OSFS{}, faultinject.DiskFault{
		Kind:  faultinject.DiskENOSPC,
		Op:    faultinject.OpCreate,
		Match: LeaseDirName,
	})
	m, _ := newTestManager(t, fsys, time.Second)
	_, err := m.Acquire("g-p0-of1", "w0")
	if err == nil {
		t.Fatal("Acquire succeeded under ENOSPC")
	}
	if errors.Is(err, ErrHeld) {
		t.Fatalf("ENOSPC misreported as ErrHeld: %v", err)
	}
}

// TestLeaseUnparsableExpires: a torn or foreign lease file is bytes that
// never change — it expires after TTL like any dead lease, and Steal
// replaces it.
func TestLeaseUnparsableExpires(t *testing.T) {
	m, clk := newTestManager(t, nil, time.Second)
	if err := (store.OSFS{}).WriteFile(m.path("g-p0-of2"), []byte("junk\x00bytes")); err != nil {
		t.Fatalf("write junk: %v", err)
	}
	obs := m.Observe("g-p0-of2")
	if st, err := obs.Check(); err != nil || st != StateLive {
		t.Fatalf("first Check = %v, %v", st, err)
	}
	clk.Advance(2 * time.Second)
	if st, _ := obs.Check(); st != StateExpired {
		t.Fatalf("junk lease state = %v, want expired", st)
	}
	l, err := m.Steal("g-p0-of2", "w-new")
	if err != nil {
		t.Fatalf("Steal over junk: %v", err)
	}
	if err := l.Beat(); err != nil {
		t.Fatalf("Beat after steal-over-junk: %v", err)
	}
}

// TestTokenFallbackDeterministic pins the degraded fencing-token path: when
// crypto/rand is unavailable, tokens come from the documented splitmix64
// stream (TokenFallbackSeed), so a reseeded stream reproduces the exact
// token sequence — no wall-clock entropy anywhere.
func TestTokenFallbackDeterministic(t *testing.T) {
	rng := fallbackTokens(TokenFallbackSeed)
	a, b := rng.Uint64(), rng.Uint64()
	rng = fallbackTokens(TokenFallbackSeed)
	if got := rng.Uint64(); got != a {
		t.Fatalf("reseeded fallback stream diverged: %#x != %#x", got, a)
	}
	if got := rng.Uint64(); got != b {
		t.Fatalf("reseeded fallback stream diverged at draw 2: %#x != %#x", got, b)
	}
	if a == b {
		t.Fatalf("fallback stream repeated a token: %#x", a)
	}
	// The production seed mixes the PID so two degraded processes draw
	// from different streams.
	if TokenFallbackSeed == 0 {
		t.Fatal("TokenFallbackSeed must be a documented non-zero constant")
	}
}
