// Package grid shards a figure/sweep grid across worker processes and makes
// the sharding fault-tolerant. The substrate is everything the earlier
// layers already guarantee: simulation points are pure functions of
// (Config, Profile); the disk store is crash-safe, content-addressed, and
// last-rename-wins under concurrent publication; and sim.EnumerateGrid
// gives every process the same deterministic point list. On top of that,
// this package adds the only genuinely distributed pieces — deterministic
// partition ownership (worker i of N owns the points whose content address
// hashes to i), lease files over the shared store directory (atomic O_EXCL
// claims, heartbeat renewal, reader-local monotonic TTL expiry), a worker
// loop (claim, compute owned points through the disk tier, heartbeat, exit
// cleanly on cancellation), and a coordinator that spawns workers, detects
// dead or frozen ones, reclaims their leases, and respawns with bounded
// jittered retries. Every reassigned point recomputes bit-identically, so a
// crashed worker costs wall-clock, never correctness.
package grid

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"selthrottle/internal/sim"
	"selthrottle/internal/store"
)

// Owns reports whether partition part of `of` owns the point with content
// address k: the top 8 bytes of the SHA-256 taken mod the worker count.
// Content addresses are uniformly distributed, so partitions are balanced
// without coordination; and because the key is canonical, every process
// agrees on ownership without exchanging a single message.
func Owns(k store.Key, part, of int) bool {
	if of <= 1 {
		return true
	}
	return int(binary.BigEndian.Uint64(k[:8])%uint64(of)) == part
}

// PartitionPoints filters a grid to the points partition part of `of` owns,
// preserving enumeration order.
func PartitionPoints(points []sim.GridPoint, part, of int) []sim.GridPoint {
	var mine []sim.GridPoint
	for _, g := range points {
		if Owns(g.Key(), part, of) {
			mine = append(mine, g)
		}
	}
	return mine
}

// ID derives a short stable identifier for a grid: the hash of its point
// keys in enumeration order. Lease files embed it so two different sweeps
// sharing one store directory cannot collide on partition names, and a
// worker spawned with mismatched flags claims a lease no coordinator is
// watching rather than silently corrupting another sweep's liveness
// tracking.
func ID(points []sim.GridPoint) string {
	h := sha256.New()
	for _, g := range points {
		k := g.Key()
		h.Write(k[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// LeaseName names the lease file guarding one partition of one grid.
func LeaseName(gridID string, part, of int) string {
	return fmt.Sprintf("%s-p%d-of%d", gridID, part, of)
}
