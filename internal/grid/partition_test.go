package grid

import (
	"testing"

	"selthrottle/internal/sim"
	"selthrottle/internal/store"
)

// testGrid enumerates a small real grid (fig3 under a fast option set).
func testGrid(t *testing.T) []sim.GridPoint {
	t.Helper()
	pts, err := sim.EnumerateGrid("fig3", "", sim.Options{Instructions: 8000, Warmup: 2000})
	if err != nil {
		t.Fatalf("EnumerateGrid: %v", err)
	}
	if len(pts) < 16 {
		t.Fatalf("grid too small to test partitioning: %d points", len(pts))
	}
	return pts
}

// TestPartitionCoversExactlyOnce is the sharding invariant: for any worker
// count, every point is owned by exactly one partition, and partitioning
// preserves the grid.
func TestPartitionCoversExactlyOnce(t *testing.T) {
	pts := testGrid(t)
	for _, of := range []int{1, 2, 3, 5, 8} {
		owned := make(map[store.Key]int)
		total := 0
		for part := 0; part < of; part++ {
			for _, g := range PartitionPoints(pts, part, of) {
				owned[g.Key()]++
				total++
			}
		}
		if total != len(pts) {
			t.Errorf("of=%d: partitions hold %d points, grid has %d", of, total, len(pts))
		}
		for k, n := range owned {
			if n != 1 {
				t.Errorf("of=%d: key %s owned %d times", of, k, n)
			}
		}
	}
}

// TestPartitionBalance checks the hash spreads a real grid: with 3 workers
// over 64 points no partition may be empty or hold nearly everything.
func TestPartitionBalance(t *testing.T) {
	pts := testGrid(t)
	const of = 3
	for part := 0; part < of; part++ {
		n := len(PartitionPoints(pts, part, of))
		if n == 0 {
			t.Errorf("partition %d/%d is empty over %d points", part, of, len(pts))
		}
		if n > len(pts)*3/4 {
			t.Errorf("partition %d/%d holds %d of %d points — hash not spreading", part, of, n, len(pts))
		}
	}
}

// TestOwnsDeterministic: ownership is a pure function of the key.
func TestOwnsDeterministic(t *testing.T) {
	pts := testGrid(t)
	for _, g := range pts[:8] {
		k := g.Key()
		for part := 0; part < 3; part++ {
			a, b := Owns(k, part, 3), Owns(k, part, 3)
			if a != b {
				t.Fatalf("Owns(%s, %d, 3) unstable", k, part)
			}
		}
	}
}

// TestGridID: stable for the same grid, distinct for different grids (two
// sweeps sharing a store directory must not collide on lease names).
func TestGridID(t *testing.T) {
	a := testGrid(t)
	b := testGrid(t)
	if ID(a) != ID(b) {
		t.Fatalf("grid ID unstable: %s vs %s", ID(a), ID(b))
	}
	other, err := sim.EnumerateGrid("fig4", "", sim.Options{Instructions: 8000, Warmup: 2000})
	if err != nil {
		t.Fatalf("EnumerateGrid(fig4): %v", err)
	}
	if ID(a) == ID(other) {
		t.Fatalf("different grids share ID %s", ID(a))
	}
	if name := LeaseName(ID(a), 1, 3); name != ID(a)+"-p1-of3" {
		t.Fatalf("LeaseName = %q", name)
	}
}
