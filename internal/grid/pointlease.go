package grid

// Point-granularity leases: the partition lease protocol applied to single
// grid points. A networked fleet dispatches points, not partitions, so the
// claim unit shrinks to match — and shrinking it is what delivers work
// stealing for free: any idle worker may claim an unleased point, and an
// expired point lease (its holder died or stalled mid-compute) is
// reclaimable by whoever notices first, exactly as partition leases are.
// The same fencing tokens bound duplicate holders to one beat interval,
// and the same purity + last-rename-wins store make the residual overlap
// harmless: a stolen point at worst computes twice, bit-identically.

import (
	"fmt"

	"selthrottle/internal/store"
)

// MonotonicClock returns a Clock backed by the runtime monotonic clock —
// the sanctioned production time source for lease expiry and any other
// reader-local liveness judgement (circuit breakers, hedging timers).
// Exported so dependent packages (internal/fleet) share the one annotated
// wall-clock site instead of growing their own.
func MonotonicClock() Clock { return monotonicClock() }

// PointLeaseName names the lease file guarding one grid point of one grid:
// the grid ID plus a 12-hex prefix of the point's content address. The
// prefix is ample — a sweep has thousands of points, not 2^48 — and keeps
// lease filenames short enough to eyeball in a directory listing.
func PointLeaseName(gridID string, k store.Key) string {
	return fmt.Sprintf("%s-pt-%x", gridID, k[:6])
}

// ClaimPoint claims the lease for point k of gridID. With steal=false it
// only takes an unclaimed point (ErrHeld when a lease file exists, live or
// stale). With steal=true it forces a Steal: a fresh fencing token fences
// off the current holder, whose next Beat returns ErrLost. Steal-claims are
// provisional until the first successful Beat, per the Steal contract.
func (m *Manager) ClaimPoint(gridID string, k store.Key, owner string, steal bool) (*Lease, error) {
	name := PointLeaseName(gridID, k)
	l, err := m.Acquire(name, owner)
	if err == nil || !steal {
		return l, err
	}
	return m.Steal(name, owner)
}
