package grid

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"selthrottle/internal/store"
)

func TestPointLeaseName(t *testing.T) {
	k := store.Key{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04}
	got := PointLeaseName("cafe01", k)
	if want := "cafe01-pt-deadbeef0102"; got != want {
		t.Fatalf("PointLeaseName = %q, want %q", got, want)
	}
	// Distinct points of the same grid must never collide on a name.
	k2 := k
	k2[5] = 0xff
	if PointLeaseName("cafe01", k2) == got {
		t.Fatal("distinct keys share a lease name")
	}
}

// TestClaimPointAcquireAndConflict: a claimed point rejects a second
// non-steal claim with ErrHeld, and release frees it.
func TestClaimPointAcquireAndConflict(t *testing.T) {
	m, _ := newTestManager(t, nil, time.Second)
	var k store.Key
	k[0] = 0x42

	l, err := m.ClaimPoint("g1", k, "w0", false)
	if err != nil {
		t.Fatalf("ClaimPoint: %v", err)
	}
	if _, err := m.ClaimPoint("g1", k, "w1", false); !errors.Is(err, ErrHeld) {
		t.Fatalf("second claim = %v, want ErrHeld", err)
	}
	// The same key under a different grid ID is a different lease.
	if l2, err := m.ClaimPoint("g2", k, "w1", false); err != nil {
		t.Fatalf("claim under other grid: %v", err)
	} else {
		l2.Release()
	}
	l.Release()
	if l, err = m.ClaimPoint("g1", k, "w1", false); err != nil {
		t.Fatalf("claim after release: %v", err)
	}
	l.Release()
}

// TestClaimPointStealFencesHolder is the hedge-fencing contract: a steal
// claim succeeds against a live holder, whose very next Beat observes the
// foreign fencing token and returns ErrLost — the straggler cancels instead
// of publishing a duplicate claim of ownership.
func TestClaimPointStealFencesHolder(t *testing.T) {
	m, _ := newTestManager(t, nil, time.Second)
	var k store.Key
	k[0] = 0x43

	held, err := m.ClaimPoint("g1", k, "straggler", false)
	if err != nil {
		t.Fatalf("ClaimPoint: %v", err)
	}
	thief, err := m.ClaimPoint("g1", k, "hedge", true)
	if err != nil {
		t.Fatalf("steal claim: %v", err)
	}
	if err := held.Beat(); !errors.Is(err, ErrLost) {
		t.Fatalf("fenced holder's Beat = %v, want ErrLost", err)
	}
	// The thief's claim is provisional until a confirming Beat.
	if err := thief.Beat(); err != nil {
		t.Fatalf("thief's confirming Beat: %v", err)
	}
	thief.Release()
}

// TestClaimPointManyDistinct: point leases for a realistic sweep's worth of
// keys coexist under one grid without name collisions.
func TestClaimPointManyDistinct(t *testing.T) {
	m, _ := newTestManager(t, nil, time.Second)
	for i := 0; i < 64; i++ {
		// The lease name covers only k[:6]; vary the keys inside that prefix.
		var k store.Key
		copy(k[:], fmt.Sprintf("p%02d-of-64", i))
		l, err := m.ClaimPoint("g1", k, "w0", false)
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		defer l.Release()
	}
}
