package grid

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"selthrottle/internal/sim"
	"selthrottle/internal/store"
)

// stealFixture enumerates a small grid and attaches a fresh disk store.
// Instructions vary per test so the process-wide result cache never leaks
// points between tests.
func stealFixture(t *testing.T, n uint64) ([]sim.GridPoint, *store.Store, *Manager) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir, nil)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	prev := sim.AttachDiskStore(st)
	t.Cleanup(func() { sim.AttachDiskStore(prev) })
	opts := sim.Options{Instructions: n, Warmup: n / 4, Depth: 14, PredBytes: 8 << 10, ConfBytes: 8 << 10}
	pts, err := sim.EnumerateGrid("run", "C2", opts)
	if err != nil {
		t.Fatalf("EnumerateGrid: %v", err)
	}
	if len(pts) < 2 {
		t.Fatalf("grid too small for a steal test: %d points", len(pts))
	}
	m, err := NewManager(dir, nil, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return pts, st, m
}

// TestWorkerStealPassDrainsAbsentPartition: a worker that finishes its own
// partition with Steal enabled must claim and compute every point of the
// partition whose worker never showed up — the fleet's work-stealing floor.
func TestWorkerStealPassDrainsAbsentPartition(t *testing.T) {
	pts, st, m := stealFixture(t, 6210)

	foreign := 0
	for _, g := range pts {
		if !Owns(g.Key(), 0, 2) {
			foreign++
		}
	}
	if foreign == 0 {
		t.Skip("partition split left no foreign points")
	}

	rep, err := RunWorker(context.Background(), WorkerOptions{
		Points: pts, Part: 0, Of: 2,
		Owner: "w0", Leases: m, Steal: true,
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if rep.Computed != rep.Owned || rep.Failed != 0 {
		t.Fatalf("report = %+v, want full own partition computed", rep)
	}
	if rep.Stolen != foreign {
		t.Fatalf("stole %d points, want %d (the whole absent partition)", rep.Stolen, foreign)
	}
	for _, g := range pts {
		if k := g.Key(); !st.Has(k) {
			t.Fatalf("point %x missing from the store after the steal pass", k[:6])
		}
	}
}

// TestWorkerStealPassWaitsOutExpiredLease: a foreign point under a lease
// whose holder died (no heartbeats) is stolen only after the lease expires
// on the observer's monotonic clock — never while it might still be live.
func TestWorkerStealPassWaitsOutExpiredLease(t *testing.T) {
	pts, st, m := stealFixture(t, 6220)
	gridID := ID(pts)

	var heldKey store.Key
	found := false
	for _, g := range pts {
		if !Owns(g.Key(), 0, 2) {
			heldKey = g.Key()
			found = true
			break
		}
	}
	if !found {
		t.Skip("partition split left no foreign points")
	}
	// The dead worker: holds the point lease, never beats again.
	if _, err := m.ClaimPoint(gridID, heldKey, "dead-worker", false); err != nil {
		t.Fatalf("ClaimPoint: %v", err)
	}

	var mu sync.Mutex
	var logbuf strings.Builder
	rep, err := RunWorker(context.Background(), WorkerOptions{
		Points: pts, Part: 0, Of: 2,
		Owner: "w0", Leases: m, Steal: true,
		Logf: func(format string, args ...any) {
			mu.Lock()
			fmt.Fprintf(&logbuf, format+"\n", args...)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if !st.Has(heldKey) {
		t.Fatal("the dead worker's point was never rescued")
	}
	if rep.Stolen == 0 {
		t.Fatalf("report = %+v, want stolen points", rep)
	}
	mu.Lock()
	logs := logbuf.String()
	mu.Unlock()
	if !strings.Contains(logs, "stole expired point") {
		t.Fatalf("steal pass never reported the expired-lease steal; logs:\n%s", logs)
	}
}
