package grid

// The worker loop: claim a partition lease, compute the owned points through
// the process cache (whose disk tier is the shared store — publication is
// the store's crash-safe temp+fsync+rename), heartbeat while computing, and
// exit cleanly when canceled or when the lease is lost. A worker owns no
// figure-assembly logic at all: its entire output is content-addressed
// Results in the shared store, which is why a killed worker's partial
// progress is never wasted and a reassigned partition recomputes only the
// points the dead worker had not yet published.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"selthrottle/internal/sim"
)

// WorkerOptions configures one partition run.
type WorkerOptions struct {
	// Points is the full enumerated grid (every worker enumerates the same
	// one); Part/Of select the owned subset.
	Points []sim.GridPoint
	Part   int
	Of     int

	// Owner labels the lease (diagnostics only; the fencing token is the
	// identity that matters).
	Owner string

	// Leases, when non-nil, guards the partition with a lease: the worker
	// takes it over (waiting out a stale crash remnant), heartbeats it, and
	// stops if it is stolen. Nil runs leaseless.
	Leases *Manager

	// Supervise is the per-point run policy (deadline, retries, faults).
	Supervise sim.Supervisor

	// Steal enables the point-steal pass: a worker that finishes its own
	// partition sweeps the rest of the grid for points that are neither
	// published to the store nor covered by a live point lease, claims
	// them at point granularity, and computes them — a fast worker drains
	// a slow (or dead) one's backlog instead of idling. Requires Leases
	// and an attached disk store; silently skipped otherwise.
	Steal bool

	// FreezeBeats suppresses heartbeat renewal while computing continues —
	// the half-dead-process fault (test use only).
	FreezeBeats bool

	// AfterPoint, when non-nil, runs after each computed point with the
	// count of points finished so far (fault hooks arm kill-after here).
	AfterPoint func(done int)

	// Logf, when non-nil, receives progress and degradation notices.
	Logf func(format string, args ...any)
}

// WorkerReport summarizes a partition run.
type WorkerReport struct {
	Owned       int  // points in this partition
	Computed    int  // points that produced a valid Result (published to the store)
	Failed      int  // points that terminally failed
	Stolen      int  // foreign points computed by the steal pass
	Interrupted bool // canceled (signal or lost lease) before finishing
	LeaseLost   bool // the lease was stolen out from under the worker
	Leaseless   bool // ran without lease protection (acquire I/O degraded)
}

// ErrInterrupted reports a worker run canceled before its partition
// completed — by signal, deadline, or a stolen lease.
var ErrInterrupted = errors.New("grid: worker interrupted")

func (o *WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// RunWorker computes one partition of the grid under ctx. The returned
// report is valid even on error; the error is ErrHeld if a live holder owns
// the lease, ErrInterrupted (wrapped) if canceled mid-run, nil otherwise —
// terminally failed points are an exit-status concern, not an error.
func RunWorker(ctx context.Context, opts WorkerOptions) (WorkerReport, error) {
	var rep WorkerReport
	mine := PartitionPoints(opts.Points, opts.Part, opts.Of)
	rep.Owned = len(mine)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var lease *Lease
	if opts.Leases != nil {
		name := LeaseName(ID(opts.Points), opts.Part, opts.Of)
		l, err := opts.Leases.Takeover(ctx, name, opts.Owner)
		switch {
		case err == nil:
			lease = l
			defer lease.Release()
		case errors.Is(err, ErrHeld):
			return rep, err
		default:
			// fail-fast would be wrong here: an unwritable lease directory
			// (ENOSPC and kin) must not stop the sweep — the lease only
			// protects against duplicate compute, and duplicates are
			// harmless (pure points, last-rename-wins store).
			rep.Leaseless = true
			opts.logf("worker p%d: lease degraded, running unprotected: %v", opts.Part, err)
		}
	}

	heartbeatDone := make(chan struct{})
	if lease != nil && !opts.FreezeBeats {
		go func() {
			defer close(heartbeatDone)
			t := time.NewTicker(opts.Leases.BeatInterval())
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				if err := lease.Beat(); err != nil {
					if errors.Is(err, ErrLost) {
						// invariant: a holder that observes a foreign fencing
						// token stops computing immediately — this cancel is
						// the "at most one live holder" guarantee acting.
						opts.logf("worker p%d: lease lost, stopping: %v", opts.Part, err)
						cancel()
						return
					}
					opts.logf("worker p%d: heartbeat error (will retry): %v", opts.Part, err)
				}
			}
		}()
	} else {
		close(heartbeatDone)
	}

	sup := opts.Supervise
	for _, g := range mine {
		if ctx.Err() != nil {
			break
		}
		_, st := sup.RunPointE(ctx, g.Cfg, g.Profile)
		if ctx.Err() != nil && !st.OK() {
			break // cancellation surfacing as a point error, not a real failure
		}
		if st.OK() {
			rep.Computed++
		} else {
			rep.Failed++
			opts.logf("worker p%d: point failed after %d attempt(s): %v", opts.Part, st.Attempts, st.Err)
		}
		if opts.AfterPoint != nil {
			opts.AfterPoint(rep.Computed + rep.Failed)
		}
	}

	// Steal pass: own partition done (or empty) and nothing went wrong —
	// rescue the rest of the grid before the partition lease is released.
	if opts.Steal && ctx.Err() == nil && rep.Computed+rep.Failed == rep.Owned {
		rep.Stolen = stealPass(ctx, &opts)
	}

	cancel()
	<-heartbeatDone
	if lease != nil && lease.Lost() {
		rep.LeaseLost = true
	}
	if rep.Computed+rep.Failed < rep.Owned {
		rep.Interrupted = true
		why := "canceled"
		if rep.LeaseLost {
			why = "lease stolen"
		}
		return rep, fmt.Errorf("%w: p%d after %d/%d points (%s)",
			ErrInterrupted, opts.Part, rep.Computed+rep.Failed, rep.Owned, why)
	}
	return rep, nil
}

// stealPass drains the rest of the grid: every point outside this worker's
// partition that is neither published nor under a live point lease gets
// claimed (point granularity) and computed. A lease whose file exists is
// watched on the reader's monotonic clock and stolen only once it expires
// — a live sibling keeps its work; a dead one loses it after TTL. Stolen
// computes skip continuous heartbeating: a point is one bounded compute,
// the steal was confirmed by a Beat, and in the worst case a concurrent
// re-steal just duplicates a pure, last-rename-wins publication. Returns
// the number of foreign points computed.
func stealPass(ctx context.Context, opts *WorkerOptions) int {
	st := sim.DiskStore()
	if st == nil || opts.Leases == nil {
		return 0
	}
	gridID := ID(opts.Points)
	type foreign struct {
		idx  int
		done bool
		obs  *Observer
	}
	var others []*foreign
	for i, g := range opts.Points {
		if !Owns(g.Key(), opts.Part, opts.Of) {
			others = append(others, &foreign{idx: i})
		}
	}
	poll := opts.Leases.BeatInterval()
	stolen := 0
	sup := opts.Supervise
	for ctx.Err() == nil {
		remaining, progress := 0, false
		for _, f := range others {
			if f.done || ctx.Err() != nil {
				continue
			}
			g := opts.Points[f.idx]
			k := g.Key()
			if st.Has(k) {
				f.done = true
				continue
			}
			lease, err := opts.Leases.ClaimPoint(gridID, k, opts.Owner, false)
			switch {
			case err == nil:
				// unleased: ours
			case errors.Is(err, ErrHeld):
				if f.obs == nil {
					f.obs = opts.Leases.Observe(PointLeaseName(gridID, k))
				}
				state, _ := f.obs.Check()
				if state != StateExpired {
					remaining++
					continue // a holder is (or may still be) live
				}
				l, serr := opts.Leases.Steal(PointLeaseName(gridID, k), opts.Owner)
				if serr != nil || l.Beat() != nil {
					remaining++ // lost the steal race; someone else has it
					continue
				}
				lease = l
				opts.logf("worker p%d: stole expired point %x", opts.Part, k[:6])
			default:
				lease = nil // lease I/O degraded: compute unprotected
			}
			_, pst := sup.RunPointE(ctx, g.Cfg, g.Profile)
			if lease != nil {
				lease.Release()
			}
			if ctx.Err() != nil && !pst.OK() {
				continue
			}
			f.done = true
			progress = true
			if pst.OK() {
				stolen++
			}
		}
		if remaining == 0 {
			return stolen
		}
		if !progress {
			// Everything left is under a possibly-live lease: wait a beat
			// interval for holders to publish, renew, or expire.
			t := time.NewTimer(poll)
			select {
			case <-ctx.Done():
				t.Stop()
				return stolen
			case <-t.C:
			}
		}
	}
	return stolen
}
