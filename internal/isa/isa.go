// Package isa defines the synthetic instruction set used by the simulator.
//
// The reproduction target (HPCA-9 2003, Selective Throttling) evaluated on
// SimpleScalar's Alpha-derived ISA. None of the paper's results depend on
// instruction *semantics* — only on instruction classes (which functional
// unit, which latency), register dependencies (which instructions wake up
// which), memory behaviour (cache interaction), and control flow. This
// package therefore defines exactly that skeleton: operation classes with
// per-class functional-unit requirements and latencies, a small architectural
// register file, and a compact dynamic-instruction record.
package isa

import "fmt"

// Op is an operation class. Each class maps to one functional-unit kind and
// one execution latency (Table 3 of the paper: 8 int ALU, 2 int mult,
// 2 mem ports, 8 FP ALU, 1 FP mult).
type Op uint8

// Operation classes.
const (
	OpNop Op = iota
	OpIntALU
	OpIntMult
	OpLoad
	OpStore
	OpFPAlu
	OpFPMult
	OpBranch // conditional branch
	OpJump   // unconditional direct jump
	OpCall   // direct call (pushes return address)
	OpReturn // indirect return (pops return address)
	NumOps   // sentinel: number of operation classes
)

// String implements fmt.Stringer for diagnostics and test output.
func (op Op) String() string {
	switch op {
	case OpNop:
		return "nop"
	case OpIntALU:
		return "ialu"
	case OpIntMult:
		return "imult"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpFPAlu:
		return "fpalu"
	case OpFPMult:
		return "fpmult"
	case OpBranch:
		return "br"
	case OpJump:
		return "jmp"
	case OpCall:
		return "call"
	case OpReturn:
		return "ret"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// FUKind identifies a functional-unit class.
type FUKind uint8

// Functional-unit classes, mirroring Table 3 of the paper.
const (
	FUIntALU FUKind = iota
	FUIntMult
	FUMemPort
	FUFPAlu
	FUFPMult
	NumFUKinds // sentinel
)

// String implements fmt.Stringer.
func (k FUKind) String() string {
	switch k {
	case FUIntALU:
		return "int-alu"
	case FUIntMult:
		return "int-mult"
	case FUMemPort:
		return "mem-port"
	case FUFPAlu:
		return "fp-alu"
	case FUFPMult:
		return "fp-mult"
	default:
		return fmt.Sprintf("fu(%d)", uint8(k))
	}
}

// Per-op attribute tables. Sized 256 and indexed by the uint8 op value so
// the hot-path accessors compile to a single bounds-check-free load; invalid
// op values read the same defaults the historical switch statements
// returned (int ALU, latency 1, non-control).
var (
	fuTab  [256]FUKind
	latTab [256]int8
	ctlTab [256]bool
)

func init() {
	for i := range latTab {
		latTab[i] = 1
	}
	fuTab[OpIntMult] = FUIntMult
	fuTab[OpLoad] = FUMemPort
	fuTab[OpStore] = FUMemPort
	fuTab[OpFPAlu] = FUFPAlu
	fuTab[OpFPMult] = FUFPMult
	latTab[OpIntMult] = 3
	latTab[OpFPAlu] = 2
	latTab[OpFPMult] = 4
	ctlTab[OpBranch] = true
	ctlTab[OpJump] = true
	ctlTab[OpCall] = true
	ctlTab[OpReturn] = true
}

// FU returns the functional-unit class op executes on. Control-flow ops use
// an integer ALU (branch condition evaluation), as in SimpleScalar.
func (op Op) FU() FUKind { return fuTab[op] }

// Latency returns the base execution latency of op in cycles, before any
// pipeline-depth adjustment and excluding cache access time for memory ops
// (for loads and stores this is address generation; the core adds cache
// access time).
func (op Op) Latency() int { return int(latTab[op]) }

// IsControl reports whether op redirects the instruction stream.
func (op Op) IsControl() bool { return ctlTab[op] }

// IsCondBranch reports whether op is a conditional branch (the only class
// that consumes a direction prediction and a confidence estimate).
func (op Op) IsCondBranch() bool { return op == OpBranch }

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool { return op == OpLoad || op == OpStore }

// Register-file shape. 32 integer + 32 floating-point architectural
// registers; RegNone marks an unused operand slot.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs
	RegNone    = int8(-1)
)

// Static is one instruction of a program's static image: the operation class
// and its register operands. Memory addresses and branch outcomes are
// supplied dynamically by the workload generator.
type Static struct {
	Op   Op
	Src1 int8 // architectural source register or RegNone
	Src2 int8
	Dest int8 // architectural destination register or RegNone
}

// NumSrcs returns how many source operands the instruction actually has.
func (s Static) NumSrcs() int {
	n := 0
	if s.Src1 != RegNone {
		n++
	}
	if s.Src2 != RegNone {
		n++
	}
	return n
}

// Validate reports an error if the static instruction is malformed
// (register indices out of range). Used by program-construction tests.
func (s Static) Validate() error {
	check := func(r int8, name string) error {
		if r != RegNone && (r < 0 || int(r) >= NumRegs) {
			return fmt.Errorf("isa: %s register %d out of range", name, r)
		}
		return nil
	}
	if err := check(s.Src1, "src1"); err != nil {
		return err
	}
	if err := check(s.Src2, "src2"); err != nil {
		return err
	}
	if err := check(s.Dest, "dest"); err != nil {
		return err
	}
	if s.Op >= NumOps {
		return fmt.Errorf("isa: invalid op %d", s.Op)
	}
	return nil
}
