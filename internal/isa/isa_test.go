package isa

import "testing"

func TestOpFUMapping(t *testing.T) {
	cases := []struct {
		op Op
		fu FUKind
	}{
		{OpIntALU, FUIntALU},
		{OpIntMult, FUIntMult},
		{OpLoad, FUMemPort},
		{OpStore, FUMemPort},
		{OpFPAlu, FUFPAlu},
		{OpFPMult, FUFPMult},
		{OpBranch, FUIntALU},
		{OpJump, FUIntALU},
	}
	for _, c := range cases {
		if got := c.op.FU(); got != c.fu {
			t.Errorf("%v.FU() = %v, want %v", c.op, got, c.fu)
		}
	}
}

func TestLatenciesPositive(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if op.Latency() < 1 {
			t.Errorf("%v latency %d < 1", op, op.Latency())
		}
	}
	if OpIntMult.Latency() <= OpIntALU.Latency() {
		t.Error("int mult should be slower than int alu")
	}
	if OpFPMult.Latency() <= OpFPAlu.Latency() {
		t.Error("fp mult should be slower than fp alu")
	}
}

func TestControlClassification(t *testing.T) {
	control := map[Op]bool{OpBranch: true, OpJump: true, OpCall: true, OpReturn: true}
	for op := Op(0); op < NumOps; op++ {
		if op.IsControl() != control[op] {
			t.Errorf("%v.IsControl() = %v", op, op.IsControl())
		}
	}
	if !OpBranch.IsCondBranch() || OpJump.IsCondBranch() {
		t.Error("IsCondBranch misclassifies")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpIntALU.IsMem() {
		t.Error("IsMem misclassifies")
	}
}

func TestStaticValidate(t *testing.T) {
	good := Static{Op: OpIntALU, Src1: 3, Src2: RegNone, Dest: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid static rejected: %v", err)
	}
	bad := Static{Op: OpIntALU, Src1: 127, Src2: RegNone, Dest: 5}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range src accepted")
	}
	badOp := Static{Op: NumOps, Src1: RegNone, Src2: RegNone, Dest: RegNone}
	if err := badOp.Validate(); err == nil {
		t.Error("invalid op accepted")
	}
}

func TestNumSrcs(t *testing.T) {
	if (Static{Src1: 1, Src2: 2}).NumSrcs() != 2 {
		t.Error("two sources not counted")
	}
	if (Static{Src1: 1, Src2: RegNone}).NumSrcs() != 1 {
		t.Error("one source not counted")
	}
	if (Static{Src1: RegNone, Src2: RegNone}).NumSrcs() != 0 {
		t.Error("zero sources not counted")
	}
}

func TestStringsDistinct(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < NumOps; op++ {
		s := op.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %v and %v share name %q", prev, op, s)
		}
		seen[s] = op
	}
	for k := FUKind(0); k < NumFUKinds; k++ {
		if k.String() == "" {
			t.Errorf("FU %d has empty name", k)
		}
	}
}
