package lint

// A standard-library re-creation of golang.org/x/tools' analysistest, sized
// to this suite: each fixture directory under testdata/ is one package,
// type-checked against the standard library from source (no export data or
// network needed), with expectations written as `// want "regexp"` comments
// on the line the diagnostic must land on. The import path is supplied per
// fixture so scope-sensitive analyzers (barepanic, fsseam, determinism) see
// the same package paths they see in production runs.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// One fset + source importer for the whole test binary: the importer caches
// type-checked std packages, so the expensive from-source import of fmt/os/
// time/math/rand happens once, not per fixture.
var (
	testFset         = token.NewFileSet()
	testImporterOnce sync.Once
	testImporterV    types.Importer
)

func testImporter() types.Importer {
	testImporterOnce.Do(func() {
		testImporterV = importer.ForCompiler(testFset, "source", nil)
	})
	return testImporterV
}

// want is one expectation: a diagnostic whose position is (file, line) and
// whose message matches re.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRx = regexp.MustCompile(`// want (.*)$`)
var wantArgRx = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// runFixture type-checks the fixture package in dir under importPath, runs
// the analyzer, and diffs the diagnostics against the fixture's // want
// comments.
func runFixture(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	var wants []*want
	for _, ent := range ents {
		if !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		f, err := parser.ParseFile(testFset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := testFset.Position(c.Pos())
				for _, q := range wantArgRx.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(files, func(i, j int) bool {
		return testFset.Position(files[i].Package).Filename < testFset.Position(files[j].Package).Filename
	})

	var typeErrs []error
	tc := &types.Config{
		Importer: testImporter(),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, _ := tc.Check(importPath, testFset, files, info)
	if len(typeErrs) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", dir, typeErrs)
	}

	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      testFset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := testFset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
