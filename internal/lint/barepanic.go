package lint

import (
	"go/ast"
)

// BarePanic enforces the typed-failure contract of PR 6: the packages whose
// panics would kill a worker process mid-sweep may panic only at sites that
// are deliberately fail-fast and annotated as such. RunE's recover converts
// `// invariant:` panics into *pipe.RunError snapshots; `// fail-fast:`
// marks the legacy APIs' intentional re-raises. Anything else is a failure
// path that must return a typed error instead.
//
// This is the AST-aware successor of the CI shell gate
// (`grep 'panic(' internal/pipe internal/sim`): unlike the grep it cannot
// be fooled by the string "panic(" inside comments or literals, it resolves
// the identifier to the real builtin (a local `panic` function does not
// count), it accepts the annotation on the panic line, the line above, or
// the enclosing declaration's doc comment, and it extends coverage to
// internal/grid and internal/store.
var BarePanic = &Analyzer{
	Name: "barepanic",
	Doc: "flag panic() outside annotated `// invariant:` / `// fail-fast:` sites " +
		"in internal/pipe, internal/sim, internal/grid, internal/store",
	Run: runBarePanic,
}

var barePanicScope = []string{
	"internal/pipe",
	"internal/sim",
	"internal/grid",
	"internal/store",
}

func runBarePanic(pass *Pass) error {
	if !pass.inScope(barePanicScope) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			doc := declDoc(decl)
			allowedByDoc := docHas(doc, "invariant:") || docHas(doc, "fail-fast:")
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || !pass.isBuiltin(id, "panic") {
					return true
				}
				if allowedByDoc ||
					pass.noteAt(call.Pos(), "invariant:") ||
					pass.noteAt(call.Pos(), "fail-fast:") {
					return true
				}
				pass.Reportf(call.Pos(),
					"bare panic: annotate the site `// invariant:` (cannot-happen machine state, recovered into *RunError) or `// fail-fast:` (deliberate legacy re-raise), or return a typed error")
				return true
			})
		}
	}
	return nil
}

// declDoc returns the doc comment of a top-level declaration.
func declDoc(decl ast.Decl) *ast.CommentGroup {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		return d.Doc
	case *ast.GenDecl:
		return d.Doc
	}
	return nil
}
