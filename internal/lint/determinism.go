package lint

import (
	"go/ast"
	"go/types"
)

// Determinism guards the repository's headline reproducibility contract:
// `hpca03 -exp all` output is byte-identical across runs, machines, and
// worker shardings, and the result store's content addresses assume a run
// is a pure function of (Config, Profile). The analyzer forbids the three
// classic leaks in the packages that feed that output:
//
//   - wall-clock reads (time.Now, time.Since). The lease protocol's
//     reader-local monotonic expiry is the one legitimate consumer; such a
//     site carries `//st:wallclock` with a justification (the annotation is
//     accepted on the line, the line above, or the enclosing declaration's
//     doc comment).
//   - the global math/rand / math/rand/v2 generators, which are seeded from
//     runtime entropy and shared across goroutines. Explicitly seeded
//     generators (rand.New and the internal/xrand streams) remain legal.
//   - ranging over a map, whose iteration order is deliberately randomized
//     by the runtime. Loops whose body is provably order-free (pure
//     accumulation into commutative aggregates) may carry `//st:unordered`
//     with a justification; anything feeding output or hashing must sort.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, and unordered map " +
		"iteration in the byte-identical-output packages",
	Run: runDeterminism,
}

var determinismScope = []string{
	"internal/pipe",
	"internal/prog",
	"internal/power",
	"internal/conf",
	"internal/sim",
	"internal/grid",
	"internal/fleet",
}

// randConstructors are the math/rand[/v2] functions that build explicitly
// seeded local generators rather than touching the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if !pass.inScope(determinismScope) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			doc := declDoc(decl)
			wallclockByDoc := directiveIn(doc, "//st:wallclock")
			unorderedByDoc := directiveIn(doc, "//st:unordered")
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					path, name := pass.selectorPkg(n)
					switch path {
					case "time":
						if (name == "Now" || name == "Since") &&
							!wallclockByDoc && !pass.noteAt(n.Pos(), "st:wallclock") {
							pass.Reportf(n.Pos(),
								"wall-clock read time.%s in a byte-identical-output package; derive times from simulated cycles or annotate //st:wallclock with a justification", name)
						}
					case "math/rand", "math/rand/v2":
						if randConstructors[name] {
							return true
						}
						if obj, ok := pass.TypesInfo.Uses[n.Sel]; ok {
							if _, isFunc := obj.(*types.Func); isFunc {
								pass.Reportf(n.Pos(),
									"global math/rand generator (rand.%s) is runtime-seeded and nondeterministic; use an explicitly seeded internal/xrand stream", name)
							}
						}
					}
				case *ast.RangeStmt:
					t := pass.TypesInfo.TypeOf(n.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); isMap &&
						!unorderedByDoc && !pass.noteAt(n.Pos(), "st:unordered") {
						pass.Reportf(n.Pos(),
							"map iteration order is nondeterministic; sort the keys before ranging, or annotate //st:unordered with a justification if the loop is provably order-free")
					}
				}
				return true
			})
		}
	}
	return nil
}
