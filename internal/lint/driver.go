package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Main implements the `go vet -vettool` protocol over the given analyzers,
// using only the standard library (the repository has no module
// dependencies, so the usual golang.org/x/tools/go/analysis/unitchecker is
// deliberately not used). The protocol, as spoken by cmd/go:
//
//   - `stlint -V=full` prints a tool-identity line cmd/go hashes into its
//     action cache key;
//   - `stlint -flags` prints a JSON description of the tool's flags (none);
//   - `stlint <dir>/vet.cfg` analyzes one package unit: the cfg file is
//     JSON carrying the unit's Go files, the import map, and the compiled
//     export data of every dependency (readable with the standard gc
//     importer), plus VetxOnly/VetxOutput bookkeeping for cmd/go's
//     fact-propagation cache (stlint has no cross-package facts, so it
//     writes an empty vetx file).
//
// Diagnostics go to stderr as `file:line:col: [analyzer] message`; under
// GITHUB_ACTIONS each is also emitted in workflow-annotation form
// (`::error file=...`) so findings surface inline on the PR diff. Exit
// status: 0 clean, 2 findings, 1 tool failure.
func Main(analyzers ...*Analyzer) {
	args := os.Args[1:]
	progname := filepath.Base(os.Args[0])
	for _, arg := range args {
		switch arg {
		case "-V=full", "--V=full":
			// The "devel ... buildID=" shape is what cmd/go's toolID parser
			// accepts for non-release tools; a constant content ID opts out
			// of cross-run result caching (CI caches the binary instead).
			fmt.Printf("%s version devel buildID=do-not-cache\n", progname)
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		case "-h", "-help", "--help":
			fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(command -v %s) ./...\n\nanalyzers:\n", progname)
			for _, a := range analyzers {
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
			}
			os.Exit(2)
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: expected a single vet .cfg argument (run via go vet -vettool=%s); see -help\n", progname, progname)
		os.Exit(1)
	}
	diags, err := runUnit(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags.list) > 0 {
		diags.print()
		os.Exit(2)
	}
}

// vetConfig mirrors cmd/go's internal vetConfig JSON (the fields stlint
// consumes; unknown fields are ignored by encoding/json).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// diagList accumulates diagnostics with the FileSet needed to print them.
type diagList struct {
	fset *token.FileSet
	list []Diagnostic
}

func (d *diagList) print() {
	sort.SliceStable(d.list, func(i, j int) bool { return d.list[i].Pos < d.list[j].Pos })
	github := os.Getenv("GITHUB_ACTIONS") == "true"
	workspace := os.Getenv("GITHUB_WORKSPACE")
	for _, diag := range d.list {
		posn := d.fset.Position(diag.Pos)
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", posn, diag.Analyzer, diag.Message)
		if github {
			file := posn.Filename
			if workspace != "" {
				if rel, err := filepath.Rel(workspace, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			// Workflow commands reserve %, \r, \n in the message.
			msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(diag.Message)
			fmt.Fprintf(os.Stderr, "::error file=%s,line=%d,col=%d,title=stlint/%s::%s\n",
				file, posn.Line, posn.Column, diag.Analyzer, msg)
		}
	}
}

func runUnit(cfgPath string, analyzers []*Analyzer) (*diagList, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// cmd/go requires the vetx (facts) output file even from a tool with no
	// facts, and VetxOnly units (dependencies vetted purely for facts) need
	// nothing else.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("stlint: no facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	diags := &diagList{fset: token.NewFileSet()}
	if cfg.VetxOnly {
		return diags, nil
	}

	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(diags.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return &diagList{fset: diags.fset}, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	imp := &cfgImporter{cfg: &cfg}
	imp.gc = importer.ForCompiler(diags.fset, cfg.Compiler, imp.lookup)
	var typeErrs []error
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, buildArch()),
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, _ := tc.Check(cfg.ImportPath, diags.fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return &diagList{fset: diags.fset}, nil
		}
		return nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, typeErrs[0])
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      diags.fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags.list = append(diags.list, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	return diags, nil
}

// cfgImporter resolves imports against the vet config: source import paths
// map through ImportMap to canonical package paths, whose compiled export
// data (PackageFile) the standard gc importer reads.
type cfgImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func (ci *cfgImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := ci.cfg.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ci.gc.Import(path)
}

func (ci *cfgImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := ci.cfg.PackageFile[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q in vet config", path)
	}
	return os.Open(file)
}

// buildArch returns the architecture whose type sizes the unit should be
// checked with (cross builds pass GOARCH through the environment).
func buildArch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
