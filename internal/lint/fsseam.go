package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// FSSeam keeps every byte of store and lease I/O interceptable: the
// crash-consistency and fault-injection guarantees of internal/store and
// internal/grid (torn writes, ENOSPC, bit rot, lease races — all injected
// through faultinject.DiskFS) hold only if those packages reach the disk
// exclusively through the store.FS seam. A direct os.* file operation or a
// syscall function call added anywhere else would silently bypass the
// injection point, so this analyzer forbids them everywhere except fs.go,
// the seam's production implementation (OSFS).
//
// Non-I/O uses of os (os.Getpid, os.FindProcess, process signalling) and
// syscall *values* (syscall.ENOSPC for errors.Is, the syscall.Signal type)
// remain legal; only file-operation calls are the seam's business. A
// deliberate exception carries a `//st:rawfs` annotation with a one-line
// justification.
var FSSeam = &Analyzer{
	Name: "fsseam",
	Doc: "forbid direct os.*/syscall file operations in internal/store, " +
		"internal/grid, and internal/fleet outside the store.FS seam (fs.go)",
	Run: runFSSeam,
}

var fsSeamScope = []string{
	"internal/store",
	"internal/grid",
	"internal/fleet",
}

// osFileOps is the set of os package functions that touch the filesystem.
// Process-control helpers (Getpid, FindProcess, Exit...) are deliberately
// absent: they carry no I/O the fault injector needs to intercept.
var osFileOps = map[string]bool{
	"Chdir": true, "Chmod": true, "Chown": true, "Chtimes": true,
	"Create": true, "CreateTemp": true, "Lchown": true, "Link": true,
	"Lstat": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"NewFile": true, "Open": true, "OpenFile": true, "OpenInRoot": true,
	"OpenRoot": true, "ReadDir": true, "ReadFile": true, "Readlink": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Stat": true,
	"Symlink": true, "Truncate": true, "WriteFile": true,
}

func runFSSeam(pass *Pass) error {
	if !pass.inScope(fsSeamScope) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		if filepath.Base(pass.Fset.Position(f.Package).Filename) == "fs.go" {
			continue // the seam's production implementation is the one allowed caller
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name := pass.selectorPkg(sel)
			switch path {
			case "os":
				if osFileOps[name] && !pass.noteAt(sel.Pos(), "st:rawfs") {
					pass.Reportf(sel.Pos(),
						"direct os.%s bypasses the store.FS seam (faultinject.DiskFS cannot intercept it); route the operation through the package's store.FS", name)
				}
			case "io/ioutil":
				if !pass.noteAt(sel.Pos(), "st:rawfs") {
					pass.Reportf(sel.Pos(),
						"direct ioutil.%s bypasses the store.FS seam; route the operation through the package's store.FS", name)
				}
			case "syscall":
				// Constants (syscall.ENOSPC) and types (syscall.Signal) are
				// fine — only function calls perform I/O or process ops the
				// seam should own.
				if obj, ok := pass.TypesInfo.Uses[sel.Sel]; ok {
					if _, isFunc := obj.(*types.Func); isFunc && !pass.noteAt(sel.Pos(), "st:rawfs") {
						pass.Reportf(sel.Pos(),
							"direct syscall.%s bypasses the store.FS seam; use the seam (or errors.Is against syscall constants)", name)
					}
				}
			}
			return true
		})
	}
	return nil
}
