package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc is the static half of the 0 allocs/op benchmark gate: functions
// on the cycle-loop call graph are annotated `//st:hotpath` in their doc
// comments, and inside them every allocation-inducing construct is flagged:
//
//   - make, new
//   - slice and map composite literals, and address-taken composite
//     literals (&T{...})
//   - function literals (closure allocation)
//   - append whose destination is not its own first argument — the pooled
//     idiom `x = append(x, v)` amortizes to zero in steady state because
//     the backing array survives Reset, while `y = append(x, v)` is a
//     fresh-allocation risk on every growth
//   - interface boxing: passing a non-interface value to an interface
//     (including variadic ...any) parameter, or converting to an interface
//     type
//
// Arguments of panic(...) are exempt: a panicking cycle is terminal by
// definition, so its diagnostics (fmt.Sprintf and friends) may allocate.
// A justified exception elsewhere carries `//st:alloc-ok` on its line or
// the line above; BenchmarkSingleRun remains the dynamic arbiter.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-inducing constructs inside //st:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !directiveIn(fd.Doc, "//st:hotpath") {
				continue
			}
			pass.checkHotFunc(fd)
		}
	}
	return nil
}

func (p *Pass) checkHotFunc(fd *ast.FuncDecl) {
	selfAppends := p.selfAppendCalls(fd.Body)
	name := fd.Name.Name

	// walk descends the body keeping a count of enclosing panic(...) calls:
	// anything inside a panic argument is on a terminal path and exempt.
	var walk func(n ast.Node, coldDepth int)
	flag := func(n ast.Node, coldDepth int, format string, args ...any) {
		if coldDepth > 0 || p.noteAt(n.Pos(), "st:alloc-ok") {
			return
		}
		p.Reportf(n.Pos(), "//st:hotpath %s: "+format+" (annotate //st:alloc-ok with a justification if deliberate)",
			append([]any{name}, args...)...)
	}
	walk = func(n ast.Node, coldDepth int) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok {
					switch {
					case p.isBuiltin(id, "panic"):
						for _, arg := range n.Args {
							walk(arg, coldDepth+1)
						}
						return false
					case p.isBuiltin(id, "make"):
						flag(n, coldDepth, "make allocates")
						return true
					case p.isBuiltin(id, "new"):
						flag(n, coldDepth, "new allocates")
						return true
					case p.isBuiltin(id, "append"):
						if !selfAppends[n] {
							flag(n, coldDepth, "append to a destination other than its own first argument allocates on growth; use the pooled x = append(x, ...) idiom")
						}
						return true
					}
				}
				p.checkBoxing(n, name, coldDepth, flag)
			case *ast.FuncLit:
				flag(n, coldDepth, "closure allocates")
				return false // the literal's body runs elsewhere; one finding is enough
			case *ast.CompositeLit:
				t := p.TypesInfo.TypeOf(n)
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Slice:
					flag(n, coldDepth, "slice literal allocates")
				case *types.Map:
					flag(n, coldDepth, "map literal allocates")
				}
			case *ast.UnaryExpr:
				if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
					flag(n, coldDepth, "address-taken composite literal &%s{...} escapes to the heap", types.ExprString(lit.Type))
				}
			}
			return true
		})
	}
	walk(fd.Body, 0)
}

// checkBoxing flags non-interface arguments passed to interface parameters
// (the implicit conversion allocates unless the value is pointer-shaped and
// escapes analysis fails either way on the hot path), and explicit
// conversions to interface types.
func (p *Pass) checkBoxing(call *ast.CallExpr, fn string, coldDepth int, flag func(ast.Node, int, string, ...any)) {
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		// Conversion, not a call.
		if types.IsInterface(tv.Type.Underlying()) && len(call.Args) == 1 {
			if at := p.TypesInfo.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at.Underlying()) && at != types.Typ[types.UntypedNil] {
				flag(call, coldDepth, "conversion to interface %s boxes its operand", types.ExprString(call.Fun))
			}
		}
		return
	}
	sig, ok := p.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := p.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		flag(arg, coldDepth, "passing %s to interface parameter boxes it", at.String())
	}
}

// selfAppendCalls collects the append calls of the pooled self-append idiom:
// an assignment (or define) whose i-th LHS is syntactically identical to the
// first argument of the append call on its i-th RHS.
func (p *Pass) selfAppendCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	self := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || !p.isBuiltin(id, "append") {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				self[call] = true
			}
		}
		return true
	})
	return self
}
