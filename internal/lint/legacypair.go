package lint

import (
	"go/ast"
	"strings"
)

// LegacyPair enforces the repository's identity-twin discipline: every fast
// path keeps its original implementation behind a Config field named
// Legacy* (LegacyScanIssue, LegacyWalk, LegacyFrontEnd, LegacyEventLedger,
// ...), and identity tests drive both paths to byte-identical results. The
// twin is only worth anything while a test actually flips the flag — so
// every struct field named Legacy* must be referenced by at least one
// _test.go file of its package. A fast path whose reference twin loses its
// last test mention fails the lint gate instead of silently rotting.
//
// The check runs on test units (`go vet` analyzes a package together with
// its in-package test files); on a unit without test files it stays silent,
// so the gate lives in the `go vet ./...`-style whole-tree run.
var LegacyPair = &Analyzer{
	Name: "legacypair",
	Doc: "every Legacy* struct field must be referenced by an identity test " +
		"in its package's _test.go files",
	Run: runLegacyPair,
}

func runLegacyPair(pass *Pass) error {
	// Collect identifier mentions from the unit's test files first; without
	// test files in the unit there is nothing to check against.
	testIdents := make(map[string]bool)
	hasTests := false
	for _, f := range pass.Files {
		if !pass.IsTestFile(f) {
			continue
		}
		hasTests = true
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				testIdents[id.Name] = true
			}
			return true
		})
	}
	if !hasTests {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if !strings.HasPrefix(name.Name, "Legacy") {
						continue
					}
					if !testIdents[name.Name] {
						pass.Reportf(name.Pos(),
							"%s has no reference in this package's _test.go files: a fast path must keep an identity test driving its Legacy* twin", name.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}
