// Package lint implements stlint, the simulator's static-analysis suite.
//
// The headline properties of this repository — byte-identical experiment
// output, a 0 allocs/op cycle loop, fault-injectable I/O, typed failure
// paths, and Legacy* identity twins for every fast path — are conventions
// that no compiler checks. This package turns each convention into a
// machine-checked analyzer:
//
//   - barepanic: internal/pipe, internal/sim, internal/grid and
//     internal/store may panic only at sites annotated `// invariant:` or
//     `// fail-fast:`; everything else must flow through the typed
//     *pipe.RunError plumbing. (AST-aware successor of the CI grep gate.)
//   - fsseam: internal/store and internal/grid must route all file I/O
//     through the store.FS seam so faultinject.DiskFS can intercept it;
//     direct os.* / syscall file operations are allowed only in the seam's
//     production implementation (fs.go).
//   - determinism: the packages whose output must be byte-identical may not
//     read the wall clock (time.Now/Since; `//st:wallclock` opts a site
//     out), draw from the global math/rand generators, or iterate a map in
//     unordered fashion (`//st:unordered` opts a provably order-free loop
//     out).
//   - hotalloc: functions annotated `//st:hotpath` may not contain
//     allocation-inducing constructs (make/new, slice/map literals,
//     closures, non-self appends, interface boxing); `//st:alloc-ok` opts
//     a justified site out. This is the static half of the 0 allocs/op
//     benchmark gate.
//   - legacypair: every struct field named Legacy* must be referenced by at
//     least one _test.go file of its package, so a fast path can never
//     silently lose its identity-test reference twin.
//
// The framework deliberately mirrors a subset of the golang.org/x/tools
// go/analysis API (Analyzer, Pass, Diagnostic) but is built on the standard
// library only: the repository has no module dependencies, and the linter
// keeps it that way. Main (driver.go) speaks the `go vet -vettool`
// protocol, so CI runs the suite as `go vet -vettool=stlint ./...`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Reportf. It returns an error only for analyzer-internal failures
	// (which abort the whole run), never for findings.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package unit. For test
// units (`go vet` analyzes packages together with their _test.go files)
// Files includes the test files; IsTestFile distinguishes them.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	notes  map[*ast.File]noteIndex
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// All returns the full stlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{BarePanic, FSSeam, Determinism, HotAlloc, LegacyPair}
}

// PkgPath returns the unit's package path with any test-variant suffix
// ("pkg [pkg.test]") stripped, so scope checks treat a package and its
// in-package test unit identically.
func (p *Pass) PkgPath() string {
	path := p.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

// inScope reports whether the unit's package path matches one of the given
// path suffixes (e.g. "internal/pipe" matches "selthrottle/internal/pipe").
// Fixture packages under testdata use the real packages' paths, so analyzer
// tests exercise the same scope logic production runs do.
func (p *Pass) inScope(suffixes []string) bool {
	path := p.PkgPath()
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// noteIndex maps a line number to the concatenated comment text appearing on
// that line (trailing comments and whole-line comments alike).
type noteIndex map[int]string

// noteIndexFor builds (and caches) the comment-line index of f.
func (p *Pass) noteIndexFor(f *ast.File) noteIndex {
	if idx, ok := p.notes[f]; ok {
		return idx
	}
	idx := make(noteIndex)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := p.Fset.Position(c.Pos()).Line
			for i, part := range strings.Split(c.Text, "\n") {
				idx[line+i] += part
			}
		}
	}
	if p.notes == nil {
		p.notes = make(map[*ast.File]noteIndex)
	}
	p.notes[f] = idx
	return idx
}

// fileOf returns the *ast.File of p.Files containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// noteAt reports whether the line holding pos — or the line immediately
// above it — carries a comment containing marker. This is how sites opt out
// of an analyzer: a trailing annotation on the offending line, or a comment
// line of its own directly above.
func (p *Pass) noteAt(pos token.Pos, marker string) bool {
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	idx := p.noteIndexFor(f)
	line := p.Fset.Position(pos).Line
	return strings.Contains(idx[line], marker) || strings.Contains(idx[line-1], marker)
}

// docHas reports whether a declaration's doc comment contains marker.
func docHas(doc *ast.CommentGroup, marker string) bool {
	return doc != nil && strings.Contains(doc.Text(), marker)
}

// directiveIn reports whether a doc comment group carries the given
// machine directive (e.g. "//st:hotpath"). Directives are not part of
// CommentGroup.Text (go/ast strips them from godoc text), so this scans the
// raw comment lines.
func directiveIn(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		for _, ln := range strings.Split(c.Text, "\n") {
			if strings.HasPrefix(strings.TrimSpace(ln), directive) {
				return true
			}
		}
	}
	return false
}

// pkgNameOf resolves an identifier to the imported package it names, or nil.
func (p *Pass) pkgNameOf(id *ast.Ident) *types.PkgName {
	if obj, ok := p.TypesInfo.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// selectorPkg returns the import path and selected name of a
// package-qualified selector (`os.Open` → "os", "Open"), or "" if sel is not
// one (e.g. a field or method access).
func (p *Pass) selectorPkg(sel *ast.SelectorExpr) (path, name string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn := p.pkgNameOf(id)
	if pn == nil {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// isBuiltin reports whether id resolves to the universe-scope builtin of
// that name (guarding against local shadowing of panic, append, make...).
func (p *Pass) isBuiltin(id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	obj, ok := p.TypesInfo.Uses[id]
	if !ok {
		return false
	}
	_, isb := obj.(*types.Builtin)
	return isb
}
