package lint

import (
	"path/filepath"
	"testing"
)

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata"}, parts...)...)
}

func TestBarePanic(t *testing.T) {
	runFixture(t, BarePanic, fixture("barepanic", "inscope"), "selthrottle/internal/pipe")
}

func TestBarePanicOutOfScope(t *testing.T) {
	runFixture(t, BarePanic, fixture("barepanic", "outofscope"), "selthrottle/internal/power")
}

func TestFSSeam(t *testing.T) {
	runFixture(t, FSSeam, fixture("fsseam", "inscope"), "selthrottle/internal/store")
}

func TestFSSeamOutOfScope(t *testing.T) {
	runFixture(t, FSSeam, fixture("fsseam", "outofscope"), "selthrottle/internal/pipe")
}

func TestFSSeamFleetScope(t *testing.T) {
	runFixture(t, FSSeam, fixture("fsseam", "fleet"), "selthrottle/internal/fleet")
}

func TestDeterminism(t *testing.T) {
	runFixture(t, Determinism, fixture("determinism", "inscope"), "selthrottle/internal/sim")
}

func TestDeterminismGridCarveOut(t *testing.T) {
	runFixture(t, Determinism, fixture("determinism", "grid"), "selthrottle/internal/grid")
}

func TestDeterminismFleetScope(t *testing.T) {
	runFixture(t, Determinism, fixture("determinism", "fleet"), "selthrottle/internal/fleet")
}

func TestDeterminismOutOfScope(t *testing.T) {
	runFixture(t, Determinism, fixture("determinism", "outofscope"), "selthrottle/internal/store")
}

func TestHotAlloc(t *testing.T) {
	runFixture(t, HotAlloc, fixture("hotalloc"), "selthrottle/internal/lint/testdata/hotalloc")
}

func TestLegacyPair(t *testing.T) {
	runFixture(t, LegacyPair, fixture("legacypair", "pair"), "selthrottle/internal/lint/testdata/pair")
}

func TestLegacyPairNoTests(t *testing.T) {
	runFixture(t, LegacyPair, fixture("legacypair", "notests"), "selthrottle/internal/lint/testdata/notests")
}
