package pipe

import "fmt"

func bad(n int) {
	if n < 0 {
		panic("negative count") // want "bare panic"
	}
}

func annotatedSameLine(n int) {
	if n < 0 {
		panic("negative count") // invariant: callers validate n
	}
}

func annotatedLineAbove(n int) {
	if n < 0 {
		// fail-fast: legacy contract re-raises the typed error
		panic(fmt.Sprintf("negative count %d", n))
	}
}

// annotatedByDoc keeps the historical fail-fast contract.
// fail-fast: deliberate re-raise for callers without a supervisor.
func annotatedByDoc() {
	panic("declared fail-fast")
}

func shadowed() {
	panic := func(string) {} // a local panic is not the builtin
	panic("not the builtin")
}
