package pipe

// Test files are exempt: tests may fail fast however they like.

func helperForTests() {
	panic("no annotation needed here")
}
