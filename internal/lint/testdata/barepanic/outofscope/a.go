package power

// The power package is outside barepanic's scope: no diagnostics here.

func out() {
	panic("outside the annotated-panic scope")
}
