package fleet

import "time"

// The fleet coordinator is inside the byte-identical-output scope: its
// breakers and backoffs must run on injected clocks and seeded jitter.

func badBreakerClock() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

func badLatency(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since"
}

func badWorkerRange(workers map[string]int) int {
	total := 0
	for _, v := range workers { // want "map iteration order is nondeterministic"
		total += v
	}
	return total
}

func allowedTimer(d time.Duration) *time.Timer {
	return time.NewTimer(d) // timers wait; they do not read the wall clock into output
}
