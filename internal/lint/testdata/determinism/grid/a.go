package grid

import "time"

// monotonicClock mirrors the production lease-clock carve-out: grid may
// read the wall clock for reader-local lease expiry, but only under an
// explicit //st:wallclock justification.
//
//st:wallclock — reader-local lease expiry; never reaches output
func monotonicClock() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

func unjustified() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}
