package sim

import (
	"math/rand"
	"sort"
	"time"
)

func badClock() int64 {
	t := time.Now() // want "wall-clock read time.Now"
	return t.UnixNano()
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since"
}

func badRand() int {
	return rand.Intn(10) // want "global math/rand generator"
}

func badRange(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		total += v
	}
	return total
}

func allowedLineAnnotation() time.Time {
	return time.Now() //st:wallclock — progress logging only, never in results
}

// allowedDocAnnotation reads the wall clock for operator-facing logs.
//
//st:wallclock — log timestamps never reach simulator output
func allowedDocAnnotation() time.Time {
	return time.Now()
}

func allowedSeededRand() int {
	r := rand.New(rand.NewSource(7)) // explicit seed: deterministic
	return r.Intn(10)
}

func allowedUnordered(m map[string]int) int {
	total := 0
	//st:unordered — commutative sum, order cannot affect the result
	for _, v := range m {
		total += v
	}
	return total
}

func allowedSortedRange(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //st:unordered — collecting keys to sort below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func allowedSliceRange(xs []int) int {
	total := 0
	for _, v := range xs { // slices iterate in order: fine
		total += v
	}
	return total
}
