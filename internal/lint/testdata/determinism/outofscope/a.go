package store

import "time"

// The store package records real-world timestamps (mtimes, lease grants);
// determinism does not police it.

func stamp() time.Time {
	return time.Now()
}
