package fleet

import "os"

// The fleet packages hold leases and publish results through the shared
// store; any direct file operation would dodge the injected fault FS.

func badDirectWrite(dir string) error {
	f, err := os.Create(dir + "/lease") // want "direct os.Create bypasses the store.FS seam"
	if err != nil {
		return err
	}
	return f.Close()
}

func allowedProcessControl() int {
	return os.Getpid() // process control, not file I/O
}
