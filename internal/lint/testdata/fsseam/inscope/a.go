package store

import (
	"errors"
	"os"
	"syscall"
)

func badRead(path string) ([]byte, error) {
	return os.ReadFile(path) // want "direct os.ReadFile bypasses the store.FS seam"
}

func badOpen(path string) error {
	f, err := os.Open(path) // want "direct os.Open bypasses the store.FS seam"
	if err != nil {
		return err
	}
	return f.Close()
}

func processProbe(pid int) bool {
	p, err := os.FindProcess(pid) // process control, not file I/O: allowed
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0)) // syscall type conversion: allowed
	return err != nil && !errors.Is(err, syscall.EPERM)
}

func enospc(err error) bool {
	return errors.Is(err, syscall.ENOSPC) // syscall constant: allowed
}

func badKill(pid int) error {
	return syscall.Kill(pid, syscall.SIGKILL) // want "direct syscall.Kill bypasses the store.FS seam"
}

func annotated(path string) error {
	//st:rawfs — incident tooling that must work when the seam itself is broken
	return os.Remove(path)
}
