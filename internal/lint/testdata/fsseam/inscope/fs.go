package store

import "os"

// fs.go is the seam's production implementation: raw file operations are
// this file's whole job, so the analyzer exempts it.

func rawWrite(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
