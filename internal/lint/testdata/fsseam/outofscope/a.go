package pipe

import "os"

// The pipe package does no store I/O; fsseam does not apply here.

func read(path string) ([]byte, error) {
	return os.ReadFile(path)
}
