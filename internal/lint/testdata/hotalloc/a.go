package hot

import "fmt"

type event struct {
	cycle int
	tag   string
}

type sink interface {
	Emit(v any)
}

// step is the fixture's stand-in for Pipeline.Step: every allocation rule
// fires at least once inside it.
//
//st:hotpath
func step(s sink, buf []event, spill []event, n int) []event {
	scratch := make([]event, 0, n) // want "make allocates"
	_ = scratch
	ptr := new(event) // want "new allocates"
	_ = ptr
	lit := []int{1, 2, 3} // want "slice literal allocates"
	_ = lit
	idx := map[string]int{"a": 1} // want "map literal allocates"
	_ = idx
	ev := &event{cycle: n} // want "address-taken composite literal"
	_ = ev
	fn := func() int { return n } // want "closure allocates"
	_ = fn
	spill = append(buf, event{}) // want "append to a destination other than its own first argument"
	_ = spill
	s.Emit(n)     // want "passing int to interface parameter boxes it"
	box := any(n) // want "conversion to interface any boxes its operand"
	_ = box
	return buf
}

// push shows the allowed pooled idiom plus the explicit escape hatch and
// the panic cold-path exemption.
//
//st:hotpath
func push(buf []event, ev event, n int) []event {
	buf = append(buf, ev) // self-append: the pooled idiom, not flagged
	if n < 0 {
		panic(fmt.Sprintf("negative cycle %d", n)) // terminal path: boxing exempt
	}
	buf = append(buf, make([]event, 0, 1)...) //st:alloc-ok — fixture escape hatch
	return buf
}

func cold(n int) []int {
	// No //st:hotpath directive: allocate freely.
	out := make([]int, n)
	return append(out, n)
}
