package notests

// No _test.go files in this unit: legacypair stays silent rather than
// flagging fields it cannot see tests for.
type Config struct {
	LegacyEverything bool
}
