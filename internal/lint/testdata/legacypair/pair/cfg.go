package pair

// Config carries two Legacy* twins; only LegacyWalk has an identity test.
type Config struct {
	Width        int
	LegacyWalk   bool
	LegacyOrphan bool // want "LegacyOrphan has no reference in this package's _test.go files"
}
