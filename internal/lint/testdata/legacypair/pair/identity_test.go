package pair

import "testing"

func TestWalkIdentity(t *testing.T) {
	fast := Config{Width: 4}
	slow := Config{Width: 4, LegacyWalk: true}
	if fast.Width != slow.Width {
		t.Fatal("identity mismatch")
	}
}
