package pipe

import (
	"testing"

	"selthrottle/internal/bpred"
	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/power"
	"selthrottle/internal/prog"
)

// buildWithWalker constructs a pipeline and returns the walker so tests can
// probe the checkpoint arena directly.
func buildWithWalker(t *testing.T, bench string, cfg Config, policy core.Policy) (*Pipeline, *prog.Walker) {
	t.Helper()
	p, ok := prog.ProfileByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	w := prog.NewWalker(prog.Generate(p))
	pl := New(cfg, w, bpred.NewGshare(8<<10), conf.NewBPRU(8<<10),
		core.NewController(policy), &power.Meter{})
	return pl, w
}

// TestCheckpointArenaLeakFree is the arena analog of the instruction-pool
// tests: on the highest-misprediction profile the squash/recovery churn
// turns over far more branches than the machine can hold in flight, so the
// run stays within a bounded arena only if resolution, squash, and recovery
// all return their leases. CheckInvariants additionally verifies the exact
// lease accounting (walker leased count == in-flight unresolved branches) at
// each probe point.
func TestCheckpointArenaLeakFree(t *testing.T) {
	pl, w := buildWithWalker(t, "go", Default(), core.Baseline())
	st := pl.Run(30000)
	if st.Mispredicts == 0 || st.WrongPathFetched == 0 {
		t.Fatal("no recovery traffic; the leak check needs mispredictions")
	}
	if err := pl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_, capWarm, _ := w.CkptStats()
	if capWarm > 2000 {
		t.Fatalf("arena capacity %d implausibly large for a 128-entry window", capWarm)
	}
	pl.Run(90000)
	leased, capAfter, hw := w.CkptStats()
	if capAfter != capWarm {
		t.Fatalf("arena kept growing after warmup: %d -> %d slots (leak)", capWarm, capAfter)
	}
	if leased > hw || hw > capAfter {
		t.Fatalf("inconsistent arena stats: leased=%d highWater=%d capacity=%d", leased, hw, capAfter)
	}
	if err := pl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointAccountingUnderOracleFetchAndThrottle repeats the lease
// accounting check under the two regimes that stress the unusual release
// paths: oracle fetch (branch holds fetch, resolves via the normal recovery
// path) and an aggressive no-select policy (squashes of barrier carriers).
func TestCheckpointAccountingUnderOracleFetchAndThrottle(t *testing.T) {
	cfg := Default()
	cfg.Oracle = core.OracleFetch
	pl, _ := buildWithWalker(t, "go", cfg, core.Baseline())
	if st := pl.Run(25000); st.OracleHolds == 0 {
		t.Fatal("oracle fetch never held")
	}
	if err := pl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	policy := core.Selective("t",
		core.Spec{Fetch: core.RateQuarter, NoSelect: true},
		core.Spec{Fetch: core.RateStall})
	pl2, _ := buildWithWalker(t, "go", Default(), policy)
	pl2.Run(25000)
	if err := pl2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
