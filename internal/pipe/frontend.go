package pipe

// Fused front-end delay line.
//
// The in-order front end is a pair of pure fixed-latency delays (fetch and
// decode pipes) whose only interesting events are group boundaries,
// back-pressure, and squash. The historical implementation moved every
// instruction through two per-instruction rings (fetchQ, decodeQ); the fused
// front end keeps one ring and a cursor:
//
//   - fetch forms a whole group per I-cache access — up to FetchWidth
//     instructions, truncated by taken-branch limits, BTB-miss redirects,
//     oracle holds, and the free capacity of the fetch segment — obtained
//     from the walker in straight-line batches via prog.Walker.NextGroup,
//     and appends it to the ring in one pass. Every instruction of a group
//     shares its enter-fetch cycle (inst.fetchCycle) and enter-decode stamp
//     (inst.enterDecode = fetch cycle + fetch pipe depth + I-miss delay);
//   - decoded counts the ring's decoded prefix: instructions [0, decoded)
//     have passed decode (each stamped with its enter-dispatch cycle,
//     inst.enterWindow), instructions [decoded, Len) are still in the fetch
//     pipe. Decode advances the cursor at DecodeWidth per cycle under the
//     per-instruction throttle/oracle gates; it never moves an element;
//   - dispatch pops from the ring head while the prefix is non-empty.
//
// The two logical segments (fetched-undecoded, decoded-undispatched) are
// bounded by the same capacities the two rings had, so back-pressure
// behaviour is identical, and a flush squashes the whole ring back to front
// — exactly the youngest-to-oldest order of the legacy path's two queue
// drains, which the checkpoint free list observes. The rings survive behind
// Config.LegacyFrontEnd as the bit-identity reference, and CheckInvariants
// cross-validates the cursor bookkeeping against the resident instructions.

import (
	"fmt"

	"selthrottle/internal/core"
	"selthrottle/internal/isa"
	"selthrottle/internal/power"
)

// fetchSegLen reports the fetched-but-undecoded instruction count of the
// fused delay line.
func (p *Pipeline) fetchSegLen() int { return p.frontQ.Len() - p.decoded }

// ---------------------------------------------------------------- fetch --

// fetchFused forms one fetch group per I-cache access and appends it to the
// delay line. The instruction stream, predictor/BTB/RAS interaction order,
// power events, and statistics are bit-identical to the legacy two-ring
// fetch: the walker batches only straight-line runs (NextGroup stops after
// every control transfer), so each control instruction is predicted and
// steered at exactly the point the per-instruction loop would have reached
// it.
//
//st:hotpath
func (p *Pipeline) fetchFused() {
	if p.faultArmed {
		p.stageFault(StageFetch)
	}
	dbg := p.dbgFetchArmed && p.cycle >= p.dbgFetchLo && p.cycle < p.dbgFetchHi
	if p.fetchHeld || p.cycle < p.fetchResumeAt {
		if dbg {
			//st:alloc-ok — debug-only path, armed by SetDebugFetchWindow, off in production
			fmt.Printf("  f@%d held=%v resumeAt=%d\n", p.cycle, p.fetchHeld, p.fetchResumeAt)
		}
		p.Stats.FetchIdleHeld++
		return
	}
	if dbg {
		//st:alloc-ok — debug-only path, armed by SetDebugFetchWindow, off in production
		defer func() {
			fmt.Printf("  f@%d fetchQ=%d decodeQ=%d window=%d\n", p.cycle, p.fetchSegLen(), p.decoded, p.window.Len())
		}()
	}
	rate := p.ctrl.FetchRate()
	if !rate.ActiveAt(uint64(p.cycle)) {
		p.Stats.FetchGatedCycles++
		p.ctrl.NoteGatedCycle()
		return
	}
	// Back-pressure gates on the capacity actually available (the group is
	// truncated to the space left); only a completely full fetch segment
	// idles fetch. Mirrors the legacy path's check exactly.
	width := p.cfg.FetchWidth
	if avail := p.fetchCap - p.fetchSegLen(); avail < width {
		if avail == 0 {
			p.Stats.FetchIdleBackPressure++
			return // front-end back-pressure
		}
		width = avail
	}

	// One I-cache access per fetch group; misses delay the group and stall
	// subsequent fetch for the refill.
	pc := p.walker.NextPC()
	lat, l2 := p.mem.InstFetch(pc, p.cycle)
	extra := int64(lat - p.cfg.Mem.L1HitLat)
	if extra > 0 {
		p.fetchResumeAt = p.cycle + extra
	}

	enterDecode := p.cycle + int64(p.cfg.FetchStages) + extra
	taken, n := 0, 0
	for n < width {
		k := p.walker.NextGroup(p.fetchBuf[:width-n])
		// The wrong-path flag and the speculation epoch are constant across
		// the batch: only the batch-terminating control transfer can change
		// either, below.
		wrong := p.wrongPath
		epoch := p.curEpoch
		var in *inst
		for i := 0; i < k; i++ {
			in = p.allocInst()
			in.d = p.fetchBuf[i]
			in.fetchCycle = p.cycle
			in.d.WrongPath = wrong
			in.enterDecode = enterDecode
			in.epoch = epoch
			if p.legacyLedger {
				in.lev.ev[power.UnitICache]++
				in.lev.mask |= 1 << uint(power.UnitICache)
			}
			p.frontQ.PushBack(in)
		}
		// One ledger add and one tally add per group: every member shares
		// the epoch, and integer sums make the batching exact.
		p.epochBuf[epoch].led[power.UnitICache] += uint32(k)
		p.tally[power.UnitICache] += uint64(k)
		p.Stats.Fetched += uint64(k)
		if wrong {
			p.Stats.WrongPathFetched += uint64(k)
		}
		if n == 0 && l2 {
			p.note(p.frontQ.At(p.frontQ.Len()-k), power.UnitDCache2)
		}
		n += k
		// NextGroup puts a control transfer — if any — in the batch's last
		// slot; everything before it is plain straight-line work.
		op := in.d.St.Op
		if !op.IsControl() {
			continue // batch ended because the group is full
		}
		p.note(in, power.UnitBPred)
		stop := false
		switch op {
		case isa.OpBranch:
			stop = p.fetchCondBranch(in, &taken)
		case isa.OpJump:
			p.btbTouch(in.d.PC, in.d.TakenPC)
			taken++
		case isa.OpCall:
			p.btbTouch(in.d.PC, in.d.TakenPC)
			p.ras.Push(in.d.FallPC)
			taken++
		case isa.OpReturn:
			p.ras.Pop() // target supplied by the walker (see bpred.RAS doc)
			taken++
		}
		if stop || taken >= p.cfg.MaxTakenPerCycle {
			break
		}
	}
}

// --------------------------------------------------------------- decode --

// decodeFused moves up to DecodeWidth instructions across the fetch/decode
// boundary by advancing the decoded cursor; per-instruction gates (throttle
// rates, the oracle-decode limit study) and power accounting match the
// legacy stage exactly.
//
//st:hotpath
func (p *Pipeline) decodeFused() {
	if p.faultArmed {
		p.stageFault(StageDecode)
	}
	width := p.cfg.DecodeWidth
	// Triggers only change at fetch and resolve, so whether any of them
	// restricts decode is loop-invariant; the common unthrottled case skips
	// the per-instruction rate scan entirely.
	throttled := p.ctrl.DecodeThrottled()
	oracleDecode := p.cfg.Oracle == core.OracleDecode
	// The cycle's decode events reach the run tally as one batched add per
	// unit after the loop (integer counts, so batching is exact); the
	// per-epoch ledger adds stay per instruction because a decode group can
	// span epochs.
	var decN, regN, lsqN uint64
	for n := 0; n < width && p.decoded < p.frontQ.Len(); n++ {
		in := p.frontQ.At(p.decoded)
		if in.enterDecode > p.cycle || p.decoded >= p.decodeCap {
			break
		}
		// Decode throttling applies per instruction: only triggers older
		// than this instruction restrict it (see core.DecodeRateFor).
		if throttled {
			if rate := p.ctrl.DecodeRateFor(in.d.Seq); !rate.ActiveAt(uint64(p.cycle)) {
				if n == 0 {
					p.Stats.DecodeGatedCycles++
				}
				break
			}
		}
		if oracleDecode && in.d.WrongPath {
			break // limit study: wrong-path instructions stall at decode
		}
		// Per-instruction decode work, mirroring decodeOne (the legacy
		// stage's form). Deliberate duplication: the body is beyond the
		// inliner's budget and interleaved A/B measured the extracted-call
		// version ~2% slower end to end; the identity and randomized
		// accounting tests pin the two copies to each other on every
		// profile, policy, width, and depth.
		in.enterWindow = p.cycle + int64(p.cfg.DecodeStages)
		op := in.d.St.Op
		in.fuKind = uint8(op.FU())
		in.execLat = int16(op.Latency() + p.cfg.ExtraExecLat)
		in.memOp = op.IsMem()
		in.loadOp = op == isa.OpLoad
		in.storeOp = op == isa.OpStore
		led := &p.epochBuf[in.epoch].led
		led[power.UnitRename]++
		led[power.UnitWindow]++
		decN++
		regs := uint32(0)
		if in.d.St.Src1 != isa.RegNone {
			regs++
		}
		if in.d.St.Src2 != isa.RegNone {
			regs++
		}
		if regs > 0 {
			led[power.UnitRegfile] += regs
			regN += uint64(regs)
		}
		if in.memOp {
			led[power.UnitLSQ]++
			lsqN++
		}
		if p.legacyLedger {
			lv := in.lev
			lv.ev[power.UnitRename]++
			lv.ev[power.UnitWindow]++
			lv.mask |= 1<<uint(power.UnitRename) | 1<<uint(power.UnitWindow)
			if regs > 0 {
				lv.ev[power.UnitRegfile] += uint8(regs)
				lv.mask |= 1 << uint(power.UnitRegfile)
			}
			if in.memOp {
				lv.ev[power.UnitLSQ]++
				lv.mask |= 1 << uint(power.UnitLSQ)
			}
		}
		if in.d.WrongPath {
			p.Stats.WrongPathDecoded++
		}
		p.decoded++
	}
	p.tally[power.UnitRename] += decN
	p.tally[power.UnitWindow] += decN
	p.tally[power.UnitRegfile] += regN
	p.tally[power.UnitLSQ] += lsqN
}

// ------------------------------------------------------------- dispatch --

// dispatchFused inserts decoded instructions into the window from the delay
// line's head. Decode is strictly in order, so the decoded prefix always
// starts at the ring head.
//
//st:hotpath
func (p *Pipeline) dispatchFused() {
	if p.faultArmed {
		p.stageFault(StageDispatch)
	}
	width := p.cfg.IssueWidth
	for n := 0; n < width && p.decoded > 0; n++ {
		in := p.frontQ.At(0)
		if in.enterWindow > p.cycle || p.window.Full() {
			return
		}
		if in.isMem() && p.lsqUsed >= p.cfg.LSQSize {
			return
		}
		p.frontQ.PopFront()
		p.decoded--
		// Per-instruction dispatch work, mirroring dispatchOne (the legacy
		// stage's form) — deliberate, measured duplication for the same
		// reason as the decode body above; the identity tests pin the
		// copies.
		nsrc := 0
		if r := in.d.St.Src1; r != isa.RegNone {
			if prod := p.regs[r]; prod != nil && !prod.done {
				in.srcs[0] = prod
				in.srcSeq[0] = prod.d.Seq
				nsrc = 1
				if p.eventIssue {
					prod.deps = append(prod.deps, instRef{in, in.d.Seq})
				}
			}
		}
		if r := in.d.St.Src2; r != isa.RegNone {
			if prod := p.regs[r]; prod != nil && !prod.done {
				in.srcs[nsrc] = prod
				in.srcSeq[nsrc] = prod.d.Seq
				nsrc++
				if p.eventIssue {
					prod.deps = append(prod.deps, instRef{in, in.d.Seq})
				}
			}
		}
		if d := in.d.St.Dest; d != isa.RegNone {
			p.regs[d] = in
		}
		if in.isMem() {
			p.lsqUsed++
		}
		if in.d.WrongPath {
			p.Stats.WrongPathDispatched++
		}
		in.windowCycle = p.cycle
		in.hasBarrier = false
		if p.ctrl.HasNoSelect() {
			if b, ok := p.ctrl.BarrierFor(in.d.Seq); ok {
				in.barrier = b
				in.hasBarrier = true
			}
		}
		in.wpos = int32(p.window.backSlot())
		if p.eventIssue {
			in.nwait = uint8(nsrc)
			if nsrc == 0 {
				p.setReady(in)
			} else {
				p.clearReady(in)
			}
			if in.hasBarrier {
				p.barrierQ = append(p.barrierQ, instRef{in, in.d.Seq})
			}
			if in.storeOp {
				p.storeQ = append(p.storeQ, instRef{in, in.d.Seq})
			}
		}
		p.window.PushBack(in)
	}
}

// --------------------------------------------------------------- squash --

// flushFrontFused squashes every undispatched instruction in the delay line,
// youngest first — the same global order the legacy path's back-to-front
// queue drains produce, which the checkpoint free-list ordering observes.
func (p *Pipeline) flushFrontFused() {
	for p.frontQ.Len() > 0 {
		p.squash(p.frontQ.PopBack())
	}
	p.decoded = 0
}
