package pipe

import (
	"testing"

	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/xrand"
)

// TestFetchBackPressureUsesActualCapacity is the regression test for the
// historical off-by-one: fetch stalled whenever fewer than FetchWidth slots
// were free, even though taken-branch-truncated groups routinely need less,
// so FetchIdleBackPressure overcounted and the fetch queue could never
// completely fill. With the fix, fetch proceeds while at least one slot is
// free (truncating the group to the space left) and the idle counter
// increments exactly on the cycles with zero free capacity. The test drives
// fetch alone — decode never runs, so back-pressure is guaranteed — and
// pins the counter against the capacity rule cycle by cycle, on both front
// ends.
func TestFetchBackPressureUsesActualCapacity(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		pl := build(t, "go", core.Baseline(), nil, core.OracleNone)
		pl.cfg.LegacyFrontEnd = legacy
		pl.fusedFront = !legacy

		frontLen := func() int { return pl.frontFetchLen() }
		var wantIdle uint64
		for i := 0; i < 4*pl.fetchCap; i++ {
			held := pl.fetchHeld || pl.cycle < pl.fetchResumeAt
			full := frontLen() == pl.fetchCap
			if !held && full {
				wantIdle++
			}
			if legacy {
				pl.fetch()
			} else {
				pl.fetchFused()
			}
			if frontLen() > pl.fetchCap {
				t.Fatalf("legacy=%v: fetch segment overfilled: %d > %d", legacy, frontLen(), pl.fetchCap)
			}
			pl.cycle++
		}
		if got := pl.Stats.FetchIdleBackPressure; got != wantIdle {
			t.Errorf("legacy=%v: FetchIdleBackPressure = %d, capacity rule implies %d", legacy, got, wantIdle)
		}
		if frontLen() != pl.fetchCap {
			t.Errorf("legacy=%v: fetch segment settled at %d, want completely full (%d)",
				legacy, frontLen(), pl.fetchCap)
		}
		if wantIdle == 0 {
			t.Errorf("legacy=%v: test never reached back-pressure", legacy)
		}
	}
}

// TestFusedSquashAccountingMatchesLegacy is the randomized fused-vs-legacy
// squash-ordering net: random structural shapes and throttling policies are
// run on both front ends, with mispredictions landing while groups straddle
// the fetch/decode boundary, and the full statistics plus the pool and
// checkpoint-arena accounting must agree exactly. A squash-order divergence
// shows up immediately in the checkpoint free list (handles are recycled
// LIFO, so order changes handle assignment and the arena high-water) and in
// the per-unit wasted-power totals.
func TestFusedSquashAccountingMatchesLegacy(t *testing.T) {
	rng := xrand.New(0x5005)
	profiles := []string{"go", "gcc", "twolf", "parser"}
	policies := []core.Policy{
		core.Baseline(),
		core.Selective("c2", core.Spec{Fetch: core.RateQuarter, NoSelect: true}, core.Spec{Fetch: core.RateStall}),
		core.Selective("dec", core.Spec{Fetch: core.RateHalf, Decode: core.RateQuarter}, core.Spec{Decode: core.RateStall}),
		core.PipelineGating(2),
	}
	for trial := 0; trial < 12; trial++ {
		bench := profiles[rng.Intn(len(profiles))]
		policy := policies[rng.Intn(len(policies))]
		depth := 6 + 2*rng.Intn(12)
		run := func(legacyFront bool) (Stats, [2]uint64, [3]int) {
			est := conf.Estimator(conf.NewBPRU(4 << 10))
			if policy.Gating {
				est = conf.NewJRS(4<<10, 12)
			}
			pl := build(t, bench, policy, est, core.OracleNone)
			pl.cfg.SetDepth(depth)
			pl.cfg.LegacyFrontEnd = legacyFront
			pl.cfg.StuckCycles = 20000
			// Rebuild with the mutated config so capacities and mode match.
			pl = New(pl.cfg, pl.walker, pl.pred, pl.est, pl.ctrl, pl.meter)
			pl.Run(6000)
			if err := pl.CheckInvariants(); err != nil {
				t.Fatalf("trial %d legacy=%v: %v", trial, legacyFront, err)
			}
			allocs, reuses := pl.PoolStats()
			leased, capacity, hw := pl.walker.CkptStats()
			return pl.Stats, [2]uint64{allocs, reuses}, [3]int{leased, capacity, hw}
		}
		fStats, fPool, fCkpt := run(false)
		lStats, lPool, lCkpt := run(true)
		if fStats != lStats {
			t.Errorf("trial %d (%s/%s/depth %d): stats diverged:\n fused:  %+v\n legacy: %+v",
				trial, bench, policy.Name, depth, fStats, lStats)
		}
		if fPool != lPool {
			t.Errorf("trial %d (%s/%s/depth %d): pool accounting diverged: fused %v, legacy %v",
				trial, bench, policy.Name, depth, fPool, lPool)
		}
		if fCkpt != lCkpt {
			t.Errorf("trial %d (%s/%s/depth %d): checkpoint accounting diverged: fused %v, legacy %v",
				trial, bench, policy.Name, depth, fCkpt, lCkpt)
		}
	}
}
