package pipe

import (
	"fmt"
	"math"
	"math/bits"

	"selthrottle/internal/isa"
	"selthrottle/internal/power"
	"selthrottle/internal/prog"
)

// CheckInvariants validates the core's internal consistency. It is called by
// tests after aggressive flush/throttle activity; any violation is a
// simulator bug, never a workload property.
//
// Invariants:
//  1. The window is ordered by sequence number (age order).
//  2. lsqUsed equals the number of memory operations in the window.
//  3. The rename table maps each register to the youngest in-window
//     producer of that register (or to nothing).
//  4. Front-end queues hold only instructions younger than everything in
//     the window, and are themselves age-ordered.
//  5. No committed (retired) instruction lingers anywhere.
//  6. Event-issue bookkeeping (when enabled): every resident instruction
//     records its true ring slot, the ready bitmap flags exactly the
//     window's ready unissued instructions, and the store/barrier side
//     lists cover every incomplete store and every unissued barrier
//     carrier in the window.
//  7. Checkpoint-lease accounting: every unresolved in-flight conditional
//     branch holds exactly one arena lease, nothing else holds any, and the
//     walker's leased count matches — i.e. resolution, squash, and recovery
//     can never leak (or double-free) a checkpoint slot.
//  8. Epoch-ledger accounting (see ledger.go): the open-epoch ring is
//     ordered by opening sequence number, the cached current-epoch and
//     retirement triggers match the ring, and every in-flight instruction
//     is bound to the open epoch whose span covers its sequence number.
//     Under LegacyEventLedger the check is exact: the sum of the open
//     ledgers must equal, per unit, the summed per-instruction event tables
//     of the in-flight instructions — i.e. epoch folding at squash and
//     recycling at retirement can never gain or lose an event relative to
//     the per-instruction reference.
func (p *Pipeline) CheckInvariants() error {
	// 1 + 2: window order and LSQ accounting.
	var prev uint64
	lsq := 0
	youngest := uint64(0)
	for i := 0; i < p.window.Len(); i++ {
		in := p.window.At(i)
		if i > 0 && in.d.Seq <= prev {
			return fmt.Errorf("window out of order at %d: %d after %d", i, in.d.Seq, prev)
		}
		prev = in.d.Seq
		youngest = in.d.Seq
		if in.isMem() {
			lsq++
		}
		if in.squashed {
			return fmt.Errorf("squashed instruction %d still in window", in.d.Seq)
		}
	}
	if lsq != p.lsqUsed {
		return fmt.Errorf("lsqUsed %d, window holds %d memory ops", p.lsqUsed, lsq)
	}

	// 3: rename table points at the youngest in-window producer.
	var want [isa.NumRegs]*inst
	for i := 0; i < p.window.Len(); i++ {
		in := p.window.At(i)
		if d := in.d.St.Dest; d != isa.RegNone {
			want[d] = in
		}
	}
	for r := range p.regs {
		got := p.regs[r]
		if got == nil {
			continue // architecturally ready; always safe
		}
		if got.squashed {
			return fmt.Errorf("rename table r%d points at a squashed instruction", r)
		}
		if want[r] != nil && got != want[r] {
			return fmt.Errorf("rename table r%d points at seq %d, youngest producer is %d",
				r, got.d.Seq, want[r].d.Seq)
		}
	}

	// 4: the front end holds only instructions younger than the window, in
	// age order. The fused delay line additionally pins its cursors and
	// segment occupancy counters to the resident instructions.
	if p.fusedFront {
		if err := p.checkFusedFrontEnd(youngest); err != nil {
			return err
		}
	} else {
		check := func(name string, q *ring[*inst]) error {
			var qprev uint64
			for i := 0; i < q.Len(); i++ {
				in := q.At(i)
				if in.d.Seq <= youngest && p.window.Len() > 0 {
					return fmt.Errorf("%s holds seq %d not younger than window tail %d",
						name, in.d.Seq, youngest)
				}
				if i > 0 && in.d.Seq <= qprev {
					return fmt.Errorf("%s out of order at %d", name, i)
				}
				qprev = in.d.Seq
				if in.squashed {
					return fmt.Errorf("%s holds squashed seq %d", name, in.d.Seq)
				}
			}
			return nil
		}
		if err := check("fetchQ", p.fetchQ); err != nil {
			return err
		}
		if err := check("decodeQ", p.decodeQ); err != nil {
			return err
		}
	}

	// 6: event-driven issue bookkeeping mirrors the window exactly.
	if p.eventIssue {
		expect := make([]uint64, len(p.readyMask))
		stores := make(map[uint64]bool)
		barriers := make(map[uint64]bool)
		for _, e := range p.storeQ {
			if e.in.d.Seq == e.seq && !e.in.done && !e.in.squashed {
				stores[e.seq] = true
			}
		}
		for _, e := range p.barrierQ {
			if e.in.d.Seq == e.seq && !e.in.issued && !e.in.squashed {
				barriers[e.seq] = true
			}
		}
		for i := 0; i < p.window.Len(); i++ {
			in := p.window.At(i)
			if slot := (p.window.head + i) % p.window.Cap(); int(in.wpos) != slot {
				return fmt.Errorf("seq %d records slot %d, resides in slot %d", in.d.Seq, in.wpos, slot)
			}
			if !in.issued {
				if ready := in.ready(); ready != (in.nwait == 0) {
					return fmt.Errorf("seq %d: nwait %d disagrees with pointer-chased readiness %v",
						in.d.Seq, in.nwait, ready)
				}
				if in.ready() {
					expect[in.wpos>>6] |= 1 << uint(in.wpos&63)
				}
			}
			if in.d.St.Op == isa.OpStore && !in.done && !stores[in.d.Seq] {
				return fmt.Errorf("incomplete store seq %d missing from storeQ", in.d.Seq)
			}
			if in.hasBarrier && !in.issued && !barriers[in.d.Seq] {
				return fmt.Errorf("unissued barrier carrier seq %d missing from barrierQ", in.d.Seq)
			}
		}
		for w := range expect {
			if expect[w] != p.readyMask[w] {
				return fmt.Errorf("ready bitmap word %d is %#x, window implies %#x", w, p.readyMask[w], expect[w])
			}
		}
	}

	// 7: checkpoint-lease accounting. Branches resolve exactly at
	// completion, so an in-flight branch must hold a lease iff it is not
	// done; squashed wheel residue must hold none (squash released it).
	leases := 0
	checkLease := func(name string, in *inst, leases *int) error {
		isBranch := in.d.St.Op == isa.OpBranch
		switch {
		case isBranch && !in.done && in.d.Ckpt == prog.NoCkpt:
			return fmt.Errorf("%s: unresolved branch seq %d lost its checkpoint lease", name, in.d.Seq)
		case isBranch && in.done && in.d.Ckpt != prog.NoCkpt:
			return fmt.Errorf("%s: resolved branch seq %d still holds checkpoint %d", name, in.d.Seq, in.d.Ckpt)
		case !isBranch && in.d.Ckpt != prog.NoCkpt:
			return fmt.Errorf("%s: non-branch seq %d holds checkpoint %d", name, in.d.Seq, in.d.Ckpt)
		}
		if in.d.Ckpt != prog.NoCkpt {
			*leases++
		}
		return nil
	}
	countLeases := func(name string, q *ring[*inst]) error {
		for i := 0; i < q.Len(); i++ {
			if err := checkLease(name, q.At(i), &leases); err != nil {
				return err
			}
		}
		return nil
	}
	if p.fusedFront {
		if err := countLeases("frontend", p.frontQ); err != nil {
			return err
		}
	} else {
		if err := countLeases("fetchQ", p.fetchQ); err != nil {
			return err
		}
		if err := countLeases("decodeQ", p.decodeQ); err != nil {
			return err
		}
	}
	if err := countLeases("window", p.window); err != nil {
		return err
	}
	for slot := range p.compQ {
		for _, in := range p.compQ[slot] {
			if in.squashed && in.d.Ckpt != prog.NoCkpt {
				return fmt.Errorf("wheel slot %d: squashed seq %d still holds checkpoint %d", slot, in.d.Seq, in.d.Ckpt)
			}
		}
	}
	if leased, _, _ := p.walker.CkptStats(); leased != leases {
		return fmt.Errorf("walker reports %d leased checkpoints, pipeline holds %d", leased, leases)
	}

	// 8: epoch-ledger accounting.
	return p.checkEpochs()
}

// checkEpochs validates the speculation-epoch ring and, under the legacy
// attribution scheme, the exact live-ledger accounting (invariant 8).
func (p *Pipeline) checkEpochs() error {
	if p.epochCount < 1 {
		return fmt.Errorf("no open epoch")
	}
	if int(p.epochCount) > len(p.epochBuf) {
		return fmt.Errorf("epoch ring holds %d of %d slots", p.epochCount, len(p.epochBuf))
	}
	if want := p.epochSlot(p.epochCount - 1); p.curEpoch != want {
		return fmt.Errorf("curEpoch %d, youngest open slot is %d", p.curEpoch, want)
	}
	wantRetire := int64(math.MaxInt64)
	if p.epochCount > 1 {
		wantRetire = p.epochBuf[p.epochSlot(1)].openSeq
	}
	if p.nextRetire != wantRetire {
		return fmt.Errorf("nextRetire %d, ring implies %d", p.nextRetire, wantRetire)
	}
	// pos maps a ring slot to its open-epoch position (-1 = not open), and
	// the walk checks the age ordering.
	pos := make([]int32, len(p.epochBuf))
	for i := range pos {
		pos[i] = -1
	}
	prev := int64(math.MinInt64)
	for i := int32(0); i < p.epochCount; i++ {
		slot := p.epochSlot(i)
		e := &p.epochBuf[slot]
		if i > 0 && e.openSeq <= prev {
			return fmt.Errorf("epoch ring out of order at %d: openSeq %d after %d", i, e.openSeq, prev)
		}
		prev = e.openSeq
		pos[slot] = i
	}

	// Every in-flight instruction must be bound to the open epoch whose
	// span covers its sequence number; under the legacy scheme, accumulate
	// the per-instruction event tables for the exact ledger cross-check.
	var want [power.NumUnits]uint64
	checkInst := func(in *inst) error {
		if in.epoch < 0 || int(in.epoch) >= len(p.epochBuf) || pos[in.epoch] < 0 {
			return fmt.Errorf("seq %d bound to epoch slot %d, which is not open", in.d.Seq, in.epoch)
		}
		i := pos[in.epoch]
		if open := p.epochBuf[in.epoch].openSeq; int64(in.d.Seq) <= open {
			return fmt.Errorf("seq %d not younger than its epoch's opening seq %d", in.d.Seq, open)
		}
		if i+1 < p.epochCount {
			if next := p.epochBuf[p.epochSlot(i+1)].openSeq; int64(in.d.Seq) > next {
				return fmt.Errorf("seq %d younger than its epoch's closing seq %d", in.d.Seq, next)
			}
		}
		if p.legacyLedger {
			for m := in.lev.mask; m != 0; m &= m - 1 {
				u := bits.TrailingZeros16(m)
				want[u] += uint64(in.lev.ev[u])
			}
		}
		return nil
	}
	checkRing := func(q *ring[*inst]) error {
		for i := 0; i < q.Len(); i++ {
			if err := checkInst(q.At(i)); err != nil {
				return err
			}
		}
		return nil
	}
	if p.fusedFront {
		if err := checkRing(p.frontQ); err != nil {
			return err
		}
	} else {
		if err := checkRing(p.fetchQ); err != nil {
			return err
		}
		if err := checkRing(p.decodeQ); err != nil {
			return err
		}
	}
	if err := checkRing(p.window); err != nil {
		return err
	}
	if p.legacyLedger {
		var got [power.NumUnits]uint64
		for i := int32(0); i < p.epochCount; i++ {
			for u, n := range p.epochBuf[p.epochSlot(i)].led {
				got[u] += uint64(n)
			}
		}
		if got != want {
			return fmt.Errorf("open ledgers hold %v, in-flight instructions hold %v", got, want)
		}
	}
	return nil
}

// checkFusedFrontEnd validates the fused delay line's structure against the
// instructions it holds: global age order, youth relative to the window, no
// squashed residue, decode-cursor discipline (the decoded prefix carries
// enter-dispatch stamps), and the two segment occupancies against their
// capacities. Enter-decode stamps are deliberately NOT required to be
// monotone along the ring: a fetch group formed right after an I-cache miss
// can carry a smaller stamp than the missing group ahead of it (both front
// ends gate decode on the head instruction only, so the inversion is
// harmless and identical in the two-ring reference).
func (p *Pipeline) checkFusedFrontEnd(youngest uint64) error {
	if p.decoded < 0 || p.decoded > p.frontQ.Len() {
		return fmt.Errorf("frontend decode cursor %d outside [0, %d]", p.decoded, p.frontQ.Len())
	}
	var prev uint64
	for i := 0; i < p.frontQ.Len(); i++ {
		in := p.frontQ.At(i)
		if in.d.Seq <= youngest && p.window.Len() > 0 {
			return fmt.Errorf("frontend holds seq %d not younger than window tail %d", in.d.Seq, youngest)
		}
		if i > 0 && in.d.Seq <= prev {
			return fmt.Errorf("frontend out of order at %d: %d after %d", i, in.d.Seq, prev)
		}
		prev = in.d.Seq
		if in.squashed {
			return fmt.Errorf("frontend holds squashed seq %d", in.d.Seq)
		}
		if i < p.decoded && in.enterWindow < in.enterDecode {
			return fmt.Errorf("decoded seq %d has enter-dispatch stamp %d before enter-decode %d",
				in.d.Seq, in.enterWindow, in.enterDecode)
		}
	}
	if fetchSeg := p.fetchSegLen(); fetchSeg > p.fetchCap || p.decoded > p.decodeCap {
		return fmt.Errorf("frontend occupancy fetch=%d/%d decode=%d/%d exceeds capacity",
			fetchSeg, p.fetchCap, p.decoded, p.decodeCap)
	}
	return nil
}
