package pipe

import (
	"testing"

	"selthrottle/internal/conf"
	"selthrottle/internal/core"
)

// TestInvariantsUnderStress steps the pipeline through heavy flush and
// throttle activity, validating the full set of structural invariants every
// few cycles. This is the repository's failure-injection net: any squash,
// rename-rebuild, or queue bug trips it within a few hundred cycles.
func TestInvariantsUnderStress(t *testing.T) {
	configs := []struct {
		name   string
		policy core.Policy
		oracle core.Oracle
		depth  int
	}{
		{"baseline-14", core.Baseline(), core.OracleNone, 14},
		{"baseline-6", core.Baseline(), core.OracleNone, 6},
		{"baseline-28", core.Baseline(), core.OracleNone, 28},
		{"c2-14", core.Selective("c2",
			core.Spec{Fetch: core.RateQuarter, NoSelect: true},
			core.Spec{Fetch: core.RateStall}), core.OracleNone, 14},
		{"decode-stall", core.Selective("d0",
			core.Spec{Decode: core.RateStall, NoSelect: true},
			core.Spec{Fetch: core.RateStall, Decode: core.RateStall}), core.OracleNone, 14},
		{"oracle-fetch", core.Baseline(), core.OracleFetch, 14},
		{"oracle-select", core.Baseline(), core.OracleSelect, 14},
		{"gating", core.PipelineGating(1), core.OracleNone, 20},
	}
	for _, cse := range configs {
		cse := cse
		t.Run(cse.name, func(t *testing.T) {
			pl := build(t, "go", cse.policy, conf.NewBPRU(4<<10), cse.oracle)
			pl.cfg.SetDepth(cse.depth)
			for step := 0; step < 12000; step++ {
				pl.Step()
				if step%7 == 0 {
					if err := pl.CheckInvariants(); err != nil {
						t.Fatalf("cycle %d: %v", step, err)
					}
				}
			}
			if pl.Stats.Committed == 0 {
				t.Fatal("no progress under stress")
			}
		})
	}
}

// TestInvariantsAcrossBenchmarks sweeps every profile briefly.
func TestInvariantsAcrossBenchmarks(t *testing.T) {
	for _, name := range []string{"compress", "gcc", "go", "bzip2", "crafty", "gzip", "parser", "twolf"} {
		name := name
		t.Run(name, func(t *testing.T) {
			pl := build(t, name, core.Selective("mix",
				core.Spec{Fetch: core.RateHalf, Decode: core.RateQuarter, NoSelect: true},
				core.Spec{Fetch: core.RateStall}), nil, core.OracleNone)
			for step := 0; step < 5000; step++ {
				pl.Step()
				if step%11 == 0 {
					if err := pl.CheckInvariants(); err != nil {
						t.Fatalf("cycle %d: %v", step, err)
					}
				}
			}
		})
	}
}
