package pipe

// Per-speculation-epoch power attribution.
//
// The paper's central metric splits every unit's activity into useful and
// wasted events, which requires knowing, for each squashed instruction, the
// events it had accumulated so far. The historical scheme carried a per-unit
// counter table on every in-flight instruction (13 bytes written on every
// note, walked bit by bit on every squash). The epoch ledger replaces it
// wholesale, Wattch-style: attribution needs no per-instruction counters,
// only a correct pool assignment at resolution — which speculation epochs
// deliver for whole instruction runs at once.
//
//   - An epoch is a run of consecutively fetched instructions bounded by
//     conditional branches: fetching a conditional branch closes the current
//     epoch (the branch is its last member) and opens a new one keyed by the
//     branch's sequence number, alongside the walker-arena checkpoint lease
//     the branch takes out (prog.Walker). The two handles part ways later —
//     the lease dies at resolution, the epoch must survive until its members
//     can neither be squashed nor produce further events — which is why the
//     epoch ring is its own arena rather than a field of the checkpoint slot.
//   - Every activity event lands in one flat per-epoch tally (the ledger):
//     an instruction's events are attributed to the epoch it was fetched in,
//     no matter which stage notes them or how much later.
//   - Epochs are squashed all-or-none. A flush at branch br kills exactly
//     the in-flight instructions younger than br, and those are exactly the
//     members of the epochs whose opening sequence number is >= br's: no
//     member of such an epoch has committed (in-order commit cannot pass the
//     unresolved br), and surviving instructions all belong to older epochs.
//     flushAfter therefore folds whole ledgers into the wasted pool —
//     O(epochs x units) instead of O(squashed instructions x touched units).
//   - An epoch retires (its slot recycles into the useful pool, where its
//     events already live via the activity tally) when its closing branch
//     commits: in-order commit guarantees every member has committed, so no
//     event can arrive late and no unresolved branch old enough to squash
//     the epoch remains. Wrong-path instructions still in flight when a run
//     drains were never squashed, so their epochs simply stay open and their
//     events stay useful — exactly the per-instruction scheme's semantics
//     (events move to the wasted pool at actual squash only, never eagerly
//     on the WrongPath mark).
//
// Exactness: ledgers and the pools they fold into are integer counters, so
// attribution is independent of fold order and batching granularity (the
// power.Meter.AddTally argument), and the member-set identities above make
// the folded totals equal the per-instruction reference count for count. The
// reference scheme survives behind Config.LegacyEventLedger (hpca03
// -legacyledger) and, when enabled, these ledgers become shadow bookkeeping
// that CheckInvariants cross-validates against the per-instruction counters:
// the sum of the open ledgers must equal, per unit, the summed counters of
// the in-flight instructions.

import (
	"math"

	"selthrottle/internal/power"
)

// epochRec is one open speculation epoch: the opening branch's sequence
// number (-1 for the base epoch) and the flat per-unit event ledger of the
// epoch's members. Counters are uint32: an epoch's per-unit event count is
// bounded by a small multiple of its member count, far below the range.
type epochRec struct {
	openSeq int64
	led     [power.NumUnits]uint32
}

// instEv is the per-instruction event table of the legacy attribution scheme
// (Config.LegacyEventLedger): one counter per unit plus a touched-units mask
// so squash walks only the handful of nonzero entries. Fast-path instructions
// carry no such table — inst.lev stays nil and untouched.
type instEv struct {
	ev   [power.NumUnits]uint8
	mask uint16
}

// initEpochs sizes the epoch ring and opens the base epoch. Open epochs are
// bounded by the in-flight conditional branches (each non-youngest open epoch
// is closed by a distinct uncommitted branch) plus the one unclosed youngest
// epoch, so the machine's in-flight instruction capacity bounds the ring.
func (p *Pipeline) initEpochs(capacity int) {
	p.epochBuf = make([]epochRec, capacity)
	p.resetEpochs()
}

// resetEpochs clears every open ledger and reopens the base epoch, restoring
// the just-constructed state (Pipeline.Reset's analogue of the pool drain).
func (p *Pipeline) resetEpochs() {
	for i := int32(0); i < p.epochCount; i++ {
		p.epochBuf[p.epochSlot(i)].led = [power.NumUnits]uint32{}
	}
	p.epochHead, p.epochCount = 0, 0
	p.nextRetire = math.MaxInt64
	p.epochHW = 0
	p.openEpoch(-1)
}

// epochSlot maps the i-th open epoch (0 = oldest) to its ring slot.
func (p *Pipeline) epochSlot(i int32) int32 {
	s := p.epochHead + i
	if n := int32(len(p.epochBuf)); s >= n {
		s -= n
	}
	return s
}

// openEpoch opens a new youngest epoch keyed by the opening branch's
// sequence number. The slot's ledger is already zero: slots are cleared as
// they are folded or retired, so the per-branch open costs two words, not an
// 11-counter clear.
//
//st:hotpath
func (p *Pipeline) openEpoch(openSeq int64) {
	if int(p.epochCount) == len(p.epochBuf) {
		panic("pipe: epoch ring overflow") // invariant: ring sized to InFlightBranches
	}
	slot := p.epochSlot(p.epochCount)
	p.epochBuf[slot].openSeq = openSeq
	p.epochCount++
	p.curEpoch = slot
	if p.epochCount == 2 {
		p.nextRetire = p.epochBuf[p.epochSlot(1)].openSeq
	}
	if int(p.epochCount) > p.epochHW {
		p.epochHW = int(p.epochCount)
	}
}

// refreshNextRetire recomputes the cached retirement trigger: the opening
// sequence number of the second-oldest epoch, which is the oldest epoch's
// closing branch. Commit compares one committed sequence number against this
// single cached value instead of touching the ring.
func (p *Pipeline) refreshNextRetire() {
	p.nextRetire = math.MaxInt64
	if p.epochCount > 1 {
		p.nextRetire = p.epochBuf[p.epochSlot(1)].openSeq
	}
}

// retireEpochs recycles every epoch whose closing branch has committed (s is
// the committing sequence number): in-order commit has passed the epoch's
// youngest member, so no event can arrive late, and no unresolved branch old
// enough to squash the epoch remains. The ledger's events already live in
// the activity tally (the useful pool's feed), so retirement only clears the
// slot for reuse.
//
//st:hotpath
func (p *Pipeline) retireEpochs(s int64) {
	for p.epochCount > 1 && p.epochBuf[p.epochSlot(1)].openSeq <= s {
		p.epochBuf[p.epochHead].led = [power.NumUnits]uint32{}
		p.epochHead = p.epochSlot(1)
		p.epochCount--
	}
	p.refreshNextRetire()
}

// foldEpochs folds every epoch opened at or after sequence number brSeq into
// the wasted pool and reopens a fresh current epoch keyed by brSeq. The
// flush at branch brSeq squashes exactly the members of those epochs (see
// the package comment above), and post-recovery fetch continues at the
// speculation level the flushing branch itself occupies, so it gets a fresh
// epoch under the same key. Under Config.LegacyEventLedger the ledgers are
// shadow bookkeeping and squash feeds the wasted pool per instruction
// instead; the folded totals are identical either way.
//
//st:hotpath
func (p *Pipeline) foldEpochs(brSeq int64) {
	for p.epochCount > 0 {
		top := &p.epochBuf[p.epochSlot(p.epochCount-1)]
		if top.openSeq < brSeq {
			break
		}
		if !p.legacyLedger {
			for u, n := range top.led {
				p.wastedTally[u] += uint64(n)
			}
		}
		top.led = [power.NumUnits]uint32{}
		p.epochCount--
	}
	// The flushing branch is in flight inside an older epoch, so the ring
	// can never drain completely.
	if p.epochCount == 0 {
		panic("pipe: flush folded every epoch") // invariant: flushing branch lives in an older epoch
	}
	p.openEpoch(brSeq) // also re-establishes curEpoch after the pops
	p.refreshNextRetire()
}

// EpochStats reports the epoch ring's behaviour: currently open epochs, ring
// capacity, and the high-water mark of concurrently open epochs. The ring is
// fixed at construction; tests pin the footprint the way PoolStats and
// prog.Walker.CkptStats pin the instruction pool and the checkpoint arena.
func (p *Pipeline) EpochStats() (open, capacity, highWater int) {
	return int(p.epochCount), len(p.epochBuf), p.epochHW
}

// note records one activity event on unit u attributed to in. The event
// lands in the run-wide activity tally (flushed to the meter once per Run)
// and in the ledger of in's fetch epoch, which carries it to the wasted pool
// if the epoch is squashed. Under Config.LegacyEventLedger the instruction's
// own event table is maintained too — the reference attribution path, which
// needs no saturation guard: every stage notes a unit at most a fixed
// handful of times (the maximum is three — regfile and window), far below
// the uint8 range.
//
//st:hotpath
func (p *Pipeline) note(in *inst, u power.Unit) {
	p.tally[u]++
	p.epochBuf[in.epoch].led[u]++
	if p.legacyLedger {
		in.lev.ev[u]++
		in.lev.mask |= 1 << uint(u)
	}
}
