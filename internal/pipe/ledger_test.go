package pipe

import (
	"testing"

	"selthrottle/internal/bpred"
	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/power"
	"selthrottle/internal/prog"
	"selthrottle/internal/xrand"
)

// buildLedger constructs a pipeline over a named profile with an explicit
// attribution mode and config shape (the ledger tests' analogue of build).
func buildLedger(t testing.TB, bench string, policy core.Policy, legacy bool, shape func(*Config)) (*Pipeline, *power.Meter) {
	t.Helper()
	p, ok := prog.ProfileByName(bench)
	if !ok {
		t.Fatalf("unknown profile %q", bench)
	}
	program := prog.Generate(p)
	w := prog.NewWalker(program)
	cfg := Default()
	cfg.LegacyEventLedger = legacy
	if shape != nil {
		shape(&cfg)
	}
	est := conf.Estimator(conf.NewBPRU(4 << 10))
	if policy.Gating {
		est = conf.NewJRS(4<<10, 12)
	}
	meter := &power.Meter{}
	return New(cfg, w, bpred.NewGshare(8<<10), est, core.NewController(policy), meter), meter
}

// TestEpochLedgerMatchesLegacyRandomized is the randomized attribution net:
// random profiles, policies, depths, and front-end/issue implementations are
// run under both attribution schemes, and the full statistics, the meter's
// per-unit useful and wasted totals, and the pool, checkpoint, and epoch
// accounting must agree exactly. A fold that gains or loses a single event —
// an epoch folded too eagerly (e.g. on the WrongPath mark), folded twice, or
// retired with a member still in flight — diverges immediately in the
// per-unit wasted totals.
func TestEpochLedgerMatchesLegacyRandomized(t *testing.T) {
	rng := xrand.New(0xE90C)
	profiles := []string{"go", "gcc", "twolf", "parser"}
	policies := []core.Policy{
		core.Baseline(),
		core.Selective("c2", core.Spec{Fetch: core.RateQuarter, NoSelect: true}, core.Spec{Fetch: core.RateStall}),
		core.Selective("dec", core.Spec{Fetch: core.RateHalf, Decode: core.RateQuarter}, core.Spec{Decode: core.RateStall}),
		core.PipelineGating(2),
	}
	for trial := 0; trial < 12; trial++ {
		bench := profiles[rng.Intn(len(profiles))]
		policy := policies[rng.Intn(len(policies))]
		depth := 6 + 2*rng.Intn(12)
		legacyFront := rng.Intn(2) == 1
		legacyScan := rng.Intn(4) == 0
		run := func(legacyLedger bool) (Stats, power.Meter, [2]uint64, [3]int, [2]int) {
			pl, meter := buildLedger(t, bench, policy, legacyLedger, func(c *Config) {
				c.SetDepth(depth)
				c.LegacyFrontEnd = legacyFront
				c.LegacyScanIssue = legacyScan
				c.StuckCycles = 20000
			})
			pl.Run(6000)
			if err := pl.CheckInvariants(); err != nil {
				t.Fatalf("trial %d legacyLedger=%v: %v", trial, legacyLedger, err)
			}
			allocs, reuses := pl.PoolStats()
			leased, capacity, hw := pl.walker.CkptStats()
			open, _, ehw := pl.EpochStats()
			return pl.Stats, *meter, [2]uint64{allocs, reuses}, [3]int{leased, capacity, hw}, [2]int{open, ehw}
		}
		fStats, fMeter, fPool, fCkpt, fEpoch := run(false)
		lStats, lMeter, lPool, lCkpt, lEpoch := run(true)
		if fStats != lStats {
			t.Errorf("trial %d (%s/%s/depth %d): stats diverged", trial, bench, policy.Name, depth)
		}
		if fMeter != lMeter {
			t.Errorf("trial %d (%s/%s/depth %d): power attribution diverged:\n epoch:  events %v wasted %v\n legacy: events %v wasted %v",
				trial, bench, policy.Name, depth, fMeter.Events, fMeter.Wasted, lMeter.Events, lMeter.Wasted)
		}
		if fPool != lPool || fCkpt != lCkpt {
			t.Errorf("trial %d (%s/%s/depth %d): pool/checkpoint accounting diverged", trial, bench, policy.Name, depth)
		}
		if fEpoch != lEpoch {
			t.Errorf("trial %d (%s/%s/depth %d): epoch accounting diverged: fast %v, legacy shadow %v",
				trial, bench, policy.Name, depth, fEpoch, lEpoch)
		}
	}
}

// TestEpochInvariantsUnderStress steps flush-heavy shapes under both
// attribution schemes, validating the epoch invariants (ring ordering,
// per-instruction epoch bindings, and — in legacy mode — the exact
// live-ledger cross-check against the per-instruction tables) every few
// cycles, mid-flight rather than only at a drained run end.
func TestEpochInvariantsUnderStress(t *testing.T) {
	c2 := core.Selective("c2",
		core.Spec{Fetch: core.RateQuarter, NoSelect: true},
		core.Spec{Fetch: core.RateStall})
	for _, legacy := range []bool{false, true} {
		for _, depth := range []int{6, 28} {
			pl, _ := buildLedger(t, "go", c2, legacy, func(c *Config) { c.SetDepth(depth) })
			for step := 0; step < 9000; step++ {
				pl.Step()
				if step%7 == 0 {
					if err := pl.CheckInvariants(); err != nil {
						t.Fatalf("legacy=%v depth=%d cycle %d: %v", legacy, depth, step, err)
					}
				}
			}
			if pl.Stats.Committed == 0 {
				t.Fatalf("legacy=%v depth=%d: no progress under stress", legacy, depth)
			}
		}
	}
}

// hasWrongPathInFlight reports whether any in-flight (fetched, uncommitted,
// unsquashed) instruction carries the wrong-path mark.
func hasWrongPathInFlight(pl *Pipeline) bool {
	for i := 0; i < pl.frontQ.Len(); i++ {
		if pl.frontQ.At(i).d.WrongPath {
			return true
		}
	}
	for i := 0; i < pl.window.Len(); i++ {
		if pl.window.At(i).d.WrongPath {
			return true
		}
	}
	return false
}

// TestWrongPathStragglersStayUseful pins the tail subtlety of the epoch
// design: wrong-path instructions still in flight when a run drains were
// never squashed, so their events must stay in the useful pool — epochs fold
// at actual squash only, never eagerly on the WrongPath mark. Both
// attribution schemes are driven to the same drain point, chosen so
// wrong-path work is verifiably in flight there, and must report
// bit-identical per-unit useful and wasted totals; the legacy run's
// CheckInvariants additionally proves (via the exact live-ledger
// cross-check) that the stragglers' events still sit in open epochs rather
// than the wasted pool.
func TestWrongPathStragglersStayUseful(t *testing.T) {
	run := func(legacy bool) (*Pipeline, *power.Meter) {
		pl, meter := buildLedger(t, "go", core.Baseline(), legacy, nil)
		target := uint64(20000)
		pl.Run(target)
		// Advance in small commit quanta until the drain point lands with
		// wrong-path work in flight. The instruction stream is deterministic
		// and mode-independent, so both schemes stop at the same point.
		for tries := 0; tries < 4000 && !hasWrongPathInFlight(pl); tries++ {
			target += 25
			pl.Run(target)
		}
		return pl, meter
	}
	fpl, fMeter := run(false)
	lpl, lMeter := run(true)
	if !hasWrongPathInFlight(fpl) || !hasWrongPathInFlight(lpl) {
		t.Fatal("drain point has no wrong-path stragglers; the tail case was not exercised")
	}
	if *fMeter != *lMeter {
		t.Errorf("attribution diverged at a drain with wrong-path stragglers:\n epoch:  events %v wasted %v\n legacy: events %v wasted %v",
			fMeter.Events, fMeter.Wasted, lMeter.Events, lMeter.Wasted)
	}
	if err := fpl.CheckInvariants(); err != nil {
		t.Errorf("epoch mode: %v", err)
	}
	if err := lpl.CheckInvariants(); err != nil {
		t.Errorf("legacy mode: %v", err)
	}
	// The stragglers carry events (at minimum their I-cache access), and
	// those events must be in the total pool, not the wasted pool: wasted
	// totals are identical to the reference, which by construction moves
	// events only at squash.
	straggler := false
	for i := 0; i < lpl.window.Len() && !straggler; i++ {
		in := lpl.window.At(i)
		straggler = in.d.WrongPath && in.lev.mask != 0
	}
	for i := 0; i < lpl.frontQ.Len() && !straggler; i++ {
		in := lpl.frontQ.At(i)
		straggler = in.d.WrongPath && in.lev.mask != 0
	}
	if !straggler {
		t.Error("no in-flight wrong-path instruction carries events; the useful-tail property was not exercised")
	}
}

// TestEpochRingFootprint pins the epoch arena's footprint the way the pool
// and checkpoint tests pin theirs: the ring is sized once from the machine's
// in-flight capacity, the open count and high-water mark stay within it
// through squash-heavy runs, and Reset restores the single base epoch.
func TestEpochRingFootprint(t *testing.T) {
	pl, _ := buildLedger(t, "go", core.Baseline(), false, func(c *Config) { c.SetDepth(28) })
	pl.Run(30000)
	open, capacity, hw := pl.EpochStats()
	if wantCap := pl.fetchCap + pl.decodeCap + pl.cfg.WindowSize + 2; capacity != wantCap {
		t.Errorf("epoch ring capacity %d, in-flight bound implies %d", capacity, wantCap)
	}
	if open < 1 || open > capacity || hw > capacity {
		t.Errorf("epoch accounting out of bounds: open %d, hw %d, capacity %d", open, hw, capacity)
	}
	if hw < 2 {
		t.Errorf("high-water %d: the run never had concurrent epochs", hw)
	}
	pl.Reset(pl.walker, pl.pred, pl.est, pl.ctrl, pl.meter)
	if open, _, hw := pl.EpochStats(); open != 1 || hw != 1 {
		t.Errorf("after Reset: open %d, hw %d, want the single base epoch", open, hw)
	}
}
