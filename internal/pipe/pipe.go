// Package pipe implements the cycle-level out-of-order superscalar core the
// reproduction's experiments run on: the stand-in for the paper's modified
// SimpleScalar/Wattch sim-outorder model.
//
// The core is an 8-wide machine with a parameterized in-order front end
// (fetch and decode pipes whose depths set the overall pipeline length, 6-28
// stages in the paper's sensitivity study), a unified RUU-style instruction
// window with wakeup/select issue logic, a load/store queue, the functional
// units of Table 3, and in-order commit. Branch mispredictions flush younger
// work and restore the workload walker from the branch's checkpoint, so
// recovery latency (front-end refill plus the configured extra penalty) is
// emergent, exactly the property the paper's pipeline-depth sweep exploits.
//
// Throttling hooks: every cycle the core asks the Selective Throttling
// controller (internal/core) for the effective fetch and decode rates, and
// the select loop honors no-select barriers; oracle modes suppress a single
// stage's processing of wrong-path instructions (Section 3's limit study).
//
// # Event-driven wakeup
//
// The issue stage is event-driven rather than a per-cycle scan of the whole
// window. The bookkeeping and its invariants (enforced by CheckInvariants,
// and by construction bit-identical to the historical scan — Config's
// LegacyScanIssue retains the scan as a cross-checkable reference):
//
//   - Dependent registration: at dispatch, an instruction whose source is an
//     in-flight, incomplete producer appends itself to that producer's deps
//     list (pointer + sequence number). A producer bound at rename is always
//     incomplete, so it later either completes — firing the wakeup — or is
//     squashed, in which case every registered dependent is younger and is
//     squashed with it. Entries are validated by sequence number, so pool
//     recycling can never alias a wakeup to the wrong dynamic instruction.
//   - Ready bitmap: one bit per window slot, set exactly when the resident
//     instruction has all operands available and has not issued. Bits are
//     written at dispatch, set by producer completion (wakeup), and cleared
//     at issue and at flush; readiness is monotonic while an instruction is
//     window-resident, so no event can un-ready a set bit. Selection walks
//     set bits oldest-first from the window head — the exact order of the
//     historical scan — and pops at most IssueWidth issuable entries;
//     entries skipped for structural reasons (functional unit exhausted,
//     no-select barrier, memory dependence) keep their bit and are
//     reconsidered the next cycle.
//   - Side lists: in-flight stores (for O(pending-stores) memory
//     disambiguation) and unissued no-select trigger followers (for the
//     NoSelectStalls statistic) are kept in age order, appended at dispatch,
//     truncated on flush, and lazily compacted; entries are seq-validated
//     like deps.
//
// # Instruction record and checkpoint leases
//
// The in-flight instruction record embeds a one-cache-line prog.DynInst;
// walker recovery state is NOT embedded. A conditional branch carries an
// int32 lease on the walker's checkpoint arena (prog.Walker), and the
// pipeline is responsible for the lease's life cycle: resolve releases it on
// a correct prediction, walker.Recover consumes it on a misprediction, and
// squash releases it for every killed branch. CheckInvariants verifies the
// exact lease accounting (every unresolved in-flight branch holds one, and
// nothing else holds any), and the pool tests' arena analog pins the
// footprint. Recycled instructions are reset field-selectively (see
// allocInst) so the pool's steady state writes a few words per instruction
// instead of the whole record.
package pipe

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"selthrottle/internal/bpred"
	"selthrottle/internal/cache"
	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/isa"
	"selthrottle/internal/power"
	"selthrottle/internal/prog"
)

// Config holds the core's structural parameters. Default() reproduces
// Table 3 with the paper's 14-stage baseline pipeline.
type Config struct {
	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	CommitWidth int

	WindowSize int // unified RUU / reorder buffer entries
	LSQSize    int

	FetchStages  int // in-order fetch pipe depth
	DecodeStages int // in-order decode/rename pipe depth
	ExtraExecLat int // added to every FU latency (depth sweep)

	MaxTakenPerCycle int // taken control transfers per fetch cycle
	MispredictExtra  int // extra recovery cycles (Table 3: 2)

	FUCount [isa.NumFUKinds]int

	Mem cache.Config

	BTBEntries int
	BTBWays    int
	RASDepth   int

	// PerfectDisambiguation disables load-store blocking entirely
	// (ablation/diagnostic; the default address-matching model is the
	// realistic one).
	PerfectDisambiguation bool

	// LegacyScanIssue selects the historical O(window) wakeup/select scan
	// instead of the event-driven issue stage. The two produce bit-identical
	// simulations; the scan survives as the reference implementation for the
	// identity regression tests and as a diagnostic fallback.
	LegacyScanIssue bool

	// LegacyFrontEnd selects the historical two-ring front end (separate
	// per-instruction fetch and decode queues) instead of the fused
	// delay line that carries whole fetch groups (see frontend.go). The two
	// produce bit-identical simulations; the rings survive as the reference
	// implementation for the identity regression tests, mirroring
	// LegacyScanIssue and sim.Config's LegacyWalk.
	LegacyFrontEnd bool

	// LegacyEventLedger selects the historical per-instruction power
	// attribution (a per-unit event table on every in-flight instruction,
	// folded into the wasted pool one instruction at a time on squash)
	// instead of the per-speculation-epoch ledgers (see ledger.go). The two
	// produce bit-identical simulations; the per-instruction scheme survives
	// as the reference implementation for the identity regression tests,
	// the established pattern of LegacyScanIssue/LegacyFrontEnd/LegacyWalk.
	LegacyEventLedger bool

	// StuckCycles is the no-commit cycle count after which RunE declares the
	// machine deadlocked (Run panics with the same *RunError). Zero selects
	// DefaultStuckCycles; stress harnesses and CI shapes tighten it to fail
	// fast. The threshold cannot influence a completed simulation's results.
	StuckCycles int

	// Fault is the fault-injection test hook (see FaultHook and
	// internal/faultinject); nil in every production configuration. The
	// hook's dynamic type must be comparable (a pointer suffices) so Config
	// itself stays a comparable value with a hook installed.
	Fault FaultHook

	Oracle core.Oracle
}

// DefaultStuckCycles is the deadlock threshold used when Config.StuckCycles
// is zero.
const DefaultStuckCycles = 100000

// stuckLimit resolves the configured deadlock threshold.
func (c *Config) stuckLimit() int {
	if c.StuckCycles > 0 {
		return c.StuckCycles
	}
	return DefaultStuckCycles
}

// Default returns the paper's Table 3 configuration at 14 pipeline stages.
func Default() Config {
	cfg := Config{
		FetchWidth:  8,
		DecodeWidth: 8,
		IssueWidth:  8,
		CommitWidth: 8,

		WindowSize: 128,
		LSQSize:    64,

		MaxTakenPerCycle: 2,
		MispredictExtra:  2,

		Mem:        cache.Default(),
		BTBEntries: 1024,
		BTBWays:    2,
		RASDepth:   32,
	}
	cfg.FUCount[isa.FUIntALU] = 8
	cfg.FUCount[isa.FUIntMult] = 2
	cfg.FUCount[isa.FUMemPort] = 2
	cfg.FUCount[isa.FUFPAlu] = 8
	cfg.FUCount[isa.FUFPMult] = 1
	cfg.SetDepth(14)
	return cfg
}

// SetDepth distributes a total fetch-to-commit pipeline depth across the
// in-order front end, following the paper's §5.3.1 methodology: the
// back end contributes a fixed four stages (issue, execute, writeback,
// commit); the remainder splits evenly between the fetch and decode pipes;
// and depths beyond the 14-stage baseline also lengthen execution and L1D
// latencies (one extra cycle per seven additional stages).
func (c *Config) SetDepth(total int) {
	if total < 6 {
		total = 6
	}
	front := total - 4
	c.FetchStages = (front + 1) / 2
	c.DecodeStages = front / 2
	extra := 0
	if total > 14 {
		extra = (total - 14) / 7
	}
	c.ExtraExecLat = extra
	c.Mem.L1HitLat = 1 + extra
}

// Depth reports the configured fetch-to-commit depth.
func (c *Config) Depth() int { return c.FetchStages + c.DecodeStages + 4 }

// inst is one in-flight dynamic instruction.
type inst struct {
	d prog.DynInst

	// Branch prediction state.
	predTaken bool
	cookie    uint64
	ctr       bpred.Counter2
	class     conf.Class

	// Selection throttling.
	barrier    uint64
	hasBarrier bool

	// Pipeline timing.
	enterDecode int64 // cycle at which decode may process it
	enterWindow int64 // cycle at which dispatch may insert it

	// srcs holds producers still in flight (nil = operand ready). Producers
	// are pool-recycled at commit, so each pointer is guarded by the
	// producer's sequence number captured at rename: a mismatch means the
	// producer retired and its slot was reused, i.e. the operand is ready.
	srcs   [2]*inst
	srcSeq [2]uint64

	// wpos is the window ring slot this instruction occupies while
	// dispatched (slots are stable for a resident instruction); it indexes
	// the ready bitmap.
	wpos int32

	// nwait counts bound producers that have not completed yet (event-driven
	// issue only). Dispatch sets it to the number of bound sources; each
	// producer completion decrements it exactly once (a bound producer is
	// always incomplete, so it either completes — firing the wakeup — or is
	// squashed together with this younger dependent). Zero means ready,
	// which CheckInvariants cross-validates against the pointer-chasing
	// ready() below.
	nwait uint8

	// deps lists the window-resident consumers waiting on this
	// instruction's result; completion walks it to wake newly-ready
	// dependents. The backing array survives pool recycling.
	deps []instRef

	// blockRef caches the store that last blocked this load (event-driven
	// issue): a stalled load is re-examined every cycle, and while the
	// cached store is still seq-valid, incomplete, same-address, AND older
	// than the load it proves the load blocked without walking the store
	// queue. The fast path re-checks the full predicate (including age:
	// sequence numbering restarts on Pipeline.Reset, so a stale cached
	// reference can alias a younger same-seq store from a previous run),
	// which makes a hit exactly equivalent to finding that store in the
	// walk — no reset across recycling is needed.
	blockRef instRef

	issued   bool
	done     bool
	squashed bool

	// fuKind, execLat, and the memory-op flags cache the static
	// instruction's functional-unit class, execution latency (base latency
	// plus the configured ExtraExecLat), and load/store classification,
	// written once at decode so the issue, execute, dispatch, and commit
	// stages stop re-deriving them from the opcode tables on every visit —
	// a ready instruction skipped for structural reasons is re-examined
	// every cycle. Valid from decode onward (no earlier stage reads them).
	fuKind  uint8
	execLat int16
	memOp   bool // isa.Op.IsMem()
	loadOp  bool // == isa.OpLoad
	storeOp bool // == isa.OpStore

	fetchCycle  int64 // diagnostics: when fetched
	windowCycle int64 // diagnostics: when dispatched into the window
	issueCycle  int64 // diagnostics: when issued

	// epoch is the ring slot of the speculation epoch this instruction was
	// fetched in (see ledger.go); every activity event the instruction
	// causes is attributed to that epoch's ledger. Slots are stable while an
	// epoch is open, and an instruction can never touch its ledger after the
	// epoch closes (fold implies this instruction was squashed; retirement
	// implies it committed).
	epoch int32

	// lev is the legacy per-instruction event table, allocated and
	// maintained only under Config.LegacyEventLedger; nil and untouched on
	// the fast path. Like deps, the allocation survives pool recycling.
	lev *instEv
}

// instRef is a pool-safe reference to a dynamic instruction: the pointer is
// only meaningful while the pointee's sequence number still equals seq (the
// pool recycles instructions, and a recycled slot carries a new sequence).
type instRef struct {
	in  *inst
	seq uint64
}

// isMem/isLoad read the classification cached at decode; like fuKind and
// execLat they are meaningful from decode onward, and every caller (dispatch,
// issue, complete, commit, window flush) runs after decode.
func (in *inst) isMem() bool  { return in.memOp }
func (in *inst) isLoad() bool { return in.loadOp }

// ready reports whether all source operands are available. A producer whose
// sequence number no longer matches the one captured at rename has committed
// and been recycled by the pool — its result is architecturally available.
func (in *inst) ready() bool {
	for i, p := range in.srcs {
		if p != nil && p.d.Seq == in.srcSeq[i] && !p.done {
			return false
		}
	}
	return true
}

// Stats accumulates the run's architectural statistics.
type Stats struct {
	Cycles    uint64
	Committed uint64
	Fetched   uint64

	WrongPathFetched    uint64
	WrongPathDecoded    uint64
	WrongPathDispatched uint64
	WrongPathIssued     uint64

	CondBranches uint64 // committed conditional branches
	Mispredicts  uint64 // committed mispredicted conditional branches

	FetchGatedCycles  uint64 // fetch cycles suppressed by throttling
	DecodeGatedCycles uint64
	NoSelectStalls    uint64 // issue opportunities blocked by no-select

	FetchIdleHeld         uint64 // cycles fetch idled on hold/recovery/miss
	FetchIdleBackPressure uint64 // cycles fetch idled on front-end back-pressure

	OracleHolds       uint64 // oracle-fetch holds initiated
	TrueFlushes       uint64 // flushes triggered by correct-path branches
	ResolveLatTotal   uint64 // summed fetch-to-flush latency of mispredicted branches
	ResolveWindowWait uint64 // summed dispatch-to-flush latency
	ResolveIssueWait  uint64 // summed dispatch-to-issue latency

	Quality conf.Quality // confidence estimator quality (SPEC/PVN)
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MissRate returns the committed-branch misprediction rate.
func (s *Stats) MissRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// Pipeline is one simulated core bound to a workload walker, a branch
// predictor, a confidence estimator, and a throttle controller.
type Pipeline struct {
	cfg    Config
	walker *prog.Walker
	pred   bpred.DirPredictor
	est    conf.Estimator
	ctrl   *core.Controller
	mem    *cache.Hierarchy
	btb    *bpred.BTB
	ras    *bpred.RAS
	meter  *power.Meter

	cycle int64

	fetchQ  *ring[*inst] // legacy front end only
	decodeQ *ring[*inst] // legacy front end only
	window  *ring[*inst]
	lsqUsed int

	// Fused front-end delay line (default; Config.LegacyFrontEnd selects the
	// two-ring reference path above). Whole fetch groups flow through one
	// instruction ring; decode advances a boundary cursor instead of moving
	// instructions between queues. See frontend.go for the structure and its
	// invariants.
	fusedFront bool
	frontQ     *ring[*inst]   // the delay line: fetched, undispatched instructions
	decoded    int            // length of frontQ's decoded prefix (the decode segment)
	fetchCap   int            // fetch-segment capacity (== legacy fetchQ cap)
	decodeCap  int            // decode-segment capacity (== legacy decodeQ cap)
	fetchBuf   []prog.DynInst // scratch for walker NextGroup batches

	regs [isa.NumRegs]*inst // speculative rename table

	// Completion schedule: compQ[cycle % len] holds instructions finishing
	// execution that cycle.
	compQ [][]*inst

	wrongPath      bool   // fetch is currently beyond a mispredicted branch
	fetchResumeAt  int64  // recovery / icache-miss gate on fetch
	fetchHeldBySeq uint64 // oracle-fetch hold (0 = none)
	fetchHeld      bool

	unexecStores []uint64 // scratch for the legacy scan's memory disambiguation

	// Event-driven issue state (unused under LegacyScanIssue). See the
	// package comment for the invariants.
	eventIssue bool
	readyMask  []uint64  // per-window-slot bit: resident, ready, unissued
	storeQ     []instRef // age-ordered in-flight (dispatched, incomplete) stores
	barrierQ   []instRef // age-ordered unissued instructions carrying a no-select barrier

	// free is the instruction pool: retired and squashed instructions are
	// recycled here and handed back out by fetch, so the steady-state cycle
	// loop allocates nothing. Fresh instructions are carved from slab in
	// chunks, so the machine's in-flight population is backed by a few
	// contiguous arrays instead of scattered heap objects (the pool's
	// working set is bigger than L1, so adjacency matters).
	// poolAllocs/poolReused instrument the pool (see PoolStats).
	free       []*inst
	slab       []inst
	poolAllocs uint64
	poolReused uint64

	// tally accumulates per-unit activity events across cycles; Run (and
	// FlushTally) folds it into the meter. Counts are integers, so the
	// deferred flush is bit-identical to a per-cycle flush (see
	// power.Meter.AddTally) while keeping the per-cycle cost to plain
	// integer increments. wastedTally is the squash-side twin: flushAfter
	// folds the squashed epochs' ledgers here with integer adds (or, under
	// LegacyEventLedger, squash moves each dead instruction's events here
	// one instruction at a time).
	tally       [power.NumUnits]uint64
	wastedTally [power.NumUnits]uint64

	// Speculation-epoch ledgers (see ledger.go): a ring of open epochs in
	// age order. curEpoch is the youngest epoch's slot (the one fetch binds
	// new instructions to); nextRetire caches the oldest epoch's closing
	// sequence number so commit's retirement check is one compare.
	// legacyLedger mirrors cfg.LegacyEventLedger (hot-loop copy); under it
	// the ledgers are shadow bookkeeping cross-checked by CheckInvariants.
	epochBuf     []epochRec
	epochHead    int32
	epochCount   int32
	curEpoch     int32
	nextRetire   int64
	epochHW      int
	legacyLedger bool

	// CommitTrace, when set, is invoked for every committed instruction
	// (diagnostics and tests).
	CommitTrace func(seq, pc uint64, cycle int64)

	// DebugFlushes, when non-empty, dumps every correct-path misprediction
	// flush with the given label prefix (development diagnostics).
	DebugFlushes string

	// Verbose-fetch debug window, set via SetDebugFetchWindow. dbgFetchArmed
	// is the hoisted gate the per-cycle fetch paths test: in the (default)
	// disarmed state the hot loop pays one predictable bool check instead of
	// re-deriving the window's validity and range every cycle.
	dbgFetchLo, dbgFetchHi int64
	dbgFetchArmed          bool

	// faultArmed hoists the Config.Fault != nil test (set once in New): the
	// per-cycle stage paths pay one predictable bool check when fault
	// injection is off, the overwhelmingly common case.
	faultArmed bool

	// canceled is the cooperative-cancellation flag Cancel sets (from any
	// goroutine); RunE polls it every cancelCheckCycles cycles. Reset clears
	// it — not RunE, so one Cancel stops both the warmup and measurement
	// runs sharing a reset.
	canceled atomic.Bool

	// runTarget is the commit target of the RunE in progress, captured for
	// failure snapshots.
	runTarget uint64

	flushCount int // counts true flushes for DebugFlushes selection

	Stats Stats
}

// maxCompLat bounds scheduled completion latencies (exec + L2 miss + slack).
const maxCompLat = 64

// New builds a pipeline. All collaborators are injected so experiments can
// swap predictors, estimators, policies, and oracle modes independently.
func New(cfg Config, w *prog.Walker, pred bpred.DirPredictor, est conf.Estimator,
	ctrl *core.Controller, meter *power.Meter) *Pipeline {
	p := &Pipeline{
		cfg:    cfg,
		walker: w,
		pred:   pred,
		est:    est,
		ctrl:   ctrl,
		mem:    cache.NewHierarchy(cfg.Mem),
		btb:    bpred.NewBTB(cfg.BTBEntries, cfg.BTBWays),
		ras:    bpred.NewRAS(cfg.RASDepth),
		meter:  meter,
	}
	p.faultArmed = cfg.Fault != nil
	p.fetchCap = cfg.FetchStages*cfg.FetchWidth + 2*cfg.FetchWidth
	p.decodeCap = cfg.DecodeStages*cfg.DecodeWidth + 2*cfg.DecodeWidth
	p.fetchQ = newRing[*inst](p.fetchCap)
	p.decodeQ = newRing[*inst](p.decodeCap)
	p.fusedFront = !cfg.LegacyFrontEnd
	p.frontQ = newRing[*inst](p.fetchCap + p.decodeCap)
	p.fetchBuf = make([]prog.DynInst, cfg.FetchWidth)
	p.window = newRing[*inst](cfg.WindowSize)
	p.compQ = make([][]*inst, maxCompLat)
	for i := range p.compQ {
		// Pre-size each wheel slot: several issue cycles with different
		// latencies can land on one slot, so give each room for a full
		// issue group up front; rare overflows grow once and stick.
		p.compQ[i] = make([]*inst, 0, cfg.IssueWidth)
	}
	p.unexecStores = make([]uint64, 0, cfg.LSQSize)
	p.eventIssue = !cfg.LegacyScanIssue
	p.readyMask = make([]uint64, (p.window.Cap()+63)/64)
	p.legacyLedger = cfg.LegacyEventLedger
	p.initEpochs(p.fetchCap + p.decodeCap + cfg.WindowSize + 2)
	return p
}

// SetDebugFetchWindow enables verbose fetch logging for cycles in [lo, hi)
// (development diagnostics; lo >= hi disarms it). The armed flag is
// precomputed here so the per-cycle fetch paths check a single bool.
func (p *Pipeline) SetDebugFetchWindow(lo, hi int64) {
	p.dbgFetchLo, p.dbgFetchHi = lo, hi
	p.dbgFetchArmed = lo < hi
}

// Reset rewinds the pipeline to its just-constructed state and rebinds its
// collaborators, reusing every internal structure (rings, completion wheel,
// instruction pool, caches, BTB, RAS). The structural configuration is
// unchanged — callers that need a different Config must build a new
// Pipeline. A reset pipeline produces bit-identical results to a fresh one.
func (p *Pipeline) Reset(w *prog.Walker, pred bpred.DirPredictor, est conf.Estimator,
	ctrl *core.Controller, meter *power.Meter) {
	p.walker, p.pred, p.est, p.ctrl, p.meter = w, pred, est, ctrl, meter
	p.mem.Reset()
	p.btb.Reset()
	p.ras.Reset()
	p.cycle = 0
	for p.fetchQ.Len() > 0 {
		p.freeInst(p.fetchQ.PopFront())
	}
	for p.decodeQ.Len() > 0 {
		p.freeInst(p.decodeQ.PopFront())
	}
	for p.frontQ.Len() > 0 {
		p.freeInst(p.frontQ.PopFront())
	}
	p.decoded = 0
	for p.window.Len() > 0 {
		p.freeInst(p.window.PopFront())
	}
	for i := range p.compQ {
		for _, in := range p.compQ[i] {
			// Squashed entries live only on the wheel; anything else was
			// window-resident and is already back in the pool.
			if in.squashed {
				p.freeInst(in)
			}
		}
		p.compQ[i] = p.compQ[i][:0]
	}
	for r := range p.regs {
		p.regs[r] = nil
	}
	p.lsqUsed = 0
	p.wrongPath = false
	p.fetchResumeAt = 0
	p.fetchHeldBySeq = 0
	p.fetchHeld = false
	p.unexecStores = p.unexecStores[:0]
	clear(p.readyMask)
	p.storeQ = p.storeQ[:0]
	p.barrierQ = p.barrierQ[:0]
	p.tally = [power.NumUnits]uint64{}
	p.wastedTally = [power.NumUnits]uint64{}
	p.resetEpochs()
	p.flushCount = 0
	p.canceled.Store(false)
	p.Stats = Stats{}
}

// allocInst hands out an instruction, recycling the pool before touching the
// heap. Steady-state fetch never allocates: the pool is replenished by
// commit and squash. The deps backing array is kept across recycling so the
// wakeup lists stop allocating once they reach their high-water capacities.
//
// Recycling resets only the fields a reader could see before a writer: the
// lifecycle flags, the source bindings (dispatch binds at most two and the
// rest must read as nil), the barrier flag (dispatch writes both arms), and
// — under the legacy attribution scheme only — the per-instruction event
// table. Everything else is written before it is read on every path — d by
// Next, the epoch binding and prediction state by fetch (the only readers),
// enter/timing fields and the fuKind/execLat cache by their stages — so a
// full struct zero (several cache lines per instruction) buys nothing.
//
//st:hotpath
func (p *Pipeline) allocInst() *inst {
	if n := len(p.free) - 1; n >= 0 {
		in := p.free[n]
		p.free = p.free[:n]
		in.deps = in.deps[:0]
		in.srcs[0], in.srcs[1] = nil, nil
		in.issued, in.done, in.squashed = false, false, false
		in.hasBarrier = false
		if p.legacyLedger {
			*in.lev = instEv{}
		}
		p.poolReused++
		return in
	}
	p.poolAllocs++
	if len(p.slab) == 0 {
		p.slab = make([]inst, 64) //st:alloc-ok — amortized pool refill; PoolStats pins steady state
	}
	in := &p.slab[0]
	p.slab = p.slab[1:]
	// Pre-size the wakeup list so the common case (a handful of dependents)
	// never grows it; rare crowded producers grow once and keep the larger
	// backing array through recycling. The legacy event table likewise
	// persists through recycling (and is never allocated on the fast path).
	in.deps = make([]instRef, 0, 8) //st:alloc-ok — once per pooled instruction, recycled forever
	if p.legacyLedger {
		in.lev = new(instEv) //st:alloc-ok — legacy-ledger mode only, never on the fast path
	}
	return in
}

// freeInst returns an instruction to the pool. The instruction's fields are
// deliberately left intact until reallocation: younger instructions may
// still hold seq-guarded source pointers to it (see inst.ready).
//
//st:hotpath
func (p *Pipeline) freeInst(in *inst) {
	p.free = append(p.free, in)
}

// PoolStats reports the instruction pool's behaviour since construction:
// how many instructions were freshly heap-allocated and how many were
// recycled. After warmup, allocs must stop growing — tests use this probe
// to catch allocation regressions in the cycle loop.
func (p *Pipeline) PoolStats() (allocs, reuses uint64) {
	return p.poolAllocs, p.poolReused
}

// Mem exposes the cache hierarchy (for reports).
func (p *Pipeline) Mem() *cache.Hierarchy { return p.mem }

// Cycle returns the current cycle number.
func (p *Pipeline) Cycle() int64 { return p.cycle }

// Run simulates until n instructions have committed and returns the stats.
// It is the legacy panicking wrapper around RunE: any terminal failure
// (deadlock, wrong-path commit, invariant violation, cancellation) is raised
// as a *RunError panic, preserving the historical fail-fast contract for
// callers without a supervisor.
func (p *Pipeline) Run(n uint64) *Stats {
	st, err := p.RunE(n)
	if err != nil {
		panic(err) // fail-fast: legacy contract, typed *RunError for sim.Guard
	}
	return st
}

// cancelCheckCycles is the amortization interval of RunE's cooperative
// cancellation check: one counter decrement per cycle on the hot path, one
// atomic load per interval. At typical simulation speeds (millions of cycles
// per second) an interval of 1024 cycles bounds the cancellation response to
// well under a millisecond while keeping the check invisible to
// BenchmarkSingleRun.
const cancelCheckCycles = 1024

// RunE simulates until n instructions have committed and returns the stats,
// or a *RunError describing the terminal failure: ErrDeadlock when the
// machine makes no commit progress for Config.StuckCycles cycles, ErrCanceled
// when Cancel stopped the run, or ErrWrongPathCommit/ErrPanic when a
// simulator invariant broke mid-cycle (recovered here, with the machine
// snapshot and panicking stack attached). After an error the pipeline's
// in-flight state is undefined; Reset restores it for reuse.
func (p *Pipeline) RunE(n uint64) (st *Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			// Deliberately convert while the panicking frames are still
			// live, so ErrPanic stacks point at the true origin.
			err = p.recoverRunError(r)
		}
	}()
	p.runTarget = n
	lastCommit := p.Stats.Committed
	stuck, limit := 0, p.cfg.stuckLimit()
	check := cancelCheckCycles
	for p.Stats.Committed < n {
		p.Step()
		if p.Stats.Committed == lastCommit {
			stuck++
			if stuck > limit {
				return nil, p.newRunError(ErrDeadlock, nil)
			}
		} else {
			stuck = 0
			lastCommit = p.Stats.Committed
		}
		if check--; check <= 0 {
			check = cancelCheckCycles
			if p.canceled.Load() {
				return nil, p.newRunError(ErrCanceled, nil)
			}
		}
	}
	p.FlushTally()
	return &p.Stats, nil
}

// Cancel requests a cooperative stop of the RunE in progress (safe from any
// goroutine; typically a supervisor's deadline watchdog). The run returns an
// ErrCanceled *RunError within cancelCheckCycles cycles. The flag persists
// until Reset, so a canceled warmup also cancels the measurement run that
// would follow it.
func (p *Pipeline) Cancel() { p.canceled.Store(true) }

// frontFetchLen reports the fetched-but-undecoded instruction count of the
// active front end (diagnostics).
func (p *Pipeline) frontFetchLen() int {
	if p.fusedFront {
		return p.fetchSegLen()
	}
	return p.fetchQ.Len()
}

// frontDecodeLen reports the decoded-but-undispatched instruction count of
// the active front end (diagnostics).
func (p *Pipeline) frontDecodeLen() int {
	if p.fusedFront {
		return p.decoded
	}
	return p.decodeQ.Len()
}

// FlushTally folds the accumulated activity and wasted tallies into the
// meter. Run calls it before returning; callers driving Step directly must
// call it before reading the meter.
func (p *Pipeline) FlushTally() {
	p.meter.AddTally(&p.tally)
	p.meter.AddWastedTally(&p.wastedTally)
}

// Step advances the machine one cycle. Stages run back to front so that
// same-cycle structural hazards resolve in program order.
//
//st:hotpath
func (p *Pipeline) Step() {
	if p.faultArmed {
		p.stageFault(StageStep)
	}
	p.commit()
	p.complete()
	p.issue()
	if p.fusedFront {
		p.dispatchFused()
		p.decodeFused()
		p.fetchFused()
	} else {
		p.dispatch()
		p.decode()
		p.fetch()
	}
	p.cycle++
	p.meter.AddCycle()
	p.Stats.Cycles++
}

// ---------------------------------------------------------------- fetch --

//st:hotpath
func (p *Pipeline) fetch() {
	if p.faultArmed {
		p.stageFault(StageFetch)
	}
	dbg := p.dbgFetchArmed && p.cycle >= p.dbgFetchLo && p.cycle < p.dbgFetchHi
	if p.fetchHeld || p.cycle < p.fetchResumeAt {
		if dbg {
			//st:alloc-ok — debug-only path, armed by SetDebugFetchWindow, off in production
			fmt.Printf("  f@%d held=%v resumeAt=%d\n", p.cycle, p.fetchHeld, p.fetchResumeAt)
		}
		p.Stats.FetchIdleHeld++
		return
	}
	if dbg {
		//st:alloc-ok — debug-only path, armed by SetDebugFetchWindow, off in production
		defer func() {
			fmt.Printf("  f@%d fetchQ=%d decodeQ=%d window=%d\n", p.cycle, p.fetchQ.Len(), p.decodeQ.Len(), p.window.Len())
		}()
	}
	rate := p.ctrl.FetchRate()
	if !rate.ActiveAt(uint64(p.cycle)) {
		p.Stats.FetchGatedCycles++
		p.ctrl.NoteGatedCycle()
		return
	}
	// Back-pressure gates on the capacity actually available, not on a full
	// FetchWidth group: the walker often supplies fewer than FetchWidth
	// instructions (taken-branch-truncated groups), so requiring a full
	// group's worth of free slots both overcounted FetchIdleBackPressure and
	// idled fetch with room to spare. Fetch proceeds while at least one slot
	// is free and the group is truncated to the space left.
	width := p.cfg.FetchWidth
	if avail := p.fetchQ.Cap() - p.fetchQ.Len(); avail < width {
		if avail == 0 {
			p.Stats.FetchIdleBackPressure++
			return // front-end back-pressure
		}
		width = avail
	}

	// One I-cache access per fetch group; misses delay the group and stall
	// subsequent fetch for the refill.
	pc := p.walker.NextPC()
	lat, l2 := p.mem.InstFetch(pc, p.cycle)
	extra := int64(lat - p.cfg.Mem.L1HitLat)
	if extra > 0 {
		p.fetchResumeAt = p.cycle + extra
	}

	taken := 0
	for slot := 0; slot < width; slot++ {
		in := p.allocInst()
		in.fetchCycle = p.cycle
		p.walker.Next(&in.d)
		in.d.WrongPath = p.wrongPath
		in.enterDecode = p.cycle + int64(p.cfg.FetchStages) + extra
		in.epoch = p.curEpoch
		p.note(in, power.UnitICache)
		if slot == 0 && l2 {
			p.note(in, power.UnitDCache2)
		}
		p.Stats.Fetched++
		if in.d.WrongPath {
			p.Stats.WrongPathFetched++
		}

		op := in.d.St.Op
		if op.IsControl() {
			p.note(in, power.UnitBPred)
		}
		stop := false
		switch op {
		case isa.OpBranch:
			stop = p.fetchCondBranch(in, &taken)
		case isa.OpJump:
			p.btbTouch(in.d.PC, in.d.TakenPC)
			taken++
		case isa.OpCall:
			p.btbTouch(in.d.PC, in.d.TakenPC)
			p.ras.Push(in.d.FallPC)
			taken++
		case isa.OpReturn:
			p.ras.Pop() // target supplied by the walker (see bpred.RAS doc)
			taken++
		}

		p.fetchQ.PushBack(in)
		if stop || taken >= p.cfg.MaxTakenPerCycle {
			break
		}
	}
}

// fetchCondBranch predicts and steers a conditional branch; it returns true
// when the fetch group must end (oracle-fetch hold or BTB-miss redirect).
//
//st:hotpath
func (p *Pipeline) fetchCondBranch(in *inst, taken *int) bool {
	// The branch closes the current speculation epoch (it is that epoch's
	// youngest member — in.epoch is already bound) and opens the next one;
	// everything fetched behind it is squashed iff the branch or an older
	// one flushes. This mirrors the checkpoint lease the walker just issued
	// for the same branch, but with an independent lifetime (see ledger.go).
	p.openEpoch(int64(in.d.Seq))
	predTaken, ctr, cookie := p.pred.Predict(in.d.PC)
	in.predTaken = predTaken
	in.cookie = cookie
	in.ctr = ctr
	in.class = p.est.Estimate(in.d.PC, ctr)
	p.ctrl.OnBranchPredicted(in.d.Seq, in.class)

	if p.cfg.Oracle == core.OracleFetch && predTaken != in.d.Taken && !in.d.WrongPath {
		// Limit study: do not fetch the mis-speculated path. Steer the
		// walker down the actual path but hold fetch until resolution,
		// paying the normal recovery latency (§3, oracle fetch).
		p.walker.Steer(in.d.Taken)
		p.fetchHeld = true
		p.fetchHeldBySeq = in.d.Seq
		p.Stats.OracleHolds++
		return true
	}

	p.walker.Steer(predTaken)
	if predTaken != in.d.Taken {
		p.wrongPath = true
	}
	if predTaken {
		*taken++
		// A taken prediction without a BTB entry cannot redirect fetch
		// this cycle: end the group (one-cycle fetch bubble).
		if _, hit := p.btb.Lookup(in.d.PC); !hit {
			p.btb.Insert(in.d.PC, in.d.TakenPC)
			return true
		}
	}
	return false
}

// btbTouch models target-buffer activity for unconditional control.
func (p *Pipeline) btbTouch(pc, target uint64) {
	if _, hit := p.btb.Lookup(pc); !hit {
		p.btb.Insert(pc, target)
	}
}

// --------------------------------------------------------------- decode --

//st:hotpath
func (p *Pipeline) decode() {
	if p.faultArmed {
		p.stageFault(StageDecode)
	}
	width := p.cfg.DecodeWidth
	// Triggers only change at fetch and resolve, so whether any of them
	// restricts decode is loop-invariant; the common unthrottled case skips
	// the per-instruction rate scan entirely.
	throttled := p.ctrl.DecodeThrottled()
	for n := 0; n < width && p.fetchQ.Len() > 0; n++ {
		in := p.fetchQ.At(0)
		if in.enterDecode > p.cycle || p.decodeQ.Full() {
			return
		}
		// Decode throttling applies per instruction: only triggers older
		// than this instruction restrict it (see core.DecodeRateFor).
		if throttled {
			if rate := p.ctrl.DecodeRateFor(in.d.Seq); !rate.ActiveAt(uint64(p.cycle)) {
				if n == 0 {
					p.Stats.DecodeGatedCycles++
				}
				return
			}
		}
		if p.cfg.Oracle == core.OracleDecode && in.d.WrongPath {
			return // limit study: wrong-path instructions stall at decode
		}
		p.decodeOne(in)
		p.decodeQ.PushBack(p.fetchQ.PopFront())
	}
}

// decodeOne performs the per-instruction decode-stage work shared by both
// front ends: the dispatch-readiness stamp, the functional-unit/latency
// cache (so the issue and execute stages stop consulting the opcode tables
// on every visit), and the decode-stage power events. Wattch counts rename,
// register-file operand reads, and the RUU entry write at the decode stage
// (the paper's footnotes 2-3); instructions squashed after decoding carry
// this wasted energy.
//
//st:hotpath
func (p *Pipeline) decodeOne(in *inst) {
	in.enterWindow = p.cycle + int64(p.cfg.DecodeStages)
	op := in.d.St.Op
	in.fuKind = uint8(op.FU())
	in.execLat = int16(op.Latency() + p.cfg.ExtraExecLat)
	in.memOp = op.IsMem()
	in.loadOp = op == isa.OpLoad
	in.storeOp = op == isa.OpStore
	p.note(in, power.UnitRename)
	p.note(in, power.UnitWindow)
	if in.d.St.Src1 != isa.RegNone {
		p.note(in, power.UnitRegfile)
	}
	if in.d.St.Src2 != isa.RegNone {
		p.note(in, power.UnitRegfile)
	}
	if in.memOp {
		p.note(in, power.UnitLSQ)
	}
	if in.d.WrongPath {
		p.Stats.WrongPathDecoded++
	}
}

// ------------------------------------------------------------- dispatch --

//st:hotpath
func (p *Pipeline) dispatch() {
	if p.faultArmed {
		p.stageFault(StageDispatch)
	}
	width := p.cfg.IssueWidth
	for n := 0; n < width && p.decodeQ.Len() > 0; n++ {
		in := p.decodeQ.At(0)
		if in.enterWindow > p.cycle || p.window.Full() {
			return
		}
		if in.isMem() && p.lsqUsed >= p.cfg.LSQSize {
			return
		}
		p.decodeQ.PopFront()
		p.dispatchOne(in)
	}
}

// dispatchOne performs the per-instruction dispatch work shared by both front
// ends: rename, LSQ/window insertion, barrier capture, and the event-issue
// bookkeeping. The caller has already removed in from its front-end structure
// and verified window/LSQ capacity.
//
//st:hotpath
func (p *Pipeline) dispatchOne(in *inst) {
	// Rename: bind sources to in-flight producers. The associated
	// power events were counted at the decode stage. Each bound
	// producer is by construction incomplete, so registering on its
	// wakeup list guarantees exactly one completion (or a shared
	// squash) per bound operand.
	nsrc := 0
	if r := in.d.St.Src1; r != isa.RegNone {
		if prod := p.regs[r]; prod != nil && !prod.done {
			in.srcs[0] = prod
			in.srcSeq[0] = prod.d.Seq
			nsrc = 1
			if p.eventIssue {
				prod.deps = append(prod.deps, instRef{in, in.d.Seq})
			}
		}
	}
	if r := in.d.St.Src2; r != isa.RegNone {
		if prod := p.regs[r]; prod != nil && !prod.done {
			in.srcs[nsrc] = prod
			in.srcSeq[nsrc] = prod.d.Seq
			nsrc++
			if p.eventIssue {
				prod.deps = append(prod.deps, instRef{in, in.d.Seq})
			}
		}
	}
	if d := in.d.St.Dest; d != isa.RegNone {
		p.regs[d] = in
	}
	if in.isMem() {
		p.lsqUsed++
	}
	if in.d.WrongPath {
		p.Stats.WrongPathDispatched++
	}
	in.windowCycle = p.cycle
	in.hasBarrier = false
	if p.ctrl.HasNoSelect() {
		if b, ok := p.ctrl.BarrierFor(in.d.Seq); ok {
			in.barrier = b
			in.hasBarrier = true
		}
	}
	in.wpos = int32(p.window.backSlot())
	if p.eventIssue {
		// Binding only captures incomplete producers, so readiness at
		// dispatch is exactly "nothing was bound". The slot's previous
		// occupant left its bit clear, but write both ways so dispatch
		// re-establishes the bitmap invariant unconditionally.
		in.nwait = uint8(nsrc)
		if nsrc == 0 {
			p.setReady(in)
		} else {
			p.clearReady(in)
		}
		if in.hasBarrier {
			p.barrierQ = append(p.barrierQ, instRef{in, in.d.Seq})
		}
		if in.storeOp {
			p.storeQ = append(p.storeQ, instRef{in, in.d.Seq})
		}
	}
	p.window.PushBack(in)
}

// ---------------------------------------------------------------- issue --

//st:hotpath
func (p *Pipeline) issue() {
	if p.faultArmed {
		p.stageFault(StageIssue)
	}
	if p.eventIssue {
		p.issueEvent()
		return
	}
	p.issueScan()
}

// setReady flags in's window slot in the ready bitmap.
func (p *Pipeline) setReady(in *inst) {
	p.readyMask[in.wpos>>6] |= 1 << uint(in.wpos&63)
}

// clearReady unflags in's window slot in the ready bitmap.
func (p *Pipeline) clearReady(in *inst) {
	p.readyMask[in.wpos>>6] &^= 1 << uint(in.wpos&63)
}

// startExecution performs the bookkeeping shared by both issue
// implementations for one selected instruction: mark it issued, account the
// power events, compute its completion latency (including the D-cache access
// for loads), and schedule it on the completion wheel.
func (p *Pipeline) startExecution(in *inst) {
	in.issued = true
	in.issueCycle = p.cycle
	if in.d.WrongPath {
		p.Stats.WrongPathIssued++
	}
	p.note(in, power.UnitWindow) // operand read at issue
	p.note(in, power.UnitALU)

	lat := int(in.execLat) // opcode latency + ExtraExecLat, cached at decode
	if in.isLoad() {
		dlat, l2 := p.mem.DataAccess(in.d.Addr, p.cycle)
		lat += dlat
		p.note(in, power.UnitLSQ)
		p.note(in, power.UnitDCache)
		if l2 {
			p.note(in, power.UnitDCache2)
		}
	} else if in.storeOp {
		p.note(in, power.UnitLSQ) // address insertion
	}
	if lat < 1 {
		lat = 1
	}
	if lat >= maxCompLat {
		lat = maxCompLat - 1
	}
	slot := (p.cycle + int64(lat)) % maxCompLat
	p.compQ[slot] = append(p.compQ[slot], in)
}

// issueEvent is the event-driven issue stage: it walks the ready bitmap
// oldest-first and pops at most IssueWidth issuable instructions, in exactly
// the order the legacy full-window scan selected them. Entries skipped for
// structural reasons (exhausted functional unit, blocked no-select barrier,
// unresolved older same-address store, oracle-select suppression) keep their
// ready bit for the next cycle.
//
//st:hotpath
func (p *Pipeline) issueEvent() {
	var fu [isa.NumFUKinds]int
	for k := range fu {
		fu[k] = p.cfg.FUCount[k]
	}
	issued := 0
	oracleSel := p.cfg.Oracle == core.OracleSelect

	// stopSeq reproduces the legacy scan's early exit: the scan stopped at
	// the instruction that consumed the last issue slot, so no-select
	// stalls are only accounted for older instructions. It stays at the
	// maximum (count everything) when the width is not exhausted.
	stopSeq := ^uint64(0)

	// The window occupies ring slots [head, head+count) modulo the ring
	// size; walk that range in age order as up to two ascending segments.
	head, count, size := p.window.head, p.window.count, len(p.window.buf)
	seg1hi, seg2hi := head+count, 0
	if seg1hi > size {
		seg2hi = seg1hi - size
		seg1hi = size
	}
	lo, hi := head, seg1hi
walk:
	for seg := 0; seg < 2 && issued < p.cfg.IssueWidth; seg++ {
		if seg == 1 {
			if seg2hi == 0 {
				break
			}
			lo, hi = 0, seg2hi
		}
		for w := lo >> 6; w<<6 < hi; w++ {
			bits64 := p.readyMask[w]
			if base := w << 6; base < lo {
				bits64 &^= 1<<uint(lo-base) - 1
			}
			if rem := hi - w<<6; rem < 64 {
				bits64 &= 1<<uint(rem) - 1
			}
			for bits64 != 0 {
				in := p.window.buf[w<<6+bits.TrailingZeros64(bits64)]
				bits64 &= bits64 - 1
				if oracleSel && in.d.WrongPath {
					continue
				}
				if in.hasBarrier && p.ctrl.Blocked(in.barrier) {
					continue // counted against stopSeq below
				}
				// Both remaining gates are pure, so checking the cheap
				// functional-unit one first is unobservable — and once the
				// memory ports are spent it spares every remaining ready
				// load its store-queue walk.
				kind := in.fuKind // cached at decode
				if fu[kind] == 0 {
					continue
				}
				if in.isLoad() && !p.cfg.PerfectDisambiguation && p.loadBlocked(in) {
					continue
				}
				fu[kind]--
				issued++
				p.clearReady(in)
				p.startExecution(in)
				if issued >= p.cfg.IssueWidth {
					stopSeq = in.d.Seq
					break walk
				}
			}
		}
	}

	// NoSelectStalls accounting, matching the legacy scan bit for bit: one
	// count per unissued, barrier-blocked instruction the scan would have
	// visited this cycle — whether or not its operands are ready — i.e.
	// every one older than the instruction that exhausted the issue width.
	// The walk doubles as the list's lazy compaction.
	if len(p.barrierQ) > 0 {
		keep := p.barrierQ[:0]
		for _, e := range p.barrierQ {
			in := e.in
			if in.d.Seq != e.seq || in.issued || in.squashed {
				continue // issued or recycled: permanently off the list
			}
			keep = append(keep, e)
			if e.seq >= stopSeq || (oracleSel && in.d.WrongPath) {
				continue
			}
			if p.ctrl.Blocked(in.barrier) {
				p.Stats.NoSelectStalls++
			}
		}
		p.barrierQ = keep
	}
}

// loadBlocked reports whether an older in-flight store to the same address
// bars ld from issuing (memory disambiguation via the workload oracle's
// store addresses, approximating perfect store-set prediction; the
// conservative alternative serializes the whole window behind every store
// and starves the issue stage of the wrong-path work the paper's selection
// throttling targets). The walk doubles as storeQ's lazy compaction:
// completed and recycled stores drop out.
//
//st:hotpath
func (p *Pipeline) loadBlocked(ld *inst) bool {
	// Fast path: the store that blocked this load last time is usually
	// still pending the next cycle (see inst.blockRef). Every clause of
	// the walk's predicate is re-checked, age included.
	if b := ld.blockRef.in; b != nil && b.d.Seq == ld.blockRef.seq &&
		!b.done && !b.squashed && b.d.Addr == ld.d.Addr && b.d.Seq < ld.d.Seq {
		return true
	}
	blocked := false
	keep := p.storeQ[:0]
	for _, e := range p.storeQ {
		st := e.in
		if st.d.Seq != e.seq || st.done || st.squashed {
			continue
		}
		keep = append(keep, e)
		if e.seq < ld.d.Seq && st.d.Addr == ld.d.Addr {
			blocked = true
			ld.blockRef = e
		}
	}
	p.storeQ = keep
	return blocked
}

// issueScan is the historical O(window) wakeup/select scan, retained as the
// reference implementation (Config.LegacyScanIssue) that the event-driven
// stage is regression-tested against.
func (p *Pipeline) issueScan() {
	var fu [isa.NumFUKinds]int
	for k := range fu {
		fu[k] = p.cfg.FUCount[k]
	}
	issued := 0
	// Memory disambiguation: a load may not issue past an older store to
	// the same address that has not executed yet.
	p.unexecStores = p.unexecStores[:0]
	blockedLoad := func(in *inst) bool {
		if !in.isLoad() || p.cfg.PerfectDisambiguation {
			return false
		}
		for _, a := range p.unexecStores {
			if a == in.d.Addr {
				return true
			}
		}
		return false
	}
	noteStore := func(in *inst) {
		if in.storeOp && !in.done {
			p.unexecStores = append(p.unexecStores, in.d.Addr)
		}
	}
	for i := 0; i < p.window.Len() && issued < p.cfg.IssueWidth; i++ {
		in := p.window.At(i)
		if in.issued {
			noteStore(in)
			continue
		}
		if p.cfg.Oracle == core.OracleSelect && in.d.WrongPath {
			noteStore(in)
			continue
		}
		if in.hasBarrier && p.ctrl.Blocked(in.barrier) {
			p.Stats.NoSelectStalls++
			noteStore(in)
			continue
		}
		if !in.ready() {
			noteStore(in)
			continue
		}
		if blockedLoad(in) {
			continue
		}
		kind := in.fuKind // cached at decode
		if fu[kind] == 0 {
			noteStore(in)
			continue
		}
		fu[kind]--
		issued++
		p.startExecution(in)
		noteStore(in) // an issued store still blocks same-address loads until done
	}
}

// ------------------------------------------------------------- complete --

//st:hotpath
func (p *Pipeline) complete() {
	if p.faultArmed {
		p.stageFault(StageComplete)
	}
	slot := p.cycle % maxCompLat
	finishing := p.compQ[slot]
	p.compQ[slot] = finishing[:0]
	if len(finishing) == 0 {
		return
	}
	// The slot's window result writes and result-bus broadcasts reach the
	// run tally as one batched add each (integer counts, so batching is
	// exact — the AddTally argument); epoch attribution stays per
	// instruction because one completion slot can span epochs.
	var winN, rbN uint64
	for _, in := range finishing {
		if in.squashed {
			// A squashed in-flight instruction is referenced only by its
			// wheel slot; this pop was the last reference, so recycle it.
			p.freeInst(in)
			continue
		}
		in.done = true
		winN++ // result write / tag broadcast
		led := &p.epochBuf[in.epoch].led
		led[power.UnitWindow]++
		hasDest := in.d.St.Dest != isa.RegNone
		if hasDest {
			rbN++
			led[power.UnitResultBus]++
		}
		if p.legacyLedger {
			in.lev.ev[power.UnitWindow]++
			in.lev.mask |= 1 << uint(power.UnitWindow)
			if hasDest {
				in.lev.ev[power.UnitResultBus]++
				in.lev.mask |= 1 << uint(power.UnitResultBus)
			}
		}
		if p.eventIssue {
			p.wakeDependents(in)
		}
		if in.d.St.Op == isa.OpBranch {
			p.resolve(in)
		}
	}
	p.tally[power.UnitWindow] += winN
	p.tally[power.UnitResultBus] += rbN
}

// wakeDependents flags every registered consumer whose operands became
// available with this completion. Rename only registers incomplete
// producers, so the list is final by the time completion fires; entries are
// validated by sequence number against pool recycling, and each decrements
// the dependent's outstanding-producer count so an instruction waiting on
// two producers is woken only by the later completion (an operand bound
// twice to one producer registered two entries and takes two decrements).
// The list is cleared afterwards — a completed producer can never be bound
// again.
//
//st:hotpath
func (p *Pipeline) wakeDependents(in *inst) {
	for _, e := range in.deps {
		d := e.in
		if d.d.Seq != e.seq || d.squashed || d.issued {
			continue
		}
		if d.nwait--; d.nwait == 0 {
			p.setReady(d)
		}
	}
	in.deps = in.deps[:0]
}

// resolve handles conditional-branch resolution: trigger release on a
// correct prediction, flush and recovery on a misprediction. Either way the
// branch's recovery checkpoint is done: a correctly predicted branch frees
// its arena lease here; a mispredicted one frees it inside walker.Recover.
func (p *Pipeline) resolve(in *inst) {
	if in.predTaken == in.d.Taken {
		p.walker.Release(&in.d)
		// Resolution only needs the controller when a trigger could be
		// outstanding; the baseline and untriggered policies skip the scan.
		if p.ctrl.ActiveTriggers() > 0 {
			p.ctrl.OnBranchResolved(in.d.Seq)
		}
		return
	}
	p.flushAfter(in)
}

// flushAfter squashes everything younger than the mispredicted branch and
// restores fetch to the correct path.
func (p *Pipeline) flushAfter(br *inst) {
	seq := br.d.Seq

	// The front end only holds instructions younger than anything in the
	// window: drop it wholesale, youngest first (squash order is observable
	// through the wasted-power accumulation order and the checkpoint free
	// list, so both front ends must walk it identically).
	if p.fusedFront {
		p.flushFrontFused()
	} else {
		for p.fetchQ.Len() > 0 {
			p.squash(p.fetchQ.PopBack())
		}
		for p.decodeQ.Len() > 0 {
			p.squash(p.decodeQ.PopBack())
		}
	}
	for p.window.Len() > 0 {
		tail := p.window.At(p.window.Len() - 1)
		if tail.d.Seq <= seq {
			break
		}
		p.window.PopBack()
		if tail.isMem() {
			p.lsqUsed--
		}
		if p.eventIssue {
			p.clearReady(tail)
		}
		p.squash(tail)
	}
	if p.eventIssue {
		// The side lists are age-ordered, so a flush truncates a suffix.
		q := p.storeQ
		for len(q) > 0 && q[len(q)-1].seq > seq {
			q = q[:len(q)-1]
		}
		p.storeQ = q
		b := p.barrierQ
		for len(b) > 0 && b[len(b)-1].seq > seq {
			b = b[:len(b)-1]
		}
		p.barrierQ = b
	}

	// Rebuild the rename table from the surviving window contents.
	clear(p.regs[:])
	for i := 0; i < p.window.Len(); i++ {
		w := p.window.At(i)
		if d := w.d.St.Dest; d != isa.RegNone {
			p.regs[d] = w
		}
	}

	if p.DebugFlushes != "" && !br.d.WrongPath {
		p.flushCount++
		if p.flushCount >= 200 && p.flushCount <= 202 {
			DumpFlush(br, p.cycle, p.DebugFlushes)
		}
	}
	if !br.d.WrongPath {
		p.Stats.ResolveLatTotal += uint64(p.cycle - br.fetchCycle)
		p.Stats.ResolveWindowWait += uint64(p.cycle - br.windowCycle)
		p.Stats.ResolveIssueWait += uint64(br.issueCycle - br.windowCycle)
		p.Stats.TrueFlushes++
	}
	// Every squashed instruction belongs to an epoch opened at or after the
	// flushing branch; fold those ledgers into the wasted pool wholesale and
	// open a fresh epoch for the post-recovery fetch stream (see ledger.go).
	p.foldEpochs(int64(seq))

	if p.ctrl.ActiveTriggers() > 0 || p.ctrl.HasNoSelect() {
		p.ctrl.OnSquash(seq)
		p.ctrl.OnBranchResolved(seq)
	}
	p.pred.OnMispredict(br.cookie, br.d.Taken)
	p.walker.Recover(&br.d)
	p.wrongPath = br.d.WrongPath
	p.fetchResumeAt = p.cycle + 1 + int64(p.cfg.MispredictExtra)
	if p.fetchHeld && p.fetchHeldBySeq == seq {
		p.fetchHeld = false
	}
}

// Lifecycle reports an instruction's timing for diagnostics.
func (in *inst) Lifecycle() (fetch, window, issue int64, pc uint64) {
	return in.fetchCycle, in.windowCycle, in.issueCycle, in.d.PC
}

// Srcs exposes producer instructions for diagnostics.
func (in *inst) Srcs() [2]*inst { return in.srcs }

// squash marks an instruction dead and recycles it unless the completion
// wheel still references it (issued but not finished — complete() recycles
// those when their slot comes up). Its accumulated activity reaches the
// wasted pool through the epoch fold in flushAfter (every squash happens
// under a flush); only the legacy attribution scheme moves the events here,
// one instruction at a time.
func (p *Pipeline) squash(in *inst) {
	if in.squashed {
		return
	}
	in.squashed = true
	// A squashed branch will never resolve; return its checkpoint lease to
	// the walker's arena. The handle check is hoisted here so the common
	// non-branch squash skips the call.
	if in.d.Ckpt != prog.NoCkpt {
		p.walker.Release(&in.d)
	}
	if p.fetchHeld && in.d.Seq == p.fetchHeldBySeq {
		p.fetchHeld = false // defensive: never leave fetch held by a dead branch
	}
	if p.legacyLedger {
		for m := in.lev.mask; m != 0; m &= m - 1 {
			u := bits.TrailingZeros16(m)
			p.wastedTally[u] += uint64(in.lev.ev[u])
		}
	}
	if !in.issued || in.done {
		p.freeInst(in)
	}
}

// --------------------------------------------------------------- commit --

//st:hotpath
func (p *Pipeline) commit() {
	if p.faultArmed {
		p.stageFault(StageCommit)
	}
	width := p.cfg.CommitWidth
	for n := 0; n < width && p.window.Len() > 0; n++ {
		in := p.window.At(0)
		if !in.done {
			return
		}
		p.window.PopFront()
		if in.d.WrongPath {
			// The instruction is already off the window; the RunError's
			// InstSnapshot is its only surviving provenance record.
			panic(p.wrongPathCommitError(in)) // invariant: simulator bug, converted by RunE
		}
		if in.isMem() {
			p.lsqUsed--
		}
		if d := in.d.St.Dest; d != isa.RegNone {
			p.note(in, power.UnitRegfile) // architectural write at commit
			if p.regs[d] == in {
				p.regs[d] = nil
			}
		}
		if in.storeOp {
			_, l2 := p.mem.DataAccess(in.d.Addr, p.cycle)
			p.note(in, power.UnitDCache)
			if l2 {
				p.note(in, power.UnitDCache2)
			}
		}
		if p.CommitTrace != nil {
			p.CommitTrace(in.d.Seq, in.d.PC, p.cycle)
		}
		if in.d.St.Op == isa.OpBranch {
			p.note(in, power.UnitBPred) // predictor update
			correct := in.predTaken == in.d.Taken
			p.pred.Update(in.d.PC, in.cookie, in.d.Taken)
			p.est.Train(in.d.PC, correct)
			p.Stats.Quality.Record(in.class, correct)
			p.Stats.CondBranches++
			if !correct {
				p.Stats.Mispredicts++
			}
		}
		if p.legacyLedger {
			// Shadow-ledger maintenance: drop the committed instruction's
			// events from its epoch's ledger, so the open ledgers keep
			// tracking exactly the in-flight members (the cross-check
			// CheckInvariants enforces against the per-instruction tables).
			led := &p.epochBuf[in.epoch].led
			for m := in.lev.mask; m != 0; m &= m - 1 {
				u := bits.TrailingZeros16(m)
				led[u] -= uint32(in.lev.ev[u])
			}
		}
		// Committing an epoch's closing branch retires the epoch: all its
		// members have committed, so its ledger can recycle (one compare
		// against the cached trigger in the common case).
		if int64(in.d.Seq) >= p.nextRetire {
			p.retireEpochs(int64(in.d.Seq))
		}
		p.Stats.Committed++
		// Retired: recycle. Younger consumers may still hold pointers to it;
		// the seq guard in inst.ready treats a recycled producer as done.
		p.freeInst(in)
	}
}
