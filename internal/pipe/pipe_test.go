package pipe

import (
	"testing"

	"selthrottle/internal/bpred"
	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/power"
	"selthrottle/internal/prog"
)

// build constructs a pipeline over a named profile with the given policy,
// estimator, and oracle mode.
func build(t testing.TB, bench string, policy core.Policy, est conf.Estimator, oracle core.Oracle) *Pipeline {
	t.Helper()
	p, ok := prog.ProfileByName(bench)
	if !ok {
		t.Fatalf("unknown profile %q", bench)
	}
	program := prog.Generate(p)
	w := prog.NewWalker(program)
	cfg := Default()
	cfg.Oracle = oracle
	if est == nil {
		est = conf.NewBPRU(8 << 10)
	}
	return New(cfg, w, bpred.NewGshare(8<<10), est, core.NewController(policy), &power.Meter{})
}

func TestBaselineRunsToCompletion(t *testing.T) {
	pl := build(t, "gzip", core.Baseline(), nil, core.OracleNone)
	stats := pl.Run(30000)
	if stats.Committed < 30000 || stats.Committed > 30000+8 {
		t.Fatalf("committed %d, want ~30000", stats.Committed)
	}
	if stats.IPC() <= 0.2 || stats.IPC() > 8 {
		t.Fatalf("implausible IPC %v", stats.IPC())
	}
	if stats.CondBranches == 0 || stats.Mispredicts == 0 {
		t.Fatal("no branch activity")
	}
}

func TestAllOracleModesRun(t *testing.T) {
	for _, o := range []core.Oracle{core.OracleFetch, core.OracleDecode, core.OracleSelect} {
		o := o
		t.Run(o.String(), func(t *testing.T) {
			pl := build(t, "parser", core.Baseline(), nil, o)
			stats := pl.Run(15000)
			if stats.Committed < 15000 {
				t.Fatalf("committed %d", stats.Committed)
			}
		})
	}
}

func TestAllPoliciesRun(t *testing.T) {
	policies := []core.Policy{
		core.Selective("half", core.Spec{Fetch: core.RateHalf}, core.Spec{Fetch: core.RateQuarter}),
		core.Selective("stall", core.Spec{Fetch: core.RateQuarter}, core.Spec{Fetch: core.RateStall}),
		core.Selective("decode", core.Spec{Decode: core.RateQuarter}, core.Spec{Fetch: core.RateStall}),
		core.Selective("nosel", core.Spec{Fetch: core.RateQuarter, NoSelect: true}, core.Spec{Fetch: core.RateStall}),
		core.PipelineGating(2),
	}
	for _, p := range policies {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			est := conf.Estimator(conf.NewBPRU(8 << 10))
			if p.Gating {
				est = conf.NewJRS(8<<10, 12)
			}
			pl := build(t, "twolf", p, est, core.OracleNone)
			stats := pl.Run(15000)
			if stats.Committed < 15000 {
				t.Fatalf("committed %d", stats.Committed)
			}
		})
	}
}

// TestNoSelectNeverDeadlocks drives the harshest no-select policy (every
// class flagged) to exercise the paper's no-deadlock claim (§4.1).
func TestNoSelectNeverDeadlocks(t *testing.T) {
	policy := core.Policy{Name: "all-noselect"}
	for c := conf.Class(0); c < conf.NumClasses; c++ {
		policy.ByClass[c] = core.Spec{NoSelect: true}
	}
	pl := build(t, "go", policy, nil, core.OracleNone)
	stats := pl.Run(10000) // Run panics internally on deadlock
	if stats.Committed < 10000 {
		t.Fatalf("committed %d", stats.Committed)
	}
}

func TestStallEverythingStillProgresses(t *testing.T) {
	// Stalling fetch AND decode for every class must still make progress:
	// throttles apply only while trigger branches are unresolved.
	policy := core.Policy{Name: "max-throttle"}
	for _, c := range []conf.Class{conf.LC, conf.VLC} {
		policy.ByClass[c] = core.Spec{Fetch: core.RateStall, Decode: core.RateStall, NoSelect: true}
	}
	pl := build(t, "compress", policy, nil, core.OracleNone)
	stats := pl.Run(10000)
	if stats.Committed < 10000 {
		t.Fatalf("committed %d", stats.Committed)
	}
	if stats.FetchGatedCycles == 0 {
		t.Fatal("max-throttle policy never gated fetch")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := build(t, "crafty", core.Baseline(), nil, core.OracleNone).Run(20000)
	b := build(t, "crafty", core.Baseline(), nil, core.OracleNone).Run(20000)
	if a.Cycles != b.Cycles || a.Mispredicts != b.Mispredicts || a.Fetched != b.Fetched {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
}

func TestCommittedStreamIdenticalAcrossPolicies(t *testing.T) {
	// Throttling changes timing, never architecture: the committed PC
	// stream must be byte-identical between baseline and any policy.
	capture := func(policy core.Policy) []uint64 {
		pl := build(t, "gzip", policy, nil, core.OracleNone)
		var pcs []uint64
		pl.CommitTrace = func(seq, pc uint64, cycle int64) {
			pcs = append(pcs, pc)
		}
		pl.Run(15000)
		return pcs
	}
	base := capture(core.Baseline())
	thr := capture(core.Selective("t",
		core.Spec{Fetch: core.RateQuarter, NoSelect: true},
		core.Spec{Fetch: core.RateStall}))
	if len(base) != len(thr) {
		t.Fatalf("stream lengths differ: %d vs %d", len(base), len(thr))
	}
	for i := range base {
		if base[i] != thr[i] {
			t.Fatalf("committed stream diverged at %d: %#x vs %#x", i, base[i], thr[i])
		}
	}
}

func TestThrottlingReducesFetchTraffic(t *testing.T) {
	base := build(t, "go", core.Baseline(), nil, core.OracleNone).Run(20000)
	thr := build(t, "go", core.Selective("t",
		core.Spec{Fetch: core.RateQuarter},
		core.Spec{Fetch: core.RateStall}), nil, core.OracleNone).Run(20000)
	if thr.Fetched >= base.Fetched {
		t.Fatalf("throttling did not reduce fetch traffic: %d vs %d", thr.Fetched, base.Fetched)
	}
	if thr.FetchGatedCycles == 0 {
		t.Fatal("no gated cycles recorded")
	}
}

func TestOracleFetchSuppressesWrongPath(t *testing.T) {
	stats := build(t, "go", core.Baseline(), nil, core.OracleFetch).Run(20000)
	if stats.WrongPathFetched != 0 {
		t.Fatalf("oracle fetch fetched %d wrong-path instructions", stats.WrongPathFetched)
	}
	base := build(t, "go", core.Baseline(), nil, core.OracleNone).Run(20000)
	if base.WrongPathFetched == 0 {
		t.Fatal("baseline fetched no wrong-path instructions")
	}
}

func TestOracleDecodeSuppressesWrongPathDecode(t *testing.T) {
	stats := build(t, "go", core.Baseline(), nil, core.OracleDecode).Run(20000)
	if stats.WrongPathDecoded != 0 {
		t.Fatalf("oracle decode decoded %d wrong-path instructions", stats.WrongPathDecoded)
	}
	if stats.WrongPathFetched == 0 {
		t.Fatal("oracle decode should still fetch the wrong path")
	}
}

func TestOracleSelectSuppressesWrongPathIssue(t *testing.T) {
	stats := build(t, "go", core.Baseline(), nil, core.OracleSelect).Run(20000)
	if stats.WrongPathIssued != 0 {
		t.Fatalf("oracle select issued %d wrong-path instructions", stats.WrongPathIssued)
	}
	if stats.WrongPathDispatched == 0 {
		t.Fatal("oracle select should still dispatch the wrong path")
	}
}

func TestPowerAttributionConsistency(t *testing.T) {
	p, _ := prog.ProfileByName("twolf")
	program := prog.Generate(p)
	w := prog.NewWalker(program)
	meter := &power.Meter{}
	pl := New(Default(), w, bpred.NewGshare(8<<10), conf.NewBPRU(8<<10),
		core.NewController(core.Baseline()), meter)
	pl.Run(20000)
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if meter.Wasted[u] > meter.Events[u] {
			t.Fatalf("unit %v: wasted %v > total %v", u, meter.Wasted[u], meter.Events[u])
		}
	}
	if meter.Cycles != pl.Stats.Cycles {
		t.Fatal("meter and stats disagree on cycles")
	}
	if meter.Events[power.UnitICache] < float64(pl.Stats.Fetched) {
		t.Fatal("icache events fewer than fetched instructions")
	}
}

func TestDepthConfiguration(t *testing.T) {
	cfg := Default()
	for depth := 6; depth <= 28; depth += 2 {
		cfg.SetDepth(depth)
		if cfg.Depth() != depth {
			t.Fatalf("SetDepth(%d) produced depth %d", depth, cfg.Depth())
		}
	}
	cfg.SetDepth(14)
	if cfg.ExtraExecLat != 0 {
		t.Fatal("baseline depth should add no exec latency")
	}
	cfg.SetDepth(28)
	if cfg.ExtraExecLat < 1 {
		t.Fatal("deep pipeline should add exec latency")
	}
}

func TestDeeperPipelineCostsMore(t *testing.T) {
	run := func(depth int) uint64 {
		p, _ := prog.ProfileByName("twolf")
		program := prog.Generate(p)
		cfg := Default()
		cfg.SetDepth(depth)
		pl := New(cfg, prog.NewWalker(program), bpred.NewGshare(8<<10),
			conf.NewBPRU(8<<10), core.NewController(core.Baseline()), &power.Meter{})
		return pl.Run(20000).Cycles
	}
	shallow, deep := run(6), run(28)
	if deep <= shallow {
		t.Fatalf("28-stage pipe (%d cyc) not slower than 6-stage (%d cyc)", deep, shallow)
	}
}

func TestStatsAccessors(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.MissRate() != 0 {
		t.Fatal("zero stats accessors nonzero")
	}
	s.Cycles, s.Committed = 100, 250
	if s.IPC() != 2.5 {
		t.Fatalf("IPC = %v", s.IPC())
	}
	s.CondBranches, s.Mispredicts = 50, 5
	if s.MissRate() != 0.1 {
		t.Fatalf("MissRate = %v", s.MissRate())
	}
}
