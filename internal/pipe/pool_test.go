package pipe

import (
	"testing"

	"selthrottle/internal/bpred"
	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/power"
	"selthrottle/internal/prog"
)

// TestStepSteadyStateZeroAlloc is the hot path's allocation guard: once the
// pool and the completion wheel have reached their high-water marks, a cycle
// must not touch the heap at all.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	pl := build(t, "gzip", core.Baseline(), nil, core.OracleNone)
	pl.Run(30000) // reach steady state: pool, wheel, and scratch capacities
	if avg := testing.AllocsPerRun(2000, pl.Step); avg != 0 {
		t.Fatalf("Step allocates %v objects/cycle in steady state, want 0", avg)
	}
}

// TestStepSteadyStateZeroAllocThrottled repeats the guard under an
// aggressive throttling policy, which additionally exercises the
// controller's trigger bookkeeping and the no-select barrier path.
func TestStepSteadyStateZeroAllocThrottled(t *testing.T) {
	policy := core.Selective("t",
		core.Spec{Fetch: core.RateQuarter, NoSelect: true},
		core.Spec{Fetch: core.RateStall})
	pl := build(t, "go", policy, nil, core.OracleNone)
	pl.Run(30000)
	if avg := testing.AllocsPerRun(2000, pl.Step); avg != 0 {
		t.Fatalf("Step allocates %v objects/cycle under throttling, want 0", avg)
	}
}

// TestPoolStopsAllocatingAfterWarmup uses the PoolStats probe: the pool's
// footprint is bounded by the in-flight capacity of the machine, so after
// warmup the fresh-allocation counter must freeze no matter how many more
// instructions run.
func TestPoolStopsAllocatingAfterWarmup(t *testing.T) {
	pl := build(t, "gzip", core.Baseline(), nil, core.OracleNone)
	pl.Run(30000)
	allocsWarm, _ := pl.PoolStats()
	pl.Run(60000)
	allocsAfter, reuses := pl.PoolStats()
	if allocsAfter != allocsWarm {
		t.Fatalf("pool allocated %d new instructions after warmup", allocsAfter-allocsWarm)
	}
	if reuses == 0 {
		t.Fatal("pool never recycled an instruction")
	}
	// The footprint tracks in-flight capacity (front-end queues + window +
	// wheel residue), not the instruction count.
	if allocsAfter > 2000 {
		t.Fatalf("pool footprint %d implausibly large for a 128-entry window", allocsAfter)
	}
}

// TestSquashedInstructionsRecycled checks the squash recycling paths: on the
// high-misprediction profile the wrong-path volume dwarfs the machine's
// in-flight capacity many times over, so the run only stays within the pool
// bound if squashed instructions (front-end, window, and in-wheel) all make
// it back to the free list.
func TestSquashedInstructionsRecycled(t *testing.T) {
	pl := build(t, "go", core.Baseline(), nil, core.OracleNone)
	st := pl.Run(30000)
	if st.WrongPathFetched == 0 {
		t.Fatal("no wrong-path work to recycle")
	}
	allocs, reuses := pl.PoolStats()
	if allocs+reuses != st.Fetched {
		t.Fatalf("pool handed out %d instructions, fetch consumed %d", allocs+reuses, st.Fetched)
	}
	if allocs > 2000 {
		t.Fatalf("pool footprint %d: squashed instructions are leaking", allocs)
	}
	if err := pl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCompletionWheelWraparound clamps every scheduled latency to the
// wheel's maximum (maxCompLat-1), so each completion lands one slot behind
// the cycle that scheduled it and every pop crosses the wrap boundary.
func TestCompletionWheelWraparound(t *testing.T) {
	p, _ := prog.ProfileByName("gzip")
	program := prog.Generate(p)
	cfg := Default()
	cfg.ExtraExecLat = 2 * maxCompLat // forces the clamp for every op
	pl := New(cfg, prog.NewWalker(program), bpred.NewGshare(8<<10),
		conf.NewBPRU(8<<10), core.NewController(core.Baseline()), &power.Meter{})
	st := pl.Run(5000)
	if st.Committed < 5000 {
		t.Fatalf("committed %d with clamped latencies", st.Committed)
	}
	if err := pl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineResetBitIdentical replays a run on a Reset pipeline with
// rewound collaborators and requires bit-identical statistics and power
// accounting.
func TestPipelineResetBitIdentical(t *testing.T) {
	p, _ := prog.ProfileByName("twolf")
	program := prog.Generate(p)
	cfg := Default()
	w := prog.NewWalker(program)
	pred := bpred.NewGshare(8 << 10)
	est := conf.NewBPRU(8 << 10)
	ctrl := core.NewController(core.Baseline())
	meter := &power.Meter{}
	pl := New(cfg, w, pred, est, ctrl, meter)

	a := *pl.Run(20000)
	meterA := *meter

	w.Reset(program)
	pred.Reset()
	est.Reset()
	ctrl.Reset(core.Baseline())
	meter.Reset()
	pl.Reset(w, pred, est, ctrl, meter)

	b := *pl.Run(20000)
	if a != b {
		t.Fatalf("reset pipeline diverged:\n fresh: %+v\n reset: %+v", a, b)
	}
	if meterA != *meter {
		t.Fatal("reset pipeline produced different power accounting")
	}
}
