package pipe

// ring is a bounded FIFO deque used for the instruction window and the
// front-end queues. All simulator structures are bounded (window, LSQ,
// fetch and decode buffers), so a fixed ring avoids per-cycle allocation in
// the hottest loops.
type ring[T any] struct {
	buf   []T
	head  int
	count int
}

func newRing[T any](capacity int) *ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) Len() int   { return r.count }
func (r *ring[T]) Cap() int   { return len(r.buf) }
func (r *ring[T]) Full() bool { return r.count == len(r.buf) }

// At returns the i-th element from the front (0 = oldest).
func (r *ring[T]) At(i int) T {
	return r.buf[(r.head+i)%len(r.buf)]
}

// PushBack appends v; it panics when full (callers check Full first — a
// violation is a back-pressure bug, not a recoverable condition).
func (r *ring[T]) PushBack(v T) {
	if r.Full() {
		panic("pipe: ring overflow")
	}
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
}

// PopFront removes and returns the oldest element.
func (r *ring[T]) PopFront() T {
	if r.count == 0 {
		panic("pipe: ring underflow")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return v
}

// PopBack removes and returns the youngest element.
func (r *ring[T]) PopBack() T {
	if r.count == 0 {
		panic("pipe: ring underflow")
	}
	i := (r.head + r.count - 1) % len(r.buf)
	v := r.buf[i]
	var zero T
	r.buf[i] = zero
	r.count--
	return v
}

// Clear drops every element.
func (r *ring[T]) Clear() {
	for i := 0; i < r.count; i++ {
		var zero T
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head, r.count = 0, 0
}
