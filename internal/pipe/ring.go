package pipe

// ring is a bounded FIFO deque used for the instruction window and the
// front-end queues. All simulator structures are bounded (window, LSQ,
// fetch and decode buffers), so a fixed ring avoids per-cycle allocation in
// the hottest loops. Capacities are arbitrary (not power-of-two), so index
// wrapping uses compare-and-subtract instead of modulo: every computed index
// is below twice the capacity, and a conditional subtract avoids the
// hardware divide that made ring ops show up in cycle-loop profiles.
type ring[T any] struct {
	buf   []T
	head  int
	count int
}

func newRing[T any](capacity int) *ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) Len() int   { return r.count }
func (r *ring[T]) Cap() int   { return len(r.buf) }
func (r *ring[T]) Full() bool { return r.count == len(r.buf) }

// wrap reduces an index in [0, 2*cap) into [0, cap).
func (r *ring[T]) wrap(i int) int {
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	return i
}

// At returns the i-th element from the front (0 = oldest).
func (r *ring[T]) At(i int) T {
	return r.buf[r.wrap(r.head+i)]
}

// backSlot returns the buffer index the next PushBack will occupy. Slots are
// stable while an element is resident, which lets callers index side
// structures (e.g. the issue stage's ready bitmap) by slot.
func (r *ring[T]) backSlot() int { return r.wrap(r.head + r.count) }

// PushBack appends v; it panics when full (callers check Full first — a
// violation is a back-pressure bug, not a recoverable condition).
//
//st:hotpath
func (r *ring[T]) PushBack(v T) {
	if r.Full() {
		panic("pipe: ring overflow") // invariant: callers check Full first
	}
	r.buf[r.wrap(r.head+r.count)] = v
	r.count++
}

// PopFront removes and returns the oldest element. The vacated slot keeps
// its stale value (every ring in this package holds pool-owned instruction
// pointers that outlive the ring, so eager zeroing buys no reclamation and
// costs a store on the hottest ops); PushBack overwrites it on reuse.
//
//st:hotpath
func (r *ring[T]) PopFront() T {
	if r.count == 0 {
		panic("pipe: ring underflow") // invariant: callers check Len first
	}
	v := r.buf[r.head]
	r.head = r.wrap(r.head + 1)
	r.count--
	return v
}

// PopBack removes and returns the youngest element (stale-slot behaviour as
// PopFront).
//
//st:hotpath
func (r *ring[T]) PopBack() T {
	if r.count == 0 {
		panic("pipe: ring underflow") // invariant: callers check Len first
	}
	i := r.wrap(r.head + r.count - 1)
	v := r.buf[i]
	r.count--
	return v
}

// Clear drops every element.
func (r *ring[T]) Clear() {
	for i := 0; i < r.count; i++ {
		var zero T
		r.buf[r.wrap(r.head+i)] = zero
	}
	r.head, r.count = 0, 0
}
