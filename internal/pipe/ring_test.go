package pipe

import (
	"testing"
	"testing/quick"
)

func TestRingFIFOOrder(t *testing.T) {
	r := newRing[int](4)
	for i := 1; i <= 4; i++ {
		r.PushBack(i)
	}
	if !r.Full() {
		t.Fatal("ring not full after 4 pushes")
	}
	for i := 1; i <= 4; i++ {
		if got := r.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	if r.Len() != 0 {
		t.Fatal("ring not empty")
	}
}

func TestRingPopBack(t *testing.T) {
	r := newRing[int](4)
	r.PushBack(1)
	r.PushBack(2)
	if r.PopBack() != 2 || r.PopBack() != 1 {
		t.Fatal("PopBack order wrong")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := newRing[int](3)
	for cycle := 0; cycle < 10; cycle++ {
		r.PushBack(cycle)
		if r.At(r.Len()-1) != cycle {
			t.Fatal("At(back) wrong")
		}
		if r.Len() == 3 {
			r.PopFront()
		}
	}
}

func TestRingOverflowPanics(t *testing.T) {
	r := newRing[int](1)
	r.PushBack(1)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	r.PushBack(2)
}

func TestRingUnderflowPanics(t *testing.T) {
	r := newRing[int](1)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	r.PopFront()
}

func TestRingClear(t *testing.T) {
	r := newRing[int](4)
	r.PushBack(1)
	r.PushBack(2)
	r.Clear()
	if r.Len() != 0 {
		t.Fatal("Clear left elements")
	}
	r.PushBack(9)
	if r.At(0) != 9 {
		t.Fatal("ring unusable after Clear")
	}
}

func TestRingMatchesSliceModel(t *testing.T) {
	// Property: the ring behaves exactly like a bounded slice-based FIFO
	// under an arbitrary operation sequence.
	err := quick.Check(func(ops []uint8) bool {
		const capN = 8
		r := newRing[uint8](capN)
		var model []uint8
		for i, op := range ops {
			switch op % 4 {
			case 0, 1: // push
				if len(model) < capN {
					r.PushBack(op)
					model = append(model, op)
				}
			case 2: // pop front
				if len(model) > 0 {
					if r.PopFront() != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3: // pop back
				if len(model) > 0 {
					if r.PopBack() != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			if r.Len() != len(model) {
				return false
			}
			for j := range model {
				if r.At(j) != model[j] {
					return false
				}
			}
			_ = i
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
