package pipe

// Run-failure semantics.
//
// The simulator's terminal failure modes — a deadlocked machine, a wrong-path
// instruction reaching commit, an internal invariant violation, an injected
// fault — historically ended the process with a bare panic. That is the right
// behaviour for a research script and the wrong one for a service: a sweep
// grid must survive one bad point. RunE converts every terminal condition
// into a typed *RunError carrying a diagnostic snapshot of the machine at the
// moment of failure (cycle, policy, occupancies, epoch-ledger state, and —
// for a wrong-path commit — the offending instruction's full provenance), so
// supervisors can isolate, classify, and report failures without parsing
// panic strings.
//
// Deep invariant panics (ring over/underflow, epoch-ring corruption, walker
// misuse) deliberately stay as panics at their call sites: they are cheap,
// they cannot happen on a correct machine, and RunE's recover turns each one
// into an ErrPanic RunError with the panicking stack attached. The cycle loop
// itself never pays for error plumbing.
//
// Cooperative cancellation: Cancel sets an atomic flag that RunE polls every
// cancelCheckCycles cycles — one predictable counter decrement per cycle on
// the hot path, an atomic load only at the amortization boundary — so a
// context deadline can stop a runaway point mid-run without instrumenting the
// stages themselves.

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// RunErrorKind classifies a terminal run failure.
type RunErrorKind uint8

// Run failure kinds.
const (
	// ErrDeadlock: no commit progress for Config.StuckCycles cycles.
	ErrDeadlock RunErrorKind = iota + 1
	// ErrWrongPathCommit: a wrong-path instruction reached commit (a
	// simulator bug; Inst carries the popped instruction's provenance).
	ErrWrongPathCommit
	// ErrCanceled: the run was stopped by Cancel (typically a context
	// deadline or explicit cancellation upstream; Cause carries the
	// context's error when the supervisor supplied one).
	ErrCanceled
	// ErrPanic: a panic was recovered mid-run (invariant violation or an
	// injected fault); Cause carries the panic value and Stack the
	// panicking stack.
	ErrPanic
)

// String names the kind for reports.
func (k RunErrorKind) String() string {
	switch k {
	case ErrDeadlock:
		return "deadlock"
	case ErrWrongPathCommit:
		return "wrong-path-commit"
	case ErrCanceled:
		return "canceled"
	case ErrPanic:
		return "panic"
	}
	return "unknown"
}

// InstSnapshot is the provenance of one dynamic instruction, captured into a
// RunError at the moment of failure. FetchCycle identifies the fetch group
// the instruction arrived in (all members of a group share it); Epoch is the
// speculation-epoch ring slot it was bound to at fetch; Ckpt is the walker
// checkpoint-arena lease a conditional branch holds (prog.NoCkpt otherwise).
type InstSnapshot struct {
	Seq       uint64
	PC        uint64
	Op        string
	WrongPath bool
	PredTaken bool
	Taken     bool

	FetchCycle  int64 // fetch-group identity: when the group was fetched
	WindowCycle int64 // when dispatched into the window
	IssueCycle  int64 // when issued (0 if never)

	Epoch int32 // speculation-epoch ring slot bound at fetch
	Ckpt  int32 // walker checkpoint lease (prog.NoCkpt for non-branches)
}

func (s *InstSnapshot) String() string {
	return fmt.Sprintf("seq=%d pc=%x op=%s wrongPath=%v predTaken=%v taken=%v fetch@%d window@%d issue@%d epoch=%d ckpt=%d",
		s.Seq, s.PC, s.Op, s.WrongPath, s.PredTaken, s.Taken,
		s.FetchCycle, s.WindowCycle, s.IssueCycle, s.Epoch, s.Ckpt)
}

// RunError is a terminal run failure with a diagnostic snapshot of the
// machine state at the moment of failure. It is the error type RunE returns
// and the panic payload Run raises, so both the error-returning and the
// legacy panicking path deliver the same post-mortem.
type RunError struct {
	Kind RunErrorKind

	// Machine snapshot at failure.
	Cycle     int64
	Policy    string // throttle policy name
	Committed uint64
	Target    uint64 // the commit target RunE was driving toward
	Window    int    // instruction-window occupancy
	FetchQ    int    // fetched-but-undecoded front-end occupancy
	DecodeQ   int    // decoded-but-undispatched front-end occupancy
	LSQ       int    // load/store-queue occupancy
	// Epoch-ledger state (see ledger.go): open epochs, ring capacity, and
	// the high-water mark of concurrently open epochs.
	EpochOpen int
	EpochCap  int
	EpochHW   int

	StuckLimit int // deadlock threshold in force (ErrDeadlock)

	// Inst is the offending instruction's provenance (ErrWrongPathCommit).
	Inst *InstSnapshot

	// Cause is the underlying error: the recovered panic value (ErrPanic)
	// or the supervising context's error (ErrCanceled). Unwrap exposes it,
	// so errors.Is(err, context.DeadlineExceeded) works through a RunError.
	Cause error

	// Stack is the panicking goroutine's stack (ErrPanic only).
	Stack []byte
}

// Error formats the failure with its snapshot. The deadlock and wrong-path
// messages keep the historical panic prefixes.
func (e *RunError) Error() string {
	snap := fmt.Sprintf("cycle=%d committed=%d/%d policy=%q window=%d fetchQ=%d decodeQ=%d lsq=%d epochs=%d/%d (hw %d)",
		e.Cycle, e.Committed, e.Target, e.Policy, e.Window, e.FetchQ, e.DecodeQ, e.LSQ,
		e.EpochOpen, e.EpochCap, e.EpochHW)
	switch e.Kind {
	case ErrDeadlock:
		return fmt.Sprintf("pipe: no commit in %d cycles (%s)", e.StuckLimit, snap)
	case ErrWrongPathCommit:
		return fmt.Sprintf("pipe: wrong-path instruction committed: %s (%s)", e.Inst, snap)
	case ErrCanceled:
		if e.Cause != nil {
			return fmt.Sprintf("pipe: run canceled: %v (%s)", e.Cause, snap)
		}
		return fmt.Sprintf("pipe: run canceled (%s)", snap)
	case ErrPanic:
		return fmt.Sprintf("pipe: run panicked: %v (%s)", e.Cause, snap)
	}
	return fmt.Sprintf("pipe: run failed (%s)", snap)
}

// Unwrap exposes the underlying cause, so errors.Is/As see through the
// snapshot wrapper (context errors for cancellation, injected-fault errors
// for fault-injection runs).
func (e *RunError) Unwrap() error { return e.Cause }

// retryable is the classification interface fault payloads may implement
// (internal/faultinject's transient faults do).
type retryable interface{ Retryable() bool }

// Retryable reports whether re-running the point could plausibly succeed.
// The simulator is deterministic, so every organic failure (deadlock,
// wrong-path commit, invariant violation) is terminal: a retry replays it bit
// for bit. Only a cause that explicitly declares itself transient — an
// injected fault armed to fire once — makes a failure retryable.
func (e *RunError) Retryable() bool {
	var r retryable
	if errors.As(e.Cause, &r) {
		return r.Retryable()
	}
	return false
}

// AsRunError extracts a *RunError from err (directly or wrapped).
func AsRunError(err error) (*RunError, bool) {
	var re *RunError
	if errors.As(err, &re) {
		return re, true
	}
	return nil, false
}

// newRunError captures the machine snapshot into a fresh RunError.
func (p *Pipeline) newRunError(kind RunErrorKind, cause error) *RunError {
	open, capacity, hw := p.EpochStats()
	return &RunError{
		Kind:       kind,
		Cycle:      p.cycle,
		Policy:     p.ctrl.Policy().Name,
		Committed:  p.Stats.Committed,
		Target:     p.runTarget,
		Window:     p.window.Len(),
		FetchQ:     p.frontFetchLen(),
		DecodeQ:    p.frontDecodeLen(),
		LSQ:        p.lsqUsed,
		EpochOpen:  open,
		EpochCap:   capacity,
		EpochHW:    hw,
		StuckLimit: p.cfg.stuckLimit(),
		Cause:      cause,
	}
}

// snapshotInst captures an instruction's provenance for a RunError.
func snapshotInst(in *inst) *InstSnapshot {
	return &InstSnapshot{
		Seq:         in.d.Seq,
		PC:          in.d.PC,
		Op:          in.d.St.Op.String(),
		WrongPath:   in.d.WrongPath,
		PredTaken:   in.predTaken,
		Taken:       in.d.Taken,
		FetchCycle:  in.fetchCycle,
		WindowCycle: in.windowCycle,
		IssueCycle:  in.issueCycle,
		Epoch:       in.epoch,
		Ckpt:        in.d.Ckpt,
	}
}

// wrongPathCommitError builds the typed failure for a wrong-path instruction
// reaching commit. The check fires after the instruction has already been
// popped from the window, so the snapshot is the only surviving record of the
// instruction — it carries the full provenance (fetch group via FetchCycle,
// epoch binding, checkpoint lease) needed to diagnose the squash or recovery
// bug post-mortem.
func (p *Pipeline) wrongPathCommitError(in *inst) *RunError {
	e := p.newRunError(ErrWrongPathCommit, nil)
	e.Inst = snapshotInst(in)
	return e
}

// recoverRunError converts a recovered panic value into a RunError. An
// already-typed *RunError (the wrong-path-commit check) passes through
// unchanged; anything else — an invariant panic deep in the machine, an
// injected fault, a walker misuse — is wrapped as ErrPanic with the machine
// snapshot and the panicking stack. recoverRunError runs inside the deferred
// recover, while the panicking frames are still on the stack, so debug.Stack
// captures the true origin.
func (p *Pipeline) recoverRunError(r any) *RunError {
	if re, ok := r.(*RunError); ok {
		return re
	}
	cause, ok := r.(error)
	if !ok {
		cause = fmt.Errorf("%v", r)
	}
	e := p.newRunError(ErrPanic, cause)
	e.Stack = debug.Stack()
	return e
}

// ------------------------------------------------------- fault injection --

// FaultStage identifies the pipeline stage a fault hook fires in.
type FaultStage uint8

// Fault hook stages. StageStep fires once at the top of every cycle, before
// the stages run; the per-stage hooks fire at the top of the corresponding
// stage function.
const (
	StageStep FaultStage = iota
	StageFetch
	StageDecode
	StageDispatch
	StageIssue
	StageComplete
	StageCommit
	NumFaultStages
)

// String names the stage for fault messages.
func (s FaultStage) String() string {
	switch s {
	case StageStep:
		return "step"
	case StageFetch:
		return "fetch"
	case StageDecode:
		return "decode"
	case StageDispatch:
		return "dispatch"
	case StageIssue:
		return "issue"
	case StageComplete:
		return "complete"
	case StageCommit:
		return "commit"
	}
	return "unknown"
}

// FaultAction is a fault hook's instruction to the pipeline.
type FaultAction uint8

// Fault actions.
const (
	// FaultNone: no action this invocation.
	FaultNone FaultAction = iota
	// FaultWedgeFetch: hold fetch this cycle (the hook re-issues it every
	// cycle to wedge the machine into the deadlock detector; a one-shot
	// wedge is a single fetch bubble).
	FaultWedgeFetch
)

// FaultHook is the fault-injection test hook behind Config.Fault
// (internal/faultinject implements it). When armed, the pipeline invokes
// OnStage at the top of every cycle (StageStep) and of every stage function;
// the hook may panic (injected failure — RunE converts it to an ErrPanic
// RunError), sleep (artificial slowness, driving per-point deadlines), or
// return an action. Healthy configurations leave Config.Fault nil and pay a
// single hoisted bool test per call site.
//
// Implementations must be comparable (pointer receivers suffice): Config
// remains a comparable value with the hook installed.
type FaultHook interface {
	OnStage(stage FaultStage, cycle int64) FaultAction
}

// wedgedResumeAt is the fetch gate a FaultWedgeFetch action applies: far
// enough out to hold fetch indefinitely while the hook keeps re-issuing it,
// without risking int64 overflow in cycle comparisons.
const wedgedResumeAt = int64(1) << 62

// stageFault invokes the armed fault hook for one stage and applies its
// action. Callers guard with p.faultArmed so the nil common case costs one
// predictable branch.
func (p *Pipeline) stageFault(s FaultStage) {
	switch p.cfg.Fault.OnStage(s, p.cycle) {
	case FaultWedgeFetch:
		p.fetchResumeAt = wedgedResumeAt
	}
}
