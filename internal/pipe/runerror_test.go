package pipe

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"selthrottle/internal/bpred"
	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/power"
	"selthrottle/internal/prog"
)

// buildCfg constructs a baseline pipeline over a named profile with an
// explicit Config (build's sibling for tests that vary StuckCycles or arm a
// fault hook).
func buildCfg(t testing.TB, bench string, cfg Config) *Pipeline {
	t.Helper()
	p, ok := prog.ProfileByName(bench)
	if !ok {
		t.Fatalf("unknown profile %q", bench)
	}
	program := prog.Generate(p)
	w := prog.NewWalker(program)
	return New(cfg, w, bpred.NewGshare(8<<10), conf.NewBPRU(8<<10),
		core.NewController(core.Baseline()), &power.Meter{})
}

// wedgeHook wedges fetch every cycle from at onward, driving the machine
// into the deadlock detector once the in-flight instructions drain.
type wedgeHook struct{ at int64 }

func (h *wedgeHook) OnStage(s FaultStage, cycle int64) FaultAction {
	if s == StageStep && cycle >= h.at {
		return FaultWedgeFetch
	}
	return FaultNone
}

// panicHook panics with payload the first time its stage runs at or after
// cycle at.
type panicHook struct {
	stage   FaultStage
	at      int64
	payload error
	fired   bool
}

func (h *panicHook) OnStage(s FaultStage, cycle int64) FaultAction {
	if !h.fired && s == h.stage && cycle >= h.at {
		h.fired = true
		panic(h.payload)
	}
	return FaultNone
}

func TestRunEDeadlockTypedError(t *testing.T) {
	cfg := Default()
	cfg.StuckCycles = 2000
	cfg.Fault = &wedgeHook{at: 500}
	pl := buildCfg(t, "gzip", cfg)

	st, err := pl.RunE(50000)
	if st != nil {
		t.Fatalf("stats %v on failed run, want nil", st)
	}
	re, ok := AsRunError(err)
	if !ok {
		t.Fatalf("err %T %v, want *RunError", err, err)
	}
	if re.Kind != ErrDeadlock {
		t.Fatalf("kind %v, want deadlock", re.Kind)
	}
	if re.StuckLimit != 2000 || re.Target != 50000 {
		t.Fatalf("snapshot limit=%d target=%d, want 2000/50000", re.StuckLimit, re.Target)
	}
	if re.Cycle <= 2000 || re.Committed == 0 {
		t.Fatalf("implausible snapshot cycle=%d committed=%d", re.Cycle, re.Committed)
	}
	if re.Policy != core.Baseline().Name {
		t.Fatalf("policy %q", re.Policy)
	}
	if !strings.HasPrefix(err.Error(), "pipe: no commit in 2000 cycles") {
		t.Fatalf("message lost historical prefix: %q", err)
	}
	if re.Retryable() {
		t.Fatal("deterministic deadlock reported as retryable")
	}
}

func TestRunEInjectedPanicBecomesErrPanic(t *testing.T) {
	boom := errors.New("boom")
	cfg := Default()
	cfg.Fault = &panicHook{stage: StageIssue, at: 300, payload: boom}
	pl := buildCfg(t, "twolf", cfg)

	_, err := pl.RunE(50000)
	re, ok := AsRunError(err)
	if !ok {
		t.Fatalf("err %T %v, want *RunError", err, err)
	}
	if re.Kind != ErrPanic {
		t.Fatalf("kind %v, want panic", re.Kind)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("cause %v not exposed through Unwrap", re.Cause)
	}
	if len(re.Stack) == 0 || !bytes.Contains(re.Stack, []byte("OnStage")) {
		t.Fatalf("stack does not show the panicking frame:\n%s", re.Stack)
	}
	if re.Cycle < 300 {
		t.Fatalf("snapshot cycle %d before the fault armed", re.Cycle)
	}
	if re.Retryable() {
		t.Fatal("plain panic cause reported as retryable")
	}
}

func TestRunLegacyPanicCarriesRunError(t *testing.T) {
	cfg := Default()
	cfg.StuckCycles = 1500
	cfg.Fault = &wedgeHook{}
	pl := buildCfg(t, "gcc", cfg)

	defer func() {
		re, ok := recover().(*RunError)
		if !ok || re.Kind != ErrDeadlock {
			t.Fatalf("recovered %v, want deadlock *RunError", re)
		}
	}()
	pl.Run(50000)
	t.Fatal("Run returned on a wedged machine")
}

func TestCancelStopsRunPromptly(t *testing.T) {
	p, _ := prog.ProfileByName("gzip")
	w := prog.NewWalker(prog.Generate(p))
	pred := bpred.NewGshare(8 << 10)
	est := conf.NewBPRU(8 << 10)
	ctrl := core.NewController(core.Baseline())
	meter := &power.Meter{}
	pl := New(Default(), w, pred, est, ctrl, meter)

	pl.Cancel()
	_, err := pl.RunE(1 << 40)
	re, ok := AsRunError(err)
	if !ok || re.Kind != ErrCanceled {
		t.Fatalf("err %v, want canceled *RunError", err)
	}
	// The flag was set before the run started, so the first amortized check
	// must observe it: the machine may run at most 2x the check interval.
	if re.Cycle > 2*cancelCheckCycles {
		t.Fatalf("ran %d cycles after cancellation, want <= %d", re.Cycle, 2*cancelCheckCycles)
	}

	// Reset clears the flag: the same pipeline object completes a fresh run.
	w2 := prog.NewWalker(prog.Generate(p))
	pred.Reset()
	est.Reset()
	meter.Reset()
	pl.Reset(w2, pred, est, ctrl, meter)
	st, err := pl.RunE(10000)
	if err != nil {
		t.Fatalf("post-reset run failed: %v", err)
	}
	if st.Committed < 10000 {
		t.Fatalf("committed %d", st.Committed)
	}
	if err := pl.CheckInvariants(); err != nil {
		t.Fatalf("invariants after cancel+reset: %v", err)
	}
}

func TestWrongPathCommitErrorProvenance(t *testing.T) {
	pl := build(t, "gzip", core.Baseline(), nil, core.OracleNone)
	pl.Run(5000)

	in := &inst{}
	in.d.Seq = 42
	in.d.PC = 0x4010
	in.d.WrongPath = true
	in.d.Taken = true
	in.d.Ckpt = 7
	in.predTaken = false
	in.fetchCycle = 10
	in.windowCycle = 12
	in.issueCycle = 15
	in.epoch = 3

	err := pl.wrongPathCommitError(in)
	if err.Kind != ErrWrongPathCommit || err.Inst == nil {
		t.Fatalf("bad error %+v", err)
	}
	s := err.Inst
	if s.Seq != 42 || s.PC != 0x4010 || !s.WrongPath || !s.Taken || s.PredTaken ||
		s.FetchCycle != 10 || s.WindowCycle != 12 || s.IssueCycle != 15 ||
		s.Epoch != 3 || s.Ckpt != 7 {
		t.Fatalf("provenance lost: %s", s)
	}
	if !strings.HasPrefix(err.Error(), "pipe: wrong-path instruction committed:") {
		t.Fatalf("message lost historical prefix: %q", err)
	}
	if !strings.Contains(err.Error(), "seq=42") {
		t.Fatalf("message omits provenance: %q", err)
	}
}

func TestRecoverRunErrorPassthrough(t *testing.T) {
	pl := build(t, "gzip", core.Baseline(), nil, core.OracleNone)
	orig := pl.newRunError(ErrWrongPathCommit, nil)
	if got := pl.recoverRunError(orig); got != orig {
		t.Fatalf("typed RunError rewrapped: %v", got)
	}
	got := pl.recoverRunError("string panic")
	if got.Kind != ErrPanic || got.Cause == nil || len(got.Stack) == 0 {
		t.Fatalf("non-error panic value not wrapped: %+v", got)
	}
}
