package pipe

import "fmt"

// DumpFlush prints a mispredicted branch's dependence context (development
// diagnostics, used to debug scheduling regressions).
func DumpFlush(br *inst, cycle int64, label string) {
	fmt.Printf("%s flush@%d br pc=%x seq=%d fetch=%d window=%d issue=%d\n",
		label, cycle, br.d.PC, br.d.Seq, br.fetchCycle, br.windowCycle, br.issueCycle)
	dumpChain(br, 1, 12)
}

func dumpChain(in *inst, depth, limit int) {
	if depth > limit {
		return
	}
	for i, s := range in.srcs {
		if s == nil || s.d.Seq != in.srcSeq[i] {
			continue // never bound, or recycled by the pool after retiring
		}
		fmt.Printf("  %*s src%d pc=%x seq=%d op=%v fetch=%d window=%d issue=%d done=%v\n",
			depth*2, "", i, s.d.PC, s.d.Seq, s.d.St.Op, s.fetchCycle, s.windowCycle, s.issueCycle, s.done)
		dumpChain(s, depth+1, limit)
	}
}
