// Package power implements the Wattch-style architectural power model used
// throughout the reproduction: per-unit activity counters with cc3-style
// clock gating (power scales linearly with port usage; inactive units still
// dissipate 10% of their maximum power), the unit inventory of the paper's
// Table 1, and per-instruction attribution that splits every unit's dynamic
// energy into a useful part (instructions that commit) and a wasted part
// (mis-speculated instructions that are squashed).
//
// Unit maximum powers are fixed hardware constants: they are derived once,
// at calibration time, from the paper's Table 1 breakdown (a 56.4 W total at
// 1200 MHz, 0.18 um, 2.0 V) and the measured baseline utilization of each
// unit, then shared unchanged by every experiment so that savings are
// honest ratios. cmd/stcalib recomputes the calibration when the simulator
// changes.
package power

import "fmt"

// Unit identifies one power-modeled block, mirroring Table 1.
type Unit int

// Power-model units (Table 1 rows).
const (
	UnitICache Unit = iota
	UnitBPred
	UnitRegfile
	UnitRename
	UnitWindow
	UnitLSQ
	UnitALU
	UnitDCache
	UnitDCache2
	UnitResultBus
	UnitClock
	NumUnits
)

// unitNames matches Table 1's row labels.
var unitNames = [NumUnits]string{
	"icache", "bpred", "regfile", "rename", "window", "lsq",
	"alu", "dcache", "dcache2", "resultbus", "clock",
}

// String implements fmt.Stringer.
func (u Unit) String() string {
	if u >= 0 && u < NumUnits {
		return unitNames[u]
	}
	return fmt.Sprintf("unit(%d)", int(u))
}

// Params holds the fixed hardware constants of the model.
type Params struct {
	FreqHz   float64           // clock frequency (Table 3: 1200 MHz)
	IdleFrac float64           // cc3 idle floor (0.10)
	MaxWatts [NumUnits]float64 // per-unit maximum power
	Ports    [NumUnits]float64 // max activity events per cycle per unit
}

// Table1Shares is the paper's overall power breakdown (fractions of total).
var Table1Shares = [NumUnits]float64{
	UnitICache:    0.100,
	UnitBPred:     0.038,
	UnitRegfile:   0.016,
	UnitRename:    0.011,
	UnitWindow:    0.182,
	UnitLSQ:       0.019,
	UnitALU:       0.087,
	UnitDCache:    0.106,
	UnitDCache2:   0.007,
	UnitResultBus: 0.095,
	UnitClock:     0.338,
}

// Table1WastedShares is the paper's per-unit fraction of *overall* power
// wasted by mis-speculated instructions (Table 1, column 2), kept for
// paper-vs-measured reporting.
var Table1WastedShares = [NumUnits]float64{
	UnitICache:    0.064,
	UnitBPred:     0.014,
	UnitRegfile:   0.002,
	UnitRename:    0.005,
	UnitWindow:    0.056,
	UnitLSQ:       0.002,
	UnitALU:       0.010,
	UnitDCache:    0.011,
	UnitDCache2:   0.000,
	UnitResultBus: 0.019,
	UnitClock:     0.095,
}

// TotalWatts is the paper's baseline average power.
const TotalWatts = 56.4

// defaultPorts bounds events per cycle per unit; chosen to comfortably
// exceed any cycle's event count so utilizations stay in [0, 1]. The exact
// values cancel out of all power ratios because calibration divides by the
// same constants.
var defaultPorts = [NumUnits]float64{
	UnitICache:    8,
	UnitBPred:     4,
	UnitRegfile:   24,
	UnitRename:    8,
	UnitWindow:    32,
	UnitLSQ:       12,
	UnitALU:       12,
	UnitDCache:    6,
	UnitDCache2:   4,
	UnitResultBus: 8,
	UnitClock:     1,
}

// baselineUtil is the measured average per-unit utilization of the baseline
// configuration (14 stages, Table 3, eight profiles), produced by
// cmd/stcalib. Together with Table1Shares it pins each unit's MaxWatts so
// the simulated baseline reproduces the paper's breakdown.
var baselineUtil = [NumUnits]float64{
	UnitICache:    0.541,
	UnitBPred:     0.175,
	UnitRegfile:   0.282,
	UnitRename:    0.444,
	UnitWindow:    0.241,
	UnitLSQ:       0.143,
	UnitALU:       0.175,
	UnitDCache:    0.105,
	UnitDCache2:   0.033,
	UnitResultBus: 0.200,
	UnitClock:     0.205,
}

// DefaultParams returns the calibrated model constants.
func DefaultParams() Params {
	p := Params{FreqHz: 1200e6, IdleFrac: 0.10, Ports: defaultPorts}
	p.MaxWatts = DeriveMax(Table1Shares, baselineUtil, TotalWatts, p.IdleFrac)
	return p
}

// DeriveMax computes per-unit maximum powers such that a run with the given
// average utilizations dissipates share[u]*total in each unit under cc3:
//
//	share*total = max * (idle + (1-idle)*util)  =>  max = ...
func DeriveMax(shares, utils [NumUnits]float64, total, idle float64) [NumUnits]float64 {
	var out [NumUnits]float64
	for u := Unit(0); u < NumUnits; u++ {
		denom := idle + (1-idle)*utils[u]
		if denom <= 0 {
			denom = idle
		}
		out[u] = shares[u] * total / denom
	}
	return out
}

// Meter accumulates activity during a simulation run. Events are attributed
// at squash time to the wasted pool; anything not squashed is useful.
//
// The hot path feeds the meter through AddTally: the pipeline batches every
// unit event of a cycle into a flat scratch tally and flushes it once per
// Step, so steady-state accounting costs one array walk per cycle instead of
// one method call per event. Meters are reusable across runs via Reset.
type Meter struct {
	Cycles uint64
	Events [NumUnits]float64
	Wasted [NumUnits]float64
}

// AddCycle advances time by one cycle.
func (m *Meter) AddCycle() { m.Cycles++ }

// Add records n activity events on unit u. Add is the per-event path kept
// for tests and calibration checks only: the simulator's hot loop feeds the
// meter exclusively through AddTally/AddWastedTally (the pipeline's batched
// integer tallies and epoch-ledger folds), which are bit-identical to
// per-event calls by the exactness argument on AddTally.
func (m *Meter) Add(u Unit, n float64) { m.Events[u] += n }

// AddTally folds an accumulated event tally into the totals and clears it.
// Counts are integers (exactly representable in float64 far beyond any
// simulation horizon), so the float accumulation is exact and the result is
// bit-identical to per-event Add calls in any order and at any batching
// granularity — per cycle, per run, or anywhere between.
func (m *Meter) AddTally(tally *[NumUnits]uint64) {
	for u, n := range tally {
		if n != 0 {
			m.Events[u] += float64(n)
			tally[u] = 0
		}
	}
}

// Reset clears all accumulated activity so the meter can be reused by the
// next run without reallocation.
func (m *Meter) Reset() { *m = Meter{} }

// AddWasted moves n already-recorded events of unit u into the wasted pool.
// Like Add, it is the test-only per-event path; squash-time attribution
// reaches the meter through AddWastedTally.
func (m *Meter) AddWasted(u Unit, n float64) { m.Wasted[u] += n }

// AddWastedTally folds an accumulated wasted-event tally into the wasted
// pool and clears it — the squash-side analogue of AddTally, with the same
// exactness argument: counts are integers, so batching granularity and
// accumulation order cannot change the result.
func (m *Meter) AddWastedTally(tally *[NumUnits]uint64) {
	for u, n := range tally {
		if n != 0 {
			m.Wasted[u] += float64(n)
			tally[u] = 0
		}
	}
}

// Report is the power/energy outcome of one run.
type Report struct {
	Cycles  uint64
	Seconds float64

	// Per-unit energies in joules. Total = Useful + Wasted + Idle
	// (idle is the cc3 10% floor, attributed to neither pool).
	UnitEnergy   [NumUnits]float64
	UnitWasted   [NumUnits]float64
	TotalEnergy  float64
	WastedEnergy float64

	AvgPower    float64 // watts
	EnergyDelay float64 // joule-seconds
}

// Analyze converts accumulated activity into energies under params.
func (m *Meter) Analyze(p Params) Report {
	var r Report
	r.Cycles = m.Cycles
	if m.Cycles == 0 {
		return r
	}
	r.Seconds = float64(m.Cycles) / p.FreqHz
	cyc := float64(m.Cycles)
	dyn := 1 - p.IdleFrac

	// Clock activity: MaxWatts-weighted utilization of all other units.
	var wSum, actSum, wastedActSum float64
	for u := Unit(0); u < NumUnits; u++ {
		if u == UnitClock {
			continue
		}
		util := m.Events[u] / (p.Ports[u] * cyc)
		wutil := m.Wasted[u] / (p.Ports[u] * cyc)
		wSum += p.MaxWatts[u]
		actSum += p.MaxWatts[u] * util
		wastedActSum += p.MaxWatts[u] * wutil

		e := p.MaxWatts[u] * (p.IdleFrac + dyn*util) * cyc / p.FreqHz
		ew := p.MaxWatts[u] * dyn * wutil * cyc / p.FreqHz
		r.UnitEnergy[u] = e
		r.UnitWasted[u] = ew
	}
	clockAct, clockWastedAct := 0.0, 0.0
	if wSum > 0 {
		clockAct = actSum / wSum
		clockWastedAct = wastedActSum / wSum
	}
	r.UnitEnergy[UnitClock] = p.MaxWatts[UnitClock] * (p.IdleFrac + dyn*clockAct) * cyc / p.FreqHz
	r.UnitWasted[UnitClock] = p.MaxWatts[UnitClock] * dyn * clockWastedAct * cyc / p.FreqHz

	for u := Unit(0); u < NumUnits; u++ {
		r.TotalEnergy += r.UnitEnergy[u]
		r.WastedEnergy += r.UnitWasted[u]
	}
	r.AvgPower = r.TotalEnergy / r.Seconds
	r.EnergyDelay = r.TotalEnergy * r.Seconds
	return r
}

// Utilization returns unit u's average utilization over the run (for
// calibration output).
func (m *Meter) Utilization(p Params, u Unit) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return m.Events[u] / (p.Ports[u] * float64(m.Cycles))
}
