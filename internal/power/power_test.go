package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1SharesSumToOne(t *testing.T) {
	var sum float64
	for u := Unit(0); u < NumUnits; u++ {
		sum += Table1Shares[u]
	}
	if math.Abs(sum-0.999) > 0.002 { // the paper's column sums to 99.9 %
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestDeriveMaxInvertsCC3(t *testing.T) {
	p := DefaultParams()
	// By construction: max*(idle+(1-idle)*util) == share*total.
	for u := Unit(0); u < NumUnits; u++ {
		util := baselineUtil[u]
		got := p.MaxWatts[u] * (p.IdleFrac + (1-p.IdleFrac)*util)
		want := Table1Shares[u] * TotalWatts
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: reconstructed %v, want %v", u, got, want)
		}
	}
}

func TestAnalyzeIdleMachine(t *testing.T) {
	var m Meter
	for i := 0; i < 1000; i++ {
		m.AddCycle()
	}
	p := DefaultParams()
	r := m.Analyze(p)
	// A fully idle machine dissipates exactly the 10 % floors.
	var wantPower float64
	for u := Unit(0); u < NumUnits; u++ {
		wantPower += p.MaxWatts[u] * p.IdleFrac
	}
	if math.Abs(r.AvgPower-wantPower) > 1e-6 {
		t.Fatalf("idle power %v, want %v", r.AvgPower, wantPower)
	}
	if r.WastedEnergy != 0 {
		t.Fatal("idle machine wasted energy")
	}
}

func TestAnalyzeFullUtilization(t *testing.T) {
	var m Meter
	p := DefaultParams()
	cycles := 1000
	for i := 0; i < cycles; i++ {
		m.AddCycle()
		for u := Unit(0); u < NumUnits; u++ {
			if u != UnitClock {
				m.Add(u, p.Ports[u])
			}
		}
	}
	r := m.Analyze(p)
	var wantPower float64
	for u := Unit(0); u < NumUnits; u++ {
		wantPower += p.MaxWatts[u] // cc3 at util 1.0 = max
	}
	if math.Abs(r.AvgPower-wantPower) > 1e-6 {
		t.Fatalf("full-util power %v, want %v", r.AvgPower, wantPower)
	}
}

func TestWastedNeverExceedsDynamic(t *testing.T) {
	err := quick.Check(func(events, wastedFrac uint8) bool {
		var m Meter
		for i := 0; i < 100; i++ {
			m.AddCycle()
		}
		ev := float64(events)
		w := ev * float64(wastedFrac%101) / 100
		m.Add(UnitALU, ev)
		m.AddWasted(UnitALU, w)
		r := m.Analyze(DefaultParams())
		return r.UnitWasted[UnitALU] <= r.UnitEnergy[UnitALU]+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWastedScalesLinearly(t *testing.T) {
	p := DefaultParams()
	build := func(wasted float64) Report {
		var m Meter
		for i := 0; i < 1000; i++ {
			m.AddCycle()
		}
		m.Add(UnitICache, 4000)
		m.AddWasted(UnitICache, wasted)
		return m.Analyze(p)
	}
	half := build(2000)
	full := build(4000)
	if math.Abs(full.UnitWasted[UnitICache]-2*half.UnitWasted[UnitICache]) > 1e-9 {
		t.Fatal("wasted energy not linear in wasted events")
	}
}

func TestClockTracksActivity(t *testing.T) {
	p := DefaultParams()
	var idle, busy Meter
	for i := 0; i < 1000; i++ {
		idle.AddCycle()
		busy.AddCycle()
		busy.Add(UnitWindow, 16)
		busy.Add(UnitALU, 8)
	}
	ri := idle.Analyze(p)
	rb := busy.Analyze(p)
	if rb.UnitEnergy[UnitClock] <= ri.UnitEnergy[UnitClock] {
		t.Fatal("clock energy does not grow with chip activity")
	}
}

func TestEnergyDelayDefinition(t *testing.T) {
	var m Meter
	for i := 0; i < 1200; i++ {
		m.AddCycle()
		m.Add(UnitALU, 2)
	}
	r := m.Analyze(DefaultParams())
	if math.Abs(r.EnergyDelay-r.TotalEnergy*r.Seconds) > 1e-15 {
		t.Fatal("E-D product definition violated")
	}
	if math.Abs(r.AvgPower*r.Seconds-r.TotalEnergy) > 1e-9 {
		t.Fatal("power-energy-time identity violated")
	}
}

func TestZeroCycleAnalyze(t *testing.T) {
	var m Meter
	r := m.Analyze(DefaultParams())
	if r.TotalEnergy != 0 || r.AvgPower != 0 {
		t.Fatal("zero-cycle analysis not zero")
	}
}

func TestUnitStrings(t *testing.T) {
	want := []string{"icache", "bpred", "regfile", "rename", "window", "lsq",
		"alu", "dcache", "dcache2", "resultbus", "clock"}
	for u := Unit(0); u < NumUnits; u++ {
		if u.String() != want[u] {
			t.Errorf("unit %d = %q, want %q", u, u.String(), want[u])
		}
	}
}

func TestUtilizationAccessor(t *testing.T) {
	var m Meter
	p := DefaultParams()
	for i := 0; i < 100; i++ {
		m.AddCycle()
		m.Add(UnitICache, 4)
	}
	want := 4.0 / p.Ports[UnitICache]
	if got := m.Utilization(p, UnitICache); math.Abs(got-want) > 1e-12 {
		t.Fatalf("utilization = %v, want %v", got, want)
	}
}
