package prog

import (
	"testing"
	"unsafe"

	"selthrottle/internal/xrand"
)

// TestDynInstLayoutCompact pins the dynamic-instruction record to at most
// two cache lines. The pipeline copies DynInst through the instruction pool,
// the completion wheel, and the recovery paths on every instruction, so the
// checkpoint indirection's whole point is keeping this small.
func TestDynInstLayoutCompact(t *testing.T) {
	if s := unsafe.Sizeof(DynInst{}); s > 128 {
		t.Fatalf("DynInst is %d bytes, must stay within 128 (two cache lines)", s)
	}
}

// TestThr24Exactness exercises the integer-threshold construction at and
// around its decision boundary: for representative probabilities, the
// integer compare x < thr24(p) must agree with the float compare
// float64(x)/2^24 < p for the 24-bit values nearest the threshold (and the
// range extremes).
func TestThr24Exactness(t *testing.T) {
	probs := []float64{0, 1e-12, 1.0 / 3, 0.25, 0.3333333333333333, 0.5,
		0.7499999999999999, 0.75, 0.95, 0.9999999, 1}
	for _, p := range probs {
		thr := thr24(p)
		xs := []uint32{0, 1, 1<<24 - 2, 1<<24 - 1}
		for d := uint32(0); d <= 2; d++ {
			if thr >= d {
				xs = append(xs, thr-d)
			}
			if uint32(int64(thr)+int64(d)) < 1<<24 {
				xs = append(xs, thr+d)
			}
		}
		for _, x := range xs {
			want := float64(x)/float64(1<<24) < p
			got := x < thr
			if got != want {
				t.Fatalf("p=%v x=%d: integer compare %v, float compare %v", p, x, got, want)
			}
		}
	}
}

// TestIntegerOutcomeMatchesFloat drives the integer-threshold outcome and
// the float reference over every generated branch of every profile with
// randomized histories: the two must agree on every single call.
func TestIntegerOutcomeMatchesFloat(t *testing.T) {
	for _, p := range Profiles() {
		program := Generate(p)
		rng := xrand.New(p.Seed ^ 0xFEED)
		for bi := range program.Branches {
			br := &program.Branches[bi]
			for k := 0; k < 64; k++ {
				g, c := rng.Uint64(), rng.Uint64()>>40
				if got, want := br.outcome(g, c), Outcome(br, g, c); got != want {
					t.Fatalf("%s branch %d: integer outcome %v, float outcome %v (ghist=%#x brc=%d)",
						p.Name, bi, got, want, g, c)
				}
			}
		}
	}
}

// TestFastWalkerMatchesLegacy is the randomized end-to-end identity test of
// the walker fast path: both walkers are driven with the same (sometimes
// wrong) steering decisions, the same wrong-path excursions, and the same
// checkpoint recoveries, and every produced DynInst must be identical field
// for field — including the checkpoint handles, since both walkers lease and
// release in the same order. Afterwards the checkpoint arenas must be fully
// drained (the leak check at walker level).
func TestFastWalkerMatchesLegacy(t *testing.T) {
	for _, p := range Profiles() {
		program := Generate(p)
		fast := NewWalker(program)
		legacy := NewWalker(program)
		legacy.SetLegacy(true)
		rng := xrand.New(0xF00D ^ p.Seed)
		var df, dl DynInst
		step := func(where string, i int) {
			fast.Next(&df)
			legacy.Next(&dl)
			if df != dl {
				t.Fatalf("%s: %s stream diverged at %d:\n fast:   %+v\n legacy: %+v",
					p.Name, where, i, df, dl)
			}
			if np := fast.NextPC(); np != legacy.NextPC() {
				t.Fatalf("%s: NextPC diverged at %d", p.Name, i)
			}
		}
		for i := 0; i < 12000; i++ {
			step("correct-path", i)
			if df.BrID == NoBranch {
				continue
			}
			pred := df.Taken
			if rng.Bool(0.2) {
				pred = !pred
			}
			fast.Steer(pred)
			legacy.Steer(pred)
			if pred == df.Taken {
				fast.Release(&df)
				legacy.Release(&dl)
				continue
			}
			// Wrong path: walk a bounded excursion, then recover both from
			// the mispredicted branch's checkpoint.
			brF, brL := df, dl
			for k := rng.Intn(30); k > 0; k-- {
				step("wrong-path", i)
				if df.BrID != NoBranch {
					fast.Steer(df.Taken)
					legacy.Steer(dl.Taken)
					fast.Release(&df)
					legacy.Release(&dl)
				}
			}
			fast.Recover(&brF)
			legacy.Recover(&brL)
		}
		for _, w := range []struct {
			name string
			w    *Walker
		}{{"fast", fast}, {"legacy", legacy}} {
			leased, capacity, hw := w.w.CkptStats()
			if leased != 0 {
				t.Errorf("%s/%s: %d checkpoint leases leaked", p.Name, w.name, leased)
			}
			if hw > 4 {
				t.Errorf("%s/%s: checkpoint high-water %d, at most 2 branches are ever outstanding here", p.Name, w.name, hw)
			}
			if capacity > hw {
				t.Errorf("%s/%s: arena capacity %d exceeds high-water %d", p.Name, w.name, capacity, hw)
			}
		}
	}
}

// TestNextGroupMatchesNext is the randomized identity test for the batched
// walker entry point: a NextGroup-driven walker and a Next-driven walker,
// given identical (sometimes wrong) steering and identical recoveries, must
// produce field-for-field identical instruction streams, agree on NextPC
// between batches, and park in the same architectural state. Buffer sizes
// vary per batch so every cut point — mid-block, block boundary, control
// transfer in any slot — is exercised, in both walker implementations.
func TestNextGroupMatchesNext(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		for _, p := range Profiles() {
			program := Generate(p)
			batched := NewWalker(program)
			ref := NewWalker(program)
			batched.SetLegacy(legacy)
			ref.SetLegacy(legacy)
			rng := xrand.New(0xBA7C4 ^ p.Seed)
			buf := make([]DynInst, 8)
			var dr DynInst
			produced := 0
			for produced < 20000 {
				width := 1 + rng.Intn(len(buf))
				// Zero the records first: fields outside the per-op contract
				// carry stale values (see the DynInst docs), so equality is
				// meaningful only when both walkers start from zeroed slots.
				for i := range buf[:width] {
					buf[i] = DynInst{}
				}
				n := batched.NextGroup(buf[:width])
				if n < 1 || n > width {
					t.Fatalf("%s legacy=%v: NextGroup(%d) returned %d", p.Name, legacy, width, n)
				}
				for i := 0; i < n; i++ {
					dr = DynInst{}
					ref.Next(&dr)
					if buf[i] != dr {
						t.Fatalf("%s legacy=%v: stream diverged at %d slot %d:\n group: %+v\n next:  %+v",
							p.Name, legacy, produced, i, buf[i], dr)
					}
					if op := buf[i].St.Op; op.IsControl() && i != n-1 {
						t.Fatalf("%s legacy=%v: control op %v not last in batch (%d of %d)",
							p.Name, legacy, op, i, n-1)
					}
					produced++
				}
				last := buf[n-1]
				if last.BrID != NoBranch {
					pred := last.Taken
					if rng.Bool(0.25) {
						pred = !pred
					}
					batched.Steer(pred)
					ref.Steer(pred)
					if pred != last.Taken && rng.Bool(0.5) {
						// Recover immediately half the time; otherwise walk the
						// wrong path for a while (the outer loop does that
						// naturally) and just drop the lease.
						lb, lr := last, dr
						batched.Recover(&lb)
						ref.Recover(&lr)
					} else {
						lb, lr := last, dr
						batched.Release(&lb)
						ref.Release(&lr)
					}
				}
				if batched.NextPC() != ref.NextPC() {
					t.Fatalf("%s legacy=%v: NextPC diverged after %d instructions", p.Name, legacy, produced)
				}
				if batched.State() != ref.State() {
					t.Fatalf("%s legacy=%v: walker state diverged after %d instructions", p.Name, legacy, produced)
				}
			}
		}
	}
}

// TestWalkerResetReusesArena checks that Reset keeps the arena backing and
// the legacy flag while rewinding the lease state.
func TestWalkerResetReusesArena(t *testing.T) {
	p, _ := ProfileByName("go")
	program := Generate(p)
	w := NewWalker(program)
	w.SetLegacy(true)
	var d DynInst
	for i := 0; i < 1000; i++ {
		w.Next(&d)
		if d.BrID != NoBranch {
			w.Steer(d.Taken) // leases intentionally left outstanding
		}
	}
	leased, _, _ := w.CkptStats()
	if leased == 0 {
		t.Fatal("no leases outstanding before reset")
	}
	w.Reset(program)
	if leased, _, _ := w.CkptStats(); leased != 0 {
		t.Fatalf("%d leases survived Reset", leased)
	}
	// The legacy flag must survive (the runner re-applies it anyway, but
	// Reset alone must not silently switch implementations mid-pool).
	w.Next(&d)
	if !w.legacy {
		t.Fatal("legacy flag lost across Reset")
	}
}

// TestCallStackRingMatchesShiftReference drives the O(1) head-index ring
// against a plain slice reference implementing the historical
// shift-on-overflow semantics: push drops the oldest frame when full, pop
// returns the newest.
func TestCallStackRingMatchesShiftReference(t *testing.T) {
	var s WalkState
	var ref []int32
	rng := xrand.New(42)
	for i := 0; i < 50000; i++ {
		if rng.Bool(0.55) {
			v := rng.Intn(1 << 20)
			s.push(v)
			if len(ref) == CallStackDepth {
				ref = ref[1:]
			}
			ref = append(ref, int32(v))
		} else {
			got, ok := s.pop()
			wantOk := len(ref) > 0
			if ok != wantOk {
				t.Fatalf("step %d: pop ok=%v, reference ok=%v", i, ok, wantOk)
			}
			if ok {
				want := ref[len(ref)-1]
				ref = ref[:len(ref)-1]
				if int32(got) != want {
					t.Fatalf("step %d: pop %d, reference %d", i, got, want)
				}
			}
		}
		if s.Depth() != len(ref) {
			t.Fatalf("step %d: depth %d, reference %d", i, s.Depth(), len(ref))
		}
	}
}
