// Package prog provides the synthetic workload substrate of the
// reproduction: generated control-flow-graph programs whose dynamic branch
// behaviour is calibrated, per benchmark, to the gshare misprediction rates
// the paper reports in Table 2.
//
// The paper evaluated eight SPECint95/SPECint2000 benchmarks (compiled Alpha
// binaries run under SimpleScalar/Wattch). Those binaries and inputs are not
// available here, so — per the reproduction's substitution rule — each
// benchmark becomes a seeded Profile describing a synthetic program with the
// same *observable* properties the paper's mechanisms act on:
//
//   - conditional-branch density and gshare-8KB misprediction rate (Table 2),
//   - a skewed distribution of per-branch difficulty (so confidence
//     estimators have something real to estimate),
//   - instruction mix (loads/stores/int/fp) and dependency structure,
//   - code footprint (I-cache behaviour) and data working set (D-cache).
//
// Branch outcomes are pure functions of (per-branch seed, global outcome
// history): a *learnable* component reads a few low history bits through a
// random boolean function, and an *unlearnable* component keyed on deep
// history bits injects irreducible mispredictions with a per-branch bias.
// This gives predictors a genuine learning task (bigger tables help, as in
// the paper's Figure 7) while keeping the walker state tiny, so misprediction
// recovery can restore an exact checkpoint.
//
// # Hot-path layout
//
// The walker is the single hottest function of the simulator's cycle loop,
// so its data structures are laid out for the fetch path:
//
//   - DynInst is one cache line (≤128 bytes pinned by tests). Recovery
//     checkpoints do not live in the instruction record: conditional
//     branches lease a slot in the walker's pooled checkpoint arena and
//     carry only the int32 handle (DynInst.Ckpt). The lease returns on
//     Recover, on correct resolution, or on squash (Walker.Release);
//     CkptStats probes the arena for leak tests.
//   - Branch outcome probabilities are precomputed as 2^24-scaled integer
//     thresholds at Program build time, turning the outcome computation
//     into two hashes plus integer compares. The scaling is exact in
//     IEEE 754 (powers of two only shift the exponent), so the integer
//     form decides precisely the same outcomes as the float reference —
//     see the threshold fields on Branch for the full argument.
//   - Per-block data the walker needs every instruction (successor base
//     PCs, terminator class, flat code/memory-ref tables) is precomputed
//     into blockMeta so Next reads flat arrays instead of chasing Block
//     structures and a (block, index) map.
//
// The original implementation survives behind Walker.SetLegacy as the
// reference the identity tests drive against the fast path.
package prog

// Profile describes one synthetic benchmark: the generation parameters plus
// the paper-reported characteristics it is calibrated against (Table 2).
type Profile struct {
	Name string // benchmark name, e.g. "go"
	Seed uint64 // master seed; all structure/behaviour derives from it

	// --- Program shape ---
	Funcs        int     // number of generated functions
	SegmentsMin  int     // structural segments per function (min)
	SegmentsMax  int     // structural segments per function (max)
	MeanBlockLen float64 // mean instructions per basic block (geometric)
	MaxDepth     int     // max nesting depth of loops/diamonds per function

	// --- Instruction mix (fractions of non-control instructions) ---
	LoadFrac  float64
	StoreFrac float64
	IntMult   float64
	FPAlu     float64
	FPMult    float64

	// --- Dependency structure ---
	DepProb  float64 // probability a source reads a recently written register
	DepDepth int     // how far back "recently written" reaches

	// --- Branch behaviour ---
	EasyFrac  float64 // fraction of non-loop-body branches that are "easy"
	EasyNoise float64 // unlearnable-outcome probability for easy branches
	HardNoise float64 // mean unlearnable-outcome probability for hard branches
	BiasMean  float64 // mean taken-bias of the unlearnable component
	DetBitsLo int     // learnable component: min history bits consumed
	DetBitsHi int     // learnable component: max history bits consumed
	LoopFrac  float64 // fraction of structures that are loops
	TripMean  float64 // mean loop trip count (drives loop-branch bias)

	// --- Memory behaviour ---
	HotFrac   float64 // fraction of memory ops hitting a small hot region
	HotBytes  uint64  // size of the hot region
	WarmBytes uint64  // size of the medium region
	ColdFrac  float64 // fraction of memory ops hitting the big cold region
	ColdBytes uint64  // size of the cold region (drives D-cache misses)

	// HardFreqOverride sets how often loop bodies execute their hard
	// diamond (the gate branch's taken frequency). It is the primary
	// miss-rate calibration knob; zero means the default 0.5.
	HardFreqOverride float64

	// NoiseScaleOverride rescales both EasyNoise and HardNoise at branch
	// creation; the calibration loop (cmd/stcalib -tune) solves for the
	// value that lands the measured gshare miss rate on the paper's.
	// Zero means 1.0 (no scaling).
	NoiseScaleOverride float64

	// --- Paper-reported characteristics (Table 2), for reports and tests ---
	PaperInput    string  // paper's reduced input set
	PaperMInsts   int     // simulated instructions, millions
	PaperMBranch  int     // dynamic conditional branches, millions
	PaperMissPct  float64 // gshare 8 KB misprediction rate, percent
	TargetMissTol float64 // calibration tolerance band, percentage points
}

// NoiseScale returns the effective noise rescaling factor.
func (p *Profile) NoiseScale() float64 {
	if p.NoiseScaleOverride == 0 {
		return 1.0
	}
	return p.NoiseScaleOverride
}

// HardFreq returns the effective hard-diamond gate frequency.
func (p *Profile) HardFreq() float64 {
	if p.HardFreqOverride == 0 {
		return 0.5
	}
	return p.HardFreqOverride
}

// DefaultInstructions is the per-benchmark dynamic instruction budget used by
// the command-line harness when none is given. The paper ran 145–2231 M
// instructions per benchmark; results here are ratios that stabilise within a
// few hundred thousand instructions of warm simulation, so the default keeps
// full-figure reproductions to minutes.
const DefaultInstructions = 300_000

// Profiles returns the eight benchmark profiles of Table 2, in paper order.
// Each profile's generation parameters were calibrated (cmd/stcalib) so that
// the simulated 8 KB gshare misprediction rate lands within TargetMissTol
// percentage points of the paper's value; calibration tests assert the band.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "compress", Seed: 0xC0317_0001,
			Funcs: 36, SegmentsMin: 3, SegmentsMax: 8, MeanBlockLen: 7, MaxDepth: 3,
			LoadFrac: 0.24, StoreFrac: 0.10, IntMult: 0.02, FPAlu: 0.01, FPMult: 0.0,
			DepProb: 0.75, DepDepth: 4,
			EasyFrac: 0.78, EasyNoise: 0.018, HardNoise: 0.70, BiasMean: 0.6,
			DetBitsLo: 2, DetBitsHi: 6, LoopFrac: 0.35, TripMean: 120,
			HotFrac: 0.55, HotBytes: 4 << 10, WarmBytes: 8 << 10, ColdFrac: 0.22, ColdBytes: 8 << 20,
			NoiseScaleOverride: 1, HardFreqOverride: 0.65,
			PaperInput: "40000 e 2231", PaperMInsts: 2231, PaperMBranch: 170,
			PaperMissPct: 10.2, TargetMissTol: 3.0,
		},
		{
			Name: "gcc", Seed: 0xC0317_0002,
			Funcs: 160, SegmentsMin: 3, SegmentsMax: 9, MeanBlockLen: 5, MaxDepth: 3,
			LoadFrac: 0.26, StoreFrac: 0.12, IntMult: 0.01, FPAlu: 0.0, FPMult: 0.0,
			DepProb: 0.74, DepDepth: 4,
			EasyFrac: 0.8, EasyNoise: 0.014, HardNoise: 0.70, BiasMean: 0.6,
			DetBitsLo: 2, DetBitsHi: 7, LoopFrac: 0.22, TripMean: 60,
			HotFrac: 0.50, HotBytes: 4 << 10, WarmBytes: 8 << 10, ColdFrac: 0.22, ColdBytes: 8 << 20,
			NoiseScaleOverride: 1, HardFreqOverride: 0.55,
			PaperInput: "genrecog.i", PaperMInsts: 145, PaperMBranch: 19,
			PaperMissPct: 9.2, TargetMissTol: 3.0,
		},
		{
			Name: "go", Seed: 0xC0317_0003,
			Funcs: 130, SegmentsMin: 4, SegmentsMax: 10, MeanBlockLen: 5, MaxDepth: 3,
			LoadFrac: 0.25, StoreFrac: 0.09, IntMult: 0.01, FPAlu: 0.0, FPMult: 0.0,
			DepProb: 0.74, DepDepth: 4,
			EasyFrac: 0.58, EasyNoise: 0.16, HardNoise: 0.8, BiasMean: 0.58,
			DetBitsLo: 2, DetBitsHi: 7, LoopFrac: 0.15, TripMean: 35,
			HotFrac: 0.48, HotBytes: 4 << 10, WarmBytes: 8 << 10, ColdFrac: 0.22, ColdBytes: 8 << 20,
			NoiseScaleOverride: 1, HardFreqOverride: 0.95,
			PaperInput: "9 9", PaperMInsts: 146, PaperMBranch: 15,
			PaperMissPct: 19.7, TargetMissTol: 3.5,
		},
		{
			Name: "bzip2", Seed: 0xC0317_0004,
			Funcs: 40, SegmentsMin: 3, SegmentsMax: 8, MeanBlockLen: 5, MaxDepth: 3,
			LoadFrac: 0.26, StoreFrac: 0.11, IntMult: 0.02, FPAlu: 0.0, FPMult: 0.0,
			DepProb: 0.76, DepDepth: 4,
			EasyFrac: 0.82, EasyNoise: 0.006, HardNoise: 0.70, BiasMean: 0.62,
			DetBitsLo: 2, DetBitsHi: 6, LoopFrac: 0.38, TripMean: 150,
			HotFrac: 0.52, HotBytes: 4 << 10, WarmBytes: 8 << 10, ColdFrac: 0.22, ColdBytes: 8 << 20,
			NoiseScaleOverride: 1, HardFreqOverride: 0.85,
			PaperInput: "input.source 1", PaperMInsts: 500, PaperMBranch: 43,
			PaperMissPct: 8.0, TargetMissTol: 3.0,
		},
		{
			Name: "crafty", Seed: 0xC0317_0005,
			Funcs: 96, SegmentsMin: 3, SegmentsMax: 9, MeanBlockLen: 6, MaxDepth: 3,
			LoadFrac: 0.27, StoreFrac: 0.08, IntMult: 0.02, FPAlu: 0.0, FPMult: 0.0,
			DepProb: 0.74, DepDepth: 4,
			EasyFrac: 0.82, EasyNoise: 0.006, HardNoise: 0.70, BiasMean: 0.62,
			DetBitsLo: 2, DetBitsHi: 6, LoopFrac: 0.26, TripMean: 80,
			HotFrac: 0.56, HotBytes: 4 << 10, WarmBytes: 8 << 10, ColdFrac: 0.22, ColdBytes: 8 << 20,
			NoiseScaleOverride: 1, HardFreqOverride: 0.1,
			PaperInput: "test (modified)", PaperMInsts: 437, PaperMBranch: 38,
			PaperMissPct: 7.7, TargetMissTol: 3.0,
		},
		{
			Name: "gzip", Seed: 0xC0317_0006,
			Funcs: 40, SegmentsMin: 3, SegmentsMax: 8, MeanBlockLen: 4, MaxDepth: 3,
			LoadFrac: 0.24, StoreFrac: 0.10, IntMult: 0.01, FPAlu: 0.0, FPMult: 0.0,
			DepProb: 0.76, DepDepth: 4,
			EasyFrac: 0.8, EasyNoise: 0.006, HardNoise: 0.70, BiasMean: 0.6,
			DetBitsLo: 2, DetBitsHi: 6, LoopFrac: 0.34, TripMean: 110,
			HotFrac: 0.54, HotBytes: 4 << 10, WarmBytes: 8 << 10, ColdFrac: 0.22, ColdBytes: 8 << 20,
			NoiseScaleOverride: 1, HardFreqOverride: 0.75,
			PaperInput: "input.source 1", PaperMInsts: 500, PaperMBranch: 52,
			PaperMissPct: 8.8, TargetMissTol: 3.0,
		},
		{
			Name: "parser", Seed: 0xC0317_0007,
			Funcs: 80, SegmentsMin: 3, SegmentsMax: 8, MeanBlockLen: 4, MaxDepth: 3,
			LoadFrac: 0.27, StoreFrac: 0.11, IntMult: 0.01, FPAlu: 0.0, FPMult: 0.0,
			DepProb: 0.74, DepDepth: 4,
			EasyFrac: 0.85, EasyNoise: 0.006, HardNoise: 0.70, BiasMean: 0.62,
			DetBitsLo: 2, DetBitsHi: 6, LoopFrac: 0.28, TripMean: 90,
			HotFrac: 0.55, HotBytes: 4 << 10, WarmBytes: 8 << 10, ColdFrac: 0.22, ColdBytes: 8 << 20,
			NoiseScaleOverride: 1, HardFreqOverride: 0.35,
			PaperInput: "test (modified)", PaperMInsts: 500, PaperMBranch: 64,
			PaperMissPct: 6.8, TargetMissTol: 3.0,
		},
		{
			Name: "twolf", Seed: 0xC0317_0008,
			Funcs: 70, SegmentsMin: 3, SegmentsMax: 9, MeanBlockLen: 5, MaxDepth: 3,
			LoadFrac: 0.26, StoreFrac: 0.09, IntMult: 0.02, FPAlu: 0.02, FPMult: 0.01,
			DepProb: 0.74, DepDepth: 4,
			EasyFrac: 0.75, EasyNoise: 0.018, HardNoise: 0.70, BiasMean: 0.6,
			DetBitsLo: 2, DetBitsHi: 6, LoopFrac: 0.26, TripMean: 60,
			HotFrac: 0.52, HotBytes: 4 << 10, WarmBytes: 8 << 10, ColdFrac: 0.22, ColdBytes: 8 << 20,
			NoiseScaleOverride: 1, HardFreqOverride: 0.7,
			PaperInput: "test", PaperMInsts: 258, PaperMBranch: 21,
			PaperMissPct: 11.2, TargetMissTol: 3.0,
		},
	}
}

// ProfileByName returns the profile with the given name, or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
