package prog

import (
	"fmt"
	"math"

	"selthrottle/internal/isa"
	"selthrottle/internal/xrand"
)

// InstBytes is the size of one instruction in the synthetic address space.
// It sets the relationship between instruction count and I-cache lines.
const InstBytes = 8

// Block is one basic block of a generated program. The last element of Code
// may be a control instruction; its targets are encoded in Succ.
type Block struct {
	Base uint64       // PC of the first instruction
	Code []isa.Static // instructions, terminator (if any) last

	// Succ holds successor block indices: Succ[0] is the fall-through /
	// not-taken successor, Succ[1] the taken target. NoBlock marks an
	// unused slot. For calls, Succ[1] is the callee entry and Succ[0] the
	// return site (pushed on the walker's call stack). Returns have both
	// slots set to NoBlock: the target comes from the call stack.
	Succ [2]int

	// BrID indexes Program.Branches when the terminator is a conditional
	// branch, and is NoBranch otherwise.
	BrID int
}

// NoBlock and NoBranch mark unused successor / branch-parameter slots.
const (
	NoBlock  = -1
	NoBranch = -1
)

// Terminator returns the block's control instruction, or OpNop if the block
// simply falls through.
func (b *Block) Terminator() isa.Op {
	if len(b.Code) == 0 {
		return isa.OpNop
	}
	if op := b.Code[len(b.Code)-1].Op; op.IsControl() {
		return op
	}
	return isa.OpNop
}

// Branch holds the behavioural parameters of one static conditional branch.
// The dynamic outcome is a pure function of these parameters and the global
// outcome history (see Outcome), which keeps walker checkpoints tiny.
type Branch struct {
	Seed     uint64  // per-branch seed, derived from the profile seed
	DetBits  int     // history bits consumed by the learnable component
	DetBias  float64 // taken-probability of the learnable component's contexts
	NoiseP   float64 // probability the unlearnable component decides
	Bias     float64 // taken-probability of the unlearnable component
	LoopBack bool    // true for loop back-edges (mostly-taken by design)
	TripInv  float64 // loop back-edges: per-context learnable exit probability

	// Integer outcome thresholds, derived from the float parameters by
	// finalize (called once at Program build time). Each probability p is
	// turned into the 2^24-scaled threshold ceil(p * 2^24), which makes the
	// hot-path comparison a pure integer compare yet provably identical to
	// the float form: for a 24-bit integer x, "float64(x)/2^24 < p" divides
	// by an exact power of two (lossless in IEEE 754), so it is equivalent
	// to the real inequality x < p*2^24 — and p*2^24 is itself computed
	// exactly (scaling a float64 by 2^24 only shifts its exponent). For an
	// integer x and real t, x < t iff x < ceil(t), so the integer compare
	// "x < ceil(p*2^24)" decides exactly the same outcomes. The identity
	// tests drive both forms over every generated branch to pin this.
	noiseThr   uint32 // ceil(NoiseP  * 2^24)
	biasThr    uint32 // ceil(Bias    * 2^24)
	tripThr    uint32 // ceil(TripInv * 2^24)
	detBiasThr uint32 // ceil(DetBias * 2^24)
	histMask   uint64 // 1<<DetBits - 1
}

// thr24 converts a probability into its exact 2^24-scaled integer threshold
// (see the Branch field docs for the exactness argument).
func thr24(p float64) uint32 {
	t := math.Ceil(p * (1 << 24))
	if t < 0 {
		return 0
	}
	if t > 1<<24 {
		return 1 << 24
	}
	return uint32(t)
}

// finalize derives the integer outcome thresholds from the float parameters.
// Generate calls it for every branch; hand-built Branch values (tests) that
// go through the fast outcome path must call it too.
func (br *Branch) finalize() {
	br.noiseThr = thr24(br.NoiseP)
	br.biasThr = thr24(br.Bias)
	br.tripThr = thr24(br.TripInv)
	br.detBiasThr = thr24(br.DetBias)
	br.histMask = uint64(1)<<uint(br.DetBits) - 1
}

// MemRef holds the address-generation parameters of one static memory
// instruction: a base region and a span within it. Addresses are pure
// functions of (seed, history), giving stable locality per static site.
type MemRef struct {
	Seed uint64
	Base uint64
	Span uint64 // region size in bytes; addresses fall in [Base, Base+Span)

	// Wild marks references with essentially no temporal locality (random
	// addresses in a large cold region: pointer chasing, hash lookups).
	// Stable references (the default) revisit a slowly moving working set,
	// so their lines are usually resident; wild references are where cache
	// misses — and wrong-path pollution — come from.
	Wild bool

	// spanMask is Span-1 when Span is a power of two (every built-in
	// profile region is), letting the walker's address fold use a mask
	// instead of a 64-bit division; 0 disables the fast path. Derived by
	// finalize.
	spanMask uint64
}

// fold reduces a hash to an 8-byte-aligned offset within the span — the
// hot-path equivalent of h % Span &^ 7.
func (m *MemRef) fold(h uint64) uint64 {
	if m.spanMask != 0 {
		return h & m.spanMask &^ 7
	}
	return h % m.Span &^ 7
}

// Program is a generated synthetic program: a CFG over basic blocks plus the
// behavioural parameter tables for branches and memory references.
type Program struct {
	Profile  Profile
	Blocks   []Block
	Branches []Branch
	// MemRefs is indexed by a per-instruction memory id stored in the
	// builder; the walker recovers it via memIndex.
	MemRefs []MemRef
	Entry   int // entry block index

	// memIndex maps (block, instruction index) to a MemRefs index. Flat
	// map built at generation time; read-only afterwards.
	memIndex map[memKey]int

	// CodeBytes is the static code footprint (for reports).
	CodeBytes uint64

	// Fast-path tables, derived once by finalize at the end of Generate so
	// the walker's per-instruction work is flat-array reads instead of
	// block-pointer chasing and map lookups. meta mirrors Blocks; code and
	// memIDs are the concatenation of every block's instructions (indexed
	// by meta.off + instruction index), with memIDs[i] the MemRefs index of
	// instruction i or NoMem.
	meta   []blockMeta
	code   []isa.Static
	memIDs []int32
}

// NoMem marks a non-memory instruction in Program.memIDs.
const NoMem = -1

// blockMeta is the walker's per-block fast-path record: everything Next
// needs about a block — successor bases, terminator class, flat-table offset
// — precomputed so the hot loop touches no map and no second Block.
type blockMeta struct {
	base      uint64 // PC of the block's first instruction
	fallBase  uint64 // base PC of Succ[0] (0 when NoBlock)
	takenBase uint64 // base PC of Succ[1] (0 when NoBlock)
	off       int32  // offset of the block's instructions in code/memIDs
	n         int32  // number of instructions in the block
	succ0     int32  // fall-through / not-taken successor (NoBlock = none)
	succ1     int32  // taken target / callee entry (NoBlock = none)
	brID      int32  // Branches index for conditional terminators, else NoBranch
	term      isa.Op // terminator class (OpNop for plain fall-through)
}

// finalize builds the derived fast-path tables: the per-branch integer
// thresholds and the flat block/instruction metadata. Generate calls it after
// validation; the tables are read-only afterwards.
func (p *Program) finalize() {
	for i := range p.Branches {
		p.Branches[i].finalize()
	}
	for i := range p.MemRefs {
		m := &p.MemRefs[i]
		if m.Span > 0 && m.Span&(m.Span-1) == 0 {
			m.spanMask = m.Span - 1
		}
	}
	total := 0
	for i := range p.Blocks {
		total += len(p.Blocks[i].Code)
	}
	p.code = make([]isa.Static, 0, total)
	p.memIDs = make([]int32, 0, total)
	p.meta = make([]blockMeta, len(p.Blocks))
	for i := range p.Blocks {
		b := &p.Blocks[i]
		m := &p.meta[i]
		*m = blockMeta{
			base:  b.Base,
			off:   int32(len(p.code)),
			n:     int32(len(b.Code)),
			succ0: int32(b.Succ[0]),
			succ1: int32(b.Succ[1]),
			brID:  int32(b.BrID),
			term:  b.Terminator(),
		}
		if b.Succ[0] != NoBlock {
			m.fallBase = p.Blocks[b.Succ[0]].Base
		}
		if b.Succ[1] != NoBlock {
			m.takenBase = p.Blocks[b.Succ[1]].Base
		}
		p.code = append(p.code, b.Code...)
		for j := range b.Code {
			id := int32(NoMem)
			if mid, ok := p.memIndex[memKey{i, j}]; ok {
				id = int32(mid)
			}
			p.memIDs = append(p.memIDs, id)
		}
	}
}

type memKey struct {
	block int
	idx   int
}

// memRef returns the memory-reference parameters for instruction idx of
// block b; ok is false for non-memory instructions.
func (p *Program) memRef(block, idx int) (MemRef, bool) {
	id, ok := p.memIndex[memKey{block, idx}]
	if !ok {
		return MemRef{}, false
	}
	return p.MemRefs[id], true
}

// NumStaticBranches returns the number of static conditional branches.
func (p *Program) NumStaticBranches() int { return len(p.Branches) }

// Validate performs structural checks over the generated CFG. It is used by
// tests and by Generate itself (a malformed program is a generator bug, so
// Generate panics on validation failure rather than returning a broken
// program).
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("prog: empty program")
	}
	if p.Entry < 0 || p.Entry >= len(p.Blocks) {
		return fmt.Errorf("prog: entry %d out of range", p.Entry)
	}
	for i := range p.Blocks {
		b := &p.Blocks[i]
		for s := 0; s < 2; s++ {
			if b.Succ[s] != NoBlock && (b.Succ[s] < 0 || b.Succ[s] >= len(p.Blocks)) {
				return fmt.Errorf("prog: block %d successor %d out of range", i, b.Succ[s])
			}
		}
		for j, st := range b.Code {
			if err := st.Validate(); err != nil {
				return fmt.Errorf("prog: block %d inst %d: %w", i, j, err)
			}
			if st.Op.IsControl() && j != len(b.Code)-1 {
				return fmt.Errorf("prog: block %d has control op mid-block", i)
			}
			if st.Op.IsMem() {
				if _, ok := p.memIndex[memKey{i, j}]; !ok {
					return fmt.Errorf("prog: block %d inst %d missing mem ref", i, j)
				}
			}
		}
		switch b.Terminator() {
		case isa.OpBranch:
			if b.Succ[0] == NoBlock || b.Succ[1] == NoBlock {
				return fmt.Errorf("prog: block %d cond branch missing successor", i)
			}
			if b.BrID == NoBranch || b.BrID >= len(p.Branches) {
				return fmt.Errorf("prog: block %d cond branch missing params", i)
			}
		case isa.OpJump:
			if b.Succ[1] == NoBlock {
				return fmt.Errorf("prog: block %d jump missing target", i)
			}
		case isa.OpCall:
			if b.Succ[1] == NoBlock || b.Succ[0] == NoBlock {
				return fmt.Errorf("prog: block %d call missing callee or return site", i)
			}
		case isa.OpReturn:
			// target comes from the call stack
		default:
			if b.Succ[0] == NoBlock {
				return fmt.Errorf("prog: block %d falls off the end", i)
			}
		}
	}
	return nil
}

// builder carries generation state.
type builder struct {
	p    *Program
	rng  *xrand.Rand
	prof Profile

	// recent destination registers, for dependency-distance shaping
	recent []int8

	ultraAcc float64 // deterministic distribution of ultra-hard branches

	funcEntries []int // entry block per function
}

// Generate builds the synthetic program for a profile. Generation is fully
// deterministic in Profile.Seed. The returned program has been validated.
func Generate(prof Profile) *Program {
	b := &builder{
		p: &Program{
			Profile:  prof,
			memIndex: make(map[memKey]int),
		},
		rng:  xrand.New(xrand.Hash2(prof.Seed, 0x9E1)),
		prof: prof,
	}
	// Generate leaf-most functions first so calls can target already-built
	// functions (index > caller's own would be unbuilt); we instead build
	// all entries lazily: reserve function list, build in order, and let
	// function i call only functions j > i (no recursion, bounded stack).
	b.funcEntries = make([]int, prof.Funcs)
	for i := range b.funcEntries {
		b.funcEntries[i] = NoBlock
	}
	// Build from the last function backwards so callees exist when callers
	// are generated.
	for i := prof.Funcs - 1; i >= 0; i-- {
		b.funcEntries[i] = b.buildFunc(i)
	}
	// main: an infinite dispatch loop calling every top-level function.
	b.p.Entry = b.buildMain()
	b.assignPCs()
	if err := b.p.Validate(); err != nil {
		panic("prog: generator produced invalid program: " + err.Error())
	}
	b.p.finalize()
	return b.p
}

// newBlock appends an empty block and returns its index.
func (b *builder) newBlock() int {
	b.p.Blocks = append(b.p.Blocks, Block{Succ: [2]int{NoBlock, NoBlock}, BrID: NoBranch})
	return len(b.p.Blocks) - 1
}

// fillBlock populates a block with straight-line instructions.
func (b *builder) fillBlock(id int, n int) {
	blk := &b.p.Blocks[id]
	for i := 0; i < n; i++ {
		st := b.randInst()
		if st.Op.IsMem() {
			b.p.memIndex[memKey{id, len(blk.Code)}] = b.newMemRef()
		}
		blk.Code = append(blk.Code, st)
	}
}

// randInst draws one non-control instruction from the profile mix.
func (b *builder) randInst() isa.Static {
	prof := b.prof
	r := b.rng.Float64()
	var op isa.Op
	switch {
	case r < prof.LoadFrac:
		op = isa.OpLoad
	case r < prof.LoadFrac+prof.StoreFrac:
		op = isa.OpStore
	case r < prof.LoadFrac+prof.StoreFrac+prof.IntMult:
		op = isa.OpIntMult
	case r < prof.LoadFrac+prof.StoreFrac+prof.IntMult+prof.FPAlu:
		op = isa.OpFPAlu
	case r < prof.LoadFrac+prof.StoreFrac+prof.IntMult+prof.FPAlu+prof.FPMult:
		op = isa.OpFPMult
	default:
		op = isa.OpIntALU
	}
	fp := op == isa.OpFPAlu || op == isa.OpFPMult
	st := isa.Static{
		Op:   op,
		Src1: b.pickSrc(fp),
		Src2: isa.RegNone,
		Dest: b.pickDest(fp, op),
	}
	if op != isa.OpLoad && b.rng.Bool(0.7) {
		st.Src2 = b.pickSrc(fp)
	}
	if st.Dest != isa.RegNone {
		b.noteDest(st.Dest)
	}
	return st
}

// pickSrc picks a source register: with probability DepProb one of the most
// recently written registers (creating a dependency chain), otherwise a
// uniformly random register of the right class.
func (b *builder) pickSrc(fp bool) int8 {
	if len(b.recent) > 0 && b.rng.Bool(b.prof.DepProb) {
		k := len(b.recent)
		if k > b.prof.DepDepth {
			k = b.prof.DepDepth
		}
		return b.recent[len(b.recent)-1-b.rng.Intn(k)]
	}
	if fp {
		return int8(isa.NumIntRegs + b.rng.Intn(isa.NumFPRegs))
	}
	return int8(b.rng.Intn(isa.NumIntRegs))
}

// pickDest picks a destination register; stores have none.
func (b *builder) pickDest(fp bool, op isa.Op) int8 {
	if op == isa.OpStore {
		return isa.RegNone
	}
	if fp {
		return int8(isa.NumIntRegs + b.rng.Intn(isa.NumFPRegs))
	}
	return int8(b.rng.Intn(isa.NumIntRegs))
}

func (b *builder) noteDest(r int8) {
	b.recent = append(b.recent, r)
	if len(b.recent) > 32 {
		b.recent = b.recent[len(b.recent)-16:]
	}
}

// newMemRef allocates address-generation parameters for one static memory
// instruction, drawing its region from the profile's locality mix.
func (b *builder) newMemRef() int {
	prof := b.prof
	m := MemRef{Seed: b.rng.Uint64()}
	r := b.rng.Float64()
	switch {
	case r < prof.HotFrac:
		m.Base = 0x1000_0000
		m.Span = prof.HotBytes
	case r < 1-prof.ColdFrac:
		m.Base = 0x2000_0000 + uint64(b.rng.Intn(4))*prof.WarmBytes
		m.Span = prof.WarmBytes
	default:
		m.Base = 0x4000_0000
		m.Span = prof.ColdBytes
		m.Wild = true
	}
	b.p.MemRefs = append(b.p.MemRefs, m)
	return len(b.p.MemRefs) - 1
}

// branchKind distinguishes where a conditional branch sits: loop back-edges,
// loop-body conditionals (the dynamically hot ones, explicitly split into a
// hard and an easy variant), and everything else. Every loop body contains
// exactly one hard and one easy diamond, so the dynamic difficulty mix is
// bimodal by construction instead of depending on which static branches
// happen to land in the hottest loop.
type branchKind uint8

const (
	brLatch branchKind = iota
	brBodyHard
	brBodyEasy
	brGate // controls how often the hard body diamond executes
	brOuter
)

// newBranch allocates behaviour parameters for a conditional branch.
func (b *builder) newBranch(kind branchKind) int {
	prof := b.prof
	br := Branch{Seed: b.rng.Uint64(), LoopBack: kind == brLatch}
	span := prof.DetBitsHi - prof.DetBitsLo
	if span < 0 {
		span = 0
	}
	br.DetBits = prof.DetBitsLo
	if span > 0 {
		br.DetBits += b.rng.Intn(span + 1)
	}
	hard := false
	switch kind {
	case brBodyHard:
		hard = true
	case brBodyEasy:
		hard = false
	case brGate:
		// Gates are nearly perfectly predictable branches whose taken
		// frequency (HardFreq) sets how often the hard diamond runs —
		// the calibrated knob that positions each benchmark's overall
		// misprediction rate without diluting hard-branch difficulty.
		br.DetBias = prof.HardFreq()
		br.NoiseP = 0.01
		br.Bias = 0.5
		b.p.Branches = append(b.p.Branches, br)
		return len(b.p.Branches) - 1
	case brOuter:
		hard = !b.rng.Bool(prof.EasyFrac)
	}
	br.DetBias = 0.5
	if kind == brLatch {
		// Loop back-edges are taken (1 - 1/trip) of the time: exits are
		// drawn from the unlearnable noise component (keyed on the branch
		// counter), which yields geometric trip counts, guarantees loops
		// terminate even when the global history reaches a fixed point,
		// and mispredicts each exit — the classic loop-branch miss floor.
		br.DetBits = 0 // det component degenerates to "taken"
		br.TripInv = 0
		br.NoiseP = 1.0 / prof.TripMean
		br.Bias = 0.0 // when the noise component fires, the loop exits
	} else if hard {
		// Hard branches come in two tiers. "Merely hard" branches miss
		// around 30 % — the estimator's LC band. "Ultra-hard" branches
		// (about a quarter of them, distributed deterministically) are
		// fifty-fifty under the noise term and miss close to 50 % — the
		// VLC band. This bimodality is what makes the paper's four-way
		// categorization meaningful: VLC must be both rarer and genuinely
		// worse than LC for graded throttling to beat all-or-nothing
		// gating.
		b.ultraAcc += 0.10
		if b.ultraAcc >= 1 {
			b.ultraAcc--
			br.NoiseP = 0.97
			br.Bias = 0.5 + 0.06*(b.rng.Float64()-0.5)
		} else {
			br.NoiseP = prof.HardNoise * (0.85 + 0.3*b.rng.Float64())
			br.Bias = 0.5 + 0.12*(b.rng.Float64()-0.5)
		}
	} else {
		br.NoiseP = prof.NoiseScale() * prof.EasyNoise * (0.5 + b.rng.Float64())
		br.Bias = prof.BiasMean + 0.3*(b.rng.Float64()-0.5)
	}
	if br.NoiseP > 0.95 {
		br.NoiseP = 0.95
	}
	if br.Bias < 0.05 {
		br.Bias = 0.05
	}
	if br.Bias > 0.95 {
		br.Bias = 0.95
	}
	b.p.Branches = append(b.p.Branches, br)
	return len(b.p.Branches) - 1
}

// endWithBranch terminates block id with a conditional branch. The condition
// reads the block's most recent computation (real branch conditions sit at
// the end of dependence chains — compares of freshly computed or loaded
// values), which is what gives branches realistic resolution latencies and
// lets wrong-path instructions reach the issue stage, as in the paper's
// Table 1 analysis.
func (b *builder) endWithBranch(id, taken, notTaken int, kind branchKind) {
	blk := &b.p.Blocks[id]
	blk.Code = append(blk.Code, isa.Static{
		Op:   isa.OpBranch,
		Src1: b.lastDest(),
		Src2: b.pickSrc(false),
		Dest: isa.RegNone,
	})
	blk.Succ[0] = notTaken
	blk.Succ[1] = taken
	blk.BrID = b.newBranch(kind)
}

// lastDest returns the most recently written register (the head of the
// current dependence chain), falling back to a random pick.
func (b *builder) lastDest() int8 {
	if len(b.recent) > 0 {
		return b.recent[len(b.recent)-1]
	}
	return b.pickSrc(false)
}

// endWithJump terminates block id with an unconditional jump.
func (b *builder) endWithJump(id, target int) {
	blk := &b.p.Blocks[id]
	blk.Code = append(blk.Code, isa.Static{Op: isa.OpJump,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone})
	blk.Succ[1] = target
}

// endWithCall terminates block id with a call to callee; control resumes at
// retSite.
func (b *builder) endWithCall(id, callee, retSite int) {
	blk := &b.p.Blocks[id]
	blk.Code = append(blk.Code, isa.Static{Op: isa.OpCall,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: int8(31)}) // link register
	blk.Succ[0] = retSite
	blk.Succ[1] = callee
}

// endWithReturn terminates block id with a return.
func (b *builder) endWithReturn(id int) {
	blk := &b.p.Blocks[id]
	blk.Code = append(blk.Code, isa.Static{Op: isa.OpReturn,
		Src1: int8(31), Src2: isa.RegNone, Dest: isa.RegNone})
}

// fallthrough links block id to next without a control instruction.
func (b *builder) fallTo(id, next int) {
	b.p.Blocks[id].Succ[0] = next
}

// buildFunc generates function fi and returns its entry block. The body is a
// chain of structural segments (plain blocks, if-diamonds, loops, calls),
// ending in a return.
func (b *builder) buildFunc(fi int) int {
	entry := b.newBlock()
	b.fillBlock(entry, b.blockLen())
	segs := b.prof.SegmentsMin
	if d := b.prof.SegmentsMax - b.prof.SegmentsMin; d > 0 {
		segs += b.rng.Intn(d + 1)
	}
	cur := entry
	for s := 0; s < segs; s++ {
		cur = b.buildSegment(cur, fi, b.prof.MaxDepth)
	}
	// Terminate with a return (main is handled separately).
	ret := b.newBlock()
	b.fillBlock(ret, b.blockLen())
	b.endWithReturn(ret)
	b.fallTo(cur, ret)
	return entry
}

// buildSegment appends one structure after block cur and returns the block
// that control reaches afterwards (an empty join block ready for chaining).
func (b *builder) buildSegment(cur, fi, depth int) int {
	r := b.rng.Float64()
	switch {
	case depth > 0 && r < b.prof.LoopFrac:
		return b.buildLoop(cur, fi, depth-1)
	case fi < b.prof.Funcs-1 && r < b.prof.LoopFrac+0.15:
		return b.buildCall(cur, fi)
	case depth > 0 && r < b.prof.LoopFrac+0.15+0.45:
		return b.buildDiamond(cur, fi, depth-1, brOuter)
	default:
		nxt := b.newBlock()
		b.fillBlock(nxt, b.blockLen())
		b.fallTo(cur, nxt)
		return nxt
	}
}

// buildDiamond appends an if/else diamond: cur conditionally branches to a
// then-path or falls to an else-path; both converge on a join block.
func (b *builder) buildDiamond(cur, fi, depth int, kind branchKind) int {
	thenB := b.newBlock()
	elseB := b.newBlock()
	join := b.newBlock()
	b.fillBlock(thenB, b.blockLen())
	b.fillBlock(elseB, b.blockLen())
	b.fillBlock(join, b.blockLen())
	b.endWithBranch(cur, thenB, elseB, kind)
	// Optionally nest one more structure on the then path.
	thenEnd := thenB
	if depth > 0 && b.rng.Bool(0.35) {
		thenEnd = b.buildSegment(thenB, fi, depth)
	}
	b.endWithJump(thenEnd, join)
	elseEnd := elseB
	if depth > 0 && b.rng.Bool(0.25) {
		elseEnd = b.buildSegment(elseB, fi, depth)
	}
	b.fallTo(elseEnd, join)
	return join
}

// buildLoop appends a loop: cur falls into the body; the body's last block
// ends with a mostly-taken back-edge to the body head; the exit path falls
// to a fresh block. Loop bodies almost always contain a conditional (real
// inner loops are full of data-dependent branches); without this the
// dynamic branch mix degenerates to nearly pure back-edges and the
// confidence estimators have nothing to discriminate.
func (b *builder) buildLoop(cur, fi, depth int) int {
	head := b.newBlock()
	b.fillBlock(head, b.blockLen())
	b.fallTo(cur, head)
	// Body: a gate branch decides (at the calibrated HardFreq frequency)
	// whether the hard diamond runs this iteration, then an easy diamond
	// always runs. Real inner loops look exactly like this: a cheap
	// guard, a rarely-taken difficult path, and routine conditionals.
	hardEntry := b.newBlock()
	b.fillBlock(hardEntry, b.blockLen())
	skip := b.newBlock()
	b.fillBlock(skip, b.blockLen())
	b.endWithBranch(head, hardEntry, skip, brGate)
	hardEnd := b.buildDiamond(hardEntry, fi, 0, brBodyHard)
	b.endWithJump(hardEnd, skip)
	bodyEnd := b.buildDiamond(skip, fi, 0, brBodyEasy)
	if depth > 0 && b.rng.Bool(0.35) {
		bodyEnd = b.buildSegment(bodyEnd, fi, depth)
	}
	latch := b.newBlock()
	b.fillBlock(latch, b.blockLen())
	b.fallTo(bodyEnd, latch)
	exit := b.newBlock()
	b.fillBlock(exit, b.blockLen())
	b.endWithBranch(latch, head, exit, brLatch)
	return exit
}

// buildCall appends a call to a later (already generated) function.
func (b *builder) buildCall(cur, fi int) int {
	calleeIdx := fi + 1 + b.rng.Intn(b.prof.Funcs-fi-1)
	callee := b.funcEntries[calleeIdx]
	ret := b.newBlock()
	b.fillBlock(ret, b.blockLen())
	b.endWithCall(cur, callee, ret)
	return ret
}

// buildMain generates the top-level dispatcher: an endless loop calling each
// top-level function in turn, then jumping back to the start.
func (b *builder) buildMain() int {
	entry := b.newBlock()
	b.fillBlock(entry, b.blockLen())
	cur := entry
	nCalls := b.prof.Funcs / 3
	if nCalls < 2 {
		nCalls = 2
	}
	for i := 0; i < nCalls; i++ {
		calleeIdx := b.rng.Intn(b.prof.Funcs)
		ret := b.newBlock()
		b.fillBlock(ret, b.blockLen())
		b.endWithCall(cur, b.funcEntries[calleeIdx], ret)
		cur = ret
	}
	b.endWithJump(cur, entry)
	return entry
}

// blockLen draws a basic-block length (>= 2 so blocks are never empty even
// after appending a terminator).
func (b *builder) blockLen() int {
	n := b.rng.Geometric(b.prof.MeanBlockLen)
	if n < 2 {
		n = 2
	}
	return n
}

// assignPCs lays blocks out contiguously in generation order.
func (b *builder) assignPCs() {
	var pc uint64 = 0x40_0000
	for i := range b.p.Blocks {
		blk := &b.p.Blocks[i]
		blk.Base = pc
		pc += uint64(len(blk.Code)+1) * InstBytes // +1: gap to avoid 0-len aliasing
	}
	b.p.CodeBytes = pc - 0x40_0000
}
