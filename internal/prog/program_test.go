package prog

import (
	"testing"

	"selthrottle/internal/isa"
)

func TestAllProfilesGenerateValidPrograms(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog := Generate(p)
			if err := prog.Validate(); err != nil {
				t.Fatalf("invalid program: %v", err)
			}
			if prog.NumStaticBranches() < 10 {
				t.Errorf("only %d static branches", prog.NumStaticBranches())
			}
			if prog.CodeBytes < 8<<10 {
				t.Errorf("code footprint %d B implausibly small", prog.CodeBytes)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("gcc")
	a := Generate(p)
	b := Generate(p)
	if len(a.Blocks) != len(b.Blocks) || len(a.Branches) != len(b.Branches) {
		t.Fatal("program shapes differ across generations")
	}
	for i := range a.Blocks {
		if a.Blocks[i].Base != b.Blocks[i].Base || len(a.Blocks[i].Code) != len(b.Blocks[i].Code) {
			t.Fatalf("block %d differs", i)
		}
	}
	for i := range a.Branches {
		if a.Branches[i] != b.Branches[i] {
			t.Fatalf("branch %d params differ", i)
		}
	}
}

func TestDifferentSeedsProduceDifferentPrograms(t *testing.T) {
	p, _ := ProfileByName("gcc")
	q := p
	q.Seed = p.Seed + 1
	a, b := Generate(p), Generate(q)
	if len(a.Blocks) == len(b.Blocks) && len(a.Branches) == len(b.Branches) {
		same := true
		for i := range a.Branches {
			if a.Branches[i].Seed != b.Branches[i].Seed {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical branch parameters")
		}
	}
}

func TestBlockPCsAreDisjointAndOrdered(t *testing.T) {
	p, _ := ProfileByName("compress")
	prog := Generate(p)
	var prevEnd uint64
	for i, b := range prog.Blocks {
		if b.Base < prevEnd {
			t.Fatalf("block %d overlaps previous (base %#x < prev end %#x)", i, b.Base, prevEnd)
		}
		prevEnd = b.Base + uint64(len(b.Code))*InstBytes
	}
}

func TestMemRefsCoverAllMemOps(t *testing.T) {
	p, _ := ProfileByName("twolf")
	prog := Generate(p)
	for bi := range prog.Blocks {
		for ii, st := range prog.Blocks[bi].Code {
			if st.Op.IsMem() {
				if _, ok := prog.memRef(bi, ii); !ok {
					t.Fatalf("mem op at block %d idx %d has no MemRef", bi, ii)
				}
			} else if _, ok := prog.memRef(bi, ii); ok {
				t.Fatalf("non-mem op at block %d idx %d has a MemRef", bi, ii)
			}
		}
	}
}

func TestBranchParamsInRange(t *testing.T) {
	for _, p := range Profiles() {
		prog := Generate(p)
		for i, br := range prog.Branches {
			if br.NoiseP < 0 || br.NoiseP > 1 {
				t.Fatalf("%s branch %d NoiseP %v out of range", p.Name, i, br.NoiseP)
			}
			if br.Bias < 0 || br.Bias > 1 {
				t.Fatalf("%s branch %d Bias %v out of range", p.Name, i, br.Bias)
			}
			if br.DetBits < 0 || br.DetBits > 24 {
				t.Fatalf("%s branch %d DetBits %d out of range", p.Name, i, br.DetBits)
			}
			if br.LoopBack && br.NoiseP == 0 {
				t.Fatalf("%s loop branch %d can never exit", p.Name, i)
			}
		}
	}
}

func TestLoopBranchesMostlyTaken(t *testing.T) {
	p, _ := ProfileByName("bzip2")
	prog := Generate(p)
	w := NewWalker(prog)
	taken, total := 0, 0
	var d DynInst
	for i := 0; i < 200000; i++ {
		w.Next(&d)
		if d.BrID != NoBranch {
			if prog.Branches[d.BrID].LoopBack {
				total++
				if d.Taken {
					taken++
				}
			}
			w.Steer(d.Taken)
		}
	}
	if total == 0 {
		t.Fatal("no loop back-edges executed")
	}
	frac := float64(taken) / float64(total)
	if frac < 0.9 {
		t.Fatalf("loop back-edges taken only %.2f of the time", frac)
	}
}

func TestStructureMix(t *testing.T) {
	// Every profile should contain both loop latches and if-branches.
	for _, p := range Profiles() {
		prog := Generate(p)
		latches, ifs := 0, 0
		for _, br := range prog.Branches {
			if br.LoopBack {
				latches++
			} else {
				ifs++
			}
		}
		if latches == 0 || ifs == 0 {
			t.Errorf("%s: degenerate branch mix (latches=%d ifs=%d)", p.Name, latches, ifs)
		}
	}
}

func TestTerminatorKinds(t *testing.T) {
	p, _ := ProfileByName("go")
	prog := Generate(p)
	kinds := map[isa.Op]int{}
	for i := range prog.Blocks {
		kinds[prog.Blocks[i].Terminator()]++
	}
	for _, op := range []isa.Op{isa.OpBranch, isa.OpJump, isa.OpCall, isa.OpReturn, isa.OpNop} {
		if kinds[op] == 0 {
			t.Errorf("no blocks terminated by %v", op)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("go"); !ok {
		t.Fatal("go profile missing")
	}
	if _, ok := ProfileByName("nonexistent"); ok {
		t.Fatal("found a profile that should not exist")
	}
	if len(Profiles()) != 8 {
		t.Fatalf("expected 8 profiles, got %d", len(Profiles()))
	}
}

func TestProfileKnobs(t *testing.T) {
	var p Profile
	if p.NoiseScale() != 1.0 || p.HardFreq() != 0.5 {
		t.Fatal("zero-value profile knobs should default to 1.0 / 0.5")
	}
	p.NoiseScaleOverride = 0.25
	p.HardFreqOverride = 0.75
	if p.NoiseScale() != 0.25 || p.HardFreq() != 0.75 {
		t.Fatal("overrides not honored")
	}
}
