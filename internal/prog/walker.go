package prog

import (
	"selthrottle/internal/isa"
	"selthrottle/internal/xrand"
)

// CallStackDepth bounds the walker's call stack. The generator never nests
// calls deeper than the function count, but wrong-path execution can push
// spurious frames; the stack is a ring so overflow silently drops the oldest
// frame (a wrong-path artifact that squash erases anyway).
const CallStackDepth = 64

// WalkState is the complete architectural position of a walker: the block
// cursor, the global branch-outcome history, and the call stack. It is a
// value type so it can be checkpointed per conditional branch and restored
// exactly on misprediction recovery.
type WalkState struct {
	Block   int    // current block index
	Index   int    // next instruction within the block
	Ghist   uint64 // global history of actual conditional-branch outcomes
	BrCount uint64 // conditional branches executed (time base for noise)

	stack [CallStackDepth]int32
	sp    int // number of valid frames
}

// push adds a return-site block to the call stack (ring on overflow).
func (s *WalkState) push(block int) {
	if s.sp == CallStackDepth {
		copy(s.stack[:], s.stack[1:])
		s.sp--
	}
	s.stack[s.sp] = int32(block)
	s.sp++
}

// pop removes and returns the top return site; ok is false when empty.
func (s *WalkState) pop() (int, bool) {
	if s.sp == 0 {
		return 0, false
	}
	s.sp--
	return int(s.stack[s.sp]), true
}

// Depth returns the current call-stack depth (used by tests).
func (s *WalkState) Depth() int { return s.sp }

// DynInst is one dynamic instruction produced by a walker. It carries
// everything the pipeline needs: the static instruction, its PC, the actual
// branch outcome / memory address, and (for conditional branches) a recovery
// checkpoint of the walker taken *before* steering.
type DynInst struct {
	Seq  uint64
	PC   uint64
	St   isa.Static
	BrID int // Program.Branches index for conditional branches, else NoBranch

	Taken     bool   // actual direction (conditional branches)
	TakenPC   uint64 // PC of the taken target (branch/jump/call)
	FallPC    uint64 // PC of the fall-through successor
	Addr      uint64 // effective address (memory ops)
	WrongPath bool   // set by the pipeline when fetched under a misprediction

	// Ckpt is the walker state just after outcome generation but before
	// steering; restoring it and steering with the actual outcome resumes
	// the correct path. Only populated for conditional branches.
	Ckpt WalkState
}

// Walker generates the dynamic instruction stream of a program. The walker
// follows whatever directions the front end steers it in (predicted
// directions), so it naturally produces genuine wrong-path instruction
// streams; actual outcomes are reported on each branch for later resolution.
type Walker struct {
	prog *Program
	st   WalkState
	seq  uint64

	// pendingSteer is true between producing a conditional branch and the
	// caller's Steer call; Next panics if violated (harness bug).
	pendingSteer bool
}

// NewWalker returns a walker positioned at the program entry.
func NewWalker(p *Program) *Walker {
	w := &Walker{}
	w.Reset(p)
	return w
}

// Reset rebinds the walker to a program (possibly a different one) and
// rewinds it to the entry state, exactly as NewWalker would produce. A
// generated Program is immutable during walks, so one decoded program can be
// replayed by any number of resets without re-generation, and a pooled
// walker can serve many runs without allocation.
func (w *Walker) Reset(p *Program) {
	*w = Walker{
		prog: p,
		st:   WalkState{Block: p.Entry, Ghist: xrand.Hash64(p.Profile.Seed)},
	}
}

// State returns a copy of the current walker state (for tests/diagnostics).
func (w *Walker) State() WalkState { return w.st }

// Seq returns the sequence number the next instruction will receive.
func (w *Walker) Seq() uint64 { return w.seq }

// Outcome computes the actual direction of branch br. It is a pure function
// of (branch, global history, branch count), so the walker can replay it
// exactly from a checkpoint. The unlearnable component is keyed on the
// branch-occurrence counter and deep history bits — information no
// realistically sized predictor can capture — and fires with probability
// NoiseP; the learnable component is a random boolean function of the
// branch's low DetBits history bits, which tables learn once trained
// (bigger tables alias less and reach deeper — the paper's Figure 7 effect).
// Loop back-edges have no learnable component: they are taken until the
// noise term fires the exit, giving geometric trip counts with mean
// 1/NoiseP.
func Outcome(br *Branch, ghist, brCount uint64) bool {
	sel := xrand.Hash3(br.Seed, ghist>>24, brCount)
	if float64(sel>>40)/float64(1<<24) < br.NoiseP {
		// Unlearnable: biased coin drawn from the same hash's low bits.
		return float64(sel&0xFFFFFF)/float64(1<<24) < br.Bias
	}
	mask := uint64(1)<<uint(br.DetBits) - 1
	det := xrand.Hash2(br.Seed^0xD5AA, ghist&mask)
	detFrac := float64(det&0xFFFFFF) / float64(1<<24)
	if br.LoopBack {
		// Learnable exit: in a recurring history context the same
		// iteration exits, so trained predictors anticipate it.
		return !(detFrac < br.TripInv)
	}
	// Learnable outcome: a fixed pseudo-random function of the low history
	// bits whose per-context taken-rate is DetBias (0.5 for ordinary
	// branches; the gate frequency for hard-diamond gates).
	return detFrac < br.DetBias
}

// Next produces the next dynamic instruction into out. For conditional
// branches the walker pauses: the caller must invoke Steer with the
// *predicted* direction before calling Next again. All other control flow
// steers itself.
func (w *Walker) Next(out *DynInst) {
	if w.pendingSteer {
		panic("prog: Next called with a pending Steer")
	}
	blk := &w.prog.Blocks[w.st.Block]
	// Advance through (possibly empty-remainder) blocks until an
	// instruction is available. Fall-through blocks chain silently.
	for w.st.Index >= len(blk.Code) {
		w.st.Block = blk.Succ[0]
		w.st.Index = 0
		blk = &w.prog.Blocks[w.st.Block]
	}
	idx := w.st.Index
	st := blk.Code[idx]
	// Reset fields individually instead of assigning a DynInst literal: the
	// literal would zero the ~300-byte Ckpt (call-stack array) on every
	// instruction, and Ckpt is only meaningful — and always overwritten —
	// for conditional branches. Non-branch instructions may carry a stale
	// Ckpt; nothing reads it (Recover rejects non-branches).
	out.Seq = w.seq
	out.PC = blk.Base + uint64(idx)*InstBytes
	out.St = st
	out.BrID = NoBranch
	out.Taken = false
	out.TakenPC = 0
	out.FallPC = 0
	out.Addr = 0
	out.WrongPath = false
	w.seq++
	w.st.Index++

	switch {
	case st.Op == isa.OpBranch:
		br := &w.prog.Branches[blk.BrID]
		taken := Outcome(br, w.st.Ghist, w.st.BrCount)
		w.st.BrCount++
		out.BrID = blk.BrID
		out.Taken = taken
		out.TakenPC = w.prog.Blocks[blk.Succ[1]].Base
		out.FallPC = w.prog.Blocks[blk.Succ[0]].Base
		// History records the *actual* outcome: outcome generation is
		// architecturally consistent along whichever path is followed.
		w.st.Ghist = w.st.Ghist<<1 | b2u(taken)
		out.Ckpt = w.st
		w.pendingSteer = true
	case st.Op == isa.OpJump:
		out.TakenPC = w.prog.Blocks[blk.Succ[1]].Base
		out.Taken = true
		w.st.Block = blk.Succ[1]
		w.st.Index = 0
	case st.Op == isa.OpCall:
		out.TakenPC = w.prog.Blocks[blk.Succ[1]].Base
		out.FallPC = w.prog.Blocks[blk.Succ[0]].Base
		out.Taken = true
		w.st.push(blk.Succ[0])
		w.st.Block = blk.Succ[1]
		w.st.Index = 0
	case st.Op == isa.OpReturn:
		target, ok := w.st.pop()
		if !ok {
			// Wrong-path artifact (or top-of-program): restart at entry.
			target = w.prog.Entry
		}
		out.TakenPC = w.prog.Blocks[target].Base
		out.Taken = true
		w.st.Block = target
		w.st.Index = 0
	case st.Op.IsMem():
		if m, ok := w.prog.memRef(w.st.Block, idx); ok {
			if m.Wild {
				// No temporal locality, and keyed on the full history
				// so a wrong path's reconvergent loads do NOT compute
				// the correct path's future addresses (register state
				// differs across paths in real programs). Wild loads
				// miss often, and on the wrong path they are pure
				// cache pollution — the effect behind the paper's
				// oracle-fetch speedup.
				out.Addr = m.Base + xrand.Hash3(m.Seed, w.st.Ghist, w.st.BrCount)%m.Span&^7
			} else {
				// Slowly moving working set: the address advances
				// only every 64 branches, so repeated executions hit.
				out.Addr = m.Base + xrand.Hash2(m.Seed, w.st.BrCount>>6)%m.Span&^7
			}
		}
	}

	// If a fall-through block is exhausted, chain to its successor so the
	// next PC is correct for fetch-group formation.
	if !w.pendingSteer {
		blk = &w.prog.Blocks[w.st.Block]
		for w.st.Index >= len(blk.Code) && blk.Terminator() == isa.OpNop {
			if blk.Succ[0] == NoBlock {
				break
			}
			w.st.Block = blk.Succ[0]
			w.st.Index = 0
			blk = &w.prog.Blocks[w.st.Block]
		}
	}
}

// Steer resolves a pending conditional branch with the direction the front
// end *predicts* (which may be wrong — the walker then produces the wrong
// path until Recover is called).
func (w *Walker) Steer(taken bool) {
	if !w.pendingSteer {
		panic("prog: Steer without a pending branch")
	}
	blk := &w.prog.Blocks[w.st.Block]
	// The branch was the last instruction of its block.
	if taken {
		w.st.Block = blk.Succ[1]
	} else {
		w.st.Block = blk.Succ[0]
	}
	w.st.Index = 0
	w.pendingSteer = false
}

// Recover rewinds the walker to a branch's checkpoint and steers it down the
// actual path: the fetch stream continues on the correct path exactly as if
// the branch had been predicted correctly.
func (w *Walker) Recover(d *DynInst) {
	if d.BrID == NoBranch {
		panic("prog: Recover on a non-branch")
	}
	w.st = d.Ckpt
	w.pendingSteer = true
	w.Steer(d.Taken)
}

// NextPC reports the PC the walker will fetch next (for I-cache access
// grouping). It resolves pending fall-through chains conservatively.
func (w *Walker) NextPC() uint64 {
	blk := &w.prog.Blocks[w.st.Block]
	idx := w.st.Index
	for idx >= len(blk.Code) {
		if blk.Succ[0] == NoBlock {
			return blk.Base
		}
		blk = &w.prog.Blocks[blk.Succ[0]]
		idx = 0
	}
	return blk.Base + uint64(idx)*InstBytes
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
