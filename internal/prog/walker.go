package prog

import (
	"selthrottle/internal/isa"
	"selthrottle/internal/xrand"
)

// CallStackDepth bounds the walker's call stack. The generator never nests
// calls deeper than the function count, but wrong-path execution can push
// spurious frames; the stack is a ring so overflow silently drops the oldest
// frame (a wrong-path artifact that squash erases anyway).
const CallStackDepth = 64

// WalkState is the complete architectural position of a walker: the block
// cursor, the global branch-outcome history, and the call stack. It is a
// value type so it can be checkpointed per conditional branch and restored
// exactly on misprediction recovery. Checkpoints live in the walker's pooled
// arena (see Walker), not inside DynInst: a WalkState is ~290 bytes, almost
// all of it the call-stack ring, and embedding it would put every dynamic
// instruction's record at several cache lines.
type WalkState struct {
	Block   int    // current block index
	Index   int    // next instruction within the block
	Ghist   uint64 // global history of actual conditional-branch outcomes
	BrCount uint64 // conditional branches executed (time base for noise)

	stack [CallStackDepth]int32
	head  int32 // ring start: index of the oldest valid frame
	sp    int32 // number of valid frames
}

// push adds a return-site block to the call stack. When the ring is full the
// oldest frame is overwritten in place — O(1), where the historical
// representation shifted the whole array down on every overflowing push.
func (s *WalkState) push(block int) {
	if s.sp == CallStackDepth {
		s.stack[s.head] = int32(block)
		s.head++
		if s.head == CallStackDepth {
			s.head = 0
		}
		return
	}
	i := s.head + s.sp
	if i >= CallStackDepth {
		i -= CallStackDepth
	}
	s.stack[i] = int32(block)
	s.sp++
}

// pop removes and returns the top return site; ok is false when empty.
func (s *WalkState) pop() (int, bool) {
	if s.sp == 0 {
		return 0, false
	}
	s.sp--
	i := s.head + s.sp
	if i >= CallStackDepth {
		i -= CallStackDepth
	}
	return int(s.stack[i]), true
}

// Depth returns the current call-stack depth (used by tests).
func (s *WalkState) Depth() int { return int(s.sp) }

// NoCkpt marks a DynInst that holds no checkpoint lease (every instruction
// except an unresolved conditional branch).
const NoCkpt = -1

// DynInst is one dynamic instruction produced by a walker. It carries
// everything the pipeline needs: the static instruction, its PC, the actual
// branch outcome / memory address, and (for conditional branches) a handle to
// a recovery checkpoint in the walker's arena. The struct is kept within two
// cache lines (the layout tests pin <= 128 bytes) because the pipeline copies
// it through the instruction pool, the completion wheel, and the recovery
// paths on every dynamic instruction.
//
// Field contract: Next always writes Seq, PC, St, BrID, and Ckpt. The
// remaining fields are defined only for the op classes that use them —
// Taken/TakenPC for control transfers, FallPC for branches and calls, Addr
// for memory ops, WrongPath by the pipeline at fetch — and hold stale values
// otherwise. Readers must gate on St.Op (the pipeline does throughout);
// skipping the dead stores keeps the per-instruction write half the size.
type DynInst struct {
	Seq     uint64
	PC      uint64
	TakenPC uint64 // PC of the taken target (branch/jump/call)
	FallPC  uint64 // PC of the fall-through successor
	Addr    uint64 // effective address (memory ops)

	St   isa.Static
	BrID int32 // Program.Branches index for conditional branches, else NoBranch

	// Ckpt is a handle into the walker's checkpoint arena, leased by Next
	// for conditional branches only. The checkpointed state is the walker
	// just after outcome generation but before steering; restoring it and
	// steering with the actual outcome resumes the correct path. The lease
	// is released by Recover, or by Walker.Release when the branch resolves
	// correctly or is squashed. NoCkpt for every other instruction.
	Ckpt int32

	Taken     bool // actual direction (conditional branches)
	WrongPath bool // set by the pipeline when fetched under a misprediction
}

// Walker generates the dynamic instruction stream of a program. The walker
// follows whatever directions the front end steers it in (predicted
// directions), so it naturally produces genuine wrong-path instruction
// streams; actual outcomes are reported on each branch for later resolution.
//
// # Checkpoint arena
//
// The walker owns a pooled arena of WalkState checkpoints. Next leases one
// slot per conditional branch and records the handle in DynInst.Ckpt; the
// lease returns to the free list when the branch no longer needs recovery
// state — Recover frees it after restoring, and the pipeline calls Release
// when a branch resolves correctly or is squashed. In steady state the arena
// footprint is bounded by the machine's in-flight branch capacity and the
// free list recycles slots without allocating; CkptStats probes this the way
// pipe.PoolStats probes the instruction pool.
//
// The lease marks the start of a speculation epoch: the pipeline opens a
// power-attribution epoch (pipe's epoch ledgers) for every conditional
// branch at the same moment Next issues its checkpoint handle, and a flush
// that consumes a checkpoint via Recover also folds the epochs the squashed
// wrong path opened. The two lifetimes deliberately diverge afterwards —
// a lease dies at resolution (the branch can no longer need recovery), while
// the branch's epoch must survive until its members have all committed,
// because an older unresolved branch can still squash them — which is why
// the epoch ring is the pipeline's own arena rather than a field of the
// checkpoint slot.
type Walker struct {
	prog *Program
	st   WalkState
	seq  uint64

	// pendingSteer is true between producing a conditional branch and the
	// caller's Steer call; Next panics if violated (harness bug).
	pendingSteer bool

	// legacy selects the retained reference implementation of Next: float
	// outcome thresholds, per-Block chasing, and the memRef map instead of
	// the integer thresholds and flat blockMeta tables. The two are
	// bit-identical (identity tests drive them against each other); the
	// legacy path survives for those tests, mirroring pipe.Config's
	// LegacyScanIssue.
	legacy bool

	ckpts    []WalkState // checkpoint arena; handles index it
	ckptFree []int32     // free slot handles
	ckptHW   int         // high-water mark of concurrently leased slots

	// Stable-reference address memo, one slot per Program.MemRefs entry. A
	// stable (non-wild) site's address is a pure function of its seed and
	// the 64-branch epoch (BrCount>>6), and sites typically execute many
	// times per epoch, so the fast paths cache the last (epoch, address)
	// pair per site instead of rehashing. Keys store epoch+1 so zero means
	// empty; the memo is exact (same pure function, same inputs) and the
	// legacy reference path deliberately keeps rehashing every time.
	memoKey  []uint64
	memoAddr []uint64
}

// NewWalker returns a walker positioned at the program entry.
func NewWalker(p *Program) *Walker {
	w := &Walker{}
	w.Reset(p)
	return w
}

// Reset rebinds the walker to a program (possibly a different one) and
// rewinds it to the entry state, exactly as NewWalker would produce. A
// generated Program is immutable during walks, so one decoded program can be
// replayed by any number of resets without re-generation, and a pooled
// walker can serve many runs without allocation: the checkpoint arena's
// backing arrays (and the legacy-mode flag) survive the reset.
func (w *Walker) Reset(p *Program) {
	ckpts, free, legacy, hw := w.ckpts[:0], w.ckptFree[:0], w.legacy, w.ckptHW
	memoKey, memoAddr := w.memoKey, w.memoAddr
	if n := len(p.MemRefs); cap(memoKey) < n {
		memoKey = make([]uint64, n)
		memoAddr = make([]uint64, n)
	} else {
		memoKey = memoKey[:n]
		memoAddr = memoAddr[:n]
		clear(memoKey)
	}
	*w = Walker{
		prog:     p,
		st:       WalkState{Block: p.Entry, Ghist: xrand.Hash64(p.Profile.Seed)},
		legacy:   legacy,
		ckpts:    ckpts,
		ckptFree: free,
		ckptHW:   hw,
		memoKey:  memoKey,
		memoAddr: memoAddr,
	}
}

// SetLegacy switches the walker between the fast path and the retained
// reference implementation (see the legacy field). The flag survives Reset.
func (w *Walker) SetLegacy(on bool) { w.legacy = on }

// State returns a copy of the current walker state (for tests/diagnostics).
func (w *Walker) State() WalkState { return w.st }

// Seq returns the sequence number the next instruction will receive.
func (w *Walker) Seq() uint64 { return w.seq }

// leaseCkpt hands out an arena slot, recycling the free list before growing.
func (w *Walker) leaseCkpt() int32 {
	var id int32
	if n := len(w.ckptFree) - 1; n >= 0 {
		id = w.ckptFree[n]
		w.ckptFree = w.ckptFree[:n]
	} else {
		w.ckpts = append(w.ckpts, WalkState{})
		id = int32(len(w.ckpts) - 1)
	}
	if leased := len(w.ckpts) - len(w.ckptFree); leased > w.ckptHW {
		w.ckptHW = leased
	}
	return id
}

// saveCkpt records the walker's current state into arena slot id. Only the
// live region of the call-stack ring is copied (normalized to head 0): a
// WalkState is ~300 bytes of which the ring is ~260, while typical call
// depths are a handful of frames, so the full-struct copy this replaces was
// the single most expensive store of the outcome path. The ring's start
// position is not architectural — push/pop behaviour depends only on the
// frame sequence and sp — so the normalized copy restores exactly.
func (w *Walker) saveCkpt(id int32) {
	c := &w.ckpts[id]
	c.Block, c.Index = w.st.Block, w.st.Index
	c.Ghist, c.BrCount = w.st.Ghist, w.st.BrCount
	c.head, c.sp = 0, w.st.sp
	n := int(w.st.sp)
	if h := int(w.st.head); h+n <= CallStackDepth {
		copy(c.stack[:n], w.st.stack[h:h+n])
	} else {
		k := CallStackDepth - h
		copy(c.stack[:k], w.st.stack[h:])
		copy(c.stack[k:n], w.st.stack[:n-k])
	}
}

// restoreCkpt rewinds the walker to arena slot id (the inverse of saveCkpt;
// frames beyond sp are left stale, which push/pop can never observe).
func (w *Walker) restoreCkpt(id int32) {
	c := &w.ckpts[id]
	w.st.Block, w.st.Index = c.Block, c.Index
	w.st.Ghist, w.st.BrCount = c.Ghist, c.BrCount
	w.st.head, w.st.sp = 0, c.sp
	copy(w.st.stack[:c.sp], c.stack[:c.sp])
}

// stableAddr returns the address of stable reference id under the current
// 64-branch epoch, consulting the per-site memo first (see the memo fields).
func (w *Walker) stableAddr(mr *MemRef, id int32) uint64 {
	epoch := w.st.BrCount>>6 + 1
	if w.memoKey[id] == epoch {
		return w.memoAddr[id]
	}
	a := mr.Base + mr.fold(xrand.Hash2(mr.Seed, w.st.BrCount>>6))
	w.memoKey[id], w.memoAddr[id] = epoch, a
	return a
}

// Release returns a branch's checkpoint lease to the arena free list and
// clears the handle. It is a no-op for instructions holding no lease, so the
// pipeline can call it unconditionally on squash and on correct resolution.
func (w *Walker) Release(d *DynInst) {
	if d.Ckpt == NoCkpt {
		return
	}
	w.ckptFree = append(w.ckptFree, d.Ckpt)
	d.Ckpt = NoCkpt
}

// CkptStats reports the checkpoint arena's behaviour: currently leased
// slots, total slots ever created, and the high-water mark of concurrent
// leases. After warmup the capacity must stop growing — leak tests use this
// probe exactly like pipe.PoolStats.
func (w *Walker) CkptStats() (leased, capacity, highWater int) {
	return len(w.ckpts) - len(w.ckptFree), len(w.ckpts), w.ckptHW
}

// Outcome computes the actual direction of branch br. It is a pure function
// of (branch, global history, branch count), so the walker can replay it
// exactly from a checkpoint. The unlearnable component is keyed on the
// branch-occurrence counter and deep history bits — information no
// realistically sized predictor can capture — and fires with probability
// NoiseP; the learnable component is a random boolean function of the
// branch's low DetBits history bits, which tables learn once trained
// (bigger tables alias less and reach deeper — the paper's Figure 7 effect).
// Loop back-edges have no learnable component: they are taken until the
// noise term fires the exit, giving geometric trip counts with mean
// 1/NoiseP.
//
// This is the float-threshold reference form; the fast path uses the
// integer-threshold outcome method below, which is provably identical (see
// the threshold field docs on Branch) and regression-tested against this.
func Outcome(br *Branch, ghist, brCount uint64) bool {
	sel := xrand.Hash3(br.Seed, ghist>>24, brCount)
	if float64(sel>>40)/float64(1<<24) < br.NoiseP {
		// Unlearnable: biased coin drawn from the same hash's low bits.
		return float64(sel&0xFFFFFF)/float64(1<<24) < br.Bias
	}
	mask := uint64(1)<<uint(br.DetBits) - 1
	det := xrand.Hash2(br.Seed^0xD5AA, ghist&mask)
	detFrac := float64(det&0xFFFFFF) / float64(1<<24)
	if br.LoopBack {
		// Learnable exit: in a recurring history context the same
		// iteration exits, so trained predictors anticipate it.
		return !(detFrac < br.TripInv)
	}
	// Learnable outcome: a fixed pseudo-random function of the low history
	// bits whose per-context taken-rate is DetBias (0.5 for ordinary
	// branches; the gate frequency for hard-diamond gates).
	return detFrac < br.DetBias
}

// outcome is the integer-threshold form of Outcome: the same two hashes, but
// the four float64 divisions and compares become integer compares against
// the thresholds finalize precomputed. Bit-identical to Outcome by the
// exactness argument on the threshold fields.
func (br *Branch) outcome(ghist, brCount uint64) bool {
	sel := xrand.Hash3(br.Seed, ghist>>24, brCount)
	if uint32(sel>>40) < br.noiseThr {
		return uint32(sel&0xFFFFFF) < br.biasThr
	}
	det := uint32(xrand.Hash2(br.Seed^0xD5AA, ghist&br.histMask) & 0xFFFFFF)
	if br.LoopBack {
		return det >= br.tripThr
	}
	return det < br.detBiasThr
}

// Next produces the next dynamic instruction into out. For conditional
// branches the walker pauses: the caller must invoke Steer with the
// *predicted* direction before calling Next again. All other control flow
// steers itself.
//
// The fast path reads the program's flat blockMeta/code/memIDs tables and
// the integer outcome thresholds; nextLegacy retains the original
// implementation as the identity-test reference.
//
//st:hotpath
func (w *Walker) Next(out *DynInst) {
	if w.pendingSteer {
		panic("prog: Next called with a pending Steer")
	}
	if w.legacy {
		w.nextLegacy(out)
		return
	}
	p := w.prog
	m := &p.meta[w.st.Block]
	// Advance through (possibly empty-remainder) blocks until an
	// instruction is available. Fall-through blocks chain silently.
	for w.st.Index >= int(m.n) {
		w.st.Block = int(m.succ0)
		w.st.Index = 0
		m = &p.meta[w.st.Block]
	}
	idx := w.st.Index
	off := int(m.off) + idx
	st := p.code[off]
	out.Seq = w.seq
	out.PC = m.base + uint64(idx)*InstBytes
	out.St = st
	out.BrID = NoBranch
	out.Ckpt = NoCkpt
	w.seq++
	w.st.Index++

	switch {
	case st.Op == isa.OpBranch:
		br := &p.Branches[m.brID]
		taken := br.outcome(w.st.Ghist, w.st.BrCount)
		w.st.BrCount++
		out.BrID = m.brID
		out.Taken = taken
		out.TakenPC = m.takenBase
		out.FallPC = m.fallBase
		// History records the *actual* outcome: outcome generation is
		// architecturally consistent along whichever path is followed.
		w.st.Ghist = w.st.Ghist<<1 | b2u(taken)
		id := w.leaseCkpt()
		w.saveCkpt(id)
		out.Ckpt = id
		w.pendingSteer = true
	case st.Op == isa.OpJump:
		out.TakenPC = m.takenBase
		out.Taken = true
		w.st.Block = int(m.succ1)
		w.st.Index = 0
	case st.Op == isa.OpCall:
		out.TakenPC = m.takenBase
		out.FallPC = m.fallBase
		out.Taken = true
		w.st.push(int(m.succ0))
		w.st.Block = int(m.succ1)
		w.st.Index = 0
	case st.Op == isa.OpReturn:
		target, ok := w.st.pop()
		if !ok {
			// Wrong-path artifact (or top-of-program): restart at entry.
			target = p.Entry
		}
		out.TakenPC = p.meta[target].base
		out.Taken = true
		w.st.Block = target
		w.st.Index = 0
	case st.Op.IsMem():
		if id := p.memIDs[off]; id >= 0 {
			mr := &p.MemRefs[id]
			if mr.Wild {
				// No temporal locality, and keyed on the full history
				// so a wrong path's reconvergent loads do NOT compute
				// the correct path's future addresses (register state
				// differs across paths in real programs). Wild loads
				// miss often, and on the wrong path they are pure
				// cache pollution — the effect behind the paper's
				// oracle-fetch speedup.
				out.Addr = mr.Base + mr.fold(xrand.Hash3(mr.Seed, w.st.Ghist, w.st.BrCount))
			} else {
				// Slowly moving working set: the address advances
				// only every 64 branches, so repeated executions hit.
				out.Addr = w.stableAddr(mr, id)
			}
		}
	}

	// If a fall-through block is exhausted, chain to its successor so the
	// next PC is correct for fetch-group formation.
	if !w.pendingSteer {
		m = &p.meta[w.st.Block]
		for w.st.Index >= int(m.n) && m.term == isa.OpNop {
			if m.succ0 == NoBlock {
				break
			}
			w.st.Block = int(m.succ0)
			w.st.Index = 0
			m = &p.meta[w.st.Block]
		}
	}
}

// NextGroup produces a batch of consecutive dynamic instructions into out and
// returns how many were written (at least 1 for a non-empty out). The batch
// ends when out is full or directly after a control-transfer instruction
// (branch, jump, call, return), so the control op — if any — is always the
// last element. A terminating conditional branch leaves the walker pending
// exactly like Next: the caller must Steer before the next NextGroup/Next.
//
// The produced stream is bit-identical to the same number of Next calls (the
// randomized fastpath tests pin this); batching exists so a fetch stage can
// amortize the per-call overhead — the pending/legacy checks, the block
// metadata loads, and the fall-through chase — over a whole straight-line
// run, which is what makes fused fetch groups (internal/pipe) pay off.
//
//st:hotpath
func (w *Walker) NextGroup(out []DynInst) int {
	if len(out) == 0 {
		return 0
	}
	if w.pendingSteer {
		panic("prog: NextGroup called with a pending Steer")
	}
	if w.legacy {
		// Reference form: one nextLegacy per slot, same stopping rule.
		n := 0
		for n < len(out) {
			w.nextLegacy(&out[n])
			n++
			if out[n-1].St.Op.IsControl() {
				break
			}
		}
		return n
	}
	p := w.prog
	m := &p.meta[w.st.Block]
	n := 0
	for n < len(out) {
		// Head chase: advance through exhausted blocks. Mid-batch this
		// replaces Next's per-instruction fall-through chain — an exhausted
		// block reachable here always has an OpNop terminator (a control
		// terminator would have steered the walker away), so the two
		// traversals visit exactly the same blocks.
		for w.st.Index >= int(m.n) {
			w.st.Block = int(m.succ0)
			w.st.Index = 0
			m = &p.meta[w.st.Block]
		}
		idx := w.st.Index
		off := int(m.off) + idx
		st := p.code[off]
		o := &out[n]
		o.Seq = w.seq
		o.PC = m.base + uint64(idx)*InstBytes
		o.St = st
		o.BrID = NoBranch
		o.Ckpt = NoCkpt
		w.seq++
		w.st.Index++
		n++

		switch {
		case st.Op == isa.OpBranch:
			br := &p.Branches[m.brID]
			taken := br.outcome(w.st.Ghist, w.st.BrCount)
			w.st.BrCount++
			o.BrID = m.brID
			o.Taken = taken
			o.TakenPC = m.takenBase
			o.FallPC = m.fallBase
			w.st.Ghist = w.st.Ghist<<1 | b2u(taken)
			id := w.leaseCkpt()
			w.saveCkpt(id)
			o.Ckpt = id
			w.pendingSteer = true
			return n
		case st.Op == isa.OpJump:
			o.TakenPC = m.takenBase
			o.Taken = true
			w.st.Block = int(m.succ1)
			w.st.Index = 0
			w.chainFallThrough()
			return n
		case st.Op == isa.OpCall:
			o.TakenPC = m.takenBase
			o.FallPC = m.fallBase
			o.Taken = true
			w.st.push(int(m.succ0))
			w.st.Block = int(m.succ1)
			w.st.Index = 0
			w.chainFallThrough()
			return n
		case st.Op == isa.OpReturn:
			target, ok := w.st.pop()
			if !ok {
				target = p.Entry
			}
			o.TakenPC = p.meta[target].base
			o.Taken = true
			w.st.Block = target
			w.st.Index = 0
			w.chainFallThrough()
			return n
		case st.Op.IsMem():
			if id := p.memIDs[off]; id >= 0 {
				mr := &p.MemRefs[id]
				if mr.Wild {
					o.Addr = mr.Base + mr.fold(xrand.Hash3(mr.Seed, w.st.Ghist, w.st.BrCount))
				} else {
					o.Addr = w.stableAddr(mr, id)
				}
			}
		}
	}
	// Buffer filled on a non-control instruction: resolve any fall-through
	// chain so the walker parks in the same state a Next sequence would
	// (NextPC and State observe it).
	w.chainFallThrough()
	return n
}

// chainFallThrough advances the walker through exhausted fall-through blocks
// (Next's per-instruction tail chain) so the next PC is correct for
// fetch-group formation.
func (w *Walker) chainFallThrough() {
	m := &w.prog.meta[w.st.Block]
	for w.st.Index >= int(m.n) && m.term == isa.OpNop {
		if m.succ0 == NoBlock {
			return
		}
		w.st.Block = int(m.succ0)
		w.st.Index = 0
		m = &w.prog.meta[w.st.Block]
	}
}

// nextLegacy is the retained reference implementation of Next: float
// outcome thresholds, Block-structure chasing, and the memRef map lookup.
// Identity tests drive it against the fast path across every profile.
func (w *Walker) nextLegacy(out *DynInst) {
	blk := &w.prog.Blocks[w.st.Block]
	for w.st.Index >= len(blk.Code) {
		w.st.Block = blk.Succ[0]
		w.st.Index = 0
		blk = &w.prog.Blocks[w.st.Block]
	}
	idx := w.st.Index
	st := blk.Code[idx]
	out.Seq = w.seq
	out.PC = blk.Base + uint64(idx)*InstBytes
	out.St = st
	out.BrID = NoBranch
	out.Ckpt = NoCkpt
	w.seq++
	w.st.Index++

	switch {
	case st.Op == isa.OpBranch:
		br := &w.prog.Branches[blk.BrID]
		taken := Outcome(br, w.st.Ghist, w.st.BrCount)
		w.st.BrCount++
		out.BrID = int32(blk.BrID)
		out.Taken = taken
		out.TakenPC = w.prog.Blocks[blk.Succ[1]].Base
		out.FallPC = w.prog.Blocks[blk.Succ[0]].Base
		w.st.Ghist = w.st.Ghist<<1 | b2u(taken)
		id := w.leaseCkpt()
		w.saveCkpt(id)
		out.Ckpt = id
		w.pendingSteer = true
	case st.Op == isa.OpJump:
		out.TakenPC = w.prog.Blocks[blk.Succ[1]].Base
		out.Taken = true
		w.st.Block = blk.Succ[1]
		w.st.Index = 0
	case st.Op == isa.OpCall:
		out.TakenPC = w.prog.Blocks[blk.Succ[1]].Base
		out.FallPC = w.prog.Blocks[blk.Succ[0]].Base
		out.Taken = true
		w.st.push(blk.Succ[0])
		w.st.Block = blk.Succ[1]
		w.st.Index = 0
	case st.Op == isa.OpReturn:
		target, ok := w.st.pop()
		if !ok {
			target = w.prog.Entry
		}
		out.TakenPC = w.prog.Blocks[target].Base
		out.Taken = true
		w.st.Block = target
		w.st.Index = 0
	case st.Op.IsMem():
		if m, ok := w.prog.memRef(w.st.Block, idx); ok {
			if m.Wild {
				out.Addr = m.Base + xrand.Hash3(m.Seed, w.st.Ghist, w.st.BrCount)%m.Span&^7
			} else {
				out.Addr = m.Base + xrand.Hash2(m.Seed, w.st.BrCount>>6)%m.Span&^7
			}
		}
	}

	if !w.pendingSteer {
		blk = &w.prog.Blocks[w.st.Block]
		for w.st.Index >= len(blk.Code) && blk.Terminator() == isa.OpNop {
			if blk.Succ[0] == NoBlock {
				break
			}
			w.st.Block = blk.Succ[0]
			w.st.Index = 0
			blk = &w.prog.Blocks[w.st.Block]
		}
	}
}

// Steer resolves a pending conditional branch with the direction the front
// end *predicts* (which may be wrong — the walker then produces the wrong
// path until Recover is called).
func (w *Walker) Steer(taken bool) {
	if !w.pendingSteer {
		panic("prog: Steer without a pending branch")
	}
	blk := &w.prog.Blocks[w.st.Block]
	// The branch was the last instruction of its block.
	if taken {
		w.st.Block = blk.Succ[1]
	} else {
		w.st.Block = blk.Succ[0]
	}
	w.st.Index = 0
	w.pendingSteer = false
}

// Recover rewinds the walker to a branch's checkpoint, releases the lease,
// and steers down the actual path: the fetch stream continues on the correct
// path exactly as if the branch had been predicted correctly.
func (w *Walker) Recover(d *DynInst) {
	if d.BrID == NoBranch {
		panic("prog: Recover on a non-branch")
	}
	if d.Ckpt == NoCkpt {
		panic("prog: Recover on a branch whose checkpoint was released")
	}
	w.restoreCkpt(d.Ckpt)
	w.Release(d)
	w.pendingSteer = true
	w.Steer(d.Taken)
}

// NextPC reports the PC the walker will fetch next (for I-cache access
// grouping). It resolves pending fall-through chains conservatively.
func (w *Walker) NextPC() uint64 {
	if w.legacy {
		blk := &w.prog.Blocks[w.st.Block]
		idx := w.st.Index
		for idx >= len(blk.Code) {
			if blk.Succ[0] == NoBlock {
				return blk.Base
			}
			blk = &w.prog.Blocks[blk.Succ[0]]
			idx = 0
		}
		return blk.Base + uint64(idx)*InstBytes
	}
	m := &w.prog.meta[w.st.Block]
	idx := w.st.Index
	for idx >= int(m.n) {
		if m.succ0 == NoBlock {
			return m.base
		}
		m = &w.prog.meta[m.succ0]
		idx = 0
	}
	return m.base + uint64(idx)*InstBytes
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
