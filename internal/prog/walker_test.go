package prog

import (
	"testing"
	"testing/quick"

	"selthrottle/internal/isa"
	"selthrottle/internal/xrand"
)

// drive follows the actual path for n instructions and returns a fingerprint
// of the stream.
func drive(w *Walker, n int) uint64 {
	var d DynInst
	var fp uint64
	for i := 0; i < n; i++ {
		w.Next(&d)
		fp = xrand.Hash3(fp, d.PC, uint64(d.St.Op))
		if d.BrID != NoBranch {
			fp = xrand.Hash2(fp, b2u(d.Taken))
			w.Steer(d.Taken)
		}
	}
	return fp
}

func TestWalkerDeterminism(t *testing.T) {
	p, _ := ProfileByName("crafty")
	prog := Generate(p)
	a := drive(NewWalker(prog), 50000)
	b := drive(NewWalker(prog), 50000)
	if a != b {
		t.Fatal("walker streams diverge for identical programs")
	}
}

func TestOutcomePure(t *testing.T) {
	br := &Branch{Seed: 99, DetBits: 6, DetBias: 0.5, NoiseP: 0.3, Bias: 0.6}
	err := quick.Check(func(ghist, brc uint64) bool {
		return Outcome(br, ghist, brc) == Outcome(br, ghist, brc)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestOutcomeBiasObserved(t *testing.T) {
	// A pure-noise branch should follow its bias.
	br := &Branch{Seed: 7, DetBits: 4, DetBias: 0.5, NoiseP: 1.0, Bias: 0.8}
	rng := xrand.New(3)
	taken := 0
	n := 50000
	for i := 0; i < n; i++ {
		if Outcome(br, rng.Uint64(), uint64(i)) {
			taken++
		}
	}
	f := float64(taken) / float64(n)
	if f < 0.76 || f > 0.84 {
		t.Fatalf("taken fraction %v, want ~0.8", f)
	}
}

// TestRecoverExactness is the critical correctness property of the workload
// substrate: running down a wrong path and then recovering at the branch
// must produce exactly the stream that following the correct path from the
// start would have produced.
func TestRecoverExactness(t *testing.T) {
	p, _ := ProfileByName("gzip")
	prog := Generate(p)

	// Reference: always follow the actual outcome.
	ref := NewWalker(prog)
	var refStream []uint64
	var d DynInst
	for i := 0; i < 3000; i++ {
		ref.Next(&d)
		refStream = append(refStream, d.PC)
		if d.BrID != NoBranch {
			ref.Steer(d.Taken)
		}
	}

	// Speculative: at every 5th branch, walk 1-40 wrong-path instructions,
	// then recover.
	spec := NewWalker(prog)
	rng := xrand.New(123)
	var got []uint64
	branchCount := 0
	for len(got) < 3000 {
		spec.Next(&d)
		got = append(got, d.PC)
		if d.BrID == NoBranch {
			continue
		}
		branchCount++
		if branchCount%5 != 0 {
			spec.Steer(d.Taken)
			continue
		}
		// Go down the wrong path.
		br := d
		spec.Steer(!d.Taken)
		var junk DynInst
		for k := rng.Intn(40) + 1; k > 0; k-- {
			spec.Next(&junk)
			if junk.BrID != NoBranch {
				spec.Steer(junk.Taken)
			}
		}
		spec.Recover(&br)
	}
	for i := range refStream {
		if got[i] != refStream[i] {
			t.Fatalf("stream diverged at %d: got pc %#x, want %#x", i, got[i], refStream[i])
		}
	}
}

func TestSteerPanicsWithoutPendingBranch(t *testing.T) {
	p, _ := ProfileByName("gzip")
	w := NewWalker(Generate(p))
	defer func() {
		if recover() == nil {
			t.Fatal("Steer without pending branch did not panic")
		}
	}()
	w.Steer(true)
}

func TestNextPanicsWithPendingSteer(t *testing.T) {
	p, _ := ProfileByName("gzip")
	prog := Generate(p)
	w := NewWalker(prog)
	var d DynInst
	for {
		w.Next(&d)
		if d.BrID != NoBranch {
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Next with pending steer did not panic")
		}
	}()
	w.Next(&d)
}

func TestCallStackDepthBounded(t *testing.T) {
	var s WalkState
	for i := 0; i < 3*CallStackDepth; i++ {
		s.push(i)
	}
	if s.Depth() != CallStackDepth {
		t.Fatalf("stack depth %d, want %d", s.Depth(), CallStackDepth)
	}
	// The most recent frames survive the ring overflow.
	top, ok := s.pop()
	if !ok || top != 3*CallStackDepth-1 {
		t.Fatalf("top frame = %d, %v", top, ok)
	}
}

func TestWalkerSequenceNumbersIncrease(t *testing.T) {
	p, _ := ProfileByName("parser")
	prog := Generate(p)
	w := NewWalker(prog)
	var d DynInst
	var prev uint64
	for i := 0; i < 10000; i++ {
		w.Next(&d)
		if i > 0 && d.Seq != prev+1 {
			t.Fatalf("seq jumped from %d to %d", prev, d.Seq)
		}
		prev = d.Seq
		if d.BrID != NoBranch {
			w.Steer(d.Taken)
		}
	}
}

func TestBranchTargetsPopulated(t *testing.T) {
	p, _ := ProfileByName("parser")
	prog := Generate(p)
	w := NewWalker(prog)
	var d DynInst
	for i := 0; i < 20000; i++ {
		w.Next(&d)
		switch d.St.Op {
		case isa.OpBranch:
			if d.TakenPC == 0 || d.FallPC == 0 {
				t.Fatal("branch without targets")
			}
			w.Steer(d.Taken)
		case isa.OpJump, isa.OpCall, isa.OpReturn:
			if d.TakenPC == 0 {
				t.Fatalf("%v without target", d.St.Op)
			}
		case isa.OpLoad, isa.OpStore:
			if d.Addr == 0 {
				t.Fatal("memory op without address")
			}
		}
	}
}

func TestAddressStreamHasCacheLocality(t *testing.T) {
	// The property the substrate must provide: the memory address stream
	// of the correct path hits a 64 KB cache most of the time (stable
	// references), while a substantial minority of accesses (the "wild"
	// references) miss — that is where wrong-path cache pollution comes
	// from.
	p, _ := ProfileByName("compress")
	prog := Generate(p)
	w := NewWalker(prog)
	var d DynInst

	// Direct-mapped 64 KB / 32 B-line cache model.
	const lines = 2048
	var tags [lines]uint64
	hits, total := 0, 0
	for i := 0; i < 150000; i++ {
		w.Next(&d)
		if d.BrID != NoBranch {
			w.Steer(d.Taken)
		}
		if d.St.Op.IsMem() {
			line := d.Addr >> 5
			slot := line % lines
			if tags[slot] == line {
				hits++
			} else {
				tags[slot] = line
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no memory operations")
	}
	rate := float64(hits) / float64(total)
	if rate < 0.5 {
		t.Fatalf("hit rate %.2f: address stream has no locality", rate)
	}
	if rate > 0.995 {
		t.Fatalf("hit rate %.2f: no wild references, wrong-path pollution impossible", rate)
	}
}
