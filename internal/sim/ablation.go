package sim

import "selthrottle/internal/core"

// Ablations isolate the design choices behind the paper's headline result:
// how much of Selective Throttling's advantage over Pipeline Gating comes
// from the graded policy, and how much from the estimator each scheme is
// paired with; and how sensitive Pipeline Gating is to its threshold (the
// paper notes the threshold "may palliate the effect of the aggressive
// gating policy").

// EstimatorCrossExperiments pairs each mechanism with each estimator:
// the paper's pairings (C2+BPRU, PG+JRS) plus the two crosses.
func EstimatorCrossExperiments() []Experiment {
	c2 := BestExperiment()
	c2.ID = "C2-bpru"
	c2.Label = "Selective Throttling C2 + BPRU (paper pairing)"

	c2jrs := BestExperiment()
	c2jrs.ID = "C2-jrs"
	c2jrs.Label = "Selective Throttling C2 + JRS (cross)"
	c2jrs.Estimator = EstJRS

	pgjrs := Experiment{
		ID:        "PG-jrs",
		Label:     "Pipeline Gating + JRS (paper pairing)",
		Policy:    core.PipelineGating(2),
		Estimator: EstJRS,
	}
	pgbpru := Experiment{
		ID:        "PG-bpru",
		Label:     "Pipeline Gating + BPRU (cross)",
		Policy:    core.PipelineGating(2),
		Estimator: EstBPRU,
	}
	return []Experiment{c2, c2jrs, pgjrs, pgbpru}
}

// GateThresholdExperiments sweeps Pipeline Gating's threshold (number of
// unresolved low-confidence branches before fetch is stalled). Threshold 1
// is maximally aggressive; large thresholds converge to the baseline.
func GateThresholdExperiments() []Experiment {
	var exps []Experiment
	for _, n := range []int{1, 2, 3, 4} {
		exps = append(exps, Experiment{
			ID:        "PG-" + string(rune('0'+n)),
			Label:     "Pipeline Gating, threshold " + string(rune('0'+n)),
			Policy:    core.PipelineGating(n),
			Estimator: EstJRS,
		})
	}
	return exps
}

// EscalationAblationExperiments contrasts the paper's escalation rule
// (later VLC tightens an active LC heuristic — implicit in the controller's
// max-over-active-triggers design) with a VLC-only and an LC-only variant
// of C2, showing that both classes contribute.
func EscalationAblationExperiments() []Experiment {
	full := BestExperiment()
	full.ID = "C2-full"
	full.Label = "C2: both classes act"

	vlcOnly := Experiment{
		ID:        "C2-vlc",
		Label:     "C2 minus LC action (VLC stall only)",
		Policy:    core.Selective("C2-vlc", core.Spec{}, core.Spec{Fetch: core.RateStall}),
		Estimator: EstBPRU,
	}
	lcOnly := Experiment{
		ID:    "C2-lc",
		Label: "C2 minus VLC action (LC quarter+noselect only)",
		Policy: core.Selective("C2-lc",
			core.Spec{Fetch: core.RateQuarter, NoSelect: true}, core.Spec{}),
		Estimator: EstBPRU,
	}
	return []Experiment{full, vlcOnly, lcOnly}
}
