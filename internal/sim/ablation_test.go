package sim

import (
	"testing"

	"selthrottle/internal/prog"
)

func TestAblationSeriesWellFormed(t *testing.T) {
	cross := EstimatorCrossExperiments()
	if len(cross) != 4 {
		t.Fatalf("estimator cross has %d experiments", len(cross))
	}
	seen := map[string]bool{}
	for _, e := range cross {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if cross[0].Estimator != EstBPRU || cross[1].Estimator != EstJRS {
		t.Error("C2 estimator pairing wrong")
	}
	if !cross[2].Policy.Gating || !cross[3].Policy.Gating {
		t.Error("PG pairings missing gating")
	}

	thr := GateThresholdExperiments()
	if len(thr) != 4 {
		t.Fatalf("threshold sweep has %d experiments", len(thr))
	}
	for i, e := range thr {
		if e.Policy.GateThreshold != i+1 {
			t.Errorf("experiment %d threshold %d", i, e.Policy.GateThreshold)
		}
	}

	esc := EscalationAblationExperiments()
	if len(esc) != 3 {
		t.Fatalf("escalation ablation has %d experiments", len(esc))
	}
	if esc[1].Policy.ByClass[2].Fetch != 0 { // LC spec empty in VLC-only
		t.Error("VLC-only variant still throttles LC")
	}
}

func TestGateThresholdMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run")
	}
	profiles := []prog.Profile{}
	for _, n := range []string{"go", "twolf"} {
		p, _ := prog.ProfileByName(n)
		profiles = append(profiles, p)
	}
	opts := Options{Instructions: 60000, Warmup: 15000, Profiles: profiles}
	fr := RunFigure("thresholds", GateThresholdExperiments(), opts)
	// Lower thresholds gate more: more power saved, more slowdown.
	t1, _ := fr.Row("PG-1")
	t4, _ := fr.Row("PG-4")
	if t1.Average.PowerSaving <= t4.Average.PowerSaving {
		t.Errorf("threshold 1 should save more power than 4: %.1f vs %.1f",
			t1.Average.PowerSaving, t4.Average.PowerSaving)
	}
	if t1.Average.Speedup >= t4.Average.Speedup {
		t.Errorf("threshold 1 should cost more performance than 4: %.3f vs %.3f",
			t1.Average.Speedup, t4.Average.Speedup)
	}
}

func TestEscalationAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run")
	}
	profiles := []prog.Profile{}
	for _, n := range []string{"go", "gzip"} {
		p, _ := prog.ProfileByName(n)
		profiles = append(profiles, p)
	}
	opts := Options{Instructions: 60000, Warmup: 15000, Profiles: profiles}
	fr := RunFigure("escalation", EscalationAblationExperiments(), opts)
	full, _ := fr.Row("C2-full")
	vlc, _ := fr.Row("C2-vlc")
	lc, _ := fr.Row("C2-lc")
	// Both classes contribute power savings; the full policy saves at
	// least as much as either half.
	if full.Average.PowerSaving < vlc.Average.PowerSaving-0.5 ||
		full.Average.PowerSaving < lc.Average.PowerSaving-0.5 {
		t.Errorf("full C2 (%.1f) saves less power than a component (vlc %.1f, lc %.1f)",
			full.Average.PowerSaving, vlc.Average.PowerSaving, lc.Average.PowerSaving)
	}
	if vlc.Average.PowerSaving <= 0 || lc.Average.PowerSaving <= 0 {
		t.Errorf("component policies save no power: vlc %.1f lc %.1f",
			vlc.Average.PowerSaving, lc.Average.PowerSaving)
	}
}
