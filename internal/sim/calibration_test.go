package sim

import (
	"testing"

	"selthrottle/internal/power"
	"selthrottle/internal/prog"
)

// The calibration tests assert that the synthetic substrate sits on the
// operating points the reproduction is built around: Table 2 misprediction
// rates, §4.3 estimator quality, and the Table 1 power breakdown. They run
// full simulations and are skipped under -short.

const (
	calibInstructions = 150000
	calibWarmup       = 40000
)

func calibOpts() Options {
	return Options{Instructions: calibInstructions, Warmup: calibWarmup}
}

func TestTable2MissRateCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	rows := RunTable2(calibOpts())
	for _, r := range rows {
		got := 100 * r.MeasuredMiss
		want := r.Profile.PaperMissPct
		tol := r.Profile.TargetMissTol
		if got < want-tol || got > want+tol {
			t.Errorf("%s: gshare miss %.1f%%, paper %.1f%% (tolerance %.1f)",
				r.Profile.Name, got, want, tol)
		}
		if r.BranchFraction < 0.03 || r.BranchFraction > 0.25 {
			t.Errorf("%s: implausible branch fraction %.3f", r.Profile.Name, r.BranchFraction)
		}
		if r.IPC < 0.5 || r.IPC > 6 {
			t.Errorf("%s: implausible IPC %.2f", r.Profile.Name, r.IPC)
		}
	}
}

func TestConfidenceOperatingPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	crs := RunConfidence(calibOpts())
	for _, cr := range crs {
		switch cr.Estimator {
		case EstBPRU:
			// Paper: SPEC = 60 %, PVN = 45 %.
			if cr.SPEC < 0.45 || cr.SPEC > 0.90 {
				t.Errorf("BPRU SPEC %.2f outside [0.45, 0.90] (paper 0.60)", cr.SPEC)
			}
			if cr.PVN < 0.30 || cr.PVN > 0.60 {
				t.Errorf("BPRU PVN %.2f outside [0.30, 0.60] (paper 0.45)", cr.PVN)
			}
		case EstJRS:
			// Paper: SPEC = 90 %, PVN = 24 %.
			if cr.SPEC < 0.80 {
				t.Errorf("JRS SPEC %.2f below 0.80 (paper 0.90)", cr.SPEC)
			}
			if cr.PVN < 0.15 || cr.PVN > 0.40 {
				t.Errorf("JRS PVN %.2f outside [0.15, 0.40] (paper 0.24)", cr.PVN)
			}
		}
	}
	// The paper's key contrast: JRS has higher SPEC, BPRU higher PVN.
	if crs[1].SPEC <= crs[0].SPEC {
		t.Error("JRS should have higher SPEC than BPRU")
	}
	if crs[0].PVN <= crs[1].PVN {
		t.Error("BPRU should have higher PVN than JRS")
	}
}

func TestTable1Breakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	t1 := RunTable1(calibOpts())
	// Total power within 15 % of the paper's 56.4 W.
	if t1.TotalWatts < power.TotalWatts*0.85 || t1.TotalWatts > power.TotalWatts*1.15 {
		t.Errorf("total power %.1f W, paper %.1f W", t1.TotalWatts, power.TotalWatts)
	}
	// Every unit share within 3.5 percentage points of Table 1.
	for u := power.Unit(0); u < power.NumUnits; u++ {
		got := 100 * t1.Shares[u]
		want := 100 * power.Table1Shares[u]
		if got < want-3.5 || got > want+3.5 {
			t.Errorf("unit %v share %.1f%%, paper %.1f%%", u, got, want)
		}
	}
	// A substantial fraction of power is wasted by mis-speculated
	// instructions (paper: 27.9 %; substrate band: 10-30 %).
	if t1.WastedTotal < 0.10 || t1.WastedTotal > 0.32 {
		t.Errorf("wasted fraction %.1f%%, paper 27.9%%", 100*t1.WastedTotal)
	}
	// The front end dominates the waste, as in the paper.
	front := t1.WastedShares[power.UnitICache] + t1.WastedShares[power.UnitBPred]
	if front < t1.WastedShares[power.UnitALU] {
		t.Error("front-end waste should exceed execution waste")
	}
}

// TestThrottlingShape asserts the qualitative results of the evaluation:
// the orderings the paper's conclusions rest on, independent of exact
// magnitudes.
func TestThrottlingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	profiles := []prog.Profile{}
	for _, n := range []string{"compress", "go", "gzip", "twolf"} {
		p, _ := prog.ProfileByName(n)
		profiles = append(profiles, p)
	}
	opts := Options{Instructions: 100000, Warmup: 25000, Profiles: profiles}

	a1, _ := ExperimentByID("A1")
	a5, _ := ExperimentByID("A5")
	a6, _ := ExperimentByID("A6")
	c1, _ := ExperimentByID("C1")
	c2, _ := ExperimentByID("C2")
	a7, _ := ExperimentByID("A7")
	fr := RunFigure("shape", []Experiment{a1, a5, a6, a7, c1, c2}, opts)

	row := func(id string) Comparison {
		r, ok := fr.Row(id)
		if !ok {
			t.Fatalf("row %s missing", id)
		}
		return r.Average
	}

	// 1. Graded throttling: the gentlest policy costs the least performance.
	if row("A1").Speedup < row("A6").Speedup {
		t.Error("A1 (gentlest) should cost less performance than A6 (full gating)")
	}
	// 2. More aggressive throttling saves more power.
	if !(row("A1").PowerSaving < row("A5").PowerSaving &&
		row("A5").PowerSaving < row("A6").PowerSaving) {
		t.Errorf("power savings not monotone: A1=%.1f A5=%.1f A6=%.1f",
			row("A1").PowerSaving, row("A5").PowerSaving, row("A6").PowerSaving)
	}
	// 3. Every policy saves energy on average.
	for _, id := range []string{"A1", "A5", "A6", "A7", "C1", "C2"} {
		if row(id).EnergySaving <= 0 {
			t.Errorf("%s average energy saving %.1f%% <= 0", id, row(id).EnergySaving)
		}
	}
	// 4. Selection throttling adds power savings over the same policy
	// without it (paper: ~2 pp) at a small additional slowdown.
	if row("C2").PowerSaving <= row("C1").PowerSaving {
		t.Errorf("no-select did not add power savings: C1=%.1f C2=%.1f",
			row("C1").PowerSaving, row("C2").PowerSaving)
	}
	if row("C1").Speedup-row("C2").Speedup > 0.06 {
		t.Errorf("no-select slowdown too large: C1=%.3f C2=%.3f",
			row("C1").Speedup, row("C2").Speedup)
	}
	// 5. A1's slowdown is small (paper: < 1 %; band: < 3 %).
	if row("A1").Speedup < 0.97 {
		t.Errorf("A1 slowdown %.3f too large", row("A1").Speedup)
	}
}

func TestDepthSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	profiles := []prog.Profile{}
	for _, n := range []string{"go", "twolf"} {
		p, _ := prog.ProfileByName(n)
		profiles = append(profiles, p)
	}
	opts := Options{Instructions: 80000, Warmup: 20000, Profiles: profiles}
	points := DepthSweep(opts, []int{6, 14, 28})
	if len(points) != 3 {
		t.Fatalf("%d sweep points", len(points))
	}
	// The paper's Figure 6: savings grow with pipeline depth.
	if points[2].Average.PowerSaving <= points[0].Average.PowerSaving {
		t.Errorf("power savings do not grow with depth: %v -> %v",
			points[0].Average.PowerSaving, points[2].Average.PowerSaving)
	}
}

func TestSizeSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	profiles := []prog.Profile{}
	for _, n := range []string{"go", "gcc"} {
		p, _ := prog.ProfileByName(n)
		profiles = append(profiles, p)
	}
	opts := Options{Instructions: 80000, Warmup: 20000, Profiles: profiles}
	points := SizeSweep(opts, []int{8, 64})
	if len(points) != 2 {
		t.Fatalf("%d sweep points", len(points))
	}
	// The paper's Figure 7: bigger tables leave fewer opportunities, so
	// power savings shrink (20.3 % at 8 KB vs 16.5 % at 64 KB).
	if points[1].Average.PowerSaving >= points[0].Average.PowerSaving+2 {
		t.Errorf("power savings should not grow with table size: %v -> %v",
			points[0].Average.PowerSaving, points[1].Average.PowerSaving)
	}
}

func TestOracleEnergyBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	profiles := []prog.Profile{}
	for _, n := range []string{"go", "twolf", "gzip"} {
		p, _ := prog.ProfileByName(n)
		profiles = append(profiles, p)
	}
	opts := Options{Instructions: 100000, Warmup: 25000, Profiles: profiles}
	fr := RunFigure("oracles", OracleExperiments(), opts)
	f, _ := fr.Row("oracle-fetch")
	d, _ := fr.Row("oracle-decode")
	s, _ := fr.Row("oracle-select")
	// Section 3's stage ordering: suppressing wrong-path work earlier in
	// the pipeline saves more power.
	if !(f.Average.PowerSaving > d.Average.PowerSaving &&
		d.Average.PowerSaving > s.Average.PowerSaving) {
		t.Errorf("oracle power ordering violated: fetch=%.1f decode=%.1f select=%.1f",
			f.Average.PowerSaving, d.Average.PowerSaving, s.Average.PowerSaving)
	}
	if f.Average.PowerSaving < 8 {
		t.Errorf("oracle fetch power saving %.1f%% too small (paper ~21%%)",
			f.Average.PowerSaving)
	}
}
