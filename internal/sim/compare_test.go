package sim

import (
	"math"
	"testing"
)

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// TestCompareEdgeCases pins the degenerate-denominator behaviour: zero or
// non-finite baseline quantities must produce well-defined zeros, never
// NaN/Inf that would leak into figure output.
func TestCompareEdgeCases(t *testing.T) {
	mk := func(seconds, power, energy, ed float64) Result {
		return Result{Seconds: seconds, AvgPower: power, Energy: energy, EDelay: ed}
	}
	cases := []struct {
		name    string
		base, x Result
		want    Comparison
	}{
		{
			name: "normal",
			base: mk(2, 50, 100, 200),
			x:    mk(1, 25, 50, 100),
			want: Comparison{Speedup: 2, PowerSaving: 50, EnergySaving: 50, EDImprovement: 50},
		},
		{
			name: "zero-experiment-time",
			base: mk(2, 50, 100, 200),
			x:    mk(0, 25, 50, 100),
			want: Comparison{Speedup: 0, PowerSaving: 50, EnergySaving: 50, EDImprovement: 50},
		},
		{
			name: "zero-baseline",
			base: mk(0, 0, 0, 0),
			x:    mk(1, 40, 50, 100),
			want: Comparison{Speedup: 0, PowerSaving: 0, EnergySaving: 0, EDImprovement: 0},
		},
		{
			name: "both-zero",
			base: mk(0, 0, 0, 0),
			x:    mk(0, 0, 0, 0),
			want: Comparison{Speedup: 0, PowerSaving: 0, EnergySaving: 0, EDImprovement: 0},
		},
		{
			name: "nonfinite-baseline",
			base: mk(math.NaN(), math.Inf(1), math.NaN(), math.Inf(-1)),
			x:    mk(1, 40, 50, 100),
			want: Comparison{Speedup: 0, PowerSaving: 0, EnergySaving: 0, EDImprovement: 0},
		},
		{
			name: "nonfinite-experiment",
			base: mk(2, 50, 100, 200),
			x:    mk(math.NaN(), math.NaN(), math.Inf(1), math.Inf(-1)),
			want: Comparison{Speedup: 0, PowerSaving: 0, EnergySaving: 0, EDImprovement: 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Compare(tc.base, tc.x)
			for _, v := range []float64{got.Speedup, got.PowerSaving, got.EnergySaving, got.EDImprovement} {
				if !finite(v) {
					t.Fatalf("non-finite metric leaked: %+v", got)
				}
			}
			got.Benchmark = ""
			if got != tc.want {
				t.Errorf("Compare = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestAverageComparisonEdgeCases pins empty input and non-finite-entry
// filtering: an empty slice yields zeros, and a poisoned cell is excluded
// per metric instead of turning the whole average into NaN.
func TestAverageComparisonEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		got := AverageComparison(nil)
		want := Comparison{Benchmark: "average"}
		if got != want {
			t.Errorf("AverageComparison(nil) = %+v, want zeros", got)
		}
	})
	t.Run("normal-mean", func(t *testing.T) {
		got := AverageComparison([]Comparison{
			{Speedup: 1, PowerSaving: 10, EnergySaving: 20, EDImprovement: 30},
			{Speedup: 3, PowerSaving: 30, EnergySaving: 40, EDImprovement: 50},
		})
		want := Comparison{Benchmark: "average", Speedup: 2, PowerSaving: 20, EnergySaving: 30, EDImprovement: 40}
		if got != want {
			t.Errorf("AverageComparison = %+v, want %+v", got, want)
		}
	})
	t.Run("poisoned-cell-excluded", func(t *testing.T) {
		got := AverageComparison([]Comparison{
			{Speedup: 1, PowerSaving: 10, EnergySaving: 20, EDImprovement: 30},
			{Speedup: math.NaN(), PowerSaving: math.Inf(1), EnergySaving: 40, EDImprovement: math.Inf(-1)},
			{Speedup: 3, PowerSaving: 30, EnergySaving: math.NaN(), EDImprovement: 50},
		})
		want := Comparison{Benchmark: "average", Speedup: 2, PowerSaving: 20, EnergySaving: 30, EDImprovement: 40}
		if got != want {
			t.Errorf("AverageComparison = %+v, want %+v", got, want)
		}
	})
	t.Run("all-poisoned", func(t *testing.T) {
		got := AverageComparison([]Comparison{{Speedup: math.NaN()}})
		if !finite(got.Speedup) || got.Speedup != 0 {
			t.Errorf("all-poisoned average = %+v, want zero", got)
		}
	})
}
