package sim

// Disk tier plumbing: content addressing of the canonical cache key and the
// Result <-> store.Entry conversions. The store itself (framing, checksums,
// atomic writes, quarantine) lives in internal/store; this file is the only
// place that knows how a simulation point becomes a 256-bit address.

import (
	"crypto/sha256"
	"fmt"

	"selthrottle/internal/store"
)

// diskKeySchema versions the content address itself. It is hashed into
// every key, so changing the canonicalization rules, the shape of Config or
// Profile, or the meaning of any field only requires bumping this string:
// old entries become unreachable (cold cache, recomputed and republished
// under the new schema), never wrongly served.
const diskKeySchema = "selthrottle/resultcache/key/v1"

// diskKeyOf content-addresses a canonical cache key. The %#v rendering of
// the two canonicalized value structs is a deterministic, unambiguous
// serialization: both are plain comparable Go values (no pointers, no maps;
// the one interface field, Pipe.Fault, is always nil for cacheable configs
// — runCachedE bypasses both tiers for faulted runs), every field prints
// exactly, and the NUL separator keeps the pair unambiguous.
func diskKeyOf(key cacheKey) store.Key {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%#v\x00%#v", diskKeySchema, key.cfg, key.profile)
	var k store.Key
	h.Sum(k[:0])
	return k
}

// resultEntry strips a Result to its persisted payload. Config and
// Benchmark are deliberately dropped: they are the lookup key's identity,
// rewritten onto the Result on the way out of every tier.
func resultEntry(r *Result) store.Entry {
	return store.Entry{
		Stats:    r.Stats,
		Power:    r.Power,
		IPC:      r.IPC,
		MissRate: r.MissRate,
		Seconds:  r.Seconds,
		Energy:   r.Energy,
		EDelay:   r.EDelay,
		AvgPower: r.AvgPower,
	}
}

// entryResult rebuilds a Result from its persisted payload; the caller
// stamps Config and Benchmark.
func entryResult(e *store.Entry) Result {
	return Result{
		Stats:    e.Stats,
		Power:    e.Power,
		IPC:      e.IPC,
		MissRate: e.MissRate,
		Seconds:  e.Seconds,
		Energy:   e.Energy,
		EDelay:   e.EDelay,
		AvgPower: e.AvgPower,
	}
}

// UseDiskStore opens (creating if necessary) the persistent result store at
// dir and attaches it as the process-wide cache's disk tier. The open runs
// the store's recovery scan, so a directory holding torn or corrupt entries
// — a previous process killed mid-write — opens cleanly with the damage
// quarantined. Returns the number of entries available.
func UseDiskStore(dir string) (entries int, err error) {
	st, err := store.Open(dir, nil)
	if err != nil {
		return 0, err
	}
	processCache.SetDisk(st)
	return st.Len(), nil
}

// AttachDiskStore attaches an already-open store (possibly on an injected
// fault FS) as the process-wide cache's disk tier; nil detaches. Returns
// the previous store. Tests and services that manage their own store
// lifecycle use this; UseDiskStore is the one-call path.
func AttachDiskStore(st *store.Store) (previous *store.Store) {
	return processCache.SetDisk(st)
}

// DiskStore returns the process-wide cache's attached disk tier, if any —
// the handle the commands use to configure store-level policy (quarantine
// warnings) after UseDiskStore.
func DiskStore() *store.Store { return processCache.Disk() }
