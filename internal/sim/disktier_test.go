package sim

import (
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"selthrottle/internal/faultinject"
	"selthrottle/internal/pipe"
	"selthrottle/internal/prog"
	"selthrottle/internal/store"
	"selthrottle/internal/xrand"
)

// diskTestConfigs returns n distinct small configurations.
func diskTestConfigs(n int) []Config {
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfg := Default()
		cfg.Instructions = 6000 + uint64(i)*500
		cfg.Warmup = 1500
		cfgs[i] = cfg
	}
	return cfgs
}

// entryFiles lists every published entry file under a store directory.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info fs.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, store.EntrySuffix) &&
			!strings.Contains(path, "quarantine") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestDiskTierServesAcrossProcesses: results computed through one cache are
// served bit-identically by a second cache (a "new process": cold memory
// tier) over the same store directory, without re-simulation.
func TestDiskTierServesAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	profiles := cacheTestProfiles()
	cfgs := diskTestConfigs(2)

	st1, err := store.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewResultCache()
	c1.SetDisk(st1)
	var want []Result
	for _, cfg := range cfgs {
		for _, p := range profiles {
			res, err := c1.RunE(context.Background(), NewRunner(), cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, res)
		}
	}
	ts := c1.TierStats()
	if int(ts.DiskPuts) != len(want) || ts.DiskHits != 0 {
		t.Fatalf("first process: %d disk puts / %d disk hits, want %d / 0", ts.DiskPuts, ts.DiskHits, len(want))
	}

	st2, err := store.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != len(want) {
		t.Fatalf("reopened store holds %d entries, want %d", st2.Len(), len(want))
	}
	c2 := NewResultCache()
	c2.SetDisk(st2)
	i := 0
	for _, cfg := range cfgs {
		for _, p := range profiles {
			res, err := c2.RunE(context.Background(), NewRunner(), cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if res != want[i] {
				t.Fatalf("disk-served result for %s diverged from computed", p.Name)
			}
			i++
		}
	}
	ts = c2.TierStats()
	if int(ts.DiskHits) != len(want) || ts.MemMisses != 0 {
		t.Fatalf("second process: %d disk hits / %d computed, want %d / 0", ts.DiskHits, ts.MemMisses, len(want))
	}
}

// TestDiskCorruptionRecomputesBitIdentically is the end-to-end recovery
// property: persist N real simulation points, corrupt a random k of the
// entry files, reopen — exactly k are quarantined, and re-requesting all N
// yields bit-identical results, with only the k victims re-simulated.
func TestDiskCorruptionRecomputesBitIdentically(t *testing.T) {
	dir := t.TempDir()
	profiles := cacheTestProfiles()
	cfgs := diskTestConfigs(3)

	st, err := store.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewResultCache()
	c.SetDisk(st)
	var want []Result
	for _, cfg := range cfgs {
		for _, p := range profiles {
			res, err := c.RunE(context.Background(), NewRunner(), cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, res)
		}
	}
	n := len(want)

	files := entryFiles(t, dir)
	if len(files) != n {
		t.Fatalf("store holds %d entry files, want %d", len(files), n)
	}
	rng := xrand.New(0xd15c)
	k := int(rng.Uint64()%uint64(n-1)) + 1
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for _, idx := range perm[:k] {
		data, err := os.ReadFile(files[idx])
		if err != nil {
			t.Fatal(err)
		}
		if rng.Uint64()%2 == 0 {
			data = data[:rng.Uint64()%uint64(len(data))] // torn tail
		} else {
			data[rng.Uint64()%uint64(len(data))] ^= 1 << (rng.Uint64() % 8)
		}
		if err := os.WriteFile(files[idx], data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2, err := store.Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen over %d corruptions: %v", k, err)
	}
	if got := st2.Stats().QuarantinedAtOpen; got != k {
		t.Fatalf("quarantined %d at open, want exactly %d", got, k)
	}
	c2 := NewResultCache()
	c2.SetDisk(st2)
	i := 0
	for _, cfg := range cfgs {
		for _, p := range profiles {
			res, err := c2.RunE(context.Background(), NewRunner(), cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			if res != want[i] {
				t.Fatalf("post-corruption result for %s diverged", p.Name)
			}
			i++
		}
	}
	ts := c2.TierStats()
	if int(ts.MemMisses) != k || int(ts.DiskHits) != n-k {
		t.Fatalf("recomputed %d / disk-served %d, want %d / %d", ts.MemMisses, ts.DiskHits, k, n-k)
	}
	// The recomputed victims were re-published; a third pass is all hits.
	if st2.Len() != n {
		t.Fatalf("store holds %d entries after recompute, want %d", st2.Len(), n)
	}
}

// TestDiskErrorsDegradeToCompute: a store on a failing device (injected read
// errors and a full disk) never fails a request — every point still computes
// and returns correct results, with the degradations counted.
func TestDiskErrorsDegradeToCompute(t *testing.T) {
	p := cacheTestProfiles()[0]
	cfg := diskTestConfigs(1)[0]

	// Reference result, no disk tier.
	ref := NewResultCache()
	want, err := ref.RunE(context.Background(), NewRunner(), cfg, p)
	if err != nil {
		t.Fatal(err)
	}

	// Every write fails with ENOSPC: compute succeeds, nothing persists.
	dfs := faultinject.NewDiskFS(nil, faultinject.DiskFault{
		Kind: faultinject.DiskENOSPC, Op: faultinject.OpWrite,
	})
	st, err := store.Open(t.TempDir(), dfs)
	if err != nil {
		t.Fatal(err)
	}
	c := NewResultCache()
	c.SetDisk(st)
	got, err := c.RunE(context.Background(), NewRunner(), cfg, p)
	if err != nil {
		t.Fatalf("full disk failed the request: %v", err)
	}
	if got != want {
		t.Fatal("full-disk result diverged")
	}
	if ts := c.TierStats(); ts.DiskErrors != 1 || ts.DiskPuts != 0 {
		t.Fatalf("full disk: %d errors / %d puts, want 1 / 0", ts.DiskErrors, ts.DiskPuts)
	}

	// Entry reads fail: the persisted point is recomputed, not an outage.
	dir2 := t.TempDir()
	st2, err := store.Open(dir2, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewResultCache()
	c2.SetDisk(st2)
	if _, err := c2.RunE(context.Background(), NewRunner(), cfg, p); err != nil {
		t.Fatal(err)
	}
	// After: 1 lets the open scan's validation read pass, so the fault
	// fires on the Get-path read — the degradation under test.
	dfs3 := faultinject.NewDiskFS(nil, faultinject.DiskFault{
		Kind: faultinject.DiskReadError, Op: faultinject.OpRead, Match: store.EntrySuffix, After: 1,
	})
	st3, err := store.Open(dir2, dfs3)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Len() != 1 {
		t.Fatalf("scan read faulted early: %d entries indexed", st3.Len())
	}
	c3 := NewResultCache()
	c3.SetDisk(st3)
	got, err = c3.RunE(context.Background(), NewRunner(), cfg, p)
	if err != nil {
		t.Fatalf("failing reads failed the request: %v", err)
	}
	if got != want {
		t.Fatal("degraded-read result diverged")
	}
	if ts := c3.TierStats(); ts.DiskErrors == 0 || ts.MemMisses != 1 {
		t.Fatalf("degraded read: %d errors / %d computed, want >0 / 1", ts.DiskErrors, ts.MemMisses)
	}
}

// TestFaultedRunsNeverPersisted: a configuration carrying a fault-injection
// hook bypasses both cache tiers — its outcome is impure by design, so
// neither a failed nor a "lucky" faulted run may be served to healthy
// requests or written to disk.
func TestFaultedRunsNeverPersisted(t *testing.T) {
	p := cacheTestProfiles()[0]
	cfg := diskTestConfigs(1)[0]
	cfg.Pipe.Fault = faultinject.NewPlan(faultinject.Fault{
		Kind: faultinject.KindPanic, Stage: pipe.StageIssue, Cycle: 200,
	})

	st, err := store.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	prevStore := AttachDiskStore(st)
	prevCaching := SetResultCaching(true)
	defer func() {
		AttachDiskStore(prevStore)
		SetResultCaching(prevCaching)
	}()

	r := NewRunner()
	if _, err := runCachedE(context.Background(), r, cfg, p); err == nil {
		t.Fatal("injected panic did not surface")
	}
	if st.Len() != 0 || st.Stats().Puts != 0 {
		t.Fatalf("faulted run persisted: %d entries, %d puts", st.Len(), st.Stats().Puts)
	}
}

// TestLRUEvictionBoundsMemoryAndFallsBackToDisk: with the memory tier
// bounded below the working set, eviction keeps Len within the limit; an
// evicted point is served from the disk tier (no re-simulation), and with no
// disk tier it is recomputed — bit-identically either way.
func TestLRUEvictionBoundsMemoryAndFallsBackToDisk(t *testing.T) {
	p := cacheTestProfiles()[0]
	cfgs := diskTestConfigs(4)

	st, err := store.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewResultCache()
	c.SetDisk(st)
	if prev := c.SetLimit(2); prev != DefaultCacheEntries {
		t.Fatalf("default limit = %d, want %d", prev, DefaultCacheEntries)
	}
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := c.RunE(context.Background(), NewRunner(), cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	if c.Len() > 2 {
		t.Fatalf("memory tier holds %d entries over a limit of 2", c.Len())
	}
	ts := c.TierStats()
	if ts.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", ts.Evictions)
	}
	// cfgs[0] was evicted: served again from disk, not recomputed.
	res, err := c.RunE(context.Background(), NewRunner(), cfgs[0], p)
	if err != nil {
		t.Fatal(err)
	}
	if res != want[0] {
		t.Fatal("evicted point served differently")
	}
	ts2 := c.TierStats()
	if ts2.MemMisses != ts.MemMisses || ts2.DiskHits != ts.DiskHits+1 {
		t.Fatalf("evicted point recomputed (misses %d→%d, disk hits %d→%d)",
			ts.MemMisses, ts2.MemMisses, ts.DiskHits, ts2.DiskHits)
	}

	// Same working set, no disk tier: eviction costs recomputation only.
	c2 := NewResultCache()
	c2.SetLimit(2)
	for i, cfg := range cfgs {
		res, err := c2.RunE(context.Background(), NewRunner(), cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if res != want[i] {
			t.Fatal("bounded cache diverged")
		}
	}
	res, err = c2.RunE(context.Background(), NewRunner(), cfgs[0], p)
	if err != nil || res != want[0] {
		t.Fatalf("recomputed evicted point diverged (err %v)", err)
	}
	if h, m := c2.Stats(); m != uint64(len(cfgs))+1 || h != 0 {
		t.Fatalf("bounded no-disk cache: %d hits / %d misses", h, m)
	}
}

// TestSetLimitBytesConverts: the byte-based limit maps onto entries and
// evicts immediately.
func TestSetLimitBytesConverts(t *testing.T) {
	c := NewResultCache()
	if c.SetLimitBytes(1) != DefaultCacheEntries {
		t.Fatal("previous limit wrong")
	}
	if got := c.SetLimit(0); got != 1 {
		t.Fatalf("1-byte budget maps to %d entries, want 1 (floor)", got)
	}
}

// TestJitterDeterministicAndBounded: the backoff jitter is a pure function
// of (seed, point), always within [d/2, d], and distinct points
// desynchronize.
func TestJitterDeterministicAndBounded(t *testing.T) {
	profiles := cacheTestProfiles()
	cfg := Default()
	const d = 80 * time.Millisecond

	a1 := jitterRand(0, cfg, profiles[0])
	a2 := jitterRand(0, cfg, profiles[0])
	b := jitterRand(0, cfg, profiles[1])
	sameAsB := true
	for i := 0; i < 64; i++ {
		ja, jb := jittered(d, a1), jittered(d, a2)
		if ja != jb {
			t.Fatal("jitter stream is not reproducible")
		}
		if ja < d/2 || ja > d {
			t.Fatalf("jitter %v outside [%v, %v]", ja, d/2, d)
		}
		if jittered(d, b) != ja {
			sameAsB = false
		}
	}
	if sameAsB {
		t.Fatal("distinct points share one jitter stream")
	}
	if jitterRand(0, cfg, profiles[0]).Uint64() == jitterRand(7, cfg, profiles[0]).Uint64() {
		t.Fatal("seed does not perturb the stream")
	}
	// Degenerate durations pass through untouched.
	if jittered(1, a1) != 1 || jittered(0, a1) != 0 {
		t.Fatal("degenerate backoff mangled")
	}
}

// TestSupervisorRetriesWithJitteredBackoff: a transient injected fault heals
// on retry and the retry consumed a jittered, non-zero wait.
func TestSupervisorRetriesWithJitteredBackoff(t *testing.T) {
	p := cacheTestProfiles()[0]
	cfg := Default()
	cfg.Instructions, cfg.Warmup = 6000, 1500

	sup := Supervisor{
		Retries: 2,
		Backoff: 4 * time.Millisecond,
		PointFault: func(Config, prog.Profile) pipe.FaultHook {
			return faultinject.NewPlan(faultinject.Fault{
				Kind: faultinject.KindPanic, Stage: pipe.StageIssue, Cycle: 100, Once: true,
			})
		},
	}
	start := time.Now()
	res, st := sup.RunPointE(context.Background(), cfg, p)
	if !st.OK() || st.Attempts != 2 {
		t.Fatalf("status = %+v, want recovery on attempt 2", st)
	}
	if res.Stats.Committed == 0 {
		t.Fatal("recovered result is empty")
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("retry did not back off (elapsed %v)", elapsed)
	}
}
