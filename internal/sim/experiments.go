package sim

import "selthrottle/internal/core"

// Experiment is one labeled configuration of the paper's evaluation: a
// throttling policy (or Pipeline Gating, or an oracle mode) plus the
// estimator it uses. The structural configuration (depth, sizes, workload
// length) comes from the harness options.
type Experiment struct {
	ID        string
	Label     string
	Policy    core.Policy
	Estimator EstimatorKind
	Oracle    core.Oracle
}

// spec shorthand constructors.
func fspec(f core.Rate) core.Spec     { return core.Spec{Fetch: f} }
func fdspec(f, d core.Rate) core.Spec { return core.Spec{Fetch: f, Decode: d} }
func nsel(s core.Spec) core.Spec      { s.NoSelect = true; return s }
func selective(id string, lc, vlc core.Spec) core.Policy {
	return core.Selective(id, lc, vlc)
}

// pipelineGating is the paper's comparison point: JRS estimator, MDC
// threshold 12, gating threshold 2.
func pipelineGating(id string) Experiment {
	return Experiment{
		ID:        id,
		Label:     "Pipeline Gating (JRS)",
		Policy:    core.PipelineGating(2),
		Estimator: EstJRS,
	}
}

// OracleExperiments returns the Section 3 limit study (Figure 1).
func OracleExperiments() []Experiment {
	return []Experiment{
		{ID: "oracle-fetch", Label: "oracle fetch", Policy: core.Baseline(), Estimator: EstBPRU, Oracle: core.OracleFetch},
		{ID: "oracle-decode", Label: "oracle decode", Policy: core.Baseline(), Estimator: EstBPRU, Oracle: core.OracleDecode},
		{ID: "oracle-select", Label: "oracle select", Policy: core.Baseline(), Estimator: EstBPRU, Oracle: core.OracleSelect},
	}
}

// FetchExperiments returns Figure 3's A-series: graded fetch throttling plus
// the Pipeline Gating comparison.
func FetchExperiments() []Experiment {
	half := core.RateHalf
	quarter := core.RateQuarter
	stall := core.RateStall
	exps := []Experiment{
		{ID: "A1", Label: "LC: fetch/2, VLC: fetch/2", Policy: selective("A1", fspec(half), fspec(half))},
		{ID: "A2", Label: "LC: fetch/2, VLC: fetch/4", Policy: selective("A2", fspec(half), fspec(quarter))},
		{ID: "A3", Label: "LC: fetch/2, VLC: fetch=0", Policy: selective("A3", fspec(half), fspec(stall))},
		{ID: "A4", Label: "LC: fetch/4, VLC: fetch/4", Policy: selective("A4", fspec(quarter), fspec(quarter))},
		{ID: "A5", Label: "LC: fetch/4, VLC: fetch=0", Policy: selective("A5", fspec(quarter), fspec(stall))},
		{ID: "A6", Label: "LC: fetch=0, VLC: fetch=0", Policy: selective("A6", fspec(stall), fspec(stall))},
	}
	for i := range exps {
		exps[i].Estimator = EstBPRU
	}
	return append(exps, pipelineGating("A7"))
}

// DecodeExperiments returns Figure 4's B-series: decode throttling alone and
// combined with fetch throttling. Every experiment stalls fetch on VLC
// branches (the best VLC action from the A-series analysis).
func DecodeExperiments() []Experiment {
	full := core.RateFull
	half := core.RateHalf
	quarter := core.RateQuarter
	stall := core.RateStall
	vlc := fspec(stall)
	exps := []Experiment{
		{ID: "B1", Label: "LC: fetch/1+decode/2", Policy: selective("B1", fdspec(full, half), vlc)},
		{ID: "B2", Label: "LC: fetch/1+decode/4", Policy: selective("B2", fdspec(full, quarter), vlc)},
		{ID: "B3", Label: "LC: fetch/1+decode=0", Policy: selective("B3", fdspec(full, stall), vlc)},
		{ID: "B4", Label: "LC: fetch/2+decode/2", Policy: selective("B4", fdspec(half, half), vlc)},
		{ID: "B5", Label: "LC: fetch/2+decode/4", Policy: selective("B5", fdspec(half, quarter), vlc)},
		{ID: "B6", Label: "LC: fetch/2+decode=0", Policy: selective("B6", fdspec(half, stall), vlc)},
		{ID: "B7", Label: "LC: fetch/4+decode/4", Policy: selective("B7", fdspec(quarter, quarter), vlc)},
		{ID: "B8", Label: "LC: fetch/4+decode=0", Policy: selective("B8", fdspec(quarter, stall), vlc)},
	}
	for i := range exps {
		exps[i].Estimator = EstBPRU
	}
	return append(exps, pipelineGating("B9"))
}

// SelectionExperiments returns Figure 5's C-series: the best fetch/decode
// combinations with and without the novel selection-throttling heuristic.
func SelectionExperiments() []Experiment {
	half := core.RateHalf
	quarter := core.RateQuarter
	stall := core.RateStall
	vlc := fspec(stall)
	exps := []Experiment{
		{ID: "C1", Label: "VLC: fet=0, LC: fet/4", Policy: selective("C1", fspec(quarter), vlc)},
		{ID: "C2", Label: "VLC: fet=0, LC: fet/4+noselect", Policy: selective("C2", nsel(fspec(quarter)), vlc)},
		{ID: "C3", Label: "VLC: fet=0, LC: fet/2+dec/4", Policy: selective("C3", fdspec(half, quarter), vlc)},
		{ID: "C4", Label: "VLC: fet=0, LC: fet/2+dec/4+noselect", Policy: selective("C4", nsel(fdspec(half, quarter)), vlc)},
		{ID: "C5", Label: "VLC: fet=0, LC: fet/4+dec/4", Policy: selective("C5", fdspec(quarter, quarter), vlc)},
		{ID: "C6", Label: "VLC: fet=0, LC: fet/4+dec/4+noselect", Policy: selective("C6", nsel(fdspec(quarter, quarter)), vlc)},
	}
	for i := range exps {
		exps[i].Estimator = EstBPRU
	}
	return append(exps, pipelineGating("C7"))
}

// BestExperiment returns C2, the paper's recommended configuration: VLC
// stalls fetch, LC quarters fetch bandwidth and sets no-select.
func BestExperiment() Experiment {
	for _, e := range SelectionExperiments() {
		if e.ID == "C2" {
			return e
		}
	}
	panic("sim: C2 missing") // invariant: SelectionExperiments defines C2
}

// ExperimentByID finds an experiment in any of the standard series.
func ExperimentByID(id string) (Experiment, bool) {
	for _, set := range [][]Experiment{
		OracleExperiments(), FetchExperiments(), DecodeExperiments(), SelectionExperiments(),
	} {
		for _, e := range set {
			if e.ID == id {
				return e, true
			}
		}
	}
	return Experiment{}, false
}

// Apply stamps the experiment's policy, estimator, and oracle mode onto a
// base configuration.
func (e Experiment) Apply(cfg Config) Config {
	cfg.Policy = e.Policy
	if e.Estimator != "" {
		cfg.Estimator = e.Estimator
	}
	cfg.Pipe.Oracle = e.Oracle
	return cfg
}
