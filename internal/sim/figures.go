package sim

import (
	"context"
	"fmt"
	"io"
	"sort"

	"selthrottle/internal/power"
	"selthrottle/internal/prog"
)

// Options controls a figure-level reproduction run.
type Options struct {
	Instructions uint64
	Warmup       uint64
	Depth        int // total pipeline stages (0 = paper baseline, 14)
	PredBytes    int // 0 = 8 KB
	ConfBytes    int // 0 = 8 KB
	Profiles     []prog.Profile

	// LegacyFrontEnd runs every simulation on the two-ring reference front
	// end instead of the fused delay line (diagnostics; output must be
	// byte-identical — the identity tests and the commands' flag exist to
	// prove exactly that).
	LegacyFrontEnd bool

	// LegacyEventLedger runs every simulation on the per-instruction power
	// attribution reference instead of the epoch ledgers (diagnostics;
	// output must be byte-identical, like LegacyFrontEnd).
	LegacyEventLedger bool

	// Supervise is the per-point run policy (deadline, retries, fault
	// hooks). The zero value isolates failures without deadlines or
	// retries; healthy grids behave identically with or without it.
	Supervise Supervisor
}

// withDefaults fills unset options with paper-baseline values.
func (o Options) withDefaults() Options {
	if o.Instructions == 0 {
		o.Instructions = prog.DefaultInstructions
	}
	if o.Warmup == 0 {
		o.Warmup = o.Instructions / 4
	}
	if o.Depth == 0 {
		o.Depth = 14
	}
	if o.PredBytes == 0 {
		o.PredBytes = 8 << 10
	}
	if o.ConfBytes == 0 {
		o.ConfBytes = 8 << 10
	}
	if o.Profiles == nil {
		o.Profiles = prog.Profiles()
	}
	return o
}

// BaseConfig resolves the options against the paper defaults and returns
// the baseline run configuration they imply — the exported entry the sweep
// service uses to turn request parameters into a Config.
func (o Options) BaseConfig() Config {
	return o.withDefaults().baseConfig()
}

// baseConfig builds the run configuration implied by the options.
func (o Options) baseConfig() Config {
	cfg := Default()
	cfg.Pipe.SetDepth(o.Depth)
	cfg.Pipe.LegacyFrontEnd = o.LegacyFrontEnd
	cfg.Pipe.LegacyEventLedger = o.LegacyEventLedger
	cfg.PredBytes = o.PredBytes
	cfg.ConfBytes = o.ConfBytes
	cfg.Instructions = o.Instructions
	cfg.Warmup = o.Warmup
	return cfg
}

// ExperimentRow is one experiment's outcome across all benchmarks.
type ExperimentRow struct {
	Experiment Experiment
	PerBench   []Comparison // profile order
	Average    Comparison
}

// FigureResult is the full reproduction of one figure. On a healthy grid
// Statuses and Failures are nil; when supervision isolated failed points,
// Statuses holds the per-point outcomes (config-major: point c*NP+j is
// configuration c — 0 the baseline, c>0 experiment c-1 — on profile j) and
// Failures the report of the failed points. Comparisons involving a failed
// cell (or a failed baseline column) read as zero and are excluded from the
// row averages.
type FigureResult struct {
	Name      string
	Options   Options
	Baselines []Result // per profile
	Rows      []ExperimentRow

	Statuses []PointStatus  // per grid point, config-major; nil when all OK
	Failures []PointFailure // failed points; nil when all OK

	// Points is the raw config-major result grid (Baselines is its first
	// profile-count slots). It is what partitioned runs exchange: a merge of
	// K partial figures recombines their Points/point statuses and
	// re-assembles Rows, so the merged figure is built from the same raw
	// substrate as a single-process run. Cells whose status is failed or
	// unclaimed hold zero Results.
	Points []Result
}

// RunFigure reproduces a bar-chart figure: it runs the baseline and every
// experiment on every profile, producing the paper's four metric groups.
// It is RunFigureE under a background context; see RunFigureE for the grid
// execution and failure-isolation semantics.
func RunFigure(name string, exps []Experiment, opts Options) *FigureResult {
	return RunFigureE(context.Background(), name, exps, opts)
}

// RunFigureE reproduces a figure under ctx with per-point failure isolation.
// The whole (configuration x benchmark) grid is flattened into one job list
// and executed on the shared pool of reusable Runners, so parallelism spans
// the full figure without constructing a simulator per cell; grid cells
// already in the process-wide result cache (shared baselines, repeated
// experiments, earlier figures) are served without re-simulation. Output is
// independent of GOMAXPROCS: every run is deterministic and slot-addressed.
//
// Every point runs under opts.Supervise: a failed point becomes a per-point
// status and a Failures entry instead of a process-killing panic, and the
// healthy points are returned bit-identical to a clean run. Canceling ctx
// stops in-flight points cooperatively and short-circuits the rest; their
// statuses carry the context error.
func RunFigureE(ctx context.Context, name string, exps []Experiment, opts Options) *FigureResult {
	opts = opts.withDefaults()
	sup := &opts.Supervise
	cfgs := figureConfigs(opts, exps)
	np := len(opts.Profiles)
	all := make([]Result, len(cfgs)*np)
	statuses := make([]PointStatus, len(all))
	runJobs(len(all), func(r *Runner, k int) {
		all[k], statuses[k] = sup.runPoint(ctx, r, cfgs[k/np], opts.Profiles[k%np])
	})
	return assembleFigure(name, exps, opts, all, statuses)
}

// figureConfigs expands a figure's experiment list into its config-major
// configuration axis: the baseline first, then each experiment applied to
// it. opts must already be defaulted.
func figureConfigs(opts Options, exps []Experiment) []Config {
	base := opts.baseConfig()
	cfgs := make([]Config, 1+len(exps))
	cfgs[0] = base
	for i, e := range exps {
		cfgs[i+1] = e.Apply(base)
	}
	return cfgs
}

// assembleFigure builds a FigureResult from the raw config-major result and
// status grids — the single assembly path shared by single-process runs,
// partitioned runs, and the coordinator's merge of per-worker partials, so
// all three degrade identically. opts must already be defaulted; all and
// statuses are (1+len(exps))*len(opts.Profiles) slots, config-major.
func assembleFigure(name string, exps []Experiment, opts Options, all []Result, statuses []PointStatus) *FigureResult {
	np := len(opts.Profiles)
	fr := &FigureResult{Name: name, Options: opts}
	fr.Points = all
	fr.Baselines = all[:np]
	nfail := 0
	for _, st := range statuses {
		if !st.OK() {
			nfail++
		}
	}
	if nfail > 0 {
		fr.Statuses = statuses
		fr.Failures = make([]PointFailure, 0, nfail)
		for k, st := range statuses {
			if st.OK() {
				continue
			}
			expID := "baseline"
			if c := k / np; c > 0 {
				expID = exps[c-1].ID
			}
			fr.Failures = append(fr.Failures, PointFailure{
				Figure:     name,
				Experiment: expID,
				Benchmark:  opts.Profiles[k%np].Name,
				Attempts:   st.Attempts,
				Err:        st.Err,
			})
		}
	}
	fr.Rows = make([]ExperimentRow, len(exps))
	for i, e := range exps {
		results := all[(i+1)*np : (i+2)*np]
		row := ExperimentRow{Experiment: e, PerBench: make([]Comparison, np)}
		for j, r := range results {
			if nfail > 0 && (!statuses[j].OK() || !statuses[(i+1)*np+j].OK()) {
				row.PerBench[j] = Comparison{Benchmark: opts.Profiles[j].Name}
				continue
			}
			row.PerBench[j] = Compare(fr.Baselines[j], r)
		}
		if nfail == 0 {
			row.Average = AverageComparison(row.PerBench)
		} else {
			// Degraded grid: average only the cells whose experiment run
			// AND baseline column both succeeded — a failed cell's zero
			// comparison is a placeholder, not a sample.
			ok := make([]Comparison, 0, np)
			for j := range row.PerBench {
				if statuses[j].OK() && statuses[(i+1)*np+j].OK() {
					ok = append(ok, row.PerBench[j])
				}
			}
			row.Average = AverageComparison(ok)
		}
		fr.Rows[i] = row
	}
	return fr
}

// WriteFailures prints the figure's failure report (one line per failed
// point, with its diagnostic error) to w; a healthy figure prints nothing.
func (fr *FigureResult) WriteFailures(w io.Writer) {
	for _, f := range fr.Failures {
		fmt.Fprintf(w, "FAILED %s\n", f)
	}
}

// Row returns the row for an experiment ID, if present.
func (fr *FigureResult) Row(id string) (ExperimentRow, bool) {
	for _, r := range fr.Rows {
		if r.Experiment.ID == id {
			return r, true
		}
	}
	return ExperimentRow{}, false
}

// SweepPoint is one x-axis point of a sensitivity sweep (Figures 6 and 7):
// the average metrics of the best experiment (C2) against the matching
// baseline. Failures is nil on a healthy point; under supervision it lists
// the grid cells that failed (their contribution is excluded from Average).
type SweepPoint struct {
	X        int // depth in stages, or table size in KB
	Average  Comparison
	Failures []PointFailure
}

// DepthSweep reproduces Figure 6: pipeline depths 6..28 (step 2), C2 vs the
// baseline at each depth. It is DepthSweepE under a background context.
func DepthSweep(opts Options, depths []int) []SweepPoint {
	return DepthSweepE(context.Background(), opts, depths)
}

// DepthSweepE reproduces Figure 6 under ctx with per-point failure
// isolation. Points run back-to-back on the shared Runner pool (each point's
// figure already fans out across the pool), so the sweep reuses simulator
// instances instead of stacking one pool per point.
func DepthSweepE(ctx context.Context, opts Options, depths []int) []SweepPoint {
	if depths == nil {
		for d := 6; d <= 28; d += 2 {
			depths = append(depths, d)
		}
	}
	points := make([]SweepPoint, len(depths))
	for i, d := range depths {
		o := opts
		o.Depth = d
		fr := RunFigureE(ctx, fmt.Sprintf("depth-%d", d), []Experiment{BestExperiment()}, o)
		points[i] = SweepPoint{X: d, Average: fr.Rows[0].Average, Failures: fr.Failures}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].X < points[j].X })
	return points
}

// SizeSweep reproduces Figure 7: total predictor+estimator budgets of 8, 16,
// 32, and 64 KB, split half/half, C2 vs a baseline using the same predictor.
// It is SizeSweepE under a background context.
func SizeSweep(opts Options, totalsKB []int) []SweepPoint {
	return SizeSweepE(context.Background(), opts, totalsKB)
}

// SizeSweepE reproduces Figure 7 under ctx with per-point failure isolation.
// Like DepthSweepE, points execute back-to-back on the shared Runner pool.
func SizeSweepE(ctx context.Context, opts Options, totalsKB []int) []SweepPoint {
	if totalsKB == nil {
		totalsKB = []int{8, 16, 32, 64}
	}
	points := make([]SweepPoint, len(totalsKB))
	for i, kb := range totalsKB {
		o := opts
		o.PredBytes = kb * 1024 / 2
		o.ConfBytes = kb * 1024 / 2
		fr := RunFigureE(ctx, fmt.Sprintf("size-%dKB", kb), []Experiment{BestExperiment()}, o)
		points[i] = SweepPoint{X: kb, Average: fr.Rows[0].Average, Failures: fr.Failures}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].X < points[j].X })
	return points
}

// Table1Result is the reproduction of Table 1: the average baseline power
// breakdown and the fraction of overall power wasted by mis-speculated
// instructions, per unit.
type Table1Result struct {
	TotalWatts   float64
	Shares       [power.NumUnits]float64 // fraction of overall power per unit
	WastedShares [power.NumUnits]float64 // fraction of overall power wasted, per unit
	WastedTotal  float64                 // overall wasted fraction (paper: 27.9 %)
	Utilization  [power.NumUnits]float64 // measured, for calibration
	Results      []Result
}

// RunTable1 reproduces Table 1 from baseline runs across the profiles. It
// is the fail-fast wrapper around RunTable1E.
func RunTable1(opts Options) *Table1Result {
	t1, err := RunTable1E(context.Background(), opts)
	if err != nil {
		panic(err) // fail-fast: legacy contract, typed *RunError for Guard
	}
	return t1
}

// RunTable1E reproduces Table 1 under ctx. The table's averages are
// meaningless with holes, so unlike the figure grids it is all-or-nothing:
// the first failed point's error is returned (context errors included) and
// the table is nil.
func RunTable1E(ctx context.Context, opts Options) (*Table1Result, error) {
	opts = opts.withDefaults()
	results, statuses := RunAllE(ctx, opts.baseConfig(), opts.Profiles)
	if err := firstError(statuses); err != nil {
		return nil, err
	}
	out := &Table1Result{Results: results}
	n := float64(len(results))
	params := power.DefaultParams()
	for _, r := range results {
		out.TotalWatts += r.AvgPower / n
		for u := power.Unit(0); u < power.NumUnits; u++ {
			out.Shares[u] += r.Power.UnitEnergy[u] / r.Power.TotalEnergy / n
			out.WastedShares[u] += r.Power.UnitWasted[u] / r.Power.TotalEnergy / n
		}
		out.WastedTotal += r.Power.WastedEnergy / r.Power.TotalEnergy / n
		for u := power.Unit(0); u < power.NumUnits; u++ {
			// Recover the run's average utilization from its energy share.
			_ = params
			out.Utilization[u] += utilOf(r, u) / n
		}
	}
	return out, nil
}

// firstError returns the first failed status's error, if any.
func firstError(statuses []PointStatus) error {
	for _, st := range statuses {
		if !st.OK() {
			return st.Err
		}
	}
	return nil
}

// utilOf back-computes a unit's average utilization from the energy report.
func utilOf(r Result, u power.Unit) float64 {
	params := power.DefaultParams()
	if r.Power.Cycles == 0 {
		return 0
	}
	cyc := float64(r.Power.Cycles)
	e := r.Power.UnitEnergy[u]
	// e = max*(idle + (1-idle)*util)*cyc/f  =>  util = ...
	max := params.MaxWatts[u]
	if max == 0 {
		return 0
	}
	x := e * params.FreqHz / (max * cyc)
	return (x - params.IdleFrac) / (1 - params.IdleFrac)
}

// Table2Row is one benchmark's characteristics: the paper's reported values
// next to the synthetic profile's measured behaviour.
type Table2Row struct {
	Profile        prog.Profile
	MeasuredMiss   float64 // committed-branch misprediction rate
	BranchFraction float64 // conditional branches / committed instructions
	IPC            float64
}

// RunTable2 reproduces Table 2 by measuring each profile under the
// baseline. It is the fail-fast wrapper around RunTable2E.
func RunTable2(opts Options) []Table2Row {
	rows, err := RunTable2E(context.Background(), opts)
	if err != nil {
		panic(err) // fail-fast: legacy contract, typed *RunError for Guard
	}
	return rows
}

// RunTable2E reproduces Table 2 under ctx, all-or-nothing like RunTable1E.
func RunTable2E(ctx context.Context, opts Options) ([]Table2Row, error) {
	opts = opts.withDefaults()
	results, statuses := RunAllE(ctx, opts.baseConfig(), opts.Profiles)
	if err := firstError(statuses); err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(results))
	for i, r := range results {
		rows[i] = Table2Row{
			Profile:        opts.Profiles[i],
			MeasuredMiss:   r.MissRate,
			BranchFraction: float64(r.Stats.CondBranches) / float64(r.Stats.Committed),
			IPC:            r.IPC,
		}
	}
	return rows, nil
}

// ConfidenceResult reports an estimator's measured operating point.
type ConfidenceResult struct {
	Estimator EstimatorKind
	SPEC      float64
	PVN       float64
	LowFrac   float64
}

// RunConfidence measures SPEC/PVN for both estimators across the profiles
// (paper §4.3: BPRU ≈ 60 %/45 %, JRS ≈ 90 %/24 %). It is the fail-fast
// wrapper around RunConfidenceE.
func RunConfidence(opts Options) []ConfidenceResult {
	out, err := RunConfidenceE(context.Background(), opts)
	if err != nil {
		panic(err) // fail-fast: legacy contract, typed *RunError for Guard
	}
	return out
}

// RunConfidenceE measures SPEC/PVN under ctx, all-or-nothing like
// RunTable1E.
func RunConfidenceE(ctx context.Context, opts Options) ([]ConfidenceResult, error) {
	opts = opts.withDefaults()
	out := make([]ConfidenceResult, 0, 2)
	for _, kind := range []EstimatorKind{EstBPRU, EstJRS} {
		cfg := opts.baseConfig()
		cfg.Estimator = kind
		results, statuses := RunAllE(ctx, cfg, opts.Profiles)
		if err := firstError(statuses); err != nil {
			return nil, err
		}
		var cr ConfidenceResult
		cr.Estimator = kind
		n := float64(len(results))
		for _, r := range results {
			cr.SPEC += r.Stats.Quality.SPEC() / n
			cr.PVN += r.Stats.Quality.PVN() / n
			cr.LowFrac += r.Stats.Quality.LowFrac() / n
		}
		out = append(out, cr)
	}
	return out, nil
}
