package sim

import (
	"fmt"
	"sort"

	"selthrottle/internal/power"
	"selthrottle/internal/prog"
)

// Options controls a figure-level reproduction run.
type Options struct {
	Instructions uint64
	Warmup       uint64
	Depth        int // total pipeline stages (0 = paper baseline, 14)
	PredBytes    int // 0 = 8 KB
	ConfBytes    int // 0 = 8 KB
	Profiles     []prog.Profile

	// LegacyFrontEnd runs every simulation on the two-ring reference front
	// end instead of the fused delay line (diagnostics; output must be
	// byte-identical — the identity tests and the commands' flag exist to
	// prove exactly that).
	LegacyFrontEnd bool

	// LegacyEventLedger runs every simulation on the per-instruction power
	// attribution reference instead of the epoch ledgers (diagnostics;
	// output must be byte-identical, like LegacyFrontEnd).
	LegacyEventLedger bool
}

// withDefaults fills unset options with paper-baseline values.
func (o Options) withDefaults() Options {
	if o.Instructions == 0 {
		o.Instructions = prog.DefaultInstructions
	}
	if o.Warmup == 0 {
		o.Warmup = o.Instructions / 4
	}
	if o.Depth == 0 {
		o.Depth = 14
	}
	if o.PredBytes == 0 {
		o.PredBytes = 8 << 10
	}
	if o.ConfBytes == 0 {
		o.ConfBytes = 8 << 10
	}
	if o.Profiles == nil {
		o.Profiles = prog.Profiles()
	}
	return o
}

// baseConfig builds the run configuration implied by the options.
func (o Options) baseConfig() Config {
	cfg := Default()
	cfg.Pipe.SetDepth(o.Depth)
	cfg.Pipe.LegacyFrontEnd = o.LegacyFrontEnd
	cfg.Pipe.LegacyEventLedger = o.LegacyEventLedger
	cfg.PredBytes = o.PredBytes
	cfg.ConfBytes = o.ConfBytes
	cfg.Instructions = o.Instructions
	cfg.Warmup = o.Warmup
	return cfg
}

// ExperimentRow is one experiment's outcome across all benchmarks.
type ExperimentRow struct {
	Experiment Experiment
	PerBench   []Comparison // profile order
	Average    Comparison
}

// FigureResult is the full reproduction of one figure.
type FigureResult struct {
	Name      string
	Options   Options
	Baselines []Result // per profile
	Rows      []ExperimentRow
}

// RunFigure reproduces a bar-chart figure: it runs the baseline and every
// experiment on every profile, producing the paper's four metric groups.
// The whole (configuration x benchmark) grid is flattened into one job list
// and executed on the shared pool of reusable Runners, so parallelism spans
// the full figure without constructing a simulator per cell; grid cells
// already in the process-wide result cache (shared baselines, repeated
// experiments, earlier figures) are served without re-simulation. Output is
// independent of GOMAXPROCS: every run is deterministic and slot-addressed.
func RunFigure(name string, exps []Experiment, opts Options) *FigureResult {
	opts = opts.withDefaults()
	base := opts.baseConfig()

	cfgs := make([]Config, 1+len(exps))
	cfgs[0] = base
	for i, e := range exps {
		cfgs[i+1] = e.Apply(base)
	}
	np := len(opts.Profiles)
	all := make([]Result, len(cfgs)*np)
	runJobs(len(all), func(r *Runner, k int) {
		all[k] = runCached(r, cfgs[k/np], opts.Profiles[k%np])
	})

	fr := &FigureResult{Name: name, Options: opts}
	fr.Baselines = all[:np]
	fr.Rows = make([]ExperimentRow, len(exps))
	for i, e := range exps {
		results := all[(i+1)*np : (i+2)*np]
		row := ExperimentRow{Experiment: e, PerBench: make([]Comparison, np)}
		for j, r := range results {
			row.PerBench[j] = Compare(fr.Baselines[j], r)
		}
		row.Average = AverageComparison(row.PerBench)
		fr.Rows[i] = row
	}
	return fr
}

// Row returns the row for an experiment ID, if present.
func (fr *FigureResult) Row(id string) (ExperimentRow, bool) {
	for _, r := range fr.Rows {
		if r.Experiment.ID == id {
			return r, true
		}
	}
	return ExperimentRow{}, false
}

// SweepPoint is one x-axis point of a sensitivity sweep (Figures 6 and 7):
// the average metrics of the best experiment (C2) against the matching
// baseline.
type SweepPoint struct {
	X       int // depth in stages, or table size in KB
	Average Comparison
}

// DepthSweep reproduces Figure 6: pipeline depths 6..28 (step 2), C2 vs the
// baseline at each depth. Points run back-to-back on the shared Runner pool
// (each point's figure already fans out across the pool), so the sweep
// reuses simulator instances instead of stacking one pool per point.
func DepthSweep(opts Options, depths []int) []SweepPoint {
	if depths == nil {
		for d := 6; d <= 28; d += 2 {
			depths = append(depths, d)
		}
	}
	points := make([]SweepPoint, len(depths))
	for i, d := range depths {
		o := opts
		o.Depth = d
		fr := RunFigure(fmt.Sprintf("depth-%d", d), []Experiment{BestExperiment()}, o)
		points[i] = SweepPoint{X: d, Average: fr.Rows[0].Average}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].X < points[j].X })
	return points
}

// SizeSweep reproduces Figure 7: total predictor+estimator budgets of 8, 16,
// 32, and 64 KB, split half/half, C2 vs a baseline using the same predictor.
// Like DepthSweep, points execute back-to-back on the shared Runner pool.
func SizeSweep(opts Options, totalsKB []int) []SweepPoint {
	if totalsKB == nil {
		totalsKB = []int{8, 16, 32, 64}
	}
	points := make([]SweepPoint, len(totalsKB))
	for i, kb := range totalsKB {
		o := opts
		o.PredBytes = kb * 1024 / 2
		o.ConfBytes = kb * 1024 / 2
		fr := RunFigure(fmt.Sprintf("size-%dKB", kb), []Experiment{BestExperiment()}, o)
		points[i] = SweepPoint{X: kb, Average: fr.Rows[0].Average}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].X < points[j].X })
	return points
}

// Table1Result is the reproduction of Table 1: the average baseline power
// breakdown and the fraction of overall power wasted by mis-speculated
// instructions, per unit.
type Table1Result struct {
	TotalWatts   float64
	Shares       [power.NumUnits]float64 // fraction of overall power per unit
	WastedShares [power.NumUnits]float64 // fraction of overall power wasted, per unit
	WastedTotal  float64                 // overall wasted fraction (paper: 27.9 %)
	Utilization  [power.NumUnits]float64 // measured, for calibration
	Results      []Result
}

// RunTable1 reproduces Table 1 from baseline runs across the profiles.
func RunTable1(opts Options) *Table1Result {
	opts = opts.withDefaults()
	results := RunAll(opts.baseConfig(), opts.Profiles)
	out := &Table1Result{Results: results}
	n := float64(len(results))
	params := power.DefaultParams()
	for _, r := range results {
		out.TotalWatts += r.AvgPower / n
		for u := power.Unit(0); u < power.NumUnits; u++ {
			out.Shares[u] += r.Power.UnitEnergy[u] / r.Power.TotalEnergy / n
			out.WastedShares[u] += r.Power.UnitWasted[u] / r.Power.TotalEnergy / n
		}
		out.WastedTotal += r.Power.WastedEnergy / r.Power.TotalEnergy / n
		for u := power.Unit(0); u < power.NumUnits; u++ {
			// Recover the run's average utilization from its energy share.
			_ = params
			out.Utilization[u] += utilOf(r, u) / n
		}
	}
	return out
}

// utilOf back-computes a unit's average utilization from the energy report.
func utilOf(r Result, u power.Unit) float64 {
	params := power.DefaultParams()
	if r.Power.Cycles == 0 {
		return 0
	}
	cyc := float64(r.Power.Cycles)
	e := r.Power.UnitEnergy[u]
	// e = max*(idle + (1-idle)*util)*cyc/f  =>  util = ...
	max := params.MaxWatts[u]
	if max == 0 {
		return 0
	}
	x := e * params.FreqHz / (max * cyc)
	return (x - params.IdleFrac) / (1 - params.IdleFrac)
}

// Table2Row is one benchmark's characteristics: the paper's reported values
// next to the synthetic profile's measured behaviour.
type Table2Row struct {
	Profile        prog.Profile
	MeasuredMiss   float64 // committed-branch misprediction rate
	BranchFraction float64 // conditional branches / committed instructions
	IPC            float64
}

// RunTable2 reproduces Table 2 by measuring each profile under the baseline.
func RunTable2(opts Options) []Table2Row {
	opts = opts.withDefaults()
	results := RunAll(opts.baseConfig(), opts.Profiles)
	rows := make([]Table2Row, len(results))
	for i, r := range results {
		rows[i] = Table2Row{
			Profile:        opts.Profiles[i],
			MeasuredMiss:   r.MissRate,
			BranchFraction: float64(r.Stats.CondBranches) / float64(r.Stats.Committed),
			IPC:            r.IPC,
		}
	}
	return rows
}

// ConfidenceResult reports an estimator's measured operating point.
type ConfidenceResult struct {
	Estimator EstimatorKind
	SPEC      float64
	PVN       float64
	LowFrac   float64
}

// RunConfidence measures SPEC/PVN for both estimators across the profiles
// (paper §4.3: BPRU ≈ 60 %/45 %, JRS ≈ 90 %/24 %).
func RunConfidence(opts Options) []ConfidenceResult {
	opts = opts.withDefaults()
	out := make([]ConfidenceResult, 0, 2)
	for _, kind := range []EstimatorKind{EstBPRU, EstJRS} {
		cfg := opts.baseConfig()
		cfg.Estimator = kind
		results := RunAll(cfg, opts.Profiles)
		var cr ConfidenceResult
		cr.Estimator = kind
		n := float64(len(results))
		for _, r := range results {
			cr.SPEC += r.Stats.Quality.SPEC() / n
			cr.PVN += r.Stats.Quality.PVN() / n
			cr.LowFrac += r.Stats.Quality.LowFrac() / n
		}
		out = append(out, cr)
	}
	return out
}
