package sim

// Wire transport of results for the networked fleet. A remotely computed
// Result crosses the network as the store codec's exact binary framing
// (magic, version, CRC-32C), NOT as JSON numbers: the codec round-trips
// every float bit-identically (proven by the store's fuzz suite), while a
// decimal rendering would be a second, lossier serialization whose
// round-trip error could break the byte-identity guarantee the whole
// pipeline is built on. The same bytes that would land in the store's
// entry file are what travel; corruption in transit fails the CRC exactly
// as on-disk corruption does.

import (
	"selthrottle/internal/prog"
	"selthrottle/internal/store"
)

// EncodeResultEntry renders a Result as store-codec bytes (the persisted
// payload: Config and Benchmark are identity, stripped as always).
func EncodeResultEntry(r *Result) []byte {
	e := resultEntry(r)
	return store.EncodeEntry(&e)
}

// DecodeResultEntry decodes store-codec bytes back into a Result. The
// caller stamps Config and Benchmark. Corrupt or truncated bytes return
// the codec's typed error (store.ErrCorrupt).
func DecodeResultEntry(data []byte) (Result, error) {
	e, err := store.DecodeEntry(data)
	if err != nil {
		return Result{}, err
	}
	return entryResult(&e), nil
}

// Inject publishes an externally computed Result for (cfg, profile) into
// the cache: the memory tier immediately, the disk tier write-through. It
// reports whether the point was newly inserted; an existing entry —
// completed or in flight — is left untouched (false), because a local
// leader may already be computing it and its waiters must be released by
// that leader, never short-circuited. Injection trusts the caller that res
// really is the point's pure result; in the fleet that trust is grounded
// in content addressing (the remote worker computed the same key).
func (c *ResultCache) Inject(cfg Config, profile prog.Profile, res Result) bool {
	key := cacheKey{canonicalConfig(cfg), canonicalProfile(profile)}
	e := &cacheEntry{key: key, done: make(chan struct{}), res: res}
	c.mu.Lock()
	if _, exists := c.entries[key]; exists {
		c.mu.Unlock()
		return false
	}
	c.entries[key] = e
	c.publishLocked(e)
	c.mu.Unlock()
	close(e.done)
	if d := c.disk.Load(); d != nil {
		ent := resultEntry(&res)
		if derr := d.Put(diskKeyOf(key), &ent); derr != nil {
			c.diskErrs.Add(1)
		} else {
			c.diskPuts.Add(1)
		}
	}
	return true
}

// InjectResult publishes an externally computed Result into the
// process-wide cache (see ResultCache.Inject).
func InjectResult(cfg Config, profile prog.Profile, res Result) bool {
	return processCache.Inject(cfg, profile, res)
}
