package sim

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"selthrottle/internal/power"
)

// WriteFigure renders a figure reproduction as four metric tables
// (speedup, power savings, energy savings, E-D improvement), matching the
// paper's four plot groups with one column per benchmark plus the average.
func WriteFigure(w io.Writer, fr *FigureResult) {
	fmt.Fprintf(w, "== %s  (depth=%d, pred=%dKB, conf=%dKB, %d instr/bench)\n",
		fr.Name, fr.Options.Depth, fr.Options.PredBytes/1024,
		fr.Options.ConfBytes/1024, fr.Options.Instructions)
	for _, r := range fr.Rows {
		fmt.Fprintf(w, "   %-4s %s\n", r.Experiment.ID+":", r.Experiment.Label)
	}

	metric := func(title string, get func(Comparison) float64, format string) {
		fmt.Fprintf(w, "\n-- %s\n", title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "exp")
		for _, b := range fr.Baselines {
			fmt.Fprintf(tw, "\t%s", b.Benchmark)
		}
		fmt.Fprint(tw, "\tAVG\n")
		for _, r := range fr.Rows {
			fmt.Fprint(tw, r.Experiment.ID)
			for _, c := range r.PerBench {
				fmt.Fprintf(tw, "\t"+format, get(c))
			}
			fmt.Fprintf(tw, "\t"+format+"\n", get(r.Average))
		}
		tw.Flush()
	}
	metric("Speedup (x; <1 = slowdown)", func(c Comparison) float64 { return c.Speedup }, "%.3f")
	metric("Power savings (%)", func(c Comparison) float64 { return c.PowerSaving }, "%.1f")
	metric("Energy savings (%)", func(c Comparison) float64 { return c.EnergySaving }, "%.1f")
	metric("Energy-Delay improvement (%)", func(c Comparison) float64 { return c.EDImprovement }, "%.1f")
}

// WriteSweep renders a sensitivity sweep (Figures 6/7).
func WriteSweep(w io.Writer, title, xlabel string, points []SweepPoint) {
	fmt.Fprintf(w, "== %s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tspeedup\tpower sav%%\tenergy sav%%\tE-D improv%%\n", xlabel)
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%.3f\t%.1f\t%.1f\t%.1f\n",
			p.X, p.Average.Speedup, p.Average.PowerSaving,
			p.Average.EnergySaving, p.Average.EDImprovement)
	}
	tw.Flush()
}

// WriteTable1 renders the Table 1 reproduction with the paper's values
// alongside for direct comparison.
func WriteTable1(w io.Writer, t *Table1Result) {
	fmt.Fprintf(w, "== Table 1: power breakdown and fraction wasted by mis-speculated instructions\n")
	fmt.Fprintf(w, "overall avg power: %.1f W (paper: %.1f W)\n", t.TotalWatts, power.TotalWatts)
	fmt.Fprintf(w, "overall wasted:    %.1f%% (paper: 27.9%%)\n\n", 100*t.WastedTotal)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "unit\tshare%\tpaper%\twasted% of overall\tpaper%\n")
	for u := power.Unit(0); u < power.NumUnits; u++ {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\n",
			u, 100*t.Shares[u], 100*power.Table1Shares[u],
			100*t.WastedShares[u], 100*power.Table1WastedShares[u])
	}
	tw.Flush()
}

// WriteTable2 renders the Table 2 reproduction.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "== Table 2: benchmark characteristics (synthetic profiles vs paper)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark\tpaper input\tpaper Minstr\tpaper Mbranch\tgshare miss% (meas)\tgshare miss% (paper)\tbranch frac\tIPC\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.1f\t%.1f\t%.3f\t%.2f\n",
			r.Profile.Name, r.Profile.PaperInput, r.Profile.PaperMInsts,
			r.Profile.PaperMBranch, 100*r.MeasuredMiss, r.Profile.PaperMissPct,
			r.BranchFraction, r.IPC)
	}
	tw.Flush()
}

// WriteTable3 renders the simulated-processor configuration (Table 3).
func WriteTable3(w io.Writer, cfg Config) {
	p := cfg.Pipe
	fmt.Fprintln(w, "== Table 3: configuration of the simulated processor")
	rows := [][2]string{
		{"Fetch engine", fmt.Sprintf("up to %d instr/cycle, %d taken branches, %d extra cycles of misprediction penalty",
			p.FetchWidth, p.MaxTakenPerCycle, p.MispredictExtra)},
		{"BTB", fmt.Sprintf("%d entries, %d-way", p.BTBEntries, p.BTBWays)},
		{"Execution engine", fmt.Sprintf("issues up to %d instr/cycle, %d-entry window, %d-entry load/store queue",
			p.IssueWidth, p.WindowSize, p.LSQSize)},
		{"Functional units", "8 int alu, 2 int mult, 2 mem ports, 8 FP alu, 1 FP mult"},
		{"L1 I-cache", fmt.Sprintf("%d KB, %d-way, %d B/line, %d cycle hit",
			p.Mem.L1ISize>>10, p.Mem.L1IWays, p.Mem.L1ILine, p.Mem.L1HitLat)},
		{"L1 D-cache", fmt.Sprintf("%d KB, %d-way, %d B/line, %d cycle hit",
			p.Mem.L1DSize>>10, p.Mem.L1DWays, p.Mem.L1DLine, p.Mem.L1HitLat)},
		{"L2 unified", fmt.Sprintf("%d KB, %d-way, %d B/line, %d cycle hit, %d cycle miss",
			p.Mem.L2Size>>10, p.Mem.L2Ways, p.Mem.L2Line, p.Mem.L2HitLat, p.Mem.L2MissLat)},
		{"TLB", fmt.Sprintf("%d entries, fully associative", p.Mem.TLBEntries)},
		{"Pipeline", fmt.Sprintf("%d stages fetch-to-commit (%d fetch + %d decode + 4 backend)",
			p.Depth(), p.FetchStages, p.DecodeStages)},
		{"Branch predictor", fmt.Sprintf("gshare, %d KB", cfg.PredBytes>>10)},
		{"Confidence estimator", fmt.Sprintf("%s, %d KB", cfg.Estimator, cfg.ConfBytes>>10)},
		{"Technology", "0.18 um, Vdd = 2.0 V, 1200 MHz (power model constants)"},
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\n", r[0], r[1])
	}
	tw.Flush()
}

// WriteConfidence renders the estimator quality reproduction (§4.3).
func WriteConfidence(w io.Writer, crs []ConfidenceResult) {
	fmt.Fprintln(w, "== Confidence estimator quality (paper: BPRU SPEC=60% PVN=45%; JRS SPEC=90% PVN=24%)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "estimator\tSPEC%\tPVN%\tlow-conf frac%\n")
	for _, c := range crs {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\n",
			strings.ToUpper(string(c.Estimator)), 100*c.SPEC, 100*c.PVN, 100*c.LowFrac)
	}
	tw.Flush()
}
