package sim

import (
	"strings"
	"testing"

	"selthrottle/internal/power"
	"selthrottle/internal/prog"
)

func TestWriteTable1Renders(t *testing.T) {
	t1 := &Table1Result{TotalWatts: 55.0, WastedTotal: 0.18}
	for u := power.Unit(0); u < power.NumUnits; u++ {
		t1.Shares[u] = power.Table1Shares[u]
		t1.WastedShares[u] = power.Table1WastedShares[u]
	}
	var sb strings.Builder
	WriteTable1(&sb, t1)
	out := sb.String()
	for _, want := range []string{"55.0 W", "56.4 W", "27.9%", "icache", "clock", "resultbus"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 rendering missing %q", want)
		}
	}
}

func TestWriteTable2Renders(t *testing.T) {
	p, _ := prog.ProfileByName("go")
	rows := []Table2Row{{Profile: p, MeasuredMiss: 0.191, BranchFraction: 0.09, IPC: 1.5}}
	var sb strings.Builder
	WriteTable2(&sb, rows)
	out := sb.String()
	for _, want := range []string{"go", "19.1", "19.7", "9 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 rendering missing %q", want)
		}
	}
}

func TestWriteSweepRenders(t *testing.T) {
	points := []SweepPoint{
		{X: 6, Average: Comparison{Speedup: 0.95, PowerSaving: 10, EnergySaving: 5, EDImprovement: 1}},
		{X: 28, Average: Comparison{Speedup: 0.89, PowerSaving: 20, EnergySaving: 10, EDImprovement: 2}},
	}
	var sb strings.Builder
	WriteSweep(&sb, "depth sweep", "stages", points)
	out := sb.String()
	for _, want := range []string{"depth sweep", "stages", "0.950", "20.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep rendering missing %q", want)
		}
	}
}

func TestWriteConfidenceRenders(t *testing.T) {
	crs := []ConfidenceResult{
		{Estimator: EstBPRU, SPEC: 0.65, PVN: 0.42, LowFrac: 0.17},
		{Estimator: EstJRS, SPEC: 0.90, PVN: 0.26, LowFrac: 0.34},
	}
	var sb strings.Builder
	WriteConfidence(&sb, crs)
	out := sb.String()
	for _, want := range []string{"BPRU", "JRS", "65.0", "90.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("confidence rendering missing %q", want)
		}
	}
}

func TestUtilOfInvertsAnalyze(t *testing.T) {
	// utilOf must recover the utilization that produced a unit's energy.
	var m power.Meter
	params := power.DefaultParams()
	for i := 0; i < 500; i++ {
		m.AddCycle()
		m.Add(power.UnitICache, 4)
	}
	r := Result{Power: m.Analyze(params)}
	want := 4.0 / params.Ports[power.UnitICache]
	got := utilOf(r, power.UnitICache)
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("utilOf = %v, want %v", got, want)
	}
}
