package sim

// Grid enumeration: the deterministic point list behind multi-worker
// sharding. A worker process must decide which points it owns without
// talking to anyone — worker i of N owns the points whose content address
// hashes to i mod N — which only works if every worker and the coordinator
// enumerate exactly the same grid in the same canonical terms. This file is
// that single source of truth: it expands an hpca03 experiment selection
// into its unique (Config, Profile) points, keyed by the same canonical
// SHA-256 the disk store files their Results under.

import (
	"fmt"

	"selthrottle/internal/prog"
	"selthrottle/internal/store"
)

// GridPoint is one (configuration, benchmark) cell of an experiment grid.
type GridPoint struct {
	Cfg     Config
	Profile prog.Profile
}

// Key content-addresses the point: the canonical SHA-256 under which the
// disk tier persists its Result. Two points with the same Key are the same
// simulation, whatever cosmetic differences their Configs carry.
func (g GridPoint) Key() store.Key { return PointKey(g.Cfg, g.Profile) }

// PointKey content-addresses a simulation point (see GridPoint.Key).
func PointKey(cfg Config, profile prog.Profile) store.Key {
	return diskKeyOf(cacheKey{canonicalConfig(cfg), canonicalProfile(profile)})
}

// EnumerateGrid expands an hpca03 experiment selection (the -exp/-id flag
// pair) under opts into the unique simulation points it runs, deduplicated
// by canonical key in first-appearance order. The order and membership are
// deterministic — pure functions of (exp, id, opts) — so N processes
// enumerating the same selection partition one identical grid.
func EnumerateGrid(exp, id string, opts Options) ([]GridPoint, error) {
	opts = opts.withDefaults()
	var pts []GridPoint
	addCfgs := func(cfgs []Config) {
		for _, c := range cfgs {
			for _, p := range opts.Profiles {
				pts = append(pts, GridPoint{Cfg: c, Profile: p})
			}
		}
	}
	figure := func(exps []Experiment) { addCfgs(figureConfigs(opts, exps)) }
	sweep := func(vary func(Options) []Options) {
		for _, o := range vary(opts) {
			for _, c := range figureConfigs(o, []Experiment{BestExperiment()}) {
				for _, p := range o.Profiles {
					pts = append(pts, GridPoint{Cfg: c, Profile: p})
				}
			}
		}
	}
	one := func(exp string) error {
		switch exp {
		case "table3":
			// Static configuration dump; no simulation points.
		case "table1", "table2":
			addCfgs([]Config{opts.baseConfig()})
		case "conf":
			for _, kind := range []EstimatorKind{EstBPRU, EstJRS} {
				cfg := opts.baseConfig()
				cfg.Estimator = kind
				addCfgs([]Config{cfg})
			}
		case "fig1":
			figure(OracleExperiments())
		case "fig3":
			figure(FetchExperiments())
		case "fig4":
			figure(DecodeExperiments())
		case "fig5":
			figure(SelectionExperiments())
		case "ablation":
			figure(EstimatorCrossExperiments())
			figure(GateThresholdExperiments())
			figure(EscalationAblationExperiments())
		case "fig6":
			sweep(func(o Options) []Options {
				var out []Options
				for d := 6; d <= 28; d += 2 {
					v := o
					v.Depth = d
					out = append(out, v)
				}
				return out
			})
		case "fig7":
			sweep(func(o Options) []Options {
				var out []Options
				for _, kb := range []int{8, 16, 32, 64} {
					v := o
					v.PredBytes = kb * 1024 / 2
					v.ConfBytes = kb * 1024 / 2
					out = append(out, v)
				}
				return out
			})
		case "run":
			e, ok := ExperimentByID(id)
			if !ok {
				return fmt.Errorf("sim: unknown experiment id %q", id)
			}
			figure([]Experiment{e})
		default:
			return fmt.Errorf("sim: unknown experiment %q", exp)
		}
		return nil
	}
	if exp == "all" {
		for _, e := range []string{"table3", "table2", "table1", "conf", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7"} {
			if err := one(e); err != nil {
				return nil, err
			}
		}
	} else if err := one(exp); err != nil {
		return nil, err
	}
	// Dedup by canonical key, first appearance wins: overlapping baselines
	// (every figure shares them) must not be owned twice.
	seen := make(map[store.Key]struct{}, len(pts))
	uniq := pts[:0]
	for _, g := range pts {
		k := g.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		uniq = append(uniq, g)
	}
	return uniq, nil
}
