package sim

import (
	"testing"

	"selthrottle/internal/core"
	"selthrottle/internal/prog"
)

// The event-driven issue stage must be indistinguishable from the legacy
// full-window scan it replaced: same issue order, same statistics (including
// NoSelectStalls, which counts against the scan's early-exit point), same
// power accounting, same cache state evolution. Result is comparable, so ==
// is a bit-level check across all of it. Runs bypass the result cache (each
// goes to a dedicated Runner).

// runWithIssueMode executes cfg/profile with the chosen issue
// implementation and strips the mode flag from the result's Config so the
// two modes compare equal on everything observable.
func runWithIssueMode(cfg Config, p prog.Profile, legacy bool) Result {
	cfg.Pipe.LegacyScanIssue = legacy
	res := NewRunner().Run(cfg, p)
	res.Config.Pipe.LegacyScanIssue = false
	return res
}

// identityPolicies are the experiment shapes that exercise every issue-stage
// code path: plain selection, no-select barriers (stall accounting), decode
// and fetch throttling interplay, gating, and the oracle-select suppression.
func identityPolicies() []Experiment {
	c2 := BestExperiment()
	b5, _ := ExperimentByID("B5")
	return []Experiment{
		{ID: "baseline", Policy: core.Baseline(), Estimator: EstBPRU},
		c2,
		b5,
		pipelineGating("PG"),
		{ID: "oracle-select", Policy: core.Baseline(), Estimator: EstBPRU, Oracle: core.OracleSelect},
		{ID: "oracle-fetch", Policy: core.Baseline(), Estimator: EstBPRU, Oracle: core.OracleFetch},
	}
}

func TestEventIssueMatchesScanAllProfiles(t *testing.T) {
	// Every profile under the two policies that stress the issue stage the
	// hardest: the plain baseline and C2's no-select barriers.
	cfg := Default()
	cfg.Instructions = 12000
	cfg.Warmup = 3000
	c2 := BestExperiment()
	for _, p := range prog.Profiles() {
		for _, e := range []Experiment{{ID: "baseline", Policy: core.Baseline(), Estimator: EstBPRU}, c2} {
			ecfg := e.Apply(cfg)
			if got, want := runWithIssueMode(ecfg, p, false), runWithIssueMode(ecfg, p, true); got != want {
				t.Errorf("%s/%s: event-driven issue diverged from scan reference", p.Name, e.ID)
			}
		}
	}
}

func TestEventIssueMatchesScanAllPolicies(t *testing.T) {
	cfg := Default()
	cfg.Instructions = 10000
	cfg.Warmup = 2500
	for _, name := range []string{"go", "gzip", "twolf"} {
		p, _ := prog.ProfileByName(name)
		for _, e := range identityPolicies() {
			ecfg := e.Apply(cfg)
			if got, want := runWithIssueMode(ecfg, p, false), runWithIssueMode(ecfg, p, true); got != want {
				t.Errorf("%s/%s: event-driven issue diverged from scan reference", name, e.ID)
			}
		}
	}
}

// runWithWalkMode executes cfg/profile with the chosen walker
// implementation and strips the mode flag from the result's Config so the
// two modes compare equal on everything observable.
func runWithWalkMode(cfg Config, p prog.Profile, legacy bool) Result {
	cfg.LegacyWalk = legacy
	res := NewRunner().Run(cfg, p)
	res.Config.LegacyWalk = false
	return res
}

// The walker fast path (integer outcome thresholds, blockMeta tables,
// arena-indirected checkpoints) must be indistinguishable from the retained
// legacy reference across full simulations: identical statistics, power
// accounting, and cache evolution. Result is comparable, so == is a
// bit-level check across all of it.

func TestFastWalkMatchesLegacyAllProfiles(t *testing.T) {
	cfg := Default()
	cfg.Instructions = 12000
	cfg.Warmup = 3000
	c2 := BestExperiment()
	for _, p := range prog.Profiles() {
		for _, e := range []Experiment{{ID: "baseline", Policy: core.Baseline(), Estimator: EstBPRU}, c2} {
			ecfg := e.Apply(cfg)
			if got, want := runWithWalkMode(ecfg, p, false), runWithWalkMode(ecfg, p, true); got != want {
				t.Errorf("%s/%s: walker fast path diverged from legacy reference", p.Name, e.ID)
			}
		}
	}
}

func TestFastWalkMatchesLegacyAllPolicies(t *testing.T) {
	cfg := Default()
	cfg.Instructions = 10000
	cfg.Warmup = 2500
	for _, name := range []string{"go", "gzip", "twolf"} {
		p, _ := prog.ProfileByName(name)
		for _, e := range identityPolicies() {
			ecfg := e.Apply(cfg)
			if got, want := runWithWalkMode(ecfg, p, false), runWithWalkMode(ecfg, p, true); got != want {
				t.Errorf("%s/%s: walker fast path diverged from legacy reference", name, e.ID)
			}
		}
	}
}

// runWithFrontEndMode executes cfg/profile with the chosen front-end
// implementation and strips the mode flag from the result's Config so the
// two modes compare equal on everything observable.
func runWithFrontEndMode(cfg Config, p prog.Profile, legacy bool) Result {
	cfg.Pipe.LegacyFrontEnd = legacy
	res := NewRunner().Run(cfg, p)
	res.Config.Pipe.LegacyFrontEnd = false
	return res
}

// The fused front-end delay line (batched fetch groups, cursor-advanced
// decode/dispatch) must be indistinguishable from the two-ring reference it
// replaced: same instruction stream, same back-pressure and idle accounting,
// same squash order (observable through the wasted-power accumulation
// order), same cache and predictor evolution. Result is comparable, so == is
// a bit-level check across all of it.

func TestFusedFrontEndMatchesLegacyAllProfiles(t *testing.T) {
	cfg := Default()
	cfg.Instructions = 12000
	cfg.Warmup = 3000
	c2 := BestExperiment()
	for _, p := range prog.Profiles() {
		for _, e := range []Experiment{{ID: "baseline", Policy: core.Baseline(), Estimator: EstBPRU}, c2} {
			ecfg := e.Apply(cfg)
			if got, want := runWithFrontEndMode(ecfg, p, false), runWithFrontEndMode(ecfg, p, true); got != want {
				t.Errorf("%s/%s: fused front end diverged from two-ring reference", p.Name, e.ID)
			}
		}
	}
}

func TestFusedFrontEndMatchesLegacyAllPolicies(t *testing.T) {
	cfg := Default()
	cfg.Instructions = 10000
	cfg.Warmup = 2500
	for _, name := range []string{"go", "gzip", "twolf"} {
		p, _ := prog.ProfileByName(name)
		for _, e := range identityPolicies() {
			ecfg := e.Apply(cfg)
			if got, want := runWithFrontEndMode(ecfg, p, false), runWithFrontEndMode(ecfg, p, true); got != want {
				t.Errorf("%s/%s: fused front end diverged from two-ring reference", name, e.ID)
			}
		}
	}
}

func TestFusedFrontEndMatchesLegacyStressShapes(t *testing.T) {
	// Structural corner cases for the front end: minimum and maximum pipe
	// depths (1-stage and 12-stage fetch/decode pipes), narrow fetch with
	// wide decode and vice versa (groups straddling the decode boundary for
	// many cycles), single-taken-per-cycle truncation (short groups), a tiny
	// window (constant back-pressure into the delay line), and a decode
	// width below the fetch width (every group drains over multiple cycles).
	p, _ := prog.ProfileByName("go")
	shapes := []func(*Config){
		func(c *Config) { c.Pipe.SetDepth(6) },
		func(c *Config) { c.Pipe.SetDepth(28) },
		func(c *Config) { c.Pipe.FetchWidth = 4 },
		func(c *Config) { c.Pipe.DecodeWidth = 2 },
		func(c *Config) { c.Pipe.FetchWidth = 8; c.Pipe.DecodeWidth = 3; c.Pipe.IssueWidth = 5 },
		func(c *Config) { c.Pipe.MaxTakenPerCycle = 1 },
		func(c *Config) { c.Pipe.WindowSize = 16; c.Pipe.LSQSize = 8 },
	}
	for i, shape := range shapes {
		cfg := BestExperiment().Apply(Default())
		cfg.Instructions = 8000
		cfg.Warmup = 2000
		cfg.Pipe.StuckCycles = 20000 // fail fast if a shape wedges the machine
		shape(&cfg)
		if got, want := runWithFrontEndMode(cfg, p, false), runWithFrontEndMode(cfg, p, true); got != want {
			t.Errorf("shape %d: fused front end diverged from two-ring reference", i)
		}
	}
}

// TestFrontEndWalkerModeCross pins all four combinations of the front-end
// and walker implementations to one result: the fused front end must work
// identically over both walker fast paths (NextGroup has a legacy-walker
// form too), and no pairing may drift from the all-legacy reference.
func TestFrontEndWalkerModeCross(t *testing.T) {
	p, _ := prog.ProfileByName("twolf")
	cfg := BestExperiment().Apply(Default())
	cfg.Instructions = 10000
	cfg.Warmup = 2500
	var ref Result
	for i, mode := range []struct{ frontEnd, walk bool }{
		{true, true}, {true, false}, {false, true}, {false, false},
	} {
		c := cfg
		c.Pipe.LegacyFrontEnd = mode.frontEnd
		c.LegacyWalk = mode.walk
		res := NewRunner().Run(c, p)
		res.Config.Pipe.LegacyFrontEnd = false
		res.Config.LegacyWalk = false
		if i == 0 {
			ref = res
			continue
		}
		if res != ref {
			t.Errorf("front-end/walker combination legacyFE=%v legacyWalk=%v diverged from all-legacy reference",
				mode.frontEnd, mode.walk)
		}
	}
}

// runWithLedgerMode executes cfg/profile with the chosen power-attribution
// implementation and strips the mode flag from the result's Config so the
// two modes compare equal on everything observable.
func runWithLedgerMode(cfg Config, p prog.Profile, legacy bool) Result {
	cfg.Pipe.LegacyEventLedger = legacy
	res := NewRunner().Run(cfg, p)
	res.Config.Pipe.LegacyEventLedger = false
	return res
}

// The epoch-ledger power attribution (per-speculation-epoch event tallies,
// folded wholesale into the wasted pool at flush) must be indistinguishable
// from the per-instruction reference it replaced: identical per-unit useful
// and wasted event totals — and therefore identical energies — on every
// profile, policy, and structural shape. Result is comparable, so == is a
// bit-level check across all of it.

func TestEpochLedgerMatchesLegacyAllProfiles(t *testing.T) {
	cfg := Default()
	cfg.Instructions = 12000
	cfg.Warmup = 3000
	c2 := BestExperiment()
	for _, p := range prog.Profiles() {
		for _, e := range []Experiment{{ID: "baseline", Policy: core.Baseline(), Estimator: EstBPRU}, c2} {
			ecfg := e.Apply(cfg)
			if got, want := runWithLedgerMode(ecfg, p, false), runWithLedgerMode(ecfg, p, true); got != want {
				t.Errorf("%s/%s: epoch ledger diverged from per-instruction reference", p.Name, e.ID)
			}
		}
	}
}

func TestEpochLedgerMatchesLegacyAllPolicies(t *testing.T) {
	cfg := Default()
	cfg.Instructions = 10000
	cfg.Warmup = 2500
	for _, name := range []string{"go", "gzip", "twolf"} {
		p, _ := prog.ProfileByName(name)
		for _, e := range identityPolicies() {
			ecfg := e.Apply(cfg)
			if got, want := runWithLedgerMode(ecfg, p, false), runWithLedgerMode(ecfg, p, true); got != want {
				t.Errorf("%s/%s: epoch ledger diverged from per-instruction reference", name, e.ID)
			}
		}
	}
}

func TestEpochLedgerMatchesLegacyStressShapes(t *testing.T) {
	// Shapes that stress the epoch machinery specifically: the deepest pipe
	// (maximal squash depth and recovery traffic), a tiny window (constant
	// flushes, epochs folding every few cycles), narrow widths (epochs
	// straddling the decode boundary for many cycles), single-taken
	// truncation (many short fetch groups per epoch), and the minimum depth
	// (commit chasing fetch closely, epochs retiring almost immediately).
	p, _ := prog.ProfileByName("go")
	shapes := []func(*Config){
		func(c *Config) { c.Pipe.SetDepth(28) },
		func(c *Config) { c.Pipe.SetDepth(6) },
		func(c *Config) { c.Pipe.WindowSize = 16; c.Pipe.LSQSize = 8 },
		func(c *Config) { c.Pipe.FetchWidth = 4; c.Pipe.DecodeWidth = 2 },
		func(c *Config) { c.Pipe.FetchWidth = 8; c.Pipe.DecodeWidth = 3; c.Pipe.IssueWidth = 5 },
		func(c *Config) { c.Pipe.MaxTakenPerCycle = 1 },
	}
	for i, shape := range shapes {
		cfg := BestExperiment().Apply(Default())
		cfg.Instructions = 8000
		cfg.Warmup = 2000
		cfg.Pipe.StuckCycles = 20000 // fail fast if a shape wedges the machine
		shape(&cfg)
		if got, want := runWithLedgerMode(cfg, p, false), runWithLedgerMode(cfg, p, true); got != want {
			t.Errorf("shape %d: epoch ledger diverged from per-instruction reference", i)
		}
	}
}

// TestLedgerFrontEndModeCross pins all four combinations of the attribution
// and front-end implementations to one result: the epoch ledgers must fold
// identically under both front ends' squash orders (hpca03 exposes the same
// cross through -legacyledger x -legacyfrontend), and no pairing may drift
// from the all-legacy reference.
func TestLedgerFrontEndModeCross(t *testing.T) {
	p, _ := prog.ProfileByName("twolf")
	cfg := BestExperiment().Apply(Default())
	cfg.Instructions = 10000
	cfg.Warmup = 2500
	var ref Result
	for i, mode := range []struct{ frontEnd, ledger bool }{
		{true, true}, {true, false}, {false, true}, {false, false},
	} {
		c := cfg
		c.Pipe.LegacyFrontEnd = mode.frontEnd
		c.Pipe.LegacyEventLedger = mode.ledger
		res := NewRunner().Run(c, p)
		res.Config.Pipe.LegacyFrontEnd = false
		res.Config.Pipe.LegacyEventLedger = false
		if i == 0 {
			ref = res
			continue
		}
		if res != ref {
			t.Errorf("front-end/ledger combination legacyFE=%v legacyLedger=%v diverged from all-legacy reference",
				mode.frontEnd, mode.ledger)
		}
	}
}

func TestEventIssueMatchesScanStressShapes(t *testing.T) {
	// Structural corner cases: deep pipe (long latencies, wheel clamping),
	// tiny window (constant back-pressure, constant flushes), perfect
	// disambiguation (store-queue path disabled), and a narrow issue width
	// (the scan's early exit fires nearly every cycle).
	p, _ := prog.ProfileByName("go")
	shapes := []func(*Config){
		func(c *Config) { c.Pipe.SetDepth(28) },
		func(c *Config) { c.Pipe.WindowSize = 16; c.Pipe.LSQSize = 8 },
		func(c *Config) { c.Pipe.PerfectDisambiguation = true },
		func(c *Config) { c.Pipe.IssueWidth = 2 },
	}
	for i, shape := range shapes {
		cfg := BestExperiment().Apply(Default())
		cfg.Instructions = 8000
		cfg.Warmup = 2000
		shape(&cfg)
		if got, want := runWithIssueMode(cfg, p, false), runWithIssueMode(cfg, p, true); got != want {
			t.Errorf("shape %d: event-driven issue diverged from scan reference", i)
		}
	}
}
