package sim

// Partitioned figure execution and the coordinator-side merge. A figure's
// (configuration x benchmark) grid is embarrassingly parallel and every
// point is a pure function of its inputs, so the grid can be sharded across
// worker processes: each worker runs the points its partition owns and the
// coordinator recombines the partials. Because assembly is shared
// (assembleFigure), a merged figure degrades exactly like a single-process
// run: same Statuses, same Failures, same excluded-cell averages.

import (
	"context"
	"errors"
	"fmt"

	"selthrottle/internal/prog"
)

// ErrUnclaimed marks a grid point no partition ran: in a partial
// FigureResult it means "owned by some other worker"; surviving into a
// merged figure it means the coordinator lost a partition entirely and the
// point degrades like any other failure.
var ErrUnclaimed = errors.New("sim: grid point not claimed by any partition")

// RunFigurePartE runs the subset of a figure's grid selected by owns (a
// predicate over the config-major point index and the point's identity)
// under ctx, leaving every unowned point as a zero Result with an
// ErrUnclaimed status. The returned partial figure is an input to
// MergeFigureResults, not a renderable reproduction: its averages exclude
// the unclaimed cells.
func RunFigurePartE(ctx context.Context, name string, exps []Experiment, opts Options, owns func(k int, cfg Config, profile prog.Profile) bool) *FigureResult {
	opts = opts.withDefaults()
	sup := &opts.Supervise
	cfgs := figureConfigs(opts, exps)
	np := len(opts.Profiles)
	all := make([]Result, len(cfgs)*np)
	statuses := make([]PointStatus, len(all))
	mine := make([]int, 0, len(all))
	for k := range all {
		if owns(k, cfgs[k/np], opts.Profiles[k%np]) {
			mine = append(mine, k)
		} else {
			statuses[k] = PointStatus{Err: ErrUnclaimed}
		}
	}
	runJobs(len(mine), func(r *Runner, i int) {
		k := mine[i]
		all[k], statuses[k] = sup.runPoint(ctx, r, cfgs[k/np], opts.Profiles[k%np])
	})
	return assembleFigure(name, exps, opts, all, statuses)
}

// MergeFigureResults recombines K partial figures of one grid (same name,
// same shape) into the complete figure. Partitions may overlap — workers
// commonly all run the baseline column — and may disagree only in failure:
// for each point the merge takes the first OK result (all OK results of a
// point are bit-identical, results being pure), falling back to the first
// claimed failure, falling back to ErrUnclaimed. Rows, averages, Statuses,
// and Failures are then re-assembled through the same path as a
// single-process run, so a merged degraded grid is indistinguishable from a
// locally degraded one.
func MergeFigureResults(parts ...*FigureResult) (*FigureResult, error) {
	if len(parts) == 0 {
		return nil, errors.New("sim: merge of zero figure parts")
	}
	first := parts[0]
	np := len(first.Options.Profiles)
	n := len(first.Points)
	exps := make([]Experiment, len(first.Rows))
	for i, row := range first.Rows {
		exps[i] = row.Experiment
	}
	for _, p := range parts[1:] {
		if p.Name != first.Name || len(p.Points) != n || len(p.Rows) != len(first.Rows) ||
			len(p.Options.Profiles) != np {
			return nil, fmt.Errorf("sim: merge shape mismatch: %q (%d points, %d rows) vs %q (%d points, %d rows)",
				first.Name, n, len(first.Rows), p.Name, len(p.Points), len(p.Rows))
		}
	}
	all := make([]Result, n)
	statuses := make([]PointStatus, n)
	for k := 0; k < n; k++ {
		merged := PointStatus{Err: ErrUnclaimed}
		var res Result
		for _, p := range parts {
			st := p.statusAt(k)
			if st.OK() {
				res, merged = p.Points[k], st
				break
			}
			if !errors.Is(st.Err, ErrUnclaimed) && errors.Is(merged.Err, ErrUnclaimed) {
				merged = st // first claimed failure, unless a later part succeeded
			}
		}
		all[k], statuses[k] = res, merged
	}
	return assembleFigure(first.Name, exps, first.Options, all, statuses), nil
}

// statusAt returns the point status at config-major index k, synthesizing
// the all-OK case (Statuses is nil on a fully healthy figure).
func (fr *FigureResult) statusAt(k int) PointStatus {
	if fr.Statuses == nil {
		return PointStatus{Attempts: 1}
	}
	return fr.Statuses[k]
}
