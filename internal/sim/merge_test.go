package sim

import (
	"context"
	"reflect"
	"testing"

	"selthrottle/internal/faultinject"
	"selthrottle/internal/pipe"
	"selthrottle/internal/prog"
)

// mergeOpts is the small fast grid the merge tests share.
func mergeOpts() Options {
	return Options{Instructions: 20000, Warmup: 5000}
}

// TestMergeCleanPartitionsMatchesSingleProcess: a figure split across 3
// disjoint partitions and merged must be indistinguishable — Rows,
// Baselines, averages, nil Statuses — from the single-process run.
func TestMergeCleanPartitionsMatchesSingleProcess(t *testing.T) {
	prev := SetResultCaching(false)
	defer SetResultCaching(prev)
	exps := FetchExperiments()[:3]
	opts := mergeOpts()
	ctx := context.Background()

	whole := RunFigureE(ctx, "merge-clean", exps, opts)
	if whole.Failures != nil {
		t.Fatalf("clean run failed: %v", whole.Failures)
	}

	const parts = 3
	var partials []*FigureResult
	for p := 0; p < parts; p++ {
		p := p
		partials = append(partials, RunFigurePartE(ctx, "merge-clean", exps, opts,
			func(k int, cfg Config, profile prog.Profile) bool { return k%parts == p }))
	}
	merged, err := MergeFigureResults(partials...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged.Failures != nil || merged.Statuses != nil {
		t.Fatalf("merged clean grid degraded: %v", merged.Failures)
	}
	if !reflect.DeepEqual(merged.Baselines, whole.Baselines) {
		t.Fatal("merged baselines diverge from single-process run")
	}
	if !reflect.DeepEqual(merged.Rows, whole.Rows) {
		t.Fatal("merged rows diverge from single-process run")
	}
	if !reflect.DeepEqual(merged.Points, whole.Points) {
		t.Fatal("merged raw points diverge from single-process run")
	}
}

// TestMergeDegradedMatchesSingleProcess is the coordinator-merge satellite:
// K partial figures with OVERLAPPING partitions and deterministically
// poisoned points, merged, must carry the same Statuses, Failures, and
// excluded-cell averages as the single-process degraded run of the same
// poisoned grid — a merged degraded figure is indistinguishable from a
// locally degraded one.
func TestMergeDegradedMatchesSingleProcess(t *testing.T) {
	prev := SetResultCaching(false)
	defer SetResultCaching(prev)
	exps := FetchExperiments()[:3]
	opts := mergeOpts()
	full := opts.withDefaults()
	np := len(full.Profiles)
	n := (1 + len(exps)) * np
	ctx := context.Background()

	// Poison 4 deterministic points, keyed by grid index exactly as the
	// config-major layout assigns them.
	plans := faultinject.Scatter(0xD00D, n, 4, 2000)
	base := full.baseConfig()
	cfgIdx := map[Config]int{base: 0}
	for i, e := range exps {
		cfgIdx[e.Apply(base)] = i + 1
	}
	profIdx := map[string]int{}
	for j, p := range full.Profiles {
		profIdx[p.Name] = j
	}
	opts.Supervise = Supervisor{
		PointFault: func(cfg Config, profile prog.Profile) pipe.FaultHook {
			if pl := plans[cfgIdx[cfg]*np+profIdx[profile.Name]]; pl != nil {
				return pl
			}
			return nil
		},
	}

	whole := RunFigureE(ctx, "merge-degraded", exps, opts)
	if len(whole.Failures) != 4 {
		t.Fatalf("single-process run: %d failures, want 4", len(whole.Failures))
	}

	// Three overlapping partitions: two halves plus a third that re-runs
	// every third point (workers commonly share baselines; the merge must
	// tolerate arbitrary overlap).
	owns := []func(k int) bool{
		func(k int) bool { return k%2 == 0 },
		func(k int) bool { return k%2 == 1 },
		func(k int) bool { return k%3 == 0 },
	}
	var partials []*FigureResult
	for _, own := range owns {
		own := own
		partials = append(partials, RunFigurePartE(ctx, "merge-degraded", exps, opts,
			func(k int, cfg Config, profile prog.Profile) bool { return own(k) }))
	}
	merged, err := MergeFigureResults(partials...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}

	if len(merged.Statuses) != n || len(whole.Statuses) != n {
		t.Fatalf("status lengths: merged %d, whole %d, want %d", len(merged.Statuses), len(whole.Statuses), n)
	}
	for k := range merged.Statuses {
		if merged.Statuses[k].OK() != whole.Statuses[k].OK() {
			t.Fatalf("point %d: merged OK=%v, single-process OK=%v",
				k, merged.Statuses[k].OK(), whole.Statuses[k].OK())
		}
	}
	if len(merged.Failures) != len(whole.Failures) {
		t.Fatalf("merged %d failures, single-process %d", len(merged.Failures), len(whole.Failures))
	}
	for i := range merged.Failures {
		mf, wf := merged.Failures[i], whole.Failures[i]
		if mf.Experiment != wf.Experiment || mf.Benchmark != wf.Benchmark {
			t.Fatalf("failure %d: merged (%s,%s) vs single-process (%s,%s)",
				i, mf.Experiment, mf.Benchmark, wf.Experiment, wf.Benchmark)
		}
	}
	if !reflect.DeepEqual(merged.Baselines, whole.Baselines) {
		t.Fatal("merged degraded baselines diverge")
	}
	if !reflect.DeepEqual(merged.Rows, whole.Rows) {
		t.Fatal("merged degraded rows (averages exclude failed cells) diverge")
	}
}

// TestMergeUnclaimedDegrades: a point no partition owns survives the merge
// as a failure (ErrUnclaimed), degrading the figure exactly like a run
// failure — zero cell, excluded from averages.
func TestMergeUnclaimedDegrades(t *testing.T) {
	prev := SetResultCaching(false)
	defer SetResultCaching(prev)
	exps := FetchExperiments()[:1]
	opts := mergeOpts()
	ctx := context.Background()

	// One partition owning everything except point 3.
	part := RunFigurePartE(ctx, "merge-hole", exps, opts,
		func(k int, cfg Config, profile prog.Profile) bool { return k != 3 })
	merged, err := MergeFigureResults(part)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if len(merged.Failures) != 1 {
		t.Fatalf("%d failures, want 1: %v", len(merged.Failures), merged.Failures)
	}
	if !merged.Statuses[3].OK() == false {
		t.Fatalf("point 3 status: %+v", merged.Statuses[3])
	}
	if merged.Statuses[3].Err == nil {
		t.Fatal("unclaimed point has nil error")
	}
}

// TestMergeShapeMismatch: merging partials of different grids is an error,
// not a silent corruption.
func TestMergeShapeMismatch(t *testing.T) {
	prev := SetResultCaching(false)
	defer SetResultCaching(prev)
	opts := mergeOpts()
	ctx := context.Background()
	a := RunFigurePartE(ctx, "grid-a", FetchExperiments()[:1], opts,
		func(k int, cfg Config, profile prog.Profile) bool { return false })
	b := RunFigurePartE(ctx, "grid-b", FetchExperiments()[:2], opts,
		func(k int, cfg Config, profile prog.Profile) bool { return false })
	if _, err := MergeFigureResults(a, b); err == nil {
		t.Fatal("shape mismatch not detected")
	}
	if _, err := MergeFigureResults(); err == nil {
		t.Fatal("empty merge not detected")
	}
}
