package sim

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/pipe"
	"selthrottle/internal/prog"
)

// This file implements the memoizing result cache behind the experiment
// drivers. Simulation is a pure function of (Config, Profile) — determinism
// tests enforce it — so a Result computed once is valid for the whole
// process. Figures, sweeps, tables, the confidence harness, the ablations,
// and the calibration loop all overlap heavily (every figure shares the same
// baseline grid, A7/B9/C7 are one configuration, the depth-14 sweep point is
// the figure-5 cell, the BPRU confidence run is the baseline), so a shared
// cache removes entire re-simulations rather than shaving cycles.
//
// Keys are canonicalized: fields that provably cannot influence the
// simulation (policy names, the gating threshold of a non-gating policy, the
// JRS threshold of a BPRU run, the paper-reported calibration targets of a
// profile) are normalized away so cosmetically different descriptions of the
// same machine share one entry. The cached Result is rewritten with the
// caller's exact Config and profile name on the way out, so callers cannot
// observe the normalization.

// cacheKey identifies one simulation point. Config and Profile are plain
// comparable value types, so the key needs no serialization.
type cacheKey struct {
	cfg     Config
	profile prog.Profile
}

// cacheEntry is a single-flight slot: the requester that creates it (the
// leader) computes the point and closes done; later requesters for the same
// point block on done and then read res/err. Failure semantics matter here:
// a failed or panicked run must never be memoized (the leader unpublishes
// the entry before releasing its waiters, so the next requester recomputes),
// and every waiter on an erroring leader receives the leader's error
// promptly rather than hanging or silently reading a zero Result — the exact
// hazards of the previous sync.Once design, which marked the once done even
// when the compute panicked.
type cacheEntry struct {
	done chan struct{}
	res  Result
	err  error
}

// ResultCache memoizes Results by canonicalized (Config, Profile). It is
// safe for concurrent use; concurrent requests for the same point simulate
// it once. Entries are retained until Clear — a Result is a few hundred
// bytes, so even figure-scale grids stay far below one megabyte.
type ResultCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	return &ResultCache{entries: map[cacheKey]*cacheEntry{}}
}

// canonicalConfig zeroes the Config fields that cannot influence simulation:
// the policy's display name, the specs a gating policy ignores, the gate
// threshold a selective policy ignores, and the JRS threshold of a non-JRS
// estimator (including normalizing the empty estimator kind to its BPRU
// default).
func canonicalConfig(cfg Config) Config {
	cfg.Policy.Name = ""
	// The zero deadlock threshold and its explicit default are the same
	// machine, so they share one entry. Other values keep distinct entries:
	// a tightened threshold changes abort semantics (a stress run expects
	// its fail-fast panic even when a laxer run of the same point already
	// completed and was cached).
	if cfg.Pipe.StuckCycles == pipe.DefaultStuckCycles {
		cfg.Pipe.StuckCycles = 0
	}
	if cfg.Policy.Gating {
		cfg.Policy.ByClass = [conf.NumClasses]core.Spec{}
	} else {
		cfg.Policy.GateThreshold = 0
	}
	if cfg.Estimator != EstJRS {
		cfg.Estimator = EstBPRU
		cfg.JRSThreshold = 0
	}
	return cfg
}

// canonicalProfile normalizes the calibration-override encodings (zero means
// default) and zeroes the paper-reported reference fields, which only feed
// reports and tests, never the generator.
func canonicalProfile(p prog.Profile) prog.Profile {
	p.NoiseScaleOverride = p.NoiseScale()
	p.HardFreqOverride = p.HardFreq()
	p.PaperInput = ""
	p.PaperMInsts, p.PaperMBranch = 0, 0
	p.PaperMissPct, p.TargetMissTol = 0, 0
	return p
}

// Run returns the memoized Result for (cfg, profile), simulating it on r at
// most once per cache lifetime. It is the legacy fail-fast wrapper around
// RunE: a terminal simulation failure is raised as a panic (in every waiter
// as well as the leader).
func (c *ResultCache) Run(r *Runner, cfg Config, profile prog.Profile) Result {
	res, err := c.RunE(context.Background(), r, cfg, profile)
	if err != nil {
		panic(err) // fail-fast: legacy contract, typed *RunError for Guard
	}
	return res
}

// RunE returns the memoized Result for (cfg, profile), simulating it on r at
// most once per cache lifetime; concurrent requests for one point elect a
// leader and the rest wait. The returned Result carries the caller's exact
// cfg.
//
// Failure semantics: a failed run is never memoized — the leader removes the
// entry before releasing its waiters, so the point is recomputed on the next
// request — and each waiter receives the leader's error promptly. A waiter
// whose own ctx ends first returns its context error without waiting out the
// leader. Counters: the leader's attempt counts as a miss (successful or
// not); only successful waiters count as hits.
func (c *ResultCache) RunE(ctx context.Context, r *Runner, cfg Config, profile prog.Profile) (Result, error) {
	key := cacheKey{canonicalConfig(cfg), canonicalProfile(profile)}
	c.mu.Lock()
	e, leader := c.entries[key], false
	if e == nil {
		e = &cacheEntry{done: make(chan struct{})}
		c.entries[key] = e
		leader = true
	}
	c.mu.Unlock()

	if leader {
		published := false
		defer func() {
			// Runs on success, error, and panic alike: on anything but a
			// published success, unpublish the entry and release the
			// waiters, so no failure is memoized and nobody blocks forever
			// — even if the compute panicked past RunE's own recovery.
			if published {
				return
			}
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			if e.err == nil {
				e.err = fmt.Errorf("sim: cache leader for %s did not complete", profile.Name)
			}
			close(e.done)
		}()
		res, err := r.RunE(ctx, cfg, profile)
		c.misses.Add(1)
		if err != nil {
			e.err = err
			return Result{}, err // defer unpublishes and releases waiters
		}
		e.res = res
		published = true
		close(e.done)
		res.Config = cfg
		res.Benchmark = profile.Name
		return res, nil
	}

	select {
	case <-e.done:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	if e.err != nil {
		return Result{}, e.err
	}
	c.hits.Add(1)
	res := e.res
	res.Config = cfg
	res.Benchmark = profile.Name
	return res, nil
}

// Stats reports the cache's hit and miss counts since construction (or the
// last Clear).
func (c *ResultCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of memoized points.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Clear drops every entry and zeroes the statistics.
func (c *ResultCache) Clear() {
	c.mu.Lock()
	c.entries = map[cacheKey]*cacheEntry{}
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// processCache is the process-wide cache every driver in this package (and
// every command built on it) shares.
var (
	processCache   = NewResultCache()
	cachingEnabled atomic.Bool
)

func init() { cachingEnabled.Store(true) }

// SetResultCaching enables or disables the process-wide result cache and
// returns the previous setting. Disabling is for measurements that must
// exercise the simulator itself (benchmarks, identity tests); the cache
// never changes results, only whether they are recomputed.
func SetResultCaching(on bool) (previous bool) {
	return cachingEnabled.Swap(on)
}

// ResultCacheStats reports the process-wide cache's hit/miss counters.
func ResultCacheStats() (hits, misses uint64) { return processCache.Stats() }

// ClearResultCache empties the process-wide cache (long-running processes
// exploring unbounded configuration spaces can bound memory with periodic
// clears).
func ClearResultCache() { processCache.Clear() }

// WriteCacheSummary prints the process-wide cache's reuse summary, for the
// drivers' -v flag.
func WriteCacheSummary(w io.Writer) {
	hits, misses := processCache.Stats()
	total := hits + misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(hits) / float64(total)
	}
	fmt.Fprintf(w, "result cache: %d simulations served, %d hits / %d misses (%.1f%% reuse), %d points held\n",
		total, hits, misses, pct, processCache.Len())
}

// runCached is the fail-fast entry the legacy drivers use: it consults the
// process-wide cache unless caching is disabled, and panics on a terminal
// run failure.
func runCached(r *Runner, cfg Config, profile prog.Profile) Result {
	res, err := runCachedE(context.Background(), r, cfg, profile)
	if err != nil {
		panic(err) // fail-fast: legacy contract, typed *RunError for Guard
	}
	return res
}

// runCachedE is the supervised entry: it consults the process-wide cache
// unless caching is disabled or the configuration carries a fault-injection
// hook — a faulted run is impure by design (its outcome depends on the
// hook's state), so it must never be served from or admitted to the cache.
func runCachedE(ctx context.Context, r *Runner, cfg Config, profile prog.Profile) (Result, error) {
	if !cachingEnabled.Load() || cfg.Pipe.Fault != nil {
		return r.RunE(ctx, cfg, profile)
	}
	return processCache.RunE(ctx, r, cfg, profile)
}
