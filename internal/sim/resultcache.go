package sim

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/pipe"
	"selthrottle/internal/prog"
)

// This file implements the memoizing result cache behind the experiment
// drivers. Simulation is a pure function of (Config, Profile) — determinism
// tests enforce it — so a Result computed once is valid for the whole
// process. Figures, sweeps, tables, the confidence harness, the ablations,
// and the calibration loop all overlap heavily (every figure shares the same
// baseline grid, A7/B9/C7 are one configuration, the depth-14 sweep point is
// the figure-5 cell, the BPRU confidence run is the baseline), so a shared
// cache removes entire re-simulations rather than shaving cycles.
//
// Keys are canonicalized: fields that provably cannot influence the
// simulation (policy names, the gating threshold of a non-gating policy, the
// JRS threshold of a BPRU run, the paper-reported calibration targets of a
// profile) are normalized away so cosmetically different descriptions of the
// same machine share one entry. The cached Result is rewritten with the
// caller's exact Config and profile name on the way out, so callers cannot
// observe the normalization.

// cacheKey identifies one simulation point. Config and Profile are plain
// comparable value types, so the key needs no serialization.
type cacheKey struct {
	cfg     Config
	profile prog.Profile
}

// cacheEntry is a single-flight slot: the first requester computes the
// result under the once while later requesters for the same point block and
// then read it.
type cacheEntry struct {
	once sync.Once
	res  Result
}

// ResultCache memoizes Results by canonicalized (Config, Profile). It is
// safe for concurrent use; concurrent requests for the same point simulate
// it once. Entries are retained until Clear — a Result is a few hundred
// bytes, so even figure-scale grids stay far below one megabyte.
type ResultCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	return &ResultCache{entries: map[cacheKey]*cacheEntry{}}
}

// canonicalConfig zeroes the Config fields that cannot influence simulation:
// the policy's display name, the specs a gating policy ignores, the gate
// threshold a selective policy ignores, and the JRS threshold of a non-JRS
// estimator (including normalizing the empty estimator kind to its BPRU
// default).
func canonicalConfig(cfg Config) Config {
	cfg.Policy.Name = ""
	// The zero deadlock threshold and its explicit default are the same
	// machine, so they share one entry. Other values keep distinct entries:
	// a tightened threshold changes abort semantics (a stress run expects
	// its fail-fast panic even when a laxer run of the same point already
	// completed and was cached).
	if cfg.Pipe.StuckCycles == pipe.DefaultStuckCycles {
		cfg.Pipe.StuckCycles = 0
	}
	if cfg.Policy.Gating {
		cfg.Policy.ByClass = [conf.NumClasses]core.Spec{}
	} else {
		cfg.Policy.GateThreshold = 0
	}
	if cfg.Estimator != EstJRS {
		cfg.Estimator = EstBPRU
		cfg.JRSThreshold = 0
	}
	return cfg
}

// canonicalProfile normalizes the calibration-override encodings (zero means
// default) and zeroes the paper-reported reference fields, which only feed
// reports and tests, never the generator.
func canonicalProfile(p prog.Profile) prog.Profile {
	p.NoiseScaleOverride = p.NoiseScale()
	p.HardFreqOverride = p.HardFreq()
	p.PaperInput = ""
	p.PaperMInsts, p.PaperMBranch = 0, 0
	p.PaperMissPct, p.TargetMissTol = 0, 0
	return p
}

// Run returns the memoized Result for (cfg, profile), simulating it on r at
// most once per cache lifetime. The returned Result carries the caller's
// exact cfg.
func (c *ResultCache) Run(r *Runner, cfg Config, profile prog.Profile) Result {
	key := cacheKey{canonicalConfig(cfg), canonicalProfile(profile)}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	computed := false
	e.once.Do(func() {
		computed = true
		e.res = r.Run(cfg, profile)
	})
	if computed {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	res := e.res
	res.Config = cfg
	res.Benchmark = profile.Name
	return res
}

// Stats reports the cache's hit and miss counts since construction (or the
// last Clear).
func (c *ResultCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of memoized points.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Clear drops every entry and zeroes the statistics.
func (c *ResultCache) Clear() {
	c.mu.Lock()
	c.entries = map[cacheKey]*cacheEntry{}
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// processCache is the process-wide cache every driver in this package (and
// every command built on it) shares.
var (
	processCache   = NewResultCache()
	cachingEnabled atomic.Bool
)

func init() { cachingEnabled.Store(true) }

// SetResultCaching enables or disables the process-wide result cache and
// returns the previous setting. Disabling is for measurements that must
// exercise the simulator itself (benchmarks, identity tests); the cache
// never changes results, only whether they are recomputed.
func SetResultCaching(on bool) (previous bool) {
	return cachingEnabled.Swap(on)
}

// ResultCacheStats reports the process-wide cache's hit/miss counters.
func ResultCacheStats() (hits, misses uint64) { return processCache.Stats() }

// ClearResultCache empties the process-wide cache (long-running processes
// exploring unbounded configuration spaces can bound memory with periodic
// clears).
func ClearResultCache() { processCache.Clear() }

// WriteCacheSummary prints the process-wide cache's reuse summary, for the
// drivers' -v flag.
func WriteCacheSummary(w io.Writer) {
	hits, misses := processCache.Stats()
	total := hits + misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(hits) / float64(total)
	}
	fmt.Fprintf(w, "result cache: %d simulations served, %d hits / %d misses (%.1f%% reuse), %d points held\n",
		total, hits, misses, pct, processCache.Len())
}

// runCached is the entry the drivers use: it consults the process-wide cache
// unless caching is disabled.
func runCached(r *Runner, cfg Config, profile prog.Profile) Result {
	if !cachingEnabled.Load() {
		return r.Run(cfg, profile)
	}
	return processCache.Run(r, cfg, profile)
}
