package sim

import (
	"container/list"
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"unsafe"

	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/pipe"
	"selthrottle/internal/prog"
	"selthrottle/internal/store"
)

// This file implements the memoizing result cache behind the experiment
// drivers. Simulation is a pure function of (Config, Profile) — determinism
// tests enforce it — so a Result computed once is valid for the whole
// process. Figures, sweeps, tables, the confidence harness, the ablations,
// and the calibration loop all overlap heavily (every figure shares the same
// baseline grid, A7/B9/C7 are one configuration, the depth-14 sweep point is
// the figure-5 cell, the BPRU confidence run is the baseline), so a shared
// cache removes entire re-simulations rather than shaving cycles.
//
// Keys are canonicalized: fields that provably cannot influence the
// simulation (policy names, the gating threshold of a non-gating policy, the
// JRS threshold of a BPRU run, the paper-reported calibration targets of a
// profile) are normalized away so cosmetically different descriptions of the
// same machine share one entry. The cached Result is rewritten with the
// caller's exact Config and profile name on the way out, so callers cannot
// observe the normalization.
//
// The cache is tiered: memory → disk → compute. The in-memory tier is a
// bounded LRU (a long-lived server cannot grow without limit); the optional
// disk tier (internal/store, attached with SetDisk / UseDiskStore) persists
// results across processes under the same canonical key, content-addressed
// by SHA-256 (see disktier.go). Disk failures never fail a request: a read
// error or write error is counted and the point is computed (or stays
// memory-only), so the worst a broken disk can do is cost recomputation.

// cacheKey identifies one simulation point. Config and Profile are plain
// comparable value types, so the key needs no serialization.
type cacheKey struct {
	cfg     Config
	profile prog.Profile
}

// cacheEntry is a single-flight slot: the requester that creates it (the
// leader) computes the point and closes done; later requesters for the same
// point block on done and then read res/err. Failure semantics matter here:
// a failed or panicked run must never be memoized (the leader unpublishes
// the entry before releasing its waiters, so the next requester recomputes),
// and every waiter on an erroring leader receives the leader's error
// promptly rather than hanging or silently reading a zero Result — the exact
// hazards of the previous sync.Once design, which marked the once done even
// when the compute panicked.
type cacheEntry struct {
	key  cacheKey
	done chan struct{}
	res  Result
	err  error

	// elem is the entry's slot in the LRU recency list, nil while the
	// leader is still computing (an in-flight entry is not evictable: its
	// waiters must always be released by its leader, never by an evictor).
	elem *list.Element
}

// DefaultCacheEntries is the in-memory tier's default entry cap. A cached
// entry is a few kilobytes (Result + key), so the default bounds the tier
// at roughly cacheEntryBytes * DefaultCacheEntries ≈ tens of megabytes —
// far above any figure grid, small enough for a long-lived server.
const DefaultCacheEntries = 8192

// cacheEntryBytes is the approximate in-memory footprint of one cached
// point (entry struct + its map/list bookkeeping), used for the byte-based
// limit and for reporting.
const cacheEntryBytes = int64(unsafe.Sizeof(cacheEntry{}) + unsafe.Sizeof(cacheKey{}) + 128)

// ResultCache memoizes Results by canonicalized (Config, Profile). It is
// safe for concurrent use; concurrent requests for the same point simulate
// it once. The in-memory tier holds at most limit completed entries,
// evicting least-recently-used points (an evicted point costs a disk read
// or a recomputation, never correctness).
type ResultCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	lru     *list.List // of *cacheEntry; front = most recently used
	limit   int        // max completed entries; <= 0 = unbounded

	disk atomic.Pointer[store.Store]

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	diskHits  atomic.Uint64
	diskPuts  atomic.Uint64
	diskErrs  atomic.Uint64
}

// NewResultCache returns an empty cache bounded at DefaultCacheEntries.
func NewResultCache() *ResultCache {
	return &ResultCache{
		entries: map[cacheKey]*cacheEntry{},
		lru:     list.New(),
		limit:   DefaultCacheEntries,
	}
}

// SetLimit bounds the in-memory tier to at most n completed entries (<= 0 =
// unbounded), evicting immediately if the cache is already over the new
// limit, and returns the previous limit.
func (c *ResultCache) SetLimit(n int) (previous int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	previous = c.limit
	c.limit = n
	c.evictOverLimitLocked()
	return previous
}

// SetLimitBytes bounds the in-memory tier by approximate footprint instead
// of entry count, converting via the fixed per-entry estimate.
func (c *ResultCache) SetLimitBytes(bytes int64) (previousEntries int) {
	n := int(bytes / cacheEntryBytes)
	if bytes > 0 && n < 1 {
		n = 1
	}
	return c.SetLimit(n)
}

// evictOverLimitLocked drops least-recently-used completed entries until
// the tier is within limit. Callers hold mu.
func (c *ResultCache) evictOverLimitLocked() {
	if c.limit <= 0 {
		return
	}
	for c.lru.Len() > c.limit {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.evictions.Add(1)
	}
}

// publishLocked marks a completed entry resident: it joins the LRU list and
// the tier evicts past its bound. Callers hold mu.
func (c *ResultCache) publishLocked(e *cacheEntry) {
	if c.entries[e.key] != e {
		return // unpublished (cleared) while computing; do not resurrect
	}
	e.elem = c.lru.PushFront(e)
	c.evictOverLimitLocked()
}

// canonicalConfig zeroes the Config fields that cannot influence simulation:
// the policy's display name, the specs a gating policy ignores, the gate
// threshold a selective policy ignores, and the JRS threshold of a non-JRS
// estimator (including normalizing the empty estimator kind to its BPRU
// default).
func canonicalConfig(cfg Config) Config {
	cfg.Policy.Name = ""
	// The zero deadlock threshold and its explicit default are the same
	// machine, so they share one entry. Other values keep distinct entries:
	// a tightened threshold changes abort semantics (a stress run expects
	// its fail-fast panic even when a laxer run of the same point already
	// completed and was cached).
	if cfg.Pipe.StuckCycles == pipe.DefaultStuckCycles {
		cfg.Pipe.StuckCycles = 0
	}
	if cfg.Policy.Gating {
		cfg.Policy.ByClass = [conf.NumClasses]core.Spec{}
	} else {
		cfg.Policy.GateThreshold = 0
	}
	if cfg.Estimator != EstJRS {
		cfg.Estimator = EstBPRU
		cfg.JRSThreshold = 0
	}
	return cfg
}

// canonicalProfile normalizes the calibration-override encodings (zero means
// default) and zeroes the paper-reported reference fields, which only feed
// reports and tests, never the generator.
func canonicalProfile(p prog.Profile) prog.Profile {
	p.NoiseScaleOverride = p.NoiseScale()
	p.HardFreqOverride = p.HardFreq()
	p.PaperInput = ""
	p.PaperMInsts, p.PaperMBranch = 0, 0
	p.PaperMissPct, p.TargetMissTol = 0, 0
	return p
}

// SetDisk attaches (or, with nil, detaches) a persistent store as the
// cache's second tier and returns the previous one. Entries already on disk
// serve memory misses without simulation; computed points are written
// through best-effort. The store's durability and corruption handling are
// its own (internal/store); from the cache's side every disk failure
// degrades to compute-through and increments the disk-error counter.
func (c *ResultCache) SetDisk(st *store.Store) (previous *store.Store) {
	return c.disk.Swap(st)
}

// Disk returns the attached disk tier, if any.
func (c *ResultCache) Disk() *store.Store { return c.disk.Load() }

// Run returns the memoized Result for (cfg, profile), simulating it on r at
// most once per cache lifetime. It is the legacy fail-fast wrapper around
// RunE: a terminal simulation failure is raised as a panic (in every waiter
// as well as the leader).
func (c *ResultCache) Run(r *Runner, cfg Config, profile prog.Profile) Result {
	res, err := c.RunE(context.Background(), r, cfg, profile)
	if err != nil {
		panic(err) // fail-fast: legacy contract, typed *RunError for Guard
	}
	return res
}

// RunE returns the memoized Result for (cfg, profile), checking the memory
// tier, then the disk tier, then simulating on r; concurrent requests for
// one point elect a leader and the rest wait. The returned Result carries
// the caller's exact cfg.
//
// Failure semantics: a failed run is never memoized in either tier — the
// leader removes the entry before releasing its waiters, so the point is
// recomputed on the next request — and each waiter receives the leader's
// error promptly. A waiter whose own ctx ends first returns its context
// error without waiting out the leader. Disk-tier failures (read or write)
// are counted and absorbed: the point is computed as if the disk were
// absent. Counters: the leader's simulation counts as a miss (successful or
// not); a disk-served leader counts as a disk hit; only successful waiters
// count as memory hits.
func (c *ResultCache) RunE(ctx context.Context, r *Runner, cfg Config, profile prog.Profile) (Result, error) {
	key := cacheKey{canonicalConfig(cfg), canonicalProfile(profile)}
	c.mu.Lock()
	e := c.entries[key]
	leader := false
	if e == nil {
		e = &cacheEntry{key: key, done: make(chan struct{})}
		c.entries[key] = e
		leader = true
	} else if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	c.mu.Unlock()

	if leader {
		published := false
		defer func() {
			// Runs on success, error, and panic alike: on anything but a
			// published success, unpublish the entry and release the
			// waiters, so no failure is memoized and nobody blocks forever
			// — even if the compute panicked past RunE's own recovery.
			if published {
				return
			}
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			if e.err == nil {
				e.err = fmt.Errorf("sim: cache leader for %s did not complete", profile.Name)
			}
			close(e.done)
		}()

		// Disk tier: a persisted point serves the memory miss without
		// simulation. Read errors degrade to compute; an entry the store
		// quarantines mid-flight is a plain miss.
		if d := c.disk.Load(); d != nil {
			if ent, ok, derr := d.Get(diskKeyOf(key)); derr != nil {
				c.diskErrs.Add(1)
			} else if ok {
				e.res = entryResult(&ent)
				c.mu.Lock()
				c.publishLocked(e)
				c.mu.Unlock()
				published = true
				close(e.done)
				c.diskHits.Add(1)
				res := e.res
				res.Config = cfg
				res.Benchmark = profile.Name
				return res, nil
			}
		}

		res, err := r.RunE(ctx, cfg, profile)
		c.misses.Add(1)
		if err != nil {
			e.err = err
			return Result{}, err // defer unpublishes and releases waiters
		}
		e.res = res
		c.mu.Lock()
		c.publishLocked(e)
		c.mu.Unlock()
		published = true
		close(e.done)
		// Write-through to the disk tier, best-effort: a failed persist is
		// a counted degradation (the result is already served from
		// memory), never an error to the caller. Failed runs never reach
		// this point, so the store only ever holds valid results.
		if d := c.disk.Load(); d != nil {
			ent := resultEntry(&res)
			if derr := d.Put(diskKeyOf(key), &ent); derr != nil {
				c.diskErrs.Add(1)
			} else {
				c.diskPuts.Add(1)
			}
		}
		res.Config = cfg
		res.Benchmark = profile.Name
		return res, nil
	}

	select {
	case <-e.done:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	if e.err != nil {
		return Result{}, e.err
	}
	c.hits.Add(1)
	res := e.res
	res.Config = cfg
	res.Benchmark = profile.Name
	return res, nil
}

// Stats reports the cache's memory-tier hit and miss counts since
// construction (or the last Clear). Misses count simulations actually
// executed; disk-tier serves appear in TierStats, not here.
func (c *ResultCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// CacheTierStats is a point-in-time view of every cache tier, the shape
// behind WriteCacheSummary and stserve's /statsz.
type CacheTierStats struct {
	MemHits     uint64      `json:"mem_hits"`
	MemMisses   uint64      `json:"mem_misses"` // simulations computed
	MemEntries  int         `json:"mem_entries"`
	MemLimit    int         `json:"mem_limit"`
	MemBytes    int64       `json:"mem_approx_bytes"`
	Evictions   uint64      `json:"evictions"`
	DiskEnabled bool        `json:"disk_enabled"`
	Disk        store.Stats `json:"disk"`
	DiskHits    uint64      `json:"disk_hits"`
	DiskPuts    uint64      `json:"disk_puts"`
	DiskErrors  uint64      `json:"disk_errors"` // counted degradations, never outages
}

// TierStats returns the cache's full tiered counters.
func (c *ResultCache) TierStats() CacheTierStats {
	c.mu.Lock()
	entries := len(c.entries)
	limit := c.limit
	c.mu.Unlock()
	ts := CacheTierStats{
		MemHits:    c.hits.Load(),
		MemMisses:  c.misses.Load(),
		MemEntries: entries,
		MemLimit:   limit,
		MemBytes:   int64(entries) * cacheEntryBytes,
		Evictions:  c.evictions.Load(),
		DiskHits:   c.diskHits.Load(),
		DiskPuts:   c.diskPuts.Load(),
		DiskErrors: c.diskErrs.Load(),
	}
	if d := c.disk.Load(); d != nil {
		ts.DiskEnabled = true
		ts.Disk = d.Stats()
	}
	return ts
}

// Len reports the number of memoized points resident in memory.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Clear drops every memory-tier entry and zeroes the statistics. The disk
// tier, if attached, is left intact (its entries remain valid across
// Clear; drop the directory to discard them).
func (c *ResultCache) Clear() {
	c.mu.Lock()
	c.entries = map[cacheKey]*cacheEntry{}
	c.lru = list.New()
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.diskHits.Store(0)
	c.diskPuts.Store(0)
	c.diskErrs.Store(0)
}

// processCache is the process-wide cache every driver in this package (and
// every command built on it) shares.
var (
	processCache   = NewResultCache()
	cachingEnabled atomic.Bool
)

func init() { cachingEnabled.Store(true) }

// SetResultCaching enables or disables the process-wide result cache and
// returns the previous setting. Disabling is for measurements that must
// exercise the simulator itself (benchmarks, identity tests); the cache
// never changes results, only whether they are recomputed.
func SetResultCaching(on bool) (previous bool) {
	return cachingEnabled.Swap(on)
}

// ResultCacheStats reports the process-wide cache's hit/miss counters.
func ResultCacheStats() (hits, misses uint64) { return processCache.Stats() }

// ResultCacheTierStats reports the process-wide cache's full tiered
// counters (memory tier, evictions, disk tier).
func ResultCacheTierStats() CacheTierStats { return processCache.TierStats() }

// SetResultCacheLimit bounds the process-wide cache's memory tier to n
// completed entries (<= 0 = unbounded) and returns the previous limit.
func SetResultCacheLimit(n int) (previous int) { return processCache.SetLimit(n) }

// ClearResultCache empties the process-wide cache (long-running processes
// exploring unbounded configuration spaces can bound memory with periodic
// clears; the LRU bound makes this optional rather than required).
func ClearResultCache() { processCache.Clear() }

// WriteCacheSummary prints the process-wide cache's reuse summary, for the
// drivers' -v flag.
func WriteCacheSummary(w io.Writer) {
	ts := processCache.TierStats()
	total := ts.MemHits + ts.MemMisses + ts.DiskHits
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(ts.MemHits+ts.DiskHits) / float64(total)
	}
	fmt.Fprintf(w, "result cache: %d simulations served, %d mem hits / %d disk hits / %d computed (%.1f%% reuse), %d points held, %d evicted\n",
		total, ts.MemHits, ts.DiskHits, ts.MemMisses, pct, ts.MemEntries, ts.Evictions)
	if ts.DiskEnabled {
		fmt.Fprintf(w, "disk store: %d entries, %d puts, %d quarantined, %d read/write errors\n",
			ts.Disk.Entries, ts.DiskPuts, ts.Disk.Quarantined, ts.Disk.ReadErrors+ts.Disk.WriteErrors)
	}
}

// runCached is the fail-fast entry the legacy drivers use: it consults the
// process-wide cache unless caching is disabled, and panics on a terminal
// run failure.
func runCached(r *Runner, cfg Config, profile prog.Profile) Result {
	res, err := runCachedE(context.Background(), r, cfg, profile)
	if err != nil {
		panic(err) // fail-fast: legacy contract, typed *RunError for Guard
	}
	return res
}

// runCachedE is the supervised entry: it consults the process-wide cache
// unless caching is disabled or the configuration carries a fault-injection
// hook — a faulted run is impure by design (its outcome depends on the
// hook's state), so it must never be served from or admitted to the cache
// (in either tier).
func runCachedE(ctx context.Context, r *Runner, cfg Config, profile prog.Profile) (Result, error) {
	if !cachingEnabled.Load() || cfg.Pipe.Fault != nil {
		return r.RunE(ctx, cfg, profile)
	}
	return processCache.RunE(ctx, r, cfg, profile)
}
