package sim

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"selthrottle/internal/faultinject"
	"selthrottle/internal/pipe"
	"selthrottle/internal/prog"
)

// cacheTestProfiles returns a two-profile set for fast sweep tests.
func cacheTestProfiles() []prog.Profile {
	var out []prog.Profile
	for _, n := range []string{"gzip", "twolf"} {
		p, _ := prog.ProfileByName(n)
		out = append(out, p)
	}
	return out
}

// TestCachedSweepsMatchUncached is the cache's correctness gate: the figure
// and sweep harnesses must produce bit-identical output with the cache cold,
// with it warm (every point a hit), and with caching disabled entirely.
func TestCachedSweepsMatchUncached(t *testing.T) {
	opts := Options{Instructions: 8000, Warmup: 2000, Profiles: cacheTestProfiles()}
	depths := []int{6, 10, 14}

	prev := SetResultCaching(false)
	defer SetResultCaching(prev)
	uncached := DepthSweep(opts, depths)
	uncachedSize := SizeSweep(opts, []int{8, 16})

	SetResultCaching(true)
	ClearResultCache()
	cold := DepthSweep(opts, depths)
	h0, m0 := ResultCacheStats()
	warm := DepthSweep(opts, depths)
	h1, m1 := ResultCacheStats()
	warmSize := SizeSweep(opts, []int{8, 16})

	if !reflect.DeepEqual(uncached, cold) {
		t.Fatal("cold cached DepthSweep diverged from uncached")
	}
	if !reflect.DeepEqual(uncached, warm) {
		t.Fatal("warm cached DepthSweep diverged from uncached")
	}
	if !reflect.DeepEqual(uncachedSize, warmSize) {
		t.Fatal("cached SizeSweep diverged from uncached")
	}
	if m1 != m0 {
		t.Fatalf("repeated sweep re-simulated %d points", m1-m0)
	}
	if wantHits := h0 + m0; h1-h0 != wantHits {
		t.Fatalf("repeated sweep hit %d of %d points", h1-h0, wantHits)
	}
}

// TestCacheSharesBaselinesAcrossFigures pins the headline reuse effect: two
// figures over the same options share their baseline grid (and any repeated
// experiment), so the second figure simulates only its new cells.
func TestCacheSharesBaselinesAcrossFigures(t *testing.T) {
	opts := Options{Instructions: 8000, Warmup: 2000, Profiles: cacheTestProfiles()}
	prev := SetResultCaching(true)
	defer SetResultCaching(prev)
	ClearResultCache()

	RunFigure("first", []Experiment{BestExperiment()}, opts)
	_, m0 := ResultCacheStats()
	fr := RunFigure("second", []Experiment{pipelineGating("PG")}, opts)
	_, m1 := ResultCacheStats()

	np := len(opts.Profiles)
	if int(m1-m0) != np {
		t.Fatalf("second figure simulated %d points, want %d (baseline shared)", m1-m0, np)
	}
	if len(fr.Baselines) != np {
		t.Fatal("figure shape wrong")
	}
}

// TestCacheCanonicalization: configurations that differ only in
// simulation-irrelevant fields (policy display name, JRS threshold under
// BPRU, gate threshold of a non-gating policy) must share one entry — and
// the returned Result must still carry the caller's exact Config.
func TestCacheCanonicalization(t *testing.T) {
	p, _ := prog.ProfileByName("gzip")
	cfg := Default()
	cfg.Instructions = 6000
	cfg.Warmup = 1500

	prev := SetResultCaching(true)
	defer SetResultCaching(prev)
	ClearResultCache()

	a := cfg
	a.Policy.Name = "spelled-one-way"
	a.JRSThreshold = 12
	b := cfg
	b.Policy.Name = "spelled-differently"
	b.JRSThreshold = 99        // ignored: estimator is BPRU
	b.Policy.GateThreshold = 7 // ignored: policy is not gating

	ra := Run(a, p)
	_, m0 := ResultCacheStats()
	rb := Run(b, p)
	h1, m1 := ResultCacheStats()
	if m1 != m0 || h1 == 0 {
		t.Fatal("canonically equal configurations were simulated twice")
	}
	if ra.Config != a || rb.Config != b {
		t.Fatal("cached results must carry the caller's exact Config")
	}
	ra.Config, rb.Config = Config{}, Config{}
	if ra != rb {
		t.Fatal("shared entry returned different results")
	}

	// The JRS threshold is semantic under the JRS estimator: no sharing.
	ja := cfg
	ja.Estimator = EstJRS
	ja.JRSThreshold = 4
	jb := ja
	jb.JRSThreshold = 12
	Run(ja, p)
	_, m2 := ResultCacheStats()
	Run(jb, p)
	if _, m3 := ResultCacheStats(); m3 != m2+1 {
		t.Fatal("distinct JRS thresholds must not share an entry")
	}
}

func TestCacheClearAndSummary(t *testing.T) {
	p, _ := prog.ProfileByName("gzip")
	cfg := Default()
	cfg.Instructions = 6000
	cfg.Warmup = 1500

	prev := SetResultCaching(true)
	defer SetResultCaching(prev)
	ClearResultCache()
	Run(cfg, p)
	Run(cfg, p)
	h, m := ResultCacheStats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", h, m)
	}
	var sb strings.Builder
	WriteCacheSummary(&sb)
	if !strings.Contains(sb.String(), "1 mem hits / 0 disk hits / 1 computed") {
		t.Fatalf("summary missing counters: %q", sb.String())
	}
	ClearResultCache()
	if h, m = ResultCacheStats(); h != 0 || m != 0 {
		t.Fatal("clear kept statistics")
	}
	Run(cfg, p)
	if _, m = ResultCacheStats(); m != 1 {
		t.Fatal("cleared cache did not re-simulate")
	}
}

// TestCacheConcurrentSingleFlight: hammering one point from many goroutines
// simulates it exactly once and returns identical results everywhere.
func TestCacheConcurrentSingleFlight(t *testing.T) {
	p, _ := prog.ProfileByName("twolf")
	cfg := Default()
	cfg.Instructions = 6000
	cfg.Warmup = 1500

	c := NewResultCache()
	const workers = 8
	results := make([]Result, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			results[w] = c.Run(NewRunner(), cfg, p)
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	if _, m := c.Stats(); m != 1 {
		t.Fatalf("point simulated %d times under contention", m)
	}
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatal("concurrent callers observed different results")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}

// TestCacheSingleFlightPanickingCompute: when the compute panics (here via a
// persistently-injected fault), every concurrent caller of the point — the
// leader and all its waiters — receives the error rather than hanging or
// reading a zero Result, nothing is counted as a hit, and the failure is
// never memoized.
func TestCacheSingleFlightPanickingCompute(t *testing.T) {
	p, _ := prog.ProfileByName("gzip")
	cfg := Default()
	cfg.Instructions, cfg.Warmup = 6000, 1500
	cfg.Pipe.Fault = faultinject.NewPlan(faultinject.Fault{
		Kind: faultinject.KindPanic, Stage: pipe.StageIssue, Cycle: 200,
	})

	c := NewResultCache()
	const workers = 8
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			_, errs[w] = c.RunE(context.Background(), NewRunner(), cfg, p)
		}(w)
	}
	close(start)
	wg.Wait()

	for w, err := range errs {
		re, ok := pipe.AsRunError(err)
		if !ok || re.Kind != pipe.ErrPanic {
			t.Fatalf("worker %d: err %v, want ErrPanic RunError", w, err)
		}
	}
	if h, _ := c.Stats(); h != 0 {
		t.Fatalf("%d hits on an always-failing point", h)
	}
	if c.Len() != 0 {
		t.Fatalf("failure memoized: cache holds %d entries", c.Len())
	}
}

// TestCacheRecomputesAfterFailure: a failed run leaves no entry behind, so
// the next request for the same point recomputes it — and succeeds when the
// failure was transient.
func TestCacheRecomputesAfterFailure(t *testing.T) {
	p, _ := prog.ProfileByName("twolf")
	cfg := Default()
	cfg.Instructions, cfg.Warmup = 6000, 1500
	cfg.Pipe.Fault = faultinject.NewPlan(faultinject.Fault{
		Kind: faultinject.KindPanic, Stage: pipe.StageIssue, Cycle: 200, Once: true,
	})

	c := NewResultCache()
	if _, err := c.RunE(context.Background(), NewRunner(), cfg, p); err == nil {
		t.Fatal("first attempt did not observe the injected fault")
	}
	if c.Len() != 0 {
		t.Fatal("failed run was memoized")
	}
	res, err := c.RunE(context.Background(), NewRunner(), cfg, p)
	if err != nil {
		t.Fatalf("recompute after transient failure: %v", err)
	}
	if res.Stats.Committed == 0 {
		t.Fatal("recomputed result is empty")
	}
	if _, m := c.Stats(); m != 2 {
		t.Fatalf("%d misses, want 2 (failure plus recompute)", m)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}
