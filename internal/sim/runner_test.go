package sim

import (
	"reflect"
	"runtime"
	"testing"

	"selthrottle/internal/prog"
)

// TestRunnerReuseBitIdentical is the refactor's correctness gate: a reused
// run context must produce exactly the Result a freshly constructed one
// does, field for field (Result is comparable, so == is a bit-level check
// over stats, energy breakdown, and headline metrics).
func TestRunnerReuseBitIdentical(t *testing.T) {
	p, _ := prog.ProfileByName("gzip")
	cfg := tinyConfig()
	fresh := NewRunner().Run(cfg, p)

	r := NewRunner()
	first := r.Run(cfg, p)
	second := r.Run(cfg, p)
	if first != fresh {
		t.Fatal("first run on a new runner diverged from an independent fresh runner")
	}
	if second != first {
		t.Fatal("rerun on a reused runner diverged from its first run")
	}
}

// TestRunnerReuseAcrossConfigsAndProfiles drives one context through
// different policies, estimators, depths, and programs, then re-runs the
// original pair: any state leaking across runs would show up as a changed
// Result.
func TestRunnerReuseAcrossConfigsAndProfiles(t *testing.T) {
	gz, _ := prog.ProfileByName("gzip")
	tw, _ := prog.ProfileByName("twolf")
	base := tinyConfig()

	r := NewRunner()
	want := r.Run(base, gz)

	c2 := BestExperiment().Apply(base)
	deep := base
	deep.Pipe.SetDepth(20)
	jrs := base
	jrs.Estimator = EstJRS

	r.Run(c2, tw)
	r.Run(deep, gz)
	r.Run(jrs, tw)

	if got := r.Run(base, gz); got != want {
		t.Fatal("runner state leaked across intervening runs with other configurations")
	}
}

// TestRunFigureIndependentOfGOMAXPROCS pins the figure harness's
// scheduling-independence: the same figure computed serially and with a
// parallel worker pool must match exactly.
func TestRunFigureIndependentOfGOMAXPROCS(t *testing.T) {
	var profiles []prog.Profile
	for _, n := range []string{"gzip", "twolf"} {
		p, _ := prog.ProfileByName(n)
		profiles = append(profiles, p)
	}
	opts := Options{Instructions: 8000, Warmup: 2000, Profiles: profiles}
	exps := []Experiment{BestExperiment(), pipelineGating("PG")}

	prev := runtime.GOMAXPROCS(1)
	serial := RunFigure("gmp", exps, opts)
	runtime.GOMAXPROCS(4)
	parallel := RunFigure("gmp", exps, opts)
	runtime.GOMAXPROCS(prev)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("RunFigure output depends on GOMAXPROCS")
	}
}
