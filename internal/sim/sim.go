// Package sim ties the substrates together into runnable experiments: it
// owns the simulation configuration (Table 3 defaults), executes single
// runs (workload + predictor + estimator + policy + pipeline + power meter),
// compares runs against baselines with the paper's metrics (speedup, power
// savings, energy savings, energy-delay improvement), and defines every
// experiment of the evaluation section (Figures 1 and 3-7, Tables 1-3).
//
// # Run contexts
//
// The unit of execution is the Runner, a reusable run context that owns one
// pipeline, branch predictor, confidence estimator, throttle controller, and
// power meter. Runner.Run executes any number of (Config, Profile) pairs
// back-to-back, resetting (rather than reallocating) every component between
// runs; structural pieces are rebuilt only when the configuration they
// depend on actually changes. A reset component restores its exact as-new
// state, so results are bit-identical whether a Runner is fresh or reused —
// determinism tests enforce this.
//
// All experiment drivers (Run, RunAll, RunFigure, DepthSweep, SizeSweep, and
// the table/confidence harnesses built on them) draw Runners from one shared
// pool: worker goroutines lease a Runner for their lifetime and return it
// when the job list drains, so figure-scale fan-out reuses a handful of
// simulator instances instead of constructing one per (experiment,
// benchmark) pair. Because every run starts from an identical reset state,
// experiment results are independent of GOMAXPROCS and of which pooled
// Runner served them.
//
// # Result memoization
//
// Behind the Runner pool sits a process-wide memoizing result cache keyed by
// canonicalized (Config, Profile) — see resultcache.go. Since runs are pure
// functions of their inputs, every driver consults it before simulating, so
// the overlapping baselines of the figure and sweep grids (and repeated
// invocations in one process) are simulated exactly once. SetResultCaching
// disables it for raw-throughput measurement; WriteCacheSummary reports the
// reuse counters behind the commands' -v flag.
package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"selthrottle/internal/bpred"
	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/pipe"
	"selthrottle/internal/power"
	"selthrottle/internal/prog"
)

// EstimatorKind selects the confidence estimator for a run.
type EstimatorKind string

// Estimator kinds.
const (
	EstBPRU EstimatorKind = "bpru" // the paper's estimator (Selective Throttling)
	EstJRS  EstimatorKind = "jrs"  // Manne et al.'s estimator (Pipeline Gating)
)

// Config describes one simulation run.
type Config struct {
	Pipe pipe.Config

	PredBytes int // gshare size (paper baseline: 8 KB)
	ConfBytes int // confidence estimator size (paper baseline: 8 KB)

	Estimator    EstimatorKind
	JRSThreshold int // MDC threshold (paper: 12)

	Policy core.Policy

	Instructions uint64 // measured instructions
	Warmup       uint64 // instructions run before measurement starts

	// LegacyWalk selects the workload walker's retained reference
	// implementation (float outcome thresholds, embedded block chasing)
	// instead of the integer-threshold/blockMeta fast path. The two are
	// bit-identical; the flag exists for the identity regression tests,
	// mirroring Pipe.LegacyScanIssue.
	LegacyWalk bool
}

// Default returns the paper's baseline configuration: Table 3, 14 stages,
// 8 KB gshare, 8 KB BPRU, no throttling.
func Default() Config {
	return Config{
		Pipe:         pipe.Default(),
		PredBytes:    8 << 10,
		ConfBytes:    8 << 10,
		Estimator:    EstBPRU,
		JRSThreshold: 12,
		Policy:       core.Baseline(),
		Instructions: prog.DefaultInstructions,
		Warmup:       prog.DefaultInstructions / 4,
	}
}

// Result is the outcome of one run on one benchmark.
type Result struct {
	Benchmark string
	Config    Config

	Stats pipe.Stats   // measured-interval statistics
	Power power.Report // measured-interval energy breakdown

	IPC      float64
	MissRate float64
	Seconds  float64
	Energy   float64 // joules
	EDelay   float64 // joule-seconds
	AvgPower float64 // watts
}

// newEstimator builds the configured estimator.
func newEstimator(cfg Config) conf.Estimator {
	switch cfg.Estimator {
	case EstJRS:
		return conf.NewJRS(cfg.ConfBytes, cfg.JRSThreshold)
	default:
		return conf.NewBPRU(cfg.ConfBytes)
	}
}

// Runner is a reusable run context: one pipeline plus its collaborators,
// able to execute many (Config, Profile) pairs back-to-back. Between runs
// every component is Reset in place; a component is reconstructed only when
// the part of the configuration it depends on changes (pipeline structure,
// predictor size, estimator kind/size). A Runner is not safe for concurrent
// use; the package's drivers give each worker goroutine its own.
type Runner struct {
	// Construction keys: which configuration the cached components match.
	pipeCfg   pipe.Config
	predBytes int
	estKind   EstimatorKind
	estBytes  int
	estThresh int

	walker *prog.Walker
	pred   *bpred.Gshare
	est    conf.Estimator
	ctrl   *core.Controller
	meter  *power.Meter
	pl     *pipe.Pipeline
}

// NewRunner returns an empty run context; components are built lazily on the
// first Run and recycled afterwards.
func NewRunner() *Runner { return &Runner{} }

// Run executes one configuration on one benchmark profile. The first
// cfg.Warmup instructions train predictors and caches; measurement covers
// the next cfg.Instructions. Results are bit-identical to a run on a freshly
// constructed Runner: every reused component restores its exact as-new
// state. Run is the legacy fail-fast wrapper around RunE: any terminal
// failure is raised as a *pipe.RunError panic.
func (r *Runner) Run(cfg Config, profile prog.Profile) Result {
	res, err := r.RunE(context.Background(), cfg, profile)
	if err != nil {
		panic(err) // fail-fast: legacy contract, typed *RunError for Guard
	}
	return res
}

// RunE executes one configuration on one benchmark profile under ctx,
// returning the result or the terminal failure as an error (a *pipe.RunError
// for simulator failures — deadlock, invariant panic, injected fault — or
// the context's own error if ctx was already done on entry). When ctx
// carries a deadline or cancellation, a watchdog goroutine translates
// ctx.Done into the pipeline's cooperative Cancel, stopping a runaway point
// mid-run; the goroutine provably exits before RunE returns.
//
// On a clean error (deadlock, cancellation) the Runner remains reusable: the
// next run Resets every component as usual. After a recovered panic the
// machine's internal state is undefined, so the Runner discards its cached
// components and the next run rebuilds them from scratch.
func (r *Runner) RunE(ctx context.Context, cfg Config, profile prog.Profile) (res Result, err error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	program := getProgram(profile)
	if r.walker == nil {
		r.walker = prog.NewWalker(program)
	} else {
		r.walker.Reset(program)
	}
	r.walker.SetLegacy(cfg.LegacyWalk)
	if r.pred == nil || r.predBytes != cfg.PredBytes {
		r.pred, r.predBytes = bpred.NewGshare(cfg.PredBytes), cfg.PredBytes
	} else {
		r.pred.Reset()
	}
	if r.est == nil || r.estKind != cfg.Estimator ||
		r.estBytes != cfg.ConfBytes || r.estThresh != cfg.JRSThreshold {
		r.est = newEstimator(cfg)
		r.estKind, r.estBytes, r.estThresh = cfg.Estimator, cfg.ConfBytes, cfg.JRSThreshold
	} else {
		r.est.Reset()
	}
	if r.ctrl == nil {
		r.ctrl = core.NewController(cfg.Policy)
	} else {
		r.ctrl.Reset(cfg.Policy)
	}
	if r.meter == nil {
		r.meter = &power.Meter{}
	} else {
		r.meter.Reset()
	}
	if r.pl == nil || r.pipeCfg != cfg.Pipe {
		r.pl = pipe.New(cfg.Pipe, r.walker, r.pred, r.est, r.ctrl, r.meter)
		r.pipeCfg = cfg.Pipe
	} else {
		r.pl.Reset(r.walker, r.pred, r.est, r.ctrl, r.meter)
	}

	pl, meter := r.pl, r.meter

	// Deadline watchdog: translate ctx.Done into the pipeline's cooperative
	// Cancel. The stop/exited pair guarantees the goroutine has exited
	// before RunE returns — a canceled grid must not leak watchdogs, and a
	// pooled Runner must not carry one into its next lease. Background-like
	// contexts (nil Done) skip the goroutine entirely, keeping the benchmark
	// hot path allocation- and goroutine-free.
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			select {
			case <-done:
				pl.Cancel()
			case <-stop:
			}
		}()
		defer func() {
			close(stop)
			<-exited
		}()
	}
	// Safety net for panics outside the pipeline's own recover (component
	// construction, analysis): convert to an error and poison the Runner.
	defer func() {
		if rec := recover(); rec != nil {
			r.discard()
			if e, ok := rec.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("sim: run panicked: %v", rec)
			}
		}
	}()

	if _, err := pl.RunE(cfg.Warmup); err != nil {
		return Result{}, r.failed(ctx, err)
	}
	meterAtWarm := *meter
	statsAtWarm := pl.Stats

	if _, err := pl.RunE(cfg.Warmup + cfg.Instructions); err != nil {
		return Result{}, r.failed(ctx, err)
	}

	delta := subMeter(*meter, meterAtWarm)
	stats := subStats(pl.Stats, statsAtWarm)

	params := power.DefaultParams()
	report := delta.Analyze(params)

	return Result{
		Benchmark: profile.Name,
		Config:    cfg,
		Stats:     stats,
		Power:     report,
		IPC:       stats.IPC(),
		MissRate:  stats.MissRate(),
		Seconds:   report.Seconds,
		Energy:    report.TotalEnergy,
		EDelay:    report.EnergyDelay,
		AvgPower:  report.AvgPower,
	}, nil
}

// failed post-processes a pipeline run error: a cancellation is annotated
// with the context's error (so errors.Is(err, context.DeadlineExceeded)
// works through the RunError), and a recovered panic or wrong-path commit —
// after which the machine's internal state is undefined — poisons the Runner
// so the next run rebuilds every component instead of Resetting corrupt
// state.
func (r *Runner) failed(ctx context.Context, err error) error {
	if re, ok := pipe.AsRunError(err); ok {
		switch re.Kind {
		case pipe.ErrCanceled:
			if re.Cause == nil {
				re.Cause = ctx.Err()
			}
		case pipe.ErrPanic, pipe.ErrWrongPathCommit:
			r.discard()
		}
	}
	return err
}

// discard drops every cached component and construction key: the next run
// builds the Runner from scratch, exactly as if it were new. Used after
// recovered panics, when Reset cannot be trusted to restore a corrupt
// machine.
func (r *Runner) discard() { *r = Runner{} }

// runnerPool shares Runners across every driver in the package. Workers
// lease a Runner for a whole job list; one-shot Run calls borrow and return
// immediately. Pooled Runners carry no observable state between runs (the
// Reset path restores exact as-new behaviour), so sharing is safe.
var runnerPool = sync.Pool{New: func() any { return NewRunner() }}

// Run executes one configuration on one benchmark profile using a pooled
// run context, consulting the process-wide result cache first: a point
// already simulated in this process is returned without re-simulation
// (disable with SetResultCaching for raw-throughput measurements).
func Run(cfg Config, profile prog.Profile) Result {
	r := runnerPool.Get().(*Runner)
	defer runnerPool.Put(r)
	return runCached(r, cfg, profile)
}

// runJobs executes jobs 0..n-1 across a bounded worker pool. Each worker
// leases one pooled Runner for its lifetime, so a job list of any size costs
// at most GOMAXPROCS simulator instances. Job outputs must be written to
// per-index slots by the callback; ordering across workers is unspecified
// but every job's result is deterministic (runs are independent and Runners
// reset fully), so callers' outputs never depend on scheduling.
func runJobs(n int, job func(r *Runner, i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			r := runnerPool.Get().(*Runner)
			for i := 0; i < n; i++ {
				job(r, i)
			}
			runnerPool.Put(r)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			r := runnerPool.Get().(*Runner)
			defer runnerPool.Put(r)
			for i := range jobs {
				job(r, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// programCache memoizes generated programs: every experiment reuses the same
// eight CFGs, and generation cost would otherwise dominate short test runs.
// The key is a comparable struct (not a formatted string) so the per-Run
// lookup allocates nothing.
type programKey struct {
	name        string
	seed        uint64
	noise, hard float64
}

var (
	programMu    sync.RWMutex
	programCache = map[programKey]*prog.Program{}
)

func getProgram(profile prog.Profile) *prog.Program {
	key := programKey{profile.Name, profile.Seed, profile.NoiseScale(), profile.HardFreq()}
	programMu.RLock()
	p := programCache[key]
	programMu.RUnlock()
	if p != nil {
		return p
	}
	generated := prog.Generate(profile)
	programMu.Lock()
	if p = programCache[key]; p == nil {
		p = generated
		programCache[key] = p
	}
	programMu.Unlock()
	return p
}

// subMeter returns a-b field-wise (measurement-interval activity).
func subMeter(a, b power.Meter) power.Meter {
	out := a
	out.Cycles -= b.Cycles
	for u := range out.Events {
		out.Events[u] -= b.Events[u]
		out.Wasted[u] -= b.Wasted[u]
	}
	return out
}

// subStats returns a-b field-wise.
func subStats(a, b pipe.Stats) pipe.Stats {
	out := a
	out.Cycles -= b.Cycles
	out.Committed -= b.Committed
	out.Fetched -= b.Fetched
	out.WrongPathFetched -= b.WrongPathFetched
	out.WrongPathDecoded -= b.WrongPathDecoded
	out.WrongPathDispatched -= b.WrongPathDispatched
	out.WrongPathIssued -= b.WrongPathIssued
	out.CondBranches -= b.CondBranches
	out.Mispredicts -= b.Mispredicts
	out.FetchGatedCycles -= b.FetchGatedCycles
	out.DecodeGatedCycles -= b.DecodeGatedCycles
	out.NoSelectStalls -= b.NoSelectStalls
	out.TrueFlushes -= b.TrueFlushes
	out.ResolveLatTotal -= b.ResolveLatTotal
	out.ResolveWindowWait -= b.ResolveWindowWait
	out.ResolveIssueWait -= b.ResolveIssueWait
	out.FetchIdleHeld -= b.FetchIdleHeld
	out.FetchIdleBackPressure -= b.FetchIdleBackPressure
	out.Quality.Mispred -= b.Quality.Mispred
	out.Quality.MispredLow -= b.Quality.MispredLow
	out.Quality.LowLabeled -= b.Quality.LowLabeled
	out.Quality.Total -= b.Quality.Total
	for i := range out.Quality.PerClassTotal {
		out.Quality.PerClassTotal[i] -= b.Quality.PerClassTotal[i]
		out.Quality.PerClassWrong[i] -= b.Quality.PerClassWrong[i]
	}
	return out
}

// Comparison holds the paper's four headline metrics for one experiment run
// against its baseline (same benchmark, same structural configuration).
type Comparison struct {
	Benchmark string

	Speedup       float64 // baseline time / experiment time (<1 = slowdown)
	PowerSaving   float64 // percent
	EnergySaving  float64 // percent
	EDImprovement float64 // percent
}

// ratio returns a/b, or 0 when the quotient is undefined (zero or
// non-finite operands). Degenerate runs — zero measured cycles, zero energy
// — must yield well-defined zeros rather than NaN/Inf that would leak into
// figure output and poison every average they touch.
func ratio(a, b float64) float64 {
	if b == 0 || math.IsNaN(b) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsInf(a, 0) {
		return 0
	}
	return a / b
}

// savingPct returns the percent saving of x against base (100*(1 - x/base)),
// or 0 when either operand is zero-denominator-degenerate or non-finite (a
// zero-cycle run reports NaN/Inf average power; the saving against or of
// such a run is defined as 0, never NaN/Inf).
func savingPct(base, x float64) float64 {
	if base == 0 || math.IsNaN(base) || math.IsInf(base, 0) || math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return 100 * (1 - x/base)
}

// Compare computes the headline metrics of x against base. Zero-baseline
// denominators produce well-defined zeros, never NaN/Inf.
func Compare(base, x Result) Comparison {
	return Comparison{
		Benchmark:     x.Benchmark,
		Speedup:       ratio(base.Seconds, x.Seconds),
		PowerSaving:   savingPct(base.AvgPower, x.AvgPower),
		EnergySaving:  savingPct(base.Energy, x.Energy),
		EDImprovement: savingPct(base.EDelay, x.EDelay),
	}
}

// AverageComparison averages metrics across benchmarks (arithmetic mean of
// percentages and of the speedup ratio, matching the paper's "Average"
// bars). An empty slice yields a zero Comparison, and non-finite entries —
// which can only come from degenerate runs — are excluded per metric so one
// poisoned cell cannot turn a whole figure row into NaN.
func AverageComparison(cs []Comparison) Comparison {
	out := Comparison{Benchmark: "average"}
	var speedup, power, energy, ed mean
	for _, c := range cs {
		speedup.add(c.Speedup)
		power.add(c.PowerSaving)
		energy.add(c.EnergySaving)
		ed.add(c.EDImprovement)
	}
	out.Speedup = speedup.value()
	out.PowerSaving = power.value()
	out.EnergySaving = energy.value()
	out.EDImprovement = ed.value()
	return out
}

// mean accumulates finite samples only.
type mean struct {
	sum float64
	n   int
}

func (m *mean) add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	m.sum += v
	m.n++
}

func (m *mean) value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// RunAll executes a configuration across profiles on the shared worker pool
// and returns results in profile order. Points already in the process-wide
// result cache are served without re-simulation.
func RunAll(cfg Config, profiles []prog.Profile) []Result {
	results := make([]Result, len(profiles))
	runJobs(len(profiles), func(r *Runner, i int) {
		results[i] = runCached(r, cfg, profiles[i])
	})
	return results
}
