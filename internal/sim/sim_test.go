package sim

import (
	"math"
	"strings"
	"testing"

	"selthrottle/internal/conf"
	"selthrottle/internal/core"
	"selthrottle/internal/prog"
)

// tinyConfig returns a configuration small enough for unit tests.
func tinyConfig() Config {
	cfg := Default()
	cfg.Instructions = 20000
	cfg.Warmup = 5000
	return cfg
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := Default()
	if cfg.PredBytes != 8<<10 || cfg.ConfBytes != 8<<10 {
		t.Error("default table sizes deviate from the paper's 8 KB + 8 KB")
	}
	if cfg.Pipe.Depth() != 14 {
		t.Errorf("default depth %d, want 14", cfg.Pipe.Depth())
	}
	if cfg.JRSThreshold != 12 {
		t.Error("default MDC threshold deviates from 12")
	}
	if cfg.Estimator != EstBPRU {
		t.Error("default estimator should be BPRU")
	}
}

func TestRunProducesConsistentResult(t *testing.T) {
	p, _ := prog.ProfileByName("gzip")
	r := Run(tinyConfig(), p)
	if r.Benchmark != "gzip" {
		t.Fatalf("benchmark = %q", r.Benchmark)
	}
	// The measured interval is a delta between two commit-width-granular
	// stop points, so it can be off by up to one commit group either way.
	if r.Stats.Committed < 20000-8 || r.Stats.Committed > 20000+8 {
		t.Fatalf("committed %d", r.Stats.Committed)
	}
	if r.Energy <= 0 || r.Seconds <= 0 || r.AvgPower <= 0 {
		t.Fatalf("degenerate energy report: %+v", r)
	}
	if math.Abs(r.EDelay-r.Energy*r.Seconds) > 1e-15 {
		t.Fatal("E-D product identity violated")
	}
	if math.Abs(r.AvgPower*r.Seconds-r.Energy) > 1e-9 {
		t.Fatal("power-time-energy identity violated")
	}
}

func TestRunDeterministic(t *testing.T) {
	p, _ := prog.ProfileByName("crafty")
	a := Run(tinyConfig(), p)
	b := Run(tinyConfig(), p)
	if a.Stats.Cycles != b.Stats.Cycles || a.Energy != b.Energy {
		t.Fatal("identical configurations produced different results")
	}
}

func TestCompareMath(t *testing.T) {
	base := Result{Seconds: 2, AvgPower: 50, Energy: 100, EDelay: 200}
	x := Result{Seconds: 2.5, AvgPower: 40, Energy: 100, EDelay: 250}
	c := Compare(base, x)
	if math.Abs(c.Speedup-0.8) > 1e-12 {
		t.Errorf("speedup = %v", c.Speedup)
	}
	if math.Abs(c.PowerSaving-20) > 1e-12 {
		t.Errorf("power saving = %v", c.PowerSaving)
	}
	if math.Abs(c.EnergySaving-0) > 1e-12 {
		t.Errorf("energy saving = %v", c.EnergySaving)
	}
	if math.Abs(c.EDImprovement+25) > 1e-12 {
		t.Errorf("E-D improvement = %v", c.EDImprovement)
	}
}

func TestAverageComparison(t *testing.T) {
	avg := AverageComparison([]Comparison{
		{Speedup: 1.0, PowerSaving: 10, EnergySaving: 20, EDImprovement: 30},
		{Speedup: 0.8, PowerSaving: 20, EnergySaving: 10, EDImprovement: 10},
	})
	if math.Abs(avg.Speedup-0.9) > 1e-12 || math.Abs(avg.PowerSaving-15) > 1e-12 {
		t.Fatalf("average wrong: %+v", avg)
	}
	empty := AverageComparison(nil)
	if empty.Benchmark != "average" {
		t.Fatal("empty average mislabeled")
	}
}

func TestExperimentSeriesComplete(t *testing.T) {
	if len(OracleExperiments()) != 3 {
		t.Error("oracle series incomplete")
	}
	a := FetchExperiments()
	if len(a) != 7 || a[0].ID != "A1" || a[6].ID != "A7" {
		t.Errorf("A-series wrong: %d experiments", len(a))
	}
	b := DecodeExperiments()
	if len(b) != 9 || b[0].ID != "B1" || b[8].ID != "B9" {
		t.Errorf("B-series wrong: %d experiments", len(b))
	}
	c := SelectionExperiments()
	if len(c) != 7 || c[0].ID != "C1" || c[6].ID != "C7" {
		t.Errorf("C-series wrong: %d experiments", len(c))
	}
}

func TestExperimentPolicyEncodings(t *testing.T) {
	// Spot-check the paper's experiment encodings.
	a5, ok := ExperimentByID("A5")
	if !ok {
		t.Fatal("A5 missing")
	}
	if a5.Policy.ByClass[conf.LC].Fetch != core.RateQuarter ||
		a5.Policy.ByClass[conf.VLC].Fetch != core.RateStall {
		t.Error("A5 encoding wrong")
	}
	b7, _ := ExperimentByID("B7")
	if b7.Policy.ByClass[conf.LC].Fetch != core.RateQuarter ||
		b7.Policy.ByClass[conf.LC].Decode != core.RateQuarter ||
		b7.Policy.ByClass[conf.VLC].Fetch != core.RateStall {
		t.Error("B7 encoding wrong")
	}
	c2 := BestExperiment()
	if c2.ID != "C2" {
		t.Fatal("best experiment is not C2")
	}
	if !c2.Policy.ByClass[conf.LC].NoSelect ||
		c2.Policy.ByClass[conf.LC].Fetch != core.RateQuarter ||
		c2.Policy.ByClass[conf.VLC].Fetch != core.RateStall {
		t.Error("C2 encoding wrong")
	}
	// C1 is A5 under another name.
	c1, _ := ExperimentByID("C1")
	if c1.Policy.ByClass != a5.Policy.ByClass {
		t.Error("C1 must equal A5")
	}
	// The gating experiments use JRS.
	for _, id := range []string{"A7", "B9", "C7"} {
		e, _ := ExperimentByID(id)
		if !e.Policy.Gating || e.Estimator != EstJRS || e.Policy.GateThreshold != 2 {
			t.Errorf("%s is not JRS pipeline gating with threshold 2", id)
		}
	}
}

func TestExperimentByIDUnknown(t *testing.T) {
	if _, ok := ExperimentByID("Z9"); ok {
		t.Fatal("found an experiment that should not exist")
	}
}

func TestApplyStampsConfig(t *testing.T) {
	e, _ := ExperimentByID("oracle-fetch")
	cfg := e.Apply(Default())
	if cfg.Pipe.Oracle != core.OracleFetch {
		t.Fatal("oracle mode not applied")
	}
	e2, _ := ExperimentByID("A7")
	cfg = e2.Apply(Default())
	if cfg.Estimator != EstJRS || !cfg.Policy.Gating {
		t.Fatal("gating experiment not applied")
	}
}

func TestRunFigureSmall(t *testing.T) {
	profiles := []prog.Profile{}
	for _, n := range []string{"gzip", "twolf"} {
		p, _ := prog.ProfileByName(n)
		profiles = append(profiles, p)
	}
	opts := Options{Instructions: 15000, Warmup: 4000, Profiles: profiles}
	fr := RunFigure("test", []Experiment{BestExperiment()}, opts)
	if len(fr.Baselines) != 2 || len(fr.Rows) != 1 {
		t.Fatalf("figure shape wrong: %d baselines, %d rows", len(fr.Baselines), len(fr.Rows))
	}
	row, ok := fr.Row("C2")
	if !ok || len(row.PerBench) != 2 {
		t.Fatal("row lookup failed")
	}
	// Throttling must reduce average power against the baseline.
	if row.Average.PowerSaving <= 0 {
		t.Errorf("C2 power saving %.1f%% <= 0", row.Average.PowerSaving)
	}
	var sb strings.Builder
	WriteFigure(&sb, fr)
	if !strings.Contains(sb.String(), "C2") || !strings.Contains(sb.String(), "gzip") {
		t.Error("figure rendering incomplete")
	}
}

func TestWriteTable3Renders(t *testing.T) {
	var sb strings.Builder
	WriteTable3(&sb, Default())
	for _, want := range []string{"BTB", "1024", "128-entry", "gshare", "14 stages"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Instructions == 0 || o.Depth != 14 || o.PredBytes != 8<<10 || len(o.Profiles) != 8 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.Warmup != o.Instructions/4 {
		t.Fatal("default warmup should be a quarter of the measured window")
	}
}
