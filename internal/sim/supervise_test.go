package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"selthrottle/internal/faultinject"
	"selthrottle/internal/pipe"
	"selthrottle/internal/prog"
)

// stressOpts is the small, fast grid shape the supervision tests share.
func stressOpts() Options {
	return Options{Instructions: 20000, Warmup: 5000}
}

// TestSupervisedGridDegradesGracefully is the headline stress scenario: a
// 32-point grid (baseline + 3 experiments x 8 benchmarks) with 4 points
// forced to fail by a seeded fault plan must complete the other 28 points
// bit-identically to a clean run, report exactly the 4 failures with their
// diagnostic snapshots, and never kill the process.
func TestSupervisedGridDegradesGracefully(t *testing.T) {
	prev := SetResultCaching(false)
	defer SetResultCaching(prev)

	exps := FetchExperiments()[:3]
	opts := stressOpts()
	clean := RunFigure("stress-grid", exps, opts)
	if clean.Failures != nil || clean.Statuses != nil {
		t.Fatalf("clean grid reported failures: %v", clean.Failures)
	}

	full := opts.withDefaults()
	profiles := full.Profiles
	np := len(profiles)
	ncfg := 1 + len(exps)
	n := ncfg * np
	if n != 32 {
		t.Fatalf("grid is %d points, want 32", n)
	}
	const faulted = 4
	plans := faultinject.Scatter(0xBEEF, n, faulted, 2000)

	// Map each supervised point back to its grid index the same way
	// RunFigureE lays the grid out (config-major), so the seeded fault
	// assignment lands on deterministic points.
	base := full.baseConfig()
	cfgIdx := map[Config]int{base: 0}
	for i, e := range exps {
		cfgIdx[e.Apply(base)] = i + 1
	}
	profIdx := map[string]int{}
	for j, p := range profiles {
		profIdx[p.Name] = j
	}

	sopts := opts
	sopts.Supervise = Supervisor{
		PointFault: func(cfg Config, profile prog.Profile) pipe.FaultHook {
			c, ok := cfgIdx[cfg]
			if !ok {
				t.Errorf("unexpected grid config for %s", profile.Name)
				return nil
			}
			if pl := plans[c*np+profIdx[profile.Name]]; pl != nil {
				return pl
			}
			return nil // untyped nil: a typed-nil *Plan would arm the hook
		},
	}
	fr := RunFigure("stress-grid", exps, sopts)

	if got := len(fr.Failures); got != faulted {
		t.Fatalf("%d failures, want %d: %v", got, faulted, fr.Failures)
	}
	if len(fr.Statuses) != n {
		t.Fatalf("%d statuses, want %d", len(fr.Statuses), n)
	}
	for _, f := range fr.Failures {
		re, ok := pipe.AsRunError(f.Err)
		if !ok {
			t.Fatalf("failure without RunError snapshot: %v", f)
		}
		if re.Kind != pipe.ErrDeadlock && re.Kind != pipe.ErrPanic {
			t.Fatalf("unexpected failure kind %v: %v", re.Kind, f)
		}
		if re.Cycle == 0 || re.Policy == "" {
			t.Fatalf("empty machine snapshot: %+v", re)
		}
	}
	// Every injected point failed, every healthy point matches the clean run
	// bit for bit.
	nfail := 0
	for k, st := range fr.Statuses {
		if plans[k] != nil {
			if st.OK() {
				t.Fatalf("faulted point %d reported OK", k)
			}
			nfail++
			continue
		}
		if !st.OK() {
			t.Fatalf("healthy point %d failed: %v", k, st.Err)
		}
	}
	if nfail != faulted {
		t.Fatalf("%d faulted statuses, want %d", nfail, faulted)
	}
	for j := range profiles {
		if plans[j] != nil {
			continue
		}
		if !reflect.DeepEqual(fr.Baselines[j], clean.Baselines[j]) {
			t.Fatalf("healthy baseline %s diverged from clean run", profiles[j].Name)
		}
	}
	for i := range fr.Rows {
		for j := range profiles {
			cellOK := plans[j] == nil && plans[(i+1)*np+j] == nil
			got, want := fr.Rows[i].PerBench[j], clean.Rows[i].PerBench[j]
			if cellOK {
				if got != want {
					t.Fatalf("healthy cell (%s, %s) diverged: %+v vs %+v",
						fr.Rows[i].Experiment.ID, profiles[j].Name, got, want)
				}
			} else if (got != Comparison{Benchmark: profiles[j].Name}) {
				t.Fatalf("failed cell (%s, %s) not a placeholder: %+v",
					fr.Rows[i].Experiment.ID, profiles[j].Name, got)
			}
		}
	}
}

// TestSupervisorDeadlineCancelsRunawayPoint forces one point to run
// artificially slowly and bounds it with a per-point deadline: the attempt
// must come back as a canceled RunError wrapping context.DeadlineExceeded,
// promptly, without leaking the watchdog goroutine, and the Runner must
// remain fully reusable afterwards.
func TestSupervisorDeadlineCancelsRunawayPoint(t *testing.T) {
	prev := SetResultCaching(false)
	defer SetResultCaching(prev)

	profile, _ := prog.ProfileByName("gzip")
	cfg := Default()
	cfg.Instructions, cfg.Warmup = 20000, 5000

	before := runtime.NumGoroutine()
	sup := Supervisor{
		Timeout: 20 * time.Millisecond,
		PointFault: func(Config, prog.Profile) pipe.FaultHook {
			return faultinject.NewPlan(faultinject.Fault{
				Kind: faultinject.KindSlow, Stage: pipe.StageStep,
				Delay: 50 * time.Microsecond,
			})
		},
	}
	r := NewRunner()
	start := time.Now()
	_, status := sup.runPoint(context.Background(), r, cfg, profile)
	elapsed := time.Since(start)

	if status.OK() {
		t.Fatal("slow point succeeded under a 20ms deadline")
	}
	re, ok := pipe.AsRunError(status.Err)
	if !ok || re.Kind != pipe.ErrCanceled {
		t.Fatalf("err %v, want canceled RunError", status.Err)
	}
	if !errors.Is(status.Err, context.DeadlineExceeded) {
		t.Fatalf("cause %v, want DeadlineExceeded through Unwrap", status.Err)
	}
	// Cancellation is amortized: the machine may overshoot the deadline by at
	// most ~one check interval of slowed cycles (~50ms here). Anything in the
	// seconds is a lost cancel.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	waitGoroutines(t, before)

	// The Runner survives a cancellation: the same instance completes a clean
	// run bit-identical to a fresh Runner's, with machine invariants intact.
	res, err := r.RunE(context.Background(), cfg, profile)
	if err != nil {
		t.Fatalf("post-cancel run failed: %v", err)
	}
	want, err := NewRunner().RunE(context.Background(), cfg, profile)
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatal("post-cancel run diverged from a fresh Runner")
	}
	if err := r.pl.CheckInvariants(); err != nil {
		t.Fatalf("machine invariants after cancel+reuse: %v", err)
	}
}

// TestSupervisorRetriesTransientFault injects a once-only panic: the first
// attempt fails retryably, the retry completes, and the recovered result is
// identical to an unfaulted run.
func TestSupervisorRetriesTransientFault(t *testing.T) {
	prev := SetResultCaching(false)
	defer SetResultCaching(prev)

	profile, _ := prog.ProfileByName("parser")
	cfg := Default()
	cfg.Instructions, cfg.Warmup = 20000, 5000

	plan := faultinject.NewPlan(faultinject.Fault{
		Kind: faultinject.KindPanic, Stage: pipe.StageIssue, Cycle: 500, Once: true,
	})
	sup := Supervisor{
		Retries: 2,
		Backoff: time.Millisecond,
		PointFault: func(Config, prog.Profile) pipe.FaultHook {
			return plan
		},
	}
	res, status := sup.runPoint(context.Background(), NewRunner(), cfg, profile)
	if !status.OK() {
		t.Fatalf("transient fault not recovered: %v", status.Err)
	}
	if status.Attempts != 2 {
		t.Fatalf("%d attempts, want 2", status.Attempts)
	}
	want, err := NewRunner().RunE(context.Background(), cfg, profile)
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	res.Config.Pipe.Fault = nil // the supervised copy carries the armed hook
	if !reflect.DeepEqual(res, want) {
		t.Fatal("retried result diverged from an unfaulted run")
	}

	// The same shape without the Once latch is terminal: no retry is spent.
	hard := faultinject.NewPlan(faultinject.Fault{
		Kind: faultinject.KindPanic, Stage: pipe.StageIssue, Cycle: 500,
	})
	sup.PointFault = func(Config, prog.Profile) pipe.FaultHook { return hard }
	_, status = sup.runPoint(context.Background(), NewRunner(), cfg, profile)
	if status.OK() || status.Attempts != 1 {
		t.Fatalf("persistent fault: ok=%v attempts=%d, want failure on attempt 1",
			status.OK(), status.Attempts)
	}
}

// TestRunFigureEGridCancellation cancels a whole grid mid-flight: RunFigureE
// must return promptly with every unfinished point carrying a cancellation
// status, leak no goroutines, and leave the shared Runner pool reusable for a
// healthy grid afterwards.
func TestRunFigureEGridCancellation(t *testing.T) {
	prev := SetResultCaching(false)
	defer SetResultCaching(prev)

	before := runtime.NumGoroutine()
	exps := FetchExperiments()[:1]
	sopts := stressOpts()
	sopts.Supervise = Supervisor{
		PointFault: func(Config, prog.Profile) pipe.FaultHook {
			// Every point crawls, so none can finish before the cancel.
			return faultinject.NewPlan(faultinject.Fault{
				Kind: faultinject.KindSlow, Stage: pipe.StageStep,
				Delay: 20 * time.Microsecond,
			})
		},
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *FigureResult, 1)
	go func() { done <- RunFigureE(ctx, "cancel-grid", exps, sopts) }()
	time.Sleep(30 * time.Millisecond)
	cancel()

	var fr *FigureResult
	select {
	case fr = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("grid did not return after cancellation")
	}
	if len(fr.Failures) == 0 {
		t.Fatal("canceled grid reported no failures")
	}
	canceled := 0
	for _, f := range fr.Failures {
		if errors.Is(f.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatalf("no failure carries the context error: %v", fr.Failures)
	}
	waitGoroutines(t, before)

	// The pool is reusable: a healthy grid after the cancellation completes
	// with no failures.
	clean := RunFigure("post-cancel", exps, stressOpts())
	if clean.Failures != nil {
		t.Fatalf("post-cancel grid failed: %v", clean.Failures)
	}
}

// TestGuardConvertsRunErrorPanics: the drivers' top-level wrapper turns an
// escaped RunError panic into a diagnostic report and exit code 1, passes
// clean exit codes through, and re-raises foreign panics.
func TestGuardConvertsRunErrorPanics(t *testing.T) {
	var sb strings.Builder
	code := Guard(&sb, "toolname", func() int {
		panic(&pipe.RunError{Kind: pipe.ErrDeadlock, Cycle: 123, Policy: "baseline", StuckLimit: 100})
	})
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(sb.String(), "toolname: simulation failed (deadlock)") {
		t.Fatalf("report missing diagnosis: %q", sb.String())
	}
	if got := Guard(&sb, "toolname", func() int { return 7 }); got != 7 {
		t.Fatalf("clean exit code %d, want 7", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed by Guard")
		}
	}()
	Guard(&sb, "toolname", func() int { panic("not a run failure") })
}

// waitGoroutines waits for the goroutine count to settle back to at most
// before (watchdogs and workers must exit with their runs, not linger).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNextBackoffSaturatesWithoutOverflow is the Retries=64 regression: 64
// iterated doublings (one per retry of a maximal budget) must saturate at
// MaxBackoff, never overflow time.Duration into a negative wait — a
// negative timer fires immediately, which would turn the backoff into a hot
// retry loop exactly when the system is most stressed.
func TestNextBackoffSaturatesWithoutOverflow(t *testing.T) {
	d := DefaultBackoff
	for i := 0; i < 64; i++ {
		d = nextBackoff(d)
		if d <= 0 || d > MaxBackoff {
			t.Fatalf("retry %d: backoff %v escaped (0, %v]", i+1, d, MaxBackoff)
		}
	}
	if d != MaxBackoff {
		t.Fatalf("backoff after 64 doublings = %v, want saturation at %v", d, MaxBackoff)
	}
	if got := nextBackoff(MaxBackoff); got != MaxBackoff {
		t.Fatalf("nextBackoff(MaxBackoff) = %v, want %v", got, MaxBackoff)
	}
	// One nanosecond under half the cap is the last value allowed to double.
	if got := nextBackoff(MaxBackoff/2 - 1); got != MaxBackoff-2 {
		t.Fatalf("nextBackoff(cap/2-1) = %v, want %v", got, MaxBackoff-2)
	}
}
