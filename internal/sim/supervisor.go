package sim

// Run supervision: the failure-isolation layer between the experiment grids
// and the simulator. A figure or sweep fans out over (configuration x
// benchmark) points; before this layer, one deadlocked or buggy point
// panicked inside a worker goroutine and took the whole process down, losing
// every in-flight point. The Supervisor gives each point the failure
// semantics of a production service — isolation (a failed point is a
// per-point status, never a process death), per-attempt deadlines, bounded
// retry with exponential backoff for transient failures, and graceful
// degradation (a grid with K failed points still returns the other points
// plus a failure report) — the same discipline the paper's throttling
// applies inside the pipeline: slow the misbehaving stream, keep the rest at
// full speed.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"selthrottle/internal/pipe"
	"selthrottle/internal/prog"
	"selthrottle/internal/xrand"
)

// Supervisor is the per-point run policy of a figure/sweep grid. The zero
// value supervises minimally: one attempt per point, no deadline — failures
// are still isolated into per-point statuses.
type Supervisor struct {
	// Timeout bounds each attempt of each point (0 = no per-point
	// deadline). The point's pipeline is cooperatively canceled when the
	// deadline expires; the attempt reports a pipe.ErrCanceled RunError
	// wrapping context.DeadlineExceeded.
	Timeout time.Duration

	// Retries is the number of re-attempts after the first failure, granted
	// only to retryable failures (see pipe.RunError.Retryable: the
	// simulator is deterministic, so only causes that declare themselves
	// transient qualify). Terminal failures never retry.
	Retries int

	// Backoff is the delay before the first retry, doubling per subsequent
	// retry up to MaxBackoff (0 selects DefaultBackoff). The wait is
	// context-aware: a
	// canceled grid does not sit out its backoff. Each wait is jittered
	// into [backoff/2, backoff] by a per-point stream seeded from
	// JitterSeed, so a transient failure that hits many grid points at
	// once (one flaky dependency, one injected Scatter round) does not
	// retry in lockstep and re-create the very thundering herd the backoff
	// exists to avoid.
	Backoff time.Duration

	// JitterSeed seeds the backoff jitter (0 selects a fixed default
	// seed). The jitter stream is a pure function of (JitterSeed, point
	// identity), never of wall-clock or scheduling, so retry timing is
	// reproducible under a seed — the same discipline as faultinject's
	// plans.
	JitterSeed uint64

	// PointFault, when set, supplies a fault-injection hook per grid point
	// (nil = healthy). Stress suites use it to force chosen points to
	// deadlock, panic, or stall; production configurations leave it nil.
	PointFault func(cfg Config, profile prog.Profile) pipe.FaultHook
}

// DefaultBackoff is the initial retry backoff when Supervisor.Backoff is 0.
const DefaultBackoff = 10 * time.Millisecond

// PointStatus is the supervision outcome of one grid point: Err is nil iff
// the point's Result is valid, and Attempts counts the runs consumed
// (including retries).
type PointStatus struct {
	Err      error
	Attempts int
}

// OK reports whether the point produced a valid Result.
func (s PointStatus) OK() bool { return s.Err == nil }

// PointFailure is one failed grid point in a figure/sweep failure report,
// locating the point (experiment x benchmark) and carrying its diagnostic
// error (usually a *pipe.RunError with the machine snapshot).
type PointFailure struct {
	Figure     string
	Experiment string // experiment ID, or "baseline"
	Benchmark  string
	Attempts   int
	Err        error
}

func (f PointFailure) String() string {
	return fmt.Sprintf("%s: %s x %s failed after %d attempt(s): %v",
		f.Figure, f.Experiment, f.Benchmark, f.Attempts, f.Err)
}

// retryableError reports whether err is worth re-running: a *pipe.RunError
// whose cause declares itself transient. Context errors and deterministic
// simulator failures are terminal.
func retryableError(err error) bool {
	if re, ok := pipe.AsRunError(err); ok {
		return re.Retryable()
	}
	return false
}

// defaultJitterSeed stands in for a zero Supervisor.JitterSeed: jitter is
// always on, always deterministic.
const defaultJitterSeed = 0x5e1ec7_7412077_1e // "select throttle"

// jitterRand derives the per-point jitter stream: a pure function of the
// supervisor seed and the point's identity (configuration and profile), so
// two points of one grid desynchronize while every re-run of one point
// reproduces exactly.
func jitterRand(seed uint64, cfg Config, profile prog.Profile) *xrand.Rand {
	if seed == 0 {
		seed = defaultJitterSeed
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v\x00%s\x00%d", cfg, profile.Name, profile.Seed)
	return xrand.New(xrand.Hash2(seed, h.Sum64()))
}

// jittered spreads one backoff wait uniformly over [d/2, d].
func jittered(d time.Duration, rng *xrand.Rand) time.Duration {
	if d <= 1 {
		return d
	}
	half := uint64(d / 2)
	return time.Duration(half + rng.Uint64()%(half+1))
}

// MaxBackoff caps exponential retry backoff. Past ~30s per wait a retry
// loop is indistinguishable from a hang; more importantly, unchecked
// doubling overflows time.Duration after 63 shifts — at Retries=64 the
// naive `backoff *= 2` goes negative, and a negative timer fires
// immediately, turning the backoff into a hot retry loop at exactly the
// moment the system is most stressed.
const MaxBackoff = 30 * time.Second

// nextBackoff doubles a backoff wait, saturating at MaxBackoff. The
// comparison runs BEFORE the multiply — checking the product for overflow
// after the fact is too late, since signed overflow has already produced
// an arbitrary (possibly positive) value.
func nextBackoff(d time.Duration) time.Duration {
	if d >= MaxBackoff/2 {
		return MaxBackoff
	}
	return d * 2
}

// runPoint executes one grid point under the supervisor's policy: arm the
// point's fault hook (stress suites), bound each attempt with the per-point
// deadline, and retry transient failures with exponential backoff. The
// zero-value Supervisor degenerates to a single undeadlined attempt.
func (s *Supervisor) runPoint(ctx context.Context, r *Runner, cfg Config, profile prog.Profile) (Result, PointStatus) {
	if s.PointFault != nil {
		if h := s.PointFault(cfg, profile); h != nil {
			cfg.Pipe.Fault = h
		}
	}
	backoff := s.Backoff
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	var rng *xrand.Rand // built lazily: only failing points pay for it
	var status PointStatus
	for attempt := 0; ; attempt++ {
		status.Attempts = attempt + 1
		actx, cancel := ctx, context.CancelFunc(nil)
		if s.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, s.Timeout)
		}
		res, err := runCachedE(actx, r, cfg, profile)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			status.Err = nil
			return res, status
		}
		status.Err = err
		// Retry only failures that can plausibly differ on a re-run, and
		// only while the grid itself is still live: a per-attempt deadline
		// is retryable policy-wise but deterministic here, and a canceled
		// parent context ends the point immediately.
		if ctx.Err() != nil || attempt >= s.Retries || !retryableError(err) {
			return Result{}, status
		}
		if rng == nil {
			rng = jitterRand(s.JitterSeed, cfg, profile)
		}
		t := time.NewTimer(jittered(backoff, rng))
		select {
		case <-ctx.Done():
			t.Stop()
			return Result{}, status
		case <-t.C:
		}
		backoff = nextBackoff(backoff)
	}
}

// RunPointE executes one supervised point on a pooled Runner under ctx: the
// single-point entry the sweep service and the trace/calibration commands
// share with the figure grids. The status isolates any failure; the Result
// is valid iff status.OK().
func (s *Supervisor) RunPointE(ctx context.Context, cfg Config, profile prog.Profile) (Result, PointStatus) {
	r := runnerPool.Get().(*Runner)
	defer runnerPool.Put(r)
	return s.runPoint(ctx, r, cfg, profile)
}

// RunAllE executes a configuration across profiles under ctx with per-point
// failure isolation: results are in profile order, and statuses[i].OK()
// reports whether results[i] is valid. The context-free, fail-fast
// equivalent is RunAll.
func RunAllE(ctx context.Context, cfg Config, profiles []prog.Profile) ([]Result, []PointStatus) {
	var sup Supervisor
	results := make([]Result, len(profiles))
	statuses := make([]PointStatus, len(profiles))
	runJobs(len(profiles), func(r *Runner, i int) {
		results[i], statuses[i] = sup.runPoint(ctx, r, cfg, profiles[i])
	})
	return results, statuses
}

// Guard runs f, converting an escaped *pipe.RunError panic (the legacy
// fail-fast API's failure mode) into a diagnostic report on w and a nonzero
// exit code. The commands wrap their top level in it, so a terminal
// simulation failure prints the machine snapshot — cycle, policy,
// occupancies, epoch state, offending instruction — instead of a raw panic
// trace. Panics that are not run failures propagate unchanged.
func Guard(w io.Writer, name string, f func() int) (code int) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		err, ok := rec.(error)
		if !ok {
			panic(rec) // fail-fast: not a run failure, propagate unchanged
		}
		var re *pipe.RunError
		if !errors.As(err, &re) {
			panic(rec) // fail-fast: not a run failure, propagate unchanged
		}
		fmt.Fprintf(w, "%s: simulation failed (%s): %v\n", name, re.Kind, re)
		if len(re.Stack) > 0 {
			fmt.Fprintf(w, "%s\n", re.Stack)
		}
		code = 1
	}()
	return f()
}
