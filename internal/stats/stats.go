// Package stats provides the small statistical helpers used by the
// simulator's metrics and by the experiment harness: arithmetic and geometric
// means, ratios expressed as percentage savings, and a running accumulator.
package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// Non-positive entries are clamped to a tiny positive value so that a single
// degenerate run cannot produce NaN in a summary table.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// SavingsPct expresses "how much smaller is x than base" as a percentage:
// 100*(1 - x/base). Positive means x improved (shrank) relative to base.
func SavingsPct(base, x float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (1 - x/base)
}

// SpeedupX returns base/x, the classic speedup ratio (>1 means x is faster
// when the inputs are execution times).
func SpeedupX(base, x float64) float64 {
	if x == 0 {
		return 0
	}
	return base / x
}

// Running accumulates a stream of samples and reports count, mean, min, max,
// and (population) standard deviation without storing the samples.
type Running struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add incorporates one sample (Welford's algorithm).
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
	if !r.hasExtrema || x < r.min {
		r.min = x
	}
	if !r.hasExtrema || x > r.max {
		r.max = x
	}
	r.hasExtrema = true
}

// N returns the number of samples added.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 if no samples).
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest sample (0 if no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 if no samples).
func (r *Running) Max() float64 { return r.max }

// StdDev returns the population standard deviation (0 if fewer than 2
// samples).
func (r *Running) StdDev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
