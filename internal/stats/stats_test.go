package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{4}, 4},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	// Non-positive entries must not produce NaN.
	if got := GeoMean([]float64{1, 0}); math.IsNaN(got) {
		t.Error("GeoMean with zero produced NaN")
	}
}

func TestGeoMeanLeqMean(t *testing.T) {
	// AM-GM inequality as a property test.
	err := quick.Check(func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSavingsPct(t *testing.T) {
	if got := SavingsPct(100, 80); math.Abs(got-20) > 1e-12 {
		t.Errorf("SavingsPct(100,80) = %v, want 20", got)
	}
	if got := SavingsPct(100, 120); math.Abs(got+20) > 1e-12 {
		t.Errorf("SavingsPct(100,120) = %v, want -20", got)
	}
	if got := SavingsPct(0, 5); got != 0 {
		t.Errorf("SavingsPct(0,5) = %v, want 0", got)
	}
}

func TestSpeedupX(t *testing.T) {
	if got := SpeedupX(10, 5); got != 2 {
		t.Errorf("SpeedupX(10,5) = %v, want 2", got)
	}
	if got := SpeedupX(10, 0); got != 0 {
		t.Errorf("SpeedupX(10,0) = %v, want 0", got)
	}
}

func TestRunning(t *testing.T) {
	var r Running
	for _, x := range []float64{1, 2, 3, 4} {
		r.Add(x)
	}
	if r.N() != 4 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-2.5) > 1e-12 {
		t.Fatalf("Mean = %v", r.Mean())
	}
	if r.Min() != 1 || r.Max() != 4 {
		t.Fatalf("extrema = %v..%v", r.Min(), r.Max())
	}
	want := math.Sqrt(1.25) // population stddev of 1..4
	if math.Abs(r.StdDev()-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", r.StdDev(), want)
	}
}

func TestRunningMatchesDirect(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		var r Running
		finite := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				finite = append(finite, x)
			}
		}
		for _, x := range finite {
			r.Add(x)
		}
		if len(finite) == 0 {
			return r.Mean() == 0
		}
		return math.Abs(r.Mean()-Mean(finite)) < 1e-6*(1+math.Abs(Mean(finite)))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-5, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp misbehaves")
	}
}
