package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"selthrottle/internal/conf"
	"selthrottle/internal/pipe"
	"selthrottle/internal/power"
)

// Entry is the persisted payload of one simulation point: everything a
// sim.Result carries except the caller's Config and benchmark name, which
// the result cache rewrites on the way out of every tier anyway (they are
// part of the lookup key, not the computed value).
type Entry struct {
	Stats pipe.Stats
	Power power.Report

	IPC      float64
	MissRate float64
	Seconds  float64
	Energy   float64
	EDelay   float64
	AvgPower float64
}

// On-disk entry framing (all integers little-endian):
//
//	offset 0   magic "STRE" (4 bytes)
//	offset 4   codec version, uint16 (CodecVersion)
//	offset 6   reserved flags, uint16 (must be 0)
//	offset 8   payload length, uint32
//	offset 12  payload (fixed-width field-by-field encoding, see below)
//	offset 12+len  CRC32-C of bytes [0, 12+len), uint32
//
// The payload is a flat sequence of uint64/float64 fields in declaration
// order (floats as IEEE-754 bit patterns); there are no variable-length
// fields, so a valid payload has exactly one length and the decoder can
// reject any other without allocating. Version bumps change CodecVersion;
// the decoder rejects unknown versions, and the store quarantines entries
// it cannot decode rather than failing to open.
const (
	entryMagic   = "STRE"
	CodecVersion = 1
	headerSize   = 12
	crcSize      = 4
)

// castagnoli is the CRC32-C table (the checksum used by iSCSI, ext4, and
// most storage formats; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrCorrupt covers every way stored bytes can fail
// validation — truncation, bad magic, length mismatch, checksum mismatch;
// ErrVersion is a structurally sound entry written by a different codec
// version. Both are quarantine-worthy, never panics.
var (
	ErrCorrupt = errors.New("store: corrupt entry")
	ErrVersion = errors.New("store: unknown codec version")
)

// enc appends fixed-width values to a buffer.
type enc struct{ b []byte }

func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

// dec consumes fixed-width values from a buffer, latching sticky failure on
// underflow instead of panicking — the decoder must survive arbitrary bytes.
type dec struct {
	b   []byte
	off int
	bad bool
}

func (d *dec) u64() uint64 {
	if d.bad || d.off+8 > len(d.b) {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// appendPayload encodes the entry's fields. The field order here is the
// codec: changing it (or the shape of pipe.Stats / power.Report) requires a
// CodecVersion bump. TestCodecCoversEveryField guards against silently
// dropping a newly added field.
func appendPayload(b []byte, e *Entry) []byte {
	w := enc{b}
	s := &e.Stats
	w.u64(s.Cycles)
	w.u64(s.Committed)
	w.u64(s.Fetched)
	w.u64(s.WrongPathFetched)
	w.u64(s.WrongPathDecoded)
	w.u64(s.WrongPathDispatched)
	w.u64(s.WrongPathIssued)
	w.u64(s.CondBranches)
	w.u64(s.Mispredicts)
	w.u64(s.FetchGatedCycles)
	w.u64(s.DecodeGatedCycles)
	w.u64(s.NoSelectStalls)
	w.u64(s.FetchIdleHeld)
	w.u64(s.FetchIdleBackPressure)
	w.u64(s.OracleHolds)
	w.u64(s.TrueFlushes)
	w.u64(s.ResolveLatTotal)
	w.u64(s.ResolveWindowWait)
	w.u64(s.ResolveIssueWait)
	q := &s.Quality
	w.u64(q.Mispred)
	w.u64(q.MispredLow)
	w.u64(q.LowLabeled)
	w.u64(q.Total)
	for i := 0; i < int(conf.NumClasses); i++ {
		w.u64(q.PerClassTotal[i])
		w.u64(q.PerClassWrong[i])
	}
	p := &e.Power
	w.u64(p.Cycles)
	w.f64(p.Seconds)
	for u := 0; u < int(power.NumUnits); u++ {
		w.f64(p.UnitEnergy[u])
	}
	for u := 0; u < int(power.NumUnits); u++ {
		w.f64(p.UnitWasted[u])
	}
	w.f64(p.TotalEnergy)
	w.f64(p.WastedEnergy)
	w.f64(p.AvgPower)
	w.f64(p.EnergyDelay)
	w.f64(e.IPC)
	w.f64(e.MissRate)
	w.f64(e.Seconds)
	w.f64(e.Energy)
	w.f64(e.EDelay)
	w.f64(e.AvgPower)
	return w.b
}

// decodePayload is appendPayload's exact inverse.
func decodePayload(b []byte) (Entry, error) {
	var e Entry
	r := dec{b: b}
	s := &e.Stats
	s.Cycles = r.u64()
	s.Committed = r.u64()
	s.Fetched = r.u64()
	s.WrongPathFetched = r.u64()
	s.WrongPathDecoded = r.u64()
	s.WrongPathDispatched = r.u64()
	s.WrongPathIssued = r.u64()
	s.CondBranches = r.u64()
	s.Mispredicts = r.u64()
	s.FetchGatedCycles = r.u64()
	s.DecodeGatedCycles = r.u64()
	s.NoSelectStalls = r.u64()
	s.FetchIdleHeld = r.u64()
	s.FetchIdleBackPressure = r.u64()
	s.OracleHolds = r.u64()
	s.TrueFlushes = r.u64()
	s.ResolveLatTotal = r.u64()
	s.ResolveWindowWait = r.u64()
	s.ResolveIssueWait = r.u64()
	q := &s.Quality
	q.Mispred = r.u64()
	q.MispredLow = r.u64()
	q.LowLabeled = r.u64()
	q.Total = r.u64()
	for i := 0; i < int(conf.NumClasses); i++ {
		q.PerClassTotal[i] = r.u64()
		q.PerClassWrong[i] = r.u64()
	}
	p := &e.Power
	p.Cycles = r.u64()
	p.Seconds = r.f64()
	for u := 0; u < int(power.NumUnits); u++ {
		p.UnitEnergy[u] = r.f64()
	}
	for u := 0; u < int(power.NumUnits); u++ {
		p.UnitWasted[u] = r.f64()
	}
	p.TotalEnergy = r.f64()
	p.WastedEnergy = r.f64()
	p.AvgPower = r.f64()
	p.EnergyDelay = r.f64()
	e.IPC = r.f64()
	e.MissRate = r.f64()
	e.Seconds = r.f64()
	e.Energy = r.f64()
	e.EDelay = r.f64()
	e.AvgPower = r.f64()
	if r.bad || r.off != len(b) {
		return Entry{}, fmt.Errorf("%w: payload length %d, consumed %d", ErrCorrupt, len(b), r.off)
	}
	return e, nil
}

// EncodeEntry serializes e into a complete on-disk entry: header, payload,
// trailing CRC32-C.
func EncodeEntry(e *Entry) []byte {
	payload := appendPayload(nil, e)
	b := make([]byte, 0, headerSize+len(payload)+crcSize)
	b = append(b, entryMagic...)
	b = binary.LittleEndian.AppendUint16(b, CodecVersion)
	b = binary.LittleEndian.AppendUint16(b, 0)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
	return b
}

// DecodeEntry validates and decodes a complete on-disk entry. It never
// panics and never allocates proportionally to attacker-controlled lengths:
// the declared payload length is checked against the actual data before any
// use, and the payload itself is fixed-width. Errors wrap ErrCorrupt
// (truncated, torn, bit-flipped, mislabeled) or ErrVersion (a future or
// past codec); both mean "quarantine", never "crash".
func DecodeEntry(data []byte) (Entry, error) {
	if len(data) < headerSize+crcSize {
		return Entry{}, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorrupt, len(data), headerSize+crcSize)
	}
	if string(data[:4]) != entryMagic {
		return Entry{}, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	version := binary.LittleEndian.Uint16(data[4:6])
	flags := binary.LittleEndian.Uint16(data[6:8])
	plen := binary.LittleEndian.Uint32(data[8:12])
	if uint64(len(data)) != headerSize+uint64(plen)+crcSize {
		return Entry{}, fmt.Errorf("%w: declared payload %d bytes, file holds %d", ErrCorrupt, plen, len(data))
	}
	body := data[:len(data)-crcSize]
	want := binary.LittleEndian.Uint32(data[len(data)-crcSize:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return Entry{}, fmt.Errorf("%w: CRC32C mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	// Checksum validated first: a version/flag field that survives the CRC
	// is a genuine format difference, not corruption.
	if version != CodecVersion {
		return Entry{}, fmt.Errorf("%w: %d (this binary speaks %d)", ErrVersion, version, CodecVersion)
	}
	if flags != 0 {
		return Entry{}, fmt.Errorf("%w: unknown flags %04x", ErrVersion, flags)
	}
	return decodePayload(body[headerSize:])
}
