package store

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"
)

// hammerEntry is the recognizable value family every contending writer
// draws from: writer w's iteration i. A surviving entry must decode clean
// AND belong to the family — a torn interleaving of two writers' bytes
// would either fail the CRC or produce an out-of-family value.
func hammerEntry(writer, iter int) Entry {
	e := filledEntry()
	e.IPC = float64(writer)
	e.Seconds = float64(iter)
	return e
}

// hammerKey is the single key every writer races on.
func hammerKey() Key {
	var k Key
	for i := range k {
		k[i] = byte(i * 7)
	}
	return k
}

const (
	hammerDirEnv    = "SELTHROTTLE_STORE_HAMMER_DIR"
	hammerWriterEnv = "SELTHROTTLE_STORE_HAMMER_WRITER"
	hammerIters     = 200
)

// TestStoreHammerHelper is not a test: it is the body of the subprocess
// writers TestPutContentionAcrossProcesses spawns (the standard re-exec
// helper pattern). Without the env vars it does nothing.
func TestStoreHammerHelper(t *testing.T) {
	dir := os.Getenv(hammerDirEnv)
	if dir == "" {
		t.Skip("helper process body; driven by TestPutContentionAcrossProcesses")
	}
	writer := 0
	fmt.Sscanf(os.Getenv(hammerWriterEnv), "%d", &writer)
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("helper open: %v", err)
	}
	k := hammerKey()
	for i := 0; i < hammerIters; i++ {
		e := hammerEntry(writer, i)
		if err := s.Put(k, &e); err != nil {
			t.Fatalf("helper put: %v", err)
		}
	}
}

// TestPutContentionAcrossProcesses is the last-rename-wins contention
// test: N goroutines in this process plus two real subprocesses hammer the
// SAME store key concurrently. Whatever interleaving the kernel picks, the
// survivor must decode clean (CRC intact, recognizable value), the store
// must quarantine nothing, and a fresh recovery-scanning Open must agree —
// publication is atomic rename, so a reader can never observe a torn mix of
// two writers.
func TestPutContentionAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	k := hammerKey()

	procs := make([]*exec.Cmd, 2)
	for w := range procs {
		cmd := exec.Command(os.Args[0], "-test.run=TestStoreHammerHelper$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			hammerDirEnv+"="+dir,
			fmt.Sprintf("%s=%d", hammerWriterEnv, 100+w))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn writer %d: %v", w, err)
		}
		procs[w] = cmd
	}

	s, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < hammerIters; i++ {
				e := hammerEntry(g, i)
				if err := s.Put(k, &e); err != nil {
					t.Errorf("goroutine %d put: %v", g, err)
					return
				}
				// Concurrent readers must always decode clean mid-hammer.
				if got, ok, err := s.Get(k); err != nil {
					t.Errorf("goroutine %d get: %v", g, err)
					return
				} else if ok && !validHammerEntry(got) {
					t.Errorf("goroutine %d read out-of-family entry: writer=%v iter=%v", g, got.IPC, got.Seconds)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for w, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("writer process %d: %v", w, err)
		}
	}

	// A fresh open replays the recovery scan over whatever the contention
	// left on disk: nothing may be quarantined, and the key must hold one
	// clean family value.
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if q := s2.Stats().QuarantineFiles; q != 0 {
		t.Fatalf("contention quarantined %d files", q)
	}
	got, ok, err := s2.Get(k)
	if err != nil || !ok {
		t.Fatalf("survivor Get: ok=%v err=%v", ok, err)
	}
	if !validHammerEntry(got) {
		t.Fatalf("survivor out of family: writer=%v iter=%v", got.IPC, got.Seconds)
	}
	if s2.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", s2.Len())
	}
}

// validHammerEntry checks membership in the writer-value family.
func validHammerEntry(e Entry) bool {
	w, i := int(e.IPC), int(e.Seconds)
	if float64(w) != e.IPC || float64(i) != e.Seconds {
		return false
	}
	ref := hammerEntry(w, i)
	return e == ref
}
