package store

import (
	"os"
	"path/filepath"
)

// FS is the store's seam to the filesystem. Every byte the store reads or
// writes goes through exactly one of these methods, so a test FS can inject
// the disk's real failure modes — torn writes, read errors, a full disk,
// slow I/O — without touching the store's logic (internal/faultinject's
// DiskFS is such a wrapper). The production implementation is OSFS.
//
// Durability contract: WriteFile must not return success until the data has
// been flushed to stable storage (fsync), and SyncDir must flush a
// directory's metadata (the visibility of a completed rename). Rename must
// be atomic for paths within one directory, the POSIX guarantee the store's
// temp-file + rename publication protocol is built on.
type FS interface {
	// MkdirAll creates path and any missing parents.
	MkdirAll(path string) error
	// ReadDir lists the names (not paths) of the entries of path.
	ReadDir(path string) ([]string, error)
	// ReadFile returns the full contents of the file at path.
	ReadFile(path string) ([]byte, error)
	// WriteFile creates or truncates path, writes data, and fsyncs it.
	WriteFile(path string, data []byte) error
	// CreateExclusive creates path with O_EXCL semantics — it fails with an
	// error satisfying errors.Is(err, fs.ErrExist) if the file already
	// exists — writes data, and fsyncs it. This is the one primitive whose
	// failure is meaningful rather than an error: it is how exactly one of
	// several racing processes wins a claim (internal/grid's leases).
	CreateExclusive(path string, data []byte) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the file at path.
	Remove(path string) error
	// SyncDir fsyncs the directory at path (making renames durable).
	SyncDir(path string) error
}

// OSFS is the production FS: the real filesystem with fsync on every write
// and directory sync.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// ReadDir implements FS.
func (OSFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFile implements FS: create/truncate, write, fsync, close — an error
// from any step (including Close, which can surface deferred write errors)
// fails the write.
func (OSFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CreateExclusive implements FS: O_CREATE|O_EXCL create, write, fsync,
// close. The kernel guarantees at most one concurrent creator succeeds.
func (OSFS) CreateExclusive(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// SyncDir implements FS.
func (OSFS) SyncDir(path string) error {
	d, err := os.Open(filepath.Clean(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
