package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeEntry is the codec's robustness gate: DecodeEntry consumes
// arbitrary on-disk bytes during recovery, so for ANY input it must return
// (Entry, nil) or an error — never panic, and never allocate proportionally
// to a declared length the data does not actually contain. Inputs that do
// decode must re-encode to the identical bytes (the codec has exactly one
// framing per entry, so round-trip is an equality, not just an inverse).
func FuzzDecodeEntry(f *testing.F) {
	e := filledEntry()
	f.Add(EncodeEntry(&e))
	f.Add(EncodeEntry(&Entry{}))
	f.Add([]byte{})
	f.Add([]byte("STRE"))
	// Valid magic and version, absurd declared length: the decoder must
	// reject on the length check before trusting it.
	f.Add([]byte{'S', 'T', 'R', 'E', 1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeEntry(&got), data) {
			t.Fatalf("decoded entry re-encodes to different bytes (len %d)", len(data))
		}
	})
}
