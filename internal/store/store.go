// Package store is a crash-safe, content-addressed on-disk result store:
// the persistence tier under internal/sim's memoizing result cache. Entries
// are keyed by the SHA-256 of the canonicalized (Config, Profile) cache key,
// framed by a versioned binary codec with a trailing CRC32-C, and published
// atomically (temp file in the destination shard, fsync, rename, directory
// sync), so a process killed at any byte of any write leaves either the old
// entry, the new entry, or an orphaned temp file — never a half-visible one.
//
// Robustness contract: Open always succeeds on any directory MkdirAll can
// create. The open-time recovery scan validates every entry and moves
// anything it cannot decode — truncated files, bit flips, foreign junk,
// entries from other codec versions — into quarantine/ instead of failing;
// orphaned temp files are deleted. An entry that rots after open (the scan
// cannot see future corruption) is quarantined at Get time and reported as
// a miss, so callers recompute through rather than erroring. All I/O goes
// through the FS seam, which is how the fault-injection suite proves these
// properties against torn writes, read errors, and a full disk.
package store

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// Key addresses one entry: the SHA-256 of the canonical simulation point.
type Key [32]byte

// String returns the key's lowercase hex form (also its filename stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses a lowercase-hex key name.
func ParseKey(s string) (Key, bool) {
	var k Key
	if len(s) != 2*len(k) {
		return Key{}, false
	}
	if _, err := hex.Decode(k[:], []byte(s)); err != nil {
		return Key{}, false
	}
	return k, true
}

const (
	EntrySuffix = ".res"
	TmpPrefix   = ".tmp-"
	// quarantineDir collects entries the store could not validate, for
	// post-mortem inspection; nothing in the store ever reads it back.
	quarantineDir = "quarantine"
)

// Stats is a snapshot of the store's counters.
type Stats struct {
	Entries           int    // valid entries currently indexed
	QuarantinedAtOpen int    // entries quarantined by the last Open's scan
	Quarantined       uint64 // total quarantined since Open (scan + Get-time)
	QuarantineFiles   int    // files accumulated in quarantine/ (all opens)
	Hits              uint64 // Gets served from disk
	Misses            uint64 // Gets with no (valid) entry
	Puts              uint64 // successful publishes
	ReadErrors        uint64 // Get-time I/O failures (degraded to compute)
	WriteErrors       uint64 // Put-time I/O failures (degraded to memory-only)
}

// Store is a content-addressed result store rooted at one directory.
// Entries live in 256 two-hex-digit shard subdirectories. Store is safe for
// concurrent use: the index is mutex-guarded and file publication is atomic,
// so concurrent Puts of one key both succeed (last rename wins; both files
// are valid) and a Get racing a Put sees the old or the new entry, never a
// torn one.
type Store struct {
	dir string
	fs  FS

	mu    sync.Mutex
	index map[Key]struct{}

	quarantinedAtOpen int
	quarantined       atomic.Uint64
	quarantineFiles   atomic.Int64 // files resident in quarantine/ (counted at Open, bumped per move)
	hits, misses      atomic.Uint64
	puts              atomic.Uint64
	readErrs          atomic.Uint64
	writeErrs         atomic.Uint64
	tmpSeq            atomic.Uint64

	// Quarantine growth bound: quarantine/ accumulates across process
	// lifetimes (nothing ever reads it back), so a store fed a stream of
	// corruption would grow it without limit and without anyone noticing.
	// When the resident file count first exceeds warnAt (> 0), warnFn is
	// called exactly once — an operator signal, never a failure.
	warnAt   int
	warnOnce sync.Once
	warnFn   func(files int)
}

// Open opens (creating if necessary) the store rooted at dir on fsys (nil
// selects the real filesystem) and runs the recovery scan: every entry is
// read and validated; entries that fail validation are moved to quarantine/
// and orphaned temp files from interrupted writes are removed. Open fails
// only when the root or quarantine directory cannot be created — never
// because of what the directory contains.
func Open(dir string, fsys FS) (*Store, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	s := &Store{dir: dir, fs: fsys, index: map[Key]struct{}{}}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, quarantineDir)); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	if names, err := fsys.ReadDir(filepath.Join(dir, quarantineDir)); err == nil {
		s.quarantineFiles.Store(int64(len(names)))
	}
	s.recover()
	return s, nil
}

// SetQuarantineWarn arms the quarantine-growth warning: once the number of
// files resident in quarantine/ exceeds n (> 0), warn is called exactly once
// with the count at the moment of crossing. n <= 0 or a nil warn disarms it.
// The count is checked immediately on arming — Open's recovery scan runs
// before any caller can arm the warning, so files quarantined at open (or
// left over from earlier processes) must be able to trip it here.
func (s *Store) SetQuarantineWarn(n int, warn func(files int)) {
	s.warnAt = n
	s.warnFn = warn
	if files := int(s.quarantineFiles.Load()); n > 0 && warn != nil && files > n {
		s.warnOnce.Do(func() { warn(files) })
	}
}

// recover is the open-time scan. Every failure mode is contained: an
// unreadable shard directory is skipped, an unreadable or undecodable entry
// is quarantined, a quarantine move that itself fails falls back to
// deletion, and a deletion that fails is simply left behind (the file stays
// out of the index, so it cannot serve corrupt data).
func (s *Store) recover() {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, shard := range names {
		if len(shard) != 2 || !isHex(shard) {
			continue // quarantine/, foreign files: not entry shards
		}
		shardPath := filepath.Join(s.dir, shard)
		files, err := s.fs.ReadDir(shardPath)
		if err != nil {
			continue
		}
		for _, name := range files {
			path := filepath.Join(shardPath, name)
			if strings.HasPrefix(name, TmpPrefix) {
				// Temp file of an interrupted OR in-flight write. Multiple
				// processes share one store (multi-worker sweeps), so
				// "orphan" must mean "its writer is dead": the name carries
				// the writer's PID, and only temp files whose writer no
				// longer exists are dropped. A live writer's temp file is
				// about to be renamed into place — deleting it here would
				// fail that writer's publish out from under it.
				if tmpWriterDead(name) {
					s.fs.Remove(path)
				}
				continue
			}
			key, ok := ParseKey(strings.TrimSuffix(name, EntrySuffix))
			if !ok || !strings.HasSuffix(name, EntrySuffix) || shard != name[:2] {
				s.quarantine(path, "open")
				continue
			}
			data, err := s.fs.ReadFile(path)
			if err != nil {
				s.readErrs.Add(1)
				s.quarantine(path, "open")
				continue
			}
			if _, err := DecodeEntry(data); err != nil {
				s.quarantine(path, "open")
				continue
			}
			s.index[key] = struct{}{}
		}
	}
	s.quarantinedAtOpen = int(s.quarantined.Load())
}

// quarantine moves the file at path into quarantine/ under a unique name
// (falling back to deletion if the move fails) and counts it.
func (s *Store) quarantine(path, when string) {
	dest := filepath.Join(s.dir, quarantineDir,
		fmt.Sprintf("%s.%s.%d", filepath.Base(path), when, s.tmpSeq.Add(1)))
	if err := s.fs.Rename(path, dest); err != nil {
		s.fs.Remove(path)
	} else {
		files := int(s.quarantineFiles.Add(1))
		if s.warnAt > 0 && files > s.warnAt && s.warnFn != nil {
			s.warnOnce.Do(func() { s.warnFn(files) })
		}
	}
	s.quarantined.Add(1)
}

// tmpWriterDead reports whether a temp file's writing process is gone. The
// name encodes the writer's PID (.tmp-<key16>.<pid>.<seq>); a missing or
// unparsable PID field (old-format or foreign temp files) counts as dead.
// PID reuse can make a stale temp look alive — the cost is a leftover temp
// file until a later open, never a lost entry.
func tmpWriterDead(name string) bool {
	parts := strings.Split(name, ".")
	if len(parts) != 4 {
		return true
	}
	pid, err := strconv.Atoi(parts[2])
	if err != nil || pid <= 0 {
		return true
	}
	if pid == os.Getpid() {
		// Our own in-flight writes cannot exist during open; any temp file
		// bearing our PID is a recycled-PID leftover.
		return true
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return true
	}
	// Signal 0 probes existence without delivering anything; EPERM still
	// proves the process exists.
	err = p.Signal(syscall.Signal(0))
	return err != nil && !errors.Is(err, syscall.EPERM)
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path returns an entry's location: <dir>/<first key byte>/<hex key>.res.
func (s *Store) path(k Key) string {
	name := k.String()
	return filepath.Join(s.dir, name[:2], name+EntrySuffix)
}

// Get returns the entry stored under k. A missing entry is (zero, false,
// nil). An I/O error reading an indexed entry is returned as err (the
// caller degrades to computing the point); an indexed entry that fails
// validation is quarantined on the spot and reported as a plain miss, so
// one rotten file costs one recomputation, never an outage.
func (s *Store) Get(k Key) (Entry, bool, error) {
	s.mu.Lock()
	_, ok := s.index[k]
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return Entry{}, false, nil
	}
	data, err := s.fs.ReadFile(s.path(k))
	if err != nil {
		s.readErrs.Add(1)
		return Entry{}, false, fmt.Errorf("store: read %s: %w", k, err)
	}
	e, err := DecodeEntry(data)
	if err != nil {
		s.mu.Lock()
		delete(s.index, k)
		s.mu.Unlock()
		s.quarantine(s.path(k), "get")
		s.misses.Add(1)
		return Entry{}, false, nil
	}
	s.hits.Add(1)
	return e, true, nil
}

// Put durably publishes e under k: encode, write to a temp file in the
// destination shard (fsync'd), rename over the final name, sync the shard
// directory. A failure at any step leaves the previous state intact (any
// temp remnant is cleaned by the next Open) and counts as a write error;
// the store never indexes an entry it did not fully publish.
func (s *Store) Put(k Key, e *Entry) error {
	data := EncodeEntry(e)
	name := k.String()
	shardPath := filepath.Join(s.dir, name[:2])
	if err := s.fs.MkdirAll(shardPath); err != nil {
		s.writeErrs.Add(1)
		return fmt.Errorf("store: put %s: %w", k, err)
	}
	// invariant: the temp name must be unique across PROCESSES, not just
	// goroutines — concurrent writers of one key in different processes
	// would otherwise collide on the temp path, and one writer's rename
	// would consume the other's temp file out from under it. The PID makes
	// names disjoint per process; the sequence makes them disjoint within.
	tmp := filepath.Join(shardPath, fmt.Sprintf("%s%s.%d.%d", TmpPrefix, name[:16], os.Getpid(), s.tmpSeq.Add(1)))
	if err := s.fs.WriteFile(tmp, data); err != nil {
		s.fs.Remove(tmp)
		s.writeErrs.Add(1)
		return fmt.Errorf("store: put %s: %w", k, err)
	}
	if err := s.fs.Rename(tmp, s.path(k)); err != nil {
		s.fs.Remove(tmp)
		s.writeErrs.Add(1)
		return fmt.Errorf("store: put %s: %w", k, err)
	}
	if err := s.fs.SyncDir(shardPath); err != nil {
		// The rename landed, so the entry is visible (and valid — it was
		// fully written and fsync'd); only its durability across a crash is
		// in doubt. Index it for this process but report the degradation.
		s.mu.Lock()
		s.index[k] = struct{}{}
		s.mu.Unlock()
		s.writeErrs.Add(1)
		return fmt.Errorf("store: put %s: sync dir: %w", k, err)
	}
	s.mu.Lock()
	s.index[k] = struct{}{}
	s.mu.Unlock()
	s.puts.Add(1)
	return nil
}

// Has reports whether k is indexed, without reading or validating the
// entry. It is the cheap pre-claim check for distributed dispatch: a point
// another worker already published needs no lease and no compute. A true
// answer can still miss at Get time (the file may rot in between), so
// callers treat Has as a hint, never a guarantee.
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[k]
	return ok
}

// Len reports the number of valid entries currently indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries := len(s.index)
	s.mu.Unlock()
	return Stats{
		Entries:           entries,
		QuarantinedAtOpen: s.quarantinedAtOpen,
		Quarantined:       s.quarantined.Load(),
		QuarantineFiles:   int(s.quarantineFiles.Load()),
		Hits:              s.hits.Load(),
		Misses:            s.misses.Load(),
		Puts:              s.puts.Load(),
		ReadErrors:        s.readErrs.Load(),
		WriteErrors:       s.writeErrs.Load(),
	}
}
