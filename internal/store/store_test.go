package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"selthrottle/internal/xrand"
)

// fillValue writes a distinct, deterministic nonzero value into every
// numeric field reachable from v, so a round-trip that drops or reorders any
// field cannot still compare equal.
func fillValue(v reflect.Value, next *uint64) {
	switch v.Kind() {
	case reflect.Uint64:
		*next++
		v.SetUint(*next)
	case reflect.Float64:
		*next++
		v.SetFloat(float64(*next) + 0.5)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillValue(v.Index(i), next)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillValue(v.Field(i), next)
		}
	default:
		panic("unexpected field kind " + v.Kind().String()) // fail-fast: codec shape drifted
	}
}

// filledEntry returns an Entry with every field set to a unique value.
func filledEntry() Entry {
	var e Entry
	var next uint64
	fillValue(reflect.ValueOf(&e).Elem(), &next)
	return e
}

// TestCodecCoversEveryField: the encode/decode pair enumerates fields by
// hand, so this guards the codec against silently dropping a field added to
// pipe.Stats or power.Report later — the reflective fill gives every field a
// unique value, and a dropped field decodes as zero and fails the compare.
func TestCodecCoversEveryField(t *testing.T) {
	e := filledEntry()
	got, err := DecodeEntry(EncodeEntry(&e))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got != e {
		t.Fatal("round trip dropped or reordered a field")
	}
}

// TestDecodeRejectsEveryTruncation: a valid entry cut at any byte boundary
// must decode to an error, never a panic or a silently wrong Entry.
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	e := filledEntry()
	data := EncodeEntry(&e)
	for n := 0; n < len(data); n++ {
		if _, err := DecodeEntry(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d of %d: err = %v, want ErrCorrupt", n, len(data), err)
		}
	}
}

// TestDecodeRejectsEveryBitFlip: flipping any single bit of a valid entry
// must be caught — by the magic, the length check, the CRC, or the version
// gate — never decoded as data.
func TestDecodeRejectsEveryBitFlip(t *testing.T) {
	e := filledEntry()
	data := EncodeEntry(&e)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			if _, err := DecodeEntry(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded cleanly", i, bit)
			}
		}
	}
}

// TestDecodeRejectsForeignVersion: a structurally sound entry from another
// codec version is ErrVersion (quarantine), not ErrCorrupt and not data.
func TestDecodeRejectsForeignVersion(t *testing.T) {
	e := filledEntry()
	data := EncodeEntry(&e)
	data[4] = CodecVersion + 1 // bump version, then re-seal the checksum
	reseal(data)
	if _, err := DecodeEntry(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("foreign version: err = %v, want ErrVersion", err)
	}
	data = EncodeEntry(&e)
	data[6] = 1 // unknown flag bit
	reseal(data)
	if _, err := DecodeEntry(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("unknown flags: err = %v, want ErrVersion", err)
	}
}

// reseal recomputes a mutated entry's trailing CRC so only the intended
// field differs from a valid entry.
func reseal(data []byte) {
	crc := crc32.Checksum(data[:len(data)-crcSize], castagnoli)
	binary.LittleEndian.PutUint32(data[len(data)-crcSize:], crc)
}

func testKey(i uint64) Key {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[31] = byte(i) ^ 0xa5
	return k
}

func TestStoreRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := filledEntry()
	k := testKey(1)
	if err := st.Put(k, &e); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(k)
	if err != nil || !ok || got != e {
		t.Fatalf("get after put: ok=%v err=%v equal=%v", ok, err, got == e)
	}
	if _, ok, _ := st.Get(testKey(2)); ok {
		t.Fatal("absent key reported present")
	}

	// A second open of the same directory sees the entry (durability).
	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 1 {
		t.Fatalf("reopen indexed %d entries, want 1", st2.Len())
	}
	got, ok, err = st2.Get(k)
	if err != nil || !ok || got != e {
		t.Fatal("reopened store lost the entry")
	}
	s := st2.Stats()
	if s.QuarantinedAtOpen != 0 || s.Hits != 1 {
		t.Fatalf("stats after clean reopen: %+v", s)
	}
}

// TestOpenCleansOrphansAndQuarantinesJunk: an interrupted write's temp file
// is removed at open; undecodable files in entry shards are quarantined;
// Open never fails because of directory contents.
func TestOpenCleansOrphansAndQuarantinesJunk(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := filledEntry()
	k := testKey(3)
	if err := st.Put(k, &e); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(filepathOf(st, k))

	// A temp orphan (crash between write and rename), a truncated entry
	// under a valid-looking name, and foreign junk.
	orphan := filepath.Join(shard, TmpPrefix+"deadbeef.1")
	os.WriteFile(orphan, []byte("partial"), 0o644)
	torn := testKey(4)
	tornPath := filepath.Join(dir, torn.String()[:2], torn.String()+EntrySuffix)
	os.MkdirAll(filepath.Dir(tornPath), 0o755)
	os.WriteFile(tornPath, EncodeEntry(&e)[:20], 0o644)
	junk := filepath.Join(shard, "notakey"+EntrySuffix)
	os.WriteFile(junk, []byte("junk"), 0o644)

	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("open over damage: %v", err)
	}
	if st2.Len() != 1 {
		t.Fatalf("indexed %d entries, want 1 (the valid one)", st2.Len())
	}
	if got, ok, _ := st2.Get(k); !ok || got != e {
		t.Fatal("valid entry lost during recovery")
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("temp orphan survived recovery")
	}
	if st2.Stats().QuarantinedAtOpen != 2 {
		t.Fatalf("quarantined %d at open, want 2", st2.Stats().QuarantinedAtOpen)
	}
	qnames, _ := os.ReadDir(filepath.Join(dir, quarantineDir))
	if len(qnames) != 2 {
		t.Fatalf("quarantine/ holds %d files, want 2", len(qnames))
	}
}

// TestQuarantineWarnFiresOnceOnArming: the quarantine-growth warning must
// fire at SetQuarantineWarn time when quarantine/ already holds more than the
// threshold — Open's recovery scan (the main producer of quarantine files)
// runs before any caller can arm the warning — and must fire exactly once per
// store lifetime even as later quarantines keep crossing the threshold.
func TestQuarantineWarnFiresOnceOnArming(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(20); i < 24; i++ {
		e := filledEntry()
		k := testKey(i)
		if err := st.Put(k, &e); err != nil {
			t.Fatal(err)
		}
		// Corrupt every entry in place so the next open quarantines all 4.
		os.WriteFile(filepathOf(st, k), []byte("rot"), 0o644)
	}

	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	st2.SetQuarantineWarn(10, func(int) { fired++ })
	if fired != 0 {
		t.Fatalf("warn fired below threshold (4 files, threshold 10)")
	}
	var gotFiles int
	st2.SetQuarantineWarn(2, func(files int) { fired++; gotFiles = files })
	if fired != 1 || gotFiles != 4 {
		t.Fatalf("arming over pre-existing files: fired=%d files=%d, want 1 and 4", fired, gotFiles)
	}
	// Further quarantines past the threshold must not re-fire.
	e := filledEntry()
	k := testKey(30)
	if err := st2.Put(k, &e); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepathOf(st2, k), []byte("rot"), 0o644)
	if _, ok, _ := st2.Get(k); ok {
		t.Fatal("rotten entry served")
	}
	if fired != 1 {
		t.Fatalf("warn fired %d times, want exactly once", fired)
	}
	if q := st2.Stats().QuarantineFiles; q != 5 {
		t.Fatalf("QuarantineFiles = %d, want 5", q)
	}
}

// TestGetQuarantinesRotAfterOpen: an entry corrupted after the open scan is
// quarantined by the Get that discovers it and reported as a miss — one
// recomputation, not an error and not repeated rereads.
func TestGetQuarantinesRotAfterOpen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := filledEntry()
	k := testKey(5)
	if err := st.Put(k, &e); err != nil {
		t.Fatal(err)
	}
	// Rot: flip a payload bit in place behind the store's back.
	path := filepathOf(st, k)
	data, _ := os.ReadFile(path)
	data[headerSize+3] ^= 0x40
	os.WriteFile(path, data, 0o644)

	if _, ok, err := st.Get(k); ok || err != nil {
		t.Fatalf("rotten entry: ok=%v err=%v, want counted miss", ok, err)
	}
	if _, ok, _ := st.Get(k); ok {
		t.Fatal("rotten entry served on second get")
	}
	s := st.Stats()
	if s.Quarantined != 1 || s.Entries != 0 {
		t.Fatalf("stats after rot: %+v", s)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("rotten entry still at its shard path")
	}
}

// TestCorruptKofNQuarantinesExactlyK is the randomized recovery property:
// write N entries, corrupt a random k of them (truncation or bit flip,
// chosen per victim), reopen — the store must quarantine exactly the k
// victims, serve the N-k survivors byte-identically, and count the damage.
func TestCorruptKofNQuarantinesExactlyK(t *testing.T) {
	const N = 40
	for _, seed := range []uint64{1, 2, 3} {
		rng := xrand.New(seed)
		dir := t.TempDir()
		st, err := Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		entries := make(map[Key]Entry, N)
		for i := uint64(0); i < N; i++ {
			e := filledEntry()
			e.IPC = float64(i) * 1.25 // distinguish entries
			k := testKey(100 + i)
			if err := st.Put(k, &e); err != nil {
				t.Fatal(err)
			}
			entries[k] = e
		}
		k := int(rng.Uint64()%(N/2)) + 1
		victims := map[Key]struct{}{}
		for len(victims) < k {
			victim := testKey(100 + rng.Uint64()%N)
			if _, dup := victims[victim]; dup {
				continue
			}
			victims[victim] = struct{}{}
			path := filepathOf(st, victim)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Uint64()%2 == 0 {
				// Truncate at a random byte (possibly to empty).
				data = data[:rng.Uint64()%uint64(len(data))]
			} else {
				// Flip one random bit.
				data[rng.Uint64()%uint64(len(data))] ^= 1 << (rng.Uint64() % 8)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		st2, err := Open(dir, nil)
		if err != nil {
			t.Fatalf("seed %d: reopen over %d corruptions: %v", seed, k, err)
		}
		if st2.Stats().QuarantinedAtOpen != k {
			t.Fatalf("seed %d: quarantined %d, want exactly %d", seed, st2.Stats().QuarantinedAtOpen, k)
		}
		if st2.Len() != N-k {
			t.Fatalf("seed %d: %d survivors indexed, want %d", seed, st2.Len(), N-k)
		}
		for key, want := range entries {
			got, ok, err := st2.Get(key)
			if _, corrupted := victims[key]; corrupted {
				if ok {
					t.Fatalf("seed %d: corrupted entry %s served", seed, key)
				}
				continue
			}
			if err != nil || !ok || got != want {
				t.Fatalf("seed %d: survivor %s: ok=%v err=%v identical=%v", seed, key, ok, err, got == want)
			}
		}
	}
}

// filepathOf exposes the store's entry layout to tests in this package.
func filepathOf(s *Store, k Key) string { return s.path(k) }

// TestParseKeyRejectsMalformed guards the recovery scan's name parsing.
func TestParseKeyRejectsMalformed(t *testing.T) {
	k := testKey(9)
	rt, ok := ParseKey(k.String())
	if !ok || rt != k {
		t.Fatal("hex round trip failed")
	}
	for _, bad := range []string{"", "ab", strings.Repeat("g", 64), strings.Repeat("a", 63), strings.Repeat("a", 65)} {
		if _, ok := ParseKey(bad); ok {
			t.Fatalf("ParseKey(%q) accepted", bad)
		}
	}
}
