// Package xrand provides small, fast, deterministic random-number utilities
// used throughout the simulator. Every stream is explicitly seeded: the
// simulator never consults global randomness, so two runs with the same
// configuration are bit-identical.
//
// The core generator is splitmix64 (Steele, Lea, Flood), which has a 64-bit
// state, passes BigCrush, and — crucially for this codebase — supports cheap
// stateless hashing: Hash64 applies one splitmix64 round to its argument,
// which is how the workload generator derives independent per-branch,
// per-instruction streams from a single run seed.
package xrand

// Rand is a deterministic 64-bit pseudo-random generator (splitmix64).
// The zero value is a valid generator seeded with 0; use New to seed.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64-bit value in the sequence.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// mix is the splitmix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 returns a stateless hash of x: one splitmix64 round.
// Hash64 is used to derive independent sub-seeds and to make deterministic
// pseudo-random decisions keyed on identifiers (PCs, sequence numbers).
func Hash64(x uint64) uint64 {
	return mix(x + 0x9e3779b97f4a7c15)
}

// Hash2 hashes a pair of values into one 64-bit result.
func Hash2(a, b uint64) uint64 {
	return Hash64(Hash64(a) ^ (b * 0xd6e8feb86659fd93))
}

// Hash3 hashes a triple of values into one 64-bit result.
func Hash3(a, b, c uint64) uint64 {
	return Hash64(Hash2(a, b) ^ (c * 0xa24baed4963ee407))
}

// Intn returns a value uniformly distributed in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift bounded rejection would be overkill for a
	// simulator; the bias of a simple modulo is < 2^-40 for our n.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1): the number of Bernoulli trials up to and including the first
// success with success probability 1/m. Used for basic-block sizes and
// dependency distances.
func (r *Rand) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1 / m
	n := 1
	for !r.Bool(p) {
		n++
		if n >= int(16*m) { // clamp the tail so pathological seeds stay bounded
			break
		}
	}
	return n
}

// Pick returns an index in [0,len(weights)) chosen with probability
// proportional to weights[i]. It panics on an empty or all-zero slice.
func (r *Rand) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("xrand: Pick with empty or zero weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
