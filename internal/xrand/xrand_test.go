package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestHash64Stateless(t *testing.T) {
	if Hash64(12345) != Hash64(12345) {
		t.Fatal("Hash64 is not a pure function")
	}
	if Hash64(12345) == Hash64(12346) {
		t.Fatal("adjacent inputs collide")
	}
}

func TestHash2Hash3Independence(t *testing.T) {
	// Order must matter.
	if Hash2(1, 2) == Hash2(2, 1) {
		t.Fatal("Hash2 is symmetric")
	}
	if Hash3(1, 2, 3) == Hash3(3, 2, 1) {
		t.Fatal("Hash3 is symmetric")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolExtremes(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(9)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	f := float64(hits) / float64(n)
	if f < 0.28 || f > 0.32 {
		t.Fatalf("Bool(0.3) frequency %v out of band", f)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(8))
	}
	mean := sum / float64(n)
	if mean < 7.0 || mean > 9.0 {
		t.Fatalf("Geometric(8) mean %v out of band", mean)
	}
}

func TestGeometricMinimum(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if r.Geometric(0.5) != 1 {
			t.Fatal("Geometric(<=1) must return 1")
		}
		if r.Geometric(4) < 1 {
			t.Fatal("Geometric returned < 1")
		}
	}
}

func TestGeometricBounded(t *testing.T) {
	r := New(17)
	for i := 0; i < 100000; i++ {
		if v := r.Geometric(4); v > 64 {
			t.Fatalf("Geometric(4) tail unbounded: %d", v)
		}
	}
}

func TestPickWeights(t *testing.T) {
	r := New(19)
	counts := [3]int{}
	n := 90000
	for i := 0; i < n; i++ {
		counts[r.Pick([]float64{1, 2, 3})]++
	}
	// Expected proportions 1/6, 2/6, 3/6.
	for i, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		got := float64(counts[i]) / float64(n)
		if got < want-0.02 || got > want+0.02 {
			t.Fatalf("Pick index %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestPickPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick(nil) did not panic")
		}
	}()
	New(1).Pick(nil)
}

func TestSeedResets(t *testing.T) {
	r := New(5)
	first := r.Uint64()
	r.Seed(5)
	if r.Uint64() != first {
		t.Fatal("Seed did not reset the stream")
	}
}
