// Package selthrottle is a from-scratch reproduction of "Power-Aware Control
// Speculation through Selective Throttling" (Aragón, González, González;
// HPCA-9, 2003): a cycle-level out-of-order superscalar simulator with a
// Wattch-style power model, branch prediction and confidence estimation
// substrates, the paper's Selective Throttling mechanism, the Pipeline
// Gating baseline, and a harness that regenerates every table and figure of
// the paper's evaluation.
//
// This root package is the public facade: it re-exports the simulation API
// from the internal packages so downstream users can run experiments without
// reaching into internal paths. The building blocks live in:
//
//   - internal/prog: synthetic SPECint-like workload substrate (Table 2)
//   - internal/bpred: gshare / bimodal predictors, BTB, RAS
//   - internal/conf: JRS and BPRU-style confidence estimation (§4.3)
//   - internal/cache: L1/L2/TLB hierarchy with bus contention (Table 3)
//   - internal/pipe: the 8-wide out-of-order core, 6-28 stage front end
//   - internal/power: Wattch cc3-style per-unit power accounting (Table 1)
//   - internal/core: Selective Throttling policies, Pipeline Gating, oracles
//   - internal/sim: configurations, runs, metrics, and experiment series
//
// Quick start:
//
//	profile, _ := selthrottle.ProfileByName("go")
//	base := selthrottle.Run(selthrottle.DefaultConfig(), profile)
//	c2 := selthrottle.BestExperiment()
//	thr := selthrottle.Run(c2.Apply(selthrottle.DefaultConfig()), profile)
//	fmt.Println(selthrottle.Compare(base, thr))
//
// Run and the figure harnesses draw reusable run contexts from a shared
// pool, so back-to-back runs recycle the simulator instead of rebuilding it.
// Callers executing many configurations in their own loop can hold a context
// directly:
//
//	r := selthrottle.NewRunner()
//	for _, cfg := range configs {
//		results = append(results, r.Run(cfg, profile))
//	}
//
// A reused Runner resets every component to its exact as-new state between
// runs, so results are bit-identical to fresh construction.
//
// Simulation is a pure function of (Config, Profile), so Run and every
// figure/sweep harness additionally memoizes results in a process-wide
// cache: a point is simulated at most once per process, and the overlapping
// baselines of figure grids and sweeps are shared. Runner.Run bypasses the
// cache; SetResultCaching(false) disables it globally (for raw-throughput
// measurement), and CacheStats/ClearResultCache expose its reuse counters
// and memory bound.
//
// Terminal simulation failures (a deadlocked machine, an internal invariant
// violation) surface from the error-returning entry points — Runner.RunE and
// RunFigureE — as a typed *RunError carrying a diagnostic machine snapshot;
// the legacy Run entry points panic with the same value (wrap a top level in
// Guard to convert that into a report and an exit code). RunFigureE isolates
// failures per grid point and supervises each under Options.Supervise
// (per-point deadlines, bounded retries); see the README's "Failure
// semantics" section.
package selthrottle

import (
	"context"
	"io"

	"selthrottle/internal/core"
	"selthrottle/internal/pipe"
	"selthrottle/internal/prog"
	"selthrottle/internal/sim"
)

// Re-exported simulation types.
type (
	// Config describes one simulation run (processor, tables, policy).
	Config = sim.Config
	// Result is the outcome of one run on one benchmark.
	Result = sim.Result
	// Comparison holds the paper's four headline metrics against a baseline.
	Comparison = sim.Comparison
	// Experiment is one labeled configuration from the paper's evaluation.
	Experiment = sim.Experiment
	// Options controls figure-level reproductions.
	Options = sim.Options
	// Profile describes one synthetic benchmark (Table 2 calibration).
	Profile = prog.Profile
	// Policy maps confidence classes to throttling heuristics.
	Policy = core.Policy
	// Spec is one class's heuristic bundle (fetch/decode rate, no-select).
	Spec = core.Spec
	// Runner is a reusable run context: one simulator instance executing
	// many (Config, Profile) pairs back-to-back with Reset between runs.
	Runner = sim.Runner
	// RunError is a terminal run failure with a diagnostic snapshot of the
	// machine at the moment of failure (cycle, policy, occupancies, epoch
	// state, offending instruction). RunE returns it; Run panics with it.
	RunError = pipe.RunError
	// Supervisor is the per-point run policy of a supervised figure grid:
	// per-attempt deadlines and bounded retries (Options.Supervise).
	Supervisor = sim.Supervisor
	// PointStatus is one grid point's supervision outcome.
	PointStatus = sim.PointStatus
	// PointFailure locates one failed grid point and carries its error.
	PointFailure = sim.PointFailure
	// CacheTierStats is a snapshot of the tiered result cache's counters:
	// memory hits/misses/evictions, disk hits/puts/errors/quarantines.
	CacheTierStats = sim.CacheTierStats
)

// NewRunner returns an empty reusable run context; components are built on
// the first Run and recycled afterwards.
func NewRunner() *Runner { return sim.NewRunner() }

// DefaultConfig returns the paper's baseline configuration: the Table 3
// processor at 14 stages with an 8 KB gshare and an 8 KB BPRU estimator.
func DefaultConfig() Config { return sim.Default() }

// Profiles returns the eight benchmark profiles of Table 2.
func Profiles() []Profile { return prog.Profiles() }

// ProfileByName returns the named benchmark profile.
func ProfileByName(name string) (Profile, bool) { return prog.ProfileByName(name) }

// Run executes one configuration on one benchmark.
func Run(cfg Config, profile Profile) Result { return sim.Run(cfg, profile) }

// Compare computes speedup and power/energy/E-D savings of x against base.
func Compare(base, x Result) Comparison { return sim.Compare(base, x) }

// BestExperiment returns C2, the paper's recommended configuration.
func BestExperiment() Experiment { return sim.BestExperiment() }

// ExperimentByID looks up any experiment of the paper's evaluation
// (A1-A7, B1-B9, C1-C7, oracle-fetch/-decode/-select).
func ExperimentByID(id string) (Experiment, bool) { return sim.ExperimentByID(id) }

// RunFigure reproduces a full figure: every experiment against the baseline
// across all benchmarks.
func RunFigure(name string, exps []Experiment, opts Options) *sim.FigureResult {
	return sim.RunFigure(name, exps, opts)
}

// RunFigureE reproduces a figure under ctx with per-point failure isolation:
// a failed point becomes a per-point status and a Failures entry instead of a
// process-killing panic, healthy points are returned bit-identical to a clean
// run, and canceling ctx stops in-flight points cooperatively.
func RunFigureE(ctx context.Context, name string, exps []Experiment, opts Options) *sim.FigureResult {
	return sim.RunFigureE(ctx, name, exps, opts)
}

// AsRunError extracts a *RunError from err (directly or wrapped).
func AsRunError(err error) (*RunError, bool) { return pipe.AsRunError(err) }

// Guard runs f, converting an escaped *RunError panic (the legacy fail-fast
// API's failure mode) into a diagnostic report on w and exit code 1; other
// panics propagate unchanged.
func Guard(w io.Writer, name string, f func() int) int { return sim.Guard(w, name, f) }

// SetResultCaching enables or disables the process-wide result cache shared
// by Run and every figure/sweep harness, returning the previous setting. The
// cache never changes results (runs are pure), only whether a repeated
// (Config, Profile) point is re-simulated.
func SetResultCaching(on bool) (previous bool) { return sim.SetResultCaching(on) }

// CacheStats reports the process-wide result cache's hit/miss counters.
func CacheStats() (hits, misses uint64) { return sim.ResultCacheStats() }

// ClearResultCache empties the process-wide result cache, bounding memory in
// long-running processes that explore unbounded configuration spaces.
func ClearResultCache() { sim.ClearResultCache() }

// SetResultCacheLimit bounds the in-memory tier of the process-wide result
// cache to n entries (least-recently-used points are evicted past the bound;
// with a disk store attached they remain one disk read away). n <= 0 restores
// the default bound. Returns the previous limit.
func SetResultCacheLimit(n int) (previous int) { return sim.SetResultCacheLimit(n) }

// UseDiskStore attaches a crash-safe persistent result store rooted at dir as
// the second tier of the process-wide result cache: memory, then disk, then
// compute. Completed points are published atomically (temp file, fsync,
// rename); corrupt or torn entries found at open are quarantined, and the
// count of recovered entries is returned. Disk errors after attachment
// degrade the affected point to compute-through — they never fail a run.
func UseDiskStore(dir string) (entries int, err error) { return sim.UseDiskStore(dir) }

// ResultCacheTierStats reports per-tier counters of the process-wide result
// cache (memory hits/misses/evictions, disk hits/puts/errors/quarantines).
func ResultCacheTierStats() CacheTierStats { return sim.ResultCacheTierStats() }
